#include "workload/loss_curve.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace themis {

LossCurve::LossCurve(double scale, double decay, double floor)
    : scale_(scale), decay_(decay), floor_(floor) {
  if (scale <= 0.0 || decay <= 0.0 || floor < 0.0)
    throw std::invalid_argument("LossCurve: invalid parameters");
}

double LossCurve::LossAt(double iteration) const {
  if (iteration < 0.0) iteration = 0.0;
  return floor_ + scale_ * std::pow(iteration + 1.0, -decay_);
}

double LossCurve::IterationsToTarget(double target) const {
  if (target <= floor_) return std::numeric_limits<double>::infinity();
  if (target >= LossAt(0.0)) return 0.0;
  // floor + scale * (i+1)^-d = target  =>  i = (scale/(target-floor))^(1/d) - 1
  return std::pow(scale_ / (target - floor_), 1.0 / decay_) - 1.0;
}

double LossCurve::LossDecrease(double from, double to) const {
  if (to <= from) return 0.0;
  return LossAt(from) - LossAt(to);
}

}  // namespace themis
