#include "workload/job_spec.h"

#include <algorithm>

#include "placement/placement_model.h"

namespace themis {

double EffectiveJobRate(const JobSpec& job, const std::vector<GpuId>& gpus,
                        const Topology& topo) {
  if (gpus.empty()) return 0.0;
  if (static_cast<int>(topo.SpanLevel(gpus)) > static_cast<int>(job.max_span))
    return 0.0;  // constraint violated: S = 0
  return EffectiveRate(job.model, gpus, topo);
}

Time AppSpec::IdealRunningTime() const {
  Time best = kInfiniteTime;
  for (const JobSpec& j : jobs) {
    const int g = std::max(1, j.MaxParallelism());
    best = std::min(best, j.total_work / static_cast<double>(g));
  }
  return best;
}

Work AppSpec::TotalWork() const {
  Work w = 0.0;
  for (const JobSpec& j : jobs) w += j.total_work;
  return w;
}

int AppSpec::MaxJobParallelism() const {
  int g = 0;
  for (const JobSpec& j : jobs) g = std::max(g, j.MaxParallelism());
  return g;
}

}  // namespace themis
