// Shared configuration for the figure benches: one contended simulation
// setup per paper scale so every figure draws from the same workload shape.
#pragma once

#include <cstdint>

#include "sim/experiment.h"

namespace themis::bench {

/// Sec. 8.2 / 8.4 simulations: 256-GPU heterogeneous cluster under heavy
/// contention (the paper's macro experiment ran at a peak contention of
/// 4.76x; contention_factor 4 lands this workload in the same regime).
inline ExperimentConfig ContendedSimConfig(PolicyKind policy,
                                           std::uint64_t seed = 42,
                                           int num_apps = 120) {
  ExperimentConfig cfg = SimScaleConfig(policy, seed, num_apps);
  cfg.trace.contention_factor = 4.0;
  return cfg;
}

/// Sec. 8.3 macrobenchmarks: 50-GPU testbed-scale cluster, durations / 5,
/// same inter-arrival distribution, heavy contention.
inline ExperimentConfig ContendedTestbedConfig(PolicyKind policy,
                                               std::uint64_t seed = 42,
                                               int num_apps = 100) {
  ExperimentConfig cfg = TestbedScaleConfig(policy, seed, num_apps);
  cfg.trace.contention_factor = 4.0;
  cfg.sim.lease_minutes = 5.0;  // scaled 1:5 like the durations
  return cfg;
}

/// Average of a metric over three trace seeds (single seeds are noisy at
/// testbed scale: one unlucky tail app can dominate the max).
struct MacroSummary {
  double max_fairness = 0.0;
  double jains_index = 0.0;
  double avg_completion_time = 0.0;
  double gpu_time = 0.0;
  double peak_contention = 0.0;
  ExperimentResult last;  // one representative run for CDFs
};

inline MacroSummary RunMacro(PolicyKind policy) {
  MacroSummary out;
  const std::uint64_t seeds[] = {42, 43, 44};
  for (std::uint64_t seed : seeds) {
    ExperimentResult r = RunExperiment(ContendedTestbedConfig(policy, seed));
    out.max_fairness += r.max_fairness / 3.0;
    out.jains_index += r.jains_index / 3.0;
    out.avg_completion_time += r.avg_completion_time / 3.0;
    out.gpu_time += r.gpu_time / 3.0;
    out.peak_contention += r.peak_contention / 3.0;
    out.last = std::move(r);
  }
  return out;
}

inline constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kThemis, PolicyKind::kGandiva, PolicyKind::kSlaq,
    PolicyKind::kTiresias};

}  // namespace themis::bench
