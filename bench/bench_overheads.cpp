// Sec. 8.3.2 "System Overheads" — microbenchmarks of the two scheduler-side
// costs the paper profiles:
//   - AGENT bid preparation: 29 ms median / 334 ms p95 in the paper (the
//     tail appears when many GPUs are up for auction)
//   - ARBITER partial allocation (Gurobi in the paper): 354 ms median /
//     1398 ms p95, growing with offered GPUs x bidding apps.
// Our from-scratch solver replaces Gurobi, so absolute numbers differ; the
// relevant reproduction is the scaling trend with offer size and bidder
// count, which google-benchmark's arguments sweep below.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "bench_common.h"
#include "core/agent.h"
#include "core/themis_policy.h"
#include "sim/experiment.h"

namespace themis {
namespace {

JobSpec BenchJobSpec(double work, int tasks, int gang) {
  JobSpec spec;
  spec.total_work = work;
  spec.total_iterations = 1000.0;
  spec.num_tasks = tasks;
  spec.gpus_per_task = gang;
  spec.model = ModelByName("VGG16");
  spec.loss = LossCurve(0.1 * std::pow(1001.0, 0.6), 0.6, 0.0);
  return spec;
}

std::unique_ptr<AppState> BenchApp(AppId id, int jobs, int tasks_per_job) {
  auto app = std::make_unique<AppState>();
  app->id = id;
  app->spec.arrival = 0.0;
  app->spec.target_loss = 0.1;
  app->arrived = true;
  for (int j = 0; j < jobs; ++j) {
    app->spec.jobs.push_back(BenchJobSpec(60.0 + 10.0 * j, tasks_per_job, 4));
    JobState job;
    job.id = static_cast<JobId>(j);
    job.spec = app->spec.jobs.back();
    job.parallelism_cap = job.spec.MaxParallelism();
    app->jobs.push_back(std::move(job));
  }
  app->ideal_time = std::max(1e-9, app->spec.IdealRunningTime());
  return app;
}

/// Bid preparation cost vs the number of GPUs up for auction.
void BM_AgentPrepareBid(benchmark::State& state) {
  const int offered_gpus = static_cast<int>(state.range(0));
  Cluster cluster(ClusterSpec::Simulation256());
  WorkEstimator est({});
  auto app = BenchApp(0, /*jobs=*/16, /*tasks_per_job=*/2);
  Agent agent(&cluster.topology(), &est, 10.0);
  std::vector<GpuId> offered;
  for (GpuId g = 0; g < static_cast<GpuId>(offered_gpus); ++g)
    offered.push_back(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.PrepareBid(*app, offered, 6));
  }
}
BENCHMARK(BM_AgentPrepareBid)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

/// Partial-allocation solve cost vs the number of bidding apps.
void BM_PartialAllocation(benchmark::State& state) {
  const int n_apps = static_cast<int>(state.range(0));
  Cluster cluster(ClusterSpec::Simulation256());
  WorkEstimator est({});
  std::vector<std::unique_ptr<AppState>> apps;
  std::vector<BidTable> tables;
  Agent agent(&cluster.topology(), &est, 10.0);
  std::vector<GpuId> offered;
  for (GpuId g = 0; g < 128; ++g) offered.push_back(g);
  std::vector<int> offered_vec(cluster.num_machines(), 0);
  for (GpuId g : offered) ++offered_vec[cluster.topology().gpu(g).machine];
  for (int i = 0; i < n_apps; ++i) {
    apps.push_back(BenchApp(static_cast<AppId>(i), 8, 2));
    tables.push_back(agent.PrepareBid(*apps.back(), offered, 6).table);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartialAllocation(tables, offered_vec));
  }
}
BENCHMARK(BM_PartialAllocation)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

/// One full ARBITER scheduling pass (probe + offer + auction + leftovers).
void BM_ThemisSchedulingPass(benchmark::State& state) {
  const int n_apps = static_cast<int>(state.range(0));
  WorkEstimator est({});
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    Cluster cluster(ClusterSpec::Simulation256());
    std::vector<std::unique_ptr<AppState>> apps;
    AppList list;
    for (int i = 0; i < n_apps; ++i) {
      apps.push_back(BenchApp(static_cast<AppId>(i), 8, 1));
      list.push_back(apps.back().get());
    }
    SchedulerContext ctx(0.0, &cluster, &est, 20.0, &list, &rng);
    ThemisPolicy policy;
    state.ResumeTiming();
    policy.Schedule(cluster.FreeGpus(), ctx);
  }
}
BENCHMARK(BM_ThemisSchedulingPass)->Arg(8)->Arg(16)->Arg(32);

/// End-to-end simulated macrobenchmark throughput (events/sec proxy).
void BM_FullSimulation(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = SimScaleConfig(PolicyKind::kThemis, 42, 40);
    benchmark::DoNotOptimize(RunExperiment(cfg));
  }
}
BENCHMARK(BM_FullSimulation)->Unit(benchmark::kMillisecond);

/// Indexed-cluster churn at large topologies: one scheduler-pass-shaped
/// round (bench::ClusterPassChurnRound — reclaim expired, rebuild free
/// views, probe every app's holdings, re-grant; the same round
/// bench_fig02_placement_throughput sweeps) on a cluster of `machines` x 8
/// GPUs. The scan-based cluster was O(gpus) per query; the indexed one is
/// O(result + log gpus).
void BM_ClusterPassChurn(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  Cluster cluster(bench::ChurnSweepTopology(machines, 8));
  const int apps = cluster.num_machines();
  bench::ChurnPrefill(cluster, apps);
  Time now = 20.0;
  for (auto _ : state) {
    now += 0.4;
    benchmark::DoNotOptimize(bench::ClusterPassChurnRound(cluster, apps, now));
  }
}
BENCHMARK(BM_ClusterPassChurn)->Arg(64)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace themis

BENCHMARK_MAIN();
