// Tests for the streaming trace pipeline: StreamingTraceWriter /
// StreamingCsvTraceReader byte- and field-level equivalence with the slurped
// forms, GeneratorTraceReader vs Generate(), and the simulator's streamed
// mode — streamed replay must produce bit-identical results to preloading
// the same apps, while retiring finished apps eagerly enough that live
// AppStates track peak concurrency instead of trace length.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "sim/experiment.h"
#include "sim/scenario.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace themis {
namespace {

std::vector<AppSpec> SmallTrace(std::uint64_t seed = 7, int num_apps = 15) {
  TraceConfig cfg;
  cfg.seed = seed;
  cfg.num_apps = num_apps;
  return TraceGenerator(cfg).Generate();
}

TEST(StreamingTraceWriter, ByteIdenticalToWriteTraceCsv) {
  const auto apps = SmallTrace();
  std::stringstream slurped;
  WriteTraceCsv(slurped, apps);

  std::stringstream streamed;
  {
    StreamingTraceWriter writer(streamed);
    for (const AppSpec& app : apps) writer.Append(app);
    writer.Close();
  }
  EXPECT_EQ(streamed.str(), slurped.str());
}

TEST(StreamingTraceWriter, CountsAppsAndJobs) {
  const auto apps = SmallTrace();
  std::size_t jobs = 0;
  for (const AppSpec& app : apps) jobs += app.jobs.size();

  std::stringstream out;
  StreamingTraceWriter writer(out);
  for (const AppSpec& app : apps) writer.Append(app);
  writer.Close();
  EXPECT_EQ(writer.apps_written(), apps.size());
  EXPECT_EQ(writer.jobs_written(), jobs);
  writer.Close();  // idempotent
}

TEST(StreamingTraceWriter, AppendAfterCloseThrows) {
  std::stringstream out;
  StreamingTraceWriter writer(out);
  writer.Close();
  EXPECT_THROW(writer.Append(AppSpec{}), std::logic_error);
}

TEST(StreamingCsvTraceReader, YieldsExactlyTheSlurpedApps) {
  const auto apps = SmallTrace();
  std::stringstream ss;
  WriteTraceCsv(ss, apps);

  StreamingCsvTraceReader reader(ss);
  AppSpec spec;
  std::size_t i = 0;
  while (reader.Next(spec)) {
    ASSERT_LT(i, apps.size());
    EXPECT_EQ(spec.name, apps[i].name);
    EXPECT_DOUBLE_EQ(spec.arrival, apps[i].arrival);
    ASSERT_EQ(spec.jobs.size(), apps[i].jobs.size());
    for (std::size_t j = 0; j < spec.jobs.size(); ++j) {
      EXPECT_DOUBLE_EQ(spec.jobs[j].total_work, apps[i].jobs[j].total_work);
      EXPECT_EQ(spec.jobs[j].gpus_per_task, apps[i].jobs[j].gpus_per_task);
    }
    ++i;
  }
  EXPECT_EQ(i, apps.size());
  EXPECT_EQ(reader.apps_read(), apps.size());
  EXPECT_FALSE(reader.Next(spec));  // stays exhausted
}

TEST(StreamingCsvTraceReader, RejectsUnsortedArrivalsWithLineNumber) {
  auto apps = SmallTrace(3, 4);
  std::swap(apps[1].arrival, apps[2].arrival);  // now out of order
  std::stringstream ss;
  WriteTraceCsv(ss, apps);

  StreamingCsvTraceReader reader(ss, /*require_sorted=*/true);
  AppSpec spec;
  try {
    while (reader.Next(spec)) {
    }
    FAIL() << "expected unsorted-arrival error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sort"), std::string::npos) << msg;
  }
}

TEST(StreamingCsvTraceReader, PermissiveModeAcceptsUnsorted) {
  auto apps = SmallTrace(3, 4);
  std::swap(apps[1].arrival, apps[2].arrival);
  std::stringstream ss;
  WriteTraceCsv(ss, apps);
  EXPECT_EQ(ReadTraceCsv(ss).size(), apps.size());
}

TEST(StreamingCsvTraceReader, EmptyInputNamesTheSource) {
  std::stringstream empty;
  try {
    StreamingCsvTraceReader reader(empty);
    FAIL() << "expected empty-input error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos);
  }
}

TEST(GeneratorTraceReader, MatchesGenerate) {
  TraceConfig cfg;
  cfg.seed = 99;
  cfg.num_apps = 30;
  const auto apps = TraceGenerator(cfg).Generate();

  GeneratorTraceReader reader(cfg);
  AppSpec spec;
  std::size_t i = 0;
  while (reader.Next(spec)) {
    ASSERT_LT(i, apps.size());
    EXPECT_EQ(spec.arrival, apps[i].arrival);
    ASSERT_EQ(spec.jobs.size(), apps[i].jobs.size());
    for (std::size_t j = 0; j < spec.jobs.size(); ++j)
      EXPECT_EQ(spec.jobs[j].total_work, apps[i].jobs[j].total_work);
    ++i;
  }
  EXPECT_EQ(i, apps.size());
}

TEST(WriteGeneratedTrace, MatchesMaterializedWrite) {
  TraceConfig cfg;
  cfg.seed = 11;
  cfg.num_apps = 12;
  std::stringstream slurped;
  WriteTraceCsv(slurped, TraceGenerator(cfg).Generate());

  std::stringstream streamed;
  StreamingTraceWriter writer(streamed);
  const StreamedTraceStats stats = WriteGeneratedTrace(cfg, writer);
  writer.Close();
  EXPECT_EQ(streamed.str(), slurped.str());
  EXPECT_EQ(stats.apps, 12);
}

TEST(WriteGeneratedTrace, JobCapStopsEarly) {
  TraceConfig cfg;
  cfg.seed = 11;
  cfg.num_apps = 1000;
  std::stringstream out;
  StreamingTraceWriter writer(out);
  const StreamedTraceStats stats = WriteGeneratedTrace(cfg, writer, 100);
  writer.Close();
  EXPECT_GE(stats.jobs, 100);  // overshoots by at most the last app
  EXPECT_LT(stats.apps, 1000);
  EXPECT_EQ(writer.jobs_written(), static_cast<std::size_t>(stats.jobs));
}

// --------------------------------------------------------------------------
// Streamed simulation equivalence: the same workload must produce the same
// ExperimentResult whether preloaded or streamed, across policies and with
// machine failures enabled.
// --------------------------------------------------------------------------

void ExpectSameResult(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.max_fairness, b.max_fairness);
  EXPECT_EQ(a.median_fairness, b.median_fairness);
  EXPECT_EQ(a.jains_index, b.jains_index);
  EXPECT_EQ(a.avg_completion_time, b.avg_completion_time);
  EXPECT_EQ(a.gpu_time, b.gpu_time);
  EXPECT_EQ(a.peak_contention, b.peak_contention);
  EXPECT_EQ(a.unfinished_apps, b.unfinished_apps);
  EXPECT_EQ(a.machine_failures, b.machine_failures);
  EXPECT_EQ(a.scheduling_passes, b.scheduling_passes);
  EXPECT_EQ(a.finished_apps, b.finished_apps);
  EXPECT_EQ(a.rhos, b.rhos);
  EXPECT_EQ(a.completion_times, b.completion_times);
  EXPECT_EQ(a.placement_scores, b.placement_scores);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time, b.timeline[i].time);
    EXPECT_EQ(a.timeline[i].app, b.timeline[i].app);
    EXPECT_EQ(a.timeline[i].gpus, b.timeline[i].gpus);
  }
}

ExperimentConfig SmallConfig(PolicyKind policy) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Uniform(2, 4, 4, 2);
  config.policy = policy;
  config.trace.seed = 21;
  config.trace.num_apps = 25;
  config.trace.jobs_per_app_median = 6.0;
  config.trace.jobs_per_app_max = 12;
  config.sim.seed = 21;
  return config;
}

class StreamedEquivalenceTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(StreamedEquivalenceTest, StreamedMatchesPreloadedBitForBit) {
  const ExperimentConfig config = SmallConfig(GetParam());
  const auto apps = TraceGenerator(config.trace).Generate();

  const ExperimentResult preloaded = RunExperimentWithApps(config, apps);
  const ExperimentResult streamed = RunStreamingExperiment(
      config, std::make_unique<VectorTraceReader>(apps));
  ExpectSameResult(preloaded, streamed);
  EXPECT_EQ(streamed.total_apps, apps.size());
  EXPECT_LE(streamed.peak_live_apps, apps.size());
}

INSTANTIATE_TEST_SUITE_P(Policies, StreamedEquivalenceTest,
                         ::testing::Values(PolicyKind::kThemis,
                                           PolicyKind::kGandiva,
                                           PolicyKind::kTiresias,
                                           PolicyKind::kDrf));

TEST(StreamedEquivalence, CsvStreamMatchesPreloaded) {
  const ExperimentConfig config = SmallConfig(PolicyKind::kThemis);
  const auto apps = TraceGenerator(config.trace).Generate();
  std::stringstream ss;
  WriteTraceCsv(ss, apps);

  const ExperimentResult preloaded = RunExperimentWithApps(config, apps);
  const ExperimentResult streamed = RunStreamingExperiment(
      config, std::make_unique<StreamingCsvTraceReader>(ss));
  ExpectSameResult(preloaded, streamed);
}

TEST(StreamedEquivalence, HoldsUnderMachineFailures) {
  ExperimentConfig config = SmallConfig(PolicyKind::kThemis);
  config.sim.machine_mtbf_minutes = 300.0;
  const auto apps = TraceGenerator(config.trace).Generate();

  const ExperimentResult preloaded = RunExperimentWithApps(config, apps);
  const ExperimentResult streamed = RunStreamingExperiment(
      config, std::make_unique<VectorTraceReader>(apps));
  EXPECT_GT(streamed.machine_failures, 0);
  ExpectSameResult(preloaded, streamed);
}

TEST(StreamedEquivalence, UnfinishedAppsPastMaxTimeMatch) {
  ExperimentConfig config = SmallConfig(PolicyKind::kThemis);
  config.sim.max_time = 100.0;  // cut the run short
  const auto apps = TraceGenerator(config.trace).Generate();

  const ExperimentResult preloaded = RunExperimentWithApps(config, apps);
  const ExperimentResult streamed = RunStreamingExperiment(
      config, std::make_unique<VectorTraceReader>(apps));
  EXPECT_GT(streamed.unfinished_apps, 0);
  ExpectSameResult(preloaded, streamed);
  EXPECT_EQ(streamed.total_apps, apps.size());
}

TEST(StreamedEquivalence, BoundedMetricsExactAggregatesStillMatch) {
  ExperimentConfig config = SmallConfig(PolicyKind::kThemis);
  const auto apps = TraceGenerator(config.trace).Generate();
  const ExperimentResult exact = RunStreamingExperiment(
      config, std::make_unique<VectorTraceReader>(apps));

  config.sim.metrics.bounded_memory = true;
  const ExperimentResult bounded = RunStreamingExperiment(
      config, std::make_unique<VectorTraceReader>(apps));
  // Running aggregates accumulate in the identical order in both modes.
  EXPECT_EQ(bounded.max_fairness, exact.max_fairness);
  EXPECT_EQ(bounded.jains_index, exact.jains_index);
  EXPECT_EQ(bounded.avg_completion_time, exact.avg_completion_time);
  EXPECT_EQ(bounded.gpu_time, exact.gpu_time);
  // The median is the one P2-approximated summary; with only 25 finished
  // apps the estimator is still marker-limited, so allow 5% here (the 1%
  // claim is tested at realistic stream sizes in metrics_test and
  // stats_sketch_test).
  EXPECT_NEAR(bounded.median_fairness, exact.median_fairness,
              0.05 * exact.median_fairness + 1e-9);
}

TEST(StreamedEquivalence, EagerRetirementBoundsLiveApps) {
  // A long, lightly-contended trace: most apps finish long before the last
  // ones arrive, so peak concurrency is far below the app count.
  ExperimentConfig config = SmallConfig(PolicyKind::kThemis);
  config.trace.num_apps = 120;
  config.trace.mean_interarrival = 60.0;
  const ExperimentResult r = RunStreamingExperiment(
      config, std::make_unique<GeneratorTraceReader>(config.trace));
  EXPECT_EQ(r.total_apps, 120u);
  EXPECT_EQ(r.unfinished_apps, 0);
  EXPECT_GE(r.peak_live_apps, 1u);
  EXPECT_LT(r.peak_live_apps, 30u) << "retirement failed to bound residency";
}

TEST(Scenario, TraceFileStreamsAndMatchesTraceCsv) {
  const ExperimentConfig config = SmallConfig(PolicyKind::kThemis);
  const auto apps = TraceGenerator(config.trace).Generate();
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/stream_scenario_trace.csv";
  WriteTraceCsvFile(path, apps);

  const std::string json = R"({
    "defaults": { "cluster": {"racks": 2, "machines_per_rack": 4,
                              "gpus_per_machine": 4, "gpus_per_slot": 2},
                  "sim": {"seed": 21} },
    "scenarios": [
      { "name": "slurped",  "trace_csv":  ")" + path + R"(" },
      { "name": "streamed", "trace_file": ")" + path + R"(" }
    ]
  })";
  const auto runs = SweepRunner().Run(LoadScenarios(json));
  ASSERT_EQ(runs.size(), 2u);
  ExpectSameResult(runs[0].ResultOrThrow(), runs[1].ResultOrThrow());
}

TEST(Scenario, TraceFileAndTraceCsvTogetherIsAnError) {
  const std::string json = R"({
    "scenarios": [
      { "name": "bad", "trace_csv": "a.csv", "trace_file": "b.csv" }
    ]
  })";
  EXPECT_THROW(LoadScenarios(json), std::runtime_error);
}

TEST(Simulator, StreamedTraceOutOfOrderArrivalsAreFatal) {
  auto apps = SmallTrace(3, 5);
  std::swap(apps[1].arrival, apps[3].arrival);
  ExperimentConfig config = SmallConfig(PolicyKind::kThemis);
  EXPECT_THROW(RunStreamingExperiment(
                   config, std::make_unique<VectorTraceReader>(apps)),
               std::runtime_error);
}

}  // namespace
}  // namespace themis
