#include "placement/placement_model.h"

#include <algorithm>
#include <map>

namespace themis {

double SlowdownAtLevel(const ModelProfile& model, LocalityLevel level) {
  switch (level) {
    case LocalityLevel::kSlot: return model.sensitivity.slot;
    case LocalityLevel::kMachine: return model.sensitivity.machine;
    case LocalityLevel::kRack: return model.sensitivity.rack;
    case LocalityLevel::kCrossRack: return model.sensitivity.cross_rack;
  }
  return 1.0;
}

double Slowdown(const ModelProfile& model, const std::vector<GpuId>& gpus,
                const Topology& topo) {
  if (gpus.empty()) return 1.0;
  return SlowdownAtLevel(model, topo.SpanLevel(gpus));
}

double PlacementScore(const std::vector<GpuId>& gpus, const Topology& topo) {
  if (gpus.empty()) return 1.0;
  switch (topo.SpanLevel(gpus)) {
    case LocalityLevel::kSlot: return 1.0;
    case LocalityLevel::kMachine: return 0.8;
    case LocalityLevel::kRack: return 0.6;
    case LocalityLevel::kCrossRack: return 0.4;
  }
  return 0.4;
}

double EffectiveRate(const ModelProfile& model, const std::vector<GpuId>& gpus,
                     const Topology& topo) {
  if (gpus.empty()) return 0.0;
  // Gangs are synchronous SGD: every iteration barriers on the slowest
  // worker, so a mixed-generation gang runs at its minimum speed — one slow
  // straggler GPU drags the whole gang.
  return static_cast<double>(gpus.size()) * Slowdown(model, gpus, topo) *
         topo.MinSpeed(gpus);
}

namespace {

// Free GPUs grouped by machine, machines ordered by descending free count so
// that whole-machine fills come first, with rack as a secondary grouping key
// and generation speed preferring faster machines at equal locality.
struct MachineGroup {
  MachineId machine;
  RackId rack;
  double speed;
  std::vector<GpuId> gpus;  // ascending; ascending slot order by construction
};

std::vector<MachineGroup> GroupByMachine(const std::vector<GpuId>& free,
                                         const Topology& topo) {
  std::map<MachineId, MachineGroup> by_machine;
  for (GpuId g : free) {
    const GpuCoord& c = topo.gpu(g);
    auto& grp = by_machine[c.machine];
    grp.machine = c.machine;
    grp.rack = c.rack;
    grp.speed = topo.machine_speed(c.machine);
    grp.gpus.push_back(g);
  }
  std::vector<MachineGroup> out;
  out.reserve(by_machine.size());
  for (auto& [m, grp] : by_machine) out.push_back(std::move(grp));
  return out;
}

}  // namespace

std::vector<GpuId> PickBestPlaced(int count, const std::vector<GpuId>& free,
                                  const Topology& topo) {
  std::vector<GpuId> picked;
  if (count <= 0 || free.empty()) return picked;

  auto groups = GroupByMachine(free, topo);

  // First preference: a single machine that fits the whole request; among
  // those, the fastest generation first (a whole gang on one machine runs at
  // that machine's speed), then the *tightest* fit to avoid fragmenting big
  // machines. With uniform speeds this is the original tightest-fit rule.
  const MachineGroup* best_fit = nullptr;
  for (const auto& g : groups) {
    if (static_cast<int>(g.gpus.size()) >= count) {
      if (!best_fit || g.speed > best_fit->speed ||
          (g.speed == best_fit->speed && g.gpus.size() < best_fit->gpus.size()))
        best_fit = &g;
    }
  }
  if (best_fit) {
    picked.assign(best_fit->gpus.begin(), best_fit->gpus.begin() + count);
    return picked;
  }

  // Otherwise fill machine-by-machine, largest group first, preferring to
  // stay within the rack that holds the most free GPUs.
  std::map<RackId, int> rack_free;
  for (const auto& g : groups) rack_free[g.rack] += static_cast<int>(g.gpus.size());
  RackId best_rack = groups.front().rack;
  int best_rack_free = -1;
  for (const auto& [rack, cnt] : rack_free)
    if (cnt > best_rack_free) {
      best_rack = rack;
      best_rack_free = cnt;
    }

  std::stable_sort(groups.begin(), groups.end(),
                   [&](const MachineGroup& a, const MachineGroup& b) {
                     const bool ar = a.rack == best_rack;
                     const bool br = b.rack == best_rack;
                     if (ar != br) return ar;  // preferred rack first
                     // Faster machines first at equal locality (no-op on
                     // uniform-speed clusters).
                     if (a.speed != b.speed) return a.speed > b.speed;
                     return a.gpus.size() > b.gpus.size();
                   });
  for (const auto& g : groups) {
    for (GpuId id : g.gpus) {
      if (static_cast<int>(picked.size()) == count) return picked;
      picked.push_back(id);
    }
  }
  return picked;  // fewer than count available
}

std::vector<GpuId> PickBestPlacedNear(int count, const std::vector<GpuId>& free,
                                      const std::vector<GpuId>& anchor,
                                      const Topology& topo) {
  if (count <= 0 || free.empty()) return {};
  if (anchor.empty()) return PickBestPlaced(count, free, topo);

  std::map<MachineId, int> anchor_machines;
  std::map<RackId, int> anchor_racks;
  for (GpuId g : anchor) {
    const GpuCoord& c = topo.gpu(g);
    ++anchor_machines[c.machine];
    ++anchor_racks[c.rack];
  }

  auto groups = GroupByMachine(free, topo);
  std::stable_sort(groups.begin(), groups.end(),
                   [&](const MachineGroup& a, const MachineGroup& b) {
                     const bool am = anchor_machines.count(a.machine) > 0;
                     const bool bm = anchor_machines.count(b.machine) > 0;
                     if (am != bm) return am;  // same machine as anchor first
                     const bool ar = anchor_racks.count(a.rack) > 0;
                     const bool br = anchor_racks.count(b.rack) > 0;
                     if (ar != br) return ar;  // then same rack
                     // Locality beats speed (the anchor's generation paces
                     // the gang anyway); at equal locality prefer faster.
                     if (a.speed != b.speed) return a.speed > b.speed;
                     return a.gpus.size() > b.gpus.size();
                   });
  std::vector<GpuId> picked;
  for (const auto& g : groups) {
    for (GpuId id : g.gpus) {
      if (static_cast<int>(picked.size()) == count) return picked;
      picked.push_back(id);
    }
  }
  return picked;
}

}  // namespace themis
