#include "sim/events.h"

namespace themis {

void EventQueue::Push(Event e) {
  e.seq = next_seq_++;
  heap_.push(e);
}

Event EventQueue::Pop() {
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace themis
