// Mutable cluster state: which app/job owns each GPU and until when.
//
// THEMIS associates a lease with every GPU (Sec. 3). An allocation is binding
// for the lease duration; when the lease expires the GPU returns to the pool
// the ARBITER auctions off. The Cluster class enforces the single-owner
// invariant (a GPU is held by at most one app at a time) and provides the
// free-GPU views the policies consume.
//
// State is *indexed*, not scanned: alongside the per-GPU lease table (the
// ground truth) the cluster maintains
//   - a per-machine sorted free-GPU list (free views in O(free + machines)),
//   - an ordered set of (expiry, gpu) pairs (expiry queries and the next
//     lease tick in O(log n)),
//   - a per-(app, job) holdings map (holdings queries and ReleaseAll in time
//     proportional to the app's holdings, not the cluster size).
// Every mutation (Allocate / Release / ReleaseAll / Renew) keeps the indices
// consistent with the lease table; the query API is unchanged from the
// scan-based implementation and returns identically ordered results.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/topology.h"
#include "common/types.h"

namespace themis {

struct Lease {
  AppId app = kNoApp;
  JobId job = kNoJob;
  Time expiry = 0.0;
};

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);

  const Topology& topology() const { return topo_; }
  int num_gpus() const { return topo_.num_gpus(); }
  int num_machines() const { return topo_.num_machines(); }

  bool IsFree(GpuId gpu) const { return !leases_[gpu].has_value(); }
  const std::optional<Lease>& lease(GpuId gpu) const { return leases_[gpu]; }

  /// All currently unallocated GPUs, in ascending GPU-id order.
  std::vector<GpuId> FreeGpus() const;

  /// Free GPUs ordered fastest generation first (machines by descending
  /// speed, ties ascending machine id; ascending GPU id within a machine).
  /// With uniform speeds this equals FreeGpus(). Policies take fastest-first
  /// from this view without scanning speeds themselves.
  std::vector<GpuId> FreeGpusBySpeed() const;

  /// Sum of generation speeds over the free pool (effective free capacity
  /// in K80-equivalent GPUs); maintained incrementally, O(1). Machines that
  /// are down contribute nothing, matching FreeGpus().
  double FreeEffectiveGpus() const { return free_speed_total_; }

  /// Free GPU count per machine; index = MachineId. This is the resource
  /// vector R-> the ARBITER offers in auctions (one dimension per machine).
  std::vector<int> FreeGpusPerMachine() const;

  /// Free GPUs hosted by one machine.
  std::vector<GpuId> FreeGpusOnMachine(MachineId m) const;

  /// GPUs currently held by an app (optionally restricted to one job).
  std::vector<GpuId> GpusHeldBy(AppId app) const;
  std::vector<GpuId> GpusHeldBy(AppId app, JobId job) const;

  /// Grant `gpu` to (app, job) until `expiry`. Throws if the GPU is taken.
  void Allocate(GpuId gpu, AppId app, JobId job, Time expiry);

  /// Release a GPU back to the free pool. Throws if it was already free.
  void Release(GpuId gpu);

  /// Release every GPU held by the app (e.g., app finished).
  void ReleaseAll(AppId app);

  /// GPUs whose lease expired at or before `now`, ascending GPU-id order.
  /// Does not release them; the simulator decides when reclaimed GPUs enter
  /// an auction.
  std::vector<GpuId> ExpiredGpus(Time now) const;

  /// True when at least one lease has expired at or before `t` — the O(1)
  /// staleness probe for lease-tick events: a tick with nothing expired
  /// advances time but demands no scheduling pass.
  bool HasExpiredLease(Time t) const {
    return !expiries_.empty() && expiries_.begin()->first <= t;
  }

  /// Earliest lease expiry strictly after `t`; kInfiniteTime when no lease
  /// expires later. Drives the simulator's next lease tick without scanning.
  Time NextExpiryAfter(Time t) const;

  /// Latest lease expiry at or before `t`; -kInfiniteTime when none. The
  /// epsilon-batched auction jumps to this instant so every lease expiring
  /// within the window is reclaimed by one pass.
  Time LatestExpiryAtOrBefore(Time t) const {
    auto it = expiries_.upper_bound({t, std::numeric_limits<GpuId>::max()});
    if (it == expiries_.begin()) return -kInfiniteTime;
    return std::prev(it)->first;
  }

  /// Extend the lease on a GPU already held by `app` (lease renewal when an
  /// app wins back its own GPUs).
  void Renew(GpuId gpu, Time new_expiry);

  /// Failure-domain support (Sec. 6 "Scheduling after failures"): a machine
  /// marked down contributes no free GPUs and rejects allocations. Releasing
  /// the GPUs an app held on the failed machine is the simulator's job.
  void SetMachineDown(MachineId machine, bool down);
  bool IsMachineDown(MachineId machine) const { return machine_down_[machine]; }
  int num_machines_down() const { return num_machines_down_; }

  int num_allocated() const { return num_allocated_; }
  int num_free() const { return num_gpus() - num_allocated_; }

 private:
  /// Remove `gpu` from the free list of its machine (on allocation).
  void TakeFromFreeList(GpuId gpu);
  /// Return `gpu` to the free list of its machine (on release).
  void ReturnToFreeList(GpuId gpu);
  /// Drop one GPU's lease plus every index entry derived from it.
  void ReleaseIndexed(GpuId gpu, const Lease& lease);

  Topology topo_;
  /// Ground truth: per-GPU lease. The indices below are derived views.
  std::vector<std::optional<Lease>> leases_;
  std::vector<bool> machine_down_;
  int num_allocated_ = 0;
  int num_machines_down_ = 0;

  /// Free GPUs per machine, each list sorted ascending. Machine GPU ids are
  /// contiguous, so concatenating the lists in machine order yields the
  /// global ascending free list; concatenating in machines_by_speed order
  /// yields the fastest-first list.
  std::vector<std::vector<GpuId>> free_on_machine_;

  /// Sum of generation speeds over free GPUs on up machines; adjusted by
  /// every free-list mutation and by SetMachineDown.
  double free_speed_total_ = 0.0;

  /// (expiry, gpu) for every leased GPU; begin() is the earliest expiry.
  std::set<std::pair<Time, GpuId>> expiries_;

  /// app -> job -> sorted GPUs held. Ascending iteration of the outer map is
  /// not required (queries are per-app), so it hashes.
  std::unordered_map<AppId, std::map<JobId, std::set<GpuId>>> holdings_;
};

}  // namespace themis
