#include "baselines/drf.h"

#include <algorithm>

namespace themis {

GrantSet DrfPolicy::RunRound(const ResourceOffer& /*offer*/,
                             SchedulerContext& ctx) {
  // Max-min on instantaneous GPU share: one gang at a time to the app with
  // the smallest current holding (dominant share == GPU share in a
  // single-resource cluster). Shares are *effective* — speed-weighted GPU
  // counts — so an app holding two A100s is richer than one holding two
  // K80s; on uniform-speed clusters the weighted share equals the raw count
  // and the decisions are unchanged.
  const FreePool& pool = ctx.free_pool();
  const Topology& topo = ctx.topology();
  while (!pool.empty()) {
    AppState* poorest = nullptr;
    double poorest_share = 0.0;
    int poorest_job = -1;
    for (AppState* app : ctx.apps()) {
      for (int j : app->ActiveJobs()) {
        JobState& job = app->jobs[j];
        if (job.UnmetGangs() <= 0) continue;
        if (job.spec.gpus_per_task > pool.size()) continue;
        const double share = app->EffectiveGpusHeld(topo);
        if (poorest == nullptr || share < poorest_share ||
            (share == poorest_share && app->id < poorest->id)) {
          poorest = app;
          poorest_share = share;
          poorest_job = j;
        }
        break;  // evaluating one eligible job per app suffices for the share
      }
    }
    if (poorest == nullptr) break;

    JobState& job = poorest->jobs[poorest_job];
    // Placement-unaware, speed-aware: fastest pooled GPUs first (the first
    // pooled ids on uniform-speed clusters).
    ctx.Grant(*poorest, job, pool.FirstNFastest(job.spec.gpus_per_task));
  }
  return ctx.TakeGrants();
}

}  // namespace themis
