#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/log.h"

namespace themis {
namespace {
constexpr double kFinishEps = 1e-6;
}

void SimConfig::Validate() const {
  if (!(lease_minutes > 0.0))
    throw std::invalid_argument(
        "SimConfig: lease_minutes must be > 0 (got " +
        std::to_string(lease_minutes) + ")");
  if (restart_overhead_minutes < 0.0)
    throw std::invalid_argument(
        "SimConfig: restart_overhead_minutes must be >= 0 (got " +
        std::to_string(restart_overhead_minutes) + ")");
  if (!(max_time > 0.0))
    throw std::invalid_argument("SimConfig: max_time must be > 0 (got " +
                                std::to_string(max_time) + ")");
  if (machine_mtbf_minutes < 0.0)
    throw std::invalid_argument(
        "SimConfig: machine_mtbf_minutes must be >= 0 (got " +
        std::to_string(machine_mtbf_minutes) + ")");
  if (machine_mtbf_minutes > 0.0 && !(machine_repair_minutes > 0.0))
    throw std::invalid_argument(
        "SimConfig: machine_repair_minutes must be > 0 when failure "
        "injection is on (got " +
        std::to_string(machine_repair_minutes) + ")");
}

Simulator::Simulator(ClusterSpec cluster_spec, std::vector<AppSpec> specs,
                     std::unique_ptr<IRoundScheduler> scheduler,
                     SimConfig config)
    : cluster_(std::move(cluster_spec)),
      scheduler_(std::move(scheduler)),
      config_(config),
      estimator_(config.estimator),
      rng_(config.seed) {
  config_.Validate();
  apps_.reserve(specs.size());
  AppId next_app = 0;
  for (AppSpec& spec : specs) {
    auto app = std::make_unique<AppState>();
    app->id = next_app++;
    app->spec = std::move(spec);
    // T_ID assumes the app ran alone with ideal placement — on a
    // heterogeneous cluster that means the fastest generation, so rho
    // compares effective GPU-hours, not raw counts. Division by 1.0 on
    // uniform-speed clusters leaves the classic T_ID bit-identical.
    app->ideal_time = std::max(
        1e-9, app->spec.IdealRunningTime() / cluster_.topology().max_speed());
    app->tuner = MakeAppScheduler(app->spec);
    JobId next_job = 0;
    for (const JobSpec& js : app->spec.jobs) {
      JobState job;
      job.id = next_job++;
      job.spec = js;
      job.parallelism_cap = js.MaxParallelism();
      app->jobs.push_back(std::move(job));
    }
    queue_.Push(Event{app->spec.arrival, 0, EventType::kAppArrival, app->id,
                      kNoJob, 0});
    apps_.push_back(std::move(app));
  }

  // Failure injection: seed per-machine failure clocks (Sec. 6).
  failure_rng_ = Rng(config_.seed ^ 0xFA11DEADULL);
  if (config_.machine_mtbf_minutes > 0.0) {
    for (MachineId m = 0; m < static_cast<MachineId>(cluster_.num_machines());
         ++m) {
      Event e;
      e.time = failure_rng_.Exponential(config_.machine_mtbf_minutes);
      e.type = EventType::kMachineFail;
      e.machine = m;
      queue_.Push(e);
    }
  }
}

AppState* Simulator::FindApp(AppId id) {
  return (id < apps_.size()) ? apps_[id].get() : nullptr;
}

void Simulator::ActivateApp(AppState* app) {
  const auto it = std::lower_bound(
      active_apps_.begin(), active_apps_.end(), app,
      [](const AppState* a, const AppState* b) { return a->id < b->id; });
  if (it == active_apps_.end() || (*it)->id != app->id)
    active_apps_.insert(it, app);
}

void Simulator::DeactivateApp(AppId id) {
  const auto it = std::lower_bound(
      active_apps_.begin(), active_apps_.end(), id,
      [](const AppState* a, AppId b) { return a->id < b; });
  if (it != active_apps_.end() && (*it)->id == id) active_apps_.erase(it);
}

void Simulator::AdvanceTo(Time t) {
  if (t <= last_advance_) return;
  for (AppState* app : active_apps_) {
    for (JobState& job : app->jobs) {
      if (job.gpus.empty()) continue;
      // Held GPUs consume GPU-time for the whole interval (they are leased),
      // even while the job restarts from a checkpoint. Attained service is
      // *effective* (speed-weighted) GPU-minutes so Tiresias' LAS ordering
      // prices an A100-minute above a K80-minute; the GPU-time metric stays
      // raw occupancy. Both coincide on speed-1.0 clusters.
      const double held_dt = t - last_advance_;
      const Work gpu_minutes = held_dt * static_cast<double>(job.gpus.size());
      const Work effective_minutes =
          held_dt * cluster_.topology().SpeedSum(job.gpus);
      job.attained_service += effective_minutes;
      app->attained_service += effective_minutes;
      metrics_.RecordGpuTime(gpu_minutes);
      if (!job.Running()) continue;
      const Time seg_start = std::max(last_advance_, job.resume_at);
      if (t > seg_start) {
        job.done += (t - seg_start) * job.Rate(cluster_.topology());
        job.done = std::min(job.done, job.spec.total_work);
      }
    }
  }
  last_advance_ = t;
}

void Simulator::KillJob(AppState& /*app*/, JobState& job) {
  job.alive = false;
  ++job.alloc_version;
  for (GpuId g : job.gpus) cluster_.Release(g);
  job.gpus.clear();
}

void Simulator::FinishJob(Time t, AppState& app, JobState& job) {
  job.finished = true;
  job.finish_time = t;
  ++job.alloc_version;
  for (GpuId g : job.gpus) cluster_.Release(g);
  job.gpus.clear();
  // First job to reach the target accuracy identifies the app's best model:
  // the app is done (Sec. 2.1) and its remaining jobs are terminated.
  FinishApp(t, app);
}

void Simulator::FinishApp(Time t, AppState& app) {
  if (app.finished) return;
  app.finished = true;
  app.finish_time = t;
  ++finished_apps_;
  DeactivateApp(app.id);
  for (JobState& job : app.jobs)
    if (job.alive && !job.finished) KillJob(app, job);

  AppRecord record;
  record.app = app.id;
  record.arrival = app.arrival();
  record.finish = t;
  record.ideal_time = app.ideal_time;
  record.mean_placement_score =
      app.placement_scores.count() > 0 ? app.placement_scores.mean() : 1.0;
  record.attained_service = app.attained_service;
  metrics_.RecordAppFinish(record);
}

void Simulator::PushLeaseTick(Time t) {
  if (t > config_.max_time) return;
  if (pushed_ticks_.insert(t).second)
    queue_.Push(Event{t, 0, EventType::kLeaseTick, kNoApp, kNoJob, 0});
}

void Simulator::RescheduleFinishEvents(Time t) {
  for (AppState* app : active_apps_) {
    for (JobState& job : app->jobs) {
      if (!job.Running()) continue;
      const double rate = job.Rate(cluster_.topology());
      if (rate <= 0.0) continue;
      const Time start = std::max(t, job.resume_at);
      const Time finish = start + job.RemainingWork() / rate;
      if (finish <= config_.max_time)
        queue_.Push(Event{finish, 0, EventType::kJobFinish, app->id, job.id,
                          job.alloc_version});
    }
  }
}

void Simulator::SchedulingPass(Time t) {
  ++passes_;

  // Lease ticks at or before t have fired; drop them so the dedup set stays
  // proportional to the pending ticks, not the run length.
  pushed_ticks_.erase(pushed_ticks_.begin(), pushed_ticks_.upper_bound(t));

  // Snapshot gangs to detect real changes (lease renewals that win the same
  // GPUs back incur no restart overhead).
  std::map<std::pair<AppId, JobId>, std::vector<GpuId>> before;
  for (AppState* app : active_apps_)
    for (JobState& job : app->jobs) before[{app->id, job.id}] = job.gpus;

  // 1. Reclaim expired leases (O(expired log n) via the expiry index).
  for (GpuId g : cluster_.ExpiredGpus(t)) {
    const Lease lease = *cluster_.lease(g);
    cluster_.Release(g);
    AppState* app = FindApp(lease.app);
    if (app != nullptr && lease.job < app->jobs.size()) {
      auto& gpus = app->jobs[lease.job].gpus;
      gpus.erase(std::remove(gpus.begin(), gpus.end(), g), gpus.end());
    }
  }

  // 2. Per-app tuner step: kills and parallelism caps. Caps only change
  // here, so each app's capped demand is summed in the same walk.
  long long demand = 0;
  for (AppState* app : active_apps_) {
    const TunerDecision decision = app->tuner->Step(app->Views(), t);
    for (int idx : decision.kill) {
      JobState& job = app->jobs[idx];
      if (job.alive && !job.finished) KillJob(*app, job);
    }
    for (std::size_t j = 0; j < app->jobs.size(); ++j)
      app->jobs[j].parallelism_cap = decision.parallelism_cap[j];
    // A job whose cap shrank below its current gang keeps the lease until
    // expiry (allocations are binding, Sec. 4's strawman discussion).
    demand += app->CapDemand();
  }

  // Track contention: total live demand (held + unmet) over capacity.
  peak_contention_ = std::max(peak_contention_,
                              static_cast<double>(demand) /
                                  static_cast<double>(cluster_.num_gpus()));

  // 3. One ARBITER round: publish the offer (free pool computed once from
  // the cluster indices, round id = pass number), let the scheduler stage
  // its grants against the offer's pool, then apply the leases — the single
  // grant-application path; policies never touch the cluster.
  std::vector<GpuId> free = cluster_.FreeGpus();
  if (!free.empty() && !active_apps_.empty()) {
    ResourceOffer offer;
    offer.round_id = static_cast<std::uint64_t>(passes_);
    offer.time = t;
    offer.lease_duration = config_.lease_minutes;
    offer.free_per_machine = cluster_.FreeGpusPerMachine();
    offer.machine_speeds = cluster_.topology().machine_speeds();
    offer.gpus = std::move(free);
    SchedulerContext ctx(offer, &cluster_, &estimator_, &active_apps_, &rng_);
    const GrantSet grants = scheduler_->RunRound(offer, ctx);
    ApplyGrants(grants, cluster_);
    if (grants.diagnostics.auction_ran)
      metrics_.RecordAuction(grants.diagnostics.auction_participants,
                             grants.diagnostics.offered_gpus,
                             grants.diagnostics.granted_gpus,
                             grants.diagnostics.leftover_gpus);
    if (round_observer_) round_observer_(offer, grants);
  }

  // 4. Apply restart overheads for changed gangs; sample placement scores.
  for (AppState* app : active_apps_) {
    int held = 0;
    for (JobState& job : app->jobs) {
      held += static_cast<int>(job.gpus.size());
      auto it = before.find({app->id, job.id});
      const bool changed = it == before.end() || it->second != job.gpus;
      if (!changed) continue;
      ++job.alloc_version;
      if (!job.gpus.empty()) {
        job.resume_at = t + config_.restart_overhead_minutes;
        app->placement_scores.Add(
            PlacementScore(job.gpus, cluster_.topology()));
      }
    }
    metrics_.RecordAllocation(t, app->id, held);
  }

  // 5. Schedule lease ticks + projected finish events. The expiry index
  // answers the next-expiry query directly instead of a full GPU scan.
  const Time next_expiry = cluster_.NextExpiryAfter(t);
  if (std::isfinite(next_expiry)) PushLeaseTick(next_expiry);
  RescheduleFinishEvents(t);
}

SimResult Simulator::Run() {
  while (!queue_.Empty() && finished_apps_ < static_cast<int>(apps_.size())) {
    const Time t = queue_.Top().time;
    if (t > config_.max_time) break;
    AdvanceTo(t);

    bool need_schedule = false;
    while (!queue_.Empty() && queue_.Top().time <= t + 1e-12) {
      const Event e = queue_.Pop();
      switch (e.type) {
        case EventType::kAppArrival: {
          AppState* app = FindApp(e.app);
          app->arrived = true;
          app->tuner->Init(app->spec);
          ActivateApp(app);
          need_schedule = true;
          break;
        }
        case EventType::kLeaseTick:
          need_schedule = true;
          break;
        case EventType::kJobFinish: {
          AppState* app = FindApp(e.app);
          if (app == nullptr || app->finished) break;
          JobState& job = app->jobs[e.job];
          if (job.alloc_version != e.version || !job.Running()) break;
          if (job.RemainingWork() <= kFinishEps + 1e-9 * job.spec.total_work) {
            FinishJob(t, *app, job);
            need_schedule = true;
          }
          // Otherwise the projection was invalidated by an overhead change;
          // a fresh event was (or will be) scheduled by the pass that
          // changed it.
          break;
        }
        case EventType::kMachineFail: {
          ++machine_failures_;
          cluster_.SetMachineDown(e.machine, true);
          // Revoke every lease on the failed machine; affected jobs lose
          // part (or all) of their gang and restart from checkpoints once
          // rescheduled.
          for (GpuId g : cluster_.topology().machine_gpus(e.machine)) {
            if (cluster_.IsFree(g)) continue;
            const Lease lease = *cluster_.lease(g);
            cluster_.Release(g);
            ++leases_revoked_by_failures_;
            AppState* app = FindApp(lease.app);
            if (app != nullptr && lease.job < app->jobs.size()) {
              JobState& job = app->jobs[lease.job];
              auto& gpus = job.gpus;
              gpus.erase(std::remove(gpus.begin(), gpus.end(), g), gpus.end());
              ++job.alloc_version;
              job.resume_at = t + config_.restart_overhead_minutes;
            }
          }
          Event repair;
          repair.time = t + config_.machine_repair_minutes;
          repair.type = EventType::kMachineRepair;
          repair.machine = e.machine;
          queue_.Push(repair);
          need_schedule = true;
          break;
        }
        case EventType::kMachineRepair: {
          cluster_.SetMachineDown(e.machine, false);
          if (config_.machine_mtbf_minutes > 0.0 &&
              finished_apps_ < static_cast<int>(apps_.size())) {
            Event next;
            next.time = t + failure_rng_.Exponential(config_.machine_mtbf_minutes);
            next.type = EventType::kMachineFail;
            next.machine = e.machine;
            queue_.Push(next);
          }
          need_schedule = true;
          break;
        }
      }
    }
    if (need_schedule) SchedulingPass(t);
  }

  SimResult result;
  result.end_time = last_advance_;
  result.scheduling_passes = passes_;
  result.peak_contention = peak_contention_;
  result.machine_failures = machine_failures_;
  result.gpu_leases_revoked_by_failures = leases_revoked_by_failures_;
  for (auto& app : apps_)
    if (!app->finished) result.unfinished.push_back(app->id);
  result.metrics = std::move(metrics_);
  return result;
}

}  // namespace themis
