#include "core/rho_index.h"

#include <algorithm>

#include "common/types.h"

namespace themis {

void RhoIndex::Update(AppState* app) {
  std::uint8_t cls = kAbsent;
  if (app->arrived && !app->finished) {
    bool holds = false;
    for (const JobState& job : app->jobs)
      if (!job.gpus.empty()) {
        holds = true;
        break;
      }
    if (holds) {
      cls = kHolder;
    } else {
      // No gang anywhere: the probe's running minimum stays infinite and
      // CurrentRho returns the kUnboundedRho constant (see header). Pin
      // last_rho to it here so the value stays fresh without a probe; it
      // cannot drift until the next reclassifying event runs Update again.
      app->last_rho = kUnboundedRho;
      if (app->UnmetDemand() > 0) cls = kUnbounded;
    }
  }
  if (cls == app->rho_index_class) return;  // keys are immutable: no re-sort

  switch (app->rho_index_class) {
    case kHolder: {
      const auto it = std::lower_bound(
          holders_.begin(), holders_.end(), app->id,
          [](const AppState* a, AppId b) { return a->id < b; });
      if (it != holders_.end() && (*it)->id == app->id) holders_.erase(it);
      break;
    }
    case kUnbounded:
      unbounded_.erase(app);
      break;
    default:
      break;
  }
  switch (cls) {
    case kHolder: {
      const auto it = std::lower_bound(
          holders_.begin(), holders_.end(), app->id,
          [](const AppState* a, AppId b) { return a->id < b; });
      holders_.insert(it, app);
      break;
    }
    case kUnbounded:
      unbounded_.insert(app);
      break;
    default:
      break;
  }
  app->rho_index_class = cls;
}

void RhoIndex::SetTiebreak(bool short_app_tiebreak) {
  if (short_app_tiebreak == short_app_tiebreak_) return;
  short_app_tiebreak_ = short_app_tiebreak;
  UnboundedSet reordered{UnboundedLess{short_app_tiebreak}};
  for (AppState* app : unbounded_) reordered.insert(app);
  unbounded_.swap(reordered);  // std::set::swap carries the comparator over
}

}  // namespace themis
