#include "cluster/topology.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace themis {

const char* ToString(LocalityLevel level) {
  switch (level) {
    case LocalityLevel::kSlot: return "slot";
    case LocalityLevel::kMachine: return "machine";
    case LocalityLevel::kRack: return "rack";
    case LocalityLevel::kCrossRack: return "cross-rack";
  }
  return "?";
}

int ClusterSpec::TotalGpus() const {
  int total = 0;
  for (const auto& rack : racks)
    for (const auto& m : rack.machines) total += m.num_gpus;
  return total;
}

int ClusterSpec::TotalMachines() const {
  int total = 0;
  for (const auto& rack : racks) total += static_cast<int>(rack.machines.size());
  return total;
}

ClusterSpec ClusterSpec::Simulation256() {
  // 4 racks; each rack hosts 12x 4-GPU machines (NVLink pairs), 6x 2-GPU
  // machines and 4x 1-GPU machines: 4 * (48 + 12 + 4) = 256 GPUs.
  ClusterSpec spec;
  for (int r = 0; r < 4; ++r) {
    RackSpec rack;
    for (int i = 0; i < 12; ++i) rack.machines.push_back({4, 2});
    for (int i = 0; i < 6; ++i) rack.machines.push_back({2, 2});
    for (int i = 0; i < 4; ++i) rack.machines.push_back({1, 1});
    spec.racks.push_back(std::move(rack));
  }
  return spec;
}

ClusterSpec ClusterSpec::Testbed50() {
  // 50 GPUs across 20 instances with 1/2/4 GPUs each, mirroring the paper's
  // NC/NV-series Azure mixture, spread over two racks:
  //   rack A: 7x 4-GPU + 4x 2-GPU + 2x 1-GPU = 38 GPUs, 13 instances
  //   rack B: 2x 4-GPU + 1x 2-GPU + 2x 1-GPU = 12 GPUs,  5 instances
  // plus 2 more 1-GPU boxes on rack B -> 50 GPUs... keep arithmetic explicit:
  //   rack A: 7*4 + 4*2 + 2*1 = 38; rack B: 2*4 + 1*2 + 2*1 = 12; total 50.
  ClusterSpec spec;
  RackSpec a;
  for (int i = 0; i < 7; ++i) a.machines.push_back({4, 2});
  for (int i = 0; i < 4; ++i) a.machines.push_back({2, 2});
  for (int i = 0; i < 2; ++i) a.machines.push_back({1, 1});
  RackSpec b;
  for (int i = 0; i < 2; ++i) b.machines.push_back({4, 2});
  for (int i = 0; i < 1; ++i) b.machines.push_back({2, 2});
  for (int i = 0; i < 2; ++i) b.machines.push_back({1, 1});
  spec.racks.push_back(std::move(a));
  spec.racks.push_back(std::move(b));
  return spec;
}

ClusterSpec ClusterSpec::Uniform(int racks, int machines_per_rack,
                                 int gpus_per_machine, int gpus_per_slot) {
  ClusterSpec spec;
  for (int r = 0; r < racks; ++r) {
    RackSpec rack;
    for (int m = 0; m < machines_per_rack; ++m)
      rack.machines.push_back({gpus_per_machine, gpus_per_slot});
    spec.racks.push_back(std::move(rack));
  }
  return spec;
}

Topology::Topology(ClusterSpec spec) : spec_(std::move(spec)) {
  GpuId next_gpu = 0;
  MachineId next_machine = 0;
  for (RackId r = 0; r < spec_.racks.size(); ++r) {
    for (const MachineSpec& m : spec_.racks[r].machines) {
      if (m.num_gpus <= 0)
        throw std::invalid_argument("machine with non-positive GPU count");
      if (m.gpus_per_slot <= 0 || m.num_gpus % m.gpus_per_slot != 0)
        throw std::invalid_argument("num_gpus must be a multiple of gpus_per_slot");
      machine_racks_.push_back(r);
      machine_gpu_counts_.push_back(m.num_gpus);
      std::vector<GpuId> ids;
      for (int g = 0; g < m.num_gpus; ++g) {
        GpuCoord coord;
        coord.gpu = next_gpu;
        coord.machine = next_machine;
        coord.rack = r;
        coord.slot = g / m.gpus_per_slot;
        coord.index_in_slot = g % m.gpus_per_slot;
        gpus_.push_back(coord);
        ids.push_back(next_gpu);
        ++next_gpu;
      }
      machine_gpu_ids_.push_back(std::move(ids));
      ++next_machine;
    }
  }
}

LocalityLevel Topology::SpanLevel(const std::vector<GpuId>& gpus) const {
  if (gpus.size() <= 1) return LocalityLevel::kSlot;
  const GpuCoord& first = gpu(gpus.front());
  bool same_slot = true;
  bool same_machine = true;
  bool same_rack = true;
  for (GpuId id : gpus) {
    const GpuCoord& c = gpu(id);
    if (c.machine != first.machine) same_machine = false;
    if (c.machine != first.machine || c.slot != first.slot) same_slot = false;
    if (c.rack != first.rack) same_rack = false;
  }
  if (same_slot) return LocalityLevel::kSlot;
  if (same_machine) return LocalityLevel::kMachine;
  if (same_rack) return LocalityLevel::kRack;
  return LocalityLevel::kCrossRack;
}

std::string Topology::Describe() const {
  std::ostringstream os;
  os << num_racks() << " racks, " << num_machines() << " machines, "
     << num_gpus() << " GPUs";
  return os.str();
}

}  // namespace themis
