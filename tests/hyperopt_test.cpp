// Tests for hyperopt/: HyperBand successive halving, HyperDrive
// classification, and the tuner factory.
#include <gtest/gtest.h>

#include <cmath>

#include "hyperopt/hyperband.h"
#include "hyperopt/hyperdrive.h"

namespace themis {
namespace {

/// Build an app with n jobs whose convergence speed worsens with index:
/// all jobs share the decay exponent but job j needs 200*(j+1) iterations to
/// the target, so at any common rung budget job 0 shows the lowest loss and
/// job n-1 the highest.
AppSpec MakeApp(int n_jobs, double target = 0.1) {
  AppSpec app;
  app.target_loss = target;
  app.tuner = TunerKind::kHyperBand;
  for (int j = 0; j < n_jobs; ++j) {
    JobSpec job;
    job.num_tasks = 1;
    job.gpus_per_task = 4;
    const double decay = 0.7;
    job.total_iterations = 200.0 * (j + 1);
    job.total_work = 100.0 + 10.0 * j;
    job.loss =
        LossCurve(target * std::pow(job.total_iterations + 1.0, decay), decay, 0.0);
    app.jobs.push_back(job);
  }
  return app;
}

std::vector<JobView> ViewsAt(const AppSpec& app, double iterations) {
  std::vector<JobView> views;
  for (const JobSpec& j : app.jobs) views.push_back({&j, iterations, true, false});
  return views;
}

TEST(HyperBand, NoKillsBeforeFirstRung) {
  const AppSpec app = MakeApp(8);
  HyperBand hb;
  hb.Init(app);
  const auto views = ViewsAt(app, 0.0);
  const TunerDecision d = hb.Step(views, 0.0);
  EXPECT_TRUE(d.kill.empty());
  for (std::size_t i = 0; i < views.size(); ++i)
    EXPECT_EQ(d.parallelism_cap[i], 4);
}

TEST(HyperBand, KillsBottomHalfAtRung) {
  const AppSpec app = MakeApp(8);
  HyperBand hb;
  hb.Init(app);
  // Everyone past rung 0's budget: half must die.
  const double budget = hb.RungBudget(0);
  const TunerDecision d = hb.Step(ViewsAt(app, budget), 10.0);
  EXPECT_EQ(d.kill.size(), 4u);
  // The slowest-converging (highest loss) jobs are the ones killed.
  for (int idx : d.kill) EXPECT_GE(idx, 4);
  for (int idx : d.kill) EXPECT_EQ(d.parallelism_cap[idx], 0);
}

TEST(HyperBand, SuccessiveRungsHalveDownToOne) {
  const AppSpec app = MakeApp(8);
  HyperBand hb;
  hb.Init(app);
  std::vector<bool> alive(8, true);
  int alive_count = 8;
  double iters = 0.0;
  for (int round = 0; round < 10 && alive_count > 1; ++round) {
    iters = hb.RungBudget(hb.current_rung());
    std::vector<JobView> views;
    for (std::size_t j = 0; j < app.jobs.size(); ++j)
      views.push_back({&app.jobs[j], iters, alive[j], false});
    const TunerDecision d = hb.Step(views, iters);
    for (int idx : d.kill) {
      EXPECT_TRUE(alive[idx]);
      alive[idx] = false;
      --alive_count;
    }
  }
  EXPECT_EQ(alive_count, 1);
  EXPECT_TRUE(alive[0]);  // fastest-converging job survives
}

TEST(HyperBand, OddCountsKeepMajority) {
  const AppSpec app = MakeApp(5);
  HyperBand hb;
  hb.Init(app);
  const TunerDecision d = hb.Step(ViewsAt(app, hb.RungBudget(0)), 0.0);
  EXPECT_EQ(d.kill.size(), 2u);  // keep ceil(5/2) = 3
}

TEST(HyperBand, SingleJobNeverKilled) {
  const AppSpec app = MakeApp(1);
  HyperBand hb;
  hb.Init(app);
  const TunerDecision d = hb.Step(ViewsAt(app, 1e9), 0.0);
  EXPECT_TRUE(d.kill.empty());
  EXPECT_EQ(d.parallelism_cap[0], 4);
}

TEST(HyperBand, LaggardsDelayTheRung) {
  const AppSpec app = MakeApp(4);
  HyperBand hb;
  hb.Init(app);
  auto views = ViewsAt(app, hb.RungBudget(0));
  views[2].done_iterations = 0.0;  // one job lags behind the budget
  const TunerDecision d = hb.Step(views, 0.0);
  EXPECT_TRUE(d.kill.empty());
}

TEST(HyperBand, DeadJobsGetZeroCap) {
  const AppSpec app = MakeApp(4);
  HyperBand hb;
  hb.Init(app);
  auto views = ViewsAt(app, 0.0);
  views[1].alive = false;
  const TunerDecision d = hb.Step(views, 0.0);
  EXPECT_EQ(d.parallelism_cap[1], 0);
  EXPECT_EQ(d.parallelism_cap[0], 4);
}

TEST(HyperBand, ConfiguredBaseIterationsRespected) {
  HyperBandConfig cfg;
  cfg.base_iterations = 50.0;
  cfg.eta = 3.0;
  HyperBand hb(cfg);
  hb.Init(MakeApp(4));
  EXPECT_DOUBLE_EQ(hb.RungBudget(0), 50.0);
  EXPECT_DOUBLE_EQ(hb.RungBudget(2), 450.0);
}

TEST(HyperDrive, WarmupGrantsFullParallelism) {
  const AppSpec app = MakeApp(4);
  HyperDrive hd;
  hd.Init(app);
  const TunerDecision d = hd.Step(ViewsAt(app, 5.0), 0.0);  // < warmup 20
  EXPECT_TRUE(d.kill.empty());
  for (int cap : d.parallelism_cap) EXPECT_EQ(cap, 4);
}

TEST(HyperDrive, PoorJobsKilledGoodKeepFullParallelism) {
  // Two jobs: one fast (decay 1.0), one dramatically slower (decay 0.25 ->
  // projected iterations far beyond poor_ratio x best).
  AppSpec app;
  app.target_loss = 0.1;
  for (double decay : {1.0, 0.25}) {
    JobSpec job;
    job.num_tasks = 1;
    job.gpus_per_task = 4;
    job.total_iterations = std::pow(10.0, 1.0 / decay);
    job.total_work = 100.0;
    job.loss = LossCurve(0.1 * std::pow(job.total_iterations + 1.0, decay),
                         decay, 0.0);
    app.jobs.push_back(job);
  }
  HyperDrive hd;
  hd.Init(app);
  const TunerDecision d = hd.Step(ViewsAt(app, 50.0), 0.0);
  ASSERT_EQ(d.kill.size(), 1u);
  EXPECT_EQ(d.kill[0], 1);
  EXPECT_EQ(d.parallelism_cap[0], 4);
}

TEST(HyperDrive, PromisingJobsGetReducedGangAlignedCap) {
  AppSpec app;
  app.target_loss = 0.1;
  for (double decay : {1.0, 0.55}) {
    JobSpec job;
    job.num_tasks = 3;
    job.gpus_per_task = 4;  // max parallelism 12
    job.total_iterations = std::pow(10.0, 1.0 / decay);
    job.total_work = 100.0;
    job.loss = LossCurve(0.1 * std::pow(job.total_iterations + 1.0, decay),
                         decay, 0.0);
    app.jobs.push_back(job);
  }
  HyperDriveConfig cfg;
  cfg.good_ratio = 1.5;
  cfg.poor_ratio = 100.0;  // nothing is poor here
  HyperDrive hd(cfg);
  hd.Init(app);
  const TunerDecision d = hd.Step(ViewsAt(app, 50.0), 0.0);
  EXPECT_TRUE(d.kill.empty());
  EXPECT_EQ(d.parallelism_cap[0], 12);
  // Promising: half of 12 = 6, already a multiple of the 4-GPU gang? 6 is
  // not; rounded down to 4.
  EXPECT_EQ(d.parallelism_cap[1], 4);
}

TEST(HyperDrive, NeverKillsEveryJob) {
  // All jobs identically poor relative to... themselves: ratio 1, none
  // killed; but with aggressive poor_ratio < 1 everything would qualify —
  // the guard must spare the best.
  AppSpec app = MakeApp(3);
  HyperDriveConfig cfg;
  cfg.poor_ratio = 0.5;  // pathological: everything "poor"
  cfg.warmup_iterations = 0.0;
  HyperDrive hd(cfg);
  hd.Init(app);
  const TunerDecision d = hd.Step(ViewsAt(app, 100.0), 0.0);
  EXPECT_LT(d.kill.size(), 3u);
}

TEST(Factory, SelectsTunerByKind) {
  AppSpec app = MakeApp(4);
  app.tuner = TunerKind::kHyperBand;
  EXPECT_STREQ(MakeAppScheduler(app)->name(), "HyperBand");
  app.tuner = TunerKind::kHyperDrive;
  EXPECT_STREQ(MakeAppScheduler(app)->name(), "HyperDrive");
  app.tuner = TunerKind::kNone;
  EXPECT_STREQ(MakeAppScheduler(app)->name(), "SingleJob");
}

TEST(Factory, SingleJobSchedulerGrantsFullCap) {
  AppSpec app = MakeApp(1);
  app.tuner = TunerKind::kNone;
  auto tuner = MakeAppScheduler(app);
  tuner->Init(app);
  const TunerDecision d = tuner->Step(ViewsAt(app, 50.0), 0.0);
  EXPECT_TRUE(d.kill.empty());
  EXPECT_EQ(d.parallelism_cap[0], 4);
}

class HyperBandWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(HyperBandWidthTest, AlwaysConvergesToOneSurvivor) {
  const int n = GetParam();
  const AppSpec app = MakeApp(n);
  HyperBand hb;
  hb.Init(app);
  std::vector<bool> alive(n, true);
  int alive_count = n;
  for (int round = 0; round < 40 && alive_count > 1; ++round) {
    const double iters = hb.RungBudget(hb.current_rung());
    std::vector<JobView> views;
    for (int j = 0; j < n; ++j)
      views.push_back({&app.jobs[j], iters, alive[j], false});
    for (int idx : hb.Step(views, 0.0).kill) {
      alive[idx] = false;
      --alive_count;
    }
  }
  EXPECT_EQ(alive_count, 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, HyperBandWidthTest,
                         ::testing::Values(2, 3, 4, 7, 8, 16, 23, 31, 64, 98));

}  // namespace
}  // namespace themis
