// The inter-app scheduling policy interface — the bottom level of the
// two-level architecture (Sec. 2.3). ThemisPolicy and the three baseline
// emulations (Gandiva / Tiresias / SLAQ, Sec. 8 intro) all implement this:
// whenever GPUs are reclaimed or apps arrive/finish, the simulator invokes
// Schedule() with the free pool, and the policy grants GPUs through the
// context. The simulator applies restart overheads, lease bookkeeping and
// finish-event rescheduling afterwards.
#pragma once

#include "common/rng.h"
#include "estimator/work_estimator.h"
#include "sim/state.h"

namespace themis {

class SchedulerContext {
 public:
  SchedulerContext(Time now, Cluster* cluster, WorkEstimator* estimator,
                   Time lease_duration, AppList* apps, Rng* rng)
      : now_(now),
        cluster_(cluster),
        estimator_(estimator),
        lease_duration_(lease_duration),
        apps_(apps),
        rng_(rng),
        free_per_machine_(cluster->FreeGpusPerMachine()) {}

  Time now() const { return now_; }
  Cluster& cluster() { return *cluster_; }
  const Topology& topology() const { return cluster_->topology(); }
  WorkEstimator& estimator() { return *estimator_; }
  Time lease_duration() const { return lease_duration_; }
  /// Active apps (arrived, unfinished), ascending AppId order.
  const AppList& apps() const { return *apps_; }
  Rng& rng() { return *rng_; }

  /// Free GPU count per machine — the auction's offered resource vector,
  /// computed once per pass from the cluster indices and kept consistent as
  /// the policy grants GPUs. Policies read this instead of recounting the
  /// free pool per machine.
  const std::vector<int>& free_per_machine() const { return free_per_machine_; }

  /// Lease `gpus` to (app, job) until now + lease_duration. The GPUs must be
  /// free; the job records them immediately.
  void Grant(AppState& app, JobState& job, const std::vector<GpuId>& gpus);

 private:
  Time now_;
  Cluster* cluster_;
  WorkEstimator* estimator_;
  Time lease_duration_;
  AppList* apps_;
  Rng* rng_;
  std::vector<int> free_per_machine_;
};

class ISchedulerPolicy {
 public:
  virtual ~ISchedulerPolicy() = default;

  /// Allocate (some of) `free_gpus` among the context's apps.
  ///
  /// Precondition: `free_gpus` is the cluster's complete current free pool
  /// (`ctx.cluster().FreeGpus()` with no mutation since the context was
  /// built), so it agrees with ctx.free_per_machine() — ThemisPolicy uses
  /// that vector as the auction's offered resources. Passing a filtered
  /// subset would let the auction award GPUs the materialization step
  /// cannot take.
  virtual void Schedule(const std::vector<GpuId>& free_gpus,
                        SchedulerContext& ctx) = 0;

  virtual const char* name() const = 0;
};

}  // namespace themis
