// Tests for core/agent.h: rho estimation (Sec. 5.2 steps 1-7), valuation
// tables, and app-internal GPU distribution.
#include <gtest/gtest.h>

#include <cmath>

#include "core/agent.h"

namespace themis {
namespace {

JobSpec MakeJobSpec(double work, int num_tasks, int gpus_per_task,
                    const char* model = "ResNet50") {
  JobSpec spec;
  spec.total_work = work;
  spec.total_iterations = 1000.0;
  spec.num_tasks = num_tasks;
  spec.gpus_per_task = gpus_per_task;
  spec.model = ModelByName(model);
  spec.loss = LossCurve(0.1 * std::pow(1001.0, 0.6), 0.6, 0.0);
  return spec;
}

std::unique_ptr<AppState> MakeApp(AppId id, Time arrival,
                                  std::vector<JobSpec> jobs) {
  auto app = std::make_unique<AppState>();
  app->id = id;
  app->spec.arrival = arrival;
  app->spec.target_loss = 0.1;
  app->spec.jobs = jobs;
  app->arrived = true;
  JobId next = 0;
  for (const JobSpec& js : jobs) {
    JobState job;
    job.id = next++;
    job.spec = js;
    job.parallelism_cap = js.MaxParallelism();
    app->jobs.push_back(std::move(job));
  }
  app->ideal_time = std::max(1e-9, app->spec.IdealRunningTime());
  return app;
}

class AgentTest : public ::testing::Test {
 protected:
  AgentTest() : topo_(ClusterSpec::Uniform(2, 2, 4, 2)), est_({}) {}

  Topology topo_;
  WorkEstimator est_;
};

TEST_F(AgentTest, NoAllocationMeansUnboundedRho) {
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 2)});
  Agent agent(&topo_, &est_, 10.0);
  EXPECT_DOUBLE_EQ(agent.CurrentRho(*app), kUnboundedRho);
}

TEST_F(AgentTest, CurrentRhoMatchesHandComputation) {
  // T_ID = 40 / 4 = 10. With 2 slot-local GPUs at t=5:
  // T_SH = 5 + 40/2 = 25 -> rho = 2.5.
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 2)});
  app->jobs[0].gpus = {0, 1};
  Agent agent(&topo_, &est_, 5.0);
  EXPECT_NEAR(agent.CurrentRho(*app), 2.5, 1e-9);
}

TEST_F(AgentTest, RhoUsesPlacementSlowdown) {
  // Same GPUs count but spanning racks: VGG16 pays S = 0.35.
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 2, "VGG16")});
  app->jobs[0].gpus = {0, 8};  // cross-rack pair
  Agent agent(&topo_, &est_, 0.0);
  const double s = ModelByName("VGG16").sensitivity.cross_rack;
  EXPECT_NEAR(agent.CurrentRho(*app), (40.0 / (2.0 * s)) / 10.0, 1e-9);
}

TEST_F(AgentTest, MinOverJobsPicksBestJob) {
  // Two jobs; only the second (short) one has GPUs: it drives T_SH.
  auto app = MakeApp(0, 0.0, {MakeJobSpec(80.0, 1, 2), MakeJobSpec(20.0, 1, 2)});
  app->jobs[1].gpus = {0, 1};
  Agent agent(&topo_, &est_, 0.0);
  // T_ID = min(80/2, 20/2) = 10; T_SH = 20/2 = 10 -> rho = 1.
  EXPECT_NEAR(agent.CurrentRho(*app), 1.0, 1e-9);
}

TEST_F(AgentTest, PartialGangContributesNothing) {
  // 3 GPUs with 2-GPU gangs: only 2 usable; with 1 GPU: none usable.
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 2)});
  app->jobs[0].gpus = {0};
  Agent agent(&topo_, &est_, 0.0);
  EXPECT_DOUBLE_EQ(agent.CurrentRho(*app), kUnboundedRho);
  app->jobs[0].gpus = {0, 1, 2};
  EXPECT_NEAR(agent.CurrentRho(*app), (40.0 / 2.0) / 10.0, 1e-9);
}

TEST_F(AgentTest, HypotheticalRhoImprovesWithExtraGpus) {
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 2)});
  app->jobs[0].gpus = {0, 1};
  Agent agent(&topo_, &est_, 5.0);
  const double current = agent.CurrentRho(*app);
  const double with_extra = agent.HypotheticalRho(*app, {2, 3});
  EXPECT_LT(with_extra, current);
}

TEST_F(AgentTest, FinishedAndDeadJobsAreIgnored) {
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 2), MakeJobSpec(40.0, 1, 2)});
  app->jobs[0].gpus = {0, 1};
  app->jobs[0].alive = false;  // killed: its GPUs don't count
  Agent agent(&topo_, &est_, 0.0);
  EXPECT_DOUBLE_EQ(agent.CurrentRho(*app), kUnboundedRho);
}

TEST_F(AgentTest, BidTableShapeIsValid) {
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 2), MakeJobSpec(60.0, 1, 2)});
  Agent agent(&topo_, &est_, 0.0);
  const std::vector<GpuId> offered{0, 1, 2, 3, 4, 5};
  const AgentBid bid = agent.PrepareBid(*app, offered, 6);

  std::vector<int> offered_vec(topo_.num_machines(), 0);
  for (GpuId g : offered) ++offered_vec[topo_.gpu(g).machine];
  EXPECT_EQ(ValidateBid(bid.table, offered_vec), "");
  EXPECT_EQ(bid.table.rows.size(), bid.row_gpus.size());
  EXPECT_LE(bid.table.rows.size(), 7u);  // zero row + max_rows

  // rho weakly improves with bigger bundles.
  for (std::size_t r = 1; r < bid.table.rows.size(); ++r) {
    EXPECT_LE(bid.table.rows[r].rho, bid.table.rows[r - 1].rho + 1e-9);
    EXPECT_EQ(bid.table.rows[r].TotalGpus(),
              static_cast<int>(bid.row_gpus[r].size()));
  }
}

TEST_F(AgentTest, BidRowsAreGangMultiples) {
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 3, 4)});
  Agent agent(&topo_, &est_, 0.0);
  std::vector<GpuId> offered;
  for (GpuId g = 0; g < 16; ++g) offered.push_back(g);
  const AgentBid bid = agent.PrepareBid(*app, offered, 6);
  for (std::size_t r = 1; r < bid.table.rows.size(); ++r)
    EXPECT_EQ(bid.table.rows[r].TotalGpus() % 4, 0);
  // Largest row covers the whole demand (12 = 3 tasks x 4 GPUs).
  EXPECT_EQ(bid.table.rows.back().TotalGpus(), 12);
}

TEST_F(AgentTest, BidRespectsParallelismCap) {
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 4, 2)});
  app->jobs[0].parallelism_cap = 4;  // tuner demoted the job
  Agent agent(&topo_, &est_, 0.0);
  std::vector<GpuId> offered;
  for (GpuId g = 0; g < 16; ++g) offered.push_back(g);
  const AgentBid bid = agent.PrepareBid(*app, offered, 6);
  EXPECT_EQ(bid.table.rows.back().TotalGpus(), 4);
}

TEST_F(AgentTest, ZeroDemandAppBidsOnlyZeroRow) {
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 2)});
  app->jobs[0].gpus = {0, 1};  // demand met
  Agent agent(&topo_, &est_, 0.0);
  const AgentBid bid = agent.PrepareBid(*app, {2, 3, 4}, 6);
  EXPECT_EQ(bid.table.rows.size(), 1u);
}

TEST_F(AgentTest, DistributePrefersShortestRemainingJob) {
  auto app = MakeApp(0, 0.0, {MakeJobSpec(80.0, 1, 2), MakeJobSpec(20.0, 1, 2)});
  Agent agent(&topo_, &est_, 0.0);
  const auto order = agent.JobPriorityOrder(*app);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // 20 < 80

  const auto assignments = agent.DistributeToJobs(*app, {0, 1});
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].job_index, 1);
  EXPECT_EQ(assignments[0].gpus.size(), 2u);
}

TEST_F(AgentTest, DistributeHonorsGangsAndCaps) {
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 4)});
  Agent agent(&topo_, &est_, 0.0);
  // 6 GPUs with 4-GPU gangs: only one gang fits.
  const auto assignments = agent.DistributeToJobs(*app, {0, 1, 2, 3, 4, 5});
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].gpus.size(), 4u);
}

TEST_F(AgentTest, DistributeSpillsToSecondJob) {
  auto app = MakeApp(0, 0.0, {MakeJobSpec(20.0, 1, 2), MakeJobSpec(80.0, 1, 2)});
  Agent agent(&topo_, &est_, 0.0);
  const auto assignments = agent.DistributeToJobs(*app, {0, 1, 2, 3});
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].job_index, 0);
  EXPECT_EQ(assignments[1].job_index, 1);
}

TEST_F(AgentTest, ValuationHomogeneity) {
  // V = 1/rho must be homogeneous of degree ~1: doubling the allocation on
  // the same machines halves rho (when no elapsed time blurs it).
  auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 4, 2)});
  Agent agent(&topo_, &est_, 0.0);
  const double rho_2 = agent.HypotheticalRho(*app, {0, 1});
  const double rho_4 = agent.HypotheticalRho(*app, {0, 1, 2, 3});
  // {0,1} is slot-local, {0,1,2,3} machine-local; ResNet50 machine S = 0.99.
  const double s = ModelByName("ResNet50").sensitivity.machine;
  EXPECT_NEAR(rho_2 / rho_4, 2.0 * s, 1e-6);
}

}  // namespace
}  // namespace themis
