// SLAQ baseline (Zhang et al., SoCC'17), emulated as in Sec. 8:
// "We model SLAQ using bids by having all apps report their decrease in loss
// value given the resource allocation. The ARBITER assigns resources to apps
// so as to maximize the aggregate decrease in loss."
//
// Quality-driven and fairness/placement-oblivious: gangs are granted one at
// a time to the (app, job) whose loss would drop the most over the upcoming
// lease window given one more gang.
#pragma once

#include "sim/policy.h"

namespace themis {

class SlaqPolicy final : public ISchedulerPolicy {
 public:
  GrantSet RunRound(const ResourceOffer& offer,
                    SchedulerContext& ctx) override;
  const char* name() const override { return "SLAQ"; }
};

}  // namespace themis
