#include "baselines/gandiva.h"

#include <algorithm>

#include "placement/placement_model.h"

namespace themis {

GrantSet GandivaPolicy::RunRound(const ResourceOffer& /*offer*/,
                                 SchedulerContext& ctx) {
  bool progress = true;
  while (progress && !ctx.free_pool().empty()) {
    progress = false;
    // The pool only shrinks when a grant ends the iteration, so one
    // random-access snapshot serves every candidate this iteration.
    const std::vector<GpuId> free = ctx.free_pool().ToVector();

    AppState* best_app = nullptr;
    int best_job = -1;
    std::vector<GpuId> best_pick;
    double best_score = -1.0;

    for (AppState* app : ctx.apps()) {
      for (int j : app->ActiveJobs()) {
        JobState& job = app->jobs[j];
        if (job.UnmetGangs() <= 0) continue;
        const int gang = job.spec.gpus_per_task;
        if (static_cast<int>(free.size()) < gang) continue;
        // Speed-aware through the placement picker: at equal locality it
        // prefers machines of the fastest generation (no-op on uniform
        // clusters).
        std::vector<GpuId> pick =
            PickBestPlacedNear(gang, free, job.gpus, ctx.topology());
        if (static_cast<int>(pick.size()) < gang) continue;
        // Score the job's whole prospective gang, not just the increment:
        // Gandiva's introspection cares about the resulting locality.
        std::vector<GpuId> whole = job.gpus;
        whole.insert(whole.end(), pick.begin(), pick.end());
        const double score = PlacementScore(whole, ctx.topology());
        if (score > best_score) {
          best_score = score;
          best_app = app;
          best_job = j;
          best_pick = std::move(pick);
        }
      }
    }
    if (best_app == nullptr) break;

    ctx.Grant(*best_app, best_app->jobs[best_job], best_pick);
    progress = true;
  }
  return ctx.TakeGrants();
}

}  // namespace themis
