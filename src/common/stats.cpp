#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace themis {

double JainsIndex(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("Percentile: empty input");
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

std::vector<CdfPoint> Cdf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<CdfPoint> out;
  out.reserve(values.size());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::string FormatCdf(const std::vector<CdfPoint>& cdf, std::size_t max_rows) {
  std::string out;
  if (cdf.empty()) return out;
  const std::size_t n = cdf.size();
  const std::size_t rows = std::min(max_rows, n);
  char buf[64];
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t idx = (rows == 1) ? n - 1 : r * (n - 1) / (rows - 1);
    std::snprintf(buf, sizeof(buf), "%12.2f  %6.3f\n", cdf[idx].value,
                  cdf[idx].fraction);
    out += buf;
  }
  return out;
}

void Summary::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

double Summary::min() const { return count_ ? min_ : 0.0; }
double Summary::max() const { return count_ ? max_ : 0.0; }
double Summary::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

void MomentAccumulator::Add(double v) {
  ++count_;
  sum_ += v;
  sum_squares_ += v * v;
}

double MomentAccumulator::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double MomentAccumulator::variance() const {
  if (count_ == 0) return 0.0;
  const double m = mean();
  return std::max(0.0, sum_squares_ / static_cast<double>(count_) - m * m);
}

double MomentAccumulator::JainsIndex() const {
  if (count_ == 0 || sum_squares_ == 0.0) return 1.0;
  return (sum_ * sum_) / (static_cast<double>(count_) * sum_squares_);
}

P2Quantile::P2Quantile(double quantile) : p_(quantile) {
  if (!(quantile > 0.0) || !(quantile < 1.0))
    throw std::invalid_argument("P2Quantile: quantile must be in (0, 1)");
  dn_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    q_[count_++] = x;
    if (count_ == 5) {
      std::sort(q_.begin(), q_.end());
      for (int i = 0; i < 5; ++i) n_[i] = static_cast<double>(i + 1);
      np_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
    }
    return;
  }
  ++count_;

  // Find the cell the observation falls into, extending the extremes.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];

  // Adjust the three interior markers toward their desired positions with
  // the piecewise-parabolic (P²) formula, falling back to linear when the
  // parabola would leave the bracketing heights out of order.
  for (int i = 1; i <= 3; ++i) {
    const double d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const double s = d >= 0 ? 1.0 : -1.0;
      const double qp =
          q_[i] + s / (n_[i + 1] - n_[i - 1]) *
                      ((n_[i] - n_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                           (n_[i + 1] - n_[i]) +
                       (n_[i + 1] - n_[i] - s) * (q_[i] - q_[i - 1]) /
                           (n_[i] - n_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {
        const int j = i + static_cast<int>(s);
        q_[i] += s * (q_[j] - q_[i]) / (n_[j] - n_[i]);
      }
      n_[i] += s;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ <= 5) {
    std::vector<double> sorted(q_.begin(), q_.begin() + count_);
    return Percentile(std::move(sorted), p_ * 100.0);
  }
  return q_[2];
}

}  // namespace themis
