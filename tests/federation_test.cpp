// Tests for core/federation.h: cluster partitioning, app routing, the
// federated run, and its cross-shard invariants (no GPU granted twice
// across shards; the merge preserves per-app holdings and app order;
// --shards=1 reproduces the unsharded simulator exactly).
#include <gtest/gtest.h>

#include <numeric>

#include "core/federation.h"

namespace themis {
namespace {

TEST(PartitionCluster, SingleShardKeepsTheWholeSpec) {
  const ClusterSpec global = ClusterSpec::Simulation256();
  const auto shards = PartitionCluster(global, 1);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].first_machine, 0u);
  EXPECT_EQ(shards[0].first_gpu, 0u);
  EXPECT_EQ(shards[0].num_machines, global.TotalMachines());
  EXPECT_EQ(shards[0].num_gpus, global.TotalGpus());
  // Identical topology, rack for rack.
  ASSERT_EQ(shards[0].spec.racks.size(), global.racks.size());
  for (std::size_t r = 0; r < global.racks.size(); ++r) {
    ASSERT_EQ(shards[0].spec.racks[r].machines.size(),
              global.racks[r].machines.size());
    for (std::size_t m = 0; m < global.racks[r].machines.size(); ++m) {
      EXPECT_EQ(shards[0].spec.racks[r].machines[m].num_gpus,
                global.racks[r].machines[m].num_gpus);
      EXPECT_EQ(shards[0].spec.racks[r].machines[m].gpus_per_slot,
                global.racks[r].machines[m].gpus_per_slot);
    }
  }
}

TEST(PartitionCluster, ContiguousBalancedDisjointCover) {
  const ClusterSpec global = ClusterSpec::Simulation256();
  for (int n : {2, 3, 4, 8}) {
    const auto shards = PartitionCluster(global, n);
    ASSERT_EQ(shards.size(), static_cast<std::size_t>(n));
    int machines = 0, gpus = 0, min_m = global.TotalMachines(), max_m = 0;
    MachineId next_machine = 0;
    GpuId next_gpu = 0;
    for (const FederationShard& s : shards) {
      // Contiguous: each shard starts where the previous one ended.
      EXPECT_EQ(s.first_machine, next_machine);
      EXPECT_EQ(s.first_gpu, next_gpu);
      // Internally consistent with its own spec.
      EXPECT_EQ(s.num_machines, s.spec.TotalMachines());
      EXPECT_EQ(s.num_gpus, s.spec.TotalGpus());
      next_machine += static_cast<MachineId>(s.num_machines);
      next_gpu += static_cast<GpuId>(s.num_gpus);
      machines += s.num_machines;
      gpus += s.num_gpus;
      min_m = std::min(min_m, s.num_machines);
      max_m = std::max(max_m, s.num_machines);
    }
    EXPECT_EQ(machines, global.TotalMachines()) << n;
    EXPECT_EQ(gpus, global.TotalGpus()) << n;
    EXPECT_LE(max_m - min_m, 1) << n;  // balanced within one machine
  }
}

TEST(PartitionCluster, RejectsImpossibleShardCounts) {
  const ClusterSpec global = ClusterSpec::Uniform(1, 4, 2, 2);
  EXPECT_THROW(PartitionCluster(global, 0), std::invalid_argument);
  EXPECT_THROW(PartitionCluster(global, -2), std::invalid_argument);
  EXPECT_THROW(PartitionCluster(global, 5), std::invalid_argument);
}

TEST(PartitionCluster, ShardLocalGpuIdsMapBackByOffset) {
  // The global topology numbers machines/GPUs contiguously in rack-major
  // order, so shard-local topology ids + the shard offsets recover the
  // global coordinates.
  const ClusterSpec global = ClusterSpec::Simulation256();
  const Topology global_topo(global);
  for (const FederationShard& s : PartitionCluster(global, 4)) {
    const Topology shard_topo(s.spec);
    ASSERT_EQ(shard_topo.num_gpus(), s.num_gpus);
    for (GpuId g = 0; g < static_cast<GpuId>(s.num_gpus); ++g) {
      const GpuCoord& local = shard_topo.gpu(g);
      const GpuCoord& glob = global_topo.gpu(s.first_gpu + g);
      EXPECT_EQ(local.machine + s.first_machine, glob.machine);
      EXPECT_EQ(local.slot, glob.slot);
      EXPECT_EQ(local.index_in_slot, glob.index_in_slot);
    }
  }
}

TEST(Routing, DeterministicAndComplete) {
  TraceConfig trace;
  trace.seed = 5;
  trace.num_apps = 24;
  const std::vector<AppSpec> apps = TraceGenerator(trace).Generate();
  const ShardedArbiter arbiter(ClusterSpec::Simulation256(), 4);

  const FederationRouting a = arbiter.Route(apps);
  const FederationRouting b = arbiter.Route(apps);
  std::size_t routed = 0;
  std::vector<char> seen(apps.size(), 0);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(a.shard_apps[s].size(), a.global_index[s].size());
    EXPECT_EQ(a.global_index[s], b.global_index[s]);
    for (std::size_t idx : a.global_index[s]) {
      ASSERT_LT(idx, apps.size());
      EXPECT_EQ(seen[idx], 0) << "app routed twice";
      seen[idx] = 1;
      ++routed;
    }
  }
  EXPECT_EQ(routed, apps.size());
}

TEST(Routing, PlacementHintIsPluggable) {
  TraceConfig trace;
  trace.seed = 5;
  trace.num_apps = 10;
  const std::vector<AppSpec> apps = TraceGenerator(trace).Generate();
  // Everything to the last shard.
  const ShardedArbiter arbiter(
      ClusterSpec::Simulation256(), 3,
      [](const AppSpec&, const std::vector<ShardLoadView>& loads) {
        return static_cast<int>(loads.size()) - 1;
      });
  const FederationRouting routing = arbiter.Route(apps);
  EXPECT_TRUE(routing.shard_apps[0].empty());
  EXPECT_TRUE(routing.shard_apps[1].empty());
  EXPECT_EQ(routing.shard_apps[2].size(), apps.size());
}

ExperimentConfig FederationTestConfig(std::uint64_t seed, int num_apps) {
  ExperimentConfig config = SimScaleConfig(PolicyKind::kThemis, seed, num_apps);
  config.trace.contention_factor = 2.0;
  return config;
}

TEST(ShardedArbiter, OneShardMatchesTheUnshardedSimulatorExactly) {
  const ExperimentConfig config = FederationTestConfig(42, 30);
  const std::vector<AppSpec> apps =
      TraceGenerator(config.trace).Generate();

  const ExperimentResult direct = RunExperimentWithApps(config, apps);
  const FederationResult fed =
      ShardedArbiter(config.cluster, 1).Run(config, apps);

  // Identical scheduling decisions: the per-app vectors are bit-identical.
  EXPECT_EQ(fed.merged.finished_apps, direct.finished_apps);
  EXPECT_EQ(fed.merged.rhos, direct.rhos);
  EXPECT_EQ(fed.merged.completion_times, direct.completion_times);
  EXPECT_EQ(fed.merged.placement_scores, direct.placement_scores);
  EXPECT_EQ(fed.merged.unfinished_apps, direct.unfinished_apps);
  EXPECT_EQ(fed.merged.scheduling_passes, direct.scheduling_passes);
  EXPECT_DOUBLE_EQ(fed.merged.gpu_time, direct.gpu_time);
  // Summary metrics are recomputed over AppId-ordered vectors; the only
  // tolerated difference vs the collector is floating-point summation
  // order (it accumulates in finish order), so "near" is ulp-tight.
  EXPECT_NEAR(fed.merged.max_fairness, direct.max_fairness, 1e-12);
  EXPECT_NEAR(fed.merged.median_fairness, direct.median_fairness, 1e-12);
  EXPECT_NEAR(fed.merged.jains_index, direct.jains_index, 1e-12);
  EXPECT_NEAR(fed.merged.avg_completion_time, direct.avg_completion_time,
              1e-9);
  EXPECT_EQ(fed.cross_shard_double_grants, 0);
  EXPECT_EQ(fed.out_of_range_grants, 0);
}

TEST(ShardedArbiter, FourShardsHoldTheCrossShardInvariants) {
  const ExperimentConfig config = FederationTestConfig(42, 40);
  const std::vector<AppSpec> apps =
      TraceGenerator(config.trace).Generate();

  const ShardedArbiter arbiter(config.cluster, 4);
  const FederationResult fed = arbiter.Run(config, apps);

  EXPECT_EQ(fed.num_shards, 4);
  EXPECT_EQ(fed.cross_shard_double_grants, 0);
  EXPECT_EQ(fed.out_of_range_grants, 0);
  EXPECT_GT(fed.total_granted_gpus, 0);

  // The merge preserves per-app accounting: every app's granted total came
  // from exactly one shard, and the totals add up.
  ASSERT_EQ(fed.granted_per_app.size(), apps.size());
  const long long sum = std::accumulate(fed.granted_per_app.begin(),
                                        fed.granted_per_app.end(), 0LL);
  EXPECT_EQ(sum, fed.total_granted_gpus);

  // Merged per-app vectors are in global submission order and complete.
  ASSERT_EQ(static_cast<int>(fed.merged.finished_apps.size()) +
                fed.merged.unfinished_apps,
            static_cast<int>(apps.size()));
  for (std::size_t i = 1; i < fed.merged.finished_apps.size(); ++i)
    EXPECT_LT(fed.merged.finished_apps[i - 1], fed.merged.finished_apps[i]);
  int apps_total = 0;
  for (int per_shard : fed.apps_per_shard) apps_total += per_shard;
  EXPECT_EQ(apps_total, static_cast<int>(apps.size()));

  // Every app that finished actually received GPUs.
  for (std::size_t i = 0; i < fed.merged.finished_apps.size(); ++i)
    EXPECT_GT(fed.granted_per_app[fed.merged.finished_apps[i]], 0)
        << "finished app " << fed.merged.finished_apps[i]
        << " was never granted a GPU";
}

TEST(ShardedArbiter, ParallelShardRunsMatchSerialOnes) {
  const ExperimentConfig config = FederationTestConfig(7, 24);
  const std::vector<AppSpec> apps =
      TraceGenerator(config.trace).Generate();
  const ShardedArbiter arbiter(config.cluster, 4);
  const FederationResult serial = arbiter.Run(config, apps, /*threads=*/1);
  const FederationResult parallel = arbiter.Run(config, apps, /*threads=*/4);
  EXPECT_EQ(serial.merged.rhos, parallel.merged.rhos);
  EXPECT_EQ(serial.merged.completion_times, parallel.merged.completion_times);
  EXPECT_EQ(serial.total_granted_gpus, parallel.total_granted_gpus);
  EXPECT_EQ(serial.granted_per_app, parallel.granted_per_app);
}

}  // namespace
}  // namespace themis
