// Extension experiment (Sec. 6 "Scheduling after failures" — the study the
// paper explicitly leaves to future work): inject machine failures with
// exponential inter-failure times and measure how finish-time fairness and
// completion times degrade as machines become less reliable.
//
// When a machine fails, every lease on it is revoked; affected jobs restart
// from checkpoints once the scheduler re-places them, and the machine
// rejoins after a fixed repair time.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  BenchReport report("failures");
  report.Config("cluster", "sim256");
  report.Config("contention_factor", 4.0);
  report.Config("repair_minutes", 60.0);

  std::printf("=== Extension: machine failures vs fairness (Themis) ===\n");
  std::printf("%14s %10s %9s %9s %10s %12s\n", "MTBF(min)", "failures",
              "max_rho", "med_rho", "avg_ACT", "gpu_time");
  // MTBF per machine; the 256-GPU cluster has 88 machines and this workload
  // spans ~550 simulated minutes, so MTBF 1000 min yields a few dozen
  // failures over the run while 20000 min yields a handful.
  for (double mtbf : {0.0, 20000.0, 5000.0, 2000.0, 1000.0}) {
    ExperimentConfig cfg = ContendedSimConfig(PolicyKind::kThemis, 42, 100);
    cfg.sim.machine_mtbf_minutes = mtbf;
    cfg.sim.machine_repair_minutes = 60.0;
    const ExperimentResult r = RunExperiment(cfg);
    std::printf("%14.0f %10d %9.2f %9.2f %10.1f %12.0f\n", mtbf,
                r.machine_failures, r.max_fairness, r.median_fairness,
                r.avg_completion_time, r.gpu_time);
    char key[48];
    std::snprintf(key, sizeof key, "max_rho@mtbf=%.0f", mtbf);
    report.Metric(key, r.max_fairness);
    std::snprintf(key, sizeof key, "machine_failures@mtbf=%.0f", mtbf);
    report.Metric(key, static_cast<double>(r.machine_failures));
    std::snprintf(key, sizeof key, "avg_act_min@mtbf=%.0f", mtbf);
    report.Metric(key, r.avg_completion_time);
  }
  std::printf("\nexpectation: graceful degradation — fairness and ACT worsen"
              " smoothly as failures become frequent\n");
  return report.Write() ? 0 : 1;
}
