// Quickstart: build a small GPU cluster, submit a handful of ML apps, run
// the THEMIS scheduler, and print each app's finish-time fairness.
//
//   rho = time in the shared cluster / time alone on the whole cluster
//
// With N apps sharing the cluster, a fair scheduler keeps every rho at or
// below N (the "sharing incentive", Sec. 2.1).
#include <cstdio>

#include "sim/experiment.h"

int main() {
  using namespace themis;

  // A 32-GPU cluster: 2 racks x 4 machines x 4 GPUs (NVLink pairs).
  ExperimentConfig config;
  config.cluster = ClusterSpec::Uniform(/*racks=*/2, /*machines_per_rack=*/4,
                                        /*gpus_per_machine=*/4,
                                        /*gpus_per_slot=*/2);
  config.policy = PolicyKind::kThemis;
  config.themis.fairness_knob = 0.8;

  // Eight apps, each a hyper-parameter sweep of a few jobs.
  config.trace.seed = 7;
  config.trace.num_apps = 8;
  config.trace.jobs_per_app_median = 4.0;
  config.trace.jobs_per_app_max = 8;
  config.trace.short_duration_median = 30.0;
  config.trace.long_duration_median = 60.0;
  config.trace.mean_interarrival = 15.0;
  config.sim.lease_minutes = 10.0;

  ExperimentResult result = RunExperiment(config);

  std::printf("Themis quickstart: %zu apps on a 32-GPU cluster\n",
              result.rhos.size());
  std::printf("  peak contention (ideal max rho): %.2f\n",
              result.peak_contention);
  std::printf("  %-8s %12s %16s\n", "app", "rho", "completion(min)");
  for (std::size_t i = 0; i < result.rhos.size(); ++i)
    std::printf("  app-%-4zu %12.2f %16.1f\n", i, result.rhos[i],
                result.completion_times[i]);
  std::printf("  max fairness : %.2f\n", result.max_fairness);
  std::printf("  Jain's index : %.3f\n", result.jains_index);
  std::printf("  avg ACT      : %.1f min\n", result.avg_completion_time);
  std::printf("  GPU time     : %.0f GPU-minutes\n", result.gpu_time);
  return result.unfinished_apps == 0 ? 0 : 1;
}
