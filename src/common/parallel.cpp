#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace themis {

/// One ParallelFor submission. Shared (via shared_ptr) between the caller
/// and every queued helper entry, so a helper that wakes after the loop
/// already finished still finds a live control block, sees no work left,
/// and returns.
struct ThreadPool::Job {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::function<void(std::size_t)> fn;

  /// Next unclaimed index. Claims are fetch_add(grain); a claim landing at
  /// or past n means the job is exhausted. Overshoot past n is harmless.
  std::atomic<std::size_t> next{0};

  std::mutex m;
  std::condition_variable done_cv;
  /// Indices accounted for: every claimed chunk adds its full size once it
  /// ran (or threw), and the first exception accounts all then-unclaimed
  /// indices as skipped. The job is complete when done == n.
  std::size_t done = 0;
  std::exception_ptr error;
};

void ThreadPool::Drain(Job& job) {
  for (;;) {
    const std::size_t start =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (start >= job.n) return;
    const std::size_t end = std::min(start + job.grain, job.n);
    std::size_t skipped = 0;
    std::exception_ptr error;
    try {
      for (std::size_t i = start; i < end; ++i) job.fn(i);
    } catch (...) {
      error = std::current_exception();
      // Cancel the remainder: claims after this exchange land at >= n. The
      // failing chunk accounts the cancelled indices itself; chunks already
      // claimed by other executors are accounted by their claimants.
      const std::size_t old = job.next.exchange(job.n);
      skipped = old < job.n ? job.n - old : 0;
    }
    std::lock_guard<std::mutex> lock(job.m);
    if (error && !job.error) job.error = error;
    job.done += (end - start) + skipped;
    if (job.done >= job.n) {
      job.done_cv.notify_all();
      return;
    }
  }
}

ThreadPool::ThreadPool(int num_workers) { EnsureWorkers(num_workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Global() {
  // Constructed empty on first use: processes that never parallelize never
  // spawn a thread. Destroyed after main() returns, with workers parked.
  static ThreadPool pool;
  return pool;
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::EnsureWorkers(int n) {
  n = std::min(n, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(workers_.size()) < n)
    workers_.emplace_back([this] { WorkerLoop(); });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    Drain(*job);
  }
}

void ThreadPool::ParallelFor(std::size_t n, int max_threads,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t grain) {
  if (n == 0) return;
  if (max_threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  EnsureWorkers(std::min(max_threads - 1, kMaxWorkers));

  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = fn;
  // Auto grain: enough chunks that dynamic claiming balances uneven items
  // (~4 per executor), but never so fine that claim traffic dominates.
  const int executors = std::min<int>(max_threads, static_cast<int>(n));
  job->grain = grain > 0
                   ? grain
                   : std::max<std::size_t>(
                         1, n / (static_cast<std::size_t>(executors) * 4));

  // One queue entry per helper; the caller is the remaining executor. A
  // helper that never gets scheduled (every worker busy) costs nothing —
  // the caller drains the chunks itself.
  const std::size_t chunks = (n + job->grain - 1) / job->grain;
  const int helpers = static_cast<int>(std::min<std::size_t>(
      {static_cast<std::size_t>(executors - 1),
       static_cast<std::size_t>(num_workers()), chunks > 0 ? chunks - 1 : 0}));
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (int h = 0; h < helpers; ++h) queue_.push_back(job);
    }
    if (helpers == 1)
      cv_.notify_one();
    else
      cv_.notify_all();
  }

  Drain(*job);
  std::unique_lock<std::mutex> lock(job->m);
  job->done_cv.wait(lock, [&] { return job->done >= job->n; });
  if (job->error) std::rethrow_exception(job->error);
}

void ParallelFor(std::size_t n, int max_threads,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t grain) {
  if (max_threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool::Global().ParallelFor(n, max_threads, fn, grain);
}

}  // namespace themis
