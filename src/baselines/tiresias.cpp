#include "baselines/tiresias.h"

#include <algorithm>

namespace themis {

GrantSet TiresiasPolicy::RunRound(const ResourceOffer& /*offer*/,
                                  SchedulerContext& ctx) {
  // Apps sorted by least attained service (ties: arrival order via AppId).
  AppList apps = ctx.apps();
  std::stable_sort(apps.begin(), apps.end(),
                   [](const AppState* a, const AppState* b) {
                     if (a->attained_service != b->attained_service)
                       return a->attained_service < b->attained_service;
                     return a->id < b->id;
                   });

  // Round-robin over the LAS order: each pass gives the neediest app one
  // gang until the pool or all demand is exhausted. Placement-unaware but
  // speed-aware: take the fastest pooled GPUs first (on a uniform-speed
  // cluster this is the first pooled ids, exactly the classic pick). The
  // attained service driving the sort is effective (speed-weighted)
  // GPU-time, so LAS stays meaningful across generations.
  const FreePool& pool = ctx.free_pool();
  bool progress = true;
  while (progress && !pool.empty()) {
    progress = false;
    for (AppState* app : apps) {
      for (int j : app->ActiveJobs()) {
        JobState& job = app->jobs[j];
        if (job.UnmetGangs() <= 0) continue;
        const int gang = job.spec.gpus_per_task;
        if (pool.size() < gang) continue;
        ctx.Grant(*app, job, pool.FirstNFastest(gang));
        progress = true;
        break;  // one gang per app per round
      }
      if (pool.empty()) break;
    }
  }
  return ctx.TakeGrants();
}

}  // namespace themis
