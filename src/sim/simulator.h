// Event-driven GPU-cluster simulator (Sec. 8.1 "Simulator").
//
// The simulator advances job progress between events, reclaims expired
// leases, invokes the per-app tuners (HyperBand / HyperDrive), and runs one
// ARBITER round per scheduling pass: it publishes a ResourceOffer, hands it
// to the IRoundScheduler, and applies the returned GrantSet itself through
// ApplyGrants — policies never mutate the cluster. It then applies the
// checkpoint/restart overhead whenever a job's gang changes. An app finishes
// when its first job reaches the target accuracy — that job is the "best
// model" that defines the app's finish time (Sec. 2.1) — at which point the
// remaining jobs are terminated and their GPUs reclaimed.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "estimator/work_estimator.h"
#include "metrics/collector.h"
#include "sim/events.h"
#include "sim/policy.h"
#include "sim/state.h"
#include "workload/trace_gen.h"

namespace themis {

struct SimConfig {
  /// GPU lease duration (Sec. 8.2's sensitivity knob; default 20 min).
  Time lease_minutes = 20.0;
  /// Progress stall applied when a job's gang changes: checkpoint to HDFS
  /// (5-10 s) plus container churn (35-50 s), Sec. 8.3.2.
  Time restart_overhead_minutes = 0.75;
  /// Hard ceiling on simulated time; apps unfinished past this point are
  /// reported as such (tests assert none are).
  Time max_time = 1.0e7;
  EstimatorConfig estimator;
  std::uint64_t seed = 1234;

  /// Failure injection (Sec. 6 "Scheduling after failures" — the study the
  /// paper leaves to future work). Mean time between failures per machine in
  /// minutes; 0 disables injection. When a machine fails every GPU lease on
  /// it is revoked (the affected jobs restart from checkpoints elsewhere)
  /// and the machine rejoins after `machine_repair_minutes`.
  Time machine_mtbf_minutes = 0.0;
  Time machine_repair_minutes = 60.0;

  /// Reject configurations that would silently produce nonsense runs
  /// (non-positive lease, negative overhead, ...). Throws
  /// std::invalid_argument naming the offending knob; called by the
  /// Simulator constructor before any state is built.
  void Validate() const;
};

struct SimResult {
  MetricsCollector metrics;
  /// Apps that never finished before max_time (should be empty).
  std::vector<AppId> unfinished;
  Time end_time = 0.0;
  int scheduling_passes = 0;
  /// Peak over time of (sum of active apps' GPU demand) / cluster GPUs —
  /// the paper's contention yardstick (Sec. 8.3 reports 4.76x and calls it
  /// the ideal max finish-time fairness).
  double peak_contention = 0.0;
  /// Failure-injection accounting.
  int machine_failures = 0;
  int gpu_leases_revoked_by_failures = 0;
};

class Simulator {
 public:
  Simulator(ClusterSpec cluster_spec, std::vector<AppSpec> apps,
            std::unique_ptr<IRoundScheduler> scheduler, SimConfig config = {});

  /// Run to completion (all apps finished) or to config.max_time.
  SimResult Run();

  const Cluster& cluster() const { return cluster_; }
  const std::vector<std::unique_ptr<AppState>>& apps() const { return apps_; }

  /// Observe every (offer, grants) round as it is applied — the federation
  /// layer uses this to check cross-shard invariants; tests use it to audit
  /// grant streams. Called after ApplyGrants, before overhead accounting.
  using RoundObserver =
      std::function<void(const ResourceOffer&, const GrantSet&)>;
  void set_round_observer(RoundObserver observer) {
    round_observer_ = std::move(observer);
  }

 private:
  void AdvanceTo(Time t);
  void SchedulingPass(Time t);
  void FinishJob(Time t, AppState& app, JobState& job);
  void FinishApp(Time t, AppState& app);
  void KillJob(AppState& app, JobState& job);
  void RescheduleFinishEvents(Time t);
  void PushLeaseTick(Time t);
  AppState* FindApp(AppId id);
  /// Maintain the active-app set (arrived && !finished, ascending AppId).
  void ActivateApp(AppState* app);
  void DeactivateApp(AppId id);

  Cluster cluster_;
  std::vector<std::unique_ptr<AppState>> apps_;
  /// Apps that arrived and have not finished, sorted by AppId. Every
  /// per-pass walk (progress advance, tuner step, finish-event rescheduling)
  /// iterates this set instead of rescanning apps_.
  AppList active_apps_;
  std::unique_ptr<IRoundScheduler> scheduler_;
  RoundObserver round_observer_;
  SimConfig config_;
  WorkEstimator estimator_;
  Rng rng_;
  EventQueue queue_;
  MetricsCollector metrics_;
  Time last_advance_ = 0.0;
  std::set<Time> pushed_ticks_;
  int passes_ = 0;
  int finished_apps_ = 0;
  double peak_contention_ = 0.0;
  Rng failure_rng_{0xFA11};
  int machine_failures_ = 0;
  int leases_revoked_by_failures_ = 0;
};

}  // namespace themis
