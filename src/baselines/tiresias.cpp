#include "baselines/tiresias.h"

#include <algorithm>
#include <vector>

namespace themis {

GrantSet TiresiasPolicy::RunRound(const ResourceOffer& /*offer*/,
                                  SchedulerContext& ctx) {
  // Round-robin in least-attained-service order (ties: arrival order via
  // AppId): each iteration gives the neediest app one gang until the pool
  // or all demand is exhausted. Placement-unaware but speed-aware: take
  // the fastest pooled GPUs first (on a uniform-speed cluster this is the
  // first pooled ids, exactly the classic pick). The attained service
  // driving the order is effective (speed-weighted) GPU-time, so LAS stays
  // meaningful across generations.
  //
  // LAS order is materialized lazily: a typical round grants only what a
  // finish or expiry just freed, so instead of sorting the whole active
  // set every round, a min-heap keyed by (round-robin iteration, attained
  // service, id) pops exactly the grant sequence of the sorted walk —
  // O(n + grants log n) per round instead of O(n log n). Attained service
  // never changes mid-round, and the pool only shrinks, so an app with
  // nothing grantable now can be dropped: it cannot become grantable
  // later in the round.
  const FreePool& pool = ctx.free_pool();
  if (pool.empty()) return ctx.TakeGrants();

  // Grantability scan shared by the fast path and the heap walk: one gang
  // for the app's first grantable job — jobs scanned in index order; a job
  // whose whole gang no longer fits the pool is skipped, not waited for.
  const auto grant_one = [&](AppState& app) {
    for (JobState& job : app.jobs) {
      if (job.UnmetGangs() <= 0) continue;
      const int gang = job.spec.gpus_per_task;
      if (pool.size() < gang) continue;
      ctx.Grant(app, job, pool.FirstNFastest(gang));
      return true;
    }
    return false;
  };
  const auto before = [](const AppState* a, const AppState* b) {
    if (a->attained_service != b->attained_service)
      return a->attained_service < b->attained_service;
    return a->id < b->id;
  };

  // Fast path: the common round grants exactly what a finish or an expiry
  // just freed — one gang. A linear min-scan finds the neediest grantable
  // app without building the heap; if the pool still has GPUs after that
  // grant (burst rounds), fall through to the full round-robin walk, which
  // re-ranks this app at iteration 1 exactly as the heap walk would have.
  AppState* fast = nullptr;
  for (AppState* app : ctx.apps()) {
    if (fast != nullptr && !before(app, fast)) continue;
    for (const JobState& job : app->jobs) {
      if (job.UnmetGangs() <= 0) continue;
      if (pool.size() < job.spec.gpus_per_task) continue;
      fast = app;
      break;
    }
  }
  if (fast == nullptr) return ctx.TakeGrants();
  grant_one(*fast);
  if (pool.empty()) return ctx.TakeGrants();

  struct Entry {
    int iter;
    Work attained;
    AppId id;
    AppState* app;
  };
  const auto later = [](const Entry& a, const Entry& b) {
    if (a.iter != b.iter) return a.iter > b.iter;
    if (a.attained != b.attained) return a.attained > b.attained;
    return a.id > b.id;
  };
  std::vector<Entry> heap;
  heap.reserve(ctx.apps().size());
  for (AppState* app : ctx.apps())
    // The fast-path app already received its iteration-1 gang, so it
    // rejoins the round-robin at iteration 1 — one gang per app per
    // iteration, exactly as the sorted walk orders it.
    heap.push_back(Entry{app == fast ? 1 : 0, app->attained_service, app->id,
                         app});
  std::make_heap(heap.begin(), heap.end(), later);

  while (!heap.empty() && !pool.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Entry e = heap.back();
    heap.pop_back();
    if (grant_one(*e.app)) {
      ++e.iter;
      heap.push_back(e);
      std::push_heap(heap.begin(), heap.end(), later);
    }
    // An app with nothing grantable now never becomes grantable later in
    // the round (the pool only shrinks), so it is dropped, exactly as the
    // sorted walk would skip it in every later iteration.
  }
  return ctx.TakeGrants();
}

}  // namespace themis
