// Mutable cluster state: which app/job owns each GPU and until when.
//
// THEMIS associates a lease with every GPU (Sec. 3). An allocation is binding
// for the lease duration; when the lease expires the GPU returns to the pool
// the ARBITER auctions off. The Cluster class enforces the single-owner
// invariant (a GPU is held by at most one app at a time) and provides the
// free-GPU views the policies consume.
#pragma once

#include <optional>
#include <vector>

#include "cluster/topology.h"
#include "common/types.h"

namespace themis {

struct Lease {
  AppId app = kNoApp;
  JobId job = kNoJob;
  Time expiry = 0.0;
};

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);

  const Topology& topology() const { return topo_; }
  int num_gpus() const { return topo_.num_gpus(); }
  int num_machines() const { return topo_.num_machines(); }

  bool IsFree(GpuId gpu) const { return !leases_[gpu].has_value(); }
  const std::optional<Lease>& lease(GpuId gpu) const { return leases_[gpu]; }

  /// All currently unallocated GPUs, in ascending GPU-id order.
  std::vector<GpuId> FreeGpus() const;

  /// Free GPU count per machine; index = MachineId. This is the resource
  /// vector R-> the ARBITER offers in auctions (one dimension per machine).
  std::vector<int> FreeGpusPerMachine() const;

  /// Free GPUs hosted by one machine.
  std::vector<GpuId> FreeGpusOnMachine(MachineId m) const;

  /// GPUs currently held by an app (optionally restricted to one job).
  std::vector<GpuId> GpusHeldBy(AppId app) const;
  std::vector<GpuId> GpusHeldBy(AppId app, JobId job) const;

  /// Grant `gpu` to (app, job) until `expiry`. Throws if the GPU is taken.
  void Allocate(GpuId gpu, AppId app, JobId job, Time expiry);

  /// Release a GPU back to the free pool. Throws if it was already free.
  void Release(GpuId gpu);

  /// Release every GPU held by the app (e.g., app finished).
  void ReleaseAll(AppId app);

  /// GPUs whose lease expired at or before `now`. Does not release them;
  /// the simulator decides when reclaimed GPUs enter an auction.
  std::vector<GpuId> ExpiredGpus(Time now) const;

  /// Extend the lease on a GPU already held by `app` (lease renewal when an
  /// app wins back its own GPUs).
  void Renew(GpuId gpu, Time new_expiry);

  /// Failure-domain support (Sec. 6 "Scheduling after failures"): a machine
  /// marked down contributes no free GPUs and rejects allocations. Releasing
  /// the GPUs an app held on the failed machine is the simulator's job.
  void SetMachineDown(MachineId machine, bool down);
  bool IsMachineDown(MachineId machine) const { return machine_down_[machine]; }
  int num_machines_down() const;

  int num_allocated() const { return num_allocated_; }
  int num_free() const { return num_gpus() - num_allocated_; }

 private:
  Topology topo_;
  std::vector<std::optional<Lease>> leases_;
  std::vector<bool> machine_down_;
  int num_allocated_ = 0;
};

}  // namespace themis
