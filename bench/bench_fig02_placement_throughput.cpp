// Figure 2: "Effect of GPU resource allocation configuration on job
// throughput for different models" — 4 P100s on one server vs 4 P100s
// across two servers (2x2).
//
// Throughput = serial_throughput * G * S(placement). The 1-server bar uses
// the machine-level slowdown, the 2x2 bar the rack-level slowdown (two
// servers in one rack), reproducing the figure's shape: VGG16/19 lose ~2x
// across servers while ResNet50 is nearly flat.
//
// A second section measures *scheduling-state* throughput: how many
// scheduler-pass-shaped query/update rounds per second the indexed Cluster
// sustains at topologies 10-100x the paper's 64-GPU testbed. Each pass
// mirrors what one SchedulingPass touches — reclaim expired leases, build
// the free views, probe every app's holdings, re-grant the pool. Override
// the largest sweep point with THEMIS_BENCH_MACHINES (8 GPUs/machine).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "cluster/topology.h"
#include "placement/placement_model.h"

namespace {

using namespace themis;

/// One scheduler-pass-shaped churn measurement (bench::ClusterPassChurnRound
/// defines the round, shared with bench_overheads); returns passes/second.
double MeasureClusterPasses(const ClusterSpec& spec, int apps) {
  Cluster cluster(spec);
  bench::ChurnPrefill(cluster, apps);

  const int passes = 300;
  std::size_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p)
    sink += bench::ClusterPassChurnRound(cluster, apps, 20.0 + p * 0.4);
  const auto t1 = std::chrono::steady_clock::now();
  // Keep the accumulated query results observable so the measured loop
  // cannot be elided.
  volatile std::size_t guard = sink;
  (void)guard;
  return passes / std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  // Two 4-GPU servers in one rack.
  const Topology topo(ClusterSpec::Uniform(1, 2, 4, 2));
  const std::vector<GpuId> one_server{0, 1, 2, 3};
  const std::vector<GpuId> two_by_two{0, 1, 4, 5};

  bench::BenchReport report("fig02_placement_throughput");
  report.Config("cluster", "1 rack x 2 machines x 4 GPUs");

  std::printf("=== Figure 2: throughput (images/sec) vs placement ===\n");
  std::printf("%-14s %22s %26s %8s\n", "model", "4 GPUs on 1 server",
              "4 GPUs across 2 servers", "ratio");
  for (const ModelProfile& m : CanonicalModels()) {
    const double local = m.serial_throughput * EffectiveRate(m, one_server, topo);
    const double spread = m.serial_throughput * EffectiveRate(m, two_by_two, topo);
    std::printf("%-14s %22.0f %26.0f %8.2f\n", m.name.c_str(), local, spread,
                local / spread);
    report.Metric("throughput_1server." + m.name, local);
    report.Metric("throughput_2x2." + m.name, spread);
    report.Metric("placement_ratio." + m.name, local / spread);
  }
  std::printf("\npaper reference: VGG16 ~2x faster on one server; ResNet50"
              " placement-insensitive\n");

  int max_machines = 512;
  if (const char* env = std::getenv("THEMIS_BENCH_MACHINES"); env && *env)
    max_machines = std::max(8, std::atoi(env));
  report.Config("max_machines", static_cast<double>(max_machines));

  std::printf("\n=== Scheduling-state throughput vs cluster size ===\n");
  std::printf("(scheduler-pass-shaped rounds/sec on the indexed cluster;\n"
              " each round reclaims + requeries + regrants, 8 GPUs/machine)\n");
  std::printf("%10s %8s %8s %14s\n", "machines", "gpus", "apps", "passes/sec");
  std::vector<int> measured_gpus;
  for (int requested : {32, 128, max_machines}) {
    const ClusterSpec spec = bench::ChurnSweepTopology(requested, 8);
    // Dedup on the realized size: a THEMIS_BENCH_MACHINES of 32 or 128
    // would otherwise measure (and report a JSON key for) the same
    // topology twice.
    if (std::find(measured_gpus.begin(), measured_gpus.end(),
                  spec.TotalGpus()) != measured_gpus.end())
      continue;
    measured_gpus.push_back(spec.TotalGpus());
    const int machines = spec.TotalMachines();  // realized, not requested
    const int apps = machines;  // one probing app per machine keeps the mix
    const double rate = MeasureClusterPasses(spec, apps);
    std::printf("%10d %8d %8d %14.0f\n", machines, spec.TotalGpus(), apps,
                rate);
    char key[48];
    std::snprintf(key, sizeof key, "cluster_passes_per_sec@%dgpus",
                  spec.TotalGpus());
    report.Metric(key, rate);
  }
  std::printf("\nthe 512-machine row is the ISSUE 3 acceptance point: the\n"
              "scan-based cluster sustained ~523 passes/sec there\n");
  return report.Write() ? 0 : 1;
}
