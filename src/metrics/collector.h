// Evaluation metrics (Sec. 8.1 "Metrics"):
//   - Max Fairness: worst finish-time fairness rho across apps (lower = fairer)
//   - Jain's Fairness: variance of rho across apps (closer to 1 = better)
//   - Placement Score: 4-level locality score of job allocations
//   - GPU Time: total GPU-minutes consumed; lower = more efficient cluster use
//   - App Completion Time (ACT): finish - arrival per app
// The simulator feeds the collector; benches and tests read the summaries.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace themis {

struct AppRecord {
  AppId app = kNoApp;
  Time arrival = 0.0;
  Time finish = -1.0;
  Time ideal_time = 1.0;
  double mean_placement_score = 1.0;
  Work attained_service = 0.0;

  double Rho() const { return (finish - arrival) / ideal_time; }
  Time CompletionTime() const { return finish - arrival; }
};

/// Timeline sample for Fig. 8-style allocation traces.
struct AllocationSample {
  Time time = 0.0;
  AppId app = kNoApp;
  int gpus = 0;
};

class MetricsCollector {
 public:
  void RecordAppFinish(const AppRecord& record);
  void RecordGpuTime(Work gpu_minutes) { gpu_time_ += gpu_minutes; }
  void RecordAllocation(Time time, AppId app, int gpus);
  void RecordAuction(int participants, int offered_gpus, int granted_gpus,
                     int leftover_gpus);

  const std::vector<AppRecord>& apps() const { return apps_; }
  const std::vector<AllocationSample>& timeline() const { return timeline_; }

  double MaxFairness() const;
  double MedianFairness() const;
  double MinFairness() const;
  double JainsFairnessIndex() const;
  double AverageCompletionTime() const;
  std::vector<double> CompletionTimes() const;
  std::vector<double> Rhos() const;
  std::vector<double> PlacementScores() const;
  Work TotalGpuTime() const { return gpu_time_; }

  int auctions_run() const { return auctions_; }
  double MeanLeftoverFraction() const;

  std::string SummaryString() const;

 private:
  std::vector<AppRecord> apps_;
  std::vector<AllocationSample> timeline_;
  Work gpu_time_ = 0.0;
  int auctions_ = 0;
  double leftover_fraction_sum_ = 0.0;
  int leftover_samples_ = 0;
};

}  // namespace themis
