// Property tests for the constant-memory sketches behind bounded-memory
// metrics: P² streaming quantiles vs the exact Percentile, reservoir
// sampling determinism and small-stream identity, and the moment
// accumulator's exact reproduction of Jain's index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace themis {
namespace {

TEST(P2Quantile, RejectsOutOfRangeQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2Quantile, EmptyStreamIsZero) {
  EXPECT_DOUBLE_EQ(P2Quantile(0.5).Value(), 0.0);
}

TEST(P2Quantile, ExactForFiveOrFewerObservations) {
  const std::vector<double> xs = {9.0, 1.0, 5.0, 3.0, 7.0};
  for (std::size_t n = 1; n <= xs.size(); ++n) {
    P2Quantile med(0.5);
    std::vector<double> prefix(xs.begin(), xs.begin() + n);
    for (double x : prefix) med.Add(x);
    EXPECT_DOUBLE_EQ(med.Value(), Percentile(prefix, 50.0))
        << "prefix length " << n;
  }
}

class P2AccuracyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(P2AccuracyTest, MedianWithinOnePercentOnLognormal) {
  Rng rng(GetParam());
  P2Quantile med(0.5);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::exp(rng.Normal(0.0, 0.75));
    med.Add(x);
    all.push_back(x);
  }
  const double exact = Percentile(all, 50.0);
  EXPECT_NEAR(med.Value(), exact, 0.01 * exact);
}

TEST_P(P2AccuracyTest, TailQuantileWithinTolerance) {
  Rng rng(GetParam() ^ 0xABCDULL);
  P2Quantile p90(0.9);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.NextDouble() * 100.0;  // uniform [0, 100)
    p90.Add(x);
    all.push_back(x);
  }
  // Uniform is the easy case; 1% of the range is a conservative bound.
  EXPECT_NEAR(p90.Value(), Percentile(all, 90.0), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, P2AccuracyTest,
                         ::testing::Values(1u, 42u, 1234u, 9999u));

TEST(P2Quantile, MonotoneInputConverges) {
  P2Quantile med(0.5);
  for (int i = 1; i <= 1001; ++i) med.Add(static_cast<double>(i));
  // True median is 501; P2 should land very close on smooth input.
  EXPECT_NEAR(med.Value(), 501.0, 5.0);
}

TEST(Reservoir, IdentityBelowCapacity) {
  Reservoir<double> res(16);
  for (int i = 0; i < 10; ++i) res.Add(static_cast<double>(i));
  ASSERT_EQ(res.items().size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(res.items()[i], i);
  EXPECT_EQ(res.count(), 10u);
}

TEST(Reservoir, NeverExceedsCapacity) {
  Reservoir<int> res(8, 7);
  for (int i = 0; i < 1000; ++i) res.Add(i);
  EXPECT_EQ(res.items().size(), 8u);
  EXPECT_EQ(res.count(), 1000u);
}

TEST(Reservoir, DeterministicInSeed) {
  Reservoir<int> a(8, 99), b(8, 99), c(8, 100);
  for (int i = 0; i < 500; ++i) {
    a.Add(i);
    b.Add(i);
    c.Add(i);
  }
  EXPECT_EQ(a.items(), b.items());
  EXPECT_NE(a.items(), c.items());
}

TEST(Reservoir, SampleIsRoughlyUniform) {
  // Each element should be retained with probability capacity/stream.
  // Average many independent reservoirs and check first-half coverage.
  const int stream = 200, cap = 20, trials = 300;
  int first_half_hits = 0;
  for (int t = 0; t < trials; ++t) {
    Reservoir<int> res(cap, 1000 + t);
    for (int i = 0; i < stream; ++i) res.Add(i);
    for (int v : res.items())
      if (v < stream / 2) ++first_half_hits;
  }
  const double frac =
      static_cast<double>(first_half_hits) / (trials * cap);
  EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(MomentAccumulator, JainsIndexExactlyMatchesVectorForm) {
  Rng rng(4242);
  std::vector<double> xs;
  MomentAccumulator acc;
  for (int i = 0; i < 777; ++i) {
    const double x = rng.NextDouble() * 10.0 + 0.1;
    xs.push_back(x);
    acc.Add(x);
  }
  // Same additions in the same order: bit-for-bit equal, not just close.
  EXPECT_EQ(acc.JainsIndex(), JainsIndex(xs));
  EXPECT_EQ(acc.count(), xs.size());
}

TEST(MomentAccumulator, EmptyAndDegenerateStreams) {
  MomentAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.JainsIndex(), 1.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.Add(0.0);
  EXPECT_DOUBLE_EQ(acc.JainsIndex(), 1.0);  // all-zero stream
}

TEST(MomentAccumulator, UniformStreamIsPerfectlyFair) {
  MomentAccumulator acc;
  for (int i = 0; i < 50; ++i) acc.Add(3.5);
  EXPECT_NEAR(acc.JainsIndex(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_NEAR(acc.variance(), 0.0, 1e-9);
}

}  // namespace
}  // namespace themis
