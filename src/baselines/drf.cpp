#include "baselines/drf.h"

#include <algorithm>

namespace themis {

GrantSet DrfPolicy::RunRound(const ResourceOffer& /*offer*/,
                             SchedulerContext& ctx) {
  // Max-min on instantaneous GPU share: one gang at a time to the app with
  // the smallest current holding (dominant share == GPU share in a
  // single-resource cluster).
  const FreePool& pool = ctx.free_pool();
  while (!pool.empty()) {
    AppState* poorest = nullptr;
    int poorest_job = -1;
    for (AppState* app : ctx.apps()) {
      for (int j : app->ActiveJobs()) {
        JobState& job = app->jobs[j];
        if (job.UnmetGangs() <= 0) continue;
        if (job.spec.gpus_per_task > pool.size()) continue;
        if (poorest == nullptr || app->GpusHeld() < poorest->GpusHeld() ||
            (app->GpusHeld() == poorest->GpusHeld() && app->id < poorest->id)) {
          poorest = app;
          poorest_job = j;
        }
        break;  // evaluating one eligible job per app suffices for the share
      }
    }
    if (poorest == nullptr) break;

    JobState& job = poorest->jobs[poorest_job];
    // Placement-unaware: first pooled GPUs by id.
    ctx.Grant(*poorest, job, pool.FirstN(job.spec.gpus_per_task));
  }
  return ctx.TakeGrants();
}

}  // namespace themis
