// Work-left estimation feeding the AGENT's bid valuations.
//
// The paper's simulator "assume[s] clairvoyance of the number of iterations
// run by each hyperparameter exploration job" (Sec. 8.1); Fig. 11 then
// studies robustness to estimation error by perturbing bid valuations with
// noise sampled uniformly from [-theta, +theta]. This module reproduces both
// modes: clairvoyant truth, truth + injected multiplicative error, and a
// profile-based mode that fits the observed loss curve instead.
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "estimator/curve_fit.h"
#include "workload/job_spec.h"

namespace themis {

enum class EstimationMode {
  kClairvoyant,  // exact remaining work
  kNoisy,        // exact value perturbed by U[-theta, +theta] relative error
  kCurveFit,     // power-law fit of loss samples observed so far
};

struct EstimatorConfig {
  EstimationMode mode = EstimationMode::kClairvoyant;
  /// Relative error bound theta for kNoisy (0.2 == +/-20%, Fig. 11's x-axis).
  double theta = 0.0;
  std::uint64_t seed = 7;
};

class WorkEstimator {
 public:
  explicit WorkEstimator(EstimatorConfig config);

  /// Estimated remaining serial work (GPU-minutes) for a job that has
  /// completed `done_iterations` of its spec. Never negative.
  Work RemainingWork(const JobSpec& job, double done_iterations,
                     double target_loss);

  /// Estimated total serial work for the job (used for T_ID).
  Work TotalWork(const JobSpec& job, double target_loss);

  const EstimatorConfig& config() const { return config_; }

 private:
  double Perturb(double value);

  EstimatorConfig config_;
  Rng rng_;
};

}  // namespace themis
