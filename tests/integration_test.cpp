// End-to-end integration tests: full simulations exercising the THEMIS
// scheduler against the baselines, plus the paper's headline qualitative
// claims (sharing incentive, short-app favoritism, placement sensitivity).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/experiment.h"

namespace themis {
namespace {

AppSpec SingleJobApp(Time arrival, double work, int gpus,
                     const char* model = "ResNet50") {
  AppSpec app;
  app.arrival = arrival;
  app.tuner = TunerKind::kNone;
  app.target_loss = 0.1;
  JobSpec job;
  job.total_work = work;
  job.total_iterations = 1000.0;
  job.num_tasks = 1;
  job.gpus_per_task = gpus;
  job.model = ModelByName(model);
  job.loss = LossCurve(0.1 * std::pow(1001.0, 0.6), 0.6, 0.0);
  app.jobs = {job};
  return app;
}

TEST(Integration, SharingIncentiveForSimultaneousIdenticalApps) {
  // N identical apps starting together on a cluster that fits exactly one:
  // finish-time fairness rho should stay at or below N (plus scheduling
  // overhead slack) for every app — the Sec. 4 sharing-incentive claim.
  const int n = 4;
  std::vector<AppSpec> apps;
  for (int i = 0; i < n; ++i) apps.push_back(SingleJobApp(0.0, 80.0, 4));
  ExperimentConfig config;
  config.cluster = ClusterSpec::Uniform(1, 1, 4, 4);
  config.policy = PolicyKind::kThemis;
  config.sim.lease_minutes = 10.0;
  const ExperimentResult r = RunExperimentWithApps(config, apps);
  ASSERT_EQ(r.unfinished_apps, 0);
  for (double rho : r.rhos) EXPECT_LE(rho, n * 1.15);
}

TEST(Integration, ShortAppsAreFavoredOverLongOnes) {
  // Fig. 8's qualitative behaviour: a short app competing with a long app
  // completes near its ideal time because unbounded/worsening rho wins it
  // early auctions; the long app is not starved.
  std::vector<AppSpec> apps{SingleJobApp(0.0, 240.0, 4),
                            SingleJobApp(0.0, 80.0, 4)};
  ExperimentConfig config;
  config.cluster = ClusterSpec::Uniform(1, 1, 4, 4);
  config.policy = PolicyKind::kThemis;
  config.sim.lease_minutes = 10.0;
  const ExperimentResult r = RunExperimentWithApps(config, apps);
  ASSERT_EQ(r.unfinished_apps, 0);
  const double rho_long = r.rhos[0];
  const double rho_short = r.rhos[1];
  // Both get sharing incentive (N = 2) with modest slack.
  EXPECT_LE(rho_short, 2.4);
  EXPECT_LE(rho_long, 2.4);
}

TEST(Integration, ThemisBeatsTiresiasOnMaxFairnessUnderContention) {
  // The macro result (Fig. 5a): with placement-sensitive apps and heavy
  // contention, Themis's worst-off app fares better than under LAS.
  auto run = [&](PolicyKind kind) {
    auto cfg = SimScaleConfig(kind, 42, 120);
    cfg.trace.contention_factor = 4.0;
    return RunExperiment(cfg);
  };
  const ExperimentResult themis = run(PolicyKind::kThemis);
  const ExperimentResult tiresias = run(PolicyKind::kTiresias);
  ASSERT_EQ(themis.unfinished_apps, 0);
  ASSERT_EQ(tiresias.unfinished_apps, 0);
  EXPECT_LT(themis.max_fairness, tiresias.max_fairness);
}

TEST(Integration, ThemisUsesClusterMoreEfficientlyThanTiresias) {
  // GPU-time comparison (Fig. 9b's 100%-network-intensive end): packing
  // sensitive jobs tightly means less total GPU time for the same work.
  auto run = [&](PolicyKind kind) {
    auto cfg = SimScaleConfig(kind, 7, 60);
    cfg.trace.frac_network_intensive = 1.0;
    cfg.trace.contention_factor = 2.0;
    return RunExperiment(cfg);
  };
  const ExperimentResult themis = run(PolicyKind::kThemis);
  const ExperimentResult tiresias = run(PolicyKind::kTiresias);
  EXPECT_LT(themis.gpu_time, tiresias.gpu_time);
}

TEST(Integration, ThemisPlacementScoresBeatTiresias) {
  auto run = [&](PolicyKind kind) {
    auto cfg = SimScaleConfig(kind, 11, 60);
    cfg.trace.frac_network_intensive = 0.8;
    cfg.trace.contention_factor = 2.0;
    return RunExperiment(cfg);
  };
  const ExperimentResult themis = run(PolicyKind::kThemis);
  const ExperimentResult tiresias = run(PolicyKind::kTiresias);
  double themis_mean = 0.0, tiresias_mean = 0.0;
  for (double s : themis.placement_scores) themis_mean += s;
  for (double s : tiresias.placement_scores) tiresias_mean += s;
  themis_mean /= themis.placement_scores.size();
  tiresias_mean /= tiresias.placement_scores.size();
  EXPECT_GT(themis_mean, tiresias_mean);
}

TEST(Integration, HigherFairnessKnobTightensMaxFairness) {
  // Fig. 4a's trend: larger f -> fewer, needier participants -> lower
  // (better) max finish-time fairness.
  auto run = [&](double f) {
    auto cfg = SimScaleConfig(PolicyKind::kThemis, 13, 80);
    cfg.trace.contention_factor = 4.0;
    cfg.themis.fairness_knob = f;
    return RunExperiment(cfg).max_fairness;
  };
  const double low = run(0.0);
  const double high = run(0.9);
  EXPECT_LE(high, low * 1.05);  // allow small noise, trend must hold
}

TEST(Integration, ErrorInBidsDegradesGracefully) {
  // Fig. 11: +/-20% valuation error must not blow up max fairness.
  auto run = [&](double theta) {
    auto cfg = SimScaleConfig(PolicyKind::kThemis, 17, 60);
    cfg.trace.contention_factor = 2.0;
    cfg.sim.estimator.mode =
        theta > 0.0 ? EstimationMode::kNoisy : EstimationMode::kClairvoyant;
    cfg.sim.estimator.theta = theta;
    return RunExperiment(cfg);
  };
  const ExperimentResult exact = run(0.0);
  const ExperimentResult noisy = run(0.2);
  ASSERT_EQ(noisy.unfinished_apps, 0);
  EXPECT_LT(noisy.max_fairness, exact.max_fairness * 1.6 + 1.0);
}

TEST(Integration, AllPoliciesCompleteTestbedScaleWorkload) {
  for (PolicyKind kind : {PolicyKind::kThemis, PolicyKind::kGandiva,
                          PolicyKind::kTiresias, PolicyKind::kSlaq}) {
    const ExperimentResult r = RunExperiment(TestbedScaleConfig(kind, 23, 30));
    EXPECT_EQ(r.unfinished_apps, 0) << ToString(kind);
    EXPECT_GT(r.max_fairness, 0.0) << ToString(kind);
    EXPECT_GT(r.gpu_time, 0.0) << ToString(kind);
  }
}

TEST(Integration, CurveFitEstimatorModeRunsEndToEnd) {
  auto cfg = SimScaleConfig(PolicyKind::kThemis, 29, 25);
  cfg.sim.estimator.mode = EstimationMode::kCurveFit;
  const ExperimentResult r = RunExperiment(cfg);
  EXPECT_EQ(r.unfinished_apps, 0);
}

TEST(Integration, HyperDriveTunerRunsEndToEnd) {
  TraceConfig trace;
  trace.seed = 31;
  trace.num_apps = 15;
  auto apps = TraceGenerator(trace).Generate();
  for (auto& app : apps)
    if (app.jobs.size() > 1) app.tuner = TunerKind::kHyperDrive;
  ExperimentConfig config;
  config.policy = PolicyKind::kThemis;
  const ExperimentResult r = RunExperimentWithApps(config, std::move(apps));
  EXPECT_EQ(r.unfinished_apps, 0);
}

}  // namespace
}  // namespace themis
