#include "baselines/slaq.h"

#include <algorithm>

#include "placement/placement_model.h"

namespace themis {
namespace {

/// Loss decrease of `job` over the next lease window if it ran with `gpus`
/// GPUs (machine-local placement assumed — SLAQ does not model placement, so
/// its bids use the ideal rate; actual progress in the simulator still pays
/// the real slowdown).
double MarginalLossDecrease(const JobState& job, int gpus, Time lease,
                            double /*target_loss*/) {
  if (gpus <= 0) return 0.0;
  const int usable = gpus - gpus % job.spec.gpus_per_task;
  if (usable <= 0) return 0.0;
  const double from = job.DoneIterations();
  const Work work = lease * static_cast<double>(usable);
  const double to = from + work / job.spec.WorkPerIteration();
  return job.spec.loss.LossDecrease(from, to);
}

}  // namespace

GrantSet SlaqPolicy::RunRound(const ResourceOffer& /*offer*/,
                              SchedulerContext& ctx) {
  const FreePool& pool = ctx.free_pool();
  bool progress = true;
  while (progress && !pool.empty()) {
    progress = false;

    // best_gain starts below zero so that even fully converged jobs (zero
    // marginal loss decrease) still receive GPUs: SLAQ is work conserving.
    AppState* best_app = nullptr;
    int best_job = -1;
    double best_gain = -1.0;

    for (AppState* app : ctx.apps()) {
      for (int j : app->ActiveJobs()) {
        JobState& job = app->jobs[j];
        if (job.UnmetGangs() <= 0) continue;
        const int gang = job.spec.gpus_per_task;
        if (pool.size() < gang) continue;
        const int held = static_cast<int>(job.gpus.size());
        const double gain =
            MarginalLossDecrease(job, held + gang, ctx.lease_duration(),
                                 app->spec.target_loss) -
            MarginalLossDecrease(job, held, ctx.lease_duration(),
                                 app->spec.target_loss);
        if (gain > best_gain) {
          best_gain = gain;
          best_app = app;
          best_job = j;
        }
      }
    }
    if (best_app == nullptr) break;

    JobState& job = best_app->jobs[best_job];
    // Placement-unaware, speed-aware: fastest pooled GPUs first (identical
    // to the first-by-id pick on uniform-speed clusters). SLAQ's bids still
    // assume the ideal rate; actual progress pays the real speed.
    ctx.Grant(*best_app, job, pool.FirstNFastest(job.spec.gpus_per_task));
    progress = true;
  }
  return ctx.TakeGrants();
}

}  // namespace themis
