// Figure 9: "Impact of placement sensitivity for varying compute-network job
// distributions" — sweeping the fraction of network-intensive apps from 0%
// to 100%:
//   (a) factor of improvement in max fairness of Themis over Tiresias
//   (b) GPU time for all four schemes.
//
// Paper shape: (a) ~1.05x at 0% rising to ~2.1x at 100%; (b) all schemes
// comparable at 0%, Themis increasingly more efficient as the network-
// intensive share grows.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  BenchReport report("fig09_placement_sensitivity");
  report.Config("cluster", "sim256");
  report.Config("contention_factor", 4.0);
  report.Config("num_apps", 100.0);

  std::printf("=== Figure 9a: Themis max-fairness improvement over Tiresias"
              " ===\n");
  std::printf("%18s %12s %12s %10s\n", "%net-intensive", "themis_max",
              "tiresias_max", "factor");
  for (double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto run = [&](PolicyKind kind) {
      ExperimentConfig cfg = ContendedSimConfig(kind, 42, 100);
      cfg.trace.frac_network_intensive = frac;
      return RunExperiment(cfg);
    };
    const ExperimentResult themis = run(PolicyKind::kThemis);
    const ExperimentResult tiresias = run(PolicyKind::kTiresias);
    const double factor = tiresias.max_fairness / themis.max_fairness;
    std::printf("%17.0f%% %12.2f %12.2f %10.2f\n", frac * 100.0,
                themis.max_fairness, tiresias.max_fairness, factor);
    char key[64];
    std::snprintf(key, sizeof key, "max_rho_factor_vs_tiresias@net=%.0f%%",
                  frac * 100.0);
    report.Metric(key, factor);
  }
  std::printf("\npaper reference: ~1.05x at 0%% rising to ~2.1x at 100%%\n");

  std::printf("\n=== Figure 9b: GPU time (mins) vs %%network-intensive ===\n");
  std::printf("%18s %12s %12s %12s %12s\n", "%net-intensive", "Themis",
              "Gandiva", "SLAQ", "Tiresias");
  for (double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    std::printf("%17.0f%%", frac * 100.0);
    for (PolicyKind kind : kAllPolicies) {
      ExperimentConfig cfg = ContendedSimConfig(kind, 42, 100);
      cfg.trace.frac_network_intensive = frac;
      const double gpu_time = RunExperiment(cfg).gpu_time;
      std::printf(" %12.0f", gpu_time);
      char key[64];
      std::snprintf(key, sizeof key, "gpu_time_min.%s@net=%.0f%%",
                    ToString(kind), frac * 100.0);
      report.Metric(key, gpu_time);
    }
    std::printf("\n");
  }
  std::printf("\npaper reference: schemes tie at 0%%; Themis pulls ahead as"
              " placement matters more\n");
  return report.Write() ? 0 : 1;
}
