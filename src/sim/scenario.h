// JSON scenario files -> ScenarioSpec lists for the SweepRunner.
//
// A scenario file describes a grid of experiments declaratively, so bench
// sweeps can be archived, edited by hand, and replayed — the same workflow
// workload/trace_io gives individual traces (a scenario may reference one of
// those CSV archives via "trace_csv"). Shape:
//
//   {
//     "defaults":  { "policy": "themis", "sim": {"lease_minutes": 10} },
//     "scenarios": [
//       { "name": "themis-base" },
//       { "name": "gandiva-base", "policy": "gandiva" },
//       { "name": "big",
//         "cluster": { "racks": 8, "machines_per_rack": 64,
//                      "gpus_per_machine": 8, "gpus_per_slot": 4 },
//         "trace":   { "seed": 7, "num_apps": 200, "contention_factor": 4 },
//         "themis":  { "fairness_knob": 0.6 } }
//     ]
//   }
//
// "defaults" (optional) is merged under every scenario. "cluster" accepts
// either {"preset": "sim256" | "sim256-mixed" | "testbed50" |
// "testbed50-mixed"} or the uniform shape above, plus an optional
// "generations" table — a single GPU-generation name for the whole cluster
// or an array naming one generation per rack (resolved against the built-in
// table, see cluster/topology.h; unknown names are fatal, like unknown
// keys). "generations" is the one key that composes with "preset": it
// re-prices the preset's machines without changing its shape.
// A top-level "base_seed" gives every scenario a position-derived seed
// (DeriveScenarioSeed) unless a seed is pinned in "defaults" or the
// scenario itself — grids stay reproducible without hand-numbering seeds.
// "trace_csv" replays an archived trace and cannot be combined with
// "trace" knobs in the same object (the knobs would be silently ignored);
// a scenario-level "trace_csv" does override trace settings inherited from
// "defaults". "trace_file" streams the same CSV format instead of
// preloading it (arrival-sorted input required; finished apps are retired
// eagerly — the million-job replay path) and is mutually exclusive with
// both "trace_csv" and "trace" knobs.
// Unknown keys anywhere are an error — scenario files fail loudly, not by
// silently ignoring a typo'd knob.
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.h"

namespace themis {

class JsonValue;

/// Parse scenario JSON text. Throws std::runtime_error (with a json line
/// number where applicable) on malformed documents or unknown fields.
std::vector<ScenarioSpec> LoadScenarios(const std::string& json_text);

/// Load and parse a scenario file.
std::vector<ScenarioSpec> LoadScenariosFile(const std::string& path);

/// Apply one scenario object (already parsed) on top of `base`; exposed for
/// tests and embedding tools.
ScenarioSpec ScenarioFromJson(const JsonValue& scenario,
                              const ExperimentConfig& base);

}  // namespace themis
