#include "server/arbiter_core.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "placement/placement_model.h"

namespace themis::server {

namespace {
constexpr double kFinishEps = 1e-6;
}

void ArbiterConfig::Validate() const {
  if (!(lease_minutes > 0.0))
    throw std::invalid_argument("ArbiterConfig: lease_minutes must be > 0 (got " +
                                std::to_string(lease_minutes) + ")");
  if (!(round_interval_minutes > 0.0))
    throw std::invalid_argument(
        "ArbiterConfig: round_interval_minutes must be > 0 (got " +
        std::to_string(round_interval_minutes) + ")");
  if (restart_overhead_minutes < 0.0)
    throw std::invalid_argument(
        "ArbiterConfig: restart_overhead_minutes must be >= 0 (got " +
        std::to_string(restart_overhead_minutes) + ")");
  if (themis.auction_threads < 0)
    throw std::invalid_argument(
        "ArbiterConfig: themis.auction_threads must be >= 0 (got " +
        std::to_string(themis.auction_threads) + ")");
}

ArbiterCore::ArbiterCore(const ArbiterConfig& config)
    : config_(config),
      cluster_(config.cluster),
      scheduler_(MakePolicy(config.policy, config.themis)),
      estimator_(config.estimator),
      rng_(config.seed) {
  config_.Validate();
}

AppState* ArbiterCore::FindApp(AppId id) {
  return id < apps_.size() ? apps_[id].get() : nullptr;
}

void ArbiterCore::ActivateApp(AppState* app) {
  const auto it = std::lower_bound(
      active_apps_.begin(), active_apps_.end(), app,
      [](const AppState* a, const AppState* b) { return a->id < b->id; });
  if (it == active_apps_.end() || (*it)->id != app->id)
    active_apps_.insert(it, app);
  rho_index_.Update(app);
}

void ArbiterCore::DeactivateApp(AppId id) {
  const auto it = std::lower_bound(
      active_apps_.begin(), active_apps_.end(), id,
      [](const AppState* a, AppId b) { return a->id < b; });
  if (it != active_apps_.end() && (*it)->id == id) active_apps_.erase(it);
}

void ArbiterCore::UpdateHolding(AppState* app) {
  bool holds = false;
  for (const JobState& job : app->jobs)
    if (!job.gpus.empty()) {
      holds = true;
      break;
    }
  const auto it = std::lower_bound(
      holding_apps_.begin(), holding_apps_.end(), app->id,
      [](const AppState* a, AppId b) { return a->id < b; });
  const bool present = it != holding_apps_.end() && (*it)->id == app->id;
  if (holds && !present)
    holding_apps_.insert(it, app);
  else if (!holds && present)
    holding_apps_.erase(it);
  rho_index_.Update(app);
}

void ArbiterCore::KillJob(JobState& job) {
  job.alive = false;
  ++job.alloc_version;
  for (GpuId g : job.gpus) cluster_.Release(g);
  job.gpus.clear();
}

void ArbiterCore::FinishApp(Time t, AppState& app) {
  if (app.finished) return;
  app.finished = true;
  app.finish_time = t;
  ++finished_apps_;
  DeactivateApp(app.id);
  for (JobState& job : app.jobs)
    if (job.alive && !job.finished) KillJob(job);
  UpdateHolding(&app);
}

AppId ArbiterCore::RegisterApp(AppSpec spec) {
  if (round_open_)
    throw std::logic_error("ArbiterCore: RegisterApp inside an open round");
  auto app = std::make_unique<AppState>();
  app->id = static_cast<AppId>(apps_.size());
  spec.arrival = now_;
  app->spec = std::move(spec);
  app->ideal_time = std::max(
      1e-9, app->spec.IdealRunningTime() / cluster_.topology().max_speed());
  app->tuner = MakeAppScheduler(app->spec);
  JobId next_job = 0;
  for (const JobSpec& js : app->spec.jobs) {
    JobState job;
    job.id = next_job++;
    job.spec = js;
    job.parallelism_cap = js.MaxParallelism();
    app->jobs.push_back(std::move(job));
  }
  app->arrived = true;
  app->tuner->Init(app->spec);
  AppState* raw = app.get();
  apps_.push_back(std::move(app));
  ActivateApp(raw);
  return raw->id;
}

void ArbiterCore::RemoveApp(AppId id) {
  if (round_open_)
    throw std::logic_error("ArbiterCore: RemoveApp inside an open round");
  AppState* app = FindApp(id);
  if (app == nullptr || app->finished) return;
  // Evicted, not converged: same state transitions as a finish (leases
  // released, out of every index) without counting toward apps_finished().
  app->finished = true;
  app->finish_time = now_;
  DeactivateApp(id);
  for (JobState& job : app->jobs)
    if (job.alive && !job.finished) KillJob(job);
  UpdateHolding(app);
}

int ArbiterCore::UnmetDemand(AppId id) const {
  const AppState* app = id < apps_.size() ? apps_[id].get() : nullptr;
  return (app == nullptr || app->finished) ? 0 : app->UnmetDemand();
}

RoundStart ArbiterCore::BeginRound() {
  if (round_open_)
    throw std::logic_error("ArbiterCore: BeginRound with a round open");
  RoundStart start;
  start.round_id = ++passes_;
  // Multiplication, not accumulation: round k lands at exactly k * interval
  // on every path, so daemon and reference agree to the last bit.
  now_ = static_cast<double>(passes_) * config_.round_interval_minutes;
  start.time = now_;

  // 1. Accrue progress over [last_advance_, now_] for lease holders — the
  // simulator's AdvanceTo arithmetic (held GPUs consume effective
  // GPU-minutes for the whole interval; training progresses from
  // max(last_advance_, resume_at)).
  for (AppState* app : holding_apps_) {
    for (JobState& job : app->jobs) {
      if (job.gpus.empty()) continue;
      const double held_dt = now_ - last_advance_;
      const double speed_sum = cluster_.topology().SpeedSum(job.gpus);
      const Work effective_minutes = held_dt * speed_sum;
      job.attained_service += effective_minutes;
      app->attained_service += effective_minutes;
      if (!job.Running()) continue;
      const Time seg_start = std::max(last_advance_, job.resume_at);
      if (now_ > seg_start) {
        job.done += (now_ - seg_start) * job.Rate(cluster_.topology());
        job.done = std::min(job.done, job.spec.total_work);
      }
    }
  }
  last_advance_ = now_;

  // 2. Finish detection at the round boundary: the first job of an app to
  // reach the target accuracy is its best model; the app is done and its
  // remaining jobs are terminated (Sec. 2.1). Ascending-id walk over a
  // snapshot — FinishApp edits active_apps_.
  std::vector<AppId> maybe_done;
  for (AppState* app : active_apps_) maybe_done.push_back(app->id);
  for (AppId id : maybe_done) {
    AppState* app = FindApp(id);
    if (app == nullptr || app->finished) continue;
    for (JobState& job : app->jobs) {
      if (!job.Running()) continue;
      if (job.RemainingWork() <= kFinishEps + 1e-9 * job.spec.total_work) {
        job.finished = true;
        job.finish_time = now_;
        ++job.alloc_version;
        for (GpuId g : job.gpus) cluster_.Release(g);
        job.gpus.clear();
        FinishApp(now_, *app);
        start.finished.push_back(id);
        break;
      }
    }
  }

  // 3. Reclaim expired leases.
  std::map<std::pair<AppId, JobId>, bool> reclaimed;
  for (GpuId g : cluster_.ExpiredGpus(now_)) {
    const Lease lease = *cluster_.lease(g);
    cluster_.Release(g);
    AppState* app = FindApp(lease.app);
    if (app != nullptr && lease.job < app->jobs.size()) {
      auto& gpus = app->jobs[lease.job].gpus;
      gpus.erase(std::remove(gpus.begin(), gpus.end(), g), gpus.end());
      reclaimed.try_emplace({lease.app, lease.job}, true);
    }
  }
  for (const auto& [key, unused] : reclaimed) {
    (void)unused;
    if (AppState* app = FindApp(key.first)) {
      ++app->jobs[key.second].alloc_version;
      UpdateHolding(app);
    }
  }

  // 4. Per-app tuner step: kills and parallelism caps.
  for (AppState* app : active_apps_) {
    app->Views(views_scratch_);
    const TunerDecision& decision = app->tuner->Step(views_scratch_, now_);
    bool killed = false;
    for (int idx : decision.kill) {
      JobState& job = app->jobs[idx];
      if (job.alive && !job.finished) {
        KillJob(job);
        killed = true;
      }
    }
    for (std::size_t j = 0; j < app->jobs.size(); ++j)
      app->jobs[j].parallelism_cap = decision.parallelism_cap[j];
    if (killed)
      UpdateHolding(app);
    else
      rho_index_.Update(app);
  }

  // 5. Publish the offer.
  std::vector<GpuId> free = cluster_.FreeGpus();
  if (!free.empty() && !active_apps_.empty()) {
    start.have_offer = true;
    start.offer.round_id = start.round_id;
    start.offer.time = now_;
    start.offer.lease_duration = config_.lease_minutes;
    start.offer.free_per_machine = cluster_.FreeGpusPerMachine();
    start.offer.machine_speeds = cluster_.topology().machine_speeds();
    start.offer.gpus = std::move(free);
  }
  round_open_ = start.have_offer;
  return start;
}

GrantSet ArbiterCore::FinishRound(const ResourceOffer& offer) {
  if (!round_open_)
    throw std::logic_error("ArbiterCore: FinishRound without an open offer");
  round_open_ = false;

  SchedulerContext ctx(offer, &cluster_, &estimator_, &active_apps_, &rng_);
  ctx.set_rho_index(&rho_index_);
  GrantSet grants = scheduler_->RunRound(offer, ctx);
  ApplyGrants(grants, cluster_);

  // Granted gangs strictly grew (reclamation already ran in BeginRound), so
  // every granted job restarts from its checkpoint. Ascending (app, job)
  // walk fixes the placement-score accumulation order.
  std::map<std::pair<AppId, JobId>, bool> granted;
  for (const auto& key : ctx.granted_jobs()) granted.try_emplace(key, true);
  for (const auto& [key, unused] : granted) {
    (void)unused;
    AppState* app = FindApp(key.first);
    if (app == nullptr || app->finished || key.second >= app->jobs.size())
      continue;
    JobState& job = app->jobs[key.second];
    ++job.alloc_version;
    if (!job.gpus.empty()) {
      job.resume_at = now_ + config_.restart_overhead_minutes;
      app->placement_scores.Add(PlacementScore(job.gpus, cluster_.topology()));
    }
    UpdateHolding(app);
  }

  for (const Grant& g : grants.grants)
    digest_.Add(grants.round_id, grants.lease_expiry, g);
  return grants;
}

GrantSet ArbiterCore::RunOneRound(RoundStart* start) {
  RoundStart s = BeginRound();
  if (start != nullptr) *start = s;
  if (!s.have_offer) return GrantSet{};
  return FinishRound(s.offer);
}

}  // namespace themis::server
