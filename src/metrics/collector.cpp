#include "metrics/collector.h"

#include <algorithm>
#include <sstream>

namespace themis {

MetricsCollector::MetricsCollector(const MetricsConfig& config)
    : config_(config),
      sample_(config.bounded_memory ? config.reservoir_capacity : 0,
              config.seed) {}

void MetricsCollector::RecordAppFinish(const AppRecord& record) {
  ++finished_apps_;
  const double rho = record.Rho();
  rho_range_.Add(rho);
  rho_moments_.Add(rho);
  rho_median_.Add(rho);
  act_.Add(record.CompletionTime());
  if (config_.bounded_memory) {
    sample_.Add(record);
  } else {
    apps_.push_back(record);
  }
}

void MetricsCollector::RecordAllocation(Time time, AppId app, int gpus) {
  const std::size_t idx = allocation_seen_++;
  if (idx % timeline_stride_ != 0) return;
  timeline_.push_back({time, app, gpus});
  if (config_.timeline_capacity > 0 &&
      timeline_.size() >= config_.timeline_capacity &&
      config_.timeline_capacity > 1) {
    // At capacity: drop every other retained sample and double the stride so
    // coverage stays uniform over the whole run in fixed memory.
    std::vector<AllocationSample> kept;
    kept.reserve(timeline_.size() / 2 + 1);
    for (std::size_t i = 0; i < timeline_.size(); i += 2) {
      kept.push_back(timeline_[i]);
    }
    timeline_ = std::move(kept);
    timeline_stride_ *= 2;
  }
}

void MetricsCollector::RecordAuction(int /*participants*/, int offered_gpus,
                                     int /*granted_gpus*/, int leftover_gpus) {
  ++auctions_;
  if (offered_gpus > 0) {
    leftover_fraction_sum_ +=
        static_cast<double>(leftover_gpus) / static_cast<double>(offered_gpus);
    ++leftover_samples_;
  }
}

const std::vector<AppRecord>& MetricsCollector::apps() const {
  return config_.bounded_memory ? sample_.items() : apps_;
}

std::vector<double> MetricsCollector::Rhos() const {
  const auto& records = apps();
  std::vector<double> out;
  out.reserve(records.size());
  for (const AppRecord& a : records) out.push_back(a.Rho());
  return out;
}

std::vector<double> MetricsCollector::CompletionTimes() const {
  const auto& records = apps();
  std::vector<double> out;
  out.reserve(records.size());
  for (const AppRecord& a : records) out.push_back(a.CompletionTime());
  return out;
}

std::vector<double> MetricsCollector::PlacementScores() const {
  const auto& records = apps();
  std::vector<double> out;
  out.reserve(records.size());
  for (const AppRecord& a : records) out.push_back(a.mean_placement_score);
  return out;
}

double MetricsCollector::MaxFairness() const {
  if (config_.bounded_memory) return rho_range_.count() ? rho_range_.max() : 0.0;
  double worst = 0.0;
  for (const AppRecord& a : apps_) worst = std::max(worst, a.Rho());
  return worst;
}

double MetricsCollector::MinFairness() const {
  if (config_.bounded_memory) return rho_range_.count() ? rho_range_.min() : 0.0;
  if (apps_.empty()) return 0.0;
  double best = apps_.front().Rho();
  for (const AppRecord& a : apps_) best = std::min(best, a.Rho());
  return best;
}

double MetricsCollector::MedianFairness() const {
  if (config_.bounded_memory) return rho_median_.Value();
  if (apps_.empty()) return 0.0;
  return Percentile(Rhos(), 50.0);
}

double MetricsCollector::JainsFairnessIndex() const {
  if (config_.bounded_memory) return rho_moments_.JainsIndex();
  const auto rhos = Rhos();
  return JainsIndex(rhos);
}

double MetricsCollector::AverageCompletionTime() const {
  if (config_.bounded_memory) return act_.mean();
  if (apps_.empty()) return 0.0;
  double sum = 0.0;
  for (const AppRecord& a : apps_) sum += a.CompletionTime();
  return sum / static_cast<double>(apps_.size());
}

double MetricsCollector::MeanLeftoverFraction() const {
  if (leftover_samples_ == 0) return 0.0;
  return leftover_fraction_sum_ / static_cast<double>(leftover_samples_);
}

std::string MetricsCollector::SummaryString() const {
  std::ostringstream os;
  os << "apps=" << finished_apps_ << " max_rho=" << MaxFairness()
     << " median_rho=" << MedianFairness() << " jain=" << JainsFairnessIndex()
     << " avg_act=" << AverageCompletionTime() << " gpu_time=" << TotalGpuTime();
  return os.str();
}

}  // namespace themis
