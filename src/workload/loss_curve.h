// Analytic training-loss curves.
//
// The paper's HyperBand/HyperDrive integrations and the SLAQ baseline all
// consume per-iteration loss sequences. Real jobs' loss trajectories are well
// approximated by power laws (the paper's profiler fits "a best-fit
// sub-linear or super-linear curve"); we model
//     loss(i) = floor + scale * (i + 1)^(-decay)
// where a larger decay means faster convergence (a better hyper-parameter
// choice). The iteration at which the loss first reaches the target defines
// the job's true total work.
#pragma once

#include <cstdint>

namespace themis {

class LossCurve {
 public:
  LossCurve() = default;
  /// scale > 0, decay > 0, floor >= 0.
  LossCurve(double scale, double decay, double floor);

  double LossAt(double iteration) const;

  /// First (fractional) iteration with loss <= target. Returns +inf when the
  /// target is at or below the floor (unreachable).
  double IterationsToTarget(double target) const;

  /// Loss decrease between iterations [from, to); used by SLAQ's
  /// marginal-quality bids.
  double LossDecrease(double from, double to) const;

  double scale() const { return scale_; }
  double decay() const { return decay_; }
  double floor() const { return floor_; }

 private:
  double scale_ = 1.0;
  double decay_ = 0.5;
  double floor_ = 0.0;
};

}  // namespace themis
