#include "auction/bid.h"

#include <algorithm>
#include <string>

namespace themis {

int BidRow::TotalGpus() const {
  int total = 0;
  for (int g : gpus_per_machine) total += g;
  return total;
}

bool BidRow::IsZero() const { return TotalGpus() == 0; }

double BidRow::Value() const {
  // rho is clamped into (0, kUnboundedRho] by the agent; guard anyway.
  const double r = std::max(1e-9, std::min(rho, kUnboundedRho));
  return 1.0 / r;
}

std::string ValidateBid(const BidTable& bid, const std::vector<int>& offered) {
  if (bid.rows.empty()) return "bid has no rows";
  if (!bid.rows.front().IsZero()) return "first row must be the zero allocation";
  for (std::size_t r = 0; r < bid.rows.size(); ++r) {
    const BidRow& row = bid.rows[r];
    if (row.gpus_per_machine.size() != offered.size())
      return "row " + std::to_string(r) + " has wrong dimensionality";
    for (std::size_t m = 0; m < offered.size(); ++m) {
      if (row.gpus_per_machine[m] < 0)
        return "row " + std::to_string(r) + " requests negative GPUs";
      if (row.gpus_per_machine[m] > offered[m])
        return "row " + std::to_string(r) + " exceeds the offer on machine " +
               std::to_string(m);
    }
    if (row.rho <= 0.0) return "row " + std::to_string(r) + " has non-positive rho";
    // More resources can only help: any non-zero row must value at least the
    // zero row (rho no worse than current).
    if (row.rho > bid.rows.front().rho + 1e-9)
      return "row " + std::to_string(r) + " values extra GPUs below current rho";
  }
  return "";
}

}  // namespace themis
