// Example: generate and replay a synthetic enterprise trace.
//
// Demonstrates the workload-generation API: configure the published trace
// marginals (jobs per app, task-duration mixture, GPU demand mix, Poisson
// arrivals), inspect the generated apps, then replay them through the
// simulator under THEMIS.
#include <cstdio>

#include "common/stats.h"
#include "sim/experiment.h"

int main() {
  using namespace themis;

  TraceConfig trace;
  trace.seed = 7;
  trace.num_apps = 40;
  trace.mean_interarrival = 20.0;
  trace.contention_factor = 2.0;
  trace.frac_network_intensive = 0.4;

  TraceGenerator gen(trace);
  const std::vector<AppSpec> apps = gen.Generate();

  // Inspect the generated workload.
  std::vector<double> jobs_per_app, durations;
  int sensitive = 0;
  for (const AppSpec& app : apps) {
    jobs_per_app.push_back(static_cast<double>(app.jobs.size()));
    if (app.jobs.front().model.network_intensive) ++sensitive;
    for (const JobSpec& job : app.jobs)
      durations.push_back(job.total_work / job.MaxParallelism());
  }
  std::printf("Generated trace: %zu apps, %zu jobs\n", apps.size(),
              durations.size());
  std::printf("  jobs/app median        : %.0f (paper: 23)\n",
              Percentile(jobs_per_app, 50.0));
  std::printf("  task duration median   : %.1f min (paper: 59 short / 123"
              " long)\n",
              Percentile(durations, 50.0));
  std::printf("  network-intensive apps : %d%% (paper: 40%%)\n",
              static_cast<int>(100.0 * sensitive / apps.size()));
  std::printf("  span of arrivals       : %.0f min\n", apps.back().arrival);

  // Replay under Themis.
  ExperimentConfig config;
  config.cluster = ClusterSpec::Simulation256();
  config.policy = PolicyKind::kThemis;
  const ExperimentResult r = RunExperimentWithApps(config, apps);

  std::printf("\nReplay on the 256-GPU simulated cluster (Themis):\n");
  std::printf("  peak contention : %.2f\n", r.peak_contention);
  std::printf("  max fairness    : %.2f\n", r.max_fairness);
  std::printf("  Jain's index    : %.3f\n", r.jains_index);
  std::printf("  avg ACT         : %.1f min\n", r.avg_completion_time);
  std::printf("  GPU time        : %.0f GPU-min\n", r.gpu_time);
  return r.unfinished_apps == 0 ? 0 : 1;
}
