#include "sim/scenario.h"

#include <cmath>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <stdexcept>

#include "common/json.h"

namespace themis {
namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error("scenario: " + what);
}

/// Every object in a scenario file is checked against its legal key set so a
/// typo'd knob fails the load instead of silently running the default, and
/// duplicate keys are rejected (lookups return the first occurrence, so a
/// duplicate would silently shadow the later value).
void CheckKeys(const JsonValue& obj, const char* where,
               std::initializer_list<const char*> allowed) {
  const auto& members = obj.members();
  for (std::size_t i = 0; i < members.size(); ++i) {
    const std::string& key = members[i].first;
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok) Fail(std::string("unknown key \"") + key + "\" in " + where);
    for (std::size_t j = 0; j < i; ++j)
      if (members[j].first == key)
        Fail(std::string("duplicate key \"") + key + "\" in " + where);
  }
}

/// Seeds are 64-bit and must not round-trip through negative or fractional
/// doubles (the cast would be UB or lossy); fail on anything but a
/// non-negative integer.
std::uint64_t SeedFromJson(const JsonValue& v, const char* where) {
  const double d = v.AsNumber();
  if (d < 0.0 || d != std::floor(d) || d >= 1.8446744073709552e19)
    Fail(std::string(where) + " seed must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

/// Integer knob with the same guard: a double outside int range would make
/// the cast UB, turning a typo'd magnitude into silent nonsense instead of
/// the loader's promised error.
int IntKnob(const JsonValue& obj, const char* key, int fallback,
            const char* where) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return fallback;
  const double d = v->AsNumber();
  if (d != std::floor(d) || d < -2147483648.0 || d > 2147483647.0)
    Fail(std::string(where) + "." + key + " must be an integer in int range");
  return static_cast<int>(d);
}

/// Resolve one generation name from the scenario's generation table against
/// the known-generation registry, failing with the loader's pointed error
/// (which generation, where, and what would be accepted) instead of a bare
/// exception — the unknown-keys-fatal contract applied to generation names.
GpuGeneration GenerationFromJson(const JsonValue& v, const std::string& where) {
  try {
    return GpuGenerationByName(v.AsString());
  } catch (const std::invalid_argument& e) {
    Fail(where + ": " + e.what());
  }
}

/// Apply the cluster object's "generations" table: a single name for the
/// whole cluster, or an array with exactly one name per rack.
void ApplyGenerations(const JsonValue& generations, ClusterSpec& spec) {
  if (generations.is_array()) {
    const std::size_t racks = spec.racks.size();
    if (generations.items().size() != racks)
      Fail("cluster.generations lists " +
           std::to_string(generations.items().size()) +
           " generations for " + std::to_string(racks) +
           " racks (give one per rack, or a single name for the whole "
           "cluster)");
    for (std::size_t r = 0; r < racks; ++r) {
      const GpuGeneration gen = GenerationFromJson(
          generations.items()[r], "cluster.generations[" + std::to_string(r) +
                                      "]");
      for (MachineSpec& m : spec.racks[r].machines) m.generation = gen;
    }
    return;
  }
  const GpuGeneration gen =
      GenerationFromJson(generations, "cluster.generations");
  for (RackSpec& rack : spec.racks)
    for (MachineSpec& m : rack.machines) m.generation = gen;
}

ClusterSpec ClusterFromJson(const JsonValue& v) {
  CheckKeys(v, "cluster",
            {"preset", "racks", "machines_per_rack", "gpus_per_machine",
             "gpus_per_slot", "generations"});
  ClusterSpec spec;
  if (const JsonValue* preset = v.Find("preset")) {
    // "generations" re-prices a preset's machines without changing its
    // shape, so it is the one key allowed alongside "preset".
    if (v.members().size() > (v.Find("generations") != nullptr ? 2u : 1u))
      Fail("cluster: \"preset\" cannot be combined with explicit "
           "dimensions");
    const std::string& name = preset->AsString();
    if (name == "sim256") spec = ClusterSpec::Simulation256();
    else if (name == "sim256-mixed") spec = ClusterSpec::Simulation256Mixed();
    else if (name == "testbed50") spec = ClusterSpec::Testbed50();
    else if (name == "testbed50-mixed") spec = ClusterSpec::Testbed50Mixed();
    else Fail("unknown cluster preset: " + name);
  } else {
    const int racks = IntKnob(v, "racks", 1, "cluster");
    const int machines = IntKnob(v, "machines_per_rack", 1, "cluster");
    const int gpus = IntKnob(v, "gpus_per_machine", 4, "cluster");
    const int slot = IntKnob(v, "gpus_per_slot", gpus % 2 == 0 ? 2 : 1,
                             "cluster");
    if (racks <= 0 || machines <= 0 || gpus <= 0 || slot <= 0)
      Fail("cluster dimensions must be positive");
    spec = ClusterSpec::Uniform(racks, machines, gpus, slot);
  }
  if (const JsonValue* generations = v.Find("generations"))
    ApplyGenerations(*generations, spec);
  return spec;
}

void ApplyTrace(const JsonValue& v, TraceConfig& trace) {
  CheckKeys(v, "trace",
            {"seed", "num_apps", "mean_interarrival", "contention_factor",
             "jobs_per_app_median", "jobs_per_app_sigma", "jobs_per_app_min",
             "jobs_per_app_max", "short_duration_median",
             "long_duration_median", "duration_sigma", "frac_long",
             "duration_scale", "frac_four_gpu_tasks", "tasks_per_job",
             "frac_network_intensive", "target_loss"});
  // Assign only when present: routing the default through a double would
  // truncate 64-bit derived seeds (base_seed path) to 53 bits.
  if (const JsonValue* seed = v.Find("seed"))
    trace.seed = SeedFromJson(*seed, "trace");
  trace.num_apps = IntKnob(v, "num_apps", trace.num_apps, "trace");
  trace.mean_interarrival =
      v.NumberOr("mean_interarrival", trace.mean_interarrival);
  trace.contention_factor =
      v.NumberOr("contention_factor", trace.contention_factor);
  trace.jobs_per_app_median =
      v.NumberOr("jobs_per_app_median", trace.jobs_per_app_median);
  trace.jobs_per_app_sigma =
      v.NumberOr("jobs_per_app_sigma", trace.jobs_per_app_sigma);
  trace.jobs_per_app_min =
      IntKnob(v, "jobs_per_app_min", trace.jobs_per_app_min, "trace");
  trace.jobs_per_app_max =
      IntKnob(v, "jobs_per_app_max", trace.jobs_per_app_max, "trace");
  trace.short_duration_median =
      v.NumberOr("short_duration_median", trace.short_duration_median);
  trace.long_duration_median =
      v.NumberOr("long_duration_median", trace.long_duration_median);
  trace.duration_sigma = v.NumberOr("duration_sigma", trace.duration_sigma);
  trace.frac_long = v.NumberOr("frac_long", trace.frac_long);
  trace.duration_scale = v.NumberOr("duration_scale", trace.duration_scale);
  trace.frac_four_gpu_tasks =
      v.NumberOr("frac_four_gpu_tasks", trace.frac_four_gpu_tasks);
  trace.tasks_per_job = IntKnob(v, "tasks_per_job", trace.tasks_per_job,
                                "trace");
  trace.frac_network_intensive =
      v.NumberOr("frac_network_intensive", trace.frac_network_intensive);
  trace.target_loss = v.NumberOr("target_loss", trace.target_loss);
}

void ApplySim(const JsonValue& v, SimConfig& sim) {
  CheckKeys(v, "sim",
            {"seed", "lease_minutes", "restart_overhead_minutes", "max_time",
             "machine_mtbf_minutes", "machine_repair_minutes", "theta",
             "engine", "auction_epsilon_minutes", "metrics_tick_minutes",
             "round_threads"});
  if (const JsonValue* engine = v.Find("engine")) {
    const std::string name = engine->AsString();
    if (name == "event")
      sim.engine = SimEngine::kEventDriven;
    else if (name == "pass")
      sim.engine = SimEngine::kPassStepped;
    else
      throw std::runtime_error("scenario sim.engine must be \"event\" or "
                               "\"pass\" (got \"" + name + "\")");
  }
  sim.auction_epsilon_minutes =
      v.NumberOr("auction_epsilon_minutes", sim.auction_epsilon_minutes);
  sim.metrics_tick_minutes =
      v.NumberOr("metrics_tick_minutes", sim.metrics_tick_minutes);
  sim.round_threads = IntKnob(v, "round_threads", sim.round_threads, "sim");
  // See ApplyTrace: never round-trip the default seed through a double.
  if (const JsonValue* seed = v.Find("seed"))
    sim.seed = SeedFromJson(*seed, "sim");
  sim.lease_minutes = v.NumberOr("lease_minutes", sim.lease_minutes);
  sim.restart_overhead_minutes =
      v.NumberOr("restart_overhead_minutes", sim.restart_overhead_minutes);
  sim.max_time = v.NumberOr("max_time", sim.max_time);
  sim.machine_mtbf_minutes =
      v.NumberOr("machine_mtbf_minutes", sim.machine_mtbf_minutes);
  sim.machine_repair_minutes =
      v.NumberOr("machine_repair_minutes", sim.machine_repair_minutes);
  if (const JsonValue* theta = v.Find("theta")) {
    sim.estimator.theta = theta->AsNumber();
    if (sim.estimator.theta > 0.0) sim.estimator.mode = EstimationMode::kNoisy;
  }
  sim.Validate();
}

void ApplyThemis(const JsonValue& v, ThemisConfig& themis) {
  CheckKeys(v, "themis",
            {"fairness_knob", "max_bid_rows", "short_app_tiebreak",
             "incremental_filter"});
  themis.fairness_knob = v.NumberOr("fairness_knob", themis.fairness_knob);
  themis.max_bid_rows = IntKnob(v, "max_bid_rows", themis.max_bid_rows,
                                "themis");
  themis.short_app_tiebreak =
      v.BoolOr("short_app_tiebreak", themis.short_app_tiebreak);
  themis.incremental_filter =
      v.BoolOr("incremental_filter", themis.incremental_filter);
}

void ApplyScenarioObject(const JsonValue& v, ScenarioSpec& spec) {
  CheckKeys(v, "scenario",
            {"name", "policy", "cluster", "trace", "trace_csv", "trace_file",
             "sim", "themis"});
  // A replayed CSV fixes the workload, so trace-generation knobs alongside
  // it would be silently ignored — reject the mix (same rule as cluster
  // preset + dimensions). "trace_file" is the streamed replay of the same
  // format, so the same rule applies, and the two replay forms are mutually
  // exclusive.
  if (v.Find("trace_csv") != nullptr && v.Find("trace") != nullptr)
    Fail("\"trace_csv\" cannot be combined with \"trace\" knobs");
  if (v.Find("trace_file") != nullptr && v.Find("trace") != nullptr)
    Fail("\"trace_file\" cannot be combined with \"trace\" knobs");
  if (v.Find("trace_file") != nullptr && v.Find("trace_csv") != nullptr)
    Fail("\"trace_file\" (streamed) and \"trace_csv\" (preloaded) are "
         "mutually exclusive");
  if (const JsonValue* policy = v.Find("policy"))
    spec.config.policy = PolicyKindFromString(policy->AsString());
  if (const JsonValue* cluster = v.Find("cluster"))
    spec.config.cluster = ClusterFromJson(*cluster);
  if (const JsonValue* trace = v.Find("trace"))
    ApplyTrace(*trace, spec.config.trace);
  if (const JsonValue* csv = v.Find("trace_csv")) spec.trace_csv = csv->AsString();
  if (const JsonValue* file = v.Find("trace_file"))
    spec.trace_file = file->AsString();
  if (const JsonValue* sim = v.Find("sim")) ApplySim(*sim, spec.config.sim);
  if (const JsonValue* themis = v.Find("themis"))
    ApplyThemis(*themis, spec.config.themis);
}

}  // namespace

ScenarioSpec ScenarioFromJson(const JsonValue& scenario,
                              const ExperimentConfig& base) {
  ScenarioSpec spec;
  spec.config = base;
  ApplyScenarioObject(scenario, spec);
  spec.name = scenario.StringOr("name", ToString(spec.config.policy));
  return spec;
}

std::vector<ScenarioSpec> LoadScenarios(const std::string& json_text) {
  const JsonValue doc = JsonValue::Parse(json_text);
  if (!doc.is_object()) Fail("top level must be an object");
  CheckKeys(doc, "document", {"base_seed", "defaults", "scenarios"});

  ScenarioSpec base_spec;
  if (const JsonValue* defaults = doc.Find("defaults")) {
    ApplyScenarioObject(*defaults, base_spec);
    if (defaults->Find("name") != nullptr)
      Fail("\"name\" is per-scenario, not a default");
  }

  const JsonValue* scenarios = doc.Find("scenarios");
  if (scenarios == nullptr) Fail("missing \"scenarios\" array");

  // Optional "base_seed": scenarios that do not pin a seed themselves get a
  // position-derived one — decorrelated across the grid, reproducible
  // across runs. Seeds pinned in "defaults" or per scenario always win.
  const JsonValue* base_seed = doc.Find("base_seed");
  const JsonValue* defaults = doc.Find("defaults");
  const bool trace_seed_pinned =
      defaults && defaults->Find("trace") &&
      defaults->Find("trace")->Find("seed") != nullptr;
  const bool sim_seed_pinned = defaults && defaults->Find("sim") &&
                               defaults->Find("sim")->Find("seed") != nullptr;

  std::vector<ScenarioSpec> out;
  out.reserve(scenarios->items().size());
  for (const JsonValue& entry : scenarios->items()) {
    ExperimentConfig config = base_spec.config;
    if (base_seed != nullptr) {
      const std::uint64_t seed = DeriveScenarioSeed(
          SeedFromJson(*base_seed, "base_seed"), out.size());
      if (!trace_seed_pinned) config.trace.seed = seed;
      if (!sim_seed_pinned) config.sim.seed = seed;
    }
    ScenarioSpec spec = ScenarioFromJson(entry, config);
    // A scenario that names its own replay source overrides the defaults';
    // otherwise it inherits whichever form (preloaded or streamed) the
    // defaults chose. ApplyScenarioObject already rejects setting both.
    if (spec.trace_csv.empty() && spec.trace_file.empty()) {
      spec.trace_csv = base_spec.trace_csv;
      spec.trace_file = base_spec.trace_file;
    }
    out.push_back(std::move(spec));
  }
  if (out.empty()) Fail("\"scenarios\" array is empty");
  return out;
}

std::vector<ScenarioSpec> LoadScenariosFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("scenario: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadScenarios(buf.str());
}

}  // namespace themis
