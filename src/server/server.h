// themis_arbiterd: the ARBITER as a long-lived network service.
//
// A single-threaded poll() loop owns a listening TCP socket and up to
// max_sessions AGENT connections, each speaking the newline-delimited JSON
// protocol of net/wire.h. Rounds run back-to-back once min_agents AGENTs
// have registered:
//
//   round boundary:  apply deferred evictions + registrations,
//                    ArbiterCore::BeginRound()
//   fan-out:         OFFER to every session with an unfinished app
//   collect:         BIDs until all expected sessions answered, or the
//                    bid deadline (bid_timeout_ms of wall time) passes —
//                    one slow or dead AGENT cannot stall the round; its
//                    apps simply stay in the auction server-side, and
//                    max_missed_deadlines consecutive misses evict it
//   settle:          ArbiterCore::FinishRound(), GRANT deltas per session
//                    (with that session's finished apps), CLOSE to
//                    sessions whose apps all completed
//
// Misbehaving input never kills the daemon: malformed frames draw a pointed
// ERROR frame and eviction, oversized lines poison the reader and evict,
// JSON nesting is depth-bounded so a frame of brackets cannot overflow the
// parse stack, a connection that never completes HELLO is evicted at the
// handshake deadline (hello_timeout_ms) instead of pinning a session slot,
// writes use MSG_NOSIGNAL, and a peer that stops reading trips the bounded
// write buffer and is evicted. RequestStop() is async-signal-safe (self-pipe
// wakeup): the daemon finishes the in-flight round, CLOSEs every session,
// flushes, and Run() returns 0.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "server/arbiter_core.h"

namespace themis::server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port() after Start().
  int port = 0;
  int accept_backlog = 512;
  /// Admission control: connections beyond this are refused with an ERROR
  /// frame ("server-full") and closed.
  std::size_t max_sessions = 4096;
  /// Rounds start only once this many AGENTs have registered — the
  /// determinism barrier the loopback test leans on.
  std::size_t min_agents = 1;
  /// Stop after this many rounds (0 = run until stopped / drained).
  std::uint64_t max_rounds = 0;
  /// Wall-clock bid deadline per round, in milliseconds.
  int bid_timeout_ms = 2000;
  /// Handshake deadline: a connection that has not completed HELLO within
  /// this window is evicted ("hello-timeout" ERROR + CLOSE), so idle
  /// pre-registration sockets cannot pin session slots forever (bid-deadline
  /// eviction only covers registered sessions). 0 disables.
  int hello_timeout_ms = 5000;
  /// Consecutive missed bid deadlines before a session is evicted.
  int max_missed_deadlines = 3;
  /// Exit Run() once every registered app finished and no session remains.
  bool stop_when_drained = true;
  std::size_t max_line_bytes = net::kDefaultMaxLine;
  std::size_t max_write_buffer = 8u << 20;
  ArbiterConfig arbiter;
};

/// Bounded sample size for per-round latency percentiles. Exact while a run
/// has at most this many rounds (every bench/test does); beyond it the
/// reservoir keeps a uniform sample — a forever-running daemon
/// (max_rounds = 0) must not grow a vector per round.
constexpr std::size_t kRoundLatencySampleCap = 8192;

struct ServerStats {
  std::uint64_t rounds = 0;
  /// Wall time per round: BeginRound to GRANT fan-out queued. Percentiles
  /// come from the bounded reservoir (items()); exact min/max/mean from the
  /// streaming summary.
  Reservoir<double> round_latency_ms{kRoundLatencySampleCap};
  Summary round_latency_summary;
  std::size_t sessions_accepted = 0;
  std::size_t sessions_refused = 0;
  std::size_t sessions_evicted = 0;
  std::size_t peak_sessions = 0;
  std::size_t protocol_errors = 0;
  std::size_t bid_deadline_misses = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  /// Sum over rounds of AGENTs offered that round (for agents-served/sec).
  std::uint64_t agent_round_serves = 0;
};

class ArbiterServer {
 public:
  explicit ArbiterServer(ServerConfig config);
  ~ArbiterServer();

  ArbiterServer(const ArbiterServer&) = delete;
  ArbiterServer& operator=(const ArbiterServer&) = delete;

  /// Bind + listen. Returns false with *err set on failure.
  bool Start(std::string* err);

  /// The bound port (valid after Start; useful with config.port == 0).
  int port() const { return port_; }

  /// Serve until stopped or drained. Returns 0 on clean exit, 1 on a fatal
  /// server-side error (never on AGENT misbehavior).
  int Run();

  /// Async-signal-safe stop: wakes the loop via the self-pipe. The in-flight
  /// round completes, every session gets a CLOSE frame, then Run() returns.
  void RequestStop();

  const ServerStats& stats() const { return stats_; }
  const ArbiterCore& core() const { return core_; }

 private:
  struct Session;

  void AcceptPending();
  void ReadSession(Session& s);
  void HandleLine(Session& s, const std::string& line);
  void HandleHello(Session& s, net::WireMessage msg);
  void HandleBid(Session& s, const net::WireMessage& msg);
  void SendFrame(Session& s, const std::string& frame);
  void SendError(Session& s, const std::string& code,
                 const std::string& detail);
  /// Queue a CLOSE and mark the session draining; it is destroyed once its
  /// write buffer empties (or immediately if it already has).
  void CloseSession(Session& s, const std::string& reason);
  /// Drop the session now (peer gone / poisoned); its apps are evicted from
  /// the auction at the next round boundary.
  void DropSession(Session& s);
  void ReapSessions();
  /// Evict kAwaitingHello sessions whose handshake deadline passed.
  void EvictStaleHandshakes();

  void StepRounds();
  void StartRound();
  void CompleteRound();
  bool AllBidsIn() const;
  void ApplyDeferred();

  ServerConfig config_;
  ArbiterCore core_;
  ServerStats stats_;

  int listen_fd_ = net::kBadFd;
  int port_ = -1;
  int wake_read_ = net::kBadFd;
  int wake_write_ = net::kBadFd;

  std::vector<std::unique_ptr<Session>> sessions_;
  /// app -> owning session agent_id (or -1): routes GRANT deltas.
  std::vector<std::int64_t> app_owner_;
  std::int64_t next_agent_id_ = 1;
  bool any_registered_ = false;
  /// Latched by the first StartRound: min_agents stops gating after this.
  bool rounds_begun_ = false;

  // Round state.
  bool collecting_ = false;
  RoundStart round_;
  double round_started_ms_ = 0.0;  // steady-clock ms
  double bid_deadline_ms_ = 0.0;
  std::size_t bids_expected_ = 0;
  std::size_t bids_received_ = 0;

  // HELLOs that arrived mid-round; registered at the next boundary.
  std::vector<std::pair<std::int64_t, net::WireMessage>> deferred_hellos_;
  // Apps of dropped sessions, evicted at the next boundary.
  std::vector<AppId> deferred_evictions_;

  bool stop_requested_ = false;
  bool stopping_ = false;  // CLOSE frames sent; draining write buffers
};

}  // namespace themis::server
