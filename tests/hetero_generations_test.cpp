// Tests for the heterogeneous GPU-generation resource model.
//
//   - Generation table and mix parsing (cluster/topology.h).
//   - Topology / Cluster / FreePool speed resolution and the fastest-first
//     free views.
//   - The min-speed gang rule: one slow straggler GPU drags the whole gang
//     (placement/placement_model.h, workload/job_spec.h).
//   - T_ID on a mixed cluster assumes the fastest generation, so rho prices
//     effective GPU-hours.
//   - Property: mixed-generation scheduling never grants a gang whose
//     EffectiveJobRate is 0, for all five policies.
//   - Homogeneous equivalence suite: with every speed pinned to 1.0, all
//     five policies reproduce the generation-unaware decisions bit-for-bit
//     (the guarantee that the resource-model refactor preserved today's
//     scheduling; verified the same in-process-fingerprint way the round
//     protocol pinned adapter-vs-native).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/federation.h"
#include "sim/experiment.h"
#include "workload/trace_io.h"

namespace themis {
namespace {

// ---------------------------------------------------------------------------
// Generation table + mix parsing.
// ---------------------------------------------------------------------------

TEST(GpuGenerations, TableResolvesKnownNames) {
  EXPECT_DOUBLE_EQ(GpuGenerationByName("K80").speed, 1.0);
  EXPECT_DOUBLE_EQ(GpuGenerationByName("V100").speed, 3.0);
  EXPECT_DOUBLE_EQ(GpuGenerationByName("A100").speed, 6.0);
}

TEST(GpuGenerations, UnknownNameThrowsWithKnownList) {
  try {
    GpuGenerationByName("H100");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("H100"), std::string::npos) << what;
    EXPECT_NE(what.find("K80"), std::string::npos) << what;
    EXPECT_NE(what.find("A100"), std::string::npos) << what;
  }
}

TEST(GpuGenerations, ParseGenerationMixAcceptsValidSpecs) {
  const auto mix = ParseGenerationMix("K80:0.25,V100:0.5,A100:0.25");
  ASSERT_EQ(mix.size(), 3u);
  EXPECT_EQ(mix[0].generation.name, "K80");
  EXPECT_DOUBLE_EQ(mix[1].fraction, 0.5);
  EXPECT_DOUBLE_EQ(mix[2].generation.speed, 6.0);

  const auto solo = ParseGenerationMix("V100:1");
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_DOUBLE_EQ(solo[0].fraction, 1.0);
}

TEST(GpuGenerations, ParseGenerationMixRejectsMalformedSpecs) {
  EXPECT_THROW(ParseGenerationMix(""), std::invalid_argument);
  EXPECT_THROW(ParseGenerationMix("K80"), std::invalid_argument);
  EXPECT_THROW(ParseGenerationMix("K80:"), std::invalid_argument);
  EXPECT_THROW(ParseGenerationMix(":0.5"), std::invalid_argument);
  EXPECT_THROW(ParseGenerationMix("H100:1.0"), std::invalid_argument);
  EXPECT_THROW(ParseGenerationMix("K80:0.5,V100:0.6"), std::invalid_argument);
  EXPECT_THROW(ParseGenerationMix("K80:0.5"), std::invalid_argument);
  EXPECT_THROW(ParseGenerationMix("K80:nope"), std::invalid_argument);
  EXPECT_THROW(ParseGenerationMix("K80:-0.5,V100:1.5"), std::invalid_argument);
}

TEST(GpuGenerations, ApplyGenerationMixAssignsByCumulativeFraction) {
  ClusterSpec spec = ClusterSpec::Uniform(2, 4, 4, 2);  // 8 machines
  ApplyGenerationMix(spec, ParseGenerationMix("K80:0.25,V100:0.5,A100:0.25"));
  std::vector<std::string> names;
  for (const RackSpec& rack : spec.racks)
    for (const MachineSpec& m : rack.machines) names.push_back(m.generation.name);
  EXPECT_EQ(names, (std::vector<std::string>{"K80", "K80", "V100", "V100",
                                             "V100", "V100", "A100", "A100"}));
}

TEST(GpuGenerations, ApplyGenerationMixRejectsSharesRoundingToZeroMachines) {
  // 5% of 8 machines rounds to zero: the requested A100s would silently
  // vanish, so the mix is rejected instead.
  ClusterSpec spec = ClusterSpec::Uniform(2, 4, 4, 2);
  EXPECT_THROW(
      ApplyGenerationMix(spec, ParseGenerationMix("A100:0.05,K80:0.95")),
      std::invalid_argument);
  // The same mix fits a 32-machine cluster (32 * 0.05 rounds to 2).
  ClusterSpec big = ClusterSpec::Uniform(4, 8, 4, 2);
  ApplyGenerationMix(big, ParseGenerationMix("A100:0.05,K80:0.95"));
  EXPECT_EQ(big.racks[0].machines[0].generation.name, "A100");
  EXPECT_EQ(big.racks[0].machines[2].generation.name, "K80");
}

// ---------------------------------------------------------------------------
// Topology / Cluster / FreePool speed resolution.
// ---------------------------------------------------------------------------

/// 2 racks x 2 machines x 2 GPUs with machine speeds 1 / 3 / 6 / 1.
ClusterSpec SmallMixed() {
  ClusterSpec spec = ClusterSpec::Uniform(2, 2, 2, 2);
  spec.racks[0].machines[0].generation = GpuGenerationByName("K80");
  spec.racks[0].machines[1].generation = GpuGenerationByName("V100");
  spec.racks[1].machines[0].generation = GpuGenerationByName("A100");
  spec.racks[1].machines[1].generation = GpuGenerationByName("K80");
  return spec;
}

TEST(HeteroTopology, ResolvesPerMachineAndPerGpuSpeeds) {
  const Topology topo(SmallMixed());
  EXPECT_FALSE(topo.uniform_speed());
  EXPECT_DOUBLE_EQ(topo.max_speed(), 6.0);
  EXPECT_DOUBLE_EQ(topo.machine_speed(1), 3.0);
  EXPECT_DOUBLE_EQ(topo.gpu_speed(4), 6.0);  // machine 2's first GPU
  EXPECT_EQ(topo.machine_generation(2).name, "A100");
  // Fastest first, ties ascending machine id.
  EXPECT_EQ(topo.machines_by_speed(),
            (std::vector<MachineId>{2, 1, 0, 3}));
  EXPECT_DOUBLE_EQ(topo.SpeedSum({0, 2, 4}), 1.0 + 3.0 + 6.0);
  EXPECT_DOUBLE_EQ(topo.MinSpeed({2, 4}), 3.0);
  EXPECT_DOUBLE_EQ(topo.MinSpeed({}), 1.0);
  EXPECT_DOUBLE_EQ(Topology(ClusterSpec::Uniform(1, 2, 2, 2)).max_speed(), 1.0);
  EXPECT_TRUE(Topology(ClusterSpec::Uniform(1, 2, 2, 2)).uniform_speed());
}

TEST(HeteroTopology, RejectsNonPositiveSpeed) {
  ClusterSpec spec = ClusterSpec::Uniform(1, 1, 2, 2);
  spec.racks[0].machines[0].generation = {"broken", 0.0};
  EXPECT_THROW(Topology{spec}, std::invalid_argument);
  spec.racks[0].machines[0].generation = {"broken", -1.0};
  EXPECT_THROW(Topology{spec}, std::invalid_argument);
}

TEST(HeteroTopology, MixedPresetsKeepShapeAndAddSpeeds) {
  const ClusterSpec plain = ClusterSpec::Simulation256();
  const ClusterSpec mixed = ClusterSpec::Simulation256Mixed();
  EXPECT_EQ(mixed.TotalGpus(), plain.TotalGpus());
  EXPECT_EQ(mixed.TotalMachines(), plain.TotalMachines());
  EXPECT_GT(mixed.TotalEffectiveGpus(), plain.TotalEffectiveGpus());
  EXPECT_DOUBLE_EQ(plain.TotalEffectiveGpus(), 256.0);

  const ClusterSpec testbed = ClusterSpec::Testbed50Mixed();
  EXPECT_EQ(testbed.TotalGpus(), 50);
  for (const RackSpec& rack : testbed.racks)
    for (const MachineSpec& m : rack.machines)
      EXPECT_EQ(m.generation.name, m.num_gpus >= 4 ? "K80" : "M60");
}

TEST(HeteroCluster, FreeViewsAreSpeedAware) {
  Cluster cluster(SmallMixed());  // machines: 0=K80 1=V100 2=A100 3=K80
  EXPECT_DOUBLE_EQ(cluster.FreeEffectiveGpus(), 2.0 * (1 + 3 + 6 + 1));
  // Fastest-first: machine 2's GPUs (4,5), then 1's (2,3), then 0's, then 3's.
  EXPECT_EQ(cluster.FreeGpusBySpeed(),
            (std::vector<GpuId>{4, 5, 2, 3, 0, 1, 6, 7}));

  cluster.Allocate(4, 0, 0, 10.0);
  EXPECT_DOUBLE_EQ(cluster.FreeEffectiveGpus(), 22.0 - 6.0);
  EXPECT_EQ(cluster.FreeGpusBySpeed(),
            (std::vector<GpuId>{5, 2, 3, 0, 1, 6, 7}));
  cluster.Release(4);
  EXPECT_DOUBLE_EQ(cluster.FreeEffectiveGpus(), 22.0);

  // A downed machine leaves the effective pool with its free GPUs.
  cluster.SetMachineDown(2, true);
  EXPECT_DOUBLE_EQ(cluster.FreeEffectiveGpus(), 22.0 - 12.0);
  EXPECT_EQ(cluster.FreeGpusBySpeed(), (std::vector<GpuId>{2, 3, 0, 1, 6, 7}));
  cluster.SetMachineDown(2, false);
  EXPECT_DOUBLE_EQ(cluster.FreeEffectiveGpus(), 22.0);

  // Uniform-speed clusters: fastest-first equals ascending ids.
  Cluster uniform(ClusterSpec::Uniform(2, 2, 2, 2));
  EXPECT_EQ(uniform.FreeGpusBySpeed(), uniform.FreeGpus());
  EXPECT_DOUBLE_EQ(uniform.FreeEffectiveGpus(), 8.0);
}

TEST(HeteroFreePool, FirstNFastestTakesFastMachinesFirst) {
  const Topology topo(SmallMixed());
  FreePool pool({0, 1, 2, 3, 4, 5, 6, 7}, topo);
  EXPECT_DOUBLE_EQ(pool.speed_total(), 22.0);
  EXPECT_EQ(pool.FirstNFastest(3), (std::vector<GpuId>{4, 5, 2}));
  pool.Remove(4);
  EXPECT_DOUBLE_EQ(pool.speed_total(), 16.0);
  EXPECT_EQ(pool.FirstNFastest(3), (std::vector<GpuId>{5, 2, 3}));
  EXPECT_EQ(pool.FirstNFastest(99).size(), 7u);
}

TEST(HeteroFreePool, FirstNFastestEqualsFirstNOnUniformSpeeds) {
  const Topology topo(ClusterSpec::Uniform(2, 4, 4, 2));
  FreePool pool({1, 2, 5, 9, 17, 30, 31}, topo);
  for (int n : {0, 1, 3, 7, 12})
    EXPECT_EQ(pool.FirstNFastest(n), pool.FirstN(n)) << n;
}

// ---------------------------------------------------------------------------
// Min-speed gang rule.
// ---------------------------------------------------------------------------

TEST(HeteroRates, StragglerGpuDragsTheGang) {
  const Topology topo(SmallMixed());
  const ModelProfile& model = ModelByName("ResNet50");
  // Whole gang on the A100 machine: 2 * S_slot * 6.
  EXPECT_DOUBLE_EQ(EffectiveRate(model, {4, 5}, topo),
                   2.0 * model.sensitivity.slot * 6.0);
  // A100 + K80 spans racks and paces on the K80: 2 * S_cross * 1.
  EXPECT_DOUBLE_EQ(EffectiveRate(model, {4, 0}, topo),
                   2.0 * model.sensitivity.cross_rack * 1.0);
  // V100 + A100: min is the V100.
  EXPECT_DOUBLE_EQ(EffectiveRate(model, {2, 4}, topo),
                   2.0 * model.sensitivity.cross_rack * 3.0);

  JobSpec job;
  job.model = model;
  job.max_span = LocalityLevel::kMachine;
  EXPECT_DOUBLE_EQ(EffectiveJobRate(job, {2, 4}, topo), 0.0);  // constraint
  EXPECT_DOUBLE_EQ(EffectiveJobRate(job, {4, 5}, topo),
                   2.0 * model.sensitivity.slot * 6.0);
}

TEST(HeteroRates, IdealTimeAssumesFastestGeneration) {
  AppSpec app;
  app.arrival = 0.0;
  app.target_loss = 0.1;
  JobSpec job;
  job.num_tasks = 1;
  job.gpus_per_task = 2;
  job.total_work = 60.0;
  job.model = ModelByName("ResNet50");
  job.loss = LossCurve(0.1 * std::pow(1001.0, 0.6), 0.6, 0.0);
  app.jobs = {job};

  ClusterSpec fast = ClusterSpec::Uniform(1, 2, 2, 2);
  for (RackSpec& rack : fast.racks)
    for (MachineSpec& m : rack.machines)
      m.generation = GpuGenerationByName("A100");

  SimConfig cfg;
  cfg.lease_minutes = 5.0;
  Simulator slow_sim(ClusterSpec::Uniform(1, 2, 2, 2), {app},
                     MakePolicy(PolicyKind::kThemis), cfg);
  Simulator fast_sim(fast, {app}, MakePolicy(PolicyKind::kThemis), cfg);
  EXPECT_DOUBLE_EQ(slow_sim.apps()[0]->ideal_time, 30.0);
  EXPECT_DOUBLE_EQ(fast_sim.apps()[0]->ideal_time, 5.0);  // 30 / A100's 6x

  // The app really does finish ~6x sooner on the fast cluster, and rho stays
  // calibrated (>= ~1) because T_ID scaled with it.
  const SimResult slow = slow_sim.Run();
  const SimResult fast_run = fast_sim.Run();
  ASSERT_TRUE(slow.unfinished.empty());
  ASSERT_TRUE(fast_run.unfinished.empty());
  EXPECT_LT(fast_run.metrics.apps()[0].finish,
            slow.metrics.apps()[0].finish / 3.0);
  EXPECT_GE(fast_run.metrics.apps()[0].Rho(), 0.99);
}

// ---------------------------------------------------------------------------
// Property: no zero-rate gang is ever granted on a mixed cluster.
// ---------------------------------------------------------------------------

TEST(HeteroProperty, MixedGenerationGrantsAlwaysMakeProgress) {
  for (PolicyKind kind : {PolicyKind::kThemis, PolicyKind::kGandiva,
                          PolicyKind::kTiresias, PolicyKind::kSlaq,
                          PolicyKind::kDrf}) {
    ExperimentConfig config = SimScaleConfig(kind, 42, 25);
    config.trace.contention_factor = 2.0;
    TraceGenerator gen(config.trace);
    Simulator sim(ClusterSpec::Simulation256Mixed(), gen.Generate(),
                  MakePolicy(kind, config.themis), config.sim);
    long long grants_seen = 0;
    sim.set_round_observer([&](const ResourceOffer& offer,
                               const GrantSet& grants) {
      // The offer prices the pool: its speed vector matches the topology.
      ASSERT_EQ(offer.machine_speeds,
                sim.cluster().topology().machine_speeds());
      for (const Grant& g : grants.grants) {
        ++grants_seen;
        const JobState& job = sim.apps()[g.app]->jobs[g.job];
        // The job's post-grant gang, trimmed to whole task-gangs exactly as
        // progress accounting trims it, must run at a positive rate.
        const int usable =
            static_cast<int>(job.gpus.size()) -
            static_cast<int>(job.gpus.size()) % job.spec.gpus_per_task;
        ASSERT_GT(usable, 0)
            << ToString(kind) << ": granted app " << g.app << " job " << g.job
            << " holds no whole gang";
        std::vector<GpuId> used(job.gpus.begin(), job.gpus.begin() + usable);
        EXPECT_GT(EffectiveJobRate(job.spec, used,
                                   sim.cluster().topology()),
                  0.0)
            << ToString(kind) << ": zero-rate gang granted";
      }
    });
    const SimResult run = sim.Run();
    EXPECT_TRUE(run.unfinished.empty()) << ToString(kind);
    EXPECT_GT(grants_seen, 0) << ToString(kind);
  }
}

// ---------------------------------------------------------------------------
// Homogeneous equivalence: speed 1.0 everywhere == generation-unaware runs.
// ---------------------------------------------------------------------------

struct RunFingerprint {
  std::vector<double> finish_times;
  std::vector<double> rhos;
  std::vector<double> attained;
  std::vector<int> final_holdings;
  int passes = 0;
  Time end_time = 0.0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint Fingerprint(const ClusterSpec& cluster,
                           const ExperimentConfig& config) {
  TraceGenerator gen(config.trace);
  Simulator sim(cluster, gen.Generate(),
                MakePolicy(config.policy, config.themis), config.sim);
  const SimResult run = sim.Run();
  RunFingerprint fp;
  fp.passes = run.scheduling_passes;
  fp.end_time = run.end_time;
  for (const auto& app : sim.apps()) {
    fp.finish_times.push_back(app->finish_time);
    fp.rhos.push_back(app->FinalRho());
    fp.attained.push_back(app->attained_service);
    fp.final_holdings.push_back(app->GpusHeld());
  }
  return fp;
}

TEST(HomogeneousEquivalence, NamedSpeedOneGenerationsChangeNothing) {
  // Every machine gets an explicitly *named* generation of speed 1.0 — the
  // whole generation dimension is exercised (topology speeds, offer speed
  // vectors, min-speed rates, speed-weighted service, fastest-first pools)
  // yet every policy must reproduce the generation-unaware decisions
  // bit-for-bit.
  ClusterSpec named = ClusterSpec::Simulation256();
  for (RackSpec& rack : named.racks)
    for (MachineSpec& m : rack.machines)
      m.generation = GpuGeneration{"speed-one", 1.0};

  for (PolicyKind kind : {PolicyKind::kThemis, PolicyKind::kGandiva,
                          PolicyKind::kTiresias, PolicyKind::kSlaq,
                          PolicyKind::kDrf}) {
    for (std::uint64_t seed : {42ULL, 7ULL}) {
      ExperimentConfig config = SimScaleConfig(kind, seed, 40);
      config.trace.contention_factor = 2.0;
      const RunFingerprint plain =
          Fingerprint(ClusterSpec::Simulation256(), config);
      const RunFingerprint speed_one = Fingerprint(named, config);
      EXPECT_EQ(plain, speed_one)
          << ToString(kind) << " seed " << seed
          << ": speed-1.0 generations perturbed the scheduling decisions";
    }
  }
}

TEST(HomogeneousEquivalence, FederationRoutingUnchangedAtSpeedOne) {
  ClusterSpec named = ClusterSpec::Uniform(4, 8, 4, 2);
  for (RackSpec& rack : named.racks)
    for (MachineSpec& m : rack.machines)
      m.generation = GpuGeneration{"speed-one", 1.0};

  ExperimentConfig config = SimScaleConfig(PolicyKind::kThemis, 42, 24);
  TraceGenerator gen(config.trace);
  const std::vector<AppSpec> apps = gen.Generate();
  const FederationRouting plain =
      ShardedArbiter(ClusterSpec::Uniform(4, 8, 4, 2), 4).Route(apps);
  const FederationRouting speed_one = ShardedArbiter(named, 4).Route(apps);
  EXPECT_EQ(plain.global_index, speed_one.global_index);
}

TEST(HeteroTrace, GenerationMixDoesNotTouchTraceGeneration) {
  // The trace is a function of TraceConfig alone: re-pricing the cluster's
  // generations must leave the generated workload byte-identical (the
  // "trace-gen stays seed-stable" contract of the scenario axis).
  TraceConfig config;
  config.seed = 1234;
  config.num_apps = 12;
  std::ostringstream a, b;
  WriteTraceCsv(a, TraceGenerator(config).Generate());
  WriteTraceCsv(b, TraceGenerator(config).Generate());
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace themis
