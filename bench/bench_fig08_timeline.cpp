// Figure 8: "Timeline of GPU allocations" — two hand-picked single-task apps
// whose running times differ 3x with equal placement sensitivity, arriving
// together at t = 40 on a small cluster, plus later arrivals at t = 60.
//
// Paper narrative: the shorter app receives a larger allocation first (tie
// broken toward short apps at unbounded rho), new arrivals displace both at
// the next lease expiry, the short app then runs to completion, and finally
// the long app (least work remaining) finishes — short apps are favored but
// long apps are not starved.
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.h"

namespace {

themis::AppSpec OneTaskApp(themis::Time arrival, double work) {
  using namespace themis;
  AppSpec app;
  app.arrival = arrival;
  app.tuner = TunerKind::kNone;
  app.target_loss = 0.1;
  JobSpec job;
  job.total_work = work;
  job.total_iterations = 400.0;
  job.num_tasks = 1;
  job.gpus_per_task = 2;
  job.model = ModelByName("VGG16");
  job.loss = LossCurve(0.1 * std::pow(401.0, 0.6), 0.6, 0.0);
  app.jobs = {job};
  return app;
}

}  // namespace

int main() {
  using namespace themis;

  // App 0: long (3x work); app 1: short. Both arrive at t = 40.
  // Apps 2-3 arrive at t = 60 and compete for the 4-GPU cluster.
  std::vector<AppSpec> apps{OneTaskApp(40.0, 120.0), OneTaskApp(40.0, 40.0),
                            OneTaskApp(60.0, 60.0), OneTaskApp(60.0, 60.0)};

  ExperimentConfig config;
  config.cluster = ClusterSpec::Uniform(1, 2, 2, 2);
  config.policy = PolicyKind::kThemis;
  config.sim.lease_minutes = 20.0;
  const ExperimentResult r = RunExperimentWithApps(config, apps);

  std::printf("=== Figure 8: timeline of GPU allocations ===\n");
  std::printf("%10s %12s %12s %12s %12s\n", "time(min)", "long(app0)",
              "short(app1)", "app2", "app3");
  // Collapse timeline samples into rows per pass time. The timeline records
  // changes only, so holdings forward-fill across rows until the next sample
  // for that app.
  std::map<double, std::map<AppId, int>> rows;
  for (const AllocationSample& s : r.timeline) rows[s.time][s.app] = s.gpus;
  std::map<AppId, int> held;
  for (const auto& [time, changes] : rows) {
    for (const auto& [app, gpus] : changes) held[app] = gpus;
    auto get = [&](AppId id) {
      auto it = held.find(id);
      return it == held.end() ? 0 : it->second;
    };
    std::printf("%10.1f %12d %12d %12d %12d\n", time, get(0), get(1), get(2),
                get(3));
  }
  bench::BenchReport report("fig08_timeline");
  report.Config("cluster", "1 rack x 2 machines x 2 GPUs");
  report.Config("lease_minutes", config.sim.lease_minutes);

  std::printf("\nfinish times: ");
  for (std::size_t i = 0; i < r.completion_times.size(); ++i) {
    const double finish =
        40.0 + (i >= 2 ? 20.0 : 0.0) + r.completion_times[i];
    std::printf("app%zu=%.1f  ", i, finish);
    char key[48];
    std::snprintf(key, sizeof key, "finish_time_min.app%zu", i);
    report.Metric(key, finish);
  }
  std::printf("\npaper reference: short app completes first with a larger"
              " early share; the long app still finishes (no starvation)\n");
  return report.Write() ? 0 : 1;
}
