// Shared configuration for the figure benches: one contended simulation
// setup per paper scale so every figure draws from the same workload shape,
// plus the machine-readable reporting helper every bench uses to emit
// BENCH_<name>.json alongside its stdout tables.
#pragma once

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.h"

namespace themis::bench {

/// Sec. 8.2 / 8.4 simulations: 256-GPU heterogeneous cluster under heavy
/// contention (the paper's macro experiment ran at a peak contention of
/// 4.76x; contention_factor 4 lands this workload in the same regime).
inline ExperimentConfig ContendedSimConfig(PolicyKind policy,
                                           std::uint64_t seed = 42,
                                           int num_apps = 120) {
  ExperimentConfig cfg = SimScaleConfig(policy, seed, num_apps);
  cfg.trace.contention_factor = 4.0;
  return cfg;
}

/// Sec. 8.3 macrobenchmarks: 50-GPU testbed-scale cluster, durations / 5,
/// same inter-arrival distribution, heavy contention.
inline ExperimentConfig ContendedTestbedConfig(PolicyKind policy,
                                               std::uint64_t seed = 42,
                                               int num_apps = 100) {
  ExperimentConfig cfg = TestbedScaleConfig(policy, seed, num_apps);
  cfg.trace.contention_factor = 4.0;
  cfg.sim.lease_minutes = 5.0;  // scaled 1:5 like the durations
  return cfg;
}

/// Average of a metric over three trace seeds (single seeds are noisy at
/// testbed scale: one unlucky tail app can dominate the max).
struct MacroSummary {
  double max_fairness = 0.0;
  double jains_index = 0.0;
  double avg_completion_time = 0.0;
  double gpu_time = 0.0;
  double peak_contention = 0.0;
  ExperimentResult last;  // one representative run for CDFs
};

/// Bench-style sweep failure handling: any failed scenario aborts the bench
/// with its name and error on stderr. Shared by every bench ported to the
/// SweepRunner so exit semantics and message format stay uniform.
inline const ExperimentResult& RequireOk(const ScenarioRun& run) {
  if (!run.ok) {
    std::fprintf(stderr, "bench: scenario %s failed: %s\n", run.name.c_str(),
                 run.error.c_str());
    std::exit(1);
  }
  return run.result;
}

/// Aggregate one policy's seed runs (in seed order, so the floating-point
/// addition order matches the original serial loop exactly).
inline MacroSummary SummarizeMacroRuns(std::vector<ScenarioRun> runs) {
  MacroSummary out;
  const double n = static_cast<double>(runs.size());
  for (ScenarioRun& run : runs) {
    RequireOk(run);
    out.max_fairness += run.result.max_fairness / n;
    out.jains_index += run.result.jains_index / n;
    out.avg_completion_time += run.result.avg_completion_time / n;
    out.gpu_time += run.result.gpu_time / n;
    out.peak_contention += run.result.peak_contention / n;
    out.last = std::move(run.result);
  }
  return out;
}

inline MacroSummary RunMacro(PolicyKind policy) {
  // The three seed runs are independent simulations; the SweepRunner
  // executes them in parallel and hands results back in seed order.
  return SummarizeMacroRuns(SweepRunner().Run(
      PolicySeedGrid(ContendedTestbedConfig(policy), {policy}, {42, 43, 44})));
}

/// The path BENCH_<name>.csv lands at, honoring $BENCH_OUT_DIR like
/// BenchReport::Write — the per-scenario metric rows every PolicySeedGrid
/// bench archives next to its JSON report.
inline std::string BenchCsvPath(const std::string& name) {
  std::string path = "BENCH_" + name + ".csv";
  if (const char* dir = std::getenv("BENCH_OUT_DIR"); dir && *dir)
    path = std::string(dir) + "/" + path;
  return path;
}

/// Write a grid's scenario rows as CSV; failures are reported but do not
/// abort the bench (the JSON report already carries the headline metrics).
inline bool WriteBenchCsv(const std::string& name,
                          const std::vector<ScenarioRun>& runs) {
  const std::string path = BenchCsvPath(name);
  try {
    WriteSweepCsv(path, runs);
    std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return false;
  }
}

inline constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kThemis, PolicyKind::kGandiva, PolicyKind::kSlaq,
    PolicyKind::kTiresias};

// ---------------------------------------------------------------------------
// Cluster-churn workload shared by bench_fig02_placement_throughput and
// bench_overheads' BM_ClusterPassChurn, so both benches measure the *same*
// definition of "one scheduler-pass-shaped round" on the indexed cluster.
// ---------------------------------------------------------------------------

/// Topology for a churn sweep point: up to 64 machines per rack. The
/// realized machine count is racks * machines_per_rack, which rounds
/// `requested_machines` down when it does not divide evenly — callers must
/// report the realized size, not the request.
inline ClusterSpec ChurnSweepTopology(int requested_machines,
                                      int gpus_per_machine) {
  const int racks = std::max(1, requested_machines / 64);
  return ClusterSpec::Uniform(
      racks, /*machines_per_rack=*/requested_machines / racks,
      gpus_per_machine,
      /*gpus_per_slot=*/gpus_per_machine % 4 == 0 ? 4 : 1);
}

/// Lease every GPU to one of `apps` apps with staggered expiries — the
/// steady contended state the churn rounds cycle through.
inline void ChurnPrefill(Cluster& cluster, int apps) {
  for (GpuId g = 0; g < static_cast<GpuId>(cluster.num_gpus()); ++g)
    cluster.Allocate(g, g % apps, g % 4, 20.0 + g % 200);
}

/// One scheduler-pass-shaped round: reclaim expired leases, rebuild the
/// free views (offer vector + pool), probe every app's holdings, re-grant
/// the pool. Returns a checksum of the query results so callers can keep
/// the work observable to the optimizer.
inline std::size_t ClusterPassChurnRound(Cluster& cluster, int apps,
                                         Time now) {
  std::size_t sink = 0;
  for (GpuId g : cluster.ExpiredGpus(now)) cluster.Release(g);
  const std::vector<int> per_machine = cluster.FreeGpusPerMachine();
  const std::vector<GpuId> free = cluster.FreeGpus();
  sink += per_machine.size();
  for (AppId a = 0; a < static_cast<AppId>(apps); ++a)
    sink += cluster.GpusHeldBy(a).size();
  for (GpuId g : free)
    cluster.Allocate(g, g % apps, g % 4, now + 20.0 + (g * 7) % 200);
  const Time next = cluster.NextExpiryAfter(now);
  if (next < kInfiniteTime) sink += static_cast<std::size_t>(next);
  return sink;
}

/// Machine-readable bench output. Each bench constructs one report, records
/// scalar metrics (and optional config context) as it prints its tables, and
/// calls Write() at the end to emit BENCH_<name>.json into $BENCH_OUT_DIR
/// (default: the working directory). The perf-trajectory tooling only needs
/// (metric name, value, seed, config), so that is the whole schema:
///
///   {
///     "bench": "fig05_fairness_comparison",
///     "seed": 42,
///     "config": {"cluster": "testbed50", "contention_factor": 4},
///     "metrics": [{"name": "max_rho.Themis", "value": 5.06}, ...]
///   }
class BenchReport {
 public:
  explicit BenchReport(std::string name, std::uint64_t seed = 42)
      : name_(std::move(name)), seed_(seed) {}

  void Config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, Quote(value));
  }
  void Config(const std::string& key, double value) {
    config_.emplace_back(key, Number(value));
  }
  void Metric(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

  std::string ToJson() const {
    std::string out = "{\n  \"bench\": " + Quote(name_) +
                      ",\n  \"seed\": " + std::to_string(seed_) +
                      ",\n  \"config\": {";
    for (std::size_t i = 0; i < config_.size(); ++i) {
      if (i) out += ", ";
      out += Quote(config_[i].first) + ": " + config_[i].second;
    }
    out += "},\n  \"metrics\": [";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      out += i ? ",\n    " : "\n    ";
      out += "{\"name\": " + Quote(metrics_[i].first) +
             ", \"value\": " + Number(metrics_[i].second) + "}";
    }
    out += metrics_.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
  }

  /// Returns true on success; the emitted path is noted on stderr so the
  /// stdout report stays a clean human-readable table.
  bool Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    if (const char* dir = std::getenv("BENCH_OUT_DIR"); dir && *dir)
      path = std::string(dir) + "/" + path;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
        std::fclose(f) == 0;
    if (ok) std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
    else std::fprintf(stderr, "bench: write to %s failed\n", path.c_str());
    return ok;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out + "\"";
  }

  static std::string Number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  std::string name_;
  std::uint64_t seed_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace themis::bench
