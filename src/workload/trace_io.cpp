#include "workload/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace themis {
namespace {

constexpr char kHeader[] =
    "app_index,app_name,arrival,tuner,target_loss,num_tasks,gpus_per_task,"
    "total_work,total_iterations,loss_scale,loss_decay,loss_floor,model,"
    "max_span";

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  // A trailing comma yields an empty final field that getline drops; the
  // format never emits one, so nothing to handle.
  return fields;
}

[[noreturn]] void Fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("trace csv line " + std::to_string(line_no) + ": " +
                           what);
}

}  // namespace

const char* ToString(TunerKind kind) {
  switch (kind) {
    case TunerKind::kNone: return "none";
    case TunerKind::kHyperBand: return "hyperband";
    case TunerKind::kHyperDrive: return "hyperdrive";
  }
  return "none";
}

TunerKind TunerKindFromString(const std::string& name) {
  if (name == "none") return TunerKind::kNone;
  if (name == "hyperband") return TunerKind::kHyperBand;
  if (name == "hyperdrive") return TunerKind::kHyperDrive;
  throw std::runtime_error("unknown tuner kind: " + name);
}

LocalityLevel LocalityLevelFromString(const std::string& name) {
  if (name == "slot") return LocalityLevel::kSlot;
  if (name == "machine") return LocalityLevel::kMachine;
  if (name == "rack") return LocalityLevel::kRack;
  if (name == "cross-rack") return LocalityLevel::kCrossRack;
  throw std::runtime_error("unknown locality level: " + name);
}

void WriteTraceCsv(std::ostream& out, const std::vector<AppSpec>& apps) {
  out << kHeader << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const AppSpec& app = apps[i];
    for (const JobSpec& job : app.jobs) {
      out << i << ',' << app.name << ',' << app.arrival << ','
          << ToString(app.tuner) << ',' << app.target_loss << ','
          << job.num_tasks << ',' << job.gpus_per_task << ','
          << job.total_work << ',' << job.total_iterations << ','
          << job.loss.scale() << ',' << job.loss.decay() << ','
          << job.loss.floor() << ',' << job.model.name << ','
          << ToString(job.max_span) << '\n';
    }
  }
}

void WriteTraceCsvFile(const std::string& path,
                       const std::vector<AppSpec>& apps) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  WriteTraceCsv(out, apps);
}

std::vector<AppSpec> ReadTraceCsv(std::istream& in) {
  std::vector<AppSpec> apps;
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(in, line)) throw std::runtime_error("trace csv: empty input");
  ++line_no;
  if (line != kHeader) Fail(line_no, "unexpected header");

  long long current_index = -1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = SplitCsvLine(line);
    if (f.size() != 14) Fail(line_no, "expected 14 fields, got " +
                                          std::to_string(f.size()));
    try {
      const long long app_index = std::stoll(f[0]);
      if (app_index != current_index) {
        if (app_index != current_index + 1)
          Fail(line_no, "app_index must be contiguous");
        current_index = app_index;
        AppSpec app;
        app.name = f[1];
        app.arrival = std::stod(f[2]);
        app.tuner = TunerKindFromString(f[3]);
        app.target_loss = std::stod(f[4]);
        apps.push_back(std::move(app));
      }
      JobSpec job;
      job.num_tasks = std::stoi(f[5]);
      job.gpus_per_task = std::stoi(f[6]);
      job.total_work = std::stod(f[7]);
      job.total_iterations = std::stod(f[8]);
      job.loss = LossCurve(std::stod(f[9]), std::stod(f[10]), std::stod(f[11]));
      job.model = ModelByName(f[12]);
      job.max_span = LocalityLevelFromString(f[13]);
      if (job.num_tasks <= 0 || job.gpus_per_task <= 0 || job.total_work <= 0.0)
        Fail(line_no, "non-positive job shape");
      apps.back().jobs.push_back(std::move(job));
    } catch (const std::runtime_error&) {
      throw;
    } catch (const std::exception& e) {
      Fail(line_no, e.what());
    }
  }
  for (std::size_t i = 0; i < apps.size(); ++i)
    if (apps[i].jobs.empty())
      throw std::runtime_error("trace csv: app " + std::to_string(i) +
                               " has no jobs");
  return apps;
}

std::vector<AppSpec> ReadTraceCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return ReadTraceCsv(in);
}

}  // namespace themis
