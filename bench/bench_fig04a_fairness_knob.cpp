// Figure 4a: "Variation of Fairness with f" — min / median / max finish-time
// fairness across apps as the fairness knob f sweeps [0, 1] on the 256-GPU
// simulated cluster.
//
// Paper shape: max fairness decreases with f (diminishing returns past
// ~0.8); the min-max spread narrows; the median rises slightly because the
// objective is min-max, not median.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  BenchReport report("fig04a_fairness_knob");
  report.Config("cluster", "sim256");
  report.Config("contention_factor", 4.0);
  report.Config("trace_seeds", 5.0);

  std::printf("=== Figure 4a: finish-time fairness vs fairness knob f ===\n");
  std::printf("(mean of 5 trace seeds, 256-GPU simulated cluster)\n");
  std::printf("%6s %10s %10s %10s\n", "f", "min_rho", "median_rho", "max_rho");

  // The f x seed grid is one parallel sweep; results come back in input
  // order, so the per-f averages below aggregate the same runs in the same
  // order as the old nested serial loops.
  const double knobs[] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  const int kSeeds = 5;
  std::vector<ScenarioSpec> specs;
  for (double f : knobs) {
    for (std::uint64_t seed = 42; seed < 42 + kSeeds; ++seed) {
      char name[48];
      std::snprintf(name, sizeof name, "f%.1f/seed%llu", f,
                    static_cast<unsigned long long>(seed));
      ScenarioSpec spec;
      spec.name = name;
      spec.config = ContendedSimConfig(PolicyKind::kThemis, seed);
      spec.config.themis.fairness_knob = f;
      specs.push_back(std::move(spec));
    }
  }
  const std::vector<ScenarioRun> runs = SweepRunner().Run(specs);

  for (std::size_t ki = 0; ki < std::size(knobs); ++ki) {
    const double f = knobs[ki];
    double mn = 0.0, med = 0.0, mx = 0.0;
    for (int s = 0; s < kSeeds; ++s) {
      const ExperimentResult& r = RequireOk(runs[ki * kSeeds + s]);
      mn += r.min_fairness / kSeeds;
      med += r.median_fairness / kSeeds;
      mx += r.max_fairness / kSeeds;
    }
    std::printf("%6.1f %10.2f %10.2f %10.2f\n", f, mn, med, mx);
    char key[48];
    std::snprintf(key, sizeof key, "min_rho@f=%.1f", f);
    report.Metric(key, mn);
    std::snprintf(key, sizeof key, "median_rho@f=%.1f", f);
    report.Metric(key, med);
    std::snprintf(key, sizeof key, "max_rho@f=%.1f", f);
    report.Metric(key, mx);
  }
  std::printf("\npaper reference: max fairness falls as f grows, spread"
              " narrows, diminishing returns past f=0.8\n");
  std::printf("deviation note: our exact product-objective solver plus\n"
              "work-conserving leftovers track finish-time fairness tightly\n"
              "at every f, so the f-dependence is flatter than the paper's\n"
              "(see EXPERIMENTS.md)\n");
  return report.Write() ? 0 : 1;
}
