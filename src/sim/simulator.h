// Event-driven GPU-cluster simulator (Sec. 8.1 "Simulator").
//
// The simulator advances job progress between events, reclaims expired
// leases, invokes the per-app tuners (HyperBand / HyperDrive), and runs one
// ARBITER round per scheduling pass: it publishes a ResourceOffer, hands it
// to the IRoundScheduler, and applies the returned GrantSet itself through
// ApplyGrants — policies never mutate the cluster. It then applies the
// checkpoint/restart overhead whenever a job's gang changes. An app finishes
// when its first job reaches the target accuracy — that job is the "best
// model" that defines the app's finish time (Sec. 2.1) — at which point the
// remaining jobs are terminated and their GPUs reclaimed.
//
// Workloads arrive either as a preloaded vector (every AppState built up
// front — the classic path, bit-identical to before) or through a
// TraceReader: arrivals are injected as the stream advances, so the event
// queue and AppState store hold only apps near the simulation frontier.
// With `retire_finished_apps` set, an app's JobState/tuner/placement state
// is destroyed as soon as its final metrics are flushed — live memory then
// tracks *concurrent* apps, not total apps, which is what lets a
// million-job trace replay in bounded memory.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "core/rho_index.h"
#include "estimator/work_estimator.h"
#include "metrics/collector.h"
#include "sim/events.h"
#include "sim/policy.h"
#include "sim/state.h"
#include "workload/trace_gen.h"

namespace themis {

/// Which main-loop implementation drives the run. Both are discrete-event
/// engines over the same typed queue and produce bit-identical results
/// (same events, same rounds, same floats); they differ only in per-pass
/// cost. kEventDriven touches only state the event stream implicates
/// (holder apps, dirty tuners, reallocated jobs) and pins one finish
/// projection per allocation epoch; kPassStepped is the brute-force
/// reference that re-walks every active app and re-derives every running
/// job's finish from its granted rate each pass — the per-pass resweep
/// the analytic projections remove (bench_event_core quantifies the gap).
enum class SimEngine {
  kEventDriven,
  kPassStepped,
};

struct SimConfig {
  /// GPU lease duration (Sec. 8.2's sensitivity knob; default 20 min).
  Time lease_minutes = 20.0;
  /// Progress stall applied when a job's gang changes: checkpoint to HDFS
  /// (5-10 s) plus container churn (35-50 s), Sec. 8.3.2.
  Time restart_overhead_minutes = 0.75;
  /// Hard ceiling on simulated time; apps unfinished past this point are
  /// reported as such (tests assert none are).
  Time max_time = 1.0e7;
  EstimatorConfig estimator;
  std::uint64_t seed = 1234;

  /// Failure injection (Sec. 6 "Scheduling after failures" — the study the
  /// paper leaves to future work). Mean time between failures per machine in
  /// minutes; 0 disables injection. When a machine fails every GPU lease on
  /// it is revoked (the affected jobs restart from checkpoints elsewhere)
  /// and the machine rejoins after `machine_repair_minutes`.
  Time machine_mtbf_minutes = 0.0;
  Time machine_repair_minutes = 60.0;

  /// Destroy an app's state once it finishes and its metrics are recorded.
  /// Requires nothing of the workload source but only pays off with a
  /// TraceReader, where live memory then tracks concurrent apps.
  bool retire_finished_apps = false;
  /// How far past the event-queue frontier to inject streamed arrivals.
  /// 0 keeps the queue minimal; larger values trade memory for fewer reader
  /// touches. Ignored for preloaded workloads.
  Time arrival_lookahead_minutes = 0.0;
  /// Metrics memory mode (exact by default; see MetricsConfig).
  MetricsConfig metrics;

  /// Main-loop implementation (see SimEngine).
  SimEngine engine = SimEngine::kEventDriven;
  /// Epsilon-batched auction rounds (event engine only): when a lease tick
  /// fires, every lease expiring within this window is reclaimed by that
  /// one scheduling pass, run at the latest such expiry instant — one
  /// larger ResourceOffer instead of several slivers. Merged leases
  /// effectively run up to epsilon longer; the batch never reaches past a
  /// queued event or a pending streamed arrival. 0 disables coalescing;
  /// > 0 requires the event-driven engine (it deliberately trades
  /// bit-exactness against the pass-stepped reference for fewer rounds).
  Time auction_epsilon_minutes = 0.0;
  /// When > 0, kMetricsTick events sample every active app's held-GPU
  /// count into the allocation timeline at this period (the timeline
  /// otherwise records changes only). Ticks are armed while apps are live
  /// and never span idle stretches, so sparse traces still jump gaps.
  Time metrics_tick_minutes = 0.0;

  /// Thread budget for the ARBITER round's data-parallel phases (probe and
  /// bid preparation): 0 or 1 runs the round serially, >= 2 fans those
  /// phases out over the shared process pool. Folded into
  /// ThemisConfig::auction_threads by the experiment runners; results are
  /// bit-identical at any value (see common/parallel.h). Baseline policies
  /// ignore it. Negative values are rejected by Validate().
  int round_threads = 0;

  /// Reject configurations that would silently produce nonsense runs
  /// (non-positive lease, negative overhead, ...). Throws
  /// std::invalid_argument naming the offending knob; called by the
  /// Simulator constructor before any state is built.
  void Validate() const;
};

struct SimResult {
  MetricsCollector metrics;
  /// Apps that never finished before max_time (should be empty).
  std::vector<AppId> unfinished;
  Time end_time = 0.0;
  int scheduling_passes = 0;
  /// Peak over time of (sum of active apps' GPU demand) / cluster GPUs —
  /// the paper's contention yardstick (Sec. 8.3 reports 4.76x and calls it
  /// the ideal max finish-time fairness).
  double peak_contention = 0.0;
  /// Failure-injection accounting.
  int machine_failures = 0;
  int gpu_leases_revoked_by_failures = 0;
  /// Event-vs-pass efficiency counters: typed events popped off the queue,
  /// ARBITER rounds actually run (RunRound invocations; a pass skips its
  /// round when the free pool or active set is empty), and distinct
  /// virtual-time advances. With auction_epsilon_minutes = 0 both engines
  /// process identical event streams, so all three match bit-for-bit.
  long long events_processed = 0;
  long long rounds_executed = 0;
  long long sim_time_advances = 0;
  /// Apps seen end to end (streamed or preloaded; includes unfinished).
  std::size_t total_apps = 0;
  /// Peak simultaneously-resident AppStates. Equals total_apps unless
  /// retire_finished_apps; with retirement it tracks peak concurrency.
  std::size_t peak_live_apps = 0;
};

class Simulator {
 public:
  /// Preloaded workload: every AppState is built up front.
  Simulator(ClusterSpec cluster_spec, std::vector<AppSpec> apps,
            std::unique_ptr<IRoundScheduler> scheduler, SimConfig config = {});

  /// Streamed workload: apps are pulled from the reader (which must yield
  /// them in nondecreasing arrival order) as simulated time approaches
  /// their arrival.
  Simulator(ClusterSpec cluster_spec, std::unique_ptr<TraceReader> trace,
            std::unique_ptr<IRoundScheduler> scheduler, SimConfig config = {});

  /// Run to completion (all apps finished) or to config.max_time.
  SimResult Run();

  const Cluster& cluster() const { return cluster_; }
  /// Resident apps, indexed by AppId minus the retirement offset; retired
  /// slots are null until the front of the window is popped.
  const std::deque<std::unique_ptr<AppState>>& apps() const { return apps_; }

  /// Observe every (offer, grants) round as it is applied — the federation
  /// layer uses this to check cross-shard invariants; tests use it to audit
  /// grant streams. Called after ApplyGrants, before overhead accounting.
  using RoundObserver =
      std::function<void(const ResourceOffer&, const GrantSet&)>;
  void set_round_observer(RoundObserver observer) {
    round_observer_ = std::move(observer);
  }

 private:
  void AdvanceTo(Time t);
  void SchedulingPass(Time t);
  void FinishJob(Time t, AppState& app, JobState& job);
  void FinishApp(Time t, AppState& app);
  void KillJob(AppState& app, JobState& job);
  /// Project `job`'s analytic finish time from its granted rate and push
  /// the kJobFinish event — at most once per allocation epoch (see
  /// JobState::finish_projected_version). Event engine only; the
  /// pass-stepped reference re-derives projections inline every pass with
  /// the same arithmetic and the same push gate (SchedulingPass step 5),
  /// so the two must stay in sync.
  void MaybeScheduleFinish(Time t, AppState& app, JobState& job);
  /// Run one app's tuner step (kills, caps) and fold its capped-demand
  /// delta into the maintained contention sum.
  void StepTuner(Time t, AppState& app);
  void PushLeaseTick(Time t);
  /// Arm / re-arm the periodic metrics tick (no-op when disabled).
  void ArmMetricsTick(Time t);
  AppState* FindApp(AppId id);
  /// Maintain the active-app set (arrived && !finished, ascending AppId).
  void ActivateApp(AppState* app);
  void DeactivateApp(AppId id);
  /// Re-derive `app`'s membership in the holder set (apps with at least one
  /// leased GPU) after any gang mutation. The event engine advances
  /// progress over holders only; non-holders contribute nothing.
  void UpdateHolding(AppState* app);
  /// Flag `app` for the next tuner walk (event engine) — its views may
  /// have changed since its last Step.
  void MarkTunerDirty(AppState* app);
  /// Note that `app`'s held-GPU count may have changed this pass, so the
  /// event engine's timeline walk must examine it.
  void TouchAlloc(AppId id);

  /// Build the AppState for `spec`, assign it the next AppId, and enqueue
  /// its arrival event. Shared by the preloading constructor and the
  /// streaming refill.
  void InjectApp(AppSpec&& spec);
  /// Pull streamed arrivals up to the lookahead horizon (and always at
  /// least one when the queue is empty or everything injected finished).
  void RefillArrivals();
  /// True once the trace source has no further apps (trivially true for
  /// preloaded workloads).
  bool ReaderExhausted() const { return !have_pending_; }
  /// Destroy a finished app's state (no-op unless retire_finished_apps).
  void RetireApp(AppId id);

  Cluster cluster_;
  /// Resident apps; apps_[id - apps_base_] is the state for `id`. Retired
  /// entries are nulled, and the deque front is popped as it nulls out.
  std::deque<std::unique_ptr<AppState>> apps_;
  AppId apps_base_ = 0;
  /// Apps that arrived and have not finished, sorted by AppId. The
  /// pass-stepped engine walks this set every pass; the event engine only
  /// consults it for rounds (policies see all active apps either way).
  AppList active_apps_;
  /// Active apps holding at least one leased GPU, sorted by AppId — the
  /// event engine's progress-advance walk. Maintained by UpdateHolding at
  /// every gang mutation site (grant, reclaim, kill, finish, failure).
  AppList holding_apps_;
  /// Maintained filter index for the ARBITER's rho sort, kept in sync at
  /// every membership mutation (arrival, gang change, tuner step, finish)
  /// and handed to policies through SchedulerContext::rho_index(). Policies
  /// that ignore it cost one pointer; ThemisPolicy's incremental filter
  /// reads it instead of probing the whole population each round.
  RhoIndex rho_index_;
  /// Apps whose tuner views may have changed since their last Step
  /// (AppState::tuner_dirty guards duplicates); sorted+resolved per pass.
  std::vector<AppId> tuner_dirty_apps_;
  /// Apps whose held-GPU count may have changed before/outside the current
  /// pass (arrivals, failure revocations, tuner kills); consumed by the
  /// pass's timeline + finish-projection walks.
  std::vector<AppId> alloc_touched_apps_;
  /// Scratch JobView buffer reused across StepTuner calls (one allocation
  /// for the whole run instead of one per app per pass).
  std::vector<JobView> views_scratch_;
  std::unique_ptr<IRoundScheduler> scheduler_;
  RoundObserver round_observer_;
  SimConfig config_;
  WorkEstimator estimator_;
  Rng rng_;
  EventQueue queue_;
  MetricsCollector metrics_;
  Time last_advance_ = 0.0;
  std::set<Time> pushed_ticks_;
  int passes_ = 0;
  int finished_apps_ = 0;
  double peak_contention_ = 0.0;
  /// Sum over active apps of CapDemand(), maintained incrementally
  /// (integer deltas, so it equals the brute-force resum bit-for-bit).
  long long total_cap_demand_ = 0;
  bool event_mode_ = true;
  long long events_processed_ = 0;
  long long rounds_executed_ = 0;
  long long time_advances_ = 0;
  bool metrics_tick_armed_ = false;
  Rng failure_rng_{0xFA11};
  int machine_failures_ = 0;
  int leases_revoked_by_failures_ = 0;

  // Streaming source (null for preloaded workloads).
  std::unique_ptr<TraceReader> reader_;
  AppSpec pending_spec_;
  bool have_pending_ = false;
  Time last_injected_arrival_ = -kInfiniteTime;
  AppId next_app_id_ = 0;
  std::size_t live_apps_ = 0;
  std::size_t peak_live_apps_ = 0;
};

}  // namespace themis
