// scripted_agents — replay a generated trace's apps as N concurrent socket
// AGENTs against a running themis_arbiterd.
//
//   scripted_agents --connect HOST:PORT [--agents N] [--apps N] [--seed S]
//                   [--contention C] [--mute-every K] [--verify-inprocess]
//                   [--policy NAME] [--cluster SPEC] [--lease MIN]
//                   [--round-interval MIN] [--arbiter-seed S] [--knob F]
//
// The trace's apps are partitioned contiguously across the AGENTs;
// registration is sequential (HELLO waits for WELCOME) so the daemon's app
// numbering is deterministic, then all AGENTs bid concurrently until the
// daemon CLOSEs them. With --verify-inprocess the same specs are driven
// through an in-process ArbiterCore configured by the --policy/--cluster/
// --lease/--round-interval/--arbiter-seed/--knob flags (which must match
// the daemon's), and the grant-stream digests must agree bit for bit —
// exit 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/arbiter_core.h"
#include "server/client.h"
#include "sim/experiment.h"
#include "workload/trace_gen.h"

namespace {

using namespace themis;

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT [--agents N] [--apps N]\n"
               "          [--seed S] [--contention C] [--mute-every K]\n"
               "          [--verify-inprocess] [--policy NAME] [--cluster "
               "SPEC]\n"
               "          [--lease MIN] [--round-interval MIN]\n"
               "          [--arbiter-seed S] [--knob F]\n",
               argv0);
  std::exit(2);
}

ClusterSpec ParseCluster(const std::string& name) {
  if (name == "sim256") return ClusterSpec::Simulation256();
  if (name == "testbed50") return ClusterSpec::Testbed50();
  int racks = 0, machines = 0, gpus = 0;
  if (std::sscanf(name.c_str(), "%dx%dx%d", &racks, &machines, &gpus) == 3 &&
      racks > 0 && machines > 0 && gpus > 0) {
    const int slot = (gpus % 2 == 0) ? 2 : 1;
    return ClusterSpec::Uniform(racks, machines, gpus, slot);
  }
  std::fprintf(stderr, "unknown cluster: %s\n", name.c_str());
  std::exit(2);
}

bool ParseHostPort(const std::string& s, std::string* host, int* port) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos) return false;
  *host = s.substr(0, colon);
  *port = std::atoi(s.c_str() + colon + 1);
  return *port > 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host;
  int port = 0;
  int num_agents = 8;
  int mute_every = 0;
  bool verify = false;
  TraceConfig trace;
  trace.num_apps = 16;
  server::ArbiterConfig arbiter;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--connect") {
      if (!ParseHostPort(next(), &host, &port)) {
        std::fprintf(stderr, "--connect expects HOST:PORT\n");
        return 2;
      }
    } else if (arg == "--agents")
      num_agents = std::atoi(next().c_str());
    else if (arg == "--apps") trace.num_apps = std::atoi(next().c_str());
    else if (arg == "--seed")
      trace.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--contention")
      trace.contention_factor = std::atof(next().c_str());
    else if (arg == "--mute-every") mute_every = std::atoi(next().c_str());
    else if (arg == "--verify-inprocess") verify = true;
    else if (arg == "--policy") {
      try {
        arbiter.policy = PolicyKindFromString(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--cluster")
      arbiter.cluster = ParseCluster(next());
    else if (arg == "--lease")
      arbiter.lease_minutes = std::atof(next().c_str());
    else if (arg == "--round-interval")
      arbiter.round_interval_minutes = std::atof(next().c_str());
    else if (arg == "--arbiter-seed")
      arbiter.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--knob")
      arbiter.themis.fairness_knob = std::atof(next().c_str());
    else if (arg == "--help" || arg == "-h") Usage(argv[0]);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
    }
  }
  if (host.empty()) {
    std::fprintf(stderr, "--connect HOST:PORT is required\n");
    Usage(argv[0]);
  }
  if (num_agents <= 0) num_agents = 1;
  if (verify && mute_every > 0) {
    // A muted AGENT is eventually evicted server-side; the in-process
    // reference does not model evictions, so the digests cannot agree.
    std::fprintf(stderr,
                 "--verify-inprocess cannot be combined with --mute-every\n");
    return 2;
  }

  TraceGenerator gen(trace);
  const std::vector<AppSpec> apps = gen.Generate();
  if (static_cast<int>(apps.size()) < num_agents)
    num_agents = static_cast<int>(apps.size());

  // Contiguous partition: agent i serves apps [i*k, ...); HELLO order is
  // agent order, so the daemon numbers apps exactly like the flattened
  // spec list — the precondition for the in-process comparison.
  std::vector<server::AgentScript> scripts(num_agents);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const int owner = static_cast<int>(
        a * static_cast<std::size_t>(num_agents) / apps.size());
    scripts[owner].apps.push_back(apps[a]);
  }
  for (int i = 0; i < num_agents; ++i)
    scripts[i].name = "agent-" + std::to_string(i);

  const server::FleetResult fleet =
      server::RunScriptedAgents(host, port, scripts, mute_every);
  if (!fleet.ok) {
    std::fprintf(stderr, "scripted_agents: %s\n", fleet.error.c_str());
    return 1;
  }
  std::printf("agents           : %d (%zu closed, mute every %d)\n",
              num_agents, fleet.agents_closed, mute_every);
  std::printf("rounds seen      : %llu (%llu offers, %llu grants, %zu apps "
              "finished)\n",
              static_cast<unsigned long long>(fleet.last_round_seen),
              static_cast<unsigned long long>(fleet.offers_received),
              static_cast<unsigned long long>(fleet.grants_received),
              fleet.finished_apps);
  std::printf("grant digest     : %016llx (%lld grants, %lld gpus)\n",
              static_cast<unsigned long long>(fleet.digest.hash),
              fleet.digest.grants, fleet.digest.gpus);

  if (!verify) return 0;

  // In-process reference: same specs, same registration order, same number
  // of rounds, against a core configured identically to the daemon.
  server::ArbiterCore reference(arbiter);
  for (const server::AgentScript& s : scripts)
    for (const AppSpec& spec : s.apps) reference.RegisterApp(spec);
  while (reference.rounds_run() < fleet.last_round_seen)
    reference.RunOneRound();

  const bool match = reference.digest() == fleet.digest;
  std::printf("in-process digest: %016llx (%lld grants, %lld gpus) -- %s\n",
              static_cast<unsigned long long>(reference.digest().hash),
              reference.digest().grants, reference.digest().gpus,
              match ? "MATCH" : "MISMATCH");
  return match ? 0 : 1;
}
