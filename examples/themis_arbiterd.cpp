// themis_arbiterd — the ARBITER as a network daemon.
//
//   themis_arbiterd [--host H] [--port P] [--policy NAME] [--cluster SPEC]
//                   [--lease MIN] [--round-interval MIN] [--seed S]
//                   [--knob F] [--min-agents N] [--rounds N]
//                   [--bid-timeout-ms MS] [--hello-timeout-ms MS]
//                   [--max-sessions N] [--print-port]
//
// Binds HOST:PORT (port 0 = ephemeral; --print-port echoes the bound port
// on stdout for scripts), serves the Offer/Bid/Grant protocol of net/wire.h
// to remote AGENTs, and exits 0 on SIGINT/SIGTERM after draining the
// in-flight round and sending CLOSE frames. A second signal aborts
// immediately (exit 130) — the escape hatch when a peer refuses to drain.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/stats.h"
#include "server/server.h"
#include "sim/experiment.h"

namespace {

using namespace themis;

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--policy "
               "themis|gandiva|tiresias|slaq|drf]\n"
               "          [--cluster sim256|testbed50|RxMxG] [--lease MIN]\n"
               "          [--round-interval MIN] [--seed S] [--knob F]\n"
               "          [--min-agents N] [--rounds N] [--bid-timeout-ms MS]\n"
               "          [--hello-timeout-ms MS] [--max-sessions N] "
               "[--print-port]\n",
               argv0);
  std::exit(2);
}

ClusterSpec ParseCluster(const std::string& name) {
  if (name == "sim256") return ClusterSpec::Simulation256();
  if (name == "testbed50") return ClusterSpec::Testbed50();
  int racks = 0, machines = 0, gpus = 0;
  if (std::sscanf(name.c_str(), "%dx%dx%d", &racks, &machines, &gpus) == 3 &&
      racks > 0 && machines > 0 && gpus > 0) {
    const int slot = (gpus % 2 == 0) ? 2 : 1;
    return ClusterSpec::Uniform(racks, machines, gpus, slot);
  }
  std::fprintf(stderr, "unknown cluster: %s\n", name.c_str());
  std::exit(2);
}

server::ArbiterServer* g_server = nullptr;
volatile std::sig_atomic_t g_signal_count = 0;

void OnSignal(int) {
  g_signal_count = g_signal_count + 1;
  if (g_signal_count >= 2) _exit(130);  // double-signal escape hatch
  if (g_server != nullptr) g_server->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerConfig config;
  bool print_port = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--host") config.host = next();
    else if (arg == "--port") config.port = std::atoi(next().c_str());
    else if (arg == "--policy") {
      try {
        config.arbiter.policy = PolicyKindFromString(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--cluster")
      config.arbiter.cluster = ParseCluster(next());
    else if (arg == "--lease")
      config.arbiter.lease_minutes = std::atof(next().c_str());
    else if (arg == "--round-interval")
      config.arbiter.round_interval_minutes = std::atof(next().c_str());
    else if (arg == "--seed")
      config.arbiter.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--knob")
      config.arbiter.themis.fairness_knob = std::atof(next().c_str());
    else if (arg == "--min-agents")
      config.min_agents = static_cast<std::size_t>(std::atoi(next().c_str()));
    else if (arg == "--rounds")
      config.max_rounds = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--bid-timeout-ms")
      config.bid_timeout_ms = std::atoi(next().c_str());
    else if (arg == "--hello-timeout-ms")
      config.hello_timeout_ms = std::atoi(next().c_str());
    else if (arg == "--max-sessions")
      config.max_sessions = static_cast<std::size_t>(std::atoi(next().c_str()));
    else if (arg == "--print-port") print_port = true;
    else if (arg == "--help" || arg == "-h") Usage(argv[0]);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
    }
  }

  server::ArbiterServer srv(config);
  std::string err;
  if (!srv.Start(&err)) {
    std::fprintf(stderr, "themis_arbiterd: %s\n", err.c_str());
    return 1;
  }
  if (print_port) {
    std::printf("PORT %d\n", srv.port());
    std::fflush(stdout);
  }
  std::fprintf(stderr, "themis_arbiterd: listening on %s:%d (policy %s)\n",
               config.host.c_str(), srv.port(),
               ToString(config.arbiter.policy));

  g_server = &srv;
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  const int rc = srv.Run();
  g_server = nullptr;

  const server::ServerStats& st = srv.stats();
  std::printf("rounds           : %llu\n",
              static_cast<unsigned long long>(st.rounds));
  if (st.round_latency_ms.count() == 0)
    std::printf("round latency    : (no rounds completed)\n");
  else
    std::printf("round latency    : p50 %.2f ms, p99 %.2f ms, max %.2f ms\n",
                Percentile(st.round_latency_ms.items(), 50.0),
                Percentile(st.round_latency_ms.items(), 99.0),
                st.round_latency_summary.max());
  std::printf("sessions         : %zu accepted, %zu peak, %zu evicted, "
              "%zu refused\n",
              st.sessions_accepted, st.peak_sessions, st.sessions_evicted,
              st.sessions_refused);
  std::printf("frames           : %llu in, %llu out (%zu protocol errors, "
              "%zu deadline misses)\n",
              static_cast<unsigned long long>(st.frames_in),
              static_cast<unsigned long long>(st.frames_out),
              st.protocol_errors, st.bid_deadline_misses);
  std::printf("apps             : %zu registered, %zu finished\n",
              srv.core().apps_registered(), srv.core().apps_finished());
  std::printf("grant digest     : %016llx (%lld grants, %lld gpus)\n",
              static_cast<unsigned long long>(srv.core().digest().hash),
              srv.core().digest().grants, srv.core().digest().gpus);
  return rc;
}
