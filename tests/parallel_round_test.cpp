// Tests for common/parallel.h and the parallel ARBITER round phases behind
// ThemisConfig::auction_threads / SimConfig::round_threads: parallel rounds
// must be pinned bit-identical to the serial loop (results, fingerprints,
// grant streams, diagnostics) across every policy, both engines, failures,
// heterogeneous generations and streamed traces; the stateful estimator
// modes must silently fall back to the serial path with identical RNG
// streams; and the ThreadPool itself must honor its chunking, exception and
// reuse contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "sim/experiment.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace themis {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit suite.
// ---------------------------------------------------------------------------

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
    for (const int threads : {1, 2, 3, 8}) {
      for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                      std::size_t{13}, n + 5}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto& h : hits) h.store(0);
        pool.ParallelFor(n, threads,
                         [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " threads=" << threads
                                       << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, SerialBudgetRunsInlineInAscendingOrder) {
  ThreadPool pool;
  std::vector<std::size_t> order;
  pool.ParallelFor(100, /*max_threads=*/1,
                   [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  // And no worker threads were spawned for it.
  EXPECT_EQ(pool.num_workers(), 0);
}

TEST(ThreadPool, GrowsOnDemandAndNeverShrinks) {
  ThreadPool pool;
  EXPECT_EQ(pool.num_workers(), 0);
  pool.ParallelFor(32, 3, [](std::size_t) {});
  EXPECT_EQ(pool.num_workers(), 2);  // caller + 2 helpers = 3 executors
  pool.ParallelFor(32, 2, [](std::size_t) {});
  EXPECT_EQ(pool.num_workers(), 2);  // smaller request: no shrink
  pool.ParallelFor(32, 5, [](std::size_t) {});
  EXPECT_EQ(pool.num_workers(), 4);
  pool.EnsureWorkers(ThreadPool::kMaxWorkers + 100);
  EXPECT_EQ(pool.num_workers(), ThreadPool::kMaxWorkers);
}

TEST(ThreadPool, ReusableAcrossManySubmits) {
  ThreadPool pool;
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round)
    pool.ParallelFor(50, 4, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  EXPECT_EQ(total.load(), 200L * (49 * 50 / 2));
  EXPECT_EQ(pool.num_workers(), 3);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool;
  EXPECT_THROW(
      pool.ParallelFor(100, 4,
                       [](std::size_t i) {
                         if (i == 37) throw std::runtime_error("bid failed");
                       },
                       /*grain=*/1),
      std::runtime_error);
  // The pool must stay fully usable after a failed job.
  std::atomic<int> ran{0};
  pool.ParallelFor(100, 4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ExceptionOnSerialPathPropagatesToo) {
  ThreadPool pool;
  EXPECT_THROW(pool.ParallelFor(10, 1,
                                [](std::size_t i) {
                                  if (i == 3) throw std::logic_error("x");
                                }),
               std::logic_error);
}

TEST(ThreadPool, NestedParallelForCompletesWithoutDeadlock) {
  // A ParallelFor issued from inside a pool task (an auction round inside a
  // sweep scenario) must complete even when every worker is busy: the inner
  // caller drains its own chunks.
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, 4, [&](std::size_t) {
    pool.ParallelFor(16, 4,
                     [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, GlobalPoolIsSharedAndFreeFunctionUsesIt) {
  std::atomic<int> ran{0};
  ParallelFor(64, 4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
  EXPECT_GE(ThreadPool::Global().num_workers(), 3);
}

// ---------------------------------------------------------------------------
// Bit-identical equivalence: parallel vs. serial rounds, whole experiments.
// ---------------------------------------------------------------------------

void ExpectSameExperiment(const ExperimentResult& a,
                          const ExperimentResult& b) {
  EXPECT_EQ(a.max_fairness, b.max_fairness);
  EXPECT_EQ(a.median_fairness, b.median_fairness);
  EXPECT_EQ(a.min_fairness, b.min_fairness);
  EXPECT_EQ(a.jains_index, b.jains_index);
  EXPECT_EQ(a.avg_completion_time, b.avg_completion_time);
  EXPECT_EQ(a.gpu_time, b.gpu_time);
  EXPECT_EQ(a.peak_contention, b.peak_contention);
  EXPECT_EQ(a.unfinished_apps, b.unfinished_apps);
  EXPECT_EQ(a.machine_failures, b.machine_failures);
  EXPECT_EQ(a.scheduling_passes, b.scheduling_passes);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.sim_time_advances, b.sim_time_advances);
  EXPECT_EQ(a.finished_apps, b.finished_apps);
  EXPECT_EQ(a.rhos, b.rhos);
  EXPECT_EQ(a.completion_times, b.completion_times);
  EXPECT_EQ(a.placement_scores, b.placement_scores);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time, b.timeline[i].time);
    EXPECT_EQ(a.timeline[i].app, b.timeline[i].app);
    EXPECT_EQ(a.timeline[i].gpus, b.timeline[i].gpus);
  }
}

// Contended mixed workload (multi-job tuned apps, overlapping lifetimes,
// restarts): plenty of multi-participant auctions for the parallel phases.
ExperimentConfig ContendedConfig(PolicyKind policy) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Uniform(2, 4, 4, 2);
  config.policy = policy;
  config.trace.seed = 33;
  config.trace.num_apps = 25;
  config.trace.jobs_per_app_median = 6.0;
  config.trace.jobs_per_app_max = 12;
  config.sim.seed = 33;
  return config;
}

ExperimentResult RunWithThreads(ExperimentConfig config, int round_threads) {
  config.sim.round_threads = round_threads;
  return RunExperiment(config);
}

class ParallelRoundEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<PolicyKind, SimEngine>> {};

TEST_P(ParallelRoundEquivalenceTest, ThreadCountsMatchSerialBitForBit) {
  ExperimentConfig config = ContendedConfig(std::get<0>(GetParam()));
  config.sim.engine = std::get<1>(GetParam());
  const ExperimentResult serial = RunWithThreads(config, 0);
  EXPECT_EQ(serial.unfinished_apps, 0);
  EXPECT_GT(serial.rounds_executed, 0);
  for (const int threads : {1, 2, 8}) {
    const ExperimentResult parallel = RunWithThreads(config, threads);
    ExpectSameExperiment(serial, parallel);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesTimesEngines, ParallelRoundEquivalenceTest,
    ::testing::Combine(::testing::Values(PolicyKind::kThemis,
                                         PolicyKind::kGandiva,
                                         PolicyKind::kTiresias,
                                         PolicyKind::kSlaq, PolicyKind::kDrf),
                       ::testing::Values(SimEngine::kEventDriven,
                                         SimEngine::kPassStepped)));

TEST(ParallelRoundEquivalence, HoldsUnderMachineFailures) {
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.sim.machine_mtbf_minutes = 300.0;
  config.sim.machine_repair_minutes = 45.0;
  const ExperimentResult serial = RunWithThreads(config, 0);
  const ExperimentResult parallel = RunWithThreads(config, 8);
  EXPECT_GT(serial.machine_failures, 0);
  ExpectSameExperiment(serial, parallel);
}

TEST(ParallelRoundEquivalence, HoldsOnHeterogeneousGenerations) {
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  ApplyGenerationMix(config.cluster,
                     ParseGenerationMix("K80:0.25,V100:0.5,A100:0.25"));
  const ExperimentResult serial = RunWithThreads(config, 0);
  const ExperimentResult parallel = RunWithThreads(config, 8);
  ExpectSameExperiment(serial, parallel);
}

TEST(ParallelRoundEquivalence, HoldsOnStreamedTraces) {
  const ExperimentConfig base = ContendedConfig(PolicyKind::kThemis);
  const auto apps = TraceGenerator(base.trace).Generate();
  auto run = [&](int round_threads) {
    ExperimentConfig config = base;
    config.sim.round_threads = round_threads;
    config.sim.arrival_lookahead_minutes = 30.0;
    config.sim.retire_finished_apps = true;
    return RunStreamingExperiment(config,
                                  std::make_unique<VectorTraceReader>(apps));
  };
  const ExperimentResult serial = run(0);
  const ExperimentResult parallel = run(8);
  ExpectSameExperiment(serial, parallel);
  EXPECT_EQ(serial.total_apps, apps.size());
}

TEST(ParallelRoundEquivalence, HoldsWithLiteralFilter) {
  // Both filter paths host a parallel probe loop; pin the literal one too.
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.themis.incremental_filter = false;
  const ExperimentResult serial = RunWithThreads(config, 0);
  const ExperimentResult parallel = RunWithThreads(config, 8);
  ExpectSameExperiment(serial, parallel);
}

// ---------------------------------------------------------------------------
// Stateful estimator modes: silent serial fallback, identical RNG streams.
// ---------------------------------------------------------------------------

TEST(ParallelRoundFallback, NoisyEstimatorFallsBackToSerialExactly) {
  // kNoisy draws one RNG sample per RemainingWork call, so its estimator
  // call *sequence* is part of the result. A parallel thread budget must
  // change nothing: the round silently takes the serial path, and every
  // downstream random decision — hence the whole experiment — is
  // bit-identical to round_threads = 0.
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.sim.estimator.mode = EstimationMode::kNoisy;
  config.sim.estimator.theta = 0.15;
  const ExperimentResult serial = RunWithThreads(config, 0);
  for (const int threads : {2, 8}) {
    const ExperimentResult parallel = RunWithThreads(config, threads);
    ExpectSameExperiment(serial, parallel);
  }
}

TEST(ParallelRoundFallback, CurveFitEstimatorFallsBackToSerialExactly) {
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.sim.estimator.mode = EstimationMode::kCurveFit;
  const ExperimentResult serial = RunWithThreads(config, 0);
  const ExperimentResult parallel = RunWithThreads(config, 8);
  ExpectSameExperiment(serial, parallel);
}

// ---------------------------------------------------------------------------
// Config plumbing and validation.
// ---------------------------------------------------------------------------

TEST(ParallelRoundConfig, NegativeRoundThreadsIsRejected) {
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.sim.round_threads = -1;
  EXPECT_THROW(RunExperiment(config), std::invalid_argument);
}

TEST(ParallelRoundConfig, SweepRunnerStaysBitIdenticalOnTheSharedPool) {
  // RunParallel now rides the shared pool; the documented "parallel ==
  // serial" sweep property must survive the migration.
  const std::vector<ScenarioSpec> grid = PolicySeedGrid(
      ContendedConfig(PolicyKind::kThemis),
      {PolicyKind::kThemis, PolicyKind::kTiresias}, {33, 34});
  const std::vector<ScenarioRun> serial = SweepRunner(1).Run(grid);
  const std::vector<ScenarioRun> parallel = SweepRunner(4).Run(grid);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    ExpectSameExperiment(serial[i].result, parallel[i].result);
  }
}

}  // namespace
}  // namespace themis
