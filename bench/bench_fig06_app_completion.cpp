// Figure 6: "Comparison of App Completion Times across schemes" — the ACT
// CDF per scheduler plus the average-ACT improvements the paper quotes
// (Themis ~4.6% / ~55.5% / ~24.4% better than Gandiva / SLAQ / Tiresias).
#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  std::printf("=== Figure 6: app completion time CDF across schemes ===\n");
  std::printf("(mean of 3 trace seeds, 50-GPU testbed-scale cluster)\n");
  BenchReport report("fig06_app_completion");
  report.Config("cluster", "testbed50");
  report.Config("contention_factor", 4.0);
  report.Config("trace_seeds", 3.0);

  // One policy x seed grid through the SweepRunner (policy outer, seed
  // inner), with the per-scenario rows archived as CSV.
  const std::vector<PolicyKind> policies(std::begin(kAllPolicies),
                                         std::end(kAllPolicies));
  const std::vector<ScenarioRun> runs = SweepRunner().Run(PolicySeedGrid(
      ContendedTestbedConfig(PolicyKind::kThemis), policies, {42, 43, 44}));

  double themis_act = 0.0;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const PolicyKind kind = policies[p];
    const MacroSummary s = SummarizeMacroRuns(
        {runs.begin() + 3 * p, runs.begin() + 3 * (p + 1)});
    std::printf("\n--- %s (avg ACT %.1f min) ---\n", ToString(kind),
                s.avg_completion_time);
    std::printf("%12s  %6s\n", "ACT(min)", "CDF");
    std::printf("%s", FormatCdf(Cdf(s.last.completion_times), 12).c_str());
    const std::string scheme = ToString(kind);
    report.Metric("avg_act_min." + scheme, s.avg_completion_time);
    if (kind == PolicyKind::kThemis) themis_act = s.avg_completion_time;
    else {
      const double pct = 100.0 * (s.avg_completion_time - themis_act) /
                         s.avg_completion_time;
      std::printf("Themis improvement over %s: %.1f%%\n", ToString(kind), pct);
      report.Metric("themis_act_improvement_pct." + scheme, pct);
    }
  }
  std::printf("\npaper reference: Themis ~4.6%% / ~55.5%% / ~24.4%% better than"
              " Gandiva / SLAQ / Tiresias on average ACT\n");
  const bool csv_ok = WriteBenchCsv("fig06_app_completion", runs);
  return report.Write() && csv_ok ? 0 : 1;
}
