// Figure 1: "Distribution of task durations for ML training jobs from an
// enterprise cluster."
//
// Prints the CDF of task durations produced by the synthetic trace
// generator. The paper's trace shows mostly short tasks (median 59 min) with
// a long tail stretching past 1000 minutes; the generator reproduces those
// marginals (see workload/trace_gen.h).
#include <cstdio>

#include "common/stats.h"
#include "workload/trace_gen.h"

int main() {
  using namespace themis;

  TraceConfig cfg;
  cfg.seed = 42;
  cfg.num_apps = 500;
  TraceGenerator gen(cfg);

  std::vector<double> durations;
  for (const AppSpec& app : gen.Generate())
    for (const JobSpec& job : app.jobs)
      durations.push_back(job.total_work / job.MaxParallelism());

  std::printf("=== Figure 1: CDF of task durations (minutes) ===\n");
  std::printf("tasks=%zu\n", durations.size());
  std::printf("%12s  %6s\n", "duration", "CDF");
  std::printf("%s", FormatCdf(Cdf(durations), 20).c_str());
  std::printf("\npaper reference: short-task median 59 min, long-task median"
              " 123 min, tail past 1000 min\n");
  std::printf("measured: p50=%.1f  p80=%.1f  p99=%.1f  max=%.1f\n",
              Percentile(durations, 50.0), Percentile(durations, 80.0),
              Percentile(durations, 99.0), Percentile(durations, 100.0));
  return 0;
}
