// Property test for the indexed Cluster: drives long random sequences of
// Allocate / Release / ReleaseAll / Renew / failure-revoke / machine up-down
// transitions and asserts after every step that the maintained indices
// (per-machine free lists, expiry set, holdings map) agree with a
// brute-force rescan of the per-GPU lease table — the ground truth the old
// scan-based implementation read directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"

namespace themis {
namespace {

/// Brute-force reference views recomputed from lease()/IsMachineDown() only.
struct Rescan {
  std::vector<GpuId> free;
  std::vector<int> free_per_machine;
  std::vector<std::vector<GpuId>> free_on_machine;

  explicit Rescan(const Cluster& c)
      : free_per_machine(c.num_machines(), 0),
        free_on_machine(c.num_machines()) {
    for (GpuId g = 0; g < static_cast<GpuId>(c.num_gpus()); ++g) {
      if (!c.IsFree(g)) continue;
      const MachineId m = c.topology().gpu(g).machine;
      // Counts ignore down machines like FreeGpusPerMachine does.
      if (!c.IsMachineDown(m)) {
        free.push_back(g);
        ++free_per_machine[m];
        free_on_machine[m].push_back(g);
      }
    }
  }

  static std::vector<GpuId> HeldBy(const Cluster& c, AppId app) {
    std::vector<GpuId> out;
    for (GpuId g = 0; g < static_cast<GpuId>(c.num_gpus()); ++g)
      if (!c.IsFree(g) && c.lease(g)->app == app) out.push_back(g);
    return out;
  }

  static std::vector<GpuId> HeldBy(const Cluster& c, AppId app, JobId job) {
    std::vector<GpuId> out;
    for (GpuId g = 0; g < static_cast<GpuId>(c.num_gpus()); ++g)
      if (!c.IsFree(g) && c.lease(g)->app == app && c.lease(g)->job == job)
        out.push_back(g);
    return out;
  }

  static std::vector<GpuId> Expired(const Cluster& c, Time now) {
    std::vector<GpuId> out;
    for (GpuId g = 0; g < static_cast<GpuId>(c.num_gpus()); ++g)
      if (!c.IsFree(g) && c.lease(g)->expiry <= now) out.push_back(g);
    return out;
  }

  static Time NextExpiry(const Cluster& c, Time t) {
    Time best = kInfiniteTime;
    for (GpuId g = 0; g < static_cast<GpuId>(c.num_gpus()); ++g)
      if (!c.IsFree(g) && c.lease(g)->expiry > t)
        best = std::min(best, c.lease(g)->expiry);
    return best;
  }
};

void ExpectIndicesMatchRescan(const Cluster& c, Time now, int apps, int jobs) {
  const Rescan ref(c);
  ASSERT_EQ(c.FreeGpus(), ref.free);
  ASSERT_EQ(c.FreeGpusPerMachine(), ref.free_per_machine);
  for (MachineId m = 0; m < static_cast<MachineId>(c.num_machines()); ++m)
    ASSERT_EQ(c.FreeGpusOnMachine(m), ref.free_on_machine[m]) << "machine " << m;

  for (AppId a = 0; a < static_cast<AppId>(apps); ++a) {
    ASSERT_EQ(c.GpusHeldBy(a), Rescan::HeldBy(c, a)) << "app " << a;
    for (JobId j = 0; j < static_cast<JobId>(jobs); ++j)
      ASSERT_EQ(c.GpusHeldBy(a, j), Rescan::HeldBy(c, a, j))
          << "app " << a << " job " << j;
  }

  for (Time probe : {now - 7.0, now, now + 13.0}) {
    ASSERT_EQ(c.ExpiredGpus(probe), Rescan::Expired(c, probe)) << "t=" << probe;
    ASSERT_EQ(c.NextExpiryAfter(probe), Rescan::NextExpiry(c, probe))
        << "t=" << probe;
  }

  int allocated = 0;
  for (GpuId g = 0; g < static_cast<GpuId>(c.num_gpus()); ++g)
    if (!c.IsFree(g)) ++allocated;
  ASSERT_EQ(c.num_allocated(), allocated);
  ASSERT_EQ(c.num_free(), c.num_gpus() - allocated);
}

TEST(ClusterInvariants, RandomOperationSequencesMatchBruteForce) {
  // Heterogeneous-ish shape: 3 racks x 4 machines x 4 GPUs (2-GPU slots).
  Cluster cluster(ClusterSpec::Uniform(3, 4, 4, 2));
  const int kApps = 6, kJobs = 3;
  Rng rng(0xC1D5);
  Time now = 0.0;

  for (int step = 0; step < 4000; ++step) {
    const int op = rng.UniformInt(0, 99);
    now += rng.Uniform(0.0, 1.0);

    if (op < 45) {
      // Allocate a random free (up-machine) GPU.
      const std::vector<GpuId> free = cluster.FreeGpus();
      if (!free.empty()) {
        const GpuId g = free[rng.UniformInt(0, static_cast<int>(free.size()) - 1)];
        cluster.Allocate(g, rng.UniformInt(0, kApps - 1),
                         rng.UniformInt(0, kJobs - 1),
                         now + rng.Uniform(1.0, 40.0));
      }
    } else if (op < 70) {
      // Release a random held GPU.
      std::vector<GpuId> held;
      for (GpuId g = 0; g < static_cast<GpuId>(cluster.num_gpus()); ++g)
        if (!cluster.IsFree(g)) held.push_back(g);
      if (!held.empty())
        cluster.Release(held[rng.UniformInt(0, static_cast<int>(held.size()) - 1)]);
    } else if (op < 78) {
      cluster.ReleaseAll(rng.UniformInt(0, kApps - 1));
    } else if (op < 85) {
      // Renew a random held GPU.
      std::vector<GpuId> held;
      for (GpuId g = 0; g < static_cast<GpuId>(cluster.num_gpus()); ++g)
        if (!cluster.IsFree(g)) held.push_back(g);
      if (!held.empty())
        cluster.Renew(held[rng.UniformInt(0, static_cast<int>(held.size()) - 1)],
                      now + rng.Uniform(1.0, 40.0));
    } else if (op < 92) {
      // Failure-revoke: machine goes down and its leases are released, the
      // sequence the simulator performs on kMachineFail.
      const MachineId m = rng.UniformInt(0, cluster.num_machines() - 1);
      cluster.SetMachineDown(m, true);
      for (GpuId g : cluster.topology().machine_gpus(m))
        if (!cluster.IsFree(g)) cluster.Release(g);
    } else {
      // Repair a random machine (no-op when already up).
      cluster.SetMachineDown(rng.UniformInt(0, cluster.num_machines() - 1),
                             false);
    }

    if (step % 10 == 0) ExpectIndicesMatchRescan(cluster, now, kApps, kJobs);
  }
  ExpectIndicesMatchRescan(cluster, now, kApps, kJobs);
}

TEST(ClusterInvariants, ReclaimLoopNeverLeavesStaleExpiries) {
  // Mimic the simulator's lease-tick reclaim: allocate everything with
  // staggered expiries, repeatedly reclaim-at-tick and re-grant, and verify
  // the expiry index never resurrects a reclaimed lease.
  Cluster cluster(ClusterSpec::Uniform(1, 4, 4, 2));
  Rng rng(7);
  for (GpuId g = 0; g < 16; ++g)
    cluster.Allocate(g, g % 3, 0, 10.0 + static_cast<double>(g % 5));
  Time now = 0.0;
  for (int round = 0; round < 200; ++round) {
    now = cluster.NextExpiryAfter(now);
    if (!std::isfinite(now)) break;
    for (GpuId g : cluster.ExpiredGpus(now)) {
      cluster.Release(g);
      if (rng.UniformInt(0, 3) != 0)
        cluster.Allocate(g, rng.UniformInt(0, 2), 0, now + rng.Uniform(1.0, 9.0));
    }
    ASSERT_TRUE(cluster.ExpiredGpus(now).empty());
    ExpectIndicesMatchRescan(cluster, now, 3, 1);
  }
}

TEST(ClusterInvariants, NextExpiryAfterIsStrict) {
  Cluster cluster(ClusterSpec::Uniform(1, 2, 4, 2));
  EXPECT_EQ(cluster.NextExpiryAfter(0.0), kInfiniteTime);
  cluster.Allocate(0, 1, 0, 10.0);
  cluster.Allocate(1, 1, 0, 30.0);
  EXPECT_DOUBLE_EQ(cluster.NextExpiryAfter(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cluster.NextExpiryAfter(10.0), 30.0);  // strictly after
  EXPECT_EQ(cluster.NextExpiryAfter(30.0), kInfiniteTime);
  cluster.Renew(0, 50.0);
  EXPECT_DOUBLE_EQ(cluster.NextExpiryAfter(30.0), 50.0);
}

}  // namespace
}  // namespace themis
