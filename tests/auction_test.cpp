// Tests for auction/: bid validation and the Partial Allocation mechanism
// (Pseudocode 2) — proportional fairness, hidden payments, truthfulness.
#include <gtest/gtest.h>

#include <cmath>

#include "auction/partial_allocation.h"
#include "common/rng.h"

namespace themis {
namespace {

BidRow Row(std::vector<int> gpus, double rho) {
  BidRow r;
  r.gpus_per_machine = std::move(gpus);
  r.rho = rho;
  return r;
}

BidTable Table(AppId app, std::vector<BidRow> rows) {
  BidTable t;
  t.app = app;
  t.rows = std::move(rows);
  return t;
}

TEST(BidValidation, AcceptsWellFormedBid) {
  const auto bid = Table(1, {Row({0, 0}, 8.0), Row({2, 0}, 4.0)});
  EXPECT_EQ(ValidateBid(bid, {4, 4}), "");
}

TEST(BidValidation, RejectsEmptyAndMissingZeroRow) {
  EXPECT_NE(ValidateBid(Table(1, {}), {4}), "");
  EXPECT_NE(ValidateBid(Table(1, {Row({1}, 4.0)}), {4}), "");
}

TEST(BidValidation, RejectsOverAskAndBadDimensions) {
  EXPECT_NE(ValidateBid(Table(1, {Row({0}, 8.0), Row({5}, 4.0)}), {4}), "");
  EXPECT_NE(ValidateBid(Table(1, {Row({0, 0}, 8.0)}), {4}), "");
  EXPECT_NE(ValidateBid(Table(1, {Row({0}, 8.0), Row({-1}, 4.0)}), {4}), "");
}

TEST(BidValidation, RejectsNonPositiveRhoAndWorseningRows) {
  EXPECT_NE(ValidateBid(Table(1, {Row({0}, 0.0)}), {4}), "");
  // Extra GPUs may not make rho worse than the zero row.
  EXPECT_NE(ValidateBid(Table(1, {Row({0}, 4.0), Row({2}, 9.0)}), {4}), "");
}

TEST(BidRow, ValueIsReciprocalRho) {
  EXPECT_DOUBLE_EQ(Row({1}, 4.0).Value(), 0.25);
  EXPECT_EQ(Row({0, 3}, 1.0).TotalGpus(), 3);
  EXPECT_TRUE(Row({0, 0}, 1.0).IsZero());
}

TEST(PartialAllocation, EmptyBidsLeaveEverything) {
  const PaResult r = PartialAllocation(std::vector<BidTable>{}, {4, 4});
  EXPECT_TRUE(r.winners.empty());
  EXPECT_EQ(r.leftover, (std::vector<int>{4, 4}));
}

TEST(PartialAllocation, SingleBidderAloneKeepsFullBundle) {
  // With no competitors, removing the bidder changes nothing for "others"
  // (empty product), so c = 1 and the whole proportional-fair bundle lands.
  const auto bid = Table(1, {Row({0}, 10.0), Row({4}, 2.5)});
  const PaResult r = PartialAllocation({bid}, {4});
  ASSERT_EQ(r.winners.size(), 1u);
  EXPECT_EQ(r.winners[0].row, 1);
  EXPECT_DOUBLE_EQ(r.winners[0].c, 1.0);
  EXPECT_EQ(r.winners[0].granted, (std::vector<int>{4}));
  EXPECT_EQ(r.leftover, (std::vector<int>{0}));
}

TEST(PartialAllocation, PicksWelfareMaximizingAssignment) {
  // Two apps, one 4-GPU machine. App A gains 4x from the bundle, app B only
  // 1.25x: welfare is maximized by giving the machine to A.
  const auto a = Table(1, {Row({0}, 8.0), Row({4}, 2.0)});
  const auto b = Table(2, {Row({0}, 5.0), Row({4}, 4.0)});
  const PfSolution pf = SolveProportionalFair({a, b}, {4});
  EXPECT_EQ(pf.rows, (std::vector<int>{1, 0}));
  EXPECT_TRUE(pf.exact);
}

TEST(PartialAllocation, SplitsAcrossMachinesWhenProductPrefersIt) {
  // Two machines of 2; each app doubles its value with one machine and
  // gains nothing more from the second: product prefers one each.
  const auto a = Table(1, {Row({0, 0}, 8.0), Row({2, 0}, 4.0), Row({2, 2}, 3.9)});
  const auto b = Table(2, {Row({0, 0}, 8.0), Row({0, 2}, 4.0), Row({2, 2}, 3.9)});
  const PfSolution pf = SolveProportionalFair({a, b}, {2, 2});
  EXPECT_EQ(pf.rows, (std::vector<int>{1, 1}));
}

TEST(PartialAllocation, HiddenPaymentShrinksContestedGrants) {
  // Both apps want the same 4 GPUs with identical valuations: whoever wins
  // pays a hidden payment (c < 1), so part of the machine is left over.
  const auto a = Table(1, {Row({0}, 8.0), Row({4}, 2.0)});
  const auto b = Table(2, {Row({0}, 8.0), Row({4}, 2.0)});
  const PaResult r = PartialAllocation({a, b}, {4});
  int granted_total = 0;
  for (const PaWinner& w : r.winners) {
    EXPECT_LE(w.c, 1.0);
    granted_total += w.granted[0];
  }
  // One app wins the bundle but keeps only c * 4 < 4 GPUs.
  EXPECT_LT(granted_total, 4);
  EXPECT_GT(r.leftover[0], 0);
}

TEST(PartialAllocation, UncontestedBiddersKeepEverything) {
  // Disjoint interests: no competition, c = 1 for both, zero leftover.
  const auto a = Table(1, {Row({0, 0}, 8.0), Row({4, 0}, 2.0)});
  const auto b = Table(2, {Row({0, 0}, 8.0), Row({0, 4}, 2.0)});
  const PaResult r = PartialAllocation({a, b}, {4, 4});
  for (const PaWinner& w : r.winners) EXPECT_NEAR(w.c, 1.0, 1e-9);
  EXPECT_EQ(r.leftover, (std::vector<int>{0, 0}));
}

TEST(PartialAllocation, ZeroRowWinnersGetNothing) {
  // B's gain is negligible; A's is big. B should win nothing and keep c=1.
  const auto a = Table(1, {Row({0}, 100.0), Row({4}, 1.0)});
  const auto b = Table(2, {Row({0}, 2.0), Row({4}, 1.9)});
  const PaResult r = PartialAllocation({a, b}, {4});
  EXPECT_EQ(r.winners[0].row, 1);
  EXPECT_EQ(r.winners[1].row, 0);
  EXPECT_EQ(r.winners[1].granted, (std::vector<int>{0}));
}

TEST(PartialAllocation, GrantsNeverExceedOffer) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int machines = rng.UniformInt(1, 4);
    std::vector<int> offered(machines);
    for (int& o : offered) o = rng.UniformInt(1, 4);
    std::vector<BidTable> bids;
    const int n_apps = rng.UniformInt(1, 5);
    for (int i = 0; i < n_apps; ++i) {
      const double rho0 = rng.Uniform(2.0, 50.0);
      BidTable t = Table(static_cast<AppId>(i), {Row(std::vector<int>(machines, 0), rho0)});
      const int n_rows = rng.UniformInt(1, 3);
      for (int r = 0; r < n_rows; ++r) {
        std::vector<int> ask(machines);
        int total = 0;
        for (int m = 0; m < machines; ++m) {
          ask[m] = rng.UniformInt(0, offered[m]);
          total += ask[m];
        }
        if (total == 0) continue;
        t.rows.push_back(Row(ask, rho0 / (1.0 + total)));
      }
      bids.push_back(std::move(t));
    }
    const PaResult result = PartialAllocation(bids, offered);
    std::vector<int> used(machines, 0);
    for (const PaWinner& w : result.winners) {
      EXPECT_GE(w.c, 0.0);
      EXPECT_LE(w.c, 1.0);
      for (int m = 0; m < machines; ++m) {
        EXPECT_GE(w.granted[m], 0);
        used[m] += w.granted[m];
      }
    }
    for (int m = 0; m < machines; ++m) {
      EXPECT_LE(used[m], offered[m]);
      EXPECT_EQ(result.leftover[m], offered[m] - used[m]);
      EXPECT_GE(result.leftover[m], 0);
    }
  }
}

TEST(PartialAllocation, TruthTellingBeatsExaggerationForTheLiar) {
  // App B exaggerates its valuation (reports much smaller rho than truth).
  // The PA mechanism reacts with a heavier hidden payment against B in the
  // contested market, so B does not end up with more *truthfully valued*
  // GPUs than under honest reporting.
  const auto a = Table(1, {Row({0}, 10.0), Row({4}, 2.5)});
  const auto b_honest = Table(2, {Row({0}, 10.0), Row({4}, 2.5)});
  const auto b_liar = Table(2, {Row({0}, 10.0), Row({4}, 0.1)});

  const PaResult honest = PartialAllocation({a, b_honest}, {4});
  const PaResult lying = PartialAllocation({a, b_liar}, {4});

  // Identical bids: symmetric welfare; exaggeration flips the win to B...
  EXPECT_EQ(lying.winners[1].row, 1);
  // ...but the hidden payment c_B shrinks relative to the honest outcome's
  // winner retention, capping what the liar can extract.
  const int honest_gpus =
      std::max(honest.winners[0].granted[0], honest.winners[1].granted[0]);
  EXPECT_LE(lying.winners[1].granted[0], honest_gpus + 1);
}

TEST(PartialAllocation, LeftoverBoundedByEFraction) {
  // Theory: PA leaves at most a (1 - 1/e) fraction... the paper states "at
  // most 1/e worst-case fraction of total available resources are leftover".
  // Check the 1/e bound on a range of random contested instances.
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const int machines = 2;
    std::vector<int> offered{8, 8};
    std::vector<BidTable> bids;
    const int n_apps = rng.UniformInt(2, 6);
    for (int i = 0; i < n_apps; ++i) {
      const double rho0 = rng.Uniform(4.0, 40.0);
      BidTable t = Table(static_cast<AppId>(i), {Row({0, 0}, rho0)});
      for (int k = 1; k <= 2; ++k) {
        const int ask = 2 * k;
        t.rows.push_back(Row({ask, 0}, rho0 / (1.0 + ask)));
        t.rows.push_back(Row({0, ask}, rho0 / (1.0 + ask)));
      }
      bids.push_back(std::move(t));
    }
    const PaResult r = PartialAllocation(bids, offered);
    int leftover = 0;
    const int total = 16;
    for (int m = 0; m < machines; ++m) leftover += r.leftover[m];
    // The continuous mechanism guarantees at most a 1/e leftover *value*
    // fraction; our row-discretized variant (floor(c * row)) can strand a
    // few more GPUs, all of which the ARBITER re-allocates work-conservingly
    // (Sec. 5.1 step 3). Assert a 3/4 resource-fraction ceiling here; the
    // end-to-end work-conservation is covered by the policy tests.
    EXPECT_LE(leftover, (3 * total) / 4);
  }
}

TEST(PartialAllocation, ParetoEfficiencyOfProportionalFairStage) {
  // At the PF optimum no app can switch to a strictly better row while all
  // others keep theirs (capacity permitting) — otherwise the product would
  // not have been maximal.
  const auto a = Table(1, {Row({0, 0}, 9.0), Row({2, 0}, 5.0), Row({2, 2}, 3.0)});
  const auto b = Table(2, {Row({0, 0}, 7.0), Row({0, 2}, 4.0), Row({2, 2}, 2.5)});
  const std::vector<int> offered{2, 2};
  const PfSolution pf = SolveProportionalFair({a, b}, offered);
  const std::vector<BidTable> bids{a, b};
  std::vector<int> used(2, 0);
  for (std::size_t i = 0; i < bids.size(); ++i)
    for (int m = 0; m < 2; ++m)
      used[m] += bids[i].rows[pf.rows[i]].gpus_per_machine[m];
  for (std::size_t i = 0; i < bids.size(); ++i) {
    for (std::size_t r = 0; r < bids[i].rows.size(); ++r) {
      if (static_cast<int>(r) == pf.rows[i]) continue;
      bool fits = true;
      for (int m = 0; m < 2; ++m) {
        const int next = used[m] - bids[i].rows[pf.rows[i]].gpus_per_machine[m] +
                         bids[i].rows[r].gpus_per_machine[m];
        if (next > offered[m]) fits = false;
      }
      if (fits) {
        EXPECT_LE(bids[i].rows[r].Value(),
                  bids[i].rows[pf.rows[i]].Value() + 1e-12);
      }
    }
  }
}

TEST(PartialAllocation, ThrowsOnInvalidBid) {
  EXPECT_THROW(PartialAllocation({Table(1, {Row({9}, 1.0)})}, {4}),
               std::invalid_argument);
}

TEST(PartialAllocation, GreedyFallbackStaysFeasible) {
  // Force the node budget to zero: the greedy + local-search answer must
  // still be feasible and report exact = false.
  PaConfig cfg;
  cfg.max_nodes = 0;
  std::vector<BidTable> bids;
  for (int i = 0; i < 6; ++i) {
    BidTable t = Table(static_cast<AppId>(i), {Row({0, 0}, 10.0)});
    t.rows.push_back(Row({2, 0}, 5.0));
    t.rows.push_back(Row({0, 2}, 5.0));
    bids.push_back(std::move(t));
  }
  const PaResult r = PartialAllocation(bids, {4, 4}, cfg);
  EXPECT_FALSE(r.exact);
  std::vector<int> used(2, 0);
  for (const PaWinner& w : r.winners)
    for (int m = 0; m < 2; ++m) used[m] += w.granted[m];
  EXPECT_LE(used[0], 4);
  EXPECT_LE(used[1], 4);
}

class PaScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(PaScaleTest, ExactAndGreedyAgreeOnWelfareOrBetter) {
  const int n_apps = GetParam();
  Rng rng(static_cast<std::uint64_t>(n_apps) * 97);
  std::vector<int> offered{6, 6, 6};
  std::vector<BidTable> bids;
  for (int i = 0; i < n_apps; ++i) {
    const double rho0 = rng.Uniform(3.0, 30.0);
    BidTable t = Table(static_cast<AppId>(i), {Row({0, 0, 0}, rho0)});
    for (int r = 0; r < 3; ++r) {
      std::vector<int> ask(3, 0);
      ask[rng.UniformInt(0, 2)] = 2 * rng.UniformInt(1, 3);
      int total = ask[0] + ask[1] + ask[2];
      t.rows.push_back(Row(ask, rho0 / (1.0 + total)));
    }
    bids.push_back(std::move(t));
  }
  PaConfig exact_cfg;
  exact_cfg.max_nodes = 5'000'000;
  const PfSolution exact = SolveProportionalFair(bids, offered, exact_cfg);
  PaConfig greedy_cfg;
  greedy_cfg.max_nodes = 0;
  const PfSolution greedy = SolveProportionalFair(bids, offered, greedy_cfg);
  EXPECT_TRUE(exact.exact);
  EXPECT_GE(exact.log_welfare, greedy.log_welfare - 1e-9);
  // Greedy + local search is only the over-budget fallback; it should land
  // within a constant factor of the optimum on these instances.
  EXPECT_GE(greedy.log_welfare, exact.log_welfare - 2.5);
}

INSTANTIATE_TEST_SUITE_P(Apps, PaScaleTest, ::testing::Values(2, 3, 4, 6, 8));


TEST(PartialAllocation, HiddenPaymentsOffGrantsFullRows) {
  // Ablation switch: with hidden payments disabled the mechanism is plain
  // proportional fairness — winners keep their entire chosen row (c = 1).
  const auto a = Table(1, {Row({0}, 8.0), Row({4}, 2.0)});
  const auto b = Table(2, {Row({0}, 8.0), Row({4}, 2.0)});
  PaConfig cfg;
  cfg.hidden_payments = false;
  const PaResult r = PartialAllocation({a, b}, {4}, cfg);
  int granted = 0;
  for (const PaWinner& w : r.winners) {
    EXPECT_DOUBLE_EQ(w.c, 1.0);
    granted += w.granted[0];
  }
  EXPECT_EQ(granted, 4);  // the whole machine is handed out
  EXPECT_EQ(r.leftover[0], 0);
}

}  // namespace
}  // namespace themis
