// Example: declarative scenario sweeps.
//
//   scenario_sweep [scenarios.json] [--threads N] [--csv FILE]
//
// Loads a JSON scenario file (examples/scenarios.json documents the shape:
// a "defaults" object merged under every entry of a "scenarios" array, each
// naming a topology, trace, policy, and knob settings), runs every scenario
// in parallel on the SweepRunner's thread pool, and prints one metrics row
// per scenario. With no file argument it runs a small built-in grid so the
// example works from any directory. --csv FILE additionally writes the
// per-scenario metric rows (WriteSweepCsv) so grids feed plotting directly.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.h"
#include "sim/scenario.h"

namespace {

constexpr char kBuiltinScenarios[] = R"({
  "defaults": {
    "cluster": { "racks": 2, "machines_per_rack": 4,
                 "gpus_per_machine": 4, "gpus_per_slot": 2 },
    "trace": { "seed": 7, "num_apps": 8, "jobs_per_app_median": 4,
               "jobs_per_app_max": 8, "mean_interarrival": 15 },
    "sim": { "seed": 7, "lease_minutes": 10 }
  },
  "scenarios": [
    { "name": "themis",   "policy": "themis" },
    { "name": "gandiva",  "policy": "gandiva" },
    { "name": "tiresias", "policy": "tiresias" },
    { "name": "slaq",     "policy": "slaq" },
    { "name": "drf",      "policy": "drf" }
  ]
})";

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;

  std::string path, csv;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--csv" && i + 1 < argc) {
      csv = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: %s [scenarios.json] [--threads N] [--csv FILE]\n",
                   argv[0]);
      return 2;
    } else if (arg.rfind("-", 0) == 0) {
      // Unknown (or valueless) flags must not be mistaken for a file path.
      std::fprintf(stderr, "unknown flag: %s\nusage: %s [scenarios.json]"
                   " [--threads N] [--csv FILE]\n", arg.c_str(), argv[0]);
      return 2;
    } else {
      path = arg;
    }
  }

  std::vector<ScenarioSpec> scenarios;
  try {
    scenarios = path.empty() ? LoadScenarios(kBuiltinScenarios)
                             : LoadScenariosFile(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::printf("Running %zu scenarios%s\n\n", scenarios.size(),
              path.empty() ? " (built-in grid)" : (" from " + path).c_str());
  std::printf("%-22s %-10s %10s %8s %12s %14s %8s\n", "scenario", "policy",
              "max_rho", "jain", "avg_ACT", "gpu_time", "unfin");

  int failures = 0;
  const std::vector<ScenarioRun> runs = SweepRunner(threads).Run(scenarios);
  for (const ScenarioRun& run : runs) {
    if (!run.ok) {
      std::printf("%-22s FAILED: %s\n", run.name.c_str(), run.error.c_str());
      ++failures;
      continue;
    }
    const ExperimentResult& r = run.result;
    std::printf("%-22s %-10s %10.2f %8.3f %12.1f %14.0f %8d\n",
                run.name.c_str(), r.policy_name.c_str(), r.max_fairness,
                r.jains_index, r.avg_completion_time, r.gpu_time,
                r.unfinished_apps);
  }
  if (!csv.empty()) {
    try {
      WriteSweepCsv(csv, runs);
      std::printf("\nwrote %zu scenario rows to %s\n", runs.size(),
                  csv.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  return failures == 0 ? 0 : 1;
}
