// Tests for the scenario subsystem: JSON parsing (common/json.h), scenario
// loading (sim/scenario.h), and the thread-pooled SweepRunner — including
// the load-bearing property that a parallel sweep is bit-identical to
// running each experiment serially.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/json.h"
#include "sim/scenario.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace themis {
namespace {

// ---------------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  const JsonValue v = JsonValue::Parse(
      R"({"a": 1.5, "b": "text", "c": [1, 2, 3], "d": true, "e": null,
          "nested": {"x": -2e3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.Find("a")->AsNumber(), 1.5);
  EXPECT_EQ(v.Find("b")->AsString(), "text");
  ASSERT_EQ(v.Find("c")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("c")->items()[1].AsNumber(), 2.0);
  EXPECT_TRUE(v.Find("d")->AsBool());
  EXPECT_TRUE(v.Find("e")->is_null());
  EXPECT_DOUBLE_EQ(v.Find("nested")->Find("x")->AsNumber(), -2000.0);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(Json, ParsesStringEscapes) {
  const JsonValue v = JsonValue::Parse(R"({"s": "a\"b\\c\n\tA"})");
  EXPECT_EQ(v.Find("s")->AsString(), "a\"b\\c\n\tA");
}

TEST(Json, RejectsMalformedInputWithLineNumbers) {
  EXPECT_THROW(JsonValue::Parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("{} trailing"), std::runtime_error);
  try {
    JsonValue::Parse("{\n\n  \"a\": nope\n}");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Json, EnforcesStrictNumberGrammar) {
  EXPECT_THROW(JsonValue::Parse(R"({"n": +5})"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse(R"({"n": .5})"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse(R"({"n": 1.})"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse(R"({"n": 1e})"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse(R"({"n": -})"), std::runtime_error);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-0.5e+2").AsNumber(), -50.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("0.25").AsNumber(), 0.25);
}

TEST(Json, TypeMismatchThrows) {
  const JsonValue v = JsonValue::Parse(R"({"n": 3})");
  EXPECT_THROW(v.Find("n")->AsString(), std::runtime_error);
  EXPECT_THROW(v.AsNumber(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Scenario loading
// ---------------------------------------------------------------------------

TEST(Scenario, LoadsSpecsWithDefaultsMerged) {
  const auto specs = LoadScenarios(R"({
    "defaults": {
      "policy": "themis",
      "cluster": {"racks": 2, "machines_per_rack": 4, "gpus_per_machine": 4,
                  "gpus_per_slot": 2},
      "trace": {"seed": 9, "num_apps": 12},
      "sim": {"seed": 9, "lease_minutes": 10},
      "themis": {"fairness_knob": 0.6}
    },
    "scenarios": [
      {"name": "base"},
      {"name": "gandiva", "policy": "gandiva"},
      {"name": "hot", "trace": {"contention_factor": 4}}
    ]
  })");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "base");
  EXPECT_EQ(specs[0].config.policy, PolicyKind::kThemis);
  EXPECT_EQ(specs[0].config.cluster.TotalGpus(), 32);
  EXPECT_EQ(specs[0].config.trace.num_apps, 12);
  EXPECT_DOUBLE_EQ(specs[0].config.sim.lease_minutes, 10.0);
  EXPECT_DOUBLE_EQ(specs[0].config.themis.fairness_knob, 0.6);
  EXPECT_EQ(specs[1].config.policy, PolicyKind::kGandiva);
  // Scenario overrides layer on top of defaults, not on each other.
  EXPECT_DOUBLE_EQ(specs[2].config.trace.contention_factor, 4.0);
  EXPECT_EQ(specs[2].config.trace.num_apps, 12);
  EXPECT_EQ(specs[2].config.policy, PolicyKind::kThemis);
}

TEST(Scenario, BaseSeedDerivesPerScenarioSeeds) {
  const auto specs = LoadScenarios(R"({
    "base_seed": 42,
    "scenarios": [
      {"name": "a"},
      {"name": "b"},
      {"name": "pinned", "trace": {"seed": 7}, "sim": {"seed": 7}}
    ]
  })");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].config.trace.seed, DeriveScenarioSeed(42, 0));
  EXPECT_EQ(specs[0].config.sim.seed, DeriveScenarioSeed(42, 0));
  EXPECT_EQ(specs[1].config.trace.seed, DeriveScenarioSeed(42, 1));
  EXPECT_NE(specs[0].config.trace.seed, specs[1].config.trace.seed);
  // Explicit per-scenario seeds win over the derived default.
  EXPECT_EQ(specs[2].config.trace.seed, 7u);
  EXPECT_EQ(specs[2].config.sim.seed, 7u);
  // Seeds pinned in defaults also win.
  const auto pinned = LoadScenarios(R"({
    "base_seed": 42,
    "defaults": {"trace": {"seed": 5}},
    "scenarios": [{"name": "a"}, {"name": "b"}]
  })");
  EXPECT_EQ(pinned[0].config.trace.seed, 5u);
  EXPECT_EQ(pinned[1].config.trace.seed, 5u);
  EXPECT_EQ(pinned[0].config.sim.seed, DeriveScenarioSeed(42, 0));
  // A trace/sim object that sets other knobs but no seed must not disturb
  // the derived 64-bit seed (a double round-trip would truncate it).
  const auto partial = LoadScenarios(R"({
    "base_seed": 42,
    "scenarios": [{"name": "a", "sim": {"lease_minutes": 5},
                   "trace": {"num_apps": 3}}]
  })");
  EXPECT_EQ(partial[0].config.sim.seed, DeriveScenarioSeed(42, 0));
  EXPECT_EQ(partial[0].config.trace.seed, DeriveScenarioSeed(42, 0));
}

TEST(Scenario, PresetClustersResolve) {
  const auto specs = LoadScenarios(R"({
    "scenarios": [
      {"name": "a", "cluster": {"preset": "sim256"}},
      {"name": "b", "cluster": {"preset": "testbed50"}},
      {"name": "c", "cluster": {"preset": "sim256-mixed"}},
      {"name": "d", "cluster": {"preset": "testbed50-mixed"}}
    ]
  })");
  EXPECT_EQ(specs[0].config.cluster.TotalGpus(), 256);
  EXPECT_EQ(specs[1].config.cluster.TotalGpus(), 50);
  EXPECT_EQ(specs[2].config.cluster.TotalGpus(), 256);
  EXPECT_GT(specs[2].config.cluster.TotalEffectiveGpus(), 256.0);
  EXPECT_EQ(specs[3].config.cluster.TotalGpus(), 50);
  EXPECT_GT(specs[3].config.cluster.TotalEffectiveGpus(), 50.0);
}

TEST(Scenario, GenerationTableAppliesPerRackOrWholeCluster) {
  const auto specs = LoadScenarios(R"({
    "scenarios": [
      {"name": "whole", "cluster": {"racks": 2, "machines_per_rack": 2,
        "gpus_per_machine": 2, "generations": "V100"}},
      {"name": "per-rack", "cluster": {"racks": 2, "machines_per_rack": 2,
        "gpus_per_machine": 2, "generations": ["K80", "A100"]}},
      {"name": "preset", "cluster": {"preset": "sim256",
        "generations": ["K80", "V100", "V100", "A100"]}}
    ]
  })");
  for (const RackSpec& rack : specs[0].config.cluster.racks)
    for (const MachineSpec& m : rack.machines)
      EXPECT_EQ(m.generation.name, "V100");
  EXPECT_EQ(specs[1].config.cluster.racks[0].machines[0].generation.name,
            "K80");
  EXPECT_EQ(specs[1].config.cluster.racks[1].machines[1].generation.name,
            "A100");
  EXPECT_DOUBLE_EQ(specs[1].config.cluster.TotalEffectiveGpus(),
                   4.0 * 1.0 + 4.0 * 6.0);
  // "generations" composes with "preset" (it re-prices, not reshapes).
  EXPECT_EQ(specs[2].config.cluster.TotalGpus(), 256);
  EXPECT_EQ(specs[2].config.cluster.racks[3].machines[0].generation.name,
            "A100");
}

TEST(Scenario, UnknownGenerationFailsWithPointedError) {
  try {
    LoadScenarios(R"({"scenarios": [{"name": "a",
      "cluster": {"racks": 2, "machines_per_rack": 1,
                  "generations": ["K80", "H100"]}}]})");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("generations[1]"), std::string::npos) << what;
    EXPECT_NE(what.find("H100"), std::string::npos) << what;
    EXPECT_NE(what.find("known generations"), std::string::npos) << what;
  }
}

TEST(Scenario, GenerationTableLengthMustMatchRacks) {
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [{"name": "a",
      "cluster": {"racks": 3, "machines_per_rack": 1,
                  "generations": ["K80", "V100"]}}]})"),
               std::runtime_error);
  // A single unknown name (the whole-cluster form) is just as fatal.
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [{"name": "a",
      "cluster": {"racks": 1, "machines_per_rack": 1,
                  "generations": "TPU"}}]})"),
               std::runtime_error);
}

TEST(Scenario, UnknownKeysFailLoudly) {
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [{"name": "a", "polcy": "drf"}]})"),
               std::runtime_error);
  EXPECT_THROW(
      LoadScenarios(R"({"scenarios": [{"name": "a", "sim": {"lease": 5}}]})"),
      std::runtime_error);
  EXPECT_THROW(LoadScenarios(R"({"scenarios": []})"), std::runtime_error);
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [{"name": "a",
      "policy": "nope"}]})"), std::runtime_error);
}

TEST(Scenario, RejectsInvalidSeedsAndPresetDimensionMix) {
  // Negative / fractional seeds would be UB or lossy as uint64 casts.
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [
      {"name": "a", "trace": {"seed": -1}}]})"), std::runtime_error);
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [
      {"name": "a", "sim": {"seed": 1.5}}]})"), std::runtime_error);
  EXPECT_THROW(LoadScenarios(R"({"base_seed": -3, "scenarios": [
      {"name": "a"}]})"), std::runtime_error);
  // "preset" with explicit dimensions would silently drop the dimensions.
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [
      {"name": "a", "cluster": {"preset": "sim256", "racks": 8}}]})"),
               std::runtime_error);
  // Same for a replayed CSV combined with trace-generation knobs.
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [
      {"name": "a", "trace_csv": "t.csv", "trace": {"num_apps": 5}}]})"),
               std::runtime_error);
  // Duplicate keys would silently shadow the later value.
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [
      {"name": "a", "sim": {"lease_minutes": 5, "lease_minutes": 50}}]})"),
               std::runtime_error);
  // Out-of-int-range knobs would be UB to cast.
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [
      {"name": "a", "trace": {"num_apps": 3e9}}]})"), std::runtime_error);
}

TEST(Scenario, InvalidSimConfigRejectedAtLoadTime) {
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [
      {"name": "a", "sim": {"lease_minutes": 0}}]})"),
               std::invalid_argument);
  EXPECT_THROW(LoadScenarios(R"({"scenarios": [
      {"name": "a", "sim": {"restart_overhead_minutes": -1}}]})"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------------

ExperimentConfig SmallConfig(PolicyKind policy, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.cluster = ClusterSpec::Uniform(2, 4, 4, 2);
  cfg.policy = policy;
  cfg.trace.seed = seed;
  cfg.trace.num_apps = 8;
  cfg.trace.jobs_per_app_median = 4.0;
  cfg.trace.jobs_per_app_max = 8;
  cfg.sim.seed = seed;
  cfg.sim.lease_minutes = 10.0;
  return cfg;
}

TEST(SweepRunner, ParallelMatchesSerialBitExactly) {
  std::vector<ScenarioSpec> specs;
  for (PolicyKind policy : {PolicyKind::kThemis, PolicyKind::kGandiva,
                            PolicyKind::kTiresias, PolicyKind::kSlaq,
                            PolicyKind::kDrf})
    for (std::uint64_t seed : {11ULL, 12ULL})
      specs.push_back({std::string(ToString(policy)), SmallConfig(policy, seed),
                       "", ""});

  const auto parallel = SweepRunner(/*num_threads=*/4).Run(specs);
  const auto serial = SweepRunner(/*num_threads=*/1).Run(specs);
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    EXPECT_EQ(parallel[i].result.rhos, serial[i].result.rhos) << specs[i].name;
    EXPECT_EQ(parallel[i].result.completion_times,
              serial[i].result.completion_times);
    EXPECT_DOUBLE_EQ(parallel[i].result.gpu_time, serial[i].result.gpu_time);
    // And against a direct serial RunExperiment call.
    const ExperimentResult direct = RunExperiment(specs[i].config);
    EXPECT_EQ(parallel[i].result.rhos, direct.rhos);
  }
}

TEST(SweepRunner, FailedScenarioReportsErrorWithoutKillingSweep) {
  std::vector<ScenarioSpec> specs;
  specs.push_back({"ok", SmallConfig(PolicyKind::kThemis, 5), "", ""});
  ScenarioSpec bad{"bad", SmallConfig(PolicyKind::kThemis, 5), "", ""};
  bad.trace_csv = "/nonexistent/trace.csv";
  specs.push_back(bad);
  const auto runs = SweepRunner(2).Run(specs);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_TRUE(runs[0].ok);
  EXPECT_FALSE(runs[1].ok);
  EXPECT_FALSE(runs[1].error.empty());
}

TEST(SweepRunner, ReplaysArchivedCsvTrace) {
  // Archive a generated trace, then sweep a scenario replaying it; results
  // must match generating from the same config directly.
  ExperimentConfig cfg = SmallConfig(PolicyKind::kThemis, 21);
  TraceGenerator gen(cfg.trace);
  const std::string path = ::testing::TempDir() + "/scenario_trace.csv";
  WriteTraceCsvFile(path, gen.Generate());

  ScenarioSpec spec{"replay", cfg, path, ""};
  const auto runs = SweepRunner(1).Run({spec});
  ASSERT_TRUE(runs[0].ok) << runs[0].error;
  const ExperimentResult direct = RunExperiment(cfg);
  EXPECT_EQ(runs[0].result.rhos, direct.rhos);
  std::remove(path.c_str());
}

TEST(SweepRunner, DeriveScenarioSeedIsStableAndDecorrelated) {
  EXPECT_EQ(DeriveScenarioSeed(42, 0), DeriveScenarioSeed(42, 0));
  EXPECT_NE(DeriveScenarioSeed(42, 0), DeriveScenarioSeed(42, 1));
  EXPECT_NE(DeriveScenarioSeed(42, 0), DeriveScenarioSeed(43, 0));
}

TEST(SweepRunner, PolicySeedGridNamesAndSeedsScenarios) {
  const auto specs = PolicySeedGrid(SmallConfig(PolicyKind::kThemis, 0),
                                    {PolicyKind::kThemis, PolicyKind::kDrf},
                                    {7, 8});
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "Themis/seed7");
  EXPECT_EQ(specs[3].name, "DRF/seed8");
  EXPECT_EQ(specs[3].config.policy, PolicyKind::kDrf);
  EXPECT_EQ(specs[3].config.trace.seed, 8u);
  EXPECT_EQ(specs[3].config.sim.seed, 8u);
}

TEST(SweepCsv, OneRowPerRunWithHeaderAndQuoting) {
  ScenarioRun ok;
  ok.name = "themis,f=0.8";  // comma forces quoting
  ok.ok = true;
  ok.result.policy_name = "Themis";
  ok.result.max_fairness = 2.5;
  ok.result.unfinished_apps = 0;
  ok.result.scheduling_passes = 17;
  ScenarioRun failed;
  failed.name = "bad";
  failed.error = "boom \"quoted\"";

  const std::string csv = SweepCsv({ok, failed});
  std::vector<std::string> lines;
  for (std::size_t pos = 0, next; pos < csv.size(); pos = next + 1) {
    next = csv.find('\n', pos);
    lines.push_back(csv.substr(pos, next - pos));
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "name,policy,ok,max_rho,median_rho,min_rho,jain,avg_act_min,"
            "gpu_time_min,peak_contention,unfinished,machine_failures,"
            "scheduling_passes,error");
  EXPECT_EQ(lines[1].substr(0, 27), "\"themis,f=0.8\",Themis,1,2.5");
  EXPECT_NE(lines[1].find(",17,"), std::string::npos);
  EXPECT_NE(lines[2].find("\"boom \"\"quoted\"\"\""), std::string::npos);
  EXPECT_EQ(lines[2].substr(0, 7), "bad,,0,");
}

TEST(SweepCsv, WritesScenarioGridResultsToDisk) {
  const auto specs = PolicySeedGrid(SmallConfig(PolicyKind::kThemis, 3),
                                    {PolicyKind::kThemis, PolicyKind::kDrf},
                                    {3});
  const auto runs = SweepRunner(2).Run(specs);
  const std::string path = ::testing::TempDir() + "/sweep_results.csv";
  WriteSweepCsv(path, runs);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, 1 + runs.size());  // header + one row per scenario
  std::remove(path.c_str());
}

}  // namespace
}  // namespace themis
