// Event-driven GPU-cluster simulator (Sec. 8.1 "Simulator").
//
// The simulator advances job progress between events, reclaims expired
// leases, invokes the per-app tuners (HyperBand / HyperDrive), and runs one
// ARBITER round per scheduling pass: it publishes a ResourceOffer, hands it
// to the IRoundScheduler, and applies the returned GrantSet itself through
// ApplyGrants — policies never mutate the cluster. It then applies the
// checkpoint/restart overhead whenever a job's gang changes. An app finishes
// when its first job reaches the target accuracy — that job is the "best
// model" that defines the app's finish time (Sec. 2.1) — at which point the
// remaining jobs are terminated and their GPUs reclaimed.
//
// Workloads arrive either as a preloaded vector (every AppState built up
// front — the classic path, bit-identical to before) or through a
// TraceReader: arrivals are injected as the stream advances, so the event
// queue and AppState store hold only apps near the simulation frontier.
// With `retire_finished_apps` set, an app's JobState/tuner/placement state
// is destroyed as soon as its final metrics are flushed — live memory then
// tracks *concurrent* apps, not total apps, which is what lets a
// million-job trace replay in bounded memory.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "estimator/work_estimator.h"
#include "metrics/collector.h"
#include "sim/events.h"
#include "sim/policy.h"
#include "sim/state.h"
#include "workload/trace_gen.h"

namespace themis {

struct SimConfig {
  /// GPU lease duration (Sec. 8.2's sensitivity knob; default 20 min).
  Time lease_minutes = 20.0;
  /// Progress stall applied when a job's gang changes: checkpoint to HDFS
  /// (5-10 s) plus container churn (35-50 s), Sec. 8.3.2.
  Time restart_overhead_minutes = 0.75;
  /// Hard ceiling on simulated time; apps unfinished past this point are
  /// reported as such (tests assert none are).
  Time max_time = 1.0e7;
  EstimatorConfig estimator;
  std::uint64_t seed = 1234;

  /// Failure injection (Sec. 6 "Scheduling after failures" — the study the
  /// paper leaves to future work). Mean time between failures per machine in
  /// minutes; 0 disables injection. When a machine fails every GPU lease on
  /// it is revoked (the affected jobs restart from checkpoints elsewhere)
  /// and the machine rejoins after `machine_repair_minutes`.
  Time machine_mtbf_minutes = 0.0;
  Time machine_repair_minutes = 60.0;

  /// Destroy an app's state once it finishes and its metrics are recorded.
  /// Requires nothing of the workload source but only pays off with a
  /// TraceReader, where live memory then tracks concurrent apps.
  bool retire_finished_apps = false;
  /// How far past the event-queue frontier to inject streamed arrivals.
  /// 0 keeps the queue minimal; larger values trade memory for fewer reader
  /// touches. Ignored for preloaded workloads.
  Time arrival_lookahead_minutes = 0.0;
  /// Metrics memory mode (exact by default; see MetricsConfig).
  MetricsConfig metrics;

  /// Reject configurations that would silently produce nonsense runs
  /// (non-positive lease, negative overhead, ...). Throws
  /// std::invalid_argument naming the offending knob; called by the
  /// Simulator constructor before any state is built.
  void Validate() const;
};

struct SimResult {
  MetricsCollector metrics;
  /// Apps that never finished before max_time (should be empty).
  std::vector<AppId> unfinished;
  Time end_time = 0.0;
  int scheduling_passes = 0;
  /// Peak over time of (sum of active apps' GPU demand) / cluster GPUs —
  /// the paper's contention yardstick (Sec. 8.3 reports 4.76x and calls it
  /// the ideal max finish-time fairness).
  double peak_contention = 0.0;
  /// Failure-injection accounting.
  int machine_failures = 0;
  int gpu_leases_revoked_by_failures = 0;
  /// Apps seen end to end (streamed or preloaded; includes unfinished).
  std::size_t total_apps = 0;
  /// Peak simultaneously-resident AppStates. Equals total_apps unless
  /// retire_finished_apps; with retirement it tracks peak concurrency.
  std::size_t peak_live_apps = 0;
};

class Simulator {
 public:
  /// Preloaded workload: every AppState is built up front.
  Simulator(ClusterSpec cluster_spec, std::vector<AppSpec> apps,
            std::unique_ptr<IRoundScheduler> scheduler, SimConfig config = {});

  /// Streamed workload: apps are pulled from the reader (which must yield
  /// them in nondecreasing arrival order) as simulated time approaches
  /// their arrival.
  Simulator(ClusterSpec cluster_spec, std::unique_ptr<TraceReader> trace,
            std::unique_ptr<IRoundScheduler> scheduler, SimConfig config = {});

  /// Run to completion (all apps finished) or to config.max_time.
  SimResult Run();

  const Cluster& cluster() const { return cluster_; }
  /// Resident apps, indexed by AppId minus the retirement offset; retired
  /// slots are null until the front of the window is popped.
  const std::deque<std::unique_ptr<AppState>>& apps() const { return apps_; }

  /// Observe every (offer, grants) round as it is applied — the federation
  /// layer uses this to check cross-shard invariants; tests use it to audit
  /// grant streams. Called after ApplyGrants, before overhead accounting.
  using RoundObserver =
      std::function<void(const ResourceOffer&, const GrantSet&)>;
  void set_round_observer(RoundObserver observer) {
    round_observer_ = std::move(observer);
  }

 private:
  void AdvanceTo(Time t);
  void SchedulingPass(Time t);
  void FinishJob(Time t, AppState& app, JobState& job);
  void FinishApp(Time t, AppState& app);
  void KillJob(AppState& app, JobState& job);
  void RescheduleFinishEvents(Time t);
  void PushLeaseTick(Time t);
  AppState* FindApp(AppId id);
  /// Maintain the active-app set (arrived && !finished, ascending AppId).
  void ActivateApp(AppState* app);
  void DeactivateApp(AppId id);

  /// Build the AppState for `spec`, assign it the next AppId, and enqueue
  /// its arrival event. Shared by the preloading constructor and the
  /// streaming refill.
  void InjectApp(AppSpec&& spec);
  /// Pull streamed arrivals up to the lookahead horizon (and always at
  /// least one when the queue is empty or everything injected finished).
  void RefillArrivals();
  /// True once the trace source has no further apps (trivially true for
  /// preloaded workloads).
  bool ReaderExhausted() const { return !have_pending_; }
  /// Destroy a finished app's state (no-op unless retire_finished_apps).
  void RetireApp(AppId id);

  Cluster cluster_;
  /// Resident apps; apps_[id - apps_base_] is the state for `id`. Retired
  /// entries are nulled, and the deque front is popped as it nulls out.
  std::deque<std::unique_ptr<AppState>> apps_;
  AppId apps_base_ = 0;
  /// Apps that arrived and have not finished, sorted by AppId. Every
  /// per-pass walk (progress advance, tuner step, finish-event rescheduling)
  /// iterates this set instead of rescanning apps_.
  AppList active_apps_;
  std::unique_ptr<IRoundScheduler> scheduler_;
  RoundObserver round_observer_;
  SimConfig config_;
  WorkEstimator estimator_;
  Rng rng_;
  EventQueue queue_;
  MetricsCollector metrics_;
  Time last_advance_ = 0.0;
  std::set<Time> pushed_ticks_;
  int passes_ = 0;
  int finished_apps_ = 0;
  double peak_contention_ = 0.0;
  Rng failure_rng_{0xFA11};
  int machine_failures_ = 0;
  int leases_revoked_by_failures_ = 0;

  // Streaming source (null for preloaded workloads).
  std::unique_ptr<TraceReader> reader_;
  AppSpec pending_spec_;
  bool have_pending_ = false;
  Time last_injected_arrival_ = -kInfiniteTime;
  AppId next_app_id_ = 0;
  std::size_t live_apps_ = 0;
  std::size_t peak_live_apps_ = 0;
};

}  // namespace themis
