// Tests for workload/: loss curves, app/job specs, and the synthetic trace
// generator's published marginals (Sec. 8.1).
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include <sstream>

#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace themis {
namespace {

TEST(LossCurve, MonotoneDecreasing) {
  const LossCurve curve(10.0, 0.5, 0.05);
  double prev = curve.LossAt(0.0);
  for (double i = 1.0; i < 1000.0; i *= 2.0) {
    const double v = curve.LossAt(i);
    EXPECT_LT(v, prev);
    EXPECT_GT(v, 0.05);
    prev = v;
  }
}

TEST(LossCurve, IterationsToTargetInvertsLossAt) {
  const LossCurve curve(10.0, 0.7, 0.0);
  const double it = curve.IterationsToTarget(0.5);
  EXPECT_NEAR(curve.LossAt(it), 0.5, 1e-9);
}

TEST(LossCurve, TargetBelowFloorUnreachable) {
  const LossCurve curve(10.0, 0.7, 0.2);
  EXPECT_TRUE(std::isinf(curve.IterationsToTarget(0.1)));
  EXPECT_TRUE(std::isinf(curve.IterationsToTarget(0.2)));
}

TEST(LossCurve, TargetAlreadyMetIsZero) {
  const LossCurve curve(10.0, 0.7, 0.0);
  EXPECT_DOUBLE_EQ(curve.IterationsToTarget(100.0), 0.0);
}

TEST(LossCurve, LossDecreasePositiveForward) {
  const LossCurve curve(10.0, 0.5, 0.0);
  EXPECT_GT(curve.LossDecrease(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(curve.LossDecrease(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(curve.LossDecrease(100.0, 50.0), 0.0);
}

TEST(LossCurve, NegativeIterationClamped) {
  const LossCurve curve(10.0, 0.5, 0.0);
  EXPECT_DOUBLE_EQ(curve.LossAt(-5.0), curve.LossAt(0.0));
}

TEST(LossCurve, InvalidParamsThrow) {
  EXPECT_THROW(LossCurve(0.0, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(LossCurve(1.0, -0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(LossCurve(1.0, 0.5, -1.0), std::invalid_argument);
}

TEST(JobSpec, MaxParallelismAndWorkPerIteration) {
  JobSpec job;
  job.num_tasks = 3;
  job.gpus_per_task = 4;
  job.total_work = 120.0;
  job.total_iterations = 600.0;
  EXPECT_EQ(job.MaxParallelism(), 12);
  EXPECT_DOUBLE_EQ(job.WorkPerIteration(), 0.2);
}

TEST(AppSpec, IdealRunningTimeIsFastestJob) {
  AppSpec app;
  JobSpec a;
  a.total_work = 100.0;
  a.num_tasks = 1;
  a.gpus_per_task = 4;  // 100/4 = 25
  JobSpec b;
  b.total_work = 40.0;
  b.num_tasks = 1;
  b.gpus_per_task = 2;  // 40/2 = 20 <- min
  app.jobs = {a, b};
  EXPECT_DOUBLE_EQ(app.IdealRunningTime(), 20.0);
  EXPECT_DOUBLE_EQ(app.TotalWork(), 140.0);
  EXPECT_EQ(app.MaxJobParallelism(), 4);
}

TEST(TraceGenerator, DeterministicAcrossRuns) {
  TraceConfig cfg;
  cfg.seed = 77;
  cfg.num_apps = 20;
  auto a = TraceGenerator(cfg).Generate();
  auto b = TraceGenerator(cfg).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    ASSERT_EQ(a[i].jobs.size(), b[i].jobs.size());
    for (std::size_t j = 0; j < a[i].jobs.size(); ++j) {
      EXPECT_EQ(a[i].jobs[j].total_work, b[i].jobs[j].total_work);
      EXPECT_EQ(a[i].jobs[j].gpus_per_task, b[i].jobs[j].gpus_per_task);
    }
  }
}

TEST(TraceGenerator, DifferentSeedsProduceDifferentTraces) {
  TraceConfig cfg;
  cfg.num_apps = 10;
  cfg.seed = 1;
  auto a = TraceGenerator(cfg).Generate();
  cfg.seed = 2;
  auto b = TraceGenerator(cfg).Generate();
  bool any_diff = false;
  for (std::size_t i = 1; i < a.size(); ++i)
    if (a[i].arrival != b[i].arrival) any_diff = true;
  EXPECT_TRUE(any_diff);
}

class TraceMarginalsTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<AppSpec> GenerateBig() {
    TraceConfig cfg;
    cfg.seed = GetParam();
    cfg.num_apps = 400;
    return TraceGenerator(cfg).Generate();
  }
};

TEST_P(TraceMarginalsTest, JobsPerAppInPublishedRange) {
  const auto apps = GenerateBig();
  std::vector<double> counts;
  for (const auto& app : apps) {
    EXPECT_GE(app.jobs.size(), 1u);
    EXPECT_LE(app.jobs.size(), 98u);
    counts.push_back(static_cast<double>(app.jobs.size()));
  }
  // Paper: median 23.
  EXPECT_NEAR(Percentile(counts, 50.0), 23.0, 6.0);
}

TEST_P(TraceMarginalsTest, TaskDurationMediansMatchTrace) {
  const auto apps = GenerateBig();
  // Recover the "duration at max parallelism" = total_work / max_parallelism.
  std::vector<double> durations;
  for (const auto& app : apps)
    for (const auto& job : app.jobs)
      durations.push_back(job.total_work / job.MaxParallelism());
  // Mixture of short (median 59) and long (median 123) -> overall median
  // close to the short median.
  const double med = Percentile(durations, 50.0);
  EXPECT_GT(med, 45.0);
  EXPECT_LT(med, 90.0);
}

TEST_P(TraceMarginalsTest, GpuDemandMixIsMostlyFour) {
  const auto apps = GenerateBig();
  int four = 0, two = 0, other = 0;
  for (const auto& app : apps)
    for (const auto& job : app.jobs) {
      if (job.gpus_per_task == 4) ++four;
      else if (job.gpus_per_task == 2) ++two;
      else ++other;
    }
  EXPECT_EQ(other, 0);
  EXPECT_GT(four, two);  // "most tasks require 4 GPUs"
}

TEST_P(TraceMarginalsTest, ArrivalsArePoissonWithConfiguredMean) {
  const auto apps = GenerateBig();
  std::vector<double> gaps;
  for (std::size_t i = 1; i < apps.size(); ++i)
    gaps.push_back(apps[i].arrival - apps[i - 1].arrival);
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  EXPECT_NEAR(mean, 20.0, 3.0);
  for (double g : gaps) EXPECT_GE(g, 0.0);
}

TEST_P(TraceMarginalsTest, SensitiveFractionNearForty) {
  const auto apps = GenerateBig();
  int sensitive = 0;
  for (const auto& app : apps)
    if (app.jobs.front().model.network_intensive) ++sensitive;
  const double frac = static_cast<double>(sensitive) / apps.size();
  EXPECT_NEAR(frac, 0.4, 0.08);
}

TEST_P(TraceMarginalsTest, LossCurvesReachTargetAtTotalIterations) {
  const auto apps = GenerateBig();
  for (const auto& app : apps)
    for (const auto& job : app.jobs) {
      const double it = job.loss.IterationsToTarget(app.target_loss);
      ASSERT_TRUE(std::isfinite(it));
      EXPECT_NEAR(it, job.total_iterations, 1e-6 * job.total_iterations + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceMarginalsTest,
                         ::testing::Values(1u, 42u, 1234u));

TEST(TraceGenerator, ContentionFactorCompressesArrivals) {
  TraceConfig cfg;
  cfg.num_apps = 200;
  cfg.seed = 5;
  cfg.contention_factor = 4.0;
  const auto apps = TraceGenerator(cfg).Generate();
  const double span = apps.back().arrival;
  cfg.contention_factor = 1.0;
  const auto base = TraceGenerator(cfg).Generate();
  EXPECT_LT(span, base.back().arrival / 2.0);
}

TEST(TraceGenerator, DurationScaleShrinksWork) {
  TraceConfig cfg;
  cfg.num_apps = 50;
  cfg.seed = 5;
  const auto base = TraceGenerator(cfg).Generate();
  cfg.duration_scale = 0.2;
  const auto scaled = TraceGenerator(cfg).Generate();
  double base_work = 0.0, scaled_work = 0.0;
  for (const auto& a : base) base_work += a.TotalWork();
  for (const auto& a : scaled) scaled_work += a.TotalWork();
  EXPECT_NEAR(scaled_work / base_work, 0.2, 0.02);
}

TEST(TraceGenerator, SingleJobAppsUseNoTuner) {
  TraceConfig cfg;
  cfg.num_apps = 100;
  cfg.jobs_per_app_median = 1.0;
  cfg.jobs_per_app_sigma = 0.0;
  cfg.jobs_per_app_max = 1;
  const auto apps = TraceGenerator(cfg).Generate();
  for (const auto& app : apps) {
    ASSERT_EQ(app.jobs.size(), 1u);
    EXPECT_EQ(app.tuner, TunerKind::kNone);
  }
}


TEST(TraceIo, RoundTripPreservesEverySpecField) {
  TraceConfig cfg;
  cfg.seed = 101;
  cfg.num_apps = 25;
  const auto apps = TraceGenerator(cfg).Generate();

  std::stringstream ss;
  WriteTraceCsv(ss, apps);
  const auto loaded = ReadTraceCsv(ss);

  ASSERT_EQ(loaded.size(), apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    EXPECT_EQ(loaded[i].name, apps[i].name);
    EXPECT_DOUBLE_EQ(loaded[i].arrival, apps[i].arrival);
    EXPECT_EQ(loaded[i].tuner, apps[i].tuner);
    EXPECT_DOUBLE_EQ(loaded[i].target_loss, apps[i].target_loss);
    ASSERT_EQ(loaded[i].jobs.size(), apps[i].jobs.size());
    for (std::size_t j = 0; j < apps[i].jobs.size(); ++j) {
      const JobSpec& a = apps[i].jobs[j];
      const JobSpec& b = loaded[i].jobs[j];
      EXPECT_EQ(b.num_tasks, a.num_tasks);
      EXPECT_EQ(b.gpus_per_task, a.gpus_per_task);
      EXPECT_DOUBLE_EQ(b.total_work, a.total_work);
      EXPECT_DOUBLE_EQ(b.total_iterations, a.total_iterations);
      EXPECT_DOUBLE_EQ(b.loss.scale(), a.loss.scale());
      EXPECT_DOUBLE_EQ(b.loss.decay(), a.loss.decay());
      EXPECT_EQ(b.model.name, a.model.name);
      EXPECT_EQ(b.max_span, a.max_span);
    }
  }
}

TEST(TraceIo, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(ReadTraceCsv(empty), std::runtime_error);

  std::stringstream bad_header("not,a,header\n");
  EXPECT_THROW(ReadTraceCsv(bad_header), std::runtime_error);

  TraceConfig cfg;
  cfg.num_apps = 2;
  const auto apps = TraceGenerator(cfg).Generate();
  std::stringstream good;
  WriteTraceCsv(good, apps);
  std::string text = good.str();

  // Truncate a row to fewer than 14 fields.
  std::stringstream truncated(text.substr(0, text.find('\n') + 1) +
                              "0,app-0,1.0,hyperband\n");
  EXPECT_THROW(ReadTraceCsv(truncated), std::runtime_error);

  // Non-contiguous app index.
  std::stringstream skipped(
      text.substr(0, text.find('\n') + 1) +
      "5,app-5,1.0,none,0.1,1,4,10,100,1.0,0.5,0,VGG16,cross-rack\n");
  EXPECT_THROW(ReadTraceCsv(skipped), std::runtime_error);

  // Unknown model name.
  std::stringstream bad_model(
      text.substr(0, text.find('\n') + 1) +
      "0,app-0,1.0,none,0.1,1,4,10,100,1.0,0.5,0,GPT9,cross-rack\n");
  EXPECT_THROW(ReadTraceCsv(bad_model), std::runtime_error);
}

TEST(TraceIo, EnumParsersRejectGarbage) {
  EXPECT_THROW(TunerKindFromString("magic"), std::runtime_error);
  EXPECT_THROW(LocalityLevelFromString("galaxy"), std::runtime_error);
  EXPECT_EQ(TunerKindFromString("hyperdrive"), TunerKind::kHyperDrive);
  EXPECT_EQ(LocalityLevelFromString("machine"), LocalityLevel::kMachine);
}

TEST(TraceIo, LoadedTraceReplaysIdentically) {
  TraceConfig cfg;
  cfg.seed = 55;
  cfg.num_apps = 10;
  const auto apps = TraceGenerator(cfg).Generate();
  std::stringstream ss;
  WriteTraceCsv(ss, apps);
  const auto loaded = ReadTraceCsv(ss);
  // Same specs in, same sim out — exercised in integration tests via
  // RunExperimentWithApps determinism; here just sanity-check total work.
  double a = 0.0, b = 0.0;
  for (const auto& app : apps) a += app.TotalWork();
  for (const auto& app : loaded) b += app.TotalWork();
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace themis
