#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace themis {

double JainsIndex(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("Percentile: empty input");
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

std::vector<CdfPoint> Cdf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<CdfPoint> out;
  out.reserve(values.size());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::string FormatCdf(const std::vector<CdfPoint>& cdf, std::size_t max_rows) {
  std::string out;
  if (cdf.empty()) return out;
  const std::size_t n = cdf.size();
  const std::size_t rows = std::min(max_rows, n);
  char buf[64];
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t idx = (rows == 1) ? n - 1 : r * (n - 1) / (rows - 1);
    std::snprintf(buf, sizeof(buf), "%12.2f  %6.3f\n", cdf[idx].value,
                  cdf[idx].fraction);
    out += buf;
  }
  return out;
}

void Summary::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

double Summary::min() const { return count_ ? min_ : 0.0; }
double Summary::max() const { return count_ ? max_ : 0.0; }
double Summary::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

}  // namespace themis
