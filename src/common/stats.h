// Small statistics toolkit used by metrics collection and the benchmark
// harness: percentiles, CDF extraction, Jain's fairness index, and a
// streaming summary accumulator — plus the constant-memory sketches the
// bounded-memory metrics mode is built on (P² streaming quantiles, uniform
// reservoir sampling, running moments). The sketches never allocate beyond
// their fixed budget, so a million-app replay costs the same metric memory
// as a fifty-app one.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace themis {

/// Jain's fairness index: (sum x)^2 / (n * sum x^2). Returns 1.0 for an
/// empty or perfectly uniform sample; always in (0, 1].
double JainsIndex(std::span<const double> values);

/// Linear-interpolation percentile; p in [0, 100]. Requires non-empty input.
double Percentile(std::vector<double> values, double p);

/// A (value, cumulative-fraction) staircase suitable for printing the CDF
/// figures the paper reports (Figs. 1, 6, 7).
struct CdfPoint {
  double value;
  double fraction;
};
std::vector<CdfPoint> Cdf(std::vector<double> values);

/// Render a CDF as fixed-width rows, optionally downsampled to at most
/// `max_rows` evenly spaced points so bench output stays readable.
std::string FormatCdf(const std::vector<CdfPoint>& cdf, std::size_t max_rows = 20);

/// Streaming min/max/mean/count accumulator.
class Summary {
 public:
  void Add(double v);
  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Running first and second moments in O(1) memory. Jain's fairness index is
/// (sum x)^2 / (n * sum x^2), so a moment accumulator reproduces JainsIndex
/// *exactly* (same additions in the same order as the vector-based form) —
/// the fairness summaries of the bounded-memory metrics mode are not
/// approximations.
class MomentAccumulator {
 public:
  void Add(double v);
  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double sum_squares() const { return sum_squares_; }
  double mean() const;
  /// Population variance (sum_sq/n - mean^2, clamped at 0); 0 when empty.
  double variance() const;
  /// Jain's index of the values seen; 1.0 for an empty stream.
  double JainsIndex() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_squares_ = 0.0;
};

/// P² (Jain & Chlamtac 1985) single-quantile estimator: tracks one quantile
/// of a stream with five markers — constant memory, no sorting. Exact for
/// the first five observations; afterwards the markers drift toward the
/// true quantile with well-studied accuracy (typically well under 1% for
/// smooth distributions). Used for the streaming median/percentiles of the
/// bounded-memory metrics mode.
class P2Quantile {
 public:
  /// `quantile` in (0, 1), e.g. 0.5 for the median.
  explicit P2Quantile(double quantile);

  void Add(double x);
  std::size_t count() const { return count_; }
  /// Current estimate. Exact (linear-interpolated) while count <= 5;
  /// 0.0 for an empty stream.
  double Value() const;

 private:
  double p_;
  std::size_t count_ = 0;
  std::array<double, 5> q_{};   // marker heights
  std::array<double, 5> n_{};   // marker positions (1-based)
  std::array<double, 5> np_{};  // desired positions
  std::array<double, 5> dn_{};  // desired-position increments
};

/// Fixed-capacity uniform random sample of a stream (Vitter's Algorithm R),
/// deterministic in its seed. Keeps every element while the stream is no
/// larger than the capacity, so small runs lose nothing; past the capacity
/// each element of the stream is retained with equal probability. Backs the
/// per-app distributions (rho / ACT / placement CDFs) in bounded-memory
/// metrics mode.
template <typename T>
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity, std::uint64_t seed = 0x5EEDULL)
      : capacity_(capacity), rng_(seed) {
    items_.reserve(capacity);
  }

  void Add(const T& v) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(v);
      return;
    }
    // Keep the new element with probability capacity/seen, evicting a
    // uniformly random incumbent — every stream element ends up retained
    // with equal probability.
    const std::uint64_t j = rng_.NextU64() % seen_;
    if (j < capacity_) items_[static_cast<std::size_t>(j)] = v;
  }

  /// Elements seen so far (not the sample size).
  std::size_t count() const { return seen_; }
  std::size_t capacity() const { return capacity_; }
  /// The current sample. Insertion-ordered while count() <= capacity();
  /// unordered afterwards.
  const std::vector<T>& items() const { return items_; }

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  Rng rng_;
  std::vector<T> items_;
};

}  // namespace themis
