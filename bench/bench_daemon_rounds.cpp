// bench_daemon_rounds — throughput and round latency of themis_arbiterd
// under large concurrent AGENT fleets, all over real loopback sockets.
//
//   bench_daemon_rounds [--max-agents N] [--rounds N] [--round-threads N]
//
// For each population (256 / 1024 / 4096 AGENTs, capped by --max-agents)
// the bench starts an ArbiterServer on its own thread, registers one app
// per AGENT through the sequential HELLO barrier, then drives every AGENT
// concurrently through the configured number of rounds and reports
// agents-served/sec plus p50/p99/max round latency from the server's own
// stats. A final slow-AGENT case mutes every 4th AGENT under a 200 ms bid
// deadline to show the timeout bounding round latency (misses, then
// eviction). Emits BENCH_daemon_rounds.json.
//
// --round-threads N > 1 sets ThemisConfig::auction_threads on the daemon's
// arbiter (the FinishRound bid-prep fan-out) and reruns the largest
// population once more with a serial arbiter, reporting the
// served-agents/sec delta. The delta is informational — daemon rounds also
// pay socket and session costs the thread budget does not touch — but the
// two runs' grant digests confirm the parallel arbiter serves the same
// grants.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/socket.h"
#include "net/wire.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/trace_gen.h"

namespace {

using namespace themis;

double PctMs(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[idx];
}

struct PopulationResult {
  bool ok = false;
  std::string error;
  double elapsed_s = 0.0;
  server::ServerStats stats;
  server::FleetResult fleet;
  int server_rc = -1;
};

/// One app per AGENT, `rounds` auction rounds, all over 127.0.0.1.
PopulationResult RunPopulation(int agents, std::uint64_t rounds,
                               int bid_timeout_ms, int mute_every,
                               std::uint64_t seed, int round_threads = 1) {
  PopulationResult out;

  server::ServerConfig config;
  config.max_sessions = static_cast<std::size_t>(agents) + 8;
  config.min_agents = static_cast<std::size_t>(agents);
  config.max_rounds = rounds;
  config.bid_timeout_ms = bid_timeout_ms;
  config.arbiter.seed = seed;
  config.arbiter.themis.auction_threads = round_threads;

  server::ArbiterServer srv(config);
  std::string err;
  if (!srv.Start(&err)) {
    out.error = "server start: " + err;
    return out;
  }

  TraceConfig trace;
  trace.num_apps = agents;
  trace.seed = seed;
  const std::vector<AppSpec> apps = TraceGenerator(trace).Generate();
  std::vector<server::AgentScript> scripts(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    scripts[i].name = "agent-" + std::to_string(i);
    scripts[i].apps.push_back(apps[i]);
  }

  std::thread server_thread([&] { out.server_rc = srv.Run(); });
  const auto t0 = std::chrono::steady_clock::now();
  out.fleet = server::RunScriptedAgents("127.0.0.1", srv.port(), scripts,
                                        mute_every);
  out.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  if (!out.fleet.ok) srv.RequestStop();  // do not hang on a broken run
  server_thread.join();
  out.stats = srv.stats();
  out.ok = out.fleet.ok;
  if (!out.ok) out.error = "fleet: " + out.fleet.error;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int max_agents = 4096;
  std::uint64_t rounds_override = 0;
  int round_threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--max-agents") max_agents = std::atoi(next());
    else if (arg == "--rounds")
      rounds_override = std::strtoull(next(), nullptr, 10);
    else if (arg == "--round-threads")
      round_threads = std::atoi(next());
    else {
      std::fprintf(stderr,
                   "usage: %s [--max-agents N] [--rounds N] "
                   "[--round-threads N]\n",
                   argv[0]);
      return 2;
    }
  }

  // Server sessions and fleet sockets share this process: budget fds for
  // both sides up front.
  net::RaiseFdLimit(2L * max_agents + 256);

  bench::BenchReport report("daemon_rounds");
  report.Config("cluster", "sim256");
  report.Config("policy", "Themis");
  report.Config("apps_per_agent", 1.0);
  report.Config("round_threads", static_cast<double>(round_threads));

  struct Population {
    int agents;
    std::uint64_t rounds;
  };
  const Population kPopulations[] = {{256, 12}, {1024, 8}, {4096, 5}};

  std::printf("%-8s %8s %12s %10s %10s %10s %14s\n", "agents", "rounds",
              "elapsed_s", "p50_ms", "p99_ms", "max_ms", "agents/sec");
  bool all_ok = true;
  int largest_agents = 0;
  std::uint64_t largest_rounds = 0;
  double largest_agents_per_sec = 0.0;
  net::GrantDigest largest_digest;
  for (const Population& pop : kPopulations) {
    if (pop.agents > max_agents) continue;
    const std::uint64_t rounds =
        rounds_override != 0 ? rounds_override : pop.rounds;
    const PopulationResult r =
        RunPopulation(pop.agents, rounds, /*bid_timeout_ms=*/5000,
                      /*mute_every=*/0, /*seed=*/42, round_threads);
    if (!r.ok) {
      std::fprintf(stderr, "bench: %d agents: %s\n", pop.agents,
                   r.error.c_str());
      all_ok = false;
      continue;
    }
    const double p50 = PctMs(r.stats.round_latency_ms.items(), 0.50);
    const double p99 = PctMs(r.stats.round_latency_ms.items(), 0.99);
    const double mx = r.stats.round_latency_summary.max();
    const double agents_per_sec =
        r.elapsed_s > 0.0
            ? static_cast<double>(r.stats.agent_round_serves) / r.elapsed_s
            : 0.0;
    std::printf("%-8d %8llu %12.2f %10.2f %10.2f %10.2f %14.0f\n", pop.agents,
                static_cast<unsigned long long>(r.stats.rounds), r.elapsed_s,
                p50, p99, mx, agents_per_sec);
    const std::string tag = std::to_string(pop.agents);
    report.Metric("agents_per_sec." + tag, agents_per_sec);
    report.Metric("round_p50_ms." + tag, p50);
    report.Metric("round_p99_ms." + tag, p99);
    report.Metric("round_max_ms." + tag, mx);
    report.Metric("rounds." + tag, static_cast<double>(r.stats.rounds));
    report.Metric("peak_sessions." + tag,
                  static_cast<double>(r.stats.peak_sessions));
    largest_agents = pop.agents;
    largest_rounds = rounds;
    largest_agents_per_sec = agents_per_sec;
    largest_digest = r.fleet.digest;
  }

  // Serial-arbiter baseline for the served-agents/sec delta: rerun the
  // largest population with auction_threads = 1 and the same seed. The
  // fleet digests must MATCH — the parallel round contract is bit-identical
  // grants — while the throughput delta shows how much of the daemon's
  // round time the bid-prep fan-out actually covers.
  if (round_threads > 1 && largest_agents > 0) {
    const PopulationResult serial =
        RunPopulation(largest_agents, largest_rounds, /*bid_timeout_ms=*/5000,
                      /*mute_every=*/0, /*seed=*/42, /*round_threads=*/1);
    if (!serial.ok) {
      std::fprintf(stderr, "bench: serial baseline (%d agents): %s\n",
                   largest_agents, serial.error.c_str());
      all_ok = false;
    } else {
      const double serial_rate =
          serial.elapsed_s > 0.0
              ? static_cast<double>(serial.stats.agent_round_serves) /
                    serial.elapsed_s
              : 0.0;
      const bool identical = serial.fleet.digest == largest_digest;
      const double delta =
          serial_rate > 0.0 ? largest_agents_per_sec / serial_rate : 0.0;
      std::printf("\nround-threads delta (%d agents): %.0f agents/sec serial "
                  "-> %.0f at %d threads (%.2fx), digests %s\n",
                  largest_agents, serial_rate, largest_agents_per_sec,
                  round_threads, delta, identical ? "MATCH" : "DIVERGED");
      const std::string tag = std::to_string(largest_agents);
      report.Metric("agents_per_sec_serial." + tag, serial_rate);
      report.Metric("round_threads_delta." + tag, delta);
      report.Metric("round_threads_identical." + tag, identical ? 1.0 : 0.0);
      all_ok = all_ok && identical;
    }
  }

  // Slow-AGENT case: every 4th AGENT never bids. The 200 ms bid deadline
  // must bound each round; after 3 consecutive misses the mutes are
  // evicted and later rounds run at full speed again.
  {
    const int kSlowAgents = 256;
    const int kSlowTimeoutMs = 200;
    if (kSlowAgents <= max_agents) {
      const PopulationResult r =
          RunPopulation(kSlowAgents, /*rounds=*/8, kSlowTimeoutMs,
                        /*mute_every=*/4, /*seed=*/42);
      if (!r.ok) {
        std::fprintf(stderr, "bench: slow-agent case: %s\n", r.error.c_str());
        all_ok = false;
      } else {
        const double mx = r.stats.round_latency_summary.max();
        std::printf("\nslow-agent case  : %d agents, every 4th mute, %d ms "
                    "bid deadline\n",
                    kSlowAgents, kSlowTimeoutMs);
        std::printf("round latency    : p50 %.2f ms, max %.2f ms "
                    "(deadline misses %zu, evicted %zu)\n",
                    PctMs(r.stats.round_latency_ms.items(), 0.50), mx,
                    r.stats.bid_deadline_misses, r.stats.sessions_evicted);
        report.Metric("slow_bid_timeout_ms", kSlowTimeoutMs);
        report.Metric("slow_round_max_ms", mx);
        report.Metric("slow_deadline_misses",
                      static_cast<double>(r.stats.bid_deadline_misses));
        report.Metric("slow_sessions_evicted",
                      static_cast<double>(r.stats.sessions_evicted));
      }
    }
  }

  report.Write();
  return all_ok ? 0 : 1;
}
