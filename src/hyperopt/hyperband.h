// HyperBand app scheduler (Li et al. [18]; Sec. 5.2 "App scheduler
// background").
//
// "HyperBand launches several ML training jobs each with user-configured
// equal priority ... and kills the bottom-half of jobs with poor convergence
// periodically after a fixed number of iterations until a single job
// remains." We implement successive halving with eta = 2: rung r's budget is
// base_iterations * 2^r; when every alive job has reached the rung budget,
// the half with the worst observed loss at that budget is terminated.
#pragma once

#include "hyperopt/app_scheduler.h"

namespace themis {

struct HyperBandConfig {
  /// Rung-0 iteration budget. Defaults to a small fraction of the shortest
  /// job so the first halving happens early, as in the paper's Fig. 8-style
  /// traces.
  double base_iterations = 0.0;  // 0 => auto: min total_iterations / 16
  double eta = 2.0;
};

class HyperBand final : public IAppScheduler {
 public:
  explicit HyperBand(HyperBandConfig config = {});

  void Init(const AppSpec& app) override;
  const TunerDecision& Step(const std::vector<JobView>& jobs,
                            Time now) override;
  const char* name() const override { return "HyperBand"; }

  int current_rung() const { return rung_; }
  double RungBudget(int rung) const;

 private:
  HyperBandConfig config_;
  double base_ = 1.0;
  int rung_ = 0;
  /// Reused across Steps (see IAppScheduler::Step).
  TunerDecision decision_;
  std::vector<int> alive_;
};

}  // namespace themis
