// Figure 4a: "Variation of Fairness with f" — min / median / max finish-time
// fairness across apps as the fairness knob f sweeps [0, 1] on the 256-GPU
// simulated cluster.
//
// Paper shape: max fairness decreases with f (diminishing returns past
// ~0.8); the min-max spread narrows; the median rises slightly because the
// objective is min-max, not median.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  std::printf("=== Figure 4a: finish-time fairness vs fairness knob f ===\n");
  std::printf("(mean of 5 trace seeds, 256-GPU simulated cluster)\n");
  std::printf("%6s %10s %10s %10s\n", "f", "min_rho", "median_rho", "max_rho");
  for (double f : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    double mn = 0.0, med = 0.0, mx = 0.0;
    const int kSeeds = 5;
    for (std::uint64_t seed = 42; seed < 42 + kSeeds; ++seed) {
      ExperimentConfig cfg = ContendedSimConfig(PolicyKind::kThemis, seed);
      cfg.themis.fairness_knob = f;
      const ExperimentResult r = RunExperiment(cfg);
      mn += r.min_fairness / kSeeds;
      med += r.median_fairness / kSeeds;
      mx += r.max_fairness / kSeeds;
    }
    std::printf("%6.1f %10.2f %10.2f %10.2f\n", f, mn, med, mx);
  }
  std::printf("\npaper reference: max fairness falls as f grows, spread"
              " narrows, diminishing returns past f=0.8\n");
  std::printf("deviation note: our exact product-objective solver plus\n"
              "work-conserving leftovers track finish-time fairness tightly\n"
              "at every f, so the f-dependence is flatter than the paper's\n"
              "(see EXPERIMENTS.md)\n");
  return 0;
}
