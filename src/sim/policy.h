// The inter-app scheduling context — the state a round scheduler works
// against (Sec. 2.3). ThemisPolicy and the four baseline emulations
// (Gandiva / Tiresias / SLAQ / DRF, Sec. 8 intro) all implement
// IRoundScheduler (core/round.h): whenever GPUs are reclaimed or apps
// arrive/finish, the simulator publishes a ResourceOffer, the scheduler
// stages grants through this context and returns a GrantSet, and the
// simulator applies the leases through ApplyGrants. The simulator then
// applies restart overheads, lease bookkeeping and finish-event
// rescheduling.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/round.h"
#include "estimator/work_estimator.h"
#include "sim/state.h"

namespace themis {

class RhoIndex;

/// Staging area for one round. Construction snapshots the offer into a
/// FreePool; every Grant() moves GPUs from the pool onto the job's gang and
/// into the pending GrantSet, so mid-round reads (pool membership,
/// per-machine counts, JobState::gpus) see every grant staged so far without
/// any cluster mutation. One context runs exactly one round.
class SchedulerContext {
 public:
  /// Round-protocol construction: the context adopts the offer's pool and
  /// lease terms. `offer` must snapshot `cluster`'s current free pool.
  SchedulerContext(const ResourceOffer& offer, Cluster* cluster,
                   WorkEstimator* estimator, AppList* apps, Rng* rng);

  /// Legacy construction: snapshots the cluster's free pool itself (an
  /// anonymous round 0 offer). Kept for tests and embedders that drive
  /// ISchedulerPolicy::Schedule directly.
  SchedulerContext(Time now, Cluster* cluster, WorkEstimator* estimator,
                   Time lease_duration, AppList* apps, Rng* rng);

  Time now() const { return now_; }
  /// Read-only cluster topology/lease queries. Free-pool state must be read
  /// through free_pool(): the cluster does not see this round's grants until
  /// ApplyGrants runs.
  Cluster& cluster() { return *cluster_; }
  const Topology& topology() const { return cluster_->topology(); }
  WorkEstimator& estimator() { return *estimator_; }
  Time lease_duration() const { return lease_duration_; }
  /// Active apps (arrived, unfinished), ascending AppId order.
  const AppList& apps() const { return *apps_; }
  Rng& rng() { return *rng_; }

  /// The maintained rho index (core/rho_index.h) when the embedder keeps
  /// one in sync with every app mutation — the simulator does; legacy
  /// contexts leave it null and policies fall back to full scans. The index
  /// reflects state as of round start; policies must not read it after
  /// staging grants (grants change holdings the index has not seen yet).
  RhoIndex* rho_index() const { return rho_index_; }
  void set_rho_index(RhoIndex* index) { rho_index_ = index; }

  /// The offer's pool, shrunk by every grant staged so far. Policies read
  /// this instead of recounting the cluster's free state.
  const FreePool& free_pool() const { return pool_; }

  /// Free GPU count per machine for the GPUs still in the pool. At round
  /// start this equals the offer's resource vector R->.
  const std::vector<int>& free_per_machine() const {
    return pool_.per_machine();
  }

  /// Stage a grant: lease `gpus` to (app, job) until now + lease_duration.
  /// The GPUs must be in the pool; they leave it, the job records them
  /// immediately (the AGENT side of the protocol), and the pending GrantSet
  /// gains one Grant. The cluster is not touched.
  void Grant(AppState& app, JobState& job, const std::vector<GpuId>& gpus);

  /// The pending grant set (e.g. for a policy stamping auction diagnostics).
  GrantSet& grants() { return grants_; }

  /// Every (app, job) that received a grant this round, in staging order
  /// (may repeat). Unlike grants(), this record survives TakeGrants(), so
  /// the simulator's change detection can enumerate grown gangs even when a
  /// legacy Schedule() wrapper consumed the GrantSet inside the round.
  const std::vector<std::pair<AppId, JobId>>& granted_jobs() const {
    return granted_jobs_;
  }

  /// Finish the round: stamp the pool-level diagnostics (offered / granted /
  /// leftover) and move the GrantSet out. The context is spent afterwards.
  GrantSet TakeGrants();

 private:
  Time now_;
  Cluster* cluster_;
  WorkEstimator* estimator_;
  Time lease_duration_;
  AppList* apps_;
  Rng* rng_;
  RhoIndex* rho_index_ = nullptr;
  FreePool pool_;
  GrantSet grants_;
  std::vector<std::pair<AppId, JobId>> granted_jobs_;
  int offered_gpus_ = 0;
  int granted_gpus_ = 0;
};

/// Legacy single-call policy API, now a thin adapter over IRoundScheduler:
/// Schedule() wraps the context's pool into a ResourceOffer, runs one round,
/// and immediately applies the grants to the context's cluster. The
/// simulator does not use it — it drives RunRound/ApplyGrants itself — but
/// tests and embedders keep a one-line entry point.
class ISchedulerPolicy : public IRoundScheduler {
 public:
  /// Run one round and apply it. Precondition: `free_gpus` is the cluster's
  /// complete current free pool (`ctx.cluster().FreeGpus()` with no mutation
  /// since the context was built), so it agrees with ctx.free_pool() — the
  /// auction uses the matching per-machine counts as its offered resources.
  /// Passing a filtered subset would let the auction award GPUs the
  /// materialization step cannot take. Returns the applied GrantSet.
  GrantSet Schedule(const std::vector<GpuId>& free_gpus,
                    SchedulerContext& ctx);
};

}  // namespace themis
