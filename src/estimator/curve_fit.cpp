#include "estimator/curve_fit.h"

#include <cmath>

namespace themis {

std::optional<PowerLawFit> FitPowerLaw(const std::vector<LossSample>& samples,
                                       double floor) {
  // log(loss - floor) = log(scale) - decay * log(i + 1): ordinary least
  // squares with x = log(i + 1), y = log(loss - floor).
  std::vector<double> xs, ys;
  xs.reserve(samples.size());
  ys.reserve(samples.size());
  for (const LossSample& s : samples) {
    if (s.iteration < 0.0 || s.loss <= floor) continue;
    xs.push_back(std::log(s.iteration + 1.0));
    ys.push_back(std::log(s.loss - floor));
  }
  const std::size_t n = xs.size();
  if (n < 2) return std::nullopt;

  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return std::nullopt;  // all iterations equal

  const double slope = (dn * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / dn;
  const double decay = -slope;
  if (!(decay > 0.0)) return std::nullopt;  // non-converging fit

  double ss_res = 0, ss_tot = 0;
  const double mean_y = sy / dn;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = intercept + slope * xs[i];
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  PowerLawFit fit;
  fit.curve = LossCurve(std::exp(intercept), decay, floor);
  fit.r_squared = (ss_tot <= 1e-12) ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

std::optional<double> PredictIterationsToTarget(
    const std::vector<LossSample>& samples, double target_loss, double floor) {
  auto fit = FitPowerLaw(samples, floor);
  if (!fit) return std::nullopt;
  const double iters = fit->curve.IterationsToTarget(target_loss);
  if (!std::isfinite(iters)) return std::nullopt;
  return iters;
}

}  // namespace themis
