#include "hyperopt/app_scheduler.h"
#include "hyperopt/hyperband.h"
#include "hyperopt/hyperdrive.h"

namespace themis {

namespace {

/// Trivial tuner for single-job apps (TunerKind::kNone): no kills, full
/// parallelism for the lone job.
class SingleJobScheduler final : public IAppScheduler {
 public:
  void Init(const AppSpec& /*app*/) override {}
  const TunerDecision& Step(const std::vector<JobView>& jobs,
                            Time /*now*/) override {
    decision_.kill.clear();
    decision_.parallelism_cap.assign(jobs.size(), 0);
    for (std::size_t i = 0; i < jobs.size(); ++i)
      if (jobs[i].alive && !jobs[i].finished)
        decision_.parallelism_cap[i] = jobs[i].spec->MaxParallelism();
    return decision_;
  }
  const char* name() const override { return "SingleJob"; }

 private:
  TunerDecision decision_;
};

}  // namespace

std::unique_ptr<IAppScheduler> MakeAppScheduler(const AppSpec& app) {
  switch (app.tuner) {
    case TunerKind::kNone:
      return std::make_unique<SingleJobScheduler>();
    case TunerKind::kHyperBand:
      return std::make_unique<HyperBand>();
    case TunerKind::kHyperDrive:
      return std::make_unique<HyperDrive>();
  }
  return std::make_unique<SingleJobScheduler>();
}

}  // namespace themis
