// Figure 1: "Distribution of task durations for ML training jobs from an
// enterprise cluster."
//
// Prints the CDF of task durations produced by the synthetic trace
// generator. The paper's trace shows mostly short tasks (median 59 min) with
// a long tail stretching past 1000 minutes; the generator reproduces those
// marginals (see workload/trace_gen.h).
#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"
#include "workload/trace_gen.h"

int main() {
  using namespace themis;

  TraceConfig cfg;
  cfg.seed = 42;
  cfg.num_apps = 500;
  TraceGenerator gen(cfg);

  std::vector<double> durations;
  for (const AppSpec& app : gen.Generate())
    for (const JobSpec& job : app.jobs)
      durations.push_back(job.total_work / job.MaxParallelism());

  std::printf("=== Figure 1: CDF of task durations (minutes) ===\n");
  std::printf("tasks=%zu\n", durations.size());
  std::printf("%12s  %6s\n", "duration", "CDF");
  std::printf("%s", FormatCdf(Cdf(durations), 20).c_str());
  std::printf("\npaper reference: short-task median 59 min, long-task median"
              " 123 min, tail past 1000 min\n");
  const double p50 = Percentile(durations, 50.0);
  const double p80 = Percentile(durations, 80.0);
  const double p99 = Percentile(durations, 99.0);
  const double max = Percentile(durations, 100.0);
  std::printf("measured: p50=%.1f  p80=%.1f  p99=%.1f  max=%.1f\n", p50, p80,
              p99, max);

  bench::BenchReport report("fig01_task_durations", cfg.seed);
  report.Config("num_apps", static_cast<double>(cfg.num_apps));
  report.Metric("num_tasks", static_cast<double>(durations.size()));
  report.Metric("duration_p50_min", p50);
  report.Metric("duration_p80_min", p80);
  report.Metric("duration_p99_min", p99);
  report.Metric("duration_max_min", max);
  return report.Write() ? 0 : 1;
}
