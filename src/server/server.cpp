#include "server/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <poll.h>
#include <unistd.h>
#include <utility>

#include "common/log.h"

namespace themis::server {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::int64_t kNoOwner = -1;
constexpr double kStopDrainMs = 2000.0;  // grace for CLOSE-frame flushes

}  // namespace

struct ArbiterServer::Session {
  enum class State { kAwaitingHello, kRegistered, kDraining, kDead };

  Session(int fd_in, std::int64_t id, std::size_t max_line,
          std::size_t max_write)
      : fd(fd_in), agent_id(id), reader(max_line), out(max_write) {}

  int fd;
  std::int64_t agent_id;
  std::string name;
  State state = State::kAwaitingHello;
  /// Accept time (steady-clock ms); starts the handshake deadline.
  double accepted_ms = 0.0;
  /// HELLO arrived mid-round and waits at the boundary: the session is
  /// still kAwaitingHello but must not be charged a handshake timeout.
  bool hello_deferred = false;
  net::LineReader reader;
  net::WriteBuffer out;
  /// Unfinished apps this AGENT owns (ascending registration order).
  std::vector<AppId> apps;
  /// Apps that finished this round; delivered in the round's GRANT frame.
  std::vector<AppId> finished_this_round;
  bool offered_this_round = false;
  bool bid_this_round = false;
  int missed_deadlines = 0;
};

ArbiterServer::ArbiterServer(ServerConfig config)
    : config_(std::move(config)), core_(config_.arbiter) {
  if (config_.min_agents == 0) config_.min_agents = 1;
}

ArbiterServer::~ArbiterServer() {
  for (auto& s : sessions_) net::CloseFd(s->fd);
  net::CloseFd(listen_fd_);
  net::CloseFd(wake_read_);
  net::CloseFd(wake_write_);
}

bool ArbiterServer::Start(std::string* err) {
  listen_fd_ =
      net::TcpListen(config_.host, config_.port, config_.accept_backlog, err);
  if (listen_fd_ == net::kBadFd) return false;
  port_ = net::ListenPort(listen_fd_);
  int pipefd[2];
  if (pipe(pipefd) != 0) {
    if (err != nullptr) *err = "pipe: self-pipe creation failed";
    return false;
  }
  wake_read_ = pipefd[0];
  wake_write_ = pipefd[1];
  net::SetNonBlocking(wake_read_);
  net::SetNonBlocking(wake_write_);
  // Descriptor budget: sessions + listen/pipe/std fds, with headroom.
  net::RaiseFdLimit(static_cast<long>(config_.max_sessions) + 64);
  return true;
}

void ArbiterServer::RequestStop() {
  // Async-signal-safe: one write to the self-pipe; the poll loop drains it
  // and latches stop_requested_.
  if (wake_write_ != net::kBadFd) {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = write(wake_write_, &b, 1);
  }
}

void ArbiterServer::SendFrame(Session& s, const std::string& frame) {
  if (s.state == Session::State::kDead) return;
  if (!s.out.QueueFrame(frame)) {
    // Peer stopped reading: the bounded buffer is the eviction trigger.
    ++stats_.sessions_evicted;
    DropSession(s);
    return;
  }
  ++stats_.frames_out;
  if (!s.out.Flush(s.fd)) DropSession(s);
}

void ArbiterServer::SendError(Session& s, const std::string& code,
                              const std::string& detail) {
  ++stats_.protocol_errors;
  SendFrame(s, net::EncodeError(code, detail));
}

void ArbiterServer::CloseSession(Session& s, const std::string& reason) {
  if (s.state == Session::State::kDead ||
      s.state == Session::State::kDraining)
    return;
  // Apps a live AGENT still owns leave the auction at the next boundary.
  for (AppId id : s.apps) {
    deferred_evictions_.push_back(id);
    if (id < app_owner_.size()) app_owner_[id] = kNoOwner;
  }
  s.apps.clear();
  SendFrame(s, net::EncodeClose(reason));
  if (s.state != Session::State::kDead) s.state = Session::State::kDraining;
}

void ArbiterServer::DropSession(Session& s) {
  if (s.state == Session::State::kDead) return;
  for (AppId id : s.apps) {
    deferred_evictions_.push_back(id);
    if (id < app_owner_.size()) app_owner_[id] = kNoOwner;
  }
  s.apps.clear();
  s.state = Session::State::kDead;
  net::CloseFd(s.fd);
  s.fd = net::kBadFd;
}

void ArbiterServer::EvictStaleHandshakes() {
  if (config_.hello_timeout_ms <= 0 || stopping_) return;
  const double now = NowMs();
  for (auto& sp : sessions_) {
    Session& s = *sp;
    if (s.state != Session::State::kAwaitingHello || s.hello_deferred)
      continue;
    if (now - s.accepted_ms < static_cast<double>(config_.hello_timeout_ms))
      continue;
    ++stats_.sessions_evicted;
    // Not SendError: a silent peer is not a protocol violation, just gone.
    SendFrame(s, net::EncodeError(
                     "hello-timeout",
                     "no HELLO within " +
                         std::to_string(config_.hello_timeout_ms) + " ms"));
    CloseSession(s, "handshake timeout");
  }
}

void ArbiterServer::ReapSessions() {
  for (auto& s : sessions_)
    if (s->state == Session::State::kDraining && s->out.empty())
      DropSession(*s);
  sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                 [](const std::unique_ptr<Session>& s) {
                                   return s->state == Session::State::kDead;
                                 }),
                  sessions_.end());
}

void ArbiterServer::AcceptPending() {
  for (;;) {
    const int fd = net::TcpAccept(listen_fd_);
    if (fd == net::kBadFd) return;
    auto s = std::make_unique<Session>(fd, next_agent_id_++,
                                       config_.max_line_bytes,
                                       config_.max_write_buffer);
    if (sessions_.size() >= config_.max_sessions) {
      ++stats_.sessions_refused;
      Session& ref = *s;
      SendFrame(ref, net::EncodeError("server-full",
                                      "session limit reached; retry later"));
      net::CloseFd(ref.fd);
      continue;
    }
    ++stats_.sessions_accepted;
    s->accepted_ms = NowMs();
    sessions_.push_back(std::move(s));
    stats_.peak_sessions = std::max(stats_.peak_sessions, sessions_.size());
  }
}

void ArbiterServer::HandleHello(Session& s, net::WireMessage msg) {
  if (s.state != Session::State::kAwaitingHello) {
    SendError(s, "protocol", "HELLO after registration");
    CloseSession(s, "protocol violation");
    return;
  }
  if (msg.apps.empty()) {
    SendError(s, "protocol", "HELLO must register at least one app");
    CloseSession(s, "protocol violation");
    return;
  }
  if (collecting_) {
    // Registration mutates the auction population, so it waits for the
    // round boundary. The session hears its WELCOME then.
    s.hello_deferred = true;
    deferred_hellos_.emplace_back(s.agent_id, std::move(msg));
    return;
  }
  s.name = msg.agent_name;
  for (AppSpec& spec : msg.apps) {
    const AppId id = core_.RegisterApp(std::move(spec));
    s.apps.push_back(id);
    if (app_owner_.size() <= id) app_owner_.resize(id + 1, kNoOwner);
    app_owner_[id] = s.agent_id;
  }
  s.state = Session::State::kRegistered;
  any_registered_ = true;
  SendFrame(s, net::EncodeWelcome(s.agent_id, s.apps));
}

void ArbiterServer::HandleBid(Session& s, const net::WireMessage& msg) {
  if (s.state != Session::State::kRegistered) {
    SendError(s, "protocol", "BID before WELCOME");
    CloseSession(s, "protocol violation");
    return;
  }
  if (!collecting_ || msg.round_id != round_.round_id) {
    // Out-of-order / stale: pointed error, but the session survives — a
    // bid racing the deadline is not a protocol violation.
    SendError(s, "stale-bid",
              "bid for round " + std::to_string(msg.round_id) +
                  " outside its collect window");
    return;
  }
  if (!s.offered_this_round) {
    SendError(s, "protocol", "BID from a session that was not offered");
    return;
  }
  if (s.bid_this_round) {
    SendError(s, "duplicate-bid",
              "round " + std::to_string(msg.round_id) + " already answered");
    return;
  }
  // The demands themselves are advisory (semi-trusted AGENTs): the
  // authoritative per-app state lives in ArbiterCore, which corrects any
  // misreport. The BID's job is to say "alive, demand declared".
  s.bid_this_round = true;
  ++bids_received_;
}

void ArbiterServer::HandleLine(Session& s, const std::string& line) {
  if (line.empty()) return;
  ++stats_.frames_in;
  net::WireMessage msg;
  try {
    msg = net::ParseWireMessage(line);
  } catch (const net::WireError& e) {
    SendError(s, "bad-frame", e.what());
    CloseSession(s, "malformed frame");
    return;
  }
  switch (msg.type) {
    case net::MsgType::kHello:
      HandleHello(s, std::move(msg));
      break;
    case net::MsgType::kBid:
      HandleBid(s, msg);
      break;
    case net::MsgType::kAck:
      break;  // bookkeeping only
    case net::MsgType::kClose:
      DropSession(s);  // orderly goodbye
      break;
    case net::MsgType::kError:
      THEMIS_LOG(kWarn) << "arbiterd: ERROR frame from agent " << s.agent_id
                        << ": " << msg.detail;
      break;
    default:
      SendError(s, "unexpected-type",
                std::string("server does not accept ") +
                    net::ToString(msg.type) + " frames");
      CloseSession(s, "protocol violation");
      break;
  }
}

void ArbiterServer::ReadSession(Session& s) {
  char buf[16384];
  for (;;) {
    if (s.state == Session::State::kDead) return;
    const long r = net::RecvSome(s.fd, buf, sizeof buf);
    if (r < 0) {
      DropSession(s);
      return;
    }
    if (r == 0) break;
    if (!s.reader.Feed(buf, static_cast<std::size_t>(r))) {
      SendError(s, "frame-too-long",
                "line exceeds " + std::to_string(config_.max_line_bytes) +
                    " bytes");
      CloseSession(s, "oversized frame");
      return;
    }
    if (static_cast<std::size_t>(r) < sizeof buf) break;
  }
  if (s.state == Session::State::kDraining) return;  // input ignored
  std::string line;
  while (s.state != Session::State::kDead &&
         s.state != Session::State::kDraining && s.reader.NextLine(line))
    HandleLine(s, line);
  // A line can arrive whole in one read: Feed sees its terminator and
  // accepts, and NextLine is what trips the length cap. Without this check
  // the poisoned reader would wedge the session silently.
  if (s.state != Session::State::kDead &&
      s.state != Session::State::kDraining && s.reader.overflowed()) {
    SendError(s, "frame-too-long",
              "line exceeds " + std::to_string(config_.max_line_bytes) +
                  " bytes");
    CloseSession(s, "oversized frame");
  }
}

void ArbiterServer::ApplyDeferred() {
  for (AppId id : deferred_evictions_) core_.RemoveApp(id);
  deferred_evictions_.clear();
  for (auto& [agent_id, msg] : deferred_hellos_) {
    for (auto& s : sessions_)
      if (s->agent_id == agent_id &&
          s->state == Session::State::kAwaitingHello) {
        s->hello_deferred = false;
        HandleHello(*s, std::move(msg));
        break;
      }
  }
  deferred_hellos_.clear();
}

bool ArbiterServer::AllBidsIn() const {
  for (const auto& s : sessions_)
    if (s->state == Session::State::kRegistered && s->offered_this_round &&
        !s->bid_this_round)
      return false;
  return true;
}

void ArbiterServer::StartRound() {
  rounds_begun_ = true;
  round_ = core_.BeginRound();
  round_started_ms_ = NowMs();
  bids_expected_ = 0;
  bids_received_ = 0;

  // Route this round's finishes to their owning sessions.
  for (AppId id : round_.finished)
    if (id < app_owner_.size()) app_owner_[id] = kNoOwner;

  // An offer-less round (every GPU leased out, or no demand) still runs the
  // full frame cycle so AGENTs observe the round advance uniformly.
  ResourceOffer offer = round_.offer;
  if (!round_.have_offer) {
    offer.round_id = round_.round_id;
    offer.time = round_.time;
    offer.lease_duration = config_.arbiter.lease_minutes;
  }
  const std::string offer_frame = net::EncodeOffer(offer);

  for (auto& sp : sessions_) {
    Session& s = *sp;
    if (s.state != Session::State::kRegistered) continue;
    s.offered_this_round = false;
    s.bid_this_round = false;
    s.finished_this_round.clear();
    if (!round_.finished.empty()) {
      auto& apps = s.apps;
      for (AppId id : round_.finished) {
        const auto it = std::find(apps.begin(), apps.end(), id);
        if (it != apps.end()) {
          apps.erase(it);
          s.finished_this_round.push_back(id);
        }
      }
    }
    if (!s.apps.empty()) {
      s.offered_this_round = true;
      ++bids_expected_;
      ++stats_.agent_round_serves;
      SendFrame(s, offer_frame);
    }
  }
  collecting_ = true;
  bid_deadline_ms_ = NowMs() + static_cast<double>(config_.bid_timeout_ms);
}

void ArbiterServer::CompleteRound() {
  collecting_ = false;
  GrantSet grants;
  if (round_.have_offer) {
    grants = core_.FinishRound(round_.offer);
  } else {
    grants.round_id = round_.round_id;
    grants.lease_expiry = round_.time + config_.arbiter.lease_minutes;
  }

  // Partition the grant set by owning session. Grants to apps whose session
  // vanished mid-round are undeliverable; the leases still bind server-side
  // and the apps are evicted at the next boundary.
  std::vector<std::pair<std::int64_t, const Grant*>> routed;
  routed.reserve(grants.grants.size());
  for (const Grant& g : grants.grants) {
    const std::int64_t owner =
        g.app < app_owner_.size() ? app_owner_[g.app] : kNoOwner;
    if (owner != kNoOwner) routed.emplace_back(owner, &g);
  }

  for (auto& sp : sessions_) {
    Session& s = *sp;
    if (s.state != Session::State::kRegistered) continue;
    if (!s.offered_this_round && s.finished_this_round.empty()) continue;
    GrantSet sub;
    sub.round_id = grants.round_id;
    sub.lease_expiry = grants.lease_expiry;
    sub.diagnostics = grants.diagnostics;
    for (const auto& [owner, g] : routed)
      if (owner == s.agent_id) sub.grants.push_back(*g);
    SendFrame(s, net::EncodeGrant(sub, s.finished_this_round));
    s.finished_this_round.clear();
    if (s.state != Session::State::kRegistered) continue;  // send evicted it
    if (s.apps.empty()) {
      CloseSession(s, "apps finished");
      continue;
    }
    if (s.offered_this_round && !s.bid_this_round) {
      ++s.missed_deadlines;
      ++stats_.bid_deadline_misses;
      if (s.missed_deadlines >= config_.max_missed_deadlines) {
        ++stats_.sessions_evicted;
        CloseSession(s, "bid deadline missed " +
                            std::to_string(s.missed_deadlines) +
                            " rounds in a row");
      }
    } else if (s.bid_this_round) {
      s.missed_deadlines = 0;
    }
  }

  ++stats_.rounds;
  const double latency_ms = NowMs() - round_started_ms_;
  stats_.round_latency_ms.Add(latency_ms);
  stats_.round_latency_summary.Add(latency_ms);
}

void ArbiterServer::StepRounds() {
  for (;;) {
    if (stopping_) return;
    if (collecting_) {
      if (bids_received_ >= bids_expected_ || AllBidsIn() ||
          NowMs() >= bid_deadline_ms_)
        CompleteRound();
      else
        return;
    }
    ApplyDeferred();
    const bool rounds_done =
        config_.max_rounds != 0 && stats_.rounds >= config_.max_rounds;
    const bool drained = config_.stop_when_drained && any_registered_ &&
                         core_.apps_active() == 0;
    if (stop_requested_ || rounds_done || drained) {
      stopping_ = true;
      const char* reason = stop_requested_ ? "shutdown"
                           : rounds_done   ? "rounds complete"
                                           : "all apps finished";
      for (auto& s : sessions_)
        if (s->state != Session::State::kDead) CloseSession(*s, reason);
      return;
    }
    // min_agents gates only the FIRST round (the registration barrier the
    // loopback test leans on). Once rounds run, sessions finishing their
    // apps or being evicted must not stall the remaining population.
    if (!rounds_begun_) {
      std::size_t registered = 0;
      for (const auto& s : sessions_)
        if (s->state == Session::State::kRegistered) ++registered;
      if (registered < config_.min_agents) return;
    }
    if (core_.apps_active() == 0) return;
    StartRound();
    if (bids_expected_ > 0) return;  // poll for bids
    // Nobody to offer to (all owners gone): settle immediately and loop —
    // the eviction at the next boundary will drain the population.
  }
}

int ArbiterServer::Run() {
  if (listen_fd_ == net::kBadFd) {
    THEMIS_LOG(kError) << "arbiterd: Run() before Start()";
    return 1;
  }
  double stop_deadline_ms = 0.0;
  std::vector<pollfd> pfds;
  std::vector<Session*> pfd_sessions;

  for (;;) {
    EvictStaleHandshakes();
    ReapSessions();
    StepRounds();
    if (stopping_) {
      if (stop_deadline_ms == 0.0) stop_deadline_ms = NowMs() + kStopDrainMs;
      bool pending = false;
      for (const auto& s : sessions_)
        if (s->state != Session::State::kDead && !s->out.empty())
          pending = true;
      if (!pending || NowMs() >= stop_deadline_ms) break;
    }

    pfds.clear();
    pfd_sessions.clear();
    pfds.push_back({wake_read_, POLLIN, 0});
    pfd_sessions.push_back(nullptr);
    if (!stopping_ && sessions_.size() < config_.max_sessions + 64) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_sessions.push_back(nullptr);
    }
    for (auto& s : sessions_) {
      if (s->state == Session::State::kDead) continue;
      short events = 0;
      if (s->state != Session::State::kDraining) events |= POLLIN;
      if (!s->out.empty()) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back({s->fd, events, 0});
      pfd_sessions.push_back(s.get());
    }

    int timeout_ms = 50;
    if (collecting_) {
      const double left = bid_deadline_ms_ - NowMs();
      timeout_ms = left <= 0.0 ? 0 : static_cast<int>(left) + 1;
    } else if (stopping_) {
      timeout_ms = 10;
    }
    const int n = poll(pfds.data(), pfds.size(), timeout_ms);
    if (n < 0 && errno != EINTR) {
      THEMIS_LOG(kError) << "arbiterd: poll failed";
      return 1;
    }

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      if (pfds[i].fd == wake_read_) {
        char buf[64];
        while (read(wake_read_, buf, sizeof buf) > 0) {
        }
        stop_requested_ = true;
      } else if (pfds[i].fd == listen_fd_ && pfd_sessions[i] == nullptr) {
        AcceptPending();
      } else if (Session* s = pfd_sessions[i]) {
        if (s->state == Session::State::kDead) continue;
        if ((pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (pfds[i].revents & POLLIN) == 0) {
          DropSession(*s);
          continue;
        }
        if ((pfds[i].revents & POLLOUT) != 0 && !s->out.Flush(s->fd))
          DropSession(*s);
        if (s->state != Session::State::kDead &&
            (pfds[i].revents & POLLIN) != 0)
          ReadSession(*s);
      }
    }
  }

  for (auto& s : sessions_) DropSession(*s);
  ReapSessions();
  return 0;
}

}  // namespace themis::server
