// Figure 10: "Effect of contention on our scheme" — Jain's fairness index
// for Themis vs Tiresias at 1x / 2x / 4x contention (inter-arrival time
// divided by the contention factor).
//
// Paper shape: Jain's index degrades with contention for both, but much
// faster for Tiresias (LAS treats short and long apps identically and is
// placement-unaware).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  BenchReport report("fig10_contention");
  report.Config("cluster", "sim256");
  report.Config("num_apps", 120.0);

  std::printf("=== Figure 10: Jain's index vs contention ===\n");
  std::printf("%12s %10s %10s\n", "contention", "Themis", "Tiresias");
  for (double factor : {1.0, 2.0, 4.0}) {
    auto run = [&](PolicyKind kind) {
      ExperimentConfig cfg = SimScaleConfig(kind, 42, 120);
      cfg.trace.contention_factor = factor;
      return RunExperiment(cfg).jains_index;
    };
    const double themis = run(PolicyKind::kThemis);
    const double tiresias = run(PolicyKind::kTiresias);
    std::printf("%11.0fX %10.3f %10.3f\n", factor, themis, tiresias);
    char key[48];
    std::snprintf(key, sizeof key, "jains_index.Themis@%.0fx", factor);
    report.Metric(key, themis);
    std::snprintf(key, sizeof key, "jains_index.Tiresias@%.0fx", factor);
    report.Metric(key, tiresias);
  }
  std::printf("\npaper reference: Tiresias degrades faster with rising"
              " contention\n");
  return report.Write() ? 0 : 1;
}
