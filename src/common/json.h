// Minimal JSON reader for scenario files (src/sim/scenario.*).
//
// Supports the full JSON value grammar (objects, arrays, strings with
// escapes, numbers, booleans, null) with line-numbered parse errors. It is a
// *reader*: the experiment layer needs to load ScenarioSpec files, nothing
// more, so there is no DOM mutation or serialization — BenchReport already
// owns JSON emission (bench/bench_common.h).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace themis {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse one JSON document. Throws std::runtime_error with a line number
  /// on malformed input or trailing garbage.
  static JsonValue Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& items() const;
  /// Object members in document order (duplicate keys keep both; Find
  /// returns the first).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Member lookup on an object; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;

  /// Convenience lookups with defaults, for knob-style scenario fields.
  double NumberOr(const std::string& key, double fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
  std::string StringOr(const std::string& key, const std::string& fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace themis
