// AGENT-side library for the themis_arbiterd wire protocol.
//
// ArbiterClient is one blocking connection: connect, register apps
// (HELLO -> WELCOME), then consume OFFER/GRANT/ERROR/CLOSE frames and
// answer with BIDs. themis_cli --connect drives a single client
// interactively; RunScriptedAgents drives a whole fleet of them through
// one nonblocking poll loop for the loopback-equivalence test, the CI
// smoke job, and bench_daemon_rounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/wire.h"
#include "workload/job_spec.h"

namespace themis::server {

class ArbiterClient {
 public:
  ArbiterClient() = default;
  ~ArbiterClient();

  ArbiterClient(const ArbiterClient&) = delete;
  ArbiterClient& operator=(const ArbiterClient&) = delete;

  bool Connect(const std::string& host, int port, std::string* err);

  /// Register `apps` under `agent_name`; blocks until the WELCOME frame.
  bool Hello(const std::string& agent_name, const std::vector<AppSpec>& apps,
             std::string* err);

  std::int64_t agent_id() const { return agent_id_; }
  const std::vector<AppId>& app_ids() const { return app_ids_; }

  /// Send one encoded frame (blocking until fully written).
  bool Send(const std::string& frame, std::string* err);

  /// Block until the next complete frame arrives and decode it. Returns
  /// false on disconnect or a malformed server frame (*err says which).
  bool NextMessage(net::WireMessage* msg, std::string* err);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  net::LineReader reader_;
  std::int64_t agent_id_ = -1;
  std::vector<AppId> app_ids_;
};

/// One scripted AGENT of the fleet: a name and the apps it registers.
struct AgentScript {
  std::string name;
  std::vector<AppSpec> apps;
};

struct FleetResult {
  bool ok = false;
  std::string error;
  /// Order-insensitive digest over every grant delivered to the fleet —
  /// compared against ArbiterCore::digest() for wire-path equivalence.
  net::GrantDigest digest;
  std::uint64_t last_round_seen = 0;
  std::uint64_t offers_received = 0;
  std::uint64_t grants_received = 0;
  std::size_t agents_closed = 0;
  std::size_t finished_apps = 0;
  std::size_t errors_received = 0;
};

/// Drive `agents` concurrent scripted AGENTs against a running daemon.
/// Registration is sequential (each AGENT's HELLO waits for its WELCOME
/// before the next connects) so the server's app numbering is
/// deterministic; after that all sessions run concurrently off one poll
/// loop, bidding on every OFFER and folding every GRANT into the digest.
/// Returns once every AGENT received CLOSE (or the connection dropped).
///
/// `mute_every` > 0 makes every mute_every-th AGENT register but never
/// bid — the slow-AGENT case: its rounds must still complete within the
/// server's bid deadline.
FleetResult RunScriptedAgents(const std::string& host, int port,
                              const std::vector<AgentScript>& agents,
                              int mute_every = 0);

}  // namespace themis::server
