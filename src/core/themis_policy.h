// The THEMIS ARBITER — Pseudocode 1 of the paper.
//
// On every scheduling pass with free GPUs:
//   1. probe all active apps' AGENTs for their current rho,
//   2. offer the free pool to the worst-off 1-f fraction (the fairness knob
//      f trades finish-time fairness for placement efficiency, Sec. 8.2),
//   3. collect one valuation-table bid per offered app,
//   4. run the Partial Allocation mechanism to pick winning rows and apply
//      hidden payments,
//   5. hand each winner its (scaled) bundle, letting the app's own scheduler
//      spread it over constituent jobs, and
//   6. assign leftover GPUs work-conservingly to apps outside the auction,
//      one gang at a time, preferring machines those apps already occupy
//      (Sec. 5.1 "Leftover Allocation").
#pragma once

#include <memory>

#include "auction/partial_allocation.h"
#include "core/agent.h"
#include "sim/policy.h"

namespace themis {

struct ThemisConfig {
  /// Fairness knob f in [0, 1]: the free pool is offered to the 1-f fraction
  /// of apps with the worst rho. Paper default 0.8 (Sec. 8.2).
  double fairness_knob = 0.8;
  /// Max non-zero rows per bid table.
  int max_bid_rows = 6;
  /// Ablation switch for the Sec. 8.3.1 / Fig. 8 behaviour: break equal-rho
  /// ties toward apps with smaller ideal running time ("we break ties in
  /// favor of shorter apps"). When false, ties fall back to app id.
  bool short_app_tiebreak = true;
  PaConfig pa;
};

class ThemisPolicy final : public ISchedulerPolicy {
 public:
  explicit ThemisPolicy(ThemisConfig config = {});

  void Schedule(const std::vector<GpuId>& free_gpus,
                SchedulerContext& ctx) override;
  const char* name() const override { return "Themis"; }

  /// Diagnostics for the overhead benchmark and tests.
  int auctions_run() const { return auctions_; }
  int total_leftover_gpus() const { return leftover_gpus_; }
  int total_offered_gpus() const { return offered_gpus_; }

 private:
  /// Stage 6: hand out whatever is still free after the auction.
  void AllocateLeftovers(SchedulerContext& ctx, const Agent& agent,
                         const std::vector<AppState*>& participants);

  ThemisConfig config_;
  int auctions_ = 0;
  int leftover_gpus_ = 0;
  int offered_gpus_ = 0;
};

}  // namespace themis
