#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <poll.h>
#include <utility>

#include "net/socket.h"

namespace themis::server {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Fleet-wide progress timeout: if nothing arrives for this long the run
/// aborts instead of hanging a test harness.
constexpr double kFleetStallMs = 60000.0;

bool SendAll(int fd, const std::string& frame, std::string* err) {
  std::string line = frame;
  line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const long w = net::SendSome(fd, line.data() + off, line.size() - off);
    if (w < 0) {
      if (err != nullptr) *err = "send failed (peer gone)";
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool ReadLineBlocking(int fd, net::LineReader& reader, std::string* line,
                      std::string* err) {
  for (;;) {
    if (reader.NextLine(*line)) {
      if (line->empty()) continue;
      return true;
    }
    char buf[16384];
    const long r = net::RecvSome(fd, buf, sizeof buf);
    if (r < 0) {
      if (err != nullptr) *err = "connection closed by server";
      return false;
    }
    if (r == 0) continue;  // EINTR on a blocking socket
    if (!reader.Feed(buf, static_cast<std::size_t>(r))) {
      if (err != nullptr) *err = "oversized frame from server";
      return false;
    }
  }
}

}  // namespace

ArbiterClient::~ArbiterClient() { Close(); }

bool ArbiterClient::Connect(const std::string& host, int port,
                            std::string* err) {
  Close();
  fd_ = net::TcpConnect(host, port, err);
  return fd_ >= 0;
}

bool ArbiterClient::Hello(const std::string& agent_name,
                          const std::vector<AppSpec>& apps, std::string* err) {
  if (!Send(net::EncodeHello(agent_name, apps), err)) return false;
  net::WireMessage msg;
  if (!NextMessage(&msg, err)) return false;
  if (msg.type == net::MsgType::kError) {
    if (err != nullptr) *err = "server refused: " + msg.code + ": " + msg.detail;
    return false;
  }
  if (msg.type != net::MsgType::kWelcome) {
    if (err != nullptr)
      *err = std::string("expected WELCOME, got ") + net::ToString(msg.type);
    return false;
  }
  agent_id_ = msg.agent_id;
  app_ids_ = msg.app_ids;
  return true;
}

bool ArbiterClient::Send(const std::string& frame, std::string* err) {
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  return SendAll(fd_, frame, err);
}

bool ArbiterClient::NextMessage(net::WireMessage* msg, std::string* err) {
  if (fd_ < 0) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  std::string line;
  if (!ReadLineBlocking(fd_, reader_, &line, err)) return false;
  try {
    *msg = net::ParseWireMessage(line);
  } catch (const net::WireError& e) {
    if (err != nullptr) *err = e.what();
    return false;
  }
  return true;
}

void ArbiterClient::Close() {
  net::CloseFd(fd_);
  fd_ = -1;
}

namespace {

struct FleetAgent {
  int fd = net::kBadFd;
  net::LineReader reader;
  net::WriteBuffer out;
  std::vector<AppId> apps;
  /// Declared per-app demand (constant honest report: max parallelism).
  std::vector<int> declared;
  bool mute = false;
  bool closed = false;
};

void DropAgent(FleetAgent& a) {
  net::CloseFd(a.fd);
  a.fd = net::kBadFd;
  a.closed = true;
}

}  // namespace

FleetResult RunScriptedAgents(const std::string& host, int port,
                              const std::vector<AgentScript>& agents,
                              int mute_every) {
  FleetResult result;
  std::vector<FleetAgent> fleet(agents.size());
  net::RaiseFdLimit(static_cast<long>(agents.size()) + 64);

  // Sequential registration barrier: agent i's WELCOME lands before agent
  // i+1 connects, so the server numbers apps deterministically — the
  // precondition for digest equality against the in-process reference.
  for (std::size_t i = 0; i < agents.size(); ++i) {
    FleetAgent& a = fleet[i];
    std::string err;
    a.fd = net::TcpConnect(host, port, &err);
    if (a.fd == net::kBadFd) {
      result.error = "agent " + std::to_string(i) + ": " + err;
      return result;
    }
    if (!SendAll(a.fd, net::EncodeHello(agents[i].name, agents[i].apps),
                 &err)) {
      result.error = "agent " + std::to_string(i) + ": " + err;
      return result;
    }
    std::string line;
    if (!ReadLineBlocking(a.fd, a.reader, &line, &err)) {
      result.error = "agent " + std::to_string(i) + ": " + err;
      return result;
    }
    net::WireMessage welcome;
    try {
      welcome = net::ParseWireMessage(line);
    } catch (const net::WireError& e) {
      result.error = "agent " + std::to_string(i) + ": " + e.what();
      return result;
    }
    if (welcome.type != net::MsgType::kWelcome) {
      result.error = "agent " + std::to_string(i) + ": expected WELCOME, got " +
                     net::ToString(welcome.type) +
                     (welcome.type == net::MsgType::kError
                          ? " (" + welcome.detail + ")"
                          : "");
      return result;
    }
    a.apps = welcome.app_ids;
    for (const AppSpec& spec : agents[i].apps)
      a.declared.push_back(spec.MaxJobParallelism());
    a.mute = mute_every > 0 && (static_cast<int>(i) % mute_every) == 0;
    net::SetNonBlocking(a.fd);
  }

  // Concurrent phase: one poll loop over the whole fleet.
  const auto handle_message = [&](FleetAgent& a, const net::WireMessage& msg) {
    switch (msg.type) {
      case net::MsgType::kOffer: {
        ++result.offers_received;
        result.last_round_seen =
            std::max(result.last_round_seen, msg.offer.round_id);
        if (a.mute) break;  // the slow AGENT: never answers
        std::vector<net::BidDemand> demands;
        for (std::size_t j = 0; j < a.apps.size(); ++j) {
          net::BidDemand d;
          d.app = a.apps[j];
          d.unmet_gpus = j < a.declared.size() ? a.declared[j] : 0;
          demands.push_back(d);
        }
        a.out.QueueFrame(net::EncodeBid(msg.offer.round_id, demands));
        a.out.Flush(a.fd);
        break;
      }
      case net::MsgType::kGrant: {
        result.last_round_seen =
            std::max(result.last_round_seen, msg.grants.round_id);
        for (const Grant& g : msg.grants.grants) {
          result.digest.Add(msg.grants.round_id, msg.grants.lease_expiry, g);
          ++result.grants_received;
        }
        for (AppId id : msg.finished_apps) {
          ++result.finished_apps;
          const auto it = std::find(a.apps.begin(), a.apps.end(), id);
          if (it != a.apps.end()) {
            const std::size_t idx =
                static_cast<std::size_t>(it - a.apps.begin());
            a.apps.erase(it);
            if (idx < a.declared.size())
              a.declared.erase(a.declared.begin() + idx);
          }
        }
        a.out.QueueFrame(net::EncodeAck(msg.grants.round_id));
        a.out.Flush(a.fd);
        break;
      }
      case net::MsgType::kError:
        ++result.errors_received;
        break;
      case net::MsgType::kClose:
        ++result.agents_closed;
        DropAgent(a);
        break;
      default:
        break;
    }
  };

  std::vector<pollfd> pfds;
  std::vector<FleetAgent*> owners;
  double last_progress_ms = NowMs();
  for (;;) {
    pfds.clear();
    owners.clear();
    for (FleetAgent& a : fleet) {
      if (a.closed) continue;
      short events = POLLIN;
      if (!a.out.empty()) events |= POLLOUT;
      pfds.push_back({a.fd, events, 0});
      owners.push_back(&a);
    }
    if (pfds.empty()) break;  // every agent done
    if (NowMs() - last_progress_ms > kFleetStallMs) {
      result.error = "fleet stalled: no frames for " +
                     std::to_string(static_cast<int>(kFleetStallMs / 1000)) +
                     "s";
      return result;
    }
    const int n = poll(pfds.data(), pfds.size(), 1000);
    if (n <= 0) continue;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      FleetAgent& a = *owners[i];
      if (a.closed) continue;
      if ((pfds[i].revents & POLLOUT) != 0 && !a.out.Flush(a.fd)) {
        DropAgent(a);
        continue;
      }
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char buf[16384];
      for (;;) {
        const long r = net::RecvSome(a.fd, buf, sizeof buf);
        if (r < 0) {
          DropAgent(a);  // dropped without CLOSE; tolerated
          break;
        }
        if (r == 0) break;
        last_progress_ms = NowMs();
        if (!a.reader.Feed(buf, static_cast<std::size_t>(r))) {
          DropAgent(a);
          break;
        }
        if (static_cast<std::size_t>(r) < sizeof buf) break;
      }
      if (a.closed) continue;
      std::string line;
      while (!a.closed && a.reader.NextLine(line)) {
        if (line.empty()) continue;
        net::WireMessage msg;
        try {
          msg = net::ParseWireMessage(line);
        } catch (const net::WireError&) {
          ++result.errors_received;
          continue;
        }
        handle_message(a, msg);
      }
    }
  }

  result.ok = true;
  return result;
}

}  // namespace themis::server
