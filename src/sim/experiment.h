// Experiment harness shared by the benchmark binaries, the examples and the
// integration tests: builds a cluster + trace + policy, runs the simulator,
// and returns the metric summaries the paper's figures report.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/themis_policy.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace themis {

enum class PolicyKind { kThemis, kGandiva, kTiresias, kSlaq, kDrf };

const char* ToString(PolicyKind kind);
std::unique_ptr<ISchedulerPolicy> MakePolicy(PolicyKind kind,
                                             ThemisConfig themis_config = {});

struct ExperimentConfig {
  ClusterSpec cluster = ClusterSpec::Simulation256();
  TraceConfig trace;
  SimConfig sim;
  PolicyKind policy = PolicyKind::kThemis;
  ThemisConfig themis;
};

struct ExperimentResult {
  std::string policy_name;
  double max_fairness = 0.0;
  double median_fairness = 0.0;
  double min_fairness = 0.0;
  double jains_index = 0.0;
  double avg_completion_time = 0.0;
  Work gpu_time = 0.0;
  double peak_contention = 0.0;
  int unfinished_apps = 0;
  int machine_failures = 0;
  std::vector<double> rhos;
  std::vector<double> completion_times;
  std::vector<double> placement_scores;
  std::vector<AllocationSample> timeline;
};

/// Generate the trace from `config.trace`, run one simulation, summarize.
ExperimentResult RunExperiment(const ExperimentConfig& config);

/// Run with a pre-built app list (used by the Fig. 8 hand-picked scenario).
ExperimentResult RunExperimentWithApps(const ExperimentConfig& config,
                                       std::vector<AppSpec> apps);

/// The testbed-scale configuration of Sec. 8.3: 50-GPU cluster, durations
/// scaled down 5x, same inter-arrival distribution.
ExperimentConfig TestbedScaleConfig(PolicyKind policy, std::uint64_t seed = 42,
                                    int num_apps = 60);

/// The simulator-scale configuration of Sec. 8.1/8.2: 256-GPU heterogeneous
/// cluster, mean inter-arrival 20 min.
ExperimentConfig SimScaleConfig(PolicyKind policy, std::uint64_t seed = 42,
                                int num_apps = 80);

}  // namespace themis
