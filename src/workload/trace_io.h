// Trace serialization: save generated workloads to CSV and load them back,
// so experiments can be archived, inspected, edited by hand, and replayed
// bit-identically — the workflow a real trace (like the paper's enterprise
// one) would follow.
//
// Format: one row per job, header included.
//   app_index,app_name,arrival,tuner,target_loss,
//   num_tasks,gpus_per_task,total_work,total_iterations,
//   loss_scale,loss_decay,loss_floor,model,max_span
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job_spec.h"

namespace themis {

/// Serialize apps to CSV. Apps keep their order; jobs keep theirs.
void WriteTraceCsv(std::ostream& out, const std::vector<AppSpec>& apps);
void WriteTraceCsvFile(const std::string& path, const std::vector<AppSpec>& apps);

/// Parse a trace written by WriteTraceCsv. Throws std::runtime_error with a
/// line number on malformed input.
std::vector<AppSpec> ReadTraceCsv(std::istream& in);
std::vector<AppSpec> ReadTraceCsvFile(const std::string& path);

/// Round-trip helpers used by tests.
const char* ToString(TunerKind kind);
TunerKind TunerKindFromString(const std::string& name);
LocalityLevel LocalityLevelFromString(const std::string& name);

}  // namespace themis
