// Heterogeneous-generation scheduling at the 512-machine / 4096-GPU
// topology: throughput and fairness of Themis across generation mixes.
//
// One fixed trace runs against the same cluster shape priced three ways —
// uniform K80 (the speed-1.0 baseline), uniform V100, and the 25/50/25
// K80/V100/A100 mix — so the sweep isolates the generation axis: the
// fastest-first pool views, the min-speed gang rule, and the speed-scaled
// T_ID all engage while topology and workload stay fixed. Each point
// reports wall time, rounds, and the Sec. 8.1 metric summary, emits
// BENCH_hetero_generations.json, and writes the per-scenario metric rows as
// CSV next to it (the same WriteSweepCsv schema the scenario sweeps use).
//
//   THEMIS_BENCH_MACHINES  topology size (default 512 machines x 8 GPUs)
//   THEMIS_BENCH_APPS      trace size   (default 192 apps)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace themis;

int EnvInt(const char* name, int fallback) {
  if (const char* v = std::getenv(name); v && *v) {
    const int parsed = std::atoi(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

struct MixPoint {
  const char* tag;   // metric suffix + scenario name
  const char* spec;  // ParseGenerationMix syntax; nullptr = leave at default
};

}  // namespace

int main() {
  const int machines = EnvInt("THEMIS_BENCH_MACHINES", 512);
  const int num_apps = EnvInt("THEMIS_BENCH_APPS", 192);
  const ClusterSpec base_topology = bench::ChurnSweepTopology(machines, 8);

  ExperimentConfig config;
  config.policy = PolicyKind::kThemis;
  config.trace.seed = 42;
  config.trace.num_apps = num_apps;
  config.trace.contention_factor = 2.0;
  config.sim.seed = 42;
  config.sim.lease_minutes = 20.0;

  const std::vector<AppSpec> apps = TraceGenerator(config.trace).Generate();

  const MixPoint points[] = {
      {"uniform-K80", nullptr},
      {"uniform-V100", "V100:1"},
      {"mixed-25-50-25", "K80:0.25,V100:0.5,A100:0.25"},
  };

  std::printf("Themis generation mixes at %d machines / %d GPUs, %zu apps\n\n",
              base_topology.TotalMachines(), base_topology.TotalGpus(),
              apps.size());
  std::printf("%-16s %10s %10s %10s %10s %8s %12s %8s\n", "mix", "eff_gpus",
              "wall_ms", "rounds", "max_rho", "jain", "avg_ACT", "unfin");

  bench::BenchReport report("hetero_generations", 42);
  report.Config("machines", base_topology.TotalMachines());
  report.Config("gpus", base_topology.TotalGpus());
  report.Config("apps", static_cast<double>(apps.size()));
  report.Config("policy", "themis");

  std::vector<ScenarioRun> runs;
  bool ok = true;
  for (const MixPoint& point : points) {
    ExperimentConfig cfg = config;
    cfg.cluster = base_topology;
    if (point.spec != nullptr)
      ApplyGenerationMix(cfg.cluster, ParseGenerationMix(point.spec));
    const double effective = cfg.cluster.TotalEffectiveGpus();

    ScenarioRun run;
    run.name = point.tag;
    const auto start = std::chrono::steady_clock::now();
    try {
      run.result = RunExperimentWithApps(cfg, apps);
      run.ok = true;
    } catch (const std::exception& e) {
      run.error = e.what();
      ok = false;
    }
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    const ExperimentResult& r = run.result;

    std::printf("%-16s %10.0f %10.0f %10d %10.2f %8.3f %12.1f %8d\n",
                point.tag, effective, wall_ms, r.scheduling_passes,
                r.max_fairness, r.jains_index, r.avg_completion_time,
                r.unfinished_apps);

    const std::string tag = std::string("@") + point.tag;
    report.Metric("effective_gpus" + tag, effective);
    report.Metric("wall_ms" + tag, wall_ms);
    report.Metric("passes" + tag, r.scheduling_passes);
    report.Metric("max_rho" + tag, r.max_fairness);
    report.Metric("jain" + tag, r.jains_index);
    report.Metric("avg_act_min" + tag, r.avg_completion_time);
    report.Metric("unfinished" + tag, r.unfinished_apps);
    if (run.ok && r.unfinished_apps != 0) {
      std::fprintf(stderr, "bench: %d apps unfinished at %s\n",
                   r.unfinished_apps, point.tag);
      ok = false;
    }
    runs.push_back(std::move(run));
  }

  if (!bench::WriteBenchCsv("hetero_generations", runs)) ok = false;
  if (!report.Write()) ok = false;
  return ok ? 0 : 1;
}
