#include "baselines/drf.h"

#include <algorithm>

namespace themis {

void DrfPolicy::Schedule(const std::vector<GpuId>& free_gpus,
                         SchedulerContext& ctx) {
  std::vector<GpuId> free = free_gpus;  // ascending id order

  // Max-min on instantaneous GPU share: one gang at a time to the app with
  // the smallest current holding (dominant share == GPU share in a
  // single-resource cluster).
  while (!free.empty()) {
    AppState* poorest = nullptr;
    int poorest_job = -1;
    for (AppState* app : ctx.apps()) {
      for (int j : app->ActiveJobs()) {
        JobState& job = app->jobs[j];
        if (job.UnmetGangs() <= 0) continue;
        if (job.spec.gpus_per_task > static_cast<int>(free.size())) continue;
        if (poorest == nullptr || app->GpusHeld() < poorest->GpusHeld() ||
            (app->GpusHeld() == poorest->GpusHeld() && app->id < poorest->id)) {
          poorest = app;
          poorest_job = j;
        }
        break;  // evaluating one eligible job per app suffices for the share
      }
    }
    if (poorest == nullptr) break;

    JobState& job = poorest->jobs[poorest_job];
    const int gang = job.spec.gpus_per_task;
    // Placement-unaware: first free GPUs by id.
    std::vector<GpuId> pick(free.begin(), free.begin() + gang);
    free.erase(free.begin(), free.begin() + gang);
    ctx.Grant(*poorest, job, pick);
  }
}

}  // namespace themis
