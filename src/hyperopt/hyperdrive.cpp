#include "hyperopt/hyperdrive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace themis {

HyperDrive::HyperDrive(HyperDriveConfig config) : config_(config) {}

void HyperDrive::Init(const AppSpec& app) { target_loss_ = app.target_loss; }

double HyperDrive::ProjectTotalIterations(const JobView& job) const {
  // Read the loss trajectory observed so far (as the paper's profiler reads
  // TF logs) and fit.
  std::vector<LossSample> samples;
  const double upto = std::max(2.0, job.done_iterations);
  for (int k = 1; k <= 8; ++k) {
    const double it = upto * static_cast<double>(k) / 8.0;
    samples.push_back({it, job.spec->loss.LossAt(it)});
  }
  auto pred = PredictIterationsToTarget(samples, target_loss_);
  return pred.value_or(job.spec->total_iterations);
}

TunerDecision HyperDrive::Step(const std::vector<JobView>& jobs, Time /*now*/) {
  TunerDecision decision;
  decision.parallelism_cap.resize(jobs.size(), 0);

  std::vector<int> alive;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    if (jobs[i].alive && !jobs[i].finished) alive.push_back(static_cast<int>(i));

  // Warmup: every alive job runs at full parallelism until it has produced
  // enough loss samples to classify.
  std::vector<double> projection(jobs.size(), 0.0);
  double best = std::numeric_limits<double>::infinity();
  bool any_classified = false;
  for (int i : alive) {
    if (jobs[i].done_iterations < config_.warmup_iterations) continue;
    projection[i] = ProjectTotalIterations(jobs[i]);
    best = std::min(best, projection[i]);
    any_classified = true;
  }

  for (int i : alive) {
    const int max_par = jobs[i].spec->MaxParallelism();
    if (!any_classified || jobs[i].done_iterations < config_.warmup_iterations) {
      decision.parallelism_cap[i] = max_par;
      continue;
    }
    const double ratio = projection[i] / best;
    if (ratio > config_.poor_ratio && alive.size() > 1) {
      decision.kill.push_back(i);
      decision.parallelism_cap[i] = 0;
    } else if (ratio > config_.good_ratio) {
      // Promising: reduced parallelism, but never below one task's gang.
      const int reduced = static_cast<int>(
          std::ceil(max_par * config_.promising_parallelism));
      decision.parallelism_cap[i] =
          std::max(jobs[i].spec->gpus_per_task,
                   reduced - reduced % jobs[i].spec->gpus_per_task);
    } else {
      decision.parallelism_cap[i] = max_par;  // good
    }
  }
  // Never kill every job: if all were classified poor, spare the best one.
  if (!alive.empty() && decision.kill.size() == alive.size()) {
    int best_idx = alive.front();
    for (int i : alive)
      if (projection[i] < projection[best_idx]) best_idx = i;
    decision.kill.erase(
        std::remove(decision.kill.begin(), decision.kill.end(), best_idx),
        decision.kill.end());
    decision.parallelism_cap[best_idx] = jobs[best_idx].spec->MaxParallelism();
  }
  return decision;
}

}  // namespace themis
