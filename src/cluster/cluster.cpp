#include "cluster/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace themis {

Cluster::Cluster(ClusterSpec spec)
    : topo_(std::move(spec)),
      leases_(topo_.num_gpus()),
      machine_down_(topo_.num_machines(), false),
      free_on_machine_(topo_.num_machines()) {
  for (MachineId m = 0; m < static_cast<MachineId>(topo_.num_machines()); ++m) {
    free_on_machine_[m] = topo_.machine_gpus(m);  // ascending by construction
    free_speed_total_ +=
        topo_.machine_speed(m) * static_cast<double>(free_on_machine_[m].size());
  }
}

void Cluster::TakeFromFreeList(GpuId gpu) {
  const MachineId m = topo_.gpu(gpu).machine;
  auto& free = free_on_machine_[m];
  // The caller verified the GPU is free, so it must be listed.
  free.erase(std::lower_bound(free.begin(), free.end(), gpu));
  if (!machine_down_[m]) free_speed_total_ -= topo_.machine_speed(m);
}

void Cluster::ReturnToFreeList(GpuId gpu) {
  const MachineId m = topo_.gpu(gpu).machine;
  auto& free = free_on_machine_[m];
  free.insert(std::lower_bound(free.begin(), free.end(), gpu), gpu);
  if (!machine_down_[m]) free_speed_total_ += topo_.machine_speed(m);
}

std::vector<GpuId> Cluster::FreeGpus() const {
  std::vector<GpuId> out;
  out.reserve(num_gpus() - num_allocated_);
  for (MachineId m = 0; m < free_on_machine_.size(); ++m) {
    if (machine_down_[m]) continue;
    out.insert(out.end(), free_on_machine_[m].begin(),
               free_on_machine_[m].end());
  }
  return out;
}

std::vector<GpuId> Cluster::FreeGpusBySpeed() const {
  // Same ordering contract as FreePool::FirstNFastest: both concatenate in
  // Topology::machines_by_speed() order (the single home of the speed
  // tie-break), ascending GPU id within a machine.
  std::vector<GpuId> out;
  out.reserve(num_gpus() - num_allocated_);
  for (MachineId m : topo_.machines_by_speed()) {
    if (machine_down_[m]) continue;
    out.insert(out.end(), free_on_machine_[m].begin(),
               free_on_machine_[m].end());
  }
  return out;
}

std::vector<int> Cluster::FreeGpusPerMachine() const {
  std::vector<int> out(free_on_machine_.size());
  for (MachineId m = 0; m < out.size(); ++m)
    out[m] = machine_down_[m] ? 0
                              : static_cast<int>(free_on_machine_[m].size());
  return out;
}

std::vector<GpuId> Cluster::FreeGpusOnMachine(MachineId m) const {
  if (machine_down_[m]) return {};
  return free_on_machine_[m];
}

std::vector<GpuId> Cluster::GpusHeldBy(AppId app) const {
  std::vector<GpuId> out;
  const auto it = holdings_.find(app);
  if (it == holdings_.end()) return out;
  for (const auto& [job, gpus] : it->second)
    out.insert(out.end(), gpus.begin(), gpus.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<GpuId> Cluster::GpusHeldBy(AppId app, JobId job) const {
  const auto it = holdings_.find(app);
  if (it == holdings_.end()) return {};
  const auto jt = it->second.find(job);
  if (jt == it->second.end()) return {};
  return {jt->second.begin(), jt->second.end()};
}

void Cluster::Allocate(GpuId gpu, AppId app, JobId job, Time expiry) {
  if (gpu >= leases_.size()) throw std::out_of_range("Allocate: bad GPU id");
  if (leases_[gpu])
    throw std::logic_error("Allocate: GPU already leased (double allocation)");
  if (machine_down_[topo_.gpu(gpu).machine])
    throw std::logic_error("Allocate: machine is down");
  leases_[gpu] = Lease{app, job, expiry};
  ++num_allocated_;
  TakeFromFreeList(gpu);
  expiries_.emplace(expiry, gpu);
  holdings_[app][job].insert(gpu);
}

void Cluster::ReleaseIndexed(GpuId gpu, const Lease& lease) {
  expiries_.erase({lease.expiry, gpu});
  const auto it = holdings_.find(lease.app);
  if (it != holdings_.end()) {
    const auto jt = it->second.find(lease.job);
    if (jt != it->second.end()) {
      jt->second.erase(gpu);
      if (jt->second.empty()) it->second.erase(jt);
    }
    if (it->second.empty()) holdings_.erase(it);
  }
  leases_[gpu].reset();
  --num_allocated_;
  ReturnToFreeList(gpu);
}

void Cluster::Release(GpuId gpu) {
  if (gpu >= leases_.size()) throw std::out_of_range("Release: bad GPU id");
  if (!leases_[gpu]) throw std::logic_error("Release: GPU already free");
  ReleaseIndexed(gpu, *leases_[gpu]);
}

void Cluster::ReleaseAll(AppId app) {
  const auto it = holdings_.find(app);
  if (it == holdings_.end()) return;
  // Flatten first: ReleaseIndexed mutates the holdings map being walked.
  std::vector<GpuId> held;
  for (const auto& [job, gpus] : it->second)
    held.insert(held.end(), gpus.begin(), gpus.end());
  for (GpuId g : held) ReleaseIndexed(g, *leases_[g]);
}

std::vector<GpuId> Cluster::ExpiredGpus(Time now) const {
  std::vector<GpuId> out;
  for (auto it = expiries_.begin();
       it != expiries_.end() && it->first <= now; ++it)
    out.push_back(it->second);
  std::sort(out.begin(), out.end());
  return out;
}

Time Cluster::NextExpiryAfter(Time t) const {
  const auto it = expiries_.upper_bound(
      {t, std::numeric_limits<GpuId>::max()});
  return it == expiries_.end() ? kInfiniteTime : it->first;
}

void Cluster::Renew(GpuId gpu, Time new_expiry) {
  if (gpu >= leases_.size() || !leases_[gpu])
    throw std::logic_error("Renew: GPU not leased");
  expiries_.erase({leases_[gpu]->expiry, gpu});
  leases_[gpu]->expiry = new_expiry;
  expiries_.emplace(new_expiry, gpu);
}

void Cluster::SetMachineDown(MachineId machine, bool down) {
  if (machine >= machine_down_.size())
    throw std::out_of_range("SetMachineDown: bad machine id");
  if (machine_down_[machine] != down) {
    num_machines_down_ += down ? 1 : -1;
    // The machine's free GPUs enter/leave the effective free pool with it.
    const double free_speed =
        topo_.machine_speed(machine) *
        static_cast<double>(free_on_machine_[machine].size());
    free_speed_total_ += down ? -free_speed : free_speed;
  }
  machine_down_[machine] = down;
}

}  // namespace themis
