#include "core/themis_policy.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/parallel.h"
#include "core/rho_index.h"

namespace themis {

ThemisPolicy::ThemisPolicy(ThemisConfig config) : config_(config) {}

GrantSet ThemisPolicy::RunRound(const ResourceOffer& offer,
                                SchedulerContext& ctx) {
  Agent agent(&ctx.topology(), &ctx.estimator(), ctx.now());

  // Thread budget for the round's data-parallel phases (probe, bid prep).
  // Only the stateless clairvoyant estimator is safe off the main thread:
  // kNoisy draws from the estimator's RNG on every probe and kCurveFit reads
  // shared fit state, so their call *sequence* is part of the contract and
  // they fall back to the serial loop regardless of the configured budget.
  const bool stateless_estimator =
      ctx.estimator().config().mode == EstimationMode::kClairvoyant;
  const int round_threads =
      stateless_estimator ? std::max(1, config_.auction_threads) : 1;

  // Steps 1-2: probe for rho, sort worst-off first, keep the top 1-f
  // fraction (Fig. 3, steps 1-2). The comparator is a strict total order
  // (ids are unique), so "sorted under it" names one unique permutation —
  // which is what lets the indexed path below reproduce the full scan's
  // stable_sort bit-for-bit from a merge.
  const bool short_first = config_.short_app_tiebreak;
  const auto worse = [short_first](const AppState* a, const AppState* b) {
    if (a->last_rho != b->last_rho) return a->last_rho > b->last_rho;
    // Sec. 8.3.1 / Fig. 8: "we break ties in favor of shorter apps" — equal
    // (often unbounded) rho goes to the app with the smaller ideal time.
    if (short_first && a->ideal_time != b->ideal_time)
      return a->ideal_time < b->ideal_time;
    return a->id < b->id;  // deterministic final tie-break
  };
  const auto offer_count = [this](std::size_t num_candidates) {
    // Always at least one app so the round is work conserving.
    return std::max(
        1, static_cast<int>(std::ceil((1.0 - config_.fairness_knob) *
                                      static_cast<double>(num_candidates))));
  };

  std::vector<AppState*> participants;
  RhoIndex* index = config_.incremental_filter ? ctx.rho_index() : nullptr;
  if (index != nullptr) {
    // Indexed filter (core/rho_index.h): only apps holding GPUs can have a
    // rho that moved since the last round, so only they are re-probed —
    // ascending id, which is exactly the full scan's estimator-call
    // sequence, because gangless apps contribute no estimator calls there.
    // The gangless hungry class sits pre-ordered in the index with
    // last_rho pinned to the kUnboundedRho constant the probe would return.
    index->SetTiebreak(short_first);
    const std::vector<AppState*>& holders = index->holders();
    // Probe phase: each slot touches only its own app, so the parallel probe
    // stores the exact values the serial ascending loop would.
    ParallelFor(holders.size(), round_threads,
                [&](std::size_t i) {
                  holders[i]->last_rho = agent.CurrentRho(*holders[i]);
                });
    std::vector<AppState*> bounded;
    for (AppState* app : holders)
      if (app->UnmetDemand() > 0) bounded.push_back(app);
    const std::size_t num_candidates =
        bounded.size() + index->num_unbounded();
    if (num_candidates == 0) return ctx.TakeGrants();
    std::stable_sort(bounded.begin(), bounded.end(), worse);

    // Merge the two sorted classes under the full comparator, stopping at
    // the cut instead of materializing the whole order.
    const std::size_t take = std::min<std::size_t>(
        static_cast<std::size_t>(offer_count(num_candidates)), num_candidates);
    participants.reserve(take);
    auto ub = index->unbounded_candidates().begin();
    const auto ub_end = index->unbounded_candidates().end();
    std::size_t bi = 0;
    while (participants.size() < take) {
      if (bi < bounded.size() && (ub == ub_end || worse(bounded[bi], *ub)))
        participants.push_back(bounded[bi++]);
      else
        participants.push_back(*ub++);
    }
  } else {
    // Literal filter: probe every active app, sort the full candidate set.
    const AppList& apps = ctx.apps();
    ParallelFor(apps.size(), round_threads, [&](std::size_t i) {
      apps[i]->last_rho = agent.CurrentRho(*apps[i]);
    });
    std::vector<AppState*> candidates;
    for (AppState* app : apps)
      if (app->UnmetDemand() > 0) candidates.push_back(app);
    if (candidates.empty()) return ctx.TakeGrants();
    std::stable_sort(candidates.begin(), candidates.end(), worse);
    const int n_offer = offer_count(candidates.size());
    participants.assign(
        candidates.begin(),
        candidates.begin() + std::min<std::size_t>(n_offer, candidates.size()));
  }

  // Step 3: collect bids against the offer's resource vector R-> and pool —
  // the protocol inputs, no recount of the cluster's free state.
  const std::vector<int>& offered = offer.free_per_machine;
  const std::vector<GpuId>& free_gpus = offer.gpus;

  // Bids are independent by construction — each AGENT values the same offer
  // against only its own app state — so preparation fans out over the pool.
  // Every worker writes only its pre-sized bids[i] slot, making the merged
  // sequence position-identical to the serial loop at any thread count.
  // Bid prep dominates the round, so grain 1 lets the pool balance the
  // unevenly sized valuation tables.
  std::vector<AgentBid> bids(participants.size());
  ParallelFor(
      participants.size(), round_threads,
      [&](std::size_t i) {
        bids[i] = agent.PrepareBid(*participants[i], free_gpus,
                                   config_.max_bid_rows);
      },
      /*grain=*/1);
  // The solver borrows the tables in place — no per-bid copy.
  std::vector<const BidTable*> tables;
  tables.reserve(bids.size());
  for (const AgentBid& bid : bids) tables.push_back(&bid.table);

  // Step 4: partial allocation with hidden payments.
  const PaResult pa = PartialAllocation(tables, offered, config_.pa);
  ctx.grants().diagnostics.auction_ran = true;
  ctx.grants().diagnostics.auction_participants =
      static_cast<int>(participants.size());

  // Step 5: stage grants. Each winner receives granted[m] GPUs on machine m,
  // preferring the concrete GPUs its own bid row picked. Bids were prepared
  // independently, so two rows may name the same GPU id even though the
  // per-machine *counts* fit the offer; a shared free-set keeps
  // materialization conflict-free.
  std::vector<bool> still_free(ctx.topology().num_gpus(), false);
  for (GpuId g : free_gpus) still_free[g] = true;

  // Per-machine preference buckets, allocated once and reused across
  // winners; only the machines a winner's bid row touched are cleared
  // between iterations, so the per-winner hot path allocates nothing.
  // Within a bucket the bid row's GPU order is preserved and machines are
  // visited ascending by the granted loop — the same visit order the old
  // per-winner std::map produced.
  std::vector<std::vector<GpuId>> preferred(ctx.topology().num_machines());
  std::vector<MachineId> touched;
  touched.reserve(ctx.topology().num_machines());

  for (std::size_t i = 0; i < pa.winners.size(); ++i) {
    const PaWinner& w = pa.winners[i];
    if (w.row == 0) continue;  // zero row: no new allocation this round
    AppState* app = participants[i];

    for (MachineId m : touched) preferred[m].clear();
    touched.clear();
    for (GpuId g : bids[i].row_gpus[w.row]) {
      const MachineId m = ctx.topology().gpu(g).machine;
      if (preferred[m].empty()) touched.push_back(m);
      preferred[m].push_back(g);
    }

    std::vector<GpuId> concrete;
    for (MachineId m = 0; m < static_cast<MachineId>(w.granted.size()); ++m) {
      int need = w.granted[m];
      if (need <= 0) continue;
      auto take = [&](GpuId g) {
        if (need > 0 && still_free[g]) {
          still_free[g] = false;
          concrete.push_back(g);
          --need;
        }
      };
      for (GpuId g : preferred[m]) take(g);
      for (GpuId g : ctx.topology().machine_gpus(m)) {
        if (need == 0) break;
        if (ctx.free_pool().Contains(g)) take(g);
      }
    }
    for (const JobAssignment& a : agent.DistributeToJobs(*app, concrete)) {
      ctx.Grant(*app, app->jobs[a.job_index], a.gpus);
    }
    // GPUs Distribute left unassigned (no whole gang) return to the pool.
    for (GpuId g : concrete)
      if (ctx.free_pool().Contains(g)) still_free[g] = true;
  }

  // Step 6: leftover allocation (work conserving).
  AllocateLeftovers(ctx, agent, participants);
  return ctx.TakeGrants();
}

void ThemisPolicy::AllocateLeftovers(
    SchedulerContext& ctx, const Agent& agent,
    const std::vector<AppState*>& participants) {
  // Participant lookups are O(log P) against a sorted id vector instead of
  // an O(P) find per candidate per iteration.
  std::vector<AppId> participant_ids;
  participant_ids.reserve(participants.size());
  for (const AppState* app : participants) participant_ids.push_back(app->id);
  std::sort(participant_ids.begin(), participant_ids.end());
  auto is_participant = [&](const AppState* app) {
    return std::binary_search(participant_ids.begin(), participant_ids.end(),
                              app->id);
  };

  // Per-app machine bitmaps survive across iterations: a candidate's gangs
  // only change when it wins a grant, so only the winner's entry is
  // invalidated. The bitmaps feed pure set intersections, so reuse is
  // result-neutral.
  std::unordered_map<AppId, std::vector<bool>> machine_cache;
  auto app_machines = [&](const AppState* app) -> const std::vector<bool>& {
    auto [it, inserted] = machine_cache.try_emplace(app->id);
    if (inserted) {
      it->second.assign(ctx.topology().num_machines(), false);
      for (const JobState& job : app->jobs)
        for (GpuId g : job.gpus)
          it->second[ctx.topology().gpu(g).machine] = true;
    }
    return it->second;
  };

  // Two rounds: first apps that did not participate in the auction (the
  // paper's rule — they cannot game leftovers), then, purely for work
  // conservation, anyone with unmet demand.
  for (const bool outsiders_only : {true, false}) {
    bool progress = true;
    while (progress) {
      progress = false;
      std::vector<GpuId> free = ctx.free_pool().ToVector();
      if (free.empty()) return;

      // Candidates that can absorb at least one whole gang.
      std::vector<AppState*> candidates;
      for (AppState* app : ctx.apps()) {
        if (outsiders_only && is_participant(app)) continue;
        if (app->UnmetDemand() <= 0) continue;
        for (int j : app->ActiveJobs()) {
          const JobState& job = app->jobs[j];
          if (job.UnmetGangs() > 0 &&
              job.spec.gpus_per_task <= static_cast<int>(free.size())) {
            candidates.push_back(app);
            break;
          }
        }
      }
      if (candidates.empty()) break;

      // Paper: "when many such candidate apps exist for a GPU, one of the
      // apps is picked at random"; prefer apps already placed on machines
      // with free GPUs.
      std::vector<AppState*> anchored;
      for (AppState* app : candidates) {
        const std::vector<bool>& on_machines = app_machines(app);
        for (GpuId g : free)
          if (on_machines[ctx.topology().gpu(g).machine]) {
            anchored.push_back(app);
            break;
          }
      }
      auto& pick_from = anchored.empty() ? candidates : anchored;
      AppState* app = pick_from[ctx.rng().UniformInt(
          0, static_cast<int>(pick_from.size()) - 1)];

      // Give its highest-priority job one gang, placed near its gang.
      for (int j : agent.JobPriorityOrder(*app)) {
        JobState& job = app->jobs[j];
        if (job.UnmetGangs() <= 0) continue;
        const int gang = job.spec.gpus_per_task;
        std::vector<GpuId> picked =
            PickBestPlacedNear(gang, free, job.gpus, ctx.topology());
        if (static_cast<int>(picked.size()) < gang) continue;
        // Respect placement constraints: a gang the job cannot run on
        // (S = 0) would hold the lease without making progress.
        std::vector<GpuId> combined = job.gpus;
        combined.insert(combined.end(), picked.begin(), picked.end());
        combined.resize(combined.size() - combined.size() % gang);
        if (combined.empty() ||
            EffectiveJobRate(job.spec, combined, ctx.topology()) <= 0.0)
          continue;
        ctx.Grant(*app, job, picked);
        machine_cache.erase(app->id);  // its gang just grew
        progress = true;
        break;
      }
    }
  }
}

}  // namespace themis
