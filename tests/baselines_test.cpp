// Tests for baselines/: the Gandiva / Tiresias / SLAQ emulations of Sec. 8.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/drf.h"
#include "baselines/gandiva.h"
#include "baselines/slaq.h"
#include "baselines/tiresias.h"

namespace themis {
namespace {

JobSpec MakeJobSpec(double work, int num_tasks, int gpus_per_task,
                    double decay = 0.6, const char* model = "ResNet50") {
  JobSpec spec;
  spec.total_work = work;
  spec.total_iterations = 1000.0;
  spec.num_tasks = num_tasks;
  spec.gpus_per_task = gpus_per_task;
  spec.model = ModelByName(model);
  spec.loss = LossCurve(0.1 * std::pow(1001.0, decay), decay, 0.0);
  return spec;
}

std::unique_ptr<AppState> MakeApp(AppId id, Time arrival,
                                  std::vector<JobSpec> jobs) {
  auto app = std::make_unique<AppState>();
  app->id = id;
  app->spec.arrival = arrival;
  app->spec.target_loss = 0.1;
  app->spec.jobs = jobs;
  app->arrived = true;
  JobId next = 0;
  for (const JobSpec& js : jobs) {
    JobState job;
    job.id = next++;
    job.spec = js;
    job.parallelism_cap = js.MaxParallelism();
    app->jobs.push_back(std::move(job));
  }
  app->ideal_time = std::max(1e-9, app->spec.IdealRunningTime());
  return app;
}

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest()
      : cluster_(ClusterSpec::Uniform(2, 2, 4, 2)), est_({}), rng_(1) {}

  void Schedule(ISchedulerPolicy& policy, Time now = 0.0) {
    AppList list;
    for (auto& app : apps_) list.push_back(app.get());
    SchedulerContext ctx(now, &cluster_, &est_, /*lease=*/20.0, &list, &rng_);
    policy.Schedule(cluster_.FreeGpus(), ctx);
  }

  Cluster cluster_;
  WorkEstimator est_;
  Rng rng_;
  std::vector<std::unique_ptr<AppState>> apps_;
};

TEST_F(BaselineTest, TiresiasServesLeastAttainedServiceFirst) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 4)}));
  apps_.push_back(MakeApp(1, 0.0, {MakeJobSpec(40.0, 1, 4)}));
  apps_[0]->attained_service = 100.0;
  apps_[1]->attained_service = 5.0;

  // Only one gang available.
  for (GpuId g = 4; g < 16; ++g) cluster_.Allocate(g, 99, 0, 100.0);
  TiresiasPolicy policy;
  Schedule(policy);
  EXPECT_EQ(apps_[1]->GpusHeld(), 4);
  EXPECT_EQ(apps_[0]->GpusHeld(), 0);
}

TEST_F(BaselineTest, TiresiasIsPlacementUnaware) {
  // Free GPUs: one on each of four machines plus a full machine; Tiresias
  // takes ids in order, spreading the gang, instead of packing.
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 4, 0.6, "VGG16")}));
  // Block GPUs so the lowest ids span machines: free = {3, 7, 11, 15, ...}.
  for (GpuId g = 0; g < 16; ++g)
    if (g % 4 != 3) cluster_.Allocate(g, 99, 0, 100.0);
  TiresiasPolicy policy;
  Schedule(policy);
  ASSERT_EQ(apps_[0]->jobs[0].gpus.size(), 4u);
  EXPECT_EQ(cluster_.topology().SpanLevel(apps_[0]->jobs[0].gpus),
            LocalityLevel::kCrossRack);
}

TEST_F(BaselineTest, TiresiasRoundRobinsAcrossEqualService) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 4)}));
  apps_.push_back(MakeApp(1, 0.0, {MakeJobSpec(40.0, 2, 4)}));
  TiresiasPolicy policy;
  Schedule(policy);
  // 16 GPUs, demand 8 + 8: both fully served.
  EXPECT_EQ(apps_[0]->GpusHeld(), 8);
  EXPECT_EQ(apps_[1]->GpusHeld(), 8);
}

TEST_F(BaselineTest, GandivaPacksGangsForLocality) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 4, 0.6, "VGG16")}));
  GandivaPolicy policy;
  Schedule(policy);
  ASSERT_EQ(apps_[0]->jobs[0].gpus.size(), 4u);
  EXPECT_LE(static_cast<int>(
                cluster_.topology().SpanLevel(apps_[0]->jobs[0].gpus)),
            static_cast<int>(LocalityLevel::kMachine));
}

TEST_F(BaselineTest, GandivaGrowsJobsNearTheirExistingGpus) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 2)}));
  apps_[0]->jobs[0].gpus = {4, 5};
  cluster_.Allocate(4, 0, 0, 100.0);
  cluster_.Allocate(5, 0, 0, 100.0);
  GandivaPolicy policy;
  Schedule(policy);
  ASSERT_EQ(apps_[0]->jobs[0].gpus.size(), 4u);
  // The second gang lands on the same machine (GPUs 6, 7).
  EXPECT_EQ(cluster_.topology().SpanLevel(apps_[0]->jobs[0].gpus),
            LocalityLevel::kMachine);
}

TEST_F(BaselineTest, GandivaIsWorkConserving) {
  for (AppId i = 0; i < 4; ++i)
    apps_.push_back(MakeApp(i, 0.0, {MakeJobSpec(40.0, 1, 4)}));
  GandivaPolicy policy;
  Schedule(policy);
  EXPECT_EQ(cluster_.num_free(), 0);
}

TEST_F(BaselineTest, SlaqPrefersSteeperLossCurves) {
  // decay 1.2 converges much faster than 0.3: bigger marginal loss drop.
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(400.0, 1, 4, 0.3)}));
  apps_.push_back(MakeApp(1, 0.0, {MakeJobSpec(400.0, 1, 4, 1.2)}));
  // Single gang available.
  for (GpuId g = 4; g < 16; ++g) cluster_.Allocate(g, 99, 0, 100.0);
  SlaqPolicy policy;
  Schedule(policy);
  EXPECT_EQ(apps_[1]->GpusHeld(), 4);
  EXPECT_EQ(apps_[0]->GpusHeld(), 0);
}

TEST_F(BaselineTest, SlaqStillServesConvergedJobsWhenUncontested) {
  // A nearly converged job has ~zero marginal loss decrease, but SLAQ must
  // stay work conserving.
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 4)}));
  apps_[0]->jobs[0].done = 39.99;
  SlaqPolicy policy;
  Schedule(policy);
  EXPECT_EQ(apps_[0]->GpusHeld(), 4);
}

TEST_F(BaselineTest, AllBaselinesHonorGangGranularity) {
  for (auto make : {+[]() -> std::unique_ptr<ISchedulerPolicy> {
                      return std::make_unique<GandivaPolicy>();
                    },
                    +[]() -> std::unique_ptr<ISchedulerPolicy> {
                      return std::make_unique<TiresiasPolicy>();
                    },
                    +[]() -> std::unique_ptr<ISchedulerPolicy> {
                      return std::make_unique<SlaqPolicy>();
                    }}) {
    Cluster cluster(ClusterSpec::Uniform(1, 1, 4, 2));
    auto app = MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 3)});  // 3-GPU gangs
    AppList list{app.get()};
    WorkEstimator est({});
    Rng rng(1);
    SchedulerContext ctx(0.0, &cluster, &est, 20.0, &list, &rng);
    auto policy = make();
    policy->Schedule(cluster.FreeGpus(), ctx);
    // 4 free GPUs, 3-GPU gangs: exactly one gang granted.
    EXPECT_EQ(app->GpusHeld(), 3) << policy->name();
  }
}


TEST_F(BaselineTest, DrfServesSmallestInstantaneousShareFirst) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 4)}));
  apps_.push_back(MakeApp(1, 0.0, {MakeJobSpec(40.0, 2, 4)}));
  // App 0 already holds a gang.
  apps_[0]->jobs[0].gpus = {0, 1, 2, 3};
  for (GpuId g = 0; g < 4; ++g) cluster_.Allocate(g, 0, 0, 100.0);
  // Only one more gang free.
  for (GpuId g = 8; g < 16; ++g) cluster_.Allocate(g, 99, 0, 100.0);
  DrfPolicy policy;
  Schedule(policy);
  EXPECT_EQ(apps_[1]->GpusHeld(), 4);  // the zero-share app wins
  EXPECT_EQ(apps_[0]->GpusHeld(), 4);
}

TEST_F(BaselineTest, DrfEqualizesSharesRoundRobin) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 4)}));
  apps_.push_back(MakeApp(1, 0.0, {MakeJobSpec(40.0, 2, 4)}));
  DrfPolicy policy;
  Schedule(policy);
  EXPECT_EQ(apps_[0]->GpusHeld(), 8);
  EXPECT_EQ(apps_[1]->GpusHeld(), 8);
}

TEST_F(BaselineTest, DrfIsPlacementUnaware) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 4, 0.6, "VGG16")}));
  for (GpuId g = 0; g < 16; ++g)
    if (g % 4 != 3) cluster_.Allocate(g, 99, 0, 100.0);
  DrfPolicy policy;
  Schedule(policy);
  ASSERT_EQ(apps_[0]->jobs[0].gpus.size(), 4u);
  EXPECT_EQ(cluster_.topology().SpanLevel(apps_[0]->jobs[0].gpus),
            LocalityLevel::kCrossRack);
}

}  // namespace
}  // namespace themis
