// Minimal leveled logger. Simulations are silent by default; examples and
// debugging sessions can raise the level. Not thread-safe by design — the
// simulator is single-threaded and deterministic.
#pragma once

#include <sstream>
#include <string>

namespace themis {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogMessage(LogLevel level, const std::string& msg);

namespace internal {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace themis

#define THEMIS_LOG(level)                                          \
  if (static_cast<int>(::themis::LogLevel::level) <                \
      static_cast<int>(::themis::GetLogLevel())) {                 \
  } else                                                           \
    ::themis::internal::LogLine(::themis::LogLevel::level)
