// Tests for core/rho_index.h: the maintained filter index behind
// ThemisConfig::incremental_filter must be pinned bit-identical to the
// literal probe-everything filter (results, fingerprints, diagnostics)
// across every policy, both engines, failures, heterogeneous generations,
// noisy estimation and streamed traces; the index itself must agree with a
// from-scratch classification after arbitrary event sequences; and the
// indexed participant cut must reproduce the comparator's tie-break chain
// exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/rho_index.h"
#include "core/themis_policy.h"
#include "sim/experiment.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace themis {
namespace {

// ---------------------------------------------------------------------------
// Bit-identical equivalence: indexed vs. recompute filter, whole experiments.
// ---------------------------------------------------------------------------

void ExpectSameExperiment(const ExperimentResult& a,
                          const ExperimentResult& b) {
  EXPECT_EQ(a.max_fairness, b.max_fairness);
  EXPECT_EQ(a.median_fairness, b.median_fairness);
  EXPECT_EQ(a.min_fairness, b.min_fairness);
  EXPECT_EQ(a.jains_index, b.jains_index);
  EXPECT_EQ(a.avg_completion_time, b.avg_completion_time);
  EXPECT_EQ(a.gpu_time, b.gpu_time);
  EXPECT_EQ(a.peak_contention, b.peak_contention);
  EXPECT_EQ(a.unfinished_apps, b.unfinished_apps);
  EXPECT_EQ(a.machine_failures, b.machine_failures);
  EXPECT_EQ(a.scheduling_passes, b.scheduling_passes);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.sim_time_advances, b.sim_time_advances);
  EXPECT_EQ(a.finished_apps, b.finished_apps);
  EXPECT_EQ(a.rhos, b.rhos);
  EXPECT_EQ(a.completion_times, b.completion_times);
  EXPECT_EQ(a.placement_scores, b.placement_scores);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time, b.timeline[i].time);
    EXPECT_EQ(a.timeline[i].app, b.timeline[i].app);
    EXPECT_EQ(a.timeline[i].gpus, b.timeline[i].gpus);
  }
}

// Contended mixed workload (multi-job tuned apps, overlapping lifetimes,
// restarts): everything that can make the two filter paths diverge.
ExperimentConfig ContendedConfig(PolicyKind policy) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Uniform(2, 4, 4, 2);
  config.policy = policy;
  config.trace.seed = 33;
  config.trace.num_apps = 25;
  config.trace.jobs_per_app_median = 6.0;
  config.trace.jobs_per_app_max = 12;
  config.sim.seed = 33;
  return config;
}

ExperimentResult RunWithFilter(ExperimentConfig config, bool incremental) {
  config.themis.incremental_filter = incremental;
  return RunExperiment(config);
}

class FilterEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<PolicyKind, SimEngine>> {};

TEST_P(FilterEquivalenceTest, IndexedMatchesRecomputeBitForBit) {
  ExperimentConfig config = ContendedConfig(std::get<0>(GetParam()));
  config.sim.engine = std::get<1>(GetParam());
  const ExperimentResult indexed = RunWithFilter(config, true);
  const ExperimentResult recompute = RunWithFilter(config, false);
  ExpectSameExperiment(indexed, recompute);
  EXPECT_EQ(indexed.unfinished_apps, 0);
  EXPECT_GT(indexed.rounds_executed, 0);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesTimesEngines, FilterEquivalenceTest,
    ::testing::Combine(::testing::Values(PolicyKind::kThemis,
                                         PolicyKind::kGandiva,
                                         PolicyKind::kTiresias,
                                         PolicyKind::kSlaq, PolicyKind::kDrf),
                       ::testing::Values(SimEngine::kEventDriven,
                                         SimEngine::kPassStepped)));

TEST(FilterEquivalence, HoldsUnderMachineFailures) {
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.sim.machine_mtbf_minutes = 300.0;
  config.sim.machine_repair_minutes = 45.0;
  const ExperimentResult indexed = RunWithFilter(config, true);
  const ExperimentResult recompute = RunWithFilter(config, false);
  EXPECT_GT(indexed.machine_failures, 0);
  ExpectSameExperiment(indexed, recompute);
}

TEST(FilterEquivalence, HoldsOnHeterogeneousGenerations) {
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  ApplyGenerationMix(config.cluster,
                     ParseGenerationMix("K80:0.25,V100:0.5,A100:0.25"));
  const ExperimentResult indexed = RunWithFilter(config, true);
  const ExperimentResult recompute = RunWithFilter(config, false);
  ExpectSameExperiment(indexed, recompute);
}

TEST(FilterEquivalence, HoldsUnderNoisyEstimation) {
  // The noisy estimator draws one RNG sample per RemainingWork call, so the
  // indexed probe must issue the exact estimator-call sequence of the full
  // scan — any skipped or reordered probe desynchronizes every downstream
  // random decision. Gangless apps make zero estimator calls, which is what
  // makes "probe holders ascending id" the exact sequence.
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.sim.estimator.mode = EstimationMode::kNoisy;
  config.sim.estimator.theta = 0.15;
  const ExperimentResult indexed = RunWithFilter(config, true);
  const ExperimentResult recompute = RunWithFilter(config, false);
  ExpectSameExperiment(indexed, recompute);
}

TEST(FilterEquivalence, HoldsOnStreamedTraces) {
  const ExperimentConfig base = ContendedConfig(PolicyKind::kThemis);
  const auto apps = TraceGenerator(base.trace).Generate();
  auto run = [&](bool incremental) {
    ExperimentConfig config = base;
    config.themis.incremental_filter = incremental;
    config.sim.arrival_lookahead_minutes = 30.0;
    config.sim.retire_finished_apps = true;
    return RunStreamingExperiment(config,
                                  std::make_unique<VectorTraceReader>(apps));
  };
  const ExperimentResult indexed = run(true);
  const ExperimentResult recompute = run(false);
  ExpectSameExperiment(indexed, recompute);
  EXPECT_EQ(indexed.total_apps, apps.size());
}

TEST(FilterEquivalence, HoldsWithShortAppTiebreakOff) {
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.themis.short_app_tiebreak = false;
  const ExperimentResult indexed = RunWithFilter(config, true);
  const ExperimentResult recompute = RunWithFilter(config, false);
  ExpectSameExperiment(indexed, recompute);
}

// ---------------------------------------------------------------------------
// Dirty-tracking property: after any event sequence, the index agrees with a
// from-scratch classification and ordering.
// ---------------------------------------------------------------------------

JobSpec PropJobSpec(double work, int num_tasks, int gpus_per_task) {
  JobSpec spec;
  spec.total_work = work;
  spec.total_iterations = 1000.0;
  spec.num_tasks = num_tasks;
  spec.gpus_per_task = gpus_per_task;
  spec.model = ModelByName("ResNet50");
  spec.loss = LossCurve(0.1 * std::pow(1001.0, 0.6), 0.6, 0.0);
  return spec;
}

std::unique_ptr<AppState> PropApp(AppId id, double ideal_time, int jobs) {
  auto app = std::make_unique<AppState>();
  app->id = id;
  app->spec.target_loss = 0.1;
  app->arrived = true;
  app->ideal_time = ideal_time;
  for (JobId j = 0; j < static_cast<JobId>(jobs); ++j) {
    JobState job;
    job.id = j;
    job.spec = PropJobSpec(40.0, 2, 2);
    job.parallelism_cap = job.spec.MaxParallelism();
    app->jobs.push_back(std::move(job));
  }
  return app;
}

// From-scratch reference: classify every app and order each class exactly as
// the index contract promises.
void ExpectIndexMatchesBruteForce(
    const RhoIndex& index, const std::vector<std::unique_ptr<AppState>>& apps,
    bool short_tiebreak) {
  std::vector<const AppState*> want_holders;
  std::vector<const AppState*> want_unbounded;
  for (const auto& app : apps) {
    if (!app->arrived || app->finished) continue;
    bool holds = false;
    for (const JobState& job : app->jobs)
      if (!job.gpus.empty()) holds = true;
    if (holds)
      want_holders.push_back(app.get());
    else if (app->UnmetDemand() > 0)
      want_unbounded.push_back(app.get());
  }
  std::sort(want_holders.begin(), want_holders.end(),
            [](const AppState* a, const AppState* b) { return a->id < b->id; });
  std::sort(want_unbounded.begin(), want_unbounded.end(),
            [short_tiebreak](const AppState* a, const AppState* b) {
              if (short_tiebreak && a->ideal_time != b->ideal_time)
                return a->ideal_time < b->ideal_time;
              return a->id < b->id;
            });

  ASSERT_EQ(index.holders().size(), want_holders.size());
  for (std::size_t i = 0; i < want_holders.size(); ++i)
    EXPECT_EQ(index.holders()[i], want_holders[i]) << "holder " << i;
  ASSERT_EQ(index.num_unbounded(), want_unbounded.size());
  std::size_t i = 0;
  for (const AppState* app : index.unbounded_candidates()) {
    EXPECT_EQ(app, want_unbounded[i]) << "unbounded " << i;
    // Contract: the index pins the class's last_rho to the probe constant.
    EXPECT_EQ(app->last_rho, kUnboundedRho);
    ++i;
  }
}

TEST(RhoIndexProperty, AgreesWithBruteForceAfterRandomEventSequence) {
  Rng rng(2024);
  std::vector<std::unique_ptr<AppState>> apps;
  RhoIndex index;
  const int kApps = 40;
  for (AppId id = 0; id < kApps; ++id) {
    // Duplicate ideal times on purpose so the (ideal_time, id) chain is
    // exercised past its first link.
    apps.push_back(PropApp(id, 1.0 + static_cast<double>(id % 7), 3));
    // Half the population arrives later, through the "arrival" event below.
    apps.back()->arrived = (id % 2 == 0);
    index.Update(apps.back().get());
  }
  ExpectIndexMatchesBruteForce(index, apps, true);

  GpuId next_gpu = 0;
  for (int step = 0; step < 2000; ++step) {
    AppState* app = apps[rng.UniformInt(0, kApps - 1)].get();
    JobState& job = app->jobs[rng.UniformInt(0, 2)];
    switch (rng.UniformInt(0, 6)) {
      case 0:  // grant: the job gains one gang
        job.gpus.push_back(next_gpu++);
        job.gpus.push_back(next_gpu++);
        break;
      case 1:  // lease expiry / failure revocation: the job loses its gang
        job.gpus.clear();
        break;
      case 2:  // tuner kill
        job.alive = false;
        job.gpus.clear();
        break;
      case 3:  // tuner cap change (can zero or restore UnmetDemand)
        job.parallelism_cap = rng.UniformInt(0, job.spec.MaxParallelism());
        break;
      case 4:  // arrival
        app->arrived = true;
        break;
      case 5:  // app finish: all gangs revoked
        app->finished = true;
        for (JobState& j : app->jobs) j.gpus.clear();
        break;
      default:  // no-op event: Update must be idempotent
        break;
    }
    index.Update(app);
    if (step % 100 == 99) ExpectIndexMatchesBruteForce(index, apps, true);
  }
  ExpectIndexMatchesBruteForce(index, apps, true);
}

TEST(RhoIndexProperty, SetTiebreakReordersTheUnboundedClass) {
  std::vector<std::unique_ptr<AppState>> apps;
  RhoIndex index;
  // Descending ideal times so (ideal, id) order differs from id order.
  for (AppId id = 0; id < 6; ++id) {
    apps.push_back(PropApp(id, 10.0 - static_cast<double>(id), 1));
    index.Update(apps.back().get());
  }
  ExpectIndexMatchesBruteForce(index, apps, true);
  index.SetTiebreak(false);
  ExpectIndexMatchesBruteForce(index, apps, false);
  index.SetTiebreak(true);
  ExpectIndexMatchesBruteForce(index, apps, true);
}

// ---------------------------------------------------------------------------
// Tie-break-chain exactness through the policy's indexed cut.
// ---------------------------------------------------------------------------

// Two identical worlds, one scheduled through the index, one through the
// literal scan; both legacy contexts, same RNG seed.
struct World {
  World() : cluster(ClusterSpec::Uniform(2, 2, 4, 2)), est({}), rng(7) {}
  Cluster cluster;
  WorkEstimator est;
  Rng rng;
  std::vector<std::unique_ptr<AppState>> apps;

  void AddApp(AppId id, double ideal_time) {
    apps.push_back(PropApp(id, ideal_time, 1));
    apps.back()->ideal_time = ideal_time;
  }

  GrantSet Schedule(ThemisConfig cfg, RhoIndex* index) {
    AppList list;
    for (auto& app : apps) list.push_back(app.get());
    SchedulerContext ctx(0.0, &cluster, &est, 20.0, &list, &rng);
    if (index != nullptr) {
      for (auto& app : apps) index->Update(app.get());
      ctx.set_rho_index(index);
    }
    ThemisPolicy policy(cfg);
    return policy.Schedule(cluster.FreeGpus(), ctx);
  }
};

void ExpectSameGrants(const GrantSet& a, const GrantSet& b) {
  ASSERT_EQ(a.grants.size(), b.grants.size());
  for (std::size_t i = 0; i < a.grants.size(); ++i) {
    EXPECT_EQ(a.grants[i].app, b.grants[i].app);
    EXPECT_EQ(a.grants[i].job, b.grants[i].job);
    EXPECT_EQ(a.grants[i].gpus, b.grants[i].gpus);
  }
  EXPECT_EQ(a.lease_expiry, b.lease_expiry);
  EXPECT_EQ(a.diagnostics.auction_ran, b.diagnostics.auction_ran);
  EXPECT_EQ(a.diagnostics.auction_participants,
            b.diagnostics.auction_participants);
  EXPECT_EQ(a.diagnostics.offered_gpus, b.diagnostics.offered_gpus);
  EXPECT_EQ(a.diagnostics.granted_gpus, b.diagnostics.granted_gpus);
  EXPECT_EQ(a.diagnostics.leftover_gpus, b.diagnostics.leftover_gpus);
}

// All-unbounded population with colliding and distinct ideal times: the cut
// must follow (ideal_time asc, id asc) exactly when short_app_tiebreak is
// set, and (id asc) when it is not — in both paths.
TEST(TiebreakExactness, IndexedCutMatchesLiteralCutOnPureTies) {
  for (const bool short_tiebreak : {true, false}) {
    World indexed, literal;
    for (AppId id = 0; id < 8; ++id) {
      const double ideal = (id < 4) ? 5.0 : 9.0 - static_cast<double>(id);
      indexed.AddApp(id, ideal);
      literal.AddApp(id, ideal);
    }
    ThemisConfig cfg;
    cfg.fairness_knob = 0.9;  // ceil(0.1 * 8) = 1 participant: the head app
    cfg.short_app_tiebreak = short_tiebreak;
    RhoIndex index;
    const GrantSet a = indexed.Schedule(cfg, &index);
    const GrantSet b = literal.Schedule(cfg, nullptr);
    ExpectSameGrants(a, b);
    EXPECT_EQ(a.diagnostics.auction_participants, 1);
    // The auction's grant (staged before any leftovers) goes to the
    // comparator's head app: with the short-app tie-break, the smallest
    // ideal_time (app 7, ideal 2.0); without it, the smallest id.
    ASSERT_FALSE(a.grants.empty());
    EXPECT_EQ(a.grants[0].app, short_tiebreak ? 7 : 0);
  }
}

// Mixed population: holders with bounded rho interleaved with gangless apps.
// The indexed merge must land the bounded apps at the same comparator
// positions the full sort gives them.
TEST(TiebreakExactness, MergePlacesBoundedHoldersExactly) {
  for (const double knob : {0.0, 0.5, 0.9}) {
    World indexed, literal;
    for (AppId id = 0; id < 6; ++id) {
      indexed.AddApp(id, 4.0 + static_cast<double>(id));
      literal.AddApp(id, 4.0 + static_cast<double>(id));
    }
    // Apps 1 and 4 hold one whole gang each (bounded rho, still hungry).
    for (World* w : {&indexed, &literal}) {
      w->cluster.Allocate(/*gpu=*/0, 1, 0, 20.0);
      w->cluster.Allocate(/*gpu=*/1, 1, 0, 20.0);
      w->apps[1]->jobs[0].gpus = {0, 1};
      w->cluster.Allocate(/*gpu=*/8, 4, 0, 20.0);
      w->cluster.Allocate(/*gpu=*/9, 4, 0, 20.0);
      w->apps[4]->jobs[0].gpus = {8, 9};
    }
    ThemisConfig cfg;
    cfg.fairness_knob = knob;
    RhoIndex index;
    const GrantSet a = indexed.Schedule(cfg, &index);
    const GrantSet b = literal.Schedule(cfg, nullptr);
    ExpectSameGrants(a, b);
  }
}

// An app that loses its whole gang re-enters the unbounded class with
// last_rho pinned back to the constant — the stale bounded value from its
// holder rounds must not leak into the merge comparator.
TEST(TiebreakExactness, ReleasedHolderRejoinsUnboundedClassFresh) {
  std::vector<std::unique_ptr<AppState>> apps;
  apps.push_back(PropApp(0, 5.0, 1));
  RhoIndex index;
  AppState* app = apps[0].get();
  app->jobs[0].gpus = {0, 1};
  index.Update(app);
  ASSERT_EQ(index.holders().size(), 1u);
  app->last_rho = 3.25;  // what a holder probe might have cached

  app->jobs[0].gpus.clear();  // lease expiry
  index.Update(app);
  EXPECT_TRUE(index.holders().empty());
  ASSERT_EQ(index.num_unbounded(), 1u);
  EXPECT_EQ(app->last_rho, kUnboundedRho);
}

}  // namespace
}  // namespace themis
