#include "net/frame.h"

#include "net/socket.h"

namespace themis::net {

bool LineReader::Feed(const char* data, std::size_t n) {
  if (overflowed_) return false;
  buf_.append(data, n);
  // The longest line the buffer can currently hold starts at consumed_; if
  // that stretch has no '\n' and already exceeds the cap, no future feed
  // can terminate it within bounds.
  if (buf_.find('\n', consumed_) == std::string::npos &&
      buf_.size() - consumed_ > max_line_) {
    overflowed_ = true;
    return false;
  }
  return true;
}

bool LineReader::NextLine(std::string& out) {
  if (overflowed_) return false;
  const std::size_t nl = buf_.find('\n', consumed_);
  if (nl == std::string::npos) {
    // Compact once the consumed prefix dominates, so long-lived sessions
    // do not accrete every frame they ever received.
    if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
      buf_.erase(0, consumed_);
      consumed_ = 0;
    }
    return false;
  }
  std::size_t end = nl;
  if (end > consumed_ && buf_[end - 1] == '\r') --end;
  if (end - consumed_ > max_line_) {
    overflowed_ = true;
    return false;
  }
  out.assign(buf_, consumed_, end - consumed_);
  consumed_ = nl + 1;
  return true;
}

bool WriteBuffer::QueueFrame(std::string_view frame) {
  if (pending() + frame.size() + 1 > max_bytes_) return false;
  buf_.append(frame.data(), frame.size());
  buf_ += '\n';
  return true;
}

bool WriteBuffer::Flush(int fd) {
  while (sent_ < buf_.size()) {
    const long w = SendSome(fd, buf_.data() + sent_, buf_.size() - sent_);
    if (w < 0) return false;
    if (w == 0) break;  // socket full; poll for POLLOUT
    sent_ += static_cast<std::size_t>(w);
  }
  if (sent_ == buf_.size()) {
    buf_.clear();
    sent_ = 0;
  } else if (sent_ >= buf_.size() / 2) {
    // Compact once the sent prefix dominates (mirrors LineReader::NextLine).
    // A slow-but-reading peer keeps the buffer partially drained forever;
    // without this, the already-sent prefix accretes every byte ever queued
    // and memory tracks lifetime traffic instead of pending().
    buf_.erase(0, sent_);
    sent_ = 0;
  }
  return true;
}

}  // namespace themis::net
