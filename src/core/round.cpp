#include "core/round.h"

#include <stdexcept>

#include "cluster/cluster.h"

namespace themis {

ResourceOffer MakeOffer(std::uint64_t round_id, Time now, Time lease_duration,
                        const Cluster& cluster) {
  ResourceOffer offer;
  offer.round_id = round_id;
  offer.time = now;
  offer.lease_duration = lease_duration;
  offer.gpus = cluster.FreeGpus();
  offer.free_per_machine = cluster.FreeGpusPerMachine();
  offer.machine_speeds = cluster.topology().machine_speeds();
  return offer;
}

double ResourceOffer::TotalEffectiveGpus() const {
  if (machine_speeds.empty()) return static_cast<double>(TotalGpus());
  double total = 0.0;
  for (std::size_t m = 0; m < free_per_machine.size(); ++m)
    total += static_cast<double>(free_per_machine[m]) * machine_speeds[m];
  return total;
}

int GrantSet::TotalGpus() const {
  int total = 0;
  for (const Grant& g : grants) total += static_cast<int>(g.gpus.size());
  return total;
}

int ApplyGrants(const GrantSet& grants, Cluster& cluster) {
  int applied = 0;
  for (const Grant& grant : grants.grants) {
    for (GpuId g : grant.gpus) {
      cluster.Allocate(g, grant.app, grant.job, grants.lease_expiry);
      ++applied;
    }
  }
  return applied;
}

FreePool::FreePool(const std::vector<GpuId>& gpus, const Topology& topo)
    : sentinel_(static_cast<GpuId>(topo.num_gpus())),
      next_(topo.num_gpus() + 1, kNoGpu),
      prev_(topo.num_gpus() + 1, kNoGpu),
      in_(topo.num_gpus(), 0),
      per_machine_(topo.num_machines(), 0),
      topo_(&topo),
      size_(static_cast<int>(gpus.size())) {
  GpuId last = sentinel_;
  for (GpuId g : gpus) {
    next_[last] = g;
    prev_[g] = last;
    in_[g] = 1;
    ++per_machine_[topo.gpu(g).machine];
    speed_total_ += topo.gpu_speed(g);
    last = g;
  }
  next_[last] = sentinel_;
  prev_[sentinel_] = last;
  // First()/Next() report kNoGpu past the end.
  if (next_[sentinel_] == sentinel_) next_[sentinel_] = kNoGpu;
}

void FreePool::Remove(GpuId g) {
  if (!Contains(g)) throw std::logic_error("FreePool::Remove: GPU not pooled");
  const GpuId p = prev_[g];
  const GpuId n = next_[g];
  next_[p] = n;
  if (n != kNoGpu) prev_[n] = p;
  if (next_[sentinel_] == sentinel_) next_[sentinel_] = kNoGpu;
  in_[g] = 0;
  --per_machine_[topo_->gpu(g).machine];
  speed_total_ -= topo_->gpu_speed(g);
  --size_;
}

std::vector<GpuId> FreePool::ToVector() const {
  std::vector<GpuId> out;
  out.reserve(size_);
  for (GpuId g = First(); g != kNoGpu; g = Next(g)) out.push_back(g);
  return out;
}

std::vector<GpuId> FreePool::FirstN(int n) const {
  std::vector<GpuId> out;
  out.reserve(static_cast<std::size_t>(n < size_ ? n : size_));
  for (GpuId g = First(); g != kNoGpu && static_cast<int>(out.size()) < n;
       g = Next(g))
    out.push_back(g);
  return out;
}

std::vector<GpuId> FreePool::FirstNFastest(int n) const {
  // Uniform speeds: ascending id order is already fastest-first, and the
  // intrusive list walk is cheaper than the per-machine scan.
  if (topo_ == nullptr || topo_->uniform_speed()) return FirstN(n);
  std::vector<GpuId> out;
  out.reserve(static_cast<std::size_t>(n < size_ ? n : size_));
  for (MachineId m : topo_->machines_by_speed()) {
    if (static_cast<int>(out.size()) >= n) break;
    if (per_machine_[m] == 0) continue;
    for (GpuId g : topo_->machine_gpus(m)) {
      if (Contains(g)) {
        out.push_back(g);
        if (static_cast<int>(out.size()) == n) break;
      }
    }
  }
  return out;
}

}  // namespace themis
