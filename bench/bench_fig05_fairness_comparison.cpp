// Figure 5: "Comparison of Finish Time Fairness across different scheduling
// schemes" — (a) max fairness and (b) Jain's index for Themis, Gandiva,
// SLAQ and Tiresias on the testbed-scale 50-GPU cluster.
//
// Paper reference points (Sec. 8.3): peak contention 4.76x is the ideal max
// fairness; Themis lands ~7% above it while Gandiva / SLAQ / Tiresias land
// ~68% / ~2155% / ~1874% above. On Jain's index Tiresias comes closest
// (~5% below Themis).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  std::printf("=== Figure 5: finish-time fairness across schemes ===\n");
  std::printf("(mean of 3 trace seeds, 50-GPU testbed-scale cluster)\n");
  // Peak contention depends on how long apps linger, i.e. on the policy;
  // use the Themis run's peak as the shared "ideal" yardstick, analogous to
  // the paper's single 4.76x figure for the whole workload.
  BenchReport report("fig05_fairness_comparison");
  report.Config("cluster", "testbed50");
  report.Config("contention_factor", 4.0);
  report.Config("trace_seeds", 3.0);

  // One policy x seed grid through the SweepRunner: all 12 simulations run
  // on the thread pool at once; results come back in grid order (policy
  // outer, seed inner), so the per-policy aggregation is unchanged. The
  // per-scenario rows land in BENCH_fig05_fairness_comparison.csv.
  const std::vector<PolicyKind> policies(std::begin(kAllPolicies),
                                         std::end(kAllPolicies));
  const std::vector<ScenarioRun> runs = SweepRunner().Run(PolicySeedGrid(
      ContendedTestbedConfig(PolicyKind::kThemis), policies, {42, 43, 44}));

  double ideal = 0.0;
  std::printf("%-10s %10s %16s %8s\n", "scheme", "max_rho", "%from_ideal",
              "jain");
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const PolicyKind kind = policies[p];
    const MacroSummary s = SummarizeMacroRuns(
        {runs.begin() + 3 * p, runs.begin() + 3 * (p + 1)});
    if (kind == PolicyKind::kThemis) ideal = s.peak_contention;
    const double pct = 100.0 * (s.max_fairness - ideal) / ideal;
    std::printf("%-10s %10.2f %15.1f%% %8.3f\n", ToString(kind),
                s.max_fairness, pct, s.jains_index);
    const std::string scheme = ToString(kind);
    report.Metric("max_rho." + scheme, s.max_fairness);
    report.Metric("pct_from_ideal." + scheme, pct);
    report.Metric("jains_index." + scheme, s.jains_index);
  }
  report.Metric("ideal_peak_contention", ideal);
  std::printf("(ideal = peak contention %.2f, measured on the Themis run)\n",
              ideal);
  std::printf("\npaper reference: Themis ~7%% from ideal; Gandiva ~68%%,"
              " SLAQ ~2155%%, Tiresias ~1874%%\n");
  const bool csv_ok = WriteBenchCsv("fig05_fairness_comparison", runs);
  return report.Write() && csv_ok ? 0 : 1;
}
