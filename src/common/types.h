// Fundamental identifiers and time units shared by every Themis subsystem.
//
// All simulated time is expressed in *minutes* as a double, matching the
// units the paper reports (lease times, task durations, inter-arrival times).
// Work is expressed in serial GPU-minutes: the time a job would need on a
// single perfectly-placed GPU.
#pragma once

#include <cstdint>
#include <limits>

namespace themis {

using AppId = std::uint32_t;
using JobId = std::uint32_t;
using MachineId = std::uint32_t;
using RackId = std::uint32_t;
using GpuId = std::uint32_t;

/// Simulated wall-clock time in minutes.
using Time = double;

/// Work in serial GPU-minutes.
using Work = double;

inline constexpr Time kInfiniteTime = std::numeric_limits<Time>::infinity();

/// Sentinel used for "no app owns this resource".
inline constexpr AppId kNoApp = std::numeric_limits<AppId>::max();
inline constexpr JobId kNoJob = std::numeric_limits<JobId>::max();
/// Sentinel GPU id ("no such GPU"); FreePool iteration ends on it.
inline constexpr GpuId kNoGpu = std::numeric_limits<GpuId>::max();

/// Cap used when a finish-time fairness estimate would be unbounded
/// (an app holding zero GPUs). The paper notes the metric "becomes
/// unbounded"; a large finite cap keeps the max-min arithmetic stable while
/// guaranteeing such apps sort ahead of every bounded competitor.
inline constexpr double kUnboundedRho = 1.0e6;

}  // namespace themis
