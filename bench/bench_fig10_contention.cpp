// Figure 10: "Effect of contention on our scheme" — Jain's fairness index
// for Themis vs Tiresias at 1x / 2x / 4x contention (inter-arrival time
// divided by the contention factor).
//
// Paper shape: Jain's index degrades with contention for both, but much
// faster for Tiresias (LAS treats short and long apps identically and is
// placement-unaware).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  std::printf("=== Figure 10: Jain's index vs contention ===\n");
  std::printf("%12s %10s %10s\n", "contention", "Themis", "Tiresias");
  for (double factor : {1.0, 2.0, 4.0}) {
    auto run = [&](PolicyKind kind) {
      ExperimentConfig cfg = SimScaleConfig(kind, 42, 120);
      cfg.trace.contention_factor = factor;
      return RunExperiment(cfg).jains_index;
    };
    std::printf("%11.0fX %10.3f %10.3f\n", factor, run(PolicyKind::kThemis),
                run(PolicyKind::kTiresias));
  }
  std::printf("\npaper reference: Tiresias degrades faster with rising"
              " contention\n");
  return 0;
}
