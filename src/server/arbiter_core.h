// The ARBITER state machine behind themis_arbiterd (Sec. 5.1's central
// resource allocator, run as a service instead of inside the simulator).
//
// ArbiterCore owns the authoritative cluster + app state and advances a
// *virtual* clock: round k runs at k * round_interval_minutes, independent
// of wall time. Everything a policy reads — job progress, attained service,
// rho inputs, the work estimator and its RNG stream — lives here, never
// with the AGENTs (the paper's semi-trusted AGENT model: the ARBITER
// corrects misreported bids anyway, so it keeps the authoritative copy).
// A BID on the wire therefore only signals liveness and declared demand;
// the auction runs against this state. That is what makes daemon-served
// rounds bit-identical to driving the same core in-process: both paths are
// the same BeginRound()/FinishRound() call sequence on the same state, and
// the wire in between carries no float that feeds back into scheduling.
//
// One round is split in two so the daemon can fan out the offer and await
// bids between the halves:
//   BeginRound()  — advance the clock one interval, accrue progress for
//                   lease holders, finish apps whose best model converged,
//                   reclaim expired leases, step the per-app tuners, and
//                   publish the ResourceOffer (if there is anything to
//                   offer). No core mutation may happen between the halves.
//   FinishRound() — run the policy's RunRound over the offer, apply the
//                   grants (binding leases), charge restart overheads, and
//                   fold the grants into the running GrantDigest.
// The in-process reference calls both back-to-back (RunOneRound).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "core/rho_index.h"
#include "core/themis_policy.h"
#include "estimator/work_estimator.h"
#include "net/wire.h"
#include "sim/experiment.h"
#include "sim/state.h"

namespace themis::server {

struct ArbiterConfig {
  ClusterSpec cluster = ClusterSpec::Simulation256();
  PolicyKind policy = PolicyKind::kThemis;
  ThemisConfig themis;
  EstimatorConfig estimator;
  /// GPU lease duration in virtual minutes.
  Time lease_minutes = 20.0;
  /// Virtual minutes between rounds: round k runs at k * interval.
  Time round_interval_minutes = 5.0;
  /// Progress stall charged to a job whenever its gang changes.
  Time restart_overhead_minutes = 0.75;
  std::uint64_t seed = 1234;

  /// Throws std::invalid_argument naming the offending knob.
  void Validate() const;
};

/// The first half of a round: what the daemon fans out.
struct RoundStart {
  std::uint64_t round_id = 0;
  Time time = 0.0;
  /// Apps that finished at this round boundary (their best model reached
  /// the target); their AGENTs get CLOSE-worthy notice in the GRANT frame.
  std::vector<AppId> finished;
  /// True when there is an offer to auction (free GPUs and active apps).
  bool have_offer = false;
  ResourceOffer offer;
};

class ArbiterCore {
 public:
  explicit ArbiterCore(const ArbiterConfig& config);

  /// Register an app at the current virtual time (spec.arrival is
  /// overwritten with now()). Returns its AppId. Registration order is part
  /// of the deterministic contract: daemon and reference must register the
  /// same specs in the same order to produce identical rounds.
  AppId RegisterApp(AppSpec spec);

  /// Evict an app (its AGENT disconnected): kill its jobs, release its
  /// leases. Must not be called between BeginRound and FinishRound.
  void RemoveApp(AppId id);

  RoundStart BeginRound();
  /// `offer` must be the offer BeginRound just published.
  GrantSet FinishRound(const ResourceOffer& offer);

  /// Both halves back-to-back — the in-process reference path. When
  /// `start` is non-null the round's first half is copied out.
  GrantSet RunOneRound(RoundStart* start = nullptr);

  Time now() const { return now_; }
  std::uint64_t rounds_run() const { return passes_; }
  std::size_t apps_registered() const { return apps_.size(); }
  std::size_t apps_active() const { return active_apps_.size(); }
  std::size_t apps_finished() const { return finished_apps_; }
  const net::GrantDigest& digest() const { return digest_; }
  const Cluster& cluster() const { return cluster_; }
  const AppState* app(AppId id) const {
    return id < apps_.size() ? apps_[id].get() : nullptr;
  }

  /// Declared whole-gang demand still unmet for an app (what an honest
  /// AGENT would put in its BID). 0 for finished/unknown apps.
  int UnmetDemand(AppId id) const;

 private:
  AppState* FindApp(AppId id);
  void ActivateApp(AppState* app);
  void DeactivateApp(AppId id);
  void UpdateHolding(AppState* app);
  void KillJob(JobState& job);
  void FinishApp(Time t, AppState& app);

  ArbiterConfig config_;
  Cluster cluster_;
  std::unique_ptr<IRoundScheduler> scheduler_;
  WorkEstimator estimator_;
  Rng rng_;
  std::vector<std::unique_ptr<AppState>> apps_;
  AppList active_apps_;
  AppList holding_apps_;
  RhoIndex rho_index_;
  std::vector<JobView> views_scratch_;
  net::GrantDigest digest_;
  Time now_ = 0.0;
  Time last_advance_ = 0.0;
  std::uint64_t passes_ = 0;
  std::size_t finished_apps_ = 0;
  bool round_open_ = false;
};

}  // namespace themis::server
