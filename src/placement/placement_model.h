// Placement-sensitivity arithmetic (Sec. 5.2).
//
// With ideal placement a job's running time scales linearly with its GPU
// count G: time = serialTime / G. Real scaling is degraded by the slowdown
// factor S(G->) <= 1 determined by the widest topology boundary the GPU set
// spans: time = serialTime / (G * S). This module computes S for a concrete
// GPU set, the paper's 4-level placement *score* (Sec. 8.1 metrics), and
// greedy locality-aware GPU selection used by agents when they turn a
// per-machine allocation vector into concrete GPUs.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "placement/model_profile.h"

namespace themis {

/// Slowdown S in (0,1] for `model` when its job runs on `gpus`.
/// Empty set yields 1.0 (vacuously ideal; callers guard G=0 separately).
double Slowdown(const ModelProfile& model, const std::vector<GpuId>& gpus,
                const Topology& topo);

/// Slowdown looked up by locality level alone.
double SlowdownAtLevel(const ModelProfile& model, LocalityLevel level);

/// The model-independent placement score used in Fig. 7: 1.0 for slot
/// locality, then 0.8 / 0.6 / 0.4 for machine / rack / cross-rack spans.
double PlacementScore(const std::vector<GpuId>& gpus, const Topology& topo);

/// Effective progress rate (serial GPU-minutes consumed per minute) of a job
/// running `gpus.size()` GPUs with the given model:
/// G * S * min(generation speed over the set). Synchronous SGD paces every
/// iteration on the slowest worker, so a mixed-generation gang runs at its
/// minimum speed; on speed-1.0 clusters this is the plain G * S.
double EffectiveRate(const ModelProfile& model, const std::vector<GpuId>& gpus,
                     const Topology& topo);

/// Pick `count` GPUs from `free` (ids into the topology) greedily maximizing
/// locality: prefer filling whole slots, then whole machines, then one rack.
/// Returns fewer than `count` if not enough free GPUs. Deterministic.
std::vector<GpuId> PickBestPlaced(int count, const std::vector<GpuId>& free,
                                  const Topology& topo);

/// Same, but anchored: prefer machines where `anchor` GPUs already live
/// (used for leftover allocation, Sec. 5.1 step 3, and job growth).
std::vector<GpuId> PickBestPlacedNear(int count, const std::vector<GpuId>& free,
                                      const std::vector<GpuId>& anchor,
                                      const Topology& topo);

}  // namespace themis
