// Tests for metrics/: the Sec. 8.1 metric definitions.
#include <gtest/gtest.h>

#include "metrics/collector.h"

namespace themis {
namespace {

AppRecord Record(AppId app, Time arrival, Time finish, Time ideal,
                 double score = 1.0) {
  AppRecord r;
  r.app = app;
  r.arrival = arrival;
  r.finish = finish;
  r.ideal_time = ideal;
  r.mean_placement_score = score;
  return r;
}

TEST(Metrics, RhoAndCompletionTime) {
  const AppRecord r = Record(0, 10.0, 40.0, 10.0);
  EXPECT_DOUBLE_EQ(r.Rho(), 3.0);
  EXPECT_DOUBLE_EQ(r.CompletionTime(), 30.0);
}

TEST(Metrics, FairnessAggregates) {
  MetricsCollector c;
  c.RecordAppFinish(Record(0, 0.0, 10.0, 10.0));  // rho 1
  c.RecordAppFinish(Record(1, 0.0, 30.0, 10.0));  // rho 3
  c.RecordAppFinish(Record(2, 0.0, 20.0, 10.0));  // rho 2
  EXPECT_DOUBLE_EQ(c.MaxFairness(), 3.0);
  EXPECT_DOUBLE_EQ(c.MinFairness(), 1.0);
  EXPECT_DOUBLE_EQ(c.MedianFairness(), 2.0);
  EXPECT_DOUBLE_EQ(c.AverageCompletionTime(), 20.0);
  EXPECT_NEAR(c.JainsFairnessIndex(), 36.0 / (3.0 * 14.0), 1e-12);
}

TEST(Metrics, EmptyCollectorIsNeutral) {
  MetricsCollector c;
  EXPECT_DOUBLE_EQ(c.MaxFairness(), 0.0);
  EXPECT_DOUBLE_EQ(c.MinFairness(), 0.0);
  EXPECT_DOUBLE_EQ(c.MedianFairness(), 0.0);
  EXPECT_DOUBLE_EQ(c.AverageCompletionTime(), 0.0);
  EXPECT_DOUBLE_EQ(c.JainsFairnessIndex(), 1.0);
  EXPECT_DOUBLE_EQ(c.TotalGpuTime(), 0.0);
}

TEST(Metrics, GpuTimeAccumulates) {
  MetricsCollector c;
  c.RecordGpuTime(10.0);
  c.RecordGpuTime(5.5);
  EXPECT_DOUBLE_EQ(c.TotalGpuTime(), 15.5);
}

TEST(Metrics, PlacementScoresExtracted) {
  MetricsCollector c;
  c.RecordAppFinish(Record(0, 0.0, 10.0, 10.0, 0.8));
  c.RecordAppFinish(Record(1, 0.0, 10.0, 10.0, 0.4));
  const auto scores = c.PlacementScores();
  EXPECT_EQ(scores, (std::vector<double>{0.8, 0.4}));
}

TEST(Metrics, TimelineOrderPreserved) {
  MetricsCollector c;
  c.RecordAllocation(1.0, 7, 4);
  c.RecordAllocation(2.0, 7, 8);
  ASSERT_EQ(c.timeline().size(), 2u);
  EXPECT_EQ(c.timeline()[0].gpus, 4);
  EXPECT_EQ(c.timeline()[1].gpus, 8);
}

TEST(Metrics, AuctionLeftoverFraction) {
  MetricsCollector c;
  c.RecordAuction(3, 10, 8, 2);
  c.RecordAuction(2, 10, 6, 4);
  EXPECT_EQ(c.auctions_run(), 2);
  EXPECT_NEAR(c.MeanLeftoverFraction(), 0.3, 1e-12);
}

TEST(Metrics, SummaryStringMentionsKeyFields) {
  MetricsCollector c;
  c.RecordAppFinish(Record(0, 0.0, 10.0, 10.0));
  const std::string s = c.SummaryString();
  EXPECT_NE(s.find("max_rho"), std::string::npos);
  EXPECT_NE(s.find("jain"), std::string::npos);
}

}  // namespace
}  // namespace themis
