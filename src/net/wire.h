// The ARBITER <-> AGENT wire protocol: Offer/Bid/Grant over newline-delimited
// JSON frames (one JSON object per line; see net/frame.h for framing).
//
// Frame flow (client = AGENT, server = themis_arbiterd):
//
//   AGENT                                ARBITER
//     | -- HELLO {agent, apps[]} ---------> |   register apps
//     | <-- WELCOME {agent_id, app_ids[]} - |
//     |                                     |   round begins
//     | <-- OFFER {round, gpus, R->, ...} - |   fan-out to all sessions
//     | -- BID {round, demands[]} --------> |   collect until deadline
//     |                                     |   RunRound + ApplyGrants
//     | <-- GRANT {round, grants[], ...} -- |   per-session delta
//     | -- ACK {round} -------------------> |   (bookkeeping only)
//     | <-- CLOSE {reason} ---------------- |   app finished / shutdown
//     | <-- ERROR {code, detail} ---------- |   protocol violation
//
// The BID carries the AGENT's declared per-app demand. The valuation table
// itself is computed ARBITER-side from the session's registered state,
// because the work estimator (and its RNG stream) lives with the ARBITER —
// the paper's semi-trusted AGENT model (Sec. 5.1): the ARBITER corrects
// misreports anyway, so the authoritative rho inputs never leave it. This
// is also what makes daemon-served rounds bit-identical to the in-process
// RunRound path.
//
// Doubles cross the wire in shortest round-trip form (common/json.h
// JsonWriter), so specs and offers survive serialization bit-for-bit.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/round.h"
#include "workload/job_spec.h"

namespace themis::net {

/// Protocol revision, carried in WELCOME. Bumped on incompatible changes.
constexpr int kProtocolVersion = 1;

enum class MsgType {
  kHello,
  kWelcome,
  kOffer,
  kBid,
  kGrant,
  kAck,
  kError,
  kClose,
};

const char* ToString(MsgType type);

/// Malformed frame: unknown type, missing or mistyped field, bad JSON.
/// The message names the frame type and field, so a misbehaving AGENT gets
/// a pointed ERROR frame instead of a silent disconnect.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// One app's declared demand inside a BID frame.
struct BidDemand {
  AppId app = kNoApp;
  int unmet_gpus = 0;
};

/// Decoded frame: tagged union as one flat struct (only the fields of the
/// active `type` are meaningful).
struct WireMessage {
  MsgType type = MsgType::kError;

  // kHello
  std::string agent_name;
  std::vector<AppSpec> apps;

  // kWelcome
  int protocol = 0;
  std::int64_t agent_id = -1;
  std::vector<AppId> app_ids;

  // kOffer
  ResourceOffer offer;

  // kBid / kAck / kGrant: the round being answered.
  std::uint64_t round_id = 0;
  std::vector<BidDemand> demands;

  // kGrant
  GrantSet grants;
  std::vector<AppId> finished_apps;

  // kError
  std::string code;
  std::string detail;

  // kClose
  std::string reason;
};

// Encoders: one line (no terminator; WriteBuffer::QueueFrame appends it).
std::string EncodeHello(const std::string& agent_name,
                        const std::vector<AppSpec>& apps);
std::string EncodeWelcome(std::int64_t agent_id,
                          const std::vector<AppId>& app_ids);
std::string EncodeOffer(const ResourceOffer& offer);
std::string EncodeBid(std::uint64_t round_id,
                      const std::vector<BidDemand>& demands);
std::string EncodeGrant(const GrantSet& grants,
                        const std::vector<AppId>& finished_apps);
std::string EncodeAck(std::uint64_t round_id);
std::string EncodeError(const std::string& code, const std::string& detail);
std::string EncodeClose(const std::string& reason);

/// Decode one frame. Throws WireError with a pointed message on anything
/// malformed (bad JSON, non-object, missing "type", unknown type, missing
/// or mistyped fields, unknown model/tuner/span names).
WireMessage ParseWireMessage(const std::string& line);

/// Order-insensitive digest of a grant stream, for cross-checking the
/// daemon-served stream against the in-process reference: XOR of per-grant
/// FNV-1a hashes over (round, lease_expiry, app, job, gpus). XOR combines
/// commutatively, so per-session delivery interleaving cannot change the
/// fleet-side digest; (round, app, job) is unique per grant, so no two
/// distinct grants cancel.
struct GrantDigest {
  std::uint64_t hash = 0;
  long long grants = 0;
  long long gpus = 0;

  void Add(std::uint64_t round_id, double lease_expiry, const Grant& g);
  void Merge(const GrantDigest& other);
  bool operator==(const GrantDigest& other) const {
    return hash == other.hash && grants == other.grants && gpus == other.gpus;
  }
};

}  // namespace themis::net
