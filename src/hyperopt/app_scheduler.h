// Top-level (per-app) scheduler interface (Sec. 2.3, Sec. 5.2).
//
// THEMIS is a two-level design: the bottom-level ARBITER apportions GPUs
// across apps, while each app's own hyper-parameter tuning framework decides
// how to spread its share across constituent jobs — killing unpromising ones
// and adjusting per-job maximum parallelism (G_ideal). This header is the
// "narrow API" between the two levels: the tuner observes job progress and
// emits kill decisions plus parallelism caps; the AGENT pulls work-left and
// parallelism estimates from it when preparing bids.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "workload/job_spec.h"

namespace themis {

/// Read-only view of one constituent job's progress, as the app scheduler
/// (and the profiler behind it) observes it.
struct JobView {
  const JobSpec* spec = nullptr;
  double done_iterations = 0.0;
  bool alive = true;
  bool finished = false;
};

struct TunerDecision {
  /// Indices (into the JobView vector) of jobs to terminate early.
  std::vector<int> kill;
  /// Per-job maximum parallelism override (G_ideal); same length as the
  /// JobView vector, entries <= spec->MaxParallelism(). Dead jobs hold 0.
  std::vector<int> parallelism_cap;
};

class IAppScheduler {
 public:
  virtual ~IAppScheduler() = default;

  /// Called once when the app starts.
  virtual void Init(const AppSpec& app) = 0;

  /// Observe progress and emit decisions. Invoked by the simulator at every
  /// auction epoch (the cadence at which checkpointed loss values would be
  /// re-read from logs in the paper's profiler). The returned reference is
  /// owned by the scheduler and valid until its next Step — the simulator
  /// steps thousands of tuners per pass, so decisions reuse one buffer per
  /// tuner instead of allocating per call.
  virtual const TunerDecision& Step(const std::vector<JobView>& jobs,
                                    Time now) = 0;

  virtual const char* name() const = 0;
};

/// Factory keyed by AppSpec::tuner.
std::unique_ptr<IAppScheduler> MakeAppScheduler(const AppSpec& app);

}  // namespace themis
