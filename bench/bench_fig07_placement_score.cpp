// Figure 7: "CDF of Placement Score" — per-app mean placement score under
// each scheme (1.0 = slot-local packing ... 0.4 = cross-rack spread).
//
// Paper shape: Themis best, Gandiva close behind (greedy local packing),
// Tiresias and SLAQ much worse (placement-unaware).
#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  BenchReport report("fig07_placement_score");
  report.Config("cluster", "testbed50");
  report.Config("contention_factor", 4.0);

  std::printf("=== Figure 7: CDF of placement score across schemes ===\n");
  std::printf("(50-GPU testbed-scale cluster)\n");
  for (PolicyKind kind : kAllPolicies) {
    const ExperimentResult r = RunExperiment(ContendedTestbedConfig(kind));
    double mean = 0.0;
    for (double s : r.placement_scores) mean += s;
    mean /= static_cast<double>(r.placement_scores.size());
    std::printf("\n--- %s (mean score %.3f) ---\n", r.policy_name.c_str(), mean);
    std::printf("%12s  %6s\n", "score", "CDF");
    std::printf("%s", FormatCdf(Cdf(r.placement_scores), 10).c_str());
    report.Metric("mean_placement_score." + r.policy_name, mean);
    report.Metric("median_placement_score." + r.policy_name,
                  Percentile(r.placement_scores, 50.0));
  }
  std::printf("\npaper reference: Themis best, Gandiva close; Tiresias/SLAQ"
              " placement-unaware\n");
  return report.Write() ? 0 : 1;
}
