// Tests for the discrete-event simulator core: the event-driven engine must
// be bit-identical to the pass-stepped reference (same floats, same event
// stream, same counters) across policies, failures, streamed traces and
// max_time cutoffs; stale lease ticks must not trigger scheduling passes;
// event counts must be independent of lease-tick density on an idle
// cluster; and epsilon-batched rounds must reduce pass counts while still
// finishing the same apps.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "sim/experiment.h"
#include "sim/scenario.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace themis {
namespace {

// Full bitwise comparison, including the event-core counters: with
// auction_epsilon_minutes = 0 both engines process identical event streams,
// so even events_processed/rounds_executed/sim_time_advances must match.
void ExpectSameExperiment(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.max_fairness, b.max_fairness);
  EXPECT_EQ(a.median_fairness, b.median_fairness);
  EXPECT_EQ(a.min_fairness, b.min_fairness);
  EXPECT_EQ(a.jains_index, b.jains_index);
  EXPECT_EQ(a.avg_completion_time, b.avg_completion_time);
  EXPECT_EQ(a.gpu_time, b.gpu_time);
  EXPECT_EQ(a.peak_contention, b.peak_contention);
  EXPECT_EQ(a.unfinished_apps, b.unfinished_apps);
  EXPECT_EQ(a.machine_failures, b.machine_failures);
  EXPECT_EQ(a.scheduling_passes, b.scheduling_passes);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
  EXPECT_EQ(a.sim_time_advances, b.sim_time_advances);
  EXPECT_EQ(a.finished_apps, b.finished_apps);
  EXPECT_EQ(a.rhos, b.rhos);
  EXPECT_EQ(a.completion_times, b.completion_times);
  EXPECT_EQ(a.placement_scores, b.placement_scores);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].time, b.timeline[i].time);
    EXPECT_EQ(a.timeline[i].app, b.timeline[i].app);
    EXPECT_EQ(a.timeline[i].gpus, b.timeline[i].gpus);
  }
}

// A contended mixed workload: multi-job HyperBand apps, overlapping
// lifetimes, restarts — everything that can make the two engines diverge.
ExperimentConfig ContendedConfig(PolicyKind policy) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Uniform(2, 4, 4, 2);
  config.policy = policy;
  config.trace.seed = 33;
  config.trace.num_apps = 25;
  config.trace.jobs_per_app_median = 6.0;
  config.trace.jobs_per_app_max = 12;
  config.sim.seed = 33;
  return config;
}

ExperimentResult RunWithEngine(ExperimentConfig config, SimEngine engine) {
  config.sim.engine = engine;
  return RunExperiment(config);
}

class EngineEquivalenceTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(EngineEquivalenceTest, EventMatchesPassBitForBit) {
  const ExperimentConfig config = ContendedConfig(GetParam());
  const ExperimentResult event = RunWithEngine(config, SimEngine::kEventDriven);
  const ExperimentResult pass = RunWithEngine(config, SimEngine::kPassStepped);
  ExpectSameExperiment(event, pass);
  EXPECT_EQ(event.unfinished_apps, 0);
  EXPECT_GT(event.events_processed, 0);
  EXPECT_GT(event.rounds_executed, 0);
}

INSTANTIATE_TEST_SUITE_P(Policies, EngineEquivalenceTest,
                         ::testing::Values(PolicyKind::kThemis,
                                           PolicyKind::kGandiva,
                                           PolicyKind::kTiresias,
                                           PolicyKind::kSlaq,
                                           PolicyKind::kDrf));

TEST(EngineEquivalence, HoldsUnderMachineFailures) {
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.sim.machine_mtbf_minutes = 300.0;
  config.sim.machine_repair_minutes = 45.0;
  const ExperimentResult event = RunWithEngine(config, SimEngine::kEventDriven);
  const ExperimentResult pass = RunWithEngine(config, SimEngine::kPassStepped);
  EXPECT_GT(event.machine_failures, 0);
  ExpectSameExperiment(event, pass);
}

TEST(EngineEquivalence, HoldsOnStreamedTraces) {
  const ExperimentConfig base = ContendedConfig(PolicyKind::kThemis);
  const auto apps = TraceGenerator(base.trace).Generate();
  auto run = [&](SimEngine engine) {
    ExperimentConfig config = base;
    config.sim.engine = engine;
    config.sim.arrival_lookahead_minutes = 30.0;
    return RunStreamingExperiment(config,
                                  std::make_unique<VectorTraceReader>(apps));
  };
  const ExperimentResult event = run(SimEngine::kEventDriven);
  const ExperimentResult pass = run(SimEngine::kPassStepped);
  ExpectSameExperiment(event, pass);
  EXPECT_EQ(event.total_apps, apps.size());
}

TEST(EngineEquivalence, HoldsPastMaxTimeCutoff) {
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.sim.max_time = 120.0;
  const ExperimentResult event = RunWithEngine(config, SimEngine::kEventDriven);
  const ExperimentResult pass = RunWithEngine(config, SimEngine::kPassStepped);
  EXPECT_GT(event.unfinished_apps, 0);
  ExpectSameExperiment(event, pass);
}

TEST(EngineEquivalence, MetricsTickSamplingMatchesAcrossEngines) {
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.sim.metrics_tick_minutes = 7.0;
  const ExperimentResult event = RunWithEngine(config, SimEngine::kEventDriven);
  const ExperimentResult pass = RunWithEngine(config, SimEngine::kPassStepped);
  ExpectSameExperiment(event, pass);

  // The periodic sampler makes the timeline strictly denser than the
  // change-only record.
  ExperimentConfig no_tick = ContendedConfig(PolicyKind::kThemis);
  const ExperimentResult sparse =
      RunWithEngine(no_tick, SimEngine::kEventDriven);
  EXPECT_GT(event.timeline.size(), sparse.timeline.size());
}

// --------------------------------------------------------------------------
// Stale-tick gating: a lease tick whose lease was released before the tick
// fires advances virtual time and nothing else. In particular an exhausted
// trace stream must not keep scheduling passes running past the last live
// job's horizon.
// --------------------------------------------------------------------------

AppSpec TinyApp(Time arrival, double work) {
  AppSpec app;
  app.arrival = arrival;
  app.tuner = TunerKind::kNone;
  app.target_loss = 0.1;
  JobSpec job;
  job.total_work = work;
  job.total_iterations = 1000.0;
  job.num_tasks = 1;
  job.gpus_per_task = 4;
  job.model = ModelByName("ResNet50");
  job.loss = LossCurve(0.1 * std::pow(1001.0, 0.6), 0.6, 0.0);
  app.jobs = {job};
  return app;
}

SimResult RunTinyPair(SimEngine engine, Time lease_minutes,
                      Time second_arrival = 10000.0) {
  SimConfig cfg;
  cfg.lease_minutes = lease_minutes;
  cfg.restart_overhead_minutes = 0.75;
  cfg.engine = engine;
  // Two 1-minute jobs far apart: each finishes within its first lease, so
  // no lease ever actually expires and every tick that fires is stale.
  Simulator sim(ClusterSpec::Uniform(1, 1, 4, 4),
                {TinyApp(0.0, 4.0), TinyApp(second_arrival, 4.0)},
                std::make_unique<ThemisPolicy>(), cfg);
  return sim.Run();
}

TEST(StaleTickGating, ExhaustedStreamRunsNoTailPasses) {
  // Streamed replay of the same tiny pair: after the second app finishes
  // the reader is exhausted and only its stale lease tick remains — the
  // run must end with no further passes.
  ExperimentConfig config;
  config.cluster = ClusterSpec::Uniform(1, 1, 4, 4);
  config.policy = PolicyKind::kThemis;
  std::vector<AppSpec> apps{TinyApp(0.0, 4.0), TinyApp(30.0, 4.0)};
  auto run = [&](SimEngine engine) {
    ExperimentConfig c = config;
    c.sim.engine = engine;
    return RunStreamingExperiment(c,
                                  std::make_unique<VectorTraceReader>(apps));
  };
  const ExperimentResult event = run(SimEngine::kEventDriven);
  const ExperimentResult pass = run(SimEngine::kPassStepped);
  ExpectSameExperiment(event, pass);
  EXPECT_EQ(event.unfinished_apps, 0);
  // Exactly: 2 arrival passes + 2 finish passes. The first app's stale
  // lease tick fires (advancing time, no pass); the second app's never
  // even pops — once the stream is exhausted and the last app finished,
  // the run ends instead of walking out to the orphaned tick.
  EXPECT_EQ(event.scheduling_passes, 4);
  EXPECT_EQ(event.rounds_executed, 2);
  EXPECT_EQ(event.events_processed, 5);
}

TEST(StaleTickGating, EventCountIndependentOfLeaseDensityWhenIdle) {
  // Property: on a cluster that is idle between two far-apart tiny apps,
  // the number of events, passes, rounds and time advances is invariant
  // under lease-tick density — shrinking the lease 100x must not add work.
  const SimResult baseline = RunTinyPair(SimEngine::kEventDriven, 20.0);
  for (Time lease : {2.0, 5.0, 200.0}) {
    const SimResult r = RunTinyPair(SimEngine::kEventDriven, lease);
    EXPECT_EQ(r.events_processed, baseline.events_processed) << lease;
    EXPECT_EQ(r.scheduling_passes, baseline.scheduling_passes) << lease;
    EXPECT_EQ(r.rounds_executed, baseline.rounds_executed) << lease;
    EXPECT_EQ(r.sim_time_advances, baseline.sim_time_advances) << lease;
    EXPECT_TRUE(r.unfinished.empty()) << lease;
  }
  // And the pass-stepped engine counts the very same stream.
  const SimResult pass = RunTinyPair(SimEngine::kPassStepped, 2.0);
  EXPECT_EQ(pass.events_processed, baseline.events_processed);
  EXPECT_EQ(pass.scheduling_passes, baseline.scheduling_passes);
}

// --------------------------------------------------------------------------
// Epsilon-batched auction rounds.
// --------------------------------------------------------------------------

TEST(EpsilonBatching, CoalescedRoundsFinishSameAppsWithFewerPasses) {
  ExperimentConfig config = ContendedConfig(PolicyKind::kThemis);
  config.trace.mean_interarrival = 2.0;  // scatter lease expiries densely
  const ExperimentResult exact = RunWithEngine(config, SimEngine::kEventDriven);

  config.sim.auction_epsilon_minutes = 5.0;
  const ExperimentResult batched =
      RunWithEngine(config, SimEngine::kEventDriven);

  EXPECT_LT(batched.scheduling_passes, exact.scheduling_passes);
  EXPECT_EQ(batched.unfinished_apps, 0);
  EXPECT_EQ(exact.unfinished_apps, 0);
  EXPECT_EQ(batched.finished_apps, exact.finished_apps);
}

TEST(EpsilonBatching, ValidateRejectsEpsilonOnPassEngine) {
  SimConfig cfg;
  cfg.engine = SimEngine::kPassStepped;
  cfg.auction_epsilon_minutes = 1.0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  cfg.engine = SimEngine::kEventDriven;
  EXPECT_NO_THROW(cfg.Validate());
  cfg.auction_epsilon_minutes = -0.5;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  cfg.auction_epsilon_minutes = 0.0;
  cfg.metrics_tick_minutes = -1.0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Scenario JSON knobs.
// --------------------------------------------------------------------------

TEST(Scenario, EngineAndEpsilonKnobsParse) {
  const std::string json = R"({
    "scenarios": [
      { "name": "reference", "sim": { "engine": "pass" } },
      { "name": "batched",
        "sim": { "engine": "event", "auction_epsilon_minutes": 2.5,
                 "metrics_tick_minutes": 10 } }
    ]
  })";
  const auto specs = LoadScenarios(json);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].config.sim.engine, SimEngine::kPassStepped);
  EXPECT_EQ(specs[1].config.sim.engine, SimEngine::kEventDriven);
  EXPECT_DOUBLE_EQ(specs[1].config.sim.auction_epsilon_minutes, 2.5);
  EXPECT_DOUBLE_EQ(specs[1].config.sim.metrics_tick_minutes, 10.0);
}

TEST(Scenario, UnknownEngineNameThrows) {
  const std::string json = R"({
    "scenarios": [ { "name": "bad", "sim": { "engine": "turbo" } } ]
  })";
  EXPECT_THROW(LoadScenarios(json), std::runtime_error);
}

TEST(Scenario, EpsilonOnPassEngineThrowsAtLoad) {
  const std::string json = R"({
    "scenarios": [
      { "name": "bad",
        "sim": { "engine": "pass", "auction_epsilon_minutes": 3 } }
    ]
  })";
  EXPECT_THROW(LoadScenarios(json), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Bursty trace generation (the sparse arrival shape the event core targets).
// --------------------------------------------------------------------------

TEST(BurstyTrace, ArrivalsComeInBurstsAtExactGaps) {
  TraceConfig cfg;
  cfg.seed = 5;
  cfg.num_apps = 12;
  cfg.burst_size = 4;
  cfg.burst_gap_minutes = 90.0;
  const auto apps = TraceGenerator(cfg).Generate();
  ASSERT_EQ(apps.size(), 12u);
  for (std::size_t i = 0; i < apps.size(); ++i)
    EXPECT_DOUBLE_EQ(apps[i].arrival, static_cast<double>(i / 4) * 90.0) << i;
}

TEST(BurstyTrace, PerAppDrawsMatchPoissonModeApps) {
  // The burst knobs replace only the arrival process: app contents (jobs,
  // models, durations) come from per-app Split() streams and must be
  // unchanged relative to the Poisson-arrival trace with the same seed.
  TraceConfig poisson;
  poisson.seed = 17;
  poisson.num_apps = 10;
  TraceConfig bursty = poisson;
  bursty.burst_size = 5;
  bursty.burst_gap_minutes = 60.0;
  const auto a = TraceGenerator(poisson).Generate();
  const auto b = TraceGenerator(bursty).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].jobs.size(), b[i].jobs.size()) << i;
    for (std::size_t j = 0; j < a[i].jobs.size(); ++j) {
      EXPECT_EQ(a[i].jobs[j].total_work, b[i].jobs[j].total_work);
      EXPECT_EQ(a[i].jobs[j].gpus_per_task, b[i].jobs[j].gpus_per_task);
      EXPECT_EQ(a[i].jobs[j].model.name, b[i].jobs[j].model.name);
    }
  }
}

}  // namespace
}  // namespace themis
