# Smoke-test driver: run ${SMOKE_COMMAND}, require exit code 0 and non-empty
# stdout. Used to keep the examples building and runnable under CTest.
if(NOT SMOKE_COMMAND)
  message(FATAL_ERROR "SMOKE_COMMAND not set")
endif()

execute_process(
  COMMAND ${SMOKE_COMMAND}
  OUTPUT_VARIABLE smoke_stdout
  RESULT_VARIABLE smoke_rc
)

if(NOT smoke_rc EQUAL 0)
  message(FATAL_ERROR "${SMOKE_COMMAND} exited with ${smoke_rc}")
endif()

string(STRIP "${smoke_stdout}" smoke_stripped)
if(smoke_stripped STREQUAL "")
  message(FATAL_ERROR "${SMOKE_COMMAND} produced no stdout")
endif()

message("${smoke_stdout}")
