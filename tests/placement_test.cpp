// Tests for placement/: model profiles, slowdown arithmetic, placement
// scores, greedy locality-aware GPU picking.
#include <gtest/gtest.h>

#include "placement/model_profile.h"
#include "placement/placement_model.h"

namespace themis {
namespace {

TEST(ModelProfile, CanonicalModelsMatchFig2Roster) {
  const auto& models = CanonicalModels();
  ASSERT_EQ(models.size(), 5u);
  for (const char* name :
       {"VGG16", "VGG19", "AlexNet", "Inceptionv3", "ResNet50"})
    EXPECT_NO_THROW(ModelByName(name));
  EXPECT_THROW(ModelByName("GPT3"), std::out_of_range);
}

TEST(ModelProfile, AllSensitivityProfilesValid) {
  for (const auto& m : CanonicalModels())
    EXPECT_TRUE(m.sensitivity.IsValid()) << m.name;
}

TEST(ModelProfile, VggFamilyIsNetworkIntensiveResNetIsNot) {
  EXPECT_TRUE(ModelByName("VGG16").network_intensive);
  EXPECT_TRUE(ModelByName("VGG19").network_intensive);
  EXPECT_FALSE(ModelByName("ResNet50").network_intensive);
  EXPECT_TRUE(SensitiveModel().network_intensive);
  EXPECT_FALSE(InsensitiveModel().network_intensive);
}

TEST(ModelProfile, Fig2CrossServerRatios) {
  // Fig. 2 shape: VGG16 ~2x slower when 4 GPUs span two servers (rack
  // level); ResNet50 nearly unaffected.
  const double vgg = ModelByName("VGG16").sensitivity.rack;
  const double resnet = ModelByName("ResNet50").sensitivity.rack;
  EXPECT_NEAR(1.0 / vgg, 2.0, 0.25);
  EXPECT_GT(resnet, 0.93);
}

TEST(SensitivityProfile, ValidityChecks) {
  EXPECT_TRUE((SensitivityProfile{1.0, 0.9, 0.6, 0.4}).IsValid());
  EXPECT_FALSE((SensitivityProfile{1.0, 0.9, 0.95, 0.4}).IsValid());  // rise
  EXPECT_FALSE((SensitivityProfile{1.0, 0.9, 0.6, 0.0}).IsValid());   // zero
  EXPECT_FALSE((SensitivityProfile{1.1, 0.9, 0.6, 0.4}).IsValid());   // > 1
}

class PlacementFixture : public ::testing::Test {
 protected:
  // 2 racks x 2 machines x 4 GPUs (2-GPU NVLink slots).
  Topology topo_{ClusterSpec::Uniform(2, 2, 4, 2)};
  const ModelProfile& vgg_ = ModelByName("VGG16");
  const ModelProfile& resnet_ = ModelByName("ResNet50");
};

TEST_F(PlacementFixture, SlowdownFollowsSpanLevel) {
  EXPECT_DOUBLE_EQ(Slowdown(vgg_, {0, 1}, topo_), vgg_.sensitivity.slot);
  EXPECT_DOUBLE_EQ(Slowdown(vgg_, {0, 2}, topo_), vgg_.sensitivity.machine);
  EXPECT_DOUBLE_EQ(Slowdown(vgg_, {0, 4}, topo_), vgg_.sensitivity.rack);
  EXPECT_DOUBLE_EQ(Slowdown(vgg_, {0, 8}, topo_), vgg_.sensitivity.cross_rack);
}

TEST_F(PlacementFixture, EmptySetIsIdeal) {
  EXPECT_DOUBLE_EQ(Slowdown(vgg_, {}, topo_), 1.0);
  EXPECT_DOUBLE_EQ(PlacementScore({}, topo_), 1.0);
  EXPECT_DOUBLE_EQ(EffectiveRate(vgg_, {}, topo_), 0.0);
}

TEST_F(PlacementFixture, PlacementScoreFourLevels) {
  EXPECT_DOUBLE_EQ(PlacementScore({0, 1}, topo_), 1.0);
  EXPECT_DOUBLE_EQ(PlacementScore({0, 2}, topo_), 0.8);
  EXPECT_DOUBLE_EQ(PlacementScore({0, 4}, topo_), 0.6);
  EXPECT_DOUBLE_EQ(PlacementScore({0, 8}, topo_), 0.4);
}

TEST_F(PlacementFixture, EffectiveRateScalesWithGpusAndSlowdown) {
  // 2 GPUs on one slot: rate 2; 2 GPUs across racks: rate 2 * S_xrack.
  EXPECT_DOUBLE_EQ(EffectiveRate(vgg_, {0, 1}, topo_), 2.0);
  EXPECT_DOUBLE_EQ(EffectiveRate(vgg_, {0, 8}, topo_),
                   2.0 * vgg_.sensitivity.cross_rack);
  // ResNet is barely affected by spread.
  EXPECT_GT(EffectiveRate(resnet_, {0, 8}, topo_), 1.7);
}

TEST_F(PlacementFixture, MachineLocalBeatsSpreadForVgg) {
  const double local = EffectiveRate(vgg_, {0, 1, 2, 3}, topo_);
  const double spread = EffectiveRate(vgg_, {0, 1, 4, 5}, topo_);
  EXPECT_GT(local, spread);
}

TEST_F(PlacementFixture, PickBestPlacedFitsInOneMachine) {
  const std::vector<GpuId> free{0, 1, 2, 3, 4, 5};
  const auto picked = PickBestPlaced(4, free, topo_);
  ASSERT_EQ(picked.size(), 4u);
  EXPECT_EQ(topo_.SpanLevel(picked), LocalityLevel::kMachine);
}

TEST_F(PlacementFixture, PickBestPlacedPrefersTightestFit) {
  // Machine 0 has 2 free, machine 1 has 4 free: a 2-GPU request should take
  // machine 0's pair and leave the larger block intact.
  const std::vector<GpuId> free{0, 1, 4, 5, 6, 7};
  const auto picked = PickBestPlaced(2, free, topo_);
  EXPECT_EQ(picked, (std::vector<GpuId>{0, 1}));
}

TEST_F(PlacementFixture, PickBestPlacedSpansWithinPreferredRack) {
  // 6 GPUs can't fit one machine (4 max); should stay within one rack.
  const std::vector<GpuId> free{0, 1, 2, 3, 4, 5, 8, 9};
  const auto picked = PickBestPlaced(6, free, topo_);
  ASSERT_EQ(picked.size(), 6u);
  EXPECT_EQ(topo_.SpanLevel(picked), LocalityLevel::kRack);
}

TEST_F(PlacementFixture, PickBestPlacedReturnsAllWhenScarce) {
  const std::vector<GpuId> free{0, 9};
  EXPECT_EQ(PickBestPlaced(5, free, topo_).size(), 2u);
  EXPECT_EQ(PickBestPlaced(0, free, topo_).size(), 0u);
  EXPECT_EQ(PickBestPlaced(3, {}, topo_).size(), 0u);
}

TEST_F(PlacementFixture, PickBestPlacedNearPrefersAnchorMachine) {
  // Anchor on machine 1 (gpu 4); free GPUs on machines 0 and 1: the pick
  // must co-locate with the anchor even though machine 0 has more free.
  const std::vector<GpuId> free{0, 1, 2, 5, 6};
  const auto picked = PickBestPlacedNear(2, free, {4}, topo_);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked, (std::vector<GpuId>{5, 6}));
}

TEST_F(PlacementFixture, PickBestPlacedNearFallsBackToAnchorRack) {
  // Anchor on machine 0 (rack 0); no free GPUs there, but machine 1 shares
  // the rack while machine 2 does not.
  const std::vector<GpuId> free{8, 9, 4, 5};
  const auto picked = PickBestPlacedNear(2, free, {0}, topo_);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(topo_.gpu(picked[0]).rack, 0u);
  EXPECT_EQ(topo_.gpu(picked[1]).rack, 0u);
}

TEST_F(PlacementFixture, PickBestPlacedNearWithEmptyAnchorEqualsPlain) {
  const std::vector<GpuId> free{0, 1, 2, 3, 4};
  EXPECT_EQ(PickBestPlacedNear(3, free, {}, topo_),
            PickBestPlaced(3, free, topo_));
}

class SlowdownLevelTest
    : public ::testing::TestWithParam<std::tuple<const char*, LocalityLevel>> {};

TEST_P(SlowdownLevelTest, SlowdownAtLevelMatchesProfileField) {
  const auto& [name, level] = GetParam();
  const ModelProfile& m = ModelByName(name);
  const double s = SlowdownAtLevel(m, level);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
  // Deeper spreads are never faster.
  if (level != LocalityLevel::kSlot) {
    EXPECT_LE(s, SlowdownAtLevel(m, static_cast<LocalityLevel>(
                                        static_cast<int>(level) - 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllLevels, SlowdownLevelTest,
    ::testing::Combine(::testing::Values("VGG16", "VGG19", "AlexNet",
                                         "Inceptionv3", "ResNet50"),
                       ::testing::Values(LocalityLevel::kSlot,
                                         LocalityLevel::kMachine,
                                         LocalityLevel::kRack,
                                         LocalityLevel::kCrossRack)));

}  // namespace
}  // namespace themis
