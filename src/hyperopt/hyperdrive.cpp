#include "hyperopt/hyperdrive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace themis {

HyperDrive::HyperDrive(HyperDriveConfig config) : config_(config) {}

void HyperDrive::Init(const AppSpec& app) { target_loss_ = app.target_loss; }

double HyperDrive::ProjectTotalIterations(const JobView& job) const {
  // Read the loss trajectory observed so far (as the paper's profiler reads
  // TF logs) and fit.
  std::vector<LossSample> samples;
  const double upto = std::max(2.0, job.done_iterations);
  for (int k = 1; k <= 8; ++k) {
    const double it = upto * static_cast<double>(k) / 8.0;
    samples.push_back({it, job.spec->loss.LossAt(it)});
  }
  auto pred = PredictIterationsToTarget(samples, target_loss_);
  return pred.value_or(job.spec->total_iterations);
}

const TunerDecision& HyperDrive::Step(const std::vector<JobView>& jobs,
                                      Time /*now*/) {
  decision_.kill.clear();
  decision_.parallelism_cap.assign(jobs.size(), 0);

  alive_.clear();
  for (std::size_t i = 0; i < jobs.size(); ++i)
    if (jobs[i].alive && !jobs[i].finished) alive_.push_back(static_cast<int>(i));

  // Warmup: every alive job runs at full parallelism until it has produced
  // enough loss samples to classify.
  projection_.assign(jobs.size(), 0.0);
  double best = std::numeric_limits<double>::infinity();
  bool any_classified = false;
  for (int i : alive_) {
    if (jobs[i].done_iterations < config_.warmup_iterations) continue;
    projection_[i] = ProjectTotalIterations(jobs[i]);
    best = std::min(best, projection_[i]);
    any_classified = true;
  }

  for (int i : alive_) {
    const int max_par = jobs[i].spec->MaxParallelism();
    if (!any_classified || jobs[i].done_iterations < config_.warmup_iterations) {
      decision_.parallelism_cap[i] = max_par;
      continue;
    }
    const double ratio = projection_[i] / best;
    if (ratio > config_.poor_ratio && alive_.size() > 1) {
      decision_.kill.push_back(i);
      decision_.parallelism_cap[i] = 0;
    } else if (ratio > config_.good_ratio) {
      // Promising: reduced parallelism, but never below one task's gang.
      const int reduced = static_cast<int>(
          std::ceil(max_par * config_.promising_parallelism));
      decision_.parallelism_cap[i] =
          std::max(jobs[i].spec->gpus_per_task,
                   reduced - reduced % jobs[i].spec->gpus_per_task);
    } else {
      decision_.parallelism_cap[i] = max_par;  // good
    }
  }
  // Never kill every job: if all were classified poor, spare the best one.
  if (!alive_.empty() && decision_.kill.size() == alive_.size()) {
    int best_idx = alive_.front();
    for (int i : alive_)
      if (projection_[i] < projection_[best_idx]) best_idx = i;
    decision_.kill.erase(
        std::remove(decision_.kill.begin(), decision_.kill.end(), best_idx),
        decision_.kill.end());
    decision_.parallelism_cap[best_idx] = jobs[best_idx].spec->MaxParallelism();
  }
  return decision_;
}

}  // namespace themis
