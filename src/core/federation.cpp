#include "core/federation.h"

#include <algorithm>
#include <stdexcept>

#include "common/stats.h"

namespace themis {
namespace {

/// Max-parallelism GPU demand of an app (its whole exploration width).
long long AppDemand(const AppSpec& app) {
  long long demand = 0;
  for (const JobSpec& job : app.jobs) demand += job.MaxParallelism();
  return demand;
}

/// Largest single task gang the app ever needs placed at once.
int MaxGang(const AppSpec& app) {
  int gang = 0;
  for (const JobSpec& job : app.jobs) gang = std::max(gang, job.gpus_per_task);
  return gang;
}

/// Recompute the summary metrics from the merged per-app vectors with the
/// same formulas MetricsCollector uses, so a 1-shard merge is bit-identical
/// to the unsharded summary.
void SummarizeMerged(ExperimentResult& r) {
  r.max_fairness = 0.0;
  for (double rho : r.rhos) r.max_fairness = std::max(r.max_fairness, rho);
  r.min_fairness = r.rhos.empty() ? 0.0 : r.rhos.front();
  for (double rho : r.rhos) r.min_fairness = std::min(r.min_fairness, rho);
  r.median_fairness = r.rhos.empty() ? 0.0 : Percentile(r.rhos, 50.0);
  r.jains_index = JainsIndex(r.rhos);
  double act_sum = 0.0;
  for (double act : r.completion_times) act_sum += act;
  r.avg_completion_time =
      r.completion_times.empty()
          ? 0.0
          : act_sum / static_cast<double>(r.completion_times.size());
}

}  // namespace

std::vector<FederationShard> PartitionCluster(const ClusterSpec& global,
                                              int num_shards) {
  const int total_machines = global.TotalMachines();
  if (num_shards < 1)
    throw std::invalid_argument("PartitionCluster: num_shards must be >= 1");
  if (num_shards > total_machines)
    throw std::invalid_argument(
        "PartitionCluster: num_shards (" + std::to_string(num_shards) +
        ") exceeds machine count (" + std::to_string(total_machines) + ")");

  const int base = total_machines / num_shards;
  const int extra = total_machines % num_shards;

  std::vector<FederationShard> shards(num_shards);
  int shard = 0;
  int in_shard = 0;
  int target = base + (shard < extra ? 1 : 0);
  MachineId next_machine = 0;
  GpuId next_gpu = 0;
  RackSpec* open_rack = nullptr;

  for (const RackSpec& rack : global.racks) {
    open_rack = nullptr;  // a new source rack starts a new shard-local rack
    for (const MachineSpec& machine : rack.machines) {
      FederationShard& s = shards[shard];
      if (in_shard == 0) {
        s.index = shard;
        s.first_machine = next_machine;
        s.first_gpu = next_gpu;
      }
      if (open_rack == nullptr) {
        s.spec.racks.emplace_back();
        open_rack = &s.spec.racks.back();
      }
      open_rack->machines.push_back(machine);
      ++s.num_machines;
      s.num_gpus += machine.num_gpus;
      ++next_machine;
      next_gpu += machine.num_gpus;
      if (++in_shard == target && shard + 1 < num_shards) {
        ++shard;
        in_shard = 0;
        target = base + (shard < extra ? 1 : 0);
        open_rack = nullptr;
      }
    }
  }
  return shards;
}

PlacementHint LeastLoadedPlacement() {
  return [](const AppSpec& app, const std::vector<ShardLoadView>& loads) {
    const int gang = MaxGang(app);
    int best = -1;
    double best_ratio = 0.0;
    int biggest = 0;
    for (int s = 0; s < static_cast<int>(loads.size()); ++s) {
      if (loads[s].capacity_effective_gpus >
          loads[biggest].capacity_effective_gpus)
        biggest = s;
      if (loads[s].capacity_gpus < gang) continue;
      // Effective capacity in the denominator: a shard of V100s takes 3x
      // the demand of an equal-sized K80 shard before looking as loaded.
      const double ratio = static_cast<double>(loads[s].routed_demand) /
                           loads[s].capacity_effective_gpus;
      if (best < 0 || ratio < best_ratio) {
        best = s;
        best_ratio = ratio;
      }
    }
    return best >= 0 ? best : biggest;
  };
}

PlacementHint RoundRobinPlacement() {
  return [](const AppSpec&, const std::vector<ShardLoadView>& loads) {
    int best = 0;
    for (int s = 1; s < static_cast<int>(loads.size()); ++s)
      if (loads[s].routed_apps < loads[best].routed_apps) best = s;
    return best;
  };
}

ShardedArbiter::ShardedArbiter(const ClusterSpec& global, int num_shards,
                               PlacementHint hint)
    : shards_(PartitionCluster(global, num_shards)), hint_(std::move(hint)) {
  for (const FederationShard& s : shards_) total_gpus_ += s.num_gpus;
}

FederationRouting ShardedArbiter::Route(
    const std::vector<AppSpec>& apps) const {
  const int n = num_shards();
  FederationRouting routing;
  routing.shard_apps.resize(n);
  routing.global_index.resize(n);

  std::vector<ShardLoadView> loads(n);
  for (int s = 0; s < n; ++s) {
    loads[s].capacity_gpus = shards_[s].num_gpus;
    loads[s].capacity_effective_gpus = shards_[s].spec.TotalEffectiveGpus();
  }

  for (std::size_t i = 0; i < apps.size(); ++i) {
    const int s = hint_(apps[i], loads);
    if (s < 0 || s >= n)
      throw std::runtime_error("ShardedArbiter: placement hint returned " +
                               std::to_string(s) + " with " +
                               std::to_string(n) + " shards");
    routing.shard_apps[s].push_back(apps[i]);
    routing.global_index[s].push_back(i);
    loads[s].routed_demand += AppDemand(apps[i]);
    ++loads[s].routed_apps;
  }
  return routing;
}

FederationResult ShardedArbiter::Run(const ExperimentConfig& config,
                                     const std::vector<AppSpec>& apps,
                                     int num_threads) const {
  const int n = num_shards();
  const FederationRouting routing = Route(apps);

  // Per-shard grant audit, filled by that shard's round observer on its own
  // worker thread (no slot is shared across shards).
  struct ShardAudit {
    std::vector<unsigned char> granted_gpus;  // by *global* gpu id
    std::vector<long long> granted_per_app;   // by shard-local app id
    long long granted_total = 0;
    int out_of_range = 0;
  };
  std::vector<ShardAudit> audits(n);
  std::vector<ExperimentResult> results(n);
  std::vector<std::string> errors(n);

  RunParallel(
      static_cast<std::size_t>(n),
      [&](std::size_t s) {
        ExperimentConfig shard_config = config;
        shard_config.cluster = shards_[s].spec;
        // Shard 0 keeps the configured stream so --shards=1 reproduces the
        // unsharded run exactly; later shards decorrelate deterministically.
        shard_config.sim.seed =
            s == 0 ? config.sim.seed : DeriveScenarioSeed(config.sim.seed, s);

        ShardAudit& audit = audits[s];
        audit.granted_gpus.assign(total_gpus_, 0);
        audit.granted_per_app.assign(routing.shard_apps[s].size(), 0);
        const GpuId gpu_base = shards_[s].first_gpu;
        const int shard_gpus = shards_[s].num_gpus;
        auto observer = [&audit, gpu_base, shard_gpus](
                            const ResourceOffer&, const GrantSet& grants) {
          for (const Grant& g : grants.grants) {
            audit.granted_total += static_cast<long long>(g.gpus.size());
            if (g.app < audit.granted_per_app.size())
              audit.granted_per_app[g.app] +=
                  static_cast<long long>(g.gpus.size());
            for (GpuId gpu : g.gpus) {
              if (static_cast<int>(gpu) >= shard_gpus)
                ++audit.out_of_range;
              else
                audit.granted_gpus[gpu_base + gpu] = 1;
            }
          }
        };
        try {
          results[s] = RunExperimentWithApps(shard_config,
                                             routing.shard_apps[s], observer);
        } catch (const std::exception& e) {
          errors[s] = e.what();
        }
      },
      num_threads);

  for (int s = 0; s < n; ++s)
    if (!errors[s].empty())
      throw std::runtime_error("ShardedArbiter: shard " + std::to_string(s) +
                               " failed: " + errors[s]);

  FederationResult out;
  out.num_shards = n;
  out.per_shard = std::move(results);
  out.granted_per_app.assign(apps.size(), 0);

  // Cross-shard invariants from the audited grant streams.
  std::vector<int> granting_shards(total_gpus_, 0);
  for (int s = 0; s < n; ++s) {
    out.out_of_range_grants += audits[s].out_of_range;
    out.total_granted_gpus += audits[s].granted_total;
    for (int g = 0; g < total_gpus_; ++g)
      granting_shards[g] += audits[s].granted_gpus[g];
    for (std::size_t l = 0; l < audits[s].granted_per_app.size(); ++l)
      out.granted_per_app[routing.global_index[s][l]] =
          audits[s].granted_per_app[l];
  }
  for (int g = 0; g < total_gpus_; ++g)
    if (granting_shards[g] > 1) ++out.cross_shard_double_grants;

  // Merge: stitch the per-app vectors back into global submission order.
  ExperimentResult& merged = out.merged;
  struct MergedApp {
    std::size_t global_id;
    double rho, act, score;
  };
  std::vector<MergedApp> finished;
  for (int s = 0; s < n; ++s) {
    const ExperimentResult& r = out.per_shard[s];
    out.apps_per_shard.push_back(
        static_cast<int>(routing.shard_apps[s].size()));
    merged.unfinished_apps += r.unfinished_apps;
    merged.machine_failures += r.machine_failures;
    merged.scheduling_passes += r.scheduling_passes;
    merged.events_processed += r.events_processed;
    merged.rounds_executed += r.rounds_executed;
    merged.sim_time_advances += r.sim_time_advances;
    merged.gpu_time += r.gpu_time;
    merged.peak_contention = std::max(merged.peak_contention,
                                      r.peak_contention);
    for (std::size_t l = 0; l < r.finished_apps.size(); ++l)
      finished.push_back(MergedApp{routing.global_index[s][r.finished_apps[l]],
                                   r.rhos[l], r.completion_times[l],
                                   r.placement_scores[l]});
    for (const AllocationSample& sample : r.timeline)
      merged.timeline.push_back(AllocationSample{
          sample.time,
          static_cast<AppId>(routing.global_index[s][sample.app]),
          sample.gpus});
  }
  std::sort(finished.begin(), finished.end(),
            [](const MergedApp& a, const MergedApp& b) {
              return a.global_id < b.global_id;
            });
  for (const MergedApp& app : finished) {
    merged.finished_apps.push_back(static_cast<AppId>(app.global_id));
    merged.rhos.push_back(app.rho);
    merged.completion_times.push_back(app.act);
    merged.placement_scores.push_back(app.score);
  }
  std::stable_sort(merged.timeline.begin(), merged.timeline.end(),
                   [](const AllocationSample& a, const AllocationSample& b) {
                     return a.time < b.time;
                   });
  merged.policy_name =
      out.per_shard.empty() ? "" : out.per_shard.front().policy_name;
  SummarizeMerged(merged);
  out.total_rounds = merged.scheduling_passes;
  return out;
}

}  // namespace themis
