// Tests for common/: deterministic RNG and the statistics toolkit.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace themis {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.NextU64() == b.NextU64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) {
    const int v = rng.UniformInt(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    ++counts[v - 2];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(20.0);
  EXPECT_NEAR(sum / n, 20.0, 0.5);
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LogNormalMedianConverges) {
  Rng rng(14);
  std::vector<double> values;
  for (int i = 0; i < 100001; ++i) values.push_back(rng.LogNormalMedian(59.0, 0.8));
  EXPECT_NEAR(Percentile(values, 50.0), 59.0, 1.5);
}

TEST(Rng, SplitStreamsAreIndependentOfSiblingDraws) {
  // Drawing more values from one child must not change another child's
  // sequence: each split captures its own seed.
  Rng parent_a(99), parent_b(99);
  Rng child_a1 = parent_a.Split();
  Rng child_a2 = parent_a.Split();
  Rng child_b1 = parent_b.Split();
  (void)child_b1.NextU64();  // perturb b1 heavily
  for (int i = 0; i < 100; ++i) (void)child_b1.NextU64();
  Rng child_b2 = parent_b.Split();
  (void)child_a1;
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child_a2.NextU64(), child_b2.NextU64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Jains, PerfectlyUniformIsOne) {
  std::vector<double> v{3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(JainsIndex(v), 1.0);
}

TEST(Jains, EmptyIsOne) {
  EXPECT_DOUBLE_EQ(JainsIndex(std::vector<double>{}), 1.0);
}

TEST(Jains, SingleWinnerIsOneOverN) {
  std::vector<double> v{1.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(JainsIndex(v), 0.25, 1e-12);
}

TEST(Jains, ScaleInvariant) {
  std::vector<double> v{1.0, 2.0, 3.0};
  std::vector<double> w{10.0, 20.0, 30.0};
  EXPECT_NEAR(JainsIndex(v), JainsIndex(w), 1e-12);
}

class JainsBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(JainsBoundsTest, AlwaysWithinBounds) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  std::vector<double> v;
  for (int i = 0; i < n; ++i) v.push_back(rng.Uniform(0.0, 100.0));
  const double j = JainsIndex(v);
  EXPECT_GE(j, 1.0 / static_cast<double>(n) - 1e-12);
  EXPECT_LE(j, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JainsBoundsTest,
                         ::testing::Values(1, 2, 3, 5, 10, 50, 100, 1000));

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 75.0), 7.5);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(Percentile({}, 50.0), std::invalid_argument);
}

TEST(Cdf, StaircaseReachesOne) {
  auto cdf = Cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_NEAR(cdf[0].fraction, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(Cdf, FormatDownsamples) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  const std::string s = FormatCdf(Cdf(values), 10);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 10);
}

TEST(Summary, TracksMinMaxMean) {
  Summary s;
  s.Add(3.0);
  s.Add(1.0);
  s.Add(5.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 9.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Types, UnboundedRhoIsLargeButFinite) {
  EXPECT_TRUE(std::isfinite(kUnboundedRho));
  EXPECT_GT(kUnboundedRho, 1e5);
}

}  // namespace
}  // namespace themis
