#include "sim/policy.h"

#include <utility>

namespace themis {

SchedulerContext::SchedulerContext(const ResourceOffer& offer,
                                   Cluster* cluster, WorkEstimator* estimator,
                                   AppList* apps, Rng* rng)
    : now_(offer.time),
      cluster_(cluster),
      estimator_(estimator),
      lease_duration_(offer.lease_duration),
      apps_(apps),
      rng_(rng),
      pool_(offer.gpus, cluster->topology()),
      offered_gpus_(offer.TotalGpus()) {
  grants_.round_id = offer.round_id;
  grants_.lease_expiry = offer.time + offer.lease_duration;
}

SchedulerContext::SchedulerContext(Time now, Cluster* cluster,
                                   WorkEstimator* estimator,
                                   Time lease_duration, AppList* apps,
                                   Rng* rng)
    : SchedulerContext(MakeOffer(0, now, lease_duration, *cluster), cluster,
                       estimator, apps, rng) {}

void SchedulerContext::Grant(AppState& app, JobState& job,
                             const std::vector<GpuId>& gpus) {
  if (gpus.empty()) return;
  for (GpuId g : gpus) {
    pool_.Remove(g);  // throws if g was never offered or already granted
    job.gpus.push_back(g);
  }
  granted_gpus_ += static_cast<int>(gpus.size());
  grants_.grants.push_back({app.id, job.id, gpus});
  granted_jobs_.emplace_back(app.id, job.id);
}

GrantSet SchedulerContext::TakeGrants() {
  grants_.diagnostics.offered_gpus = offered_gpus_;
  grants_.diagnostics.granted_gpus = granted_gpus_;
  grants_.diagnostics.leftover_gpus = pool_.size();
  return std::move(grants_);
}

GrantSet ISchedulerPolicy::Schedule(const std::vector<GpuId>& free_gpus,
                                    SchedulerContext& ctx) {
  ResourceOffer offer;
  offer.round_id = ctx.grants().round_id;
  offer.time = ctx.now();
  offer.lease_duration = ctx.lease_duration();
  offer.gpus = free_gpus;
  offer.free_per_machine = ctx.free_per_machine();  // pre-grant snapshot
  offer.machine_speeds = ctx.topology().machine_speeds();
  GrantSet out = RunRound(offer, ctx);
  ApplyGrants(out, ctx.cluster());
  return out;
}

}  // namespace themis
