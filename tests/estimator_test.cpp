// Tests for estimator/: power-law curve fitting and work-left estimation
// (clairvoyant / noisy / curve-fit modes, Sec. 8.1 & Fig. 11).
#include <gtest/gtest.h>

#include <cmath>

#include "estimator/curve_fit.h"
#include "estimator/work_estimator.h"

namespace themis {
namespace {

std::vector<LossSample> SampleCurve(const LossCurve& curve,
                                    std::initializer_list<double> iters) {
  std::vector<LossSample> out;
  for (double i : iters) out.push_back({i, curve.LossAt(i)});
  return out;
}

TEST(CurveFit, RecoversExactPowerLaw) {
  const LossCurve truth(8.0, 0.6, 0.0);
  const auto fit = FitPowerLaw(SampleCurve(truth, {1, 5, 20, 100, 400}));
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->curve.scale(), 8.0, 1e-6);
  EXPECT_NEAR(fit->curve.decay(), 0.6, 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-9);
}

TEST(CurveFit, RecoversWithKnownFloor) {
  const LossCurve truth(5.0, 0.4, 0.3);
  const auto fit = FitPowerLaw(SampleCurve(truth, {2, 8, 32, 128}), 0.3);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->curve.decay(), 0.4, 1e-9);
  EXPECT_NEAR(fit->curve.floor(), 0.3, 1e-12);
}

TEST(CurveFit, ToleratesNoise) {
  const LossCurve truth(8.0, 0.6, 0.0);
  std::vector<LossSample> samples;
  double bump = 1.0;
  for (double i : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0}) {
    bump = -bump;
    samples.push_back({i, truth.LossAt(i) * (1.0 + 0.02 * bump)});
  }
  const auto fit = FitPowerLaw(samples);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->curve.decay(), 0.6, 0.05);
  EXPECT_GT(fit->r_squared, 0.98);
}

TEST(CurveFit, RejectsInsufficientSamples) {
  EXPECT_FALSE(FitPowerLaw({}).has_value());
  EXPECT_FALSE(FitPowerLaw({{1.0, 2.0}}).has_value());
  // All at the same iteration: no slope.
  EXPECT_FALSE(FitPowerLaw({{5.0, 2.0}, {5.0, 2.1}}).has_value());
}

TEST(CurveFit, RejectsNonConvergingSeries) {
  // Rising loss -> negative decay -> rejected.
  EXPECT_FALSE(FitPowerLaw({{1.0, 1.0}, {10.0, 2.0}, {100.0, 4.0}}).has_value());
}

TEST(CurveFit, IgnoresSamplesAtOrBelowFloor) {
  const LossCurve truth(8.0, 0.6, 0.1);
  auto samples = SampleCurve(truth, {1, 10, 100});
  samples.push_back({1000.0, 0.05});  // below the floor: dropped
  const auto fit = FitPowerLaw(samples, 0.1);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->curve.decay(), 0.6, 1e-9);
}

TEST(CurveFit, PredictIterationsMatchesAnalytic) {
  const LossCurve truth(8.0, 0.6, 0.0);
  const auto pred =
      PredictIterationsToTarget(SampleCurve(truth, {1, 10, 100}), 0.5);
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(*pred, truth.IterationsToTarget(0.5), 1e-6 * *pred);
}

TEST(CurveFit, PredictUnreachableTargetIsNullopt) {
  const LossCurve truth(8.0, 0.6, 0.2);
  EXPECT_FALSE(PredictIterationsToTarget(SampleCurve(truth, {1, 10, 100}),
                                         0.1, 0.2)
                   .has_value());
}

JobSpec MakeJob(double work = 100.0, double iters = 500.0) {
  JobSpec job;
  job.total_work = work;
  job.total_iterations = iters;
  job.num_tasks = 1;
  job.gpus_per_task = 4;
  const double decay = 0.6;
  job.loss = LossCurve(0.1 * std::pow(iters + 1.0, decay), decay, 0.0);
  return job;
}

TEST(WorkEstimator, ClairvoyantIsExact) {
  WorkEstimator est({EstimationMode::kClairvoyant, 0.0, 1});
  const JobSpec job = MakeJob(100.0, 500.0);
  EXPECT_DOUBLE_EQ(est.TotalWork(job, 0.1), 100.0);
  EXPECT_DOUBLE_EQ(est.RemainingWork(job, 0.0, 0.1), 100.0);
  EXPECT_DOUBLE_EQ(est.RemainingWork(job, 250.0, 0.1), 50.0);
  EXPECT_DOUBLE_EQ(est.RemainingWork(job, 500.0, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(est.RemainingWork(job, 600.0, 0.1), 0.0);  // never negative
}

TEST(WorkEstimator, NoisyStaysWithinTheta) {
  const double theta = 0.2;
  WorkEstimator est({EstimationMode::kNoisy, theta, 99});
  const JobSpec job = MakeJob(100.0, 500.0);
  for (int i = 0; i < 1000; ++i) {
    const double w = est.RemainingWork(job, 250.0, 0.1);
    EXPECT_GE(w, 50.0 * (1.0 - theta) - 1e-9);
    EXPECT_LE(w, 50.0 * (1.0 + theta) + 1e-9);
  }
}

TEST(WorkEstimator, NoisyWithZeroThetaIsExact) {
  WorkEstimator est({EstimationMode::kNoisy, 0.0, 99});
  const JobSpec job = MakeJob(100.0, 500.0);
  EXPECT_DOUBLE_EQ(est.RemainingWork(job, 250.0, 0.1), 50.0);
}

TEST(WorkEstimator, NoisyIsDeterministicPerSeed) {
  const JobSpec job = MakeJob();
  WorkEstimator a({EstimationMode::kNoisy, 0.1, 5});
  WorkEstimator b({EstimationMode::kNoisy, 0.1, 5});
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.RemainingWork(job, 100.0, 0.1),
                     b.RemainingWork(job, 100.0, 0.1));
}

TEST(WorkEstimator, CurveFitApproximatesTruth) {
  WorkEstimator est({EstimationMode::kCurveFit, 0.0, 1});
  const JobSpec job = MakeJob(100.0, 500.0);
  // Power-law loss is exactly fittable, so the estimate should be close.
  EXPECT_NEAR(est.RemainingWork(job, 250.0, 0.1), 50.0, 1.0);
  EXPECT_NEAR(est.TotalWork(job, 0.1), 100.0, 1.0);
}

class NoisyThetaTest : public ::testing::TestWithParam<double> {};

TEST_P(NoisyThetaTest, ErrorBoundHolds) {
  const double theta = GetParam();
  WorkEstimator est({EstimationMode::kNoisy, theta, 7});
  const JobSpec job = MakeJob(80.0, 400.0);
  for (int i = 0; i < 200; ++i) {
    const double w = est.RemainingWork(job, 100.0, 0.1);
    const double truth = 60.0;
    EXPECT_LE(std::abs(w - truth), theta * truth + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Fig11Thetas, NoisyThetaTest,
                         ::testing::Values(0.0, 0.05, 0.10, 0.20));

}  // namespace
}  // namespace themis
