#include "workload/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace themis {
namespace {

constexpr char kHeader[] =
    "app_index,app_name,arrival,tuner,target_loss,num_tasks,gpus_per_task,"
    "total_work,total_iterations,loss_scale,loss_decay,loss_floor,model,"
    "max_span";

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  // A trailing comma yields an empty final field that getline drops; the
  // format never emits one, so nothing to handle.
  return fields;
}

[[noreturn]] void Fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("trace csv line " + std::to_string(line_no) + ": " +
                           what);
}

void WriteAppRows(std::ostream& out, const AppSpec& app, std::size_t index) {
  for (const JobSpec& job : app.jobs) {
    out << index << ',' << app.name << ',' << app.arrival << ','
        << ToString(app.tuner) << ',' << app.target_loss << ','
        << job.num_tasks << ',' << job.gpus_per_task << ','
        << job.total_work << ',' << job.total_iterations << ','
        << job.loss.scale() << ',' << job.loss.decay() << ','
        << job.loss.floor() << ',' << job.model.name << ','
        << ToString(job.max_span) << '\n';
  }
}

}  // namespace

const char* ToString(TunerKind kind) {
  switch (kind) {
    case TunerKind::kNone: return "none";
    case TunerKind::kHyperBand: return "hyperband";
    case TunerKind::kHyperDrive: return "hyperdrive";
  }
  return "none";
}

TunerKind TunerKindFromString(const std::string& name) {
  if (name == "none") return TunerKind::kNone;
  if (name == "hyperband") return TunerKind::kHyperBand;
  if (name == "hyperdrive") return TunerKind::kHyperDrive;
  throw std::runtime_error("unknown tuner kind: " + name);
}

LocalityLevel LocalityLevelFromString(const std::string& name) {
  if (name == "slot") return LocalityLevel::kSlot;
  if (name == "machine") return LocalityLevel::kMachine;
  if (name == "rack") return LocalityLevel::kRack;
  if (name == "cross-rack") return LocalityLevel::kCrossRack;
  throw std::runtime_error("unknown locality level: " + name);
}

// ---------------------------------------------------------------------------
// Readers.

bool VectorTraceReader::Next(AppSpec& out) {
  if (next_ >= apps_.size()) return false;
  out = std::move(apps_[next_++]);
  return true;
}

StreamingCsvTraceReader::StreamingCsvTraceReader(const std::string& path)
    : owned_(std::make_unique<std::ifstream>(path)),
      in_(owned_.get()),
      require_sorted_(true),
      source_(path) {
  if (!*owned_)
    throw std::runtime_error("cannot open for reading: " + path);
  ReadHeader();
}

StreamingCsvTraceReader::StreamingCsvTraceReader(std::istream& in,
                                                 bool require_sorted)
    : in_(&in), require_sorted_(require_sorted), source_("<stream>") {
  ReadHeader();
}

StreamingCsvTraceReader::~StreamingCsvTraceReader() = default;

void StreamingCsvTraceReader::ReadHeader() {
  std::string line;
  if (!std::getline(*in_, line))
    throw std::runtime_error("trace csv: empty input (" + source_ + ")");
  ++line_no_;
  if (line != kHeader) Fail(line_no_, "unexpected header");
}

bool StreamingCsvTraceReader::Next(AppSpec& out) {
  if (done_) {
    if (have_current_) {
      out = std::move(current_);
      have_current_ = false;
      ++apps_read_;
      return true;
    }
    return false;
  }

  std::string line;
  while (std::getline(*in_, line)) {
    ++line_no_;
    if (line.empty()) continue;
    const auto f = SplitCsvLine(line);
    if (f.size() != 14)
      Fail(line_no_, "expected 14 fields, got " + std::to_string(f.size()));
    try {
      const long long app_index = std::stoll(f[0]);
      const bool starts_app = app_index != current_index_;
      AppSpec next_app;
      if (starts_app) {
        if (app_index != current_index_ + 1)
          Fail(line_no_, "app_index must be contiguous (got " +
                             std::to_string(app_index) + " after " +
                             std::to_string(current_index_) + ")");
        next_app.name = f[1];
        next_app.arrival = std::stod(f[2]);
        next_app.tuner = TunerKindFromString(f[3]);
        next_app.target_loss = std::stod(f[4]);
        if (require_sorted_ && current_index_ >= 0 &&
            next_app.arrival < last_arrival_) {
          Fail(line_no_,
               "streamed trace must be arrival-sorted: app " +
                   std::to_string(app_index) + " arrives at " + f[2] +
                   " but app " + std::to_string(current_index_) +
                   " arrived at " + std::to_string(last_arrival_) +
                   " (sort the CSV by arrival, or slurp it with "
                   "ReadTraceCsvFile)");
        }
      }
      JobSpec job;
      job.num_tasks = std::stoi(f[5]);
      job.gpus_per_task = std::stoi(f[6]);
      job.total_work = std::stod(f[7]);
      job.total_iterations = std::stod(f[8]);
      job.loss = LossCurve(std::stod(f[9]), std::stod(f[10]), std::stod(f[11]));
      job.model = ModelByName(f[12]);
      job.max_span = LocalityLevelFromString(f[13]);
      if (job.num_tasks <= 0 || job.gpus_per_task <= 0 || job.total_work <= 0.0)
        Fail(line_no_, "non-positive job shape");

      if (!starts_app) {
        current_.jobs.push_back(std::move(job));
        continue;
      }
      current_index_ = app_index;
      last_arrival_ = next_app.arrival;
      next_app.jobs.push_back(std::move(job));
      if (have_current_) {
        out = std::move(current_);
        current_ = std::move(next_app);
        ++apps_read_;
        return true;
      }
      current_ = std::move(next_app);
      have_current_ = true;
    } catch (const std::runtime_error&) {
      throw;
    } catch (const std::exception& e) {
      Fail(line_no_, e.what());
    }
  }

  done_ = true;
  if (have_current_) {
    out = std::move(current_);
    have_current_ = false;
    ++apps_read_;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Writers.

StreamingTraceWriter::StreamingTraceWriter(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)),
      out_(owned_.get()),
      source_(path) {
  if (!*owned_) throw std::runtime_error("cannot open for writing: " + path);
  *out_ << kHeader << '\n';
  out_->precision(17);
}

StreamingTraceWriter::StreamingTraceWriter(std::ostream& out)
    : out_(&out), source_("<stream>") {
  *out_ << kHeader << '\n';
  out_->precision(17);
}

StreamingTraceWriter::~StreamingTraceWriter() {
  // Best effort on the owning path; Close() explicitly to surface errors.
  if (!closed_ && owned_) owned_->close();
}

void StreamingTraceWriter::Append(const AppSpec& app) {
  if (closed_)
    throw std::logic_error("StreamingTraceWriter: Append after Close");
  WriteAppRows(*out_, app, apps_written_);
  ++apps_written_;
  jobs_written_ += app.jobs.size();
}

void StreamingTraceWriter::Close() {
  if (closed_) return;
  closed_ = true;
  out_->flush();
  if (!*out_)
    throw std::runtime_error("trace csv: write failed (" + source_ + ")");
  if (owned_) owned_->close();
}

// ---------------------------------------------------------------------------
// Slurped forms, layered on the streaming ones (so output stays
// byte-identical between the two paths).

void WriteTraceCsv(std::ostream& out, const std::vector<AppSpec>& apps) {
  StreamingTraceWriter writer(out);
  for (const AppSpec& app : apps) writer.Append(app);
  writer.Close();
}

void WriteTraceCsvFile(const std::string& path,
                       const std::vector<AppSpec>& apps) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  WriteTraceCsv(out, apps);
}

std::vector<AppSpec> ReadTraceCsv(std::istream& in) {
  StreamingCsvTraceReader reader(in, /*require_sorted=*/false);
  std::vector<AppSpec> apps;
  AppSpec app;
  while (reader.Next(app)) apps.push_back(std::move(app));
  return apps;
}

std::vector<AppSpec> ReadTraceCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return ReadTraceCsv(in);
}

}  // namespace themis
