// DRF baseline (Ghodsi et al., NSDI'11) — the instantaneous resource-fair
// scheme Sec. 2.2 argues is a poor fit for ML workloads.
//
// With GPUs as the single contended resource, Dominant Resource Fairness
// reduces to instantaneous max-min on GPU share: whenever GPUs free up, the
// active app with the smallest *current* share of the cluster receives the
// next task-gang. It is placement-unaware and has no notion of finish-time:
// the motivation experiments show how that violates sharing incentive for
// placement-sensitive and long-task workloads.
#pragma once

#include "sim/policy.h"

namespace themis {

class DrfPolicy final : public ISchedulerPolicy {
 public:
  GrantSet RunRound(const ResourceOffer& offer,
                    SchedulerContext& ctx) override;
  const char* name() const override { return "DRF"; }
};

}  // namespace themis
