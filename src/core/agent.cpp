#include "core/agent.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace themis {
namespace {

/// Usable prefix of a gang: whole task-multiples only.
int UsableGpus(const JobSpec& spec, int held) {
  return held - held % spec.gpus_per_task;
}

/// Would the job make progress on (held + extra)? False when the combined
/// usable set violates the job's placement constraint (Sec. 6: such
/// allocations have S = 0, i.e. infinite rho — never worth assigning).
bool WouldProgress(const JobSpec& spec, const std::vector<GpuId>& held,
                   const std::vector<GpuId>& extra, const Topology& topo) {
  std::vector<GpuId> combined = held;
  combined.insert(combined.end(), extra.begin(), extra.end());
  const int usable = UsableGpus(spec, static_cast<int>(combined.size()));
  if (usable <= 0) return false;
  combined.resize(usable);
  return EffectiveJobRate(spec, combined, topo) > 0.0;
}

}  // namespace

std::vector<int> Agent::JobPriorityOrder(const AppState& app) const {
  std::vector<int> order = app.ActiveJobs();
  std::vector<double> remaining(app.jobs.size(), 0.0);
  for (int j : order)
    remaining[j] = estimator_->RemainingWork(
        app.jobs[j].spec, app.jobs[j].DoneIterations(), app.spec.target_loss);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return remaining[a] < remaining[b]; });
  return order;
}

double Agent::SharedRunningTime(
    const AppState& app, const std::vector<std::vector<GpuId>>& gpus) const {
  const Time elapsed = std::max(0.0, now_ - app.arrival());
  double best = std::numeric_limits<double>::infinity();
  for (int j : app.ActiveJobs()) {
    const JobState& job = app.jobs[j];
    const int usable = UsableGpus(job.spec, static_cast<int>(gpus[j].size()));
    if (usable <= 0) continue;
    std::vector<GpuId> used(gpus[j].begin(), gpus[j].begin() + usable);
    const double rate = EffectiveJobRate(job.spec, used, *topo_);
    if (rate <= 0.0) continue;
    const Work left = estimator_->RemainingWork(job.spec, job.DoneIterations(),
                                                app.spec.target_loss);
    best = std::min(best, elapsed + left / rate);
  }
  return best;
}

double Agent::RhoFromSharedTime(const AppState& app, double t_sh) const {
  if (!std::isfinite(t_sh)) return kUnboundedRho;
  const double rho = t_sh / app.ideal_time;
  return std::clamp(rho, 1e-9, kUnboundedRho);
}

double Agent::CurrentRho(const AppState& app) const {
  std::vector<std::vector<GpuId>> gpus(app.jobs.size());
  for (std::size_t j = 0; j < app.jobs.size(); ++j) gpus[j] = app.jobs[j].gpus;
  return RhoFromSharedTime(app, SharedRunningTime(app, gpus));
}

double Agent::HypotheticalRho(const AppState& app,
                              const std::vector<GpuId>& extra) const {
  std::vector<std::vector<GpuId>> gpus(app.jobs.size());
  for (std::size_t j = 0; j < app.jobs.size(); ++j) gpus[j] = app.jobs[j].gpus;
  for (const JobAssignment& a : DistributeToJobs(app, extra))
    gpus[a.job_index].insert(gpus[a.job_index].end(), a.gpus.begin(),
                             a.gpus.end());
  return RhoFromSharedTime(app, SharedRunningTime(app, gpus));
}

std::vector<JobAssignment> Agent::DistributeToJobs(
    const AppState& app, const std::vector<GpuId>& granted) const {
  std::vector<JobAssignment> out;
  std::vector<GpuId> pool = granted;
  for (int j : JobPriorityOrder(app)) {
    if (pool.empty()) break;
    const JobState& job = app.jobs[j];
    const int gang = job.spec.gpus_per_task;
    int gangs = std::min(job.UnmetGangs(), static_cast<int>(pool.size()) / gang);
    if (gangs <= 0) continue;
    std::vector<GpuId> picked =
        PickBestPlacedNear(gangs * gang, pool, job.gpus, *topo_);
    // Trim to whole gangs (PickBestPlacedNear returns what exists).
    const int usable = UsableGpus(job.spec, static_cast<int>(picked.size()));
    picked.resize(usable);
    // Shrink until the combined set satisfies the job's placement
    // constraint; an assignment the job cannot run on is worthless.
    while (!picked.empty() && !WouldProgress(job.spec, job.gpus, picked, *topo_))
      picked.resize(picked.size() - gang);
    if (picked.empty()) continue;
    for (GpuId g : picked)
      pool.erase(std::remove(pool.begin(), pool.end(), g), pool.end());
    out.push_back({j, std::move(picked)});
  }
  return out;
}

AgentBid Agent::PrepareBid(const AppState& app,
                           const std::vector<GpuId>& offered,
                           int max_rows) const {
  AgentBid bid;
  bid.table.app = app.id;
  const int machines = topo_->num_machines();

  auto row_vector = [&](const std::vector<GpuId>& gpus) {
    std::vector<int> v(machines, 0);
    for (GpuId g : gpus) ++v[topo_->gpu(g).machine];
    return v;
  };

  const double current_rho = CurrentRho(app);
  BidRow zero;
  zero.gpus_per_machine.assign(machines, 0);
  zero.rho = current_rho;
  bid.table.rows.push_back(zero);
  bid.row_gpus.push_back({});

  // Build the cumulative gang increments: walk jobs in priority order, each
  // taking one gang at a time from the offered pool, placed near the GPUs
  // already chosen for that job.
  struct Cut {
    std::vector<GpuId> gpus;  // cumulative picked set
    double rho;
  };
  std::vector<Cut> cuts;
  std::vector<GpuId> pool = offered;
  std::vector<GpuId> picked_all;
  std::vector<std::vector<GpuId>> hypothetical(app.jobs.size());
  for (std::size_t j = 0; j < app.jobs.size(); ++j)
    hypothetical[j] = app.jobs[j].gpus;

  const std::vector<int> order = JobPriorityOrder(app);
  bool progress = true;
  while (progress) {
    progress = false;
    for (int j : order) {
      const JobState& job = app.jobs[j];
      const int gang = job.spec.gpus_per_task;
      const int cap = std::min(job.parallelism_cap, job.spec.MaxParallelism());
      const int held = static_cast<int>(hypothetical[j].size());
      if (held + gang > cap) continue;
      if (static_cast<int>(pool.size()) < gang) continue;
      std::vector<GpuId> inc =
          PickBestPlacedNear(gang, pool, hypothetical[j], *topo_);
      if (static_cast<int>(inc.size()) < gang) continue;
      // Never bid on bundles the job's placement constraint forbids
      // (Sec. 6: their rho would be infinite).
      if (!WouldProgress(job.spec, hypothetical[j], inc, *topo_)) continue;
      for (GpuId g : inc)
        pool.erase(std::remove(pool.begin(), pool.end(), g), pool.end());
      hypothetical[j].insert(hypothetical[j].end(), inc.begin(), inc.end());
      picked_all.insert(picked_all.end(), inc.begin(), inc.end());
      cuts.push_back({picked_all, SharedRunningTime(app, hypothetical)});
      progress = true;
    }
  }

  if (cuts.empty()) return bid;

  // Keep at most max_rows cuts, evenly spaced and always including the last
  // (largest) bundle.
  std::vector<std::size_t> keep;
  if (static_cast<int>(cuts.size()) <= max_rows) {
    for (std::size_t i = 0; i < cuts.size(); ++i) keep.push_back(i);
  } else {
    for (int r = 0; r < max_rows; ++r)
      keep.push_back((r + 1) * cuts.size() / max_rows - 1);
  }

  for (std::size_t i : keep) {
    BidRow row;
    row.gpus_per_machine = row_vector(cuts[i].gpus);
    row.rho = RhoFromSharedTime(app, cuts[i].rho);
    // Monotonicity guard: extra GPUs never value worse than the current rho.
    row.rho = std::min(row.rho, current_rho);
    bid.table.rows.push_back(std::move(row));
    bid.row_gpus.push_back(cuts[i].gpus);
  }
  return bid;
}

}  // namespace themis
