// Figure 10: "Effect of contention on our scheme" — Jain's fairness index
// for Themis vs Tiresias at 1x / 2x / 4x contention (inter-arrival time
// divided by the contention factor).
//
// Paper shape: Jain's index degrades with contention for both, but much
// faster for Tiresias (LAS treats short and long apps identically and is
// placement-unaware).
#include <cstdio>
#include <iterator>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  BenchReport report("fig10_contention");
  report.Config("cluster", "sim256");
  report.Config("num_apps", 120.0);

  // The contention x policy grid as PolicySeedGrid scenarios — one grid per
  // contention point (the factor is a trace knob PolicySeedGrid does not
  // enumerate), concatenated and run on the SweepRunner thread pool in one
  // go, then archived as CSV. Results are identical to the old serial
  // RunExperiment loop: each scenario is the same self-contained config.
  const double factors[] = {1.0, 2.0, 4.0};
  std::vector<ScenarioSpec> grid;
  for (double factor : factors) {
    ExperimentConfig base = SimScaleConfig(PolicyKind::kThemis, 42, 120);
    base.trace.contention_factor = factor;
    for (ScenarioSpec& spec : PolicySeedGrid(
             base, {PolicyKind::kThemis, PolicyKind::kTiresias}, {42})) {
      char suffix[16];
      std::snprintf(suffix, sizeof suffix, "@%.0fx", factor);
      spec.name += suffix;
      grid.push_back(std::move(spec));
    }
  }
  const std::vector<ScenarioRun> runs = SweepRunner().Run(grid);

  std::printf("=== Figure 10: Jain's index vs contention ===\n");
  std::printf("%12s %10s %10s\n", "contention", "Themis", "Tiresias");
  for (std::size_t f = 0; f < std::size(factors); ++f) {
    const double themis = RequireOk(runs[2 * f]).jains_index;
    const double tiresias = RequireOk(runs[2 * f + 1]).jains_index;
    std::printf("%11.0fX %10.3f %10.3f\n", factors[f], themis, tiresias);
    char key[48];
    std::snprintf(key, sizeof key, "jains_index.Themis@%.0fx", factors[f]);
    report.Metric(key, themis);
    std::snprintf(key, sizeof key, "jains_index.Tiresias@%.0fx", factors[f]);
    report.Metric(key, tiresias);
  }
  std::printf("\npaper reference: Tiresias degrades faster with rising"
              " contention\n");
  const bool csv_ok = WriteBenchCsv("fig10_contention", runs);
  return report.Write() && csv_ok ? 0 : 1;
}
