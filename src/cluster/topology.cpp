#include "cluster/topology.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace themis {

const std::vector<GpuGeneration>& KnownGpuGenerations() {
  // Relative training throughput against the K80 baseline, rounded to the
  // coarse ratios the scenario axis needs (not a precise device model).
  static const std::vector<GpuGeneration> kTable = {
      {"K80", 1.0}, {"M60", 1.3}, {"P100", 2.0}, {"V100", 3.0}, {"A100", 6.0},
  };
  return kTable;
}

const GpuGeneration& GpuGenerationByName(const std::string& name) {
  for (const GpuGeneration& gen : KnownGpuGenerations())
    if (gen.name == name) return gen;
  std::string known;
  for (const GpuGeneration& gen : KnownGpuGenerations()) {
    if (!known.empty()) known += ", ";
    known += gen.name;
  }
  throw std::invalid_argument("unknown GPU generation \"" + name +
                              "\" (known generations: " + known + ")");
}

std::vector<GenerationShare> ParseGenerationMix(const std::string& spec) {
  std::vector<GenerationShare> mix;
  double total = 0.0;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string entry = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    const std::size_t colon = entry.find(':');
    if (entry.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size())
      throw std::invalid_argument(
          "generation mix entry \"" + entry +
          "\" is not NAME:FRACTION (e.g. K80:0.25,V100:0.5,A100:0.25)");
    GenerationShare share;
    share.generation = GpuGenerationByName(entry.substr(0, colon));
    std::size_t parsed = 0;
    const std::string frac = entry.substr(colon + 1);
    try {
      share.fraction = std::stod(frac, &parsed);
    } catch (const std::exception&) {
      parsed = 0;
    }
    if (parsed != frac.size() || !(share.fraction > 0.0) ||
        share.fraction > 1.0)
      throw std::invalid_argument("generation mix fraction \"" + frac +
                                  "\" must be a number in (0, 1]");
    total += share.fraction;
    mix.push_back(std::move(share));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (mix.empty())
    throw std::invalid_argument("generation mix is empty");
  if (std::abs(total - 1.0) > 1e-6)
    throw std::invalid_argument(
        "generation mix fractions sum to " + std::to_string(total) +
        ", expected 1");
  return mix;
}

void ApplyGenerationMix(ClusterSpec& spec,
                        const std::vector<GenerationShare>& mix) {
  if (mix.empty())
    throw std::invalid_argument("ApplyGenerationMix: empty mix");
  const int total = spec.TotalMachines();
  // Cumulative-fraction boundaries; the last share absorbs rounding so every
  // machine is assigned exactly once.
  std::vector<int> boundary(mix.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    cum += mix[i].fraction;
    boundary[i] = i + 1 == mix.size()
                      ? total
                      : static_cast<int>(std::lround(cum * total));
    // A share that rounds to zero machines would silently vanish from the
    // cluster the caller asked for — fail loudly instead (the mix needs a
    // bigger cluster or coarser fractions).
    if (boundary[i] <= (i == 0 ? 0 : boundary[i - 1]))
      throw std::invalid_argument(
          "generation mix: share " + mix[i].generation.name + ":" +
          std::to_string(mix[i].fraction) + " rounds to zero of the " +
          std::to_string(total) + " machines");
  }
  int index = 0;
  std::size_t share = 0;
  for (RackSpec& rack : spec.racks) {
    for (MachineSpec& machine : rack.machines) {
      while (share + 1 < mix.size() && index >= boundary[share]) ++share;
      machine.generation = mix[share].generation;
      ++index;
    }
  }
}

const char* ToString(LocalityLevel level) {
  switch (level) {
    case LocalityLevel::kSlot: return "slot";
    case LocalityLevel::kMachine: return "machine";
    case LocalityLevel::kRack: return "rack";
    case LocalityLevel::kCrossRack: return "cross-rack";
  }
  return "?";
}

int ClusterSpec::TotalGpus() const {
  int total = 0;
  for (const auto& rack : racks)
    for (const auto& m : rack.machines) total += m.num_gpus;
  return total;
}

int ClusterSpec::TotalMachines() const {
  int total = 0;
  for (const auto& rack : racks) total += static_cast<int>(rack.machines.size());
  return total;
}

double ClusterSpec::TotalEffectiveGpus() const {
  double total = 0.0;
  for (const auto& rack : racks)
    for (const auto& m : rack.machines)
      total += static_cast<double>(m.num_gpus) * m.generation.speed;
  return total;
}

ClusterSpec ClusterSpec::Simulation256() {
  // 4 racks; each rack hosts 12x 4-GPU machines (NVLink pairs), 6x 2-GPU
  // machines and 4x 1-GPU machines: 4 * (48 + 12 + 4) = 256 GPUs.
  ClusterSpec spec;
  for (int r = 0; r < 4; ++r) {
    RackSpec rack;
    for (int i = 0; i < 12; ++i) rack.machines.push_back({4, 2});
    for (int i = 0; i < 6; ++i) rack.machines.push_back({2, 2});
    for (int i = 0; i < 4; ++i) rack.machines.push_back({1, 1});
    spec.racks.push_back(std::move(rack));
  }
  return spec;
}

ClusterSpec ClusterSpec::Simulation256Mixed() {
  // 25/50/25 K80 / V100 / A100 by rack: rack 0 K80, racks 1-2 V100,
  // rack 3 A100 — the generation-mix axis over the Sec. 8.1 shape.
  ClusterSpec spec = Simulation256();
  const GpuGeneration* by_rack[] = {
      &GpuGenerationByName("K80"), &GpuGenerationByName("V100"),
      &GpuGenerationByName("V100"), &GpuGenerationByName("A100")};
  for (std::size_t r = 0; r < spec.racks.size(); ++r)
    for (MachineSpec& m : spec.racks[r].machines)
      m.generation = *by_rack[r % 4];
  return spec;
}

ClusterSpec ClusterSpec::Testbed50() {
  // 50 GPUs across 20 instances with 1/2/4 GPUs each, mirroring the paper's
  // NC/NV-series Azure mixture, spread over two racks:
  //   rack A: 7x 4-GPU + 4x 2-GPU + 2x 1-GPU = 38 GPUs, 13 instances
  //   rack B: 2x 4-GPU + 1x 2-GPU + 2x 1-GPU = 12 GPUs,  5 instances
  // plus 2 more 1-GPU boxes on rack B -> 50 GPUs... keep arithmetic explicit:
  //   rack A: 7*4 + 4*2 + 2*1 = 38; rack B: 2*4 + 1*2 + 2*1 = 12; total 50.
  ClusterSpec spec;
  RackSpec a;
  for (int i = 0; i < 7; ++i) a.machines.push_back({4, 2});
  for (int i = 0; i < 4; ++i) a.machines.push_back({2, 2});
  for (int i = 0; i < 2; ++i) a.machines.push_back({1, 1});
  RackSpec b;
  for (int i = 0; i < 2; ++i) b.machines.push_back({4, 2});
  for (int i = 0; i < 1; ++i) b.machines.push_back({2, 2});
  for (int i = 0; i < 2; ++i) b.machines.push_back({1, 1});
  spec.racks.push_back(std::move(a));
  spec.racks.push_back(std::move(b));
  return spec;
}

ClusterSpec ClusterSpec::Testbed50Mixed() {
  // The paper's actual Azure instance generations: NC-series (the 4-GPU
  // boxes) carry K80s, NV-series (the 2-/1-GPU boxes) carry M60s.
  ClusterSpec spec = Testbed50();
  const GpuGeneration& k80 = GpuGenerationByName("K80");
  const GpuGeneration& m60 = GpuGenerationByName("M60");
  for (RackSpec& rack : spec.racks)
    for (MachineSpec& m : rack.machines)
      m.generation = m.num_gpus >= 4 ? k80 : m60;
  return spec;
}

ClusterSpec ClusterSpec::Uniform(int racks, int machines_per_rack,
                                 int gpus_per_machine, int gpus_per_slot) {
  ClusterSpec spec;
  for (int r = 0; r < racks; ++r) {
    RackSpec rack;
    for (int m = 0; m < machines_per_rack; ++m)
      rack.machines.push_back({gpus_per_machine, gpus_per_slot});
    spec.racks.push_back(std::move(rack));
  }
  return spec;
}

Topology::Topology(ClusterSpec spec) : spec_(std::move(spec)) {
  GpuId next_gpu = 0;
  MachineId next_machine = 0;
  for (RackId r = 0; r < spec_.racks.size(); ++r) {
    for (const MachineSpec& m : spec_.racks[r].machines) {
      if (m.num_gpus <= 0)
        throw std::invalid_argument("machine with non-positive GPU count");
      if (m.gpus_per_slot <= 0 || m.num_gpus % m.gpus_per_slot != 0)
        throw std::invalid_argument("num_gpus must be a multiple of gpus_per_slot");
      if (!(m.generation.speed > 0.0) || !std::isfinite(m.generation.speed))
        throw std::invalid_argument("GPU generation \"" + m.generation.name +
                                    "\" has non-positive speed");
      machine_racks_.push_back(r);
      machine_gpu_counts_.push_back(m.num_gpus);
      machine_generations_.push_back(m.generation);
      machine_speeds_.push_back(m.generation.speed);
      std::vector<GpuId> ids;
      for (int g = 0; g < m.num_gpus; ++g) {
        GpuCoord coord;
        coord.gpu = next_gpu;
        coord.machine = next_machine;
        coord.rack = r;
        coord.slot = g / m.gpus_per_slot;
        coord.index_in_slot = g % m.gpus_per_slot;
        gpus_.push_back(coord);
        ids.push_back(next_gpu);
        ++next_gpu;
      }
      machine_gpu_ids_.push_back(std::move(ids));
      ++next_machine;
    }
  }

  uniform_speed_ = true;
  max_speed_ = machine_speeds_.empty() ? 1.0 : machine_speeds_.front();
  for (double s : machine_speeds_) {
    if (s != machine_speeds_.front()) uniform_speed_ = false;
    max_speed_ = std::max(max_speed_, s);
  }
  machines_by_speed_.resize(machine_speeds_.size());
  std::iota(machines_by_speed_.begin(), machines_by_speed_.end(), 0);
  std::stable_sort(machines_by_speed_.begin(), machines_by_speed_.end(),
                   [this](MachineId a, MachineId b) {
                     return machine_speeds_[a] > machine_speeds_[b];
                   });
}

double Topology::SpeedSum(const std::vector<GpuId>& gpus) const {
  if (uniform_speed_)
    return static_cast<double>(gpus.size()) *
           (machine_speeds_.empty() ? 1.0 : machine_speeds_.front());
  double sum = 0.0;
  for (GpuId g : gpus) sum += gpu_speed(g);
  return sum;
}

double Topology::MinSpeed(const std::vector<GpuId>& gpus) const {
  if (gpus.empty()) return 1.0;
  if (uniform_speed_) return machine_speeds_.empty() ? 1.0 : machine_speeds_.front();
  double min = gpu_speed(gpus.front());
  for (GpuId g : gpus) min = std::min(min, gpu_speed(g));
  return min;
}

LocalityLevel Topology::SpanLevel(const std::vector<GpuId>& gpus) const {
  if (gpus.size() <= 1) return LocalityLevel::kSlot;
  const GpuCoord& first = gpu(gpus.front());
  bool same_slot = true;
  bool same_machine = true;
  bool same_rack = true;
  for (GpuId id : gpus) {
    const GpuCoord& c = gpu(id);
    if (c.machine != first.machine) same_machine = false;
    if (c.machine != first.machine || c.slot != first.slot) same_slot = false;
    if (c.rack != first.rack) same_rack = false;
  }
  if (same_slot) return LocalityLevel::kSlot;
  if (same_machine) return LocalityLevel::kMachine;
  if (same_rack) return LocalityLevel::kRack;
  return LocalityLevel::kCrossRack;
}

std::string Topology::Describe() const {
  std::ostringstream os;
  os << num_racks() << " racks, " << num_machines() << " machines, "
     << num_gpus() << " GPUs";
  if (!uniform_speed_)
    os << " (" << spec_.TotalEffectiveGpus() << " effective, mixed"
       << " generations)";
  return os.str();
}

}  // namespace themis
