// Example: head-to-head scheduler comparison on one workload.
//
// Replays the same synthetic enterprise trace under THEMIS and the three
// baselines the paper evaluates (Gandiva, SLAQ, Tiresias) and prints the
// Sec. 8.1 metrics side by side — a miniature of the paper's Figure 5/6
// macrobenchmark. The four simulations are independent, so they run as one
// parallel scenario sweep; the table still prints in policy order.
#include <cstdio>
#include <exception>

#include "sim/experiment.h"

int main() {
  using namespace themis;

  std::printf("Scheduler comparison on a 256-GPU cluster, 80 apps, 4x"
              " contention\n\n");
  std::printf("%-10s %10s %8s %12s %14s %12s\n", "scheme", "max_rho", "jain",
              "avg_ACT", "gpu_time", "mean_place");

  std::vector<ScenarioSpec> specs;
  for (PolicyKind kind : {PolicyKind::kThemis, PolicyKind::kGandiva,
                          PolicyKind::kSlaq, PolicyKind::kTiresias}) {
    ScenarioSpec spec;
    spec.name = ToString(kind);
    spec.config = SimScaleConfig(kind, /*seed=*/2024, /*apps=*/80);
    spec.config.trace.contention_factor = 4.0;
    specs.push_back(std::move(spec));
  }

  try {
    for (const ScenarioRun& run : SweepRunner().Run(specs)) {
      const ExperimentResult& r = run.ResultOrThrow();
      double place = 0.0;
      for (double s : r.placement_scores) place += s;
      place /= static_cast<double>(r.placement_scores.size());
      std::printf("%-10s %10.2f %8.3f %12.1f %14.0f %12.3f\n",
                  r.policy_name.c_str(), r.max_fairness, r.jains_index,
                  r.avg_completion_time, r.gpu_time, place);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::printf("\nLower max_rho / ACT / gpu_time are better; higher jain /"
              " placement are better.\n");
  return 0;
}
