// Example: a hyper-parameter exploration app on a shared cluster.
//
// One researcher launches a 16-job HyperBand sweep of a VGG-like model while
// three other single-job apps share the cluster. The example shows the
// two-level architecture at work: HyperBand kills the bottom half of jobs at
// every rung (freeing GPUs for everyone), while the THEMIS ARBITER keeps the
// cross-app allocation finish-time fair.
#include <cmath>
#include <cstdio>

#include "sim/experiment.h"

namespace {

themis::AppSpec SweepApp(int n_jobs) {
  using namespace themis;
  AppSpec app;
  app.name = "vgg-sweep";
  app.arrival = 0.0;
  app.tuner = TunerKind::kHyperBand;
  app.target_loss = 0.1;
  Rng rng(2024);
  for (int j = 0; j < n_jobs; ++j) {
    JobSpec job;
    job.num_tasks = 1;
    job.gpus_per_task = 4;
    job.model = ModelByName("VGG16");
    // Hyper-parameter quality varies: iterations-to-target spread ~4x.
    job.total_iterations = 300.0 * rng.Uniform(1.0, 4.0);
    job.total_work = job.total_iterations / 10.0 * job.MaxParallelism();
    const double decay = rng.Uniform(0.4, 1.0);
    job.loss = LossCurve(0.1 * std::pow(job.total_iterations + 1.0, decay),
                         decay, 0.0);
    app.jobs.push_back(job);
  }
  return app;
}

themis::AppSpec SoloApp(const char* name, themis::Time arrival, double work) {
  using namespace themis;
  AppSpec app;
  app.name = name;
  app.arrival = arrival;
  app.tuner = TunerKind::kNone;
  app.target_loss = 0.1;
  JobSpec job;
  job.num_tasks = 1;
  job.gpus_per_task = 4;
  job.total_work = work;
  job.total_iterations = 500.0;
  job.model = ModelByName("ResNet50");
  job.loss = LossCurve(0.1 * std::pow(501.0, 0.6), 0.6, 0.0);
  app.jobs = {job};
  return app;
}

}  // namespace

int main() {
  using namespace themis;

  std::vector<AppSpec> apps;
  apps.push_back(SweepApp(16));
  apps.push_back(SoloApp("resnet-a", 5.0, 120.0));
  apps.push_back(SoloApp("resnet-b", 15.0, 240.0));
  apps.push_back(SoloApp("resnet-c", 30.0, 80.0));

  ExperimentConfig config;
  config.cluster = ClusterSpec::Uniform(2, 4, 4, 2);  // 32 GPUs
  config.policy = PolicyKind::kThemis;
  config.sim.lease_minutes = 10.0;

  const ExperimentResult r = RunExperimentWithApps(config, apps);

  std::printf("Hyper-parameter tuning on a shared 32-GPU cluster\n");
  std::printf("%-12s %10s %14s\n", "app", "rho", "ACT (min)");
  const char* names[] = {"vgg-sweep", "resnet-a", "resnet-b", "resnet-c"};
  for (std::size_t i = 0; i < r.rhos.size(); ++i)
    std::printf("%-12s %10.2f %14.1f\n", names[i], r.rhos[i],
                r.completion_times[i]);
  std::printf("\nmax fairness %.2f | Jain's %.3f | GPU time %.0f GPU-min\n",
              r.max_fairness, r.jains_index, r.gpu_time);
  std::printf("HyperBand terminated poor hyper-parameter jobs along the way;\n"
              "the sweep finished when its best job hit the target loss.\n");
  return r.unfinished_apps == 0 ? 0 : 1;
}
