// The process-wide threading substrate: one persistent pool, spawned on
// first use and reused forever, shared by every parallel phase in the
// process — the ARBITER round's bid preparation and rho probes
// (core/themis_policy.cpp), scenario sweeps (SweepRunner) and federated
// shard simulation (ShardedArbiter) via RunParallel (sim/experiment.h).
// Rounds are millisecond-scale, so per-call thread spawn would eat the
// win; workers here are spawned once, parked on a condition variable
// between submissions, and grown on demand (never shrunk).
//
// Determinism contract: ParallelFor(n, fn) runs fn(i) exactly once for
// every i in [0, n), with no ordering or thread-assignment guarantee.
// Callers that write only into per-index slots (and whose fn touches no
// shared mutable state) therefore get results bit-identical to the serial
// loop regardless of thread count — the property every user in this
// codebase relies on and tests pin.
//
// The calling thread always participates in the work: helper tasks are
// queued for pool workers, but if every worker is busy (or the pool is
// empty) the caller drains all chunks itself, so a ParallelFor issued from
// inside a pool task (e.g. an auction round inside a SweepRunner scenario)
// degrades to serial instead of deadlocking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace themis {

class ThreadPool {
 public:
  /// Spawn `num_workers` parked worker threads (0 = none yet; workers are
  /// added lazily by EnsureWorkers / ParallelFor as callers ask for them).
  explicit ThreadPool(int num_workers = 0);
  /// Joins every worker. Outstanding ParallelFor calls must have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide shared pool. Constructed empty on first use; grows to
  /// the largest thread count any caller requests.
  static ThreadPool& Global();

  int num_workers() const;

  /// Grow the pool to at least `n` workers (never shrinks; capped at
  /// kMaxWorkers). Safe to call concurrently.
  void EnsureWorkers(int n);

  /// Run fn(i) exactly once for every i in [0, n), on up to `max_threads`
  /// concurrent executors: the calling thread plus at most max_threads - 1
  /// pool workers. Work is claimed dynamically in contiguous chunks of
  /// `grain` indices (0 = pick automatically). Blocks until every index has
  /// run. max_threads <= 1 (or n <= 1) runs the plain serial loop inline,
  /// in ascending order, touching no pool state.
  ///
  /// Exceptions: the first exception thrown by fn is rethrown on the
  /// calling thread after in-flight chunks drain; chunks not yet claimed
  /// when it was thrown are skipped.
  void ParallelFor(std::size_t n, int max_threads,
                   const std::function<void(std::size_t)>& fn,
                   std::size_t grain = 0);

  /// Hard ceiling on pool size, far above any sane request; EnsureWorkers
  /// clamps silently.
  static constexpr int kMaxWorkers = 256;

 private:
  struct Job;
  void WorkerLoop();
  /// Claim and run chunks of `job` until none remain (or an exception
  /// marks the job failed). Used by workers and the submitting caller.
  static void Drain(Job& job);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stop_ = false;
};

/// Convenience over the global pool: serial inline loop for
/// max_threads <= 1, ThreadPool::Global().ParallelFor otherwise.
void ParallelFor(std::size_t n, int max_threads,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t grain = 0);

}  // namespace themis
