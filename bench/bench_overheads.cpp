// Sec. 8.3.2 "System Overheads" — microbenchmarks of the two scheduler-side
// costs the paper profiles:
//   - AGENT bid preparation: 29 ms median / 334 ms p95 in the paper (the
//     tail appears when many GPUs are up for auction)
//   - ARBITER partial allocation (Gurobi in the paper): 354 ms median /
//     1398 ms p95, growing with offered GPUs x bidding apps.
// Our from-scratch solver replaces Gurobi, so absolute numbers differ; the
// relevant reproduction is the scaling trend with offer size and bidder
// count, which google-benchmark's arguments sweep below.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_common.h"
#include "core/agent.h"
#include "core/rho_index.h"
#include "core/themis_policy.h"
#include "sim/experiment.h"

namespace themis {
namespace {

JobSpec BenchJobSpec(double work, int tasks, int gang) {
  JobSpec spec;
  spec.total_work = work;
  spec.total_iterations = 1000.0;
  spec.num_tasks = tasks;
  spec.gpus_per_task = gang;
  spec.model = ModelByName("VGG16");
  spec.loss = LossCurve(0.1 * std::pow(1001.0, 0.6), 0.6, 0.0);
  return spec;
}

std::unique_ptr<AppState> BenchApp(AppId id, int jobs, int tasks_per_job) {
  auto app = std::make_unique<AppState>();
  app->id = id;
  app->spec.arrival = 0.0;
  app->spec.target_loss = 0.1;
  app->arrived = true;
  for (int j = 0; j < jobs; ++j) {
    app->spec.jobs.push_back(BenchJobSpec(60.0 + 10.0 * j, tasks_per_job, 4));
    JobState job;
    job.id = static_cast<JobId>(j);
    job.spec = app->spec.jobs.back();
    job.parallelism_cap = job.spec.MaxParallelism();
    app->jobs.push_back(std::move(job));
  }
  app->ideal_time = std::max(1e-9, app->spec.IdealRunningTime());
  return app;
}

/// Bid preparation cost vs the number of GPUs up for auction.
void BM_AgentPrepareBid(benchmark::State& state) {
  const int offered_gpus = static_cast<int>(state.range(0));
  Cluster cluster(ClusterSpec::Simulation256());
  WorkEstimator est({});
  auto app = BenchApp(0, /*jobs=*/16, /*tasks_per_job=*/2);
  Agent agent(&cluster.topology(), &est, 10.0);
  std::vector<GpuId> offered;
  for (GpuId g = 0; g < static_cast<GpuId>(offered_gpus); ++g)
    offered.push_back(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.PrepareBid(*app, offered, 6));
  }
}
BENCHMARK(BM_AgentPrepareBid)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

/// Partial-allocation solve cost vs the number of bidding apps.
void BM_PartialAllocation(benchmark::State& state) {
  const int n_apps = static_cast<int>(state.range(0));
  Cluster cluster(ClusterSpec::Simulation256());
  WorkEstimator est({});
  std::vector<std::unique_ptr<AppState>> apps;
  std::vector<BidTable> tables;
  Agent agent(&cluster.topology(), &est, 10.0);
  std::vector<GpuId> offered;
  for (GpuId g = 0; g < 128; ++g) offered.push_back(g);
  std::vector<int> offered_vec(cluster.num_machines(), 0);
  for (GpuId g : offered) ++offered_vec[cluster.topology().gpu(g).machine];
  for (int i = 0; i < n_apps; ++i) {
    apps.push_back(BenchApp(static_cast<AppId>(i), 8, 2));
    tables.push_back(agent.PrepareBid(*apps.back(), offered, 6).table);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartialAllocation(tables, offered_vec));
  }
}
BENCHMARK(BM_PartialAllocation)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

/// One full ARBITER scheduling pass (probe + offer + auction + leftovers).
void BM_ThemisSchedulingPass(benchmark::State& state) {
  const int n_apps = static_cast<int>(state.range(0));
  WorkEstimator est({});
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    Cluster cluster(ClusterSpec::Simulation256());
    std::vector<std::unique_ptr<AppState>> apps;
    AppList list;
    for (int i = 0; i < n_apps; ++i) {
      apps.push_back(BenchApp(static_cast<AppId>(i), 8, 1));
      list.push_back(apps.back().get());
    }
    SchedulerContext ctx(0.0, &cluster, &est, 20.0, &list, &rng);
    ThemisPolicy policy;
    state.ResumeTiming();
    policy.Schedule(cluster.FreeGpus(), ctx);
  }
}
BENCHMARK(BM_ThemisSchedulingPass)->Arg(8)->Arg(16)->Arg(32);

/// End-to-end simulated macrobenchmark throughput (events/sec proxy).
void BM_FullSimulation(benchmark::State& state) {
  for (auto _ : state) {
    auto cfg = SimScaleConfig(PolicyKind::kThemis, 42, 40);
    benchmark::DoNotOptimize(RunExperiment(cfg));
  }
}
BENCHMARK(BM_FullSimulation)->Unit(benchmark::kMillisecond);

/// Indexed-cluster churn at large topologies: one scheduler-pass-shaped
/// round (bench::ClusterPassChurnRound — reclaim expired, rebuild free
/// views, probe every app's holdings, re-grant; the same round
/// bench_fig02_placement_throughput sweeps) on a cluster of `machines` x 8
/// GPUs. The scan-based cluster was O(gpus) per query; the indexed one is
/// O(result + log gpus).
void BM_ClusterPassChurn(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  Cluster cluster(bench::ChurnSweepTopology(machines, 8));
  const int apps = cluster.num_machines();
  bench::ChurnPrefill(cluster, apps);
  Time now = 20.0;
  for (auto _ : state) {
    now += 0.4;
    benchmark::DoNotOptimize(bench::ClusterPassChurnRound(cluster, apps, now));
  }
}
BENCHMARK(BM_ClusterPassChurn)->Arg(64)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// BM_FilterProbe: ARBITER filter+probe cost vs live-app population, one
// lease expiry per round — the daemon regime where a huge multi-tenant queue
// waits on a small cluster and each round reoffers a sliver. The recompute
// path probes and sorts every live app per round (O(n log n)); the indexed
// path (core/rho_index.h) re-probes only the ~cluster-capacity holders and
// merges them with the maintained gangless class, so rounds scale with the
// auction instead of the population. Both paths are driven through the same
// mutation sequence and their grant streams are fingerprint-checked for the
// bit-identicality the index contract promises.
// ---------------------------------------------------------------------------

std::unique_ptr<AppState> FilterProbeApp(AppId id) {
  // Two single-GPU-gang jobs per app so the one offered GPU is always
  // absorbed by the auction (leftovers then early-return on an empty pool
  // instead of walking the population in both paths).
  auto app = std::make_unique<AppState>();
  app->id = id;
  app->spec.arrival = 0.0;
  app->spec.target_loss = 0.1;
  app->arrived = true;
  for (int j = 0; j < 2; ++j) {
    app->spec.jobs.push_back(BenchJobSpec(60.0 + 10.0 * j, 2, 1));
    JobState job;
    job.id = static_cast<JobId>(j);
    job.spec = app->spec.jobs.back();
    job.parallelism_cap = job.spec.MaxParallelism();
    app->jobs.push_back(std::move(job));
  }
  app->ideal_time = std::max(1e-9, app->spec.IdealRunningTime());
  return app;
}

struct FilterProbeWorld {
  Cluster cluster;
  WorkEstimator est;
  Rng rng;
  std::vector<std::unique_ptr<AppState>> apps;
  AppList list;
  RhoIndex index;
  bool use_index;
  int victim_cursor = 0;

  FilterProbeWorld(int num_apps, bool indexed)
      : cluster(ClusterSpec::Uniform(2, 16, 4, 4)),  // 128 GPUs
        est({}),
        rng(42),
        use_index(indexed) {
    for (AppId id = 0; id < static_cast<AppId>(num_apps); ++id) {
      apps.push_back(FilterProbeApp(id));
      list.push_back(apps.back().get());
    }
    // Saturate the cluster: one single-GPU gang per low-id app. Every later
    // round frees exactly one lease and the auction re-grants it.
    for (GpuId g = 0; g < static_cast<GpuId>(cluster.num_gpus()); ++g) {
      cluster.Allocate(g, static_cast<AppId>(g), 0, 1.0e9);
      apps[g]->jobs[0].gpus = {g};
    }
    if (use_index)
      for (auto& app : apps) index.Update(app.get());
  }

  /// One single-expiry round: the rotating victim's lease lapses, the round
  /// reoffers that one GPU, the worst-off app wins it back. Returns the
  /// round's grant stream folded into `fp` (paths must agree bit-for-bit).
  std::uint64_t Round(Time now, ThemisPolicy& policy, std::uint64_t fp,
                      int* granted_gpus) {
    AppState* victim = apps[victim_cursor].get();
    victim_cursor = (victim_cursor + 1) % static_cast<int>(cluster.num_gpus());
    JobState& vjob = victim->jobs[0];
    const GpuId g = vjob.gpus[0];
    cluster.Release(g);
    vjob.gpus.clear();
    if (use_index) index.Update(victim);

    SchedulerContext ctx(now, &cluster, &est, /*lease=*/1.0e9, &list, &rng);
    if (use_index) ctx.set_rho_index(&index);
    const GrantSet grants = policy.Schedule(cluster.FreeGpus(), ctx);
    for (const Grant& grant : grants.grants) {
      for (GpuId gg : grant.gpus) {
        fp = fp * 1000003ull + static_cast<std::uint64_t>(grant.app) * 131ull +
             static_cast<std::uint64_t>(grant.job) * 31ull +
             static_cast<std::uint64_t>(gg);
        ++*granted_gpus;
      }
    }
    if (use_index)
      for (const auto& [app_id, job_id] : ctx.granted_jobs()) {
        (void)job_id;
        index.Update(apps[app_id].get());
      }
    return fp;
  }
};

struct FilterProbeRun {
  double rounds_per_sec = 0.0;
  std::uint64_t fingerprint = 0;
  int granted_gpus = 0;
};

FilterProbeRun MeasureFilterProbe(int num_apps, bool indexed, int rounds) {
  FilterProbeWorld world(num_apps, indexed);
  ThemisConfig cfg;
  // Daemon regime: offer each sliver to the single worst-off app, so round
  // cost is the filter itself, not the auction.
  cfg.fairness_knob = 1.0;
  cfg.incremental_filter = indexed;
  ThemisPolicy policy(cfg);
  FilterProbeRun run;
  Time now = 1.0;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    run.fingerprint =
        world.Round(now, policy, run.fingerprint, &run.granted_gpus);
    now += 1.0;
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  run.rounds_per_sec = static_cast<double>(rounds) / elapsed.count();
  return run;
}

int RunFilterProbeSweep() {
  std::vector<int> populations{1000, 5000, 10000, 20000};
  if (const char* only = std::getenv("THEMIS_BENCH_FILTER_APPS");
      only && *only)
    populations = {std::atoi(only)};

  bench::BenchReport report("overheads");
  report.Config("cluster_gpus", 128.0);
  report.Config("rounds_shape", "single-lease-expiry");
  std::printf("\nBM_FilterProbe: one-expiry rounds/sec vs live apps\n");
  std::printf("%8s %12s %12s %9s %10s\n", "apps", "recompute/s", "indexed/s",
              "speedup", "identical");
  bool ok = true;
  for (const int apps : populations) {
    const int rounds = std::max(64, 1500000 / apps);
    const FilterProbeRun recompute = MeasureFilterProbe(apps, false, rounds);
    const FilterProbeRun indexed = MeasureFilterProbe(apps, true, rounds);
    const bool identical =
        recompute.fingerprint == indexed.fingerprint &&
        recompute.granted_gpus == rounds && indexed.granted_gpus == rounds;
    const double speedup =
        indexed.rounds_per_sec / std::max(1e-9, recompute.rounds_per_sec);
    std::printf("%8d %12.0f %12.0f %8.1fx %10s\n", apps,
                recompute.rounds_per_sec, indexed.rounds_per_sec, speedup,
                identical ? "yes" : "NO");
    std::string tag = "@";
    tag += std::to_string(apps);
    tag += "apps";
    report.Metric("filter_rounds_per_sec_recompute" + tag,
                  recompute.rounds_per_sec);
    report.Metric("filter_rounds_per_sec_indexed" + tag,
                  indexed.rounds_per_sec);
    report.Metric("filter_speedup" + tag, speedup);
    report.Metric("filter_identical" + tag, identical ? 1.0 : 0.0);
    ok = ok && identical;
  }
  if (!report.Write()) ok = false;
  if (!ok) std::fprintf(stderr, "bench: filter-probe check FAILED\n");
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// BM_ParallelRound: full-round throughput on a 4096-GPU cluster vs
// round_threads — the ThemisConfig::auction_threads fan-out of bid
// preparation and the rho probe over the shared pool (common/parallel.h).
// The world is a steady-state round: one single-job app per machine, each
// already holding one gang there, and the other half of the cluster
// (2048 GPUs) is up for auction. The holdings anchor each AGENT's bid on
// its own machine, so the 512 bid tables are disjoint — and because every
// app has exactly one job, each extra gang strictly improves the app's rho
// (SharedRunningTime is a min over jobs, so multi-job apps value gangs
// beyond their best job at zero). The PF optimum therefore grants every
// app its full row, the pool empties, and the leftover stage
// early-returns — round cost is then dominated by the embarrassingly
// parallel bid-prep phase the thread budget actually touches. Hidden
// payments are ablated (the PaConfig knob) and the branch-and-bound node
// budget kept small so the serial solver stage stays a sliver. BidTable
// allocations per round at this scale: before the pointer-borrowing
// PartialAllocation overloads, the round deep-copied all 512 tables into
// the solver (and the hidden-payments pass another 511 per bidder, ~262k
// copies when enabled); now the solver borrows them in place — 0. Grant
// streams are fingerprint-checked across thread counts for the
// bit-identicality the pool contract promises; the process exits non-zero
// only on an identity failure (a correctness bug), never on a throughput
// number — wall-clock assertions live in CI, where the core count is known.
// ---------------------------------------------------------------------------

struct ParallelRoundRun {
  double rounds_per_sec = 0.0;
  std::uint64_t fingerprint = 0;
  int granted_gpus = 0;
};

ParallelRoundRun MeasureParallelRound(int machines, int apps_count,
                                      int round_threads, int rounds) {
  ThemisConfig cfg;
  cfg.fairness_knob = 0.0;  // every hungry app bids
  cfg.auction_threads = round_threads;
  cfg.pa.hidden_payments = false;
  cfg.pa.max_nodes = 4000;

  const int jobs_per_app = machines / apps_count;  // one job per owned machine

  ParallelRoundRun run;
  WorkEstimator est({});
  double total_s = 0.0;
  for (int r = 0; r < rounds; ++r) {
    // Fresh world per round (grants mutate app and cluster state), so every
    // round prices the identical offer and the per-round grant streams can
    // be folded into one cross-thread-count fingerprint. Setup is untimed.
    Cluster cluster(ClusterSpec::Uniform(/*racks=*/8, /*machines=*/machines / 8,
                                         /*gpus=*/8, /*slot=*/4));
    Rng rng(99);
    std::vector<std::unique_ptr<AppState>> apps;
    AppList list;
    for (int i = 0; i < apps_count; ++i) {
      apps.push_back(BenchApp(static_cast<AppId>(i), jobs_per_app,
                              /*tasks_per_job=*/2));
      list.push_back(apps.back().get());
    }
    // Steady state: job j of app a holds one 4-GPU gang on machine
    // a * jobs_per_app + j, leaving that machine's other 4 GPUs free. Each
    // job can absorb exactly one more gang (cap 8), so total unmet demand
    // equals the offered half of the cluster and the anchored bids
    // partition it machine by machine.
    for (int a = 0; a < apps_count; ++a)
      for (int j = 0; j < jobs_per_app; ++j) {
        const int m = a * jobs_per_app + j;
        std::vector<GpuId> gang;
        for (int k = 0; k < 4; ++k) gang.push_back(static_cast<GpuId>(8 * m + k));
        for (GpuId g : gang)
          cluster.Allocate(g, static_cast<AppId>(a), static_cast<JobId>(j),
                           /*expiry=*/1.0e9);
        apps[a]->jobs[j].gpus = gang;
      }
    SchedulerContext ctx(0.0, &cluster, &est, 20.0, &list, &rng);
    ThemisPolicy policy(cfg);

    const auto start = std::chrono::steady_clock::now();
    const GrantSet grants = policy.Schedule(cluster.FreeGpus(), ctx);
    total_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    for (const Grant& grant : grants.grants)
      for (GpuId g : grant.gpus) {
        run.fingerprint = run.fingerprint * 1000003ull +
                          static_cast<std::uint64_t>(grant.app) * 131ull +
                          static_cast<std::uint64_t>(grant.job) * 31ull +
                          static_cast<std::uint64_t>(g);
        ++run.granted_gpus;
      }
  }
  run.rounds_per_sec = static_cast<double>(rounds) / std::max(1e-9, total_s);
  return run;
}

int RunParallelRoundSweep() {
  int machines = 512;  // x8 GPUs = the 4096-GPU cluster
  if (const char* env = std::getenv("THEMIS_BENCH_MACHINES"); env && *env)
    machines = std::max(8, std::atoi(env));
  // One single-job app anchored per machine: 512 apps x 1 job x 2 tasks x
  // 4 GPUs of unmet demand = the 2048-GPU offer, valued gang by gang.
  const int apps = machines;
  int rounds = 6;
  if (const char* env = std::getenv("THEMIS_BENCH_ROUNDS"); env && *env)
    rounds = std::max(1, std::atoi(env));

  bench::BenchReport report("parallel_rounds");
  report.Config("cluster_gpus", static_cast<double>(machines) * 8.0);
  report.Config("bidding_apps", static_cast<double>(apps));
  report.Config("rounds", static_cast<double>(rounds));

  std::printf("\nBM_ParallelRound: %d-GPU rounds/sec vs round_threads\n",
              machines * 8);
  std::printf("%8s %12s %9s %10s\n", "threads", "rounds/s", "speedup",
              "identical");
  bool ok = true;
  ParallelRoundRun baseline;
  for (const int threads : {1, 2, 4, 8}) {
    const ParallelRoundRun run =
        MeasureParallelRound(machines, apps, threads, rounds);
    if (threads == 1) baseline = run;
    const bool identical = run.fingerprint == baseline.fingerprint &&
                           run.granted_gpus == baseline.granted_gpus &&
                           run.granted_gpus > 0;
    const double speedup =
        run.rounds_per_sec / std::max(1e-9, baseline.rounds_per_sec);
    std::printf("%8d %12.2f %8.2fx %10s\n", threads, run.rounds_per_sec,
                speedup, identical ? "yes" : "NO");
    const std::string tag = "@" + std::to_string(threads) + "threads";
    report.Metric("parallel_rounds_per_sec" + tag, run.rounds_per_sec);
    report.Metric("parallel_round_speedup" + tag, speedup);
    report.Metric("parallel_round_identical" + tag, identical ? 1.0 : 0.0);
    ok = ok && identical;
  }
  if (!report.Write()) ok = false;
  if (!ok) std::fprintf(stderr, "bench: parallel-round check FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace themis

// Custom main instead of BENCHMARK_MAIN(): after the google-benchmark suite
// (which --benchmark_filter can narrow or skip), the filter-probe and
// parallel-round sweeps run unconditionally and write BENCH_overheads.json /
// BENCH_parallel_rounds.json — the machine-readable reports CI's bench-smoke
// gate asserts on.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int filter_rc = themis::RunFilterProbeSweep();
  const int parallel_rc = themis::RunParallelRoundSweep();
  return filter_rc != 0 ? filter_rc : parallel_rc;
}
