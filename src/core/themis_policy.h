// The THEMIS ARBITER — Pseudocode 1 of the paper, as one protocol round.
//
// On every round with free GPUs:
//   1. probe all active apps' AGENTs for their current rho,
//   2. offer the round's pool to the worst-off 1-f fraction (the fairness
//      knob f trades finish-time fairness for placement efficiency,
//      Sec. 8.2),
//   3. collect one valuation-table bid per offered app,
//   4. run the Partial Allocation mechanism to pick winning rows and apply
//      hidden payments,
//   5. stage each winner's (scaled) bundle as grants, letting the app's own
//      scheduler spread it over constituent jobs, and
//   6. stage leftover GPUs work-conservingly for apps outside the auction,
//      one gang at a time, preferring machines those apps already occupy
//      (Sec. 5.1 "Leftover Allocation").
// The returned GrantSet carries the round's auction diagnostics (offered /
// granted / leftover counts, participant count); applying the leases is the
// caller's job via ApplyGrants.
//
// Heterogeneous generations: the auction prices speed-weighted shares
// without any PA change, because every valuation is a rho and rho is built
// from speed-aware quantities — T_SH uses EffectiveJobRate (G * S *
// min-gang-speed) and T_ID assumes the cluster's fastest generation — so a
// bundle of A100 machines values higher than the same GPU count of K80s,
// and the hidden payments price that difference. The offer's
// machine_speeds vector carries the same information to external bidders.
#pragma once

#include "auction/partial_allocation.h"
#include "core/agent.h"
#include "sim/policy.h"

namespace themis {

struct ThemisConfig {
  /// Fairness knob f in [0, 1]: the free pool is offered to the 1-f fraction
  /// of apps with the worst rho. Paper default 0.8 (Sec. 8.2).
  double fairness_knob = 0.8;
  /// Max non-zero rows per bid table.
  int max_bid_rows = 6;
  /// Ablation switch for the Sec. 8.3.1 / Fig. 8 behaviour: break equal-rho
  /// ties toward apps with smaller ideal running time ("we break ties in
  /// favor of shorter apps"). When false, ties fall back to app id.
  bool short_app_tiebreak = true;
  /// Use the maintained RhoIndex (core/rho_index.h) for the filter step when
  /// the embedder provides one through SchedulerContext::rho_index():
  /// re-probe only apps holding GPUs and merge them with the pre-ordered
  /// gangless class, instead of probing and sorting every active app each
  /// round. Bit-identical to the full scan by construction; false forces
  /// the literal scan (the `themis_cli --no-incremental-filter` bisect
  /// hatch). Contexts without an index always take the literal scan.
  bool incremental_filter = true;
  /// Thread budget for the round's embarrassingly parallel phases — the rho
  /// probe over GPU holders and per-participant bid preparation (each worker
  /// writes only its own app / its own pre-sized bids[i] slot, so results are
  /// bit-identical to the serial loop at any thread count). 0 or 1 = serial;
  /// >= 2 = run on the shared process pool (common/parallel.h). The parallel
  /// path engages only under the stateless kClairvoyant estimator; kNoisy /
  /// kCurveFit share RNG / fit state whose draw order the serial loop
  /// defines, so those modes silently fall back to serial.
  int auction_threads = 0;
  PaConfig pa;
};

class ThemisPolicy final : public ISchedulerPolicy {
 public:
  explicit ThemisPolicy(ThemisConfig config = {});

  GrantSet RunRound(const ResourceOffer& offer, SchedulerContext& ctx) override;
  const char* name() const override { return "Themis"; }

 private:
  /// Stage 6: hand out whatever is still in the pool after the auction.
  void AllocateLeftovers(SchedulerContext& ctx, const Agent& agent,
                         const std::vector<AppState*>& participants);

  ThemisConfig config_;
};

}  // namespace themis
