// Static descriptions of ML apps and their constituent jobs (Sec. 2.1).
//
// An *app* is one user's hyper-parameter exploration: n closely related
// training jobs differing in learning rate / momentum / etc. Each job is a
// gang of tasks performing synchronous SGD; all of a job's tasks must be
// scheduled together, and the job can use up to num_tasks * gpus_per_task
// GPUs (its maximum parallelism, G_ideal in the paper).
#pragma once

#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/types.h"
#include "placement/model_profile.h"
#include "workload/loss_curve.h"

namespace themis {

struct JobSpec {
  /// Upper limit on data-parallel tasks (Sec. 5.2 step 5).
  int num_tasks = 1;
  /// GPUs demanded by each task; allocations are granted in multiples of
  /// this (gang scheduling).
  int gpus_per_task = 4;
  /// Serial work to reach the target accuracy, in GPU-minutes at S = 1.
  Work total_work = 60.0;
  /// Convergence trajectory; drives HyperBand/HyperDrive kill decisions and
  /// SLAQ's quality bids. total_work corresponds to the curve reaching the
  /// app's target loss.
  LossCurve loss;
  /// Model architecture; selects the placement-sensitivity profile.
  ModelProfile model;

  /// Placement constraint (Sec. 6): the widest topology span this job
  /// tolerates, e.g. kMachine for models whose GPU-memory layout demands
  /// machine-local gangs. Allocations spanning beyond it have S = 0 — the
  /// paper's "valuation table entries for bids containing placement
  /// constraint-violating resource allocations would have infinite rho".
  /// Default: unconstrained.
  LocalityLevel max_span = LocalityLevel::kCrossRack;

  int MaxParallelism() const { return num_tasks * gpus_per_task; }

  /// Work expressed as iterations: iterations are a linear reparameterization
  /// of work (one iteration == total_work / total_iterations GPU-minutes).
  double total_iterations = 1000.0;
  Work WorkPerIteration() const { return total_work / total_iterations; }
};

enum class TunerKind {
  kNone,       // single-job app with known hyper-parameters
  kHyperBand,  // successive halving (Li et al.)
  kHyperDrive, // good/promising/poor classification (Rasley et al.)
};

struct AppSpec {
  std::string name;
  Time arrival = 0.0;
  TunerKind tuner = TunerKind::kHyperBand;
  /// Target loss shared by all jobs in the app: the first job to reach it is
  /// the "best model" that defines the app's finish time.
  double target_loss = 0.1;
  std::vector<JobSpec> jobs;

  /// Ideal running time T_ID (Sec. 5.2 step 5): the fastest constituent job
  /// running at maximum parallelism with perfect placement.
  Time IdealRunningTime() const;

  /// Total serial work across constituent jobs.
  Work TotalWork() const;

  /// Largest single-job parallelism in the app.
  int MaxJobParallelism() const;
};

/// Progress rate of `job` on `gpus`: |gpus| * S * min-generation-speed
/// (the gang paces on its slowest GPU), or 0 when the set spans a topology
/// boundary beyond the job's placement constraint.
double EffectiveJobRate(const JobSpec& job, const std::vector<GpuId>& gpus,
                        const Topology& topo);

}  // namespace themis
