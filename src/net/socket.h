// Thin POSIX TCP helpers for the ARBITER daemon (src/server/).
//
// Deliberately minimal: the daemon needs a nonblocking listener, a
// nonblocking accepted connection, a blocking client connect, and a poll
// loop — nothing more. All send paths use MSG_NOSIGNAL so a peer closing
// mid-write surfaces as EPIPE instead of killing the process with SIGPIPE
// (the daemon must never die because one AGENT vanished).
#pragma once

#include <cstddef>
#include <string>

namespace themis::net {

/// Invalid file descriptor sentinel.
constexpr int kBadFd = -1;

/// Create a nonblocking IPv4 listener on host:port (SO_REUSEADDR set,
/// backlog as given). `port` 0 binds an ephemeral port — read it back with
/// ListenPort. Returns the fd, or kBadFd with `*err` describing the failed
/// syscall.
int TcpListen(const std::string& host, int port, int backlog,
              std::string* err);

/// The port a listener is actually bound to (resolves port 0).
int ListenPort(int listen_fd);

/// Accept one pending connection from a nonblocking listener. The returned
/// fd is nonblocking with TCP_NODELAY set (round frames must not sit in
/// Nagle buffers). Returns kBadFd when no connection is pending (EAGAIN)
/// or on transient accept errors.
int TcpAccept(int listen_fd);

/// Blocking IPv4 client connect to host:port with TCP_NODELAY. Returns the
/// fd, or kBadFd with `*err` set.
int TcpConnect(const std::string& host, int port, std::string* err);

bool SetNonBlocking(int fd);

/// send() with MSG_NOSIGNAL. Returns bytes written, 0 on EAGAIN, or -1 on
/// a fatal socket error (including EPIPE).
long SendSome(int fd, const char* data, std::size_t n);

/// recv(). Returns bytes read, 0 on EAGAIN, -1 on EOF or a fatal error.
long RecvSome(int fd, char* buf, std::size_t n);

void CloseFd(int fd);

/// Raise the process soft RLIMIT_NOFILE toward `need` (capped at the hard
/// limit). Returns the resulting soft limit. The 4k-session bench and the
/// daemon call this so thousands of concurrent AGENT sockets do not trip
/// the default 1024-fd soft limit.
long RaiseFdLimit(long need);

/// RAII fd owner for tests and clients.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ != kBadFd; }
  int release() {
    const int fd = fd_;
    fd_ = kBadFd;
    return fd;
  }
  void reset(int fd = kBadFd) {
    if (fd_ != kBadFd) CloseFd(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = kBadFd;
};

}  // namespace themis::net
