// Figure 2: "Effect of GPU resource allocation configuration on job
// throughput for different models" — 4 P100s on one server vs 4 P100s
// across two servers (2x2).
//
// Throughput = serial_throughput * G * S(placement). The 1-server bar uses
// the machine-level slowdown, the 2x2 bar the rack-level slowdown (two
// servers in one rack), reproducing the figure's shape: VGG16/19 lose ~2x
// across servers while ResNet50 is nearly flat.
#include <cstdio>

#include "bench_common.h"
#include "cluster/topology.h"
#include "placement/placement_model.h"

int main() {
  using namespace themis;

  // Two 4-GPU servers in one rack.
  const Topology topo(ClusterSpec::Uniform(1, 2, 4, 2));
  const std::vector<GpuId> one_server{0, 1, 2, 3};
  const std::vector<GpuId> two_by_two{0, 1, 4, 5};

  bench::BenchReport report("fig02_placement_throughput");
  report.Config("cluster", "1 rack x 2 machines x 4 GPUs");

  std::printf("=== Figure 2: throughput (images/sec) vs placement ===\n");
  std::printf("%-14s %22s %26s %8s\n", "model", "4 GPUs on 1 server",
              "4 GPUs across 2 servers", "ratio");
  for (const ModelProfile& m : CanonicalModels()) {
    const double local = m.serial_throughput * EffectiveRate(m, one_server, topo);
    const double spread = m.serial_throughput * EffectiveRate(m, two_by_two, topo);
    std::printf("%-14s %22.0f %26.0f %8.2f\n", m.name.c_str(), local, spread,
                local / spread);
    report.Metric("throughput_1server." + m.name, local);
    report.Metric("throughput_2x2." + m.name, spread);
    report.Metric("placement_ratio." + m.name, local / spread);
  }
  std::printf("\npaper reference: VGG16 ~2x faster on one server; ResNet50"
              " placement-insensitive\n");
  return report.Write() ? 0 : 1;
}
