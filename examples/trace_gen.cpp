// trace_gen — generate synthetic workload traces straight to CSV.
//
//   trace_gen --stream-out FILE [--apps N] [--jobs N] [--seed S]
//             [--contention C] [--interarrival MIN] [--sensitive FRAC]
//
// Emits the same CSV format `themis_cli --trace-out` archives, but through
// StreamingTraceWriter: one row at a time, never the whole trace in memory,
// so million-job fixtures (for bench_trace_scale or `themis_cli
// --stream-trace`) generate in constant memory. With --jobs N, generation
// stops once N jobs have been emitted even if fewer than --apps apps were
// produced — the knob that pins fixture size for the scale bench.
// Deterministic in --seed: same flags, same bytes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace {

using namespace themis;

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --stream-out FILE [--apps N] [--jobs N]\n"
               "          [--seed S] [--contention C] [--interarrival MIN]\n"
               "          [--sensitive FRAC] [--bursty N:GAP]\n"
               "\n"
               "  --bursty N:GAP  arrivals come in same-instant bursts of N\n"
               "                  apps, bursts GAP minutes apart (replaces\n"
               "                  the Poisson arrival model) — the sparse\n"
               "                  shape the event-driven sim core targets\n",
               argv0);
  std::exit(2);
}

/// Parse "N:GAP" into the burst knobs; exits with usage on malformed input.
void ParseBursty(const std::string& spec, const char* argv0,
                 TraceConfig& config) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size())
    Usage(argv0);
  config.burst_size = std::atoi(spec.substr(0, colon).c_str());
  config.burst_gap_minutes = std::atof(spec.substr(colon + 1).c_str());
  if (config.burst_size <= 0 || config.burst_gap_minutes < 0.0) {
    std::fprintf(stderr, "--bursty needs N > 0 and GAP >= 0 (got %s)\n",
                 spec.c_str());
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  TraceConfig config;
  std::string out_path;
  long long max_jobs = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--stream-out") out_path = next();
    else if (arg == "--apps") config.num_apps = std::atoi(next().c_str());
    else if (arg == "--jobs") max_jobs = std::atoll(next().c_str());
    else if (arg == "--seed")
      config.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--contention")
      config.contention_factor = std::atof(next().c_str());
    else if (arg == "--interarrival")
      config.mean_interarrival = std::atof(next().c_str());
    else if (arg == "--sensitive")
      config.frac_network_intensive = std::atof(next().c_str());
    else if (arg == "--bursty") ParseBursty(next(), argv[0], config);
    else if (arg == "--help" || arg == "-h") Usage(argv[0]);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "--stream-out FILE is required\n");
    Usage(argv[0]);
  }
  // A --jobs cap bounds the trace; without it --apps must, and the default
  // TraceConfig::num_apps (50) silently producing a tiny "million-job"
  // fixture is the kind of surprise worth refusing.
  if (max_jobs <= 0 && config.num_apps <= 0) {
    std::fprintf(stderr, "need --apps N > 0 or --jobs N > 0\n");
    return 2;
  }
  if (max_jobs > 0 && config.num_apps > 0) {
    // Let the job cap drive: give the generator effectively unbounded apps
    // unless the caller pinned --apps explicitly alongside.
    bool apps_pinned = false;
    for (int i = 1; i < argc; ++i)
      if (std::strcmp(argv[i], "--apps") == 0) apps_pinned = true;
    if (!apps_pinned) config.num_apps = 1 << 30;
  }

  StreamedTraceStats stats;
  try {
    StreamingTraceWriter writer(out_path);
    stats = WriteGeneratedTrace(config, writer, max_jobs);
    writer.Close();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::printf("wrote %lld apps / %lld jobs to %s (last arrival %.1f min)\n",
              stats.apps, stats.jobs, out_path.c_str(), stats.last_arrival);
  return 0;
}
