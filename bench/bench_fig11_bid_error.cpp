// Figure 11: "Impact of error in bid valuations on max fairness" — bid
// values perturbed by a relative error sampled uniformly from [-theta,
// +theta] for theta in {0%, 5%, 10%, 20%}; max fairness is still computed on
// accurate T_SH / T_ID values.
//
// Paper shape: even at theta = 20% the change in max finish-time fairness is
// not significant.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  BenchReport report("fig11_bid_error");
  report.Config("cluster", "sim256");
  report.Config("contention_factor", 4.0);

  std::printf("=== Figure 11: max fairness vs bid valuation error ===\n");
  std::printf("%10s %10s\n", "theta", "max_rho");
  for (double theta : {0.0, 0.05, 0.10, 0.20}) {
    ExperimentConfig cfg = ContendedSimConfig(PolicyKind::kThemis);
    cfg.sim.estimator.mode =
        theta > 0.0 ? EstimationMode::kNoisy : EstimationMode::kClairvoyant;
    cfg.sim.estimator.theta = theta;
    const ExperimentResult r = RunExperiment(cfg);
    std::printf("%9.0f%% %10.2f\n", theta * 100.0, r.max_fairness);
    char key[48];
    std::snprintf(key, sizeof key, "max_rho@theta=%.0f%%", theta * 100.0);
    report.Metric(key, r.max_fairness);
  }
  std::printf("\npaper reference: max fairness insensitive to up to 20%%"
              " valuation error\n");
  return report.Write() ? 0 : 1;
}
