// Newline-delimited framing for the ARBITER wire protocol.
//
// One frame is one JSON document on one line ('\n' terminated; a trailing
// '\r' is tolerated and stripped). Both directions are bounded: LineReader
// rejects lines over a configured limit (a malformed or malicious AGENT
// cannot balloon the daemon's memory with an endless unterminated line),
// and WriteBuffer caps the bytes queued toward one peer (a consumer that
// stops reading gets evicted instead of buffering without bound — the
// naviserver driver-queue discipline applied per connection).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace themis::net {

constexpr std::size_t kDefaultMaxLine = 1 << 20;  // 1 MiB per frame

/// Incremental splitter of a byte stream into '\n'-terminated lines.
class LineReader {
 public:
  explicit LineReader(std::size_t max_line = kDefaultMaxLine)
      : max_line_(max_line) {}

  /// Append raw bytes. Returns false once the in-progress line exceeds
  /// max_line: the reader is poisoned (overflowed() stays true, NextLine
  /// yields nothing) and the connection should be evicted.
  bool Feed(const char* data, std::size_t n);

  /// Pop the next complete line, without its terminator. Empty lines are
  /// yielded as empty strings (callers decide whether to skip them).
  bool NextLine(std::string& out);

  bool overflowed() const { return overflowed_; }
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::string buf_;
  std::size_t consumed_ = 0;  // bytes of buf_ already returned as lines
  std::size_t max_line_;
  bool overflowed_ = false;
};

/// Bounded outgoing byte queue with partial-write handling.
class WriteBuffer {
 public:
  explicit WriteBuffer(std::size_t max_bytes = 8u << 20)
      : max_bytes_(max_bytes) {}

  /// Queue one frame (the '\n' terminator is appended here). Returns false
  /// when the buffer would exceed its cap — the peer is too slow and the
  /// caller should evict it.
  bool QueueFrame(std::string_view frame);

  /// Push buffered bytes into the socket until it stops accepting.
  /// Returns false on a fatal socket error.
  bool Flush(int fd);

  bool empty() const { return sent_ == buf_.size(); }
  std::size_t pending() const { return buf_.size() - sent_; }
  /// Bytes physically held (pending plus the not-yet-compacted sent
  /// prefix). Stays within ~2x pending(); exposed so tests can assert the
  /// compaction bound under sustained partial flushes.
  std::size_t buffer_size() const { return buf_.size(); }

 private:
  std::string buf_;
  std::size_t sent_ = 0;
  std::size_t max_bytes_;
};

}  // namespace themis::net
