#include "baselines/tiresias.h"

#include <algorithm>

namespace themis {

void TiresiasPolicy::Schedule(const std::vector<GpuId>& free_gpus,
                              SchedulerContext& ctx) {
  std::vector<GpuId> free = free_gpus;  // ascending id order

  // Apps sorted by least attained service (ties: arrival order via AppId).
  AppList apps = ctx.apps();
  std::stable_sort(apps.begin(), apps.end(),
                   [](const AppState* a, const AppState* b) {
                     if (a->attained_service != b->attained_service)
                       return a->attained_service < b->attained_service;
                     return a->id < b->id;
                   });

  // Round-robin over the LAS order: each pass gives the neediest app one
  // gang until the pool or all demand is exhausted. Placement-unaware: take
  // the first free GPUs by id.
  bool progress = true;
  while (progress && !free.empty()) {
    progress = false;
    for (AppState* app : apps) {
      for (int j : app->ActiveJobs()) {
        JobState& job = app->jobs[j];
        if (job.UnmetGangs() <= 0) continue;
        const int gang = job.spec.gpus_per_task;
        if (static_cast<int>(free.size()) < gang) continue;
        std::vector<GpuId> pick(free.begin(), free.begin() + gang);
        free.erase(free.begin(), free.begin() + gang);
        ctx.Grant(*app, job, pick);
        progress = true;
        break;  // one gang per app per round
      }
      if (free.empty()) break;
    }
  }
}

}  // namespace themis
