// Synthetic enterprise-trace generator (substitute for the proprietary trace
// of Sec. 8.1; see DESIGN.md substitution #2).
//
// The paper publishes the trace's marginals, which we reproduce:
//   - hyper-parameter exploration jobs per app: 1..98, median 23
//   - most tasks need 4 GPUs, a few need 2
//   - task durations: mostly short (median 59 min) with a long tail
//     (median 123 min)
//   - Poisson app arrivals, mean inter-arrival 20 minutes
//   - workload mix 60:40 placement-insensitive : placement-sensitive
// Contention is adjusted by scaling the inter-arrival time (Sec. 8.4.2), and
// testbed-scale runs divide durations by 5 (Sec. 8.3 footnote).
#pragma once

#include <vector>

#include "common/rng.h"
#include "workload/job_spec.h"
#include "workload/trace_io.h"

namespace themis {

struct TraceConfig {
  std::uint64_t seed = 42;
  int num_apps = 50;

  // Arrivals.
  Time mean_interarrival = 20.0;
  /// >1 compresses arrivals (Sec. 8.4.2's "factor of contention").
  double contention_factor = 1.0;
  /// Bursty arrivals: when burst_size > 0, apps arrive in same-instant
  /// bursts of this many, with consecutive bursts burst_gap_minutes apart
  /// (burst k arrives at k * gap). Only the arrival instants change: the
  /// per-app draws (jobs, models, durations) are bit-identical to the
  /// Poisson trace with the same seed. This is the sparse arrival shape
  /// the event-driven simulator core is built for.
  int burst_size = 0;
  Time burst_gap_minutes = 0.0;

  // Jobs per app: lognormal(median, sigma) clamped to [min, max].
  double jobs_per_app_median = 23.0;
  double jobs_per_app_sigma = 1.0;
  int jobs_per_app_min = 1;
  int jobs_per_app_max = 98;

  // Task durations (minutes) at maximum parallelism and ideal placement:
  // mixture of a short and a long lognormal.
  double short_duration_median = 59.0;
  double long_duration_median = 123.0;
  double duration_sigma = 0.5;
  double frac_long = 0.2;
  /// Multiplied into every duration; the paper's testbed runs use 1/5.
  double duration_scale = 1.0;

  // Resource shape.
  double frac_four_gpu_tasks = 0.7;  // remainder are 2-GPU tasks
  int tasks_per_job = 1;

  // Placement mix: fraction of apps that are network-intensive (VGG-like).
  double frac_network_intensive = 0.4;

  // Convergence model.
  double target_loss = 0.1;
  double min_decay = 0.35;
  double max_decay = 1.2;
  /// Iterations per minute of ideal runtime; sets rung granularity.
  double iters_per_minute = 10.0;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(TraceConfig config);

  /// Generate the full app sequence (arrival-sorted). Deterministic in the
  /// config seed. Implemented as GenerateNext in a loop, so the streamed and
  /// materialized forms draw identical RNG streams — same seed, same trace,
  /// bit for bit.
  std::vector<AppSpec> Generate();

  /// Generate the next app in the sequence without materializing the rest;
  /// returns false once config.num_apps apps have been produced. Interleaves
  /// the same RNG draws as Generate(), so `while (GenerateNext(a))` yields
  /// exactly Generate()'s output one app at a time.
  bool GenerateNext(AppSpec& out);

  /// Apps produced so far via Generate()/GenerateNext().
  int apps_generated() const { return next_index_; }

  /// Generate a single app arriving at `arrival`; exposed for tests and the
  /// Fig. 8 hand-built scenario.
  AppSpec GenerateApp(Time arrival, int index);

  const TraceConfig& config() const { return config_; }

 private:
  JobSpec GenerateJob(const ModelProfile& model, Rng& app_rng);

  TraceConfig config_;
  Rng rng_;
  int next_index_ = 0;
  Time next_arrival_ = 0.0;
};

/// TraceReader adapter over TraceGenerator: the simulator can replay a
/// synthetic trace of any size without it ever existing as a vector.
class GeneratorTraceReader : public TraceReader {
 public:
  explicit GeneratorTraceReader(TraceConfig config) : gen_(config) {}

  bool Next(AppSpec& out) override { return gen_.GenerateNext(out); }

  const TraceGenerator& generator() const { return gen_; }

 private:
  TraceGenerator gen_;
};

/// Result of a streamed generation run.
struct StreamedTraceStats {
  long long apps = 0;
  long long jobs = 0;
  Time last_arrival = 0.0;
};

/// Generate config.num_apps apps (stopping early once `max_jobs` jobs have
/// been emitted, if max_jobs > 0) straight into a streaming writer — the
/// million-job path: no app vector, constant memory. Deterministic in the
/// config seed. The caller closes the writer.
StreamedTraceStats WriteGeneratedTrace(const TraceConfig& config,
                                       StreamingTraceWriter& out,
                                       long long max_jobs = 0);

}  // namespace themis
