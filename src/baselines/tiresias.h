// Tiresias baseline (Gu et al., NSDI'19), emulated as in Sec. 8:
// "We model Tiresias using bids by having all apps report their total GPU
// service. The ARBITER assigns resources to apps that have the least GPU
// service. This model represents a version of Least Acquired Service (LAS)."
//
// Placement-unaware by design: GPUs are handed out in plain id order, one
// task-gang at a time, to the app with the least attained GPU service.
#pragma once

#include "sim/policy.h"

namespace themis {

class TiresiasPolicy final : public ISchedulerPolicy {
 public:
  GrantSet RunRound(const ResourceOffer& offer,
                    SchedulerContext& ctx) override;
  const char* name() const override { return "Tiresias"; }
};

}  // namespace themis
