#include "placement/model_profile.h"

#include <stdexcept>

namespace themis {

bool SensitivityProfile::IsValid() const {
  const double levels[] = {slot, machine, rack, cross_rack};
  double prev = 1.0 + 1e-12;
  for (double v : levels) {
    if (v <= 0.0 || v > 1.0) return false;
    if (v > prev) return false;
    prev = v;
  }
  return true;
}

const std::vector<ModelProfile>& CanonicalModels() {
  // Throughputs approximate Fig. 2's single-server bars on P100s; the
  // machine/rack/cross-rack slowdowns are chosen so the 1-server vs 2x2
  // ratio reproduces the figure (rack ~= the 2x2 case).
  static const std::vector<ModelProfile> kModels = {
      {"VGG16", 220.0, 528.0, {1.0, 0.90, 0.50, 0.35}, true},
      {"VGG19", 190.0, 549.0, {1.0, 0.90, 0.55, 0.40}, true},
      {"AlexNet", 500.0, 233.0, {1.0, 0.92, 0.62, 0.45}, true},
      {"Inceptionv3", 155.0, 92.0, {1.0, 0.97, 0.83, 0.70}, false},
      {"ResNet50", 210.0, 98.0, {1.0, 0.99, 0.96, 0.90}, false},
  };
  return kModels;
}

const ModelProfile& ModelByName(const std::string& name) {
  for (const auto& m : CanonicalModels())
    if (m.name == name) return m;
  throw std::out_of_range("unknown model: " + name);
}

const ModelProfile& SensitiveModel() { return ModelByName("VGG16"); }
const ModelProfile& InsensitiveModel() { return ModelByName("ResNet50"); }

}  // namespace themis
