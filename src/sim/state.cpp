#include "sim/state.h"

#include <algorithm>

namespace themis {

double JobState::Rate(const Topology& topo) const {
  if (!Running()) return 0.0;
  // Gang scheduling: only whole task-gangs contribute useful work; stray
  // GPUs beyond the last full gang are held but idle.
  const int usable =
      static_cast<int>(gpus.size()) -
      static_cast<int>(gpus.size()) % spec.gpus_per_task;
  if (usable <= 0) return 0.0;
  std::vector<GpuId> used(gpus.begin(), gpus.begin() + usable);
  return EffectiveJobRate(spec, used, topo);
}

void JobState::RefreshRateCache(const Topology& topo) {
  rate_cache_version = alloc_version;
  cached_rate = Rate(topo);
  cached_speed_sum = topo.SpeedSum(gpus);
}

int JobState::UnmetGangs() const {
  if (!alive || finished) return 0;
  const int cap = std::min(parallelism_cap, spec.MaxParallelism());
  const int unmet = cap - static_cast<int>(gpus.size());
  return std::max(0, unmet / spec.gpus_per_task);
}

double AppState::FinalRho() const {
  if (!finished || ideal_time <= 0.0) return kUnboundedRho;
  return (finish_time - arrival()) / ideal_time;
}

std::vector<int> AppState::ActiveJobs() const {
  std::vector<int> out;
  for (std::size_t j = 0; j < jobs.size(); ++j)
    if (jobs[j].alive && !jobs[j].finished) out.push_back(static_cast<int>(j));
  return out;
}

int AppState::GpusHeld() const {
  int total = 0;
  for (const JobState& j : jobs) total += static_cast<int>(j.gpus.size());
  return total;
}

double AppState::EffectiveGpusHeld(const Topology& topo) const {
  double total = 0.0;
  for (const JobState& j : jobs) total += topo.SpeedSum(j.gpus);
  return total;
}

int AppState::CapDemand() const {
  int total = 0;
  for (const JobState& j : jobs)
    if (j.alive && !j.finished)
      total += std::min(j.parallelism_cap, j.spec.MaxParallelism());
  return total;
}

int AppState::UnmetDemand() const {
  int total = 0;
  for (const JobState& j : jobs) total += j.UnmetGangs() * j.spec.gpus_per_task;
  return total;
}

std::vector<JobView> AppState::Views() const {
  std::vector<JobView> views;
  Views(views);
  return views;
}

void AppState::Views(std::vector<JobView>& out) const {
  out.clear();
  out.reserve(jobs.size());
  for (const JobState& j : jobs)
    out.push_back(JobView{&j.spec, j.DoneIterations(), j.alive, j.finished});
}

}  // namespace themis
