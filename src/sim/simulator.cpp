#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/log.h"

namespace themis {
namespace {
constexpr double kFinishEps = 1e-6;
}

void SimConfig::Validate() const {
  if (!(lease_minutes > 0.0))
    throw std::invalid_argument(
        "SimConfig: lease_minutes must be > 0 (got " +
        std::to_string(lease_minutes) + ")");
  if (restart_overhead_minutes < 0.0)
    throw std::invalid_argument(
        "SimConfig: restart_overhead_minutes must be >= 0 (got " +
        std::to_string(restart_overhead_minutes) + ")");
  if (!(max_time > 0.0))
    throw std::invalid_argument("SimConfig: max_time must be > 0 (got " +
                                std::to_string(max_time) + ")");
  if (machine_mtbf_minutes < 0.0)
    throw std::invalid_argument(
        "SimConfig: machine_mtbf_minutes must be >= 0 (got " +
        std::to_string(machine_mtbf_minutes) + ")");
  if (machine_mtbf_minutes > 0.0 && !(machine_repair_minutes > 0.0))
    throw std::invalid_argument(
        "SimConfig: machine_repair_minutes must be > 0 when failure "
        "injection is on (got " +
        std::to_string(machine_repair_minutes) + ")");
  if (arrival_lookahead_minutes < 0.0)
    throw std::invalid_argument(
        "SimConfig: arrival_lookahead_minutes must be >= 0 (got " +
        std::to_string(arrival_lookahead_minutes) + ")");
  if (auction_epsilon_minutes < 0.0)
    throw std::invalid_argument(
        "SimConfig: auction_epsilon_minutes must be >= 0 (got " +
        std::to_string(auction_epsilon_minutes) + ")");
  if (auction_epsilon_minutes > 0.0 && engine != SimEngine::kEventDriven)
    throw std::invalid_argument(
        "SimConfig: auction_epsilon_minutes > 0 requires the event-driven "
        "engine (epsilon batching deliberately reorders lease reclamation, "
        "which the pass-stepped reference never does)");
  if (metrics_tick_minutes < 0.0)
    throw std::invalid_argument(
        "SimConfig: metrics_tick_minutes must be >= 0 (got " +
        std::to_string(metrics_tick_minutes) + ")");
  if (round_threads < 0)
    throw std::invalid_argument("SimConfig: round_threads must be >= 0 (got " +
                                std::to_string(round_threads) + ")");
}

Simulator::Simulator(ClusterSpec cluster_spec, std::vector<AppSpec> specs,
                     std::unique_ptr<IRoundScheduler> scheduler,
                     SimConfig config)
    : cluster_(std::move(cluster_spec)),
      scheduler_(std::move(scheduler)),
      config_(config),
      estimator_(config.estimator),
      rng_(config.seed),
      metrics_(config.metrics) {
  config_.Validate();
  event_mode_ = config_.engine == SimEngine::kEventDriven;
  for (AppSpec& spec : specs) InjectApp(std::move(spec));

  // Failure injection: seed per-machine failure clocks (Sec. 6).
  failure_rng_ = Rng(config_.seed ^ 0xFA11DEADULL);
  if (config_.machine_mtbf_minutes > 0.0) {
    for (MachineId m = 0; m < static_cast<MachineId>(cluster_.num_machines());
         ++m) {
      Event e;
      e.time = failure_rng_.Exponential(config_.machine_mtbf_minutes);
      e.type = EventType::kMachineFail;
      e.machine = m;
      queue_.Push(e);
    }
  }
}

Simulator::Simulator(ClusterSpec cluster_spec,
                     std::unique_ptr<TraceReader> trace,
                     std::unique_ptr<IRoundScheduler> scheduler,
                     SimConfig config)
    : cluster_(std::move(cluster_spec)),
      scheduler_(std::move(scheduler)),
      config_(config),
      estimator_(config.estimator),
      rng_(config.seed),
      metrics_(config.metrics),
      reader_(std::move(trace)) {
  config_.Validate();
  event_mode_ = config_.engine == SimEngine::kEventDriven;
  have_pending_ = reader_->Next(pending_spec_);

  // Failure injection: seed per-machine failure clocks (Sec. 6). Seeded from
  // the same derived RNG as the preloaded path, so streamed and preloaded
  // runs of one trace see identical failure schedules.
  failure_rng_ = Rng(config_.seed ^ 0xFA11DEADULL);
  if (config_.machine_mtbf_minutes > 0.0) {
    for (MachineId m = 0; m < static_cast<MachineId>(cluster_.num_machines());
         ++m) {
      Event e;
      e.time = failure_rng_.Exponential(config_.machine_mtbf_minutes);
      e.type = EventType::kMachineFail;
      e.machine = m;
      queue_.Push(e);
    }
  }
}

void Simulator::InjectApp(AppSpec&& spec) {
  auto app = std::make_unique<AppState>();
  app->id = next_app_id_++;
  app->spec = std::move(spec);
  // T_ID assumes the app ran alone with ideal placement — on a
  // heterogeneous cluster that means the fastest generation, so rho
  // compares effective GPU-hours, not raw counts. Division by 1.0 on
  // uniform-speed clusters leaves the classic T_ID bit-identical.
  app->ideal_time = std::max(
      1e-9, app->spec.IdealRunningTime() / cluster_.topology().max_speed());
  app->tuner = MakeAppScheduler(app->spec);
  JobId next_job = 0;
  for (const JobSpec& js : app->spec.jobs) {
    JobState job;
    job.id = next_job++;
    job.spec = js;
    job.parallelism_cap = js.MaxParallelism();
    app->jobs.push_back(std::move(job));
  }
  queue_.Push(Event{app->spec.arrival, 0, EventType::kAppArrival, app->id,
                    kNoJob, 0});
  apps_.push_back(std::move(app));
  ++live_apps_;
  peak_live_apps_ = std::max(peak_live_apps_, live_apps_);
}

void Simulator::RefillArrivals() {
  while (have_pending_) {
    // Past the horizon, apps stay in the reader; they are accounted (as
    // unfinished) when the run ends.
    if (pending_spec_.arrival > config_.max_time) break;
    if (!queue_.Empty() &&
        static_cast<std::size_t>(finished_apps_) !=
            static_cast<std::size_t>(next_app_id_) &&
        pending_spec_.arrival >
            queue_.Top().time + 1e-12 + config_.arrival_lookahead_minutes)
      break;
    if (pending_spec_.arrival < last_injected_arrival_)
      throw std::runtime_error(
          "Simulator: streamed trace is not arrival-sorted (app arriving at " +
          std::to_string(pending_spec_.arrival) + " follows one at " +
          std::to_string(last_injected_arrival_) +
          "); sort the trace or preload it");
    last_injected_arrival_ = pending_spec_.arrival;
    InjectApp(std::move(pending_spec_));
    have_pending_ = reader_->Next(pending_spec_);
  }
}

void Simulator::RetireApp(AppId id) {
  if (!config_.retire_finished_apps) return;
  apps_[id - apps_base_].reset();
  --live_apps_;
  while (!apps_.empty() && apps_.front() == nullptr) {
    apps_.pop_front();
    ++apps_base_;
  }
}

AppState* Simulator::FindApp(AppId id) {
  if (id < apps_base_) return nullptr;
  const std::size_t idx = id - apps_base_;
  return (idx < apps_.size()) ? apps_[idx].get() : nullptr;
}

void Simulator::ActivateApp(AppState* app) {
  const auto it = std::lower_bound(
      active_apps_.begin(), active_apps_.end(), app,
      [](const AppState* a, const AppState* b) { return a->id < b->id; });
  if (it == active_apps_.end() || (*it)->id != app->id) {
    active_apps_.insert(it, app);
    // The app enters the contention sum at its pre-step capped demand; its
    // first tuner Step this very pass folds in any cap change as a delta.
    app->cached_cap_demand = app->CapDemand();
    total_cap_demand_ += app->cached_cap_demand;
  }
  rho_index_.Update(app);
}

void Simulator::DeactivateApp(AppId id) {
  const auto it = std::lower_bound(
      active_apps_.begin(), active_apps_.end(), id,
      [](const AppState* a, AppId b) { return a->id < b; });
  if (it != active_apps_.end() && (*it)->id == id) active_apps_.erase(it);
}

void Simulator::UpdateHolding(AppState* app) {
  bool holds = false;
  for (const JobState& job : app->jobs)
    if (!job.gpus.empty()) {
      holds = true;
      break;
    }
  const auto it = std::lower_bound(
      holding_apps_.begin(), holding_apps_.end(), app->id,
      [](const AppState* a, AppId b) { return a->id < b; });
  const bool present = it != holding_apps_.end() && (*it)->id == app->id;
  if (holds && !present)
    holding_apps_.insert(it, app);
  else if (!holds && present)
    holding_apps_.erase(it);
  // Every gang-mutation site funnels through here, so this one call keeps
  // the filter index's holder/candidate split current (finishes too: the
  // app reads as inactive and leaves both sets).
  rho_index_.Update(app);
}

void Simulator::MarkTunerDirty(AppState* app) {
  if (!event_mode_ || app->tuner_dirty) return;
  app->tuner_dirty = true;
  tuner_dirty_apps_.push_back(app->id);
}

void Simulator::TouchAlloc(AppId id) {
  if (event_mode_) alloc_touched_apps_.push_back(id);
}

void Simulator::AdvanceTo(Time t) {
  if (t <= last_advance_) return;
  ++time_advances_;
  // The event engine walks only apps holding GPUs: everything below is a
  // no-op for an empty gang, so the skipped active apps contribute nothing —
  // the RecordGpuTime call sequence (a float accumulation, hence
  // order-sensitive) is identical either way.
  const AppList& walk = event_mode_ ? holding_apps_ : active_apps_;
  for (AppState* app : walk) {
    bool held_any = false;
    for (JobState& job : app->jobs) {
      if (job.gpus.empty()) continue;
      held_any = true;
      // Held GPUs consume GPU-time for the whole interval (they are leased),
      // even while the job restarts from a checkpoint. Attained service is
      // *effective* (speed-weighted) GPU-minutes so Tiresias' LAS ordering
      // prices an A100-minute above a K80-minute; the GPU-time metric stays
      // raw occupancy. Both coincide on speed-1.0 clusters.
      // The gang is fixed within an allocation epoch, so its speed sum and
      // progress rate are too: the event engine reads them through the
      // per-epoch cache (same pure functions, same floats), while the
      // reference re-derives both on every advance like the seed loop did.
      const double held_dt = t - last_advance_;
      const Work gpu_minutes = held_dt * static_cast<double>(job.gpus.size());
      const double speed_sum = event_mode_
                                   ? job.CachedSpeedSum(cluster_.topology())
                                   : cluster_.topology().SpeedSum(job.gpus);
      const Work effective_minutes = held_dt * speed_sum;
      job.attained_service += effective_minutes;
      app->attained_service += effective_minutes;
      metrics_.RecordGpuTime(gpu_minutes);
      if (!job.Running()) continue;
      const Time seg_start = std::max(last_advance_, job.resume_at);
      if (t > seg_start) {
        const double rate = event_mode_ ? job.CachedRate(cluster_.topology())
                                        : job.Rate(cluster_.topology());
        job.done += (t - seg_start) * rate;
        job.done = std::min(job.done, job.spec.total_work);
      }
    }
    // Progress (or plain attained service) moved: the tuner's views may
    // have changed, so the next pass must re-step this app.
    if (held_any) MarkTunerDirty(app);
  }
  last_advance_ = t;
}

void Simulator::KillJob(AppState& /*app*/, JobState& job) {
  job.alive = false;
  ++job.alloc_version;
  for (GpuId g : job.gpus) cluster_.Release(g);
  job.gpus.clear();
}

void Simulator::FinishJob(Time t, AppState& app, JobState& job) {
  job.finished = true;
  job.finish_time = t;
  ++job.alloc_version;
  for (GpuId g : job.gpus) cluster_.Release(g);
  job.gpus.clear();
  // First job to reach the target accuracy identifies the app's best model:
  // the app is done (Sec. 2.1) and its remaining jobs are terminated.
  FinishApp(t, app);
}

void Simulator::FinishApp(Time t, AppState& app) {
  if (app.finished) return;
  app.finished = true;
  app.finish_time = t;
  ++finished_apps_;
  DeactivateApp(app.id);
  total_cap_demand_ -= app.cached_cap_demand;
  app.cached_cap_demand = 0;
  for (JobState& job : app.jobs)
    if (job.alive && !job.finished) KillJob(app, job);
  UpdateHolding(&app);
  // Close out the change-only allocation timeline at 0: the app leaves the
  // sampling walks on finish, so without this a consumer forward-filling
  // holdings would ghost its last grant forever.
  if (app.last_recorded_held > 0) {
    metrics_.RecordAllocation(t, app.id, 0);
    app.last_recorded_held = 0;
  }

  AppRecord record;
  record.app = app.id;
  record.arrival = app.arrival();
  record.finish = t;
  record.ideal_time = app.ideal_time;
  record.mean_placement_score =
      app.placement_scores.count() > 0 ? app.placement_scores.mean() : 1.0;
  record.attained_service = app.attained_service;
  metrics_.RecordAppFinish(record);
}

void Simulator::PushLeaseTick(Time t) {
  if (t > config_.max_time) return;
  if (pushed_ticks_.insert(t).second)
    queue_.Push(Event{t, 0, EventType::kLeaseTick, kNoApp, kNoJob, 0});
}

void Simulator::ArmMetricsTick(Time t) {
  if (config_.metrics_tick_minutes <= 0.0 || metrics_tick_armed_) return;
  metrics_tick_armed_ = true;
  Event e;
  e.time = t + config_.metrics_tick_minutes;
  e.type = EventType::kMetricsTick;
  queue_.Push(e);
}

void Simulator::MaybeScheduleFinish(Time t, AppState& app, JobState& job) {
  if (!job.Running()) return;
  // One projection per allocation epoch (event engine). The finish instant
  // is analytic in the granted rate; recomputing it at later passes would
  // yield the same instant only up to ulps, and pushing those
  // near-duplicates would let whichever drifted earliest win the heap. The
  // event engine therefore pins the *first* projection and invalidates it
  // only on re-grant; the pass-stepped reference keeps the per-pass resweep
  // (see SchedulingPass step 5).
  if (job.finish_projected_version == job.alloc_version) return;
  job.finish_projected_version = job.alloc_version;
  // Refreshes the per-epoch cache as a side effect, so the advances that
  // follow reuse this epoch's rate instead of re-deriving it.
  const double rate = job.CachedRate(cluster_.topology());
  if (rate <= 0.0) return;
  const Time start = std::max(t, job.resume_at);
  const Time finish = start + job.RemainingWork() / rate;
  if (finish <= config_.max_time)
    queue_.Push(
        Event{finish, 0, EventType::kJobFinish, app.id, job.id,
              job.alloc_version});
}

void Simulator::StepTuner(Time t, AppState& app) {
  app.Views(views_scratch_);
  const TunerDecision& decision = app.tuner->Step(views_scratch_, t);
  bool killed = false;
  for (int idx : decision.kill) {
    JobState& job = app.jobs[idx];
    if (job.alive && !job.finished) {
      KillJob(app, job);
      killed = true;
    }
  }
  for (std::size_t j = 0; j < app.jobs.size(); ++j)
    app.jobs[j].parallelism_cap = decision.parallelism_cap[j];
  app.tuner_dirty = false;
  // A job whose cap shrank below its current gang keeps the lease until
  // expiry (allocations are binding, Sec. 4's strawman discussion). Caps
  // only change in tuner steps, so the integer delta against the cached
  // value keeps the maintained contention sum exact.
  const long long demand = app.CapDemand();
  total_cap_demand_ += demand - app.cached_cap_demand;
  app.cached_cap_demand = demand;
  if (killed) {
    UpdateHolding(&app);
    TouchAlloc(app.id);
  } else {
    // Cap changes alone can flip UnmetDemand() and with it candidate
    // membership; kills already reclassified through UpdateHolding.
    rho_index_.Update(&app);
  }
}

void Simulator::SchedulingPass(Time t) {
  ++passes_;

  // Change detection is lazy: only jobs actually touched this pass — lease
  // expiries (snapshotted below, before their first removal) and round
  // grants (whose gangs strictly grow) — are examined, so the cost scales
  // with the churn of the pass, not with every live gang in the cluster.
  std::map<std::pair<AppId, JobId>, std::vector<GpuId>> reclaimed_before;

  // 1. Reclaim expired leases (O(expired log n) via the expiry index).
  for (GpuId g : cluster_.ExpiredGpus(t)) {
    const Lease lease = *cluster_.lease(g);
    cluster_.Release(g);
    AppState* app = FindApp(lease.app);
    if (app != nullptr && lease.job < app->jobs.size()) {
      auto& gpus = app->jobs[lease.job].gpus;
      reclaimed_before.try_emplace({lease.app, lease.job}, gpus);
      gpus.erase(std::remove(gpus.begin(), gpus.end(), g), gpus.end());
    }
  }
  for (const auto& [key, gang] : reclaimed_before) {
    (void)gang;
    if (AppState* app = FindApp(key.first)) UpdateHolding(app);
  }

  // 2. Per-app tuner step: kills and parallelism caps. The pass-stepped
  // reference re-steps every active app; the event engine steps only apps
  // whose views could have changed since their last step (arrived, or held
  // GPUs across a time advance) — a Step on unchanged views is a no-op by
  // construction of both tuners, so the skipped calls cannot matter.
  if (event_mode_) {
    std::sort(tuner_dirty_apps_.begin(), tuner_dirty_apps_.end());
    tuner_dirty_apps_.erase(
        std::unique(tuner_dirty_apps_.begin(), tuner_dirty_apps_.end()),
        tuner_dirty_apps_.end());
    for (AppId id : tuner_dirty_apps_) {
      AppState* app = FindApp(id);
      if (app == nullptr || !app->arrived || app->finished) continue;
      StepTuner(t, *app);
    }
    tuner_dirty_apps_.clear();
  } else {
    for (AppState* app : active_apps_) StepTuner(t, *app);
  }

  // Track contention: total live demand (held + unmet) over capacity. The
  // sum is maintained incrementally in integers, so it equals the old
  // per-pass resum exactly.
  peak_contention_ = std::max(peak_contention_,
                              static_cast<double>(total_cap_demand_) /
                                  static_cast<double>(cluster_.num_gpus()));

  // 3. One ARBITER round: publish the offer (free pool computed once from
  // the cluster indices, round id = pass number), let the scheduler stage
  // its grants against the offer's pool, then apply the leases — the single
  // grant-application path; policies never touch the cluster.
  std::vector<std::pair<AppId, JobId>> granted_jobs;
  std::vector<GpuId> free = cluster_.FreeGpus();
  if (!free.empty() && !active_apps_.empty()) {
    ++rounds_executed_;
    ResourceOffer offer;
    offer.round_id = static_cast<std::uint64_t>(passes_);
    offer.time = t;
    offer.lease_duration = config_.lease_minutes;
    offer.free_per_machine = cluster_.FreeGpusPerMachine();
    offer.machine_speeds = cluster_.topology().machine_speeds();
    offer.gpus = std::move(free);
    SchedulerContext ctx(offer, &cluster_, &estimator_, &active_apps_, &rng_);
    ctx.set_rho_index(&rho_index_);
    const GrantSet grants = scheduler_->RunRound(offer, ctx);
    ApplyGrants(grants, cluster_);
    if (grants.diagnostics.auction_ran)
      metrics_.RecordAuction(grants.diagnostics.auction_participants,
                             grants.diagnostics.offered_gpus,
                             grants.diagnostics.granted_gpus,
                             grants.diagnostics.leftover_gpus);
    if (round_observer_) round_observer_(offer, grants);
    // The context, not the returned set, is the authoritative record of
    // staged grants: legacy Schedule() shims apply-and-consume the GrantSet
    // inside the round, but every grant still passes through ctx.Grant.
    granted_jobs = ctx.granted_jobs();
    for (const auto& key : granted_jobs)
      if (AppState* app = FindApp(key.first)) UpdateHolding(app);
  }

  // 4a. Apply restart overheads to the touched jobs. Reclaimed jobs carry
  // their pre-pass gang; granted jobs strictly grew, so a grant with no
  // snapshot is changed by construction. A reclaimed gang re-won intact by
  // a lease renewal compares equal and incurs no restart (same rule as the
  // old full-snapshot walk). std::map order keeps the (app, job) ascending
  // walk — and so the placement-score accumulation order — of that walk.
  std::map<std::pair<AppId, JobId>, const std::vector<GpuId>*> touched;
  for (const auto& [key, gang] : reclaimed_before) touched[key] = &gang;
  for (const auto& key : granted_jobs) touched.try_emplace(key, nullptr);
  for (const auto& [key, before] : touched) {
    AppState* app = FindApp(key.first);
    if (app == nullptr || app->finished || key.second >= app->jobs.size())
      continue;
    JobState& job = app->jobs[key.second];
    const bool changed = before == nullptr || *before != job.gpus;
    if (!changed) continue;
    ++job.alloc_version;
    if (!job.gpus.empty()) {
      job.resume_at = t + config_.restart_overhead_minutes;
      app->placement_scores.Add(PlacementScore(job.gpus, cluster_.topology()));
    }
  }

  // The event engine's walk set for timeline sampling and finish
  // projections: exactly the apps something touched this pass — arrivals,
  // failure revocations and tuner kills (already in alloc_touched_apps_),
  // plus this pass's reclaims and grants. Sorted so the walk order (and so
  // the timeline append / event push order) matches the pass-stepped
  // reference's ascending active-app walk restricted to the same apps.
  if (event_mode_) {
    for (const auto& [key, gang] : reclaimed_before) {
      (void)gang;
      alloc_touched_apps_.push_back(key.first);
    }
    for (const auto& key : granted_jobs) alloc_touched_apps_.push_back(key.first);
    std::sort(alloc_touched_apps_.begin(), alloc_touched_apps_.end());
    alloc_touched_apps_.erase(
        std::unique(alloc_touched_apps_.begin(), alloc_touched_apps_.end()),
        alloc_touched_apps_.end());
  }

  // 4b. Sample the allocation timeline (Fig. 8) — on change. An app whose
  // held count is untouched since its last sample records nothing, so the
  // event engine's touched-only walk appends the identical sample stream.
  const auto record_alloc = [&](AppState* app) {
    int held = 0;
    for (const JobState& job : app->jobs)
      held += static_cast<int>(job.gpus.size());
    if (held != app->last_recorded_held) {
      metrics_.RecordAllocation(t, app->id, held);
      app->last_recorded_held = held;
    }
  };
  if (event_mode_) {
    for (AppId id : alloc_touched_apps_) {
      AppState* app = FindApp(id);
      if (app == nullptr || !app->arrived || app->finished) continue;
      record_alloc(app);
    }
  } else {
    for (AppState* app : active_apps_) record_alloc(app);
  }

  // 5. Schedule lease ticks + projected finish events. The expiry index
  // answers the next-expiry query directly instead of a full GPU scan. Push
  // order (tick first, then finish projections ascending (app, job)) is
  // part of the contract: seq breaks ties at equal times.
  const Time next_expiry = cluster_.NextExpiryAfter(t);
  if (std::isfinite(next_expiry)) PushLeaseTick(next_expiry);
  if (event_mode_) {
    for (AppId id : alloc_touched_apps_) {
      AppState* app = FindApp(id);
      if (app == nullptr || app->finished) continue;
      for (JobState& job : app->jobs) MaybeScheduleFinish(t, *app, job);
    }
    alloc_touched_apps_.clear();
  } else {
    // The pass-stepped reference derives every running job's finish from
    // its granted rate each pass — the per-pass resweep (a Rate() call per
    // job, with its placement walk) that the event engine's pinned
    // projections remove; bench_event_core quantifies exactly this gap.
    // Only the epoch's *first* derivation may enter the queue: a later
    // recomputation reproduces it only up to ulps (progress accumulates in
    // segments), and letting whichever drifted earliest win the heap would
    // unpin the engines' shared event stream. The first derivation is
    // computed at the same instant from the same state as
    // MaybeScheduleFinish's, so the pushed floats are identical.
    for (AppState* app : active_apps_) {
      for (JobState& job : app->jobs) {
        if (!job.Running()) continue;
        const double rate = job.Rate(cluster_.topology());
        if (rate <= 0.0) continue;
        const Time finish =
            std::max(t, job.resume_at) + job.RemainingWork() / rate;
        if (job.finish_projected_version == job.alloc_version) continue;
        job.finish_projected_version = job.alloc_version;
        if (finish <= config_.max_time)
          queue_.Push(Event{finish, 0, EventType::kJobFinish, app->id, job.id,
                            job.alloc_version});
      }
    }
  }
}

SimResult Simulator::Run() {
  while (true) {
    RefillArrivals();
    if (queue_.Empty()) break;
    if (static_cast<std::size_t>(finished_apps_) ==
            static_cast<std::size_t>(next_app_id_) &&
        ReaderExhausted())
      break;
    Time t = queue_.Top().time;
    if (t > config_.max_time) break;

    bool saw_tick = false;
    // Epsilon-batched auction rounds (event engine): when a lease tick
    // fires, every lease expiring within the epsilon window is reclaimed by
    // this one pass — the pass runs at the *latest* such expiry instant, so
    // it publishes one larger ResourceOffer instead of several slivers
    // (each merged lease effectively runs up to epsilon longer). The jump
    // never passes a queued event or the next streamed arrival, so nothing
    // is ever handled late.
    if (event_mode_ && config_.auction_epsilon_minutes > 0.0 &&
        queue_.Top().type == EventType::kLeaseTick) {
      const Event tick = queue_.Pop();
      ++events_processed_;
      pushed_ticks_.erase(tick.time);
      saw_tick = true;
      Time bound = tick.time + config_.auction_epsilon_minutes;
      if (!queue_.Empty()) bound = std::min(bound, queue_.Top().time);
      if (have_pending_) bound = std::min(bound, pending_spec_.arrival);
      bound = std::min(bound, config_.max_time);
      // Stale ticks (nothing expiring in the window) stay at their own
      // instant; expiries already past are reclaimed wherever t lands.
      t = std::max(tick.time, cluster_.LatestExpiryAtOrBefore(bound));
    }

    AdvanceTo(t);

    bool need_schedule = false;
    while (!queue_.Empty() && queue_.Top().time <= t + 1e-12) {
      const Event e = queue_.Pop();
      ++events_processed_;
      switch (e.type) {
        case EventType::kAppArrival: {
          AppState* app = FindApp(e.app);
          app->arrived = true;
          app->tuner->Init(app->spec);
          ActivateApp(app);
          MarkTunerDirty(app);
          TouchAlloc(app->id);
          ArmMetricsTick(t);
          need_schedule = true;
          break;
        }
        case EventType::kLeaseTick:
          pushed_ticks_.erase(e.time);
          saw_tick = true;
          break;
        case EventType::kJobFinish: {
          AppState* app = FindApp(e.app);
          if (app == nullptr || app->finished) break;
          JobState& job = app->jobs[e.job];
          if (job.alloc_version != e.version || !job.Running()) break;
          if (job.RemainingWork() <= kFinishEps + 1e-9 * job.spec.total_work) {
            FinishJob(t, *app, job);
            need_schedule = true;
            // The app's metrics are flushed; its JobState/tuner/placement
            // state can go. `app` and `job` dangle past this point.
            RetireApp(e.app);
          } else {
            // The projection drifted past the tolerance: progress between
            // events accumulates in segments, and a sum of segment products
            // is not bitwise the single product the projection used. Re-push
            // from current progress (strictly later than t, so this
            // terminates) — the finish is never silently lost.
            const double rate = job.Rate(cluster_.topology());
            if (rate > 0.0) {
              const Time finish =
                  std::max(t, job.resume_at) + job.RemainingWork() / rate;
              if (finish <= config_.max_time)
                queue_.Push(Event{finish, 0, EventType::kJobFinish, e.app,
                                  e.job, job.alloc_version});
            }
          }
          break;
        }
        case EventType::kMachineFail: {
          ++machine_failures_;
          cluster_.SetMachineDown(e.machine, true);
          // Revoke every lease on the failed machine; affected jobs lose
          // part (or all) of their gang and restart from checkpoints once
          // rescheduled.
          for (GpuId g : cluster_.topology().machine_gpus(e.machine)) {
            if (cluster_.IsFree(g)) continue;
            const Lease lease = *cluster_.lease(g);
            cluster_.Release(g);
            ++leases_revoked_by_failures_;
            AppState* app = FindApp(lease.app);
            if (app != nullptr && lease.job < app->jobs.size()) {
              JobState& job = app->jobs[lease.job];
              auto& gpus = job.gpus;
              gpus.erase(std::remove(gpus.begin(), gpus.end(), g), gpus.end());
              ++job.alloc_version;
              job.resume_at = t + config_.restart_overhead_minutes;
              UpdateHolding(app);
              TouchAlloc(lease.app);
            }
          }
          Event repair;
          repair.time = t + config_.machine_repair_minutes;
          repair.type = EventType::kMachineRepair;
          repair.machine = e.machine;
          queue_.Push(repair);
          need_schedule = true;
          break;
        }
        case EventType::kMachineRepair: {
          cluster_.SetMachineDown(e.machine, false);
          if (config_.machine_mtbf_minutes > 0.0 &&
              (static_cast<std::size_t>(finished_apps_) <
                   static_cast<std::size_t>(next_app_id_) ||
               !ReaderExhausted())) {
            Event next;
            next.time = t + failure_rng_.Exponential(config_.machine_mtbf_minutes);
            next.type = EventType::kMachineFail;
            next.machine = e.machine;
            queue_.Push(next);
          }
          need_schedule = true;
          break;
        }
        case EventType::kMetricsTick: {
          metrics_tick_armed_ = false;
          if (!active_apps_.empty()) {
            for (AppState* app : active_apps_) {
              int held = 0;
              for (const JobState& job : app->jobs)
                held += static_cast<int>(job.gpus.size());
              metrics_.RecordAllocation(t, app->id, held);
              app->last_recorded_held = held;
            }
            ArmMetricsTick(t);
          }
          // Re-armed by the next arrival otherwise: ticks never span an
          // idle cluster, so sparse traces still jump the gaps.
          break;
        }
      }
    }
    // A lease tick demands a pass only when a lease actually expired by
    // now. Stale ticks (their lease renewed or released since the tick was
    // pushed, or the last holder finished) advance virtual time and
    // nothing else — the fix for pass-stepped tail walks on exhausted
    // streams. The tick chain survives the skip: ticks are (re)pushed by
    // passes, and only passes move expiries.
    if (saw_tick && cluster_.HasExpiredLease(t)) need_schedule = true;
    if (need_schedule) SchedulingPass(t);
  }

  SimResult result;
  result.end_time = last_advance_;
  result.scheduling_passes = passes_;
  result.peak_contention = peak_contention_;
  result.machine_failures = machine_failures_;
  result.gpu_leases_revoked_by_failures = leases_revoked_by_failures_;
  result.events_processed = events_processed_;
  result.rounds_executed = rounds_executed_;
  result.sim_time_advances = time_advances_;
  for (const auto& app : apps_)
    if (app != nullptr && !app->finished) result.unfinished.push_back(app->id);
  // Apps still in the reader never arrived (the run hit max_time first);
  // they are unfinished by definition. Assign their would-be ids one at a
  // time — the trace itself is never materialized.
  if (have_pending_) {
    do {
      result.unfinished.push_back(next_app_id_++);
    } while (reader_->Next(pending_spec_));
    have_pending_ = false;
  }
  result.total_apps = static_cast<std::size_t>(next_app_id_);
  result.peak_live_apps = peak_live_apps_;
  result.metrics = std::move(metrics_);
  return result;
}

}  // namespace themis
