// The THEMIS AGENT (Sec. 5.2).
//
// An AGENT is co-located with each app's scheduler and mediates between it
// and the ARBITER: it answers rho probes, and when the app is offered
// resources it prepares a bid — a valuation table mapping candidate GPU
// subsets to the app's estimated new finish-time fairness metric. Valuations
// follow the paper's recipe:
//   T_SH = min over alive jobs of (elapsed + W'_j / (G_j * S_j))
//   T_ID = min over jobs of (W_j / G_ideal_j)      (ideal placement, S = 1)
//   rho  = T_SH / T_ID
// where work-left W' comes from the app scheduler's estimator (clairvoyant,
// noisy, or curve-fit — Sec. 8.1 / Fig. 11) and S captures placement
// sensitivity. Apps holding no usable gang report the unbounded-rho cap.
#pragma once

#include <utility>
#include <vector>

#include "auction/bid.h"
#include "estimator/work_estimator.h"
#include "sim/state.h"

namespace themis {

/// A bid plus the concrete GPUs backing each row, so the ARBITER can
/// materialize the (scaled) winning allocation on the same machines the app
/// valued.
struct AgentBid {
  BidTable table;
  /// row_gpus[r] = concrete GPU ids the agent picked for row r.
  std::vector<std::vector<GpuId>> row_gpus;
};

/// One job's share of an app-level grant.
struct JobAssignment {
  int job_index = -1;
  std::vector<GpuId> gpus;
};

class Agent {
 public:
  Agent(const Topology* topo, WorkEstimator* estimator, Time now)
      : topo_(topo), estimator_(estimator), now_(now) {}

  /// rho with the app's current allocation (ARBITER probe, step 1 of Fig. 3).
  double CurrentRho(const AppState& app) const;

  /// rho if `extra` GPUs were added and greedily spread over the app's jobs.
  double HypotheticalRho(const AppState& app,
                         const std::vector<GpuId>& extra) const;

  /// Build the valuation table for an offer (step 3 of Fig. 3). Rows are
  /// cumulative task-gang bundles in the app's own greedy priority order,
  /// placed as well as the offered pool allows; row 0 is the zero allocation
  /// at the current rho. At most `max_rows` non-zero rows.
  AgentBid PrepareBid(const AppState& app, const std::vector<GpuId>& offered,
                      int max_rows = 6) const;

  /// Greedy app-internal distribution of granted GPUs to jobs in whole gangs
  /// (Sec. 5.2 step 4: "GPUs are assigned to jobs in a placement sensitive
  /// manner"). GPUs that do not fill a gang are left unassigned.
  std::vector<JobAssignment> DistributeToJobs(
      const AppState& app, const std::vector<GpuId>& granted) const;

  /// Jobs ordered by estimated remaining work ascending — the job driving
  /// the min() in T_SH first.
  std::vector<int> JobPriorityOrder(const AppState& app) const;

 private:
  /// T_SH given per-job hypothetical GPU sets (indexed like app.jobs).
  double SharedRunningTime(const AppState& app,
                           const std::vector<std::vector<GpuId>>& gpus) const;
  double RhoFromSharedTime(const AppState& app, double t_sh) const;

  const Topology* topo_;
  WorkEstimator* estimator_;
  Time now_;
};

}  // namespace themis
