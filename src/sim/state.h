// Runtime state of apps and jobs inside the event-driven simulator.
//
// JobState tracks progress in serial GPU-minutes: a job holding GPU set G
// with placement slowdown S progresses at rate |G| * S. AppState owns its
// jobs, its hyper-parameter tuner, and the bookkeeping every scheduling
// policy reads (attained service for Tiresias, loss curves for SLAQ, rho
// inputs for THEMIS).
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "common/types.h"
#include "hyperopt/app_scheduler.h"
#include "placement/placement_model.h"
#include "workload/job_spec.h"

namespace themis {

struct JobState {
  JobId id = 0;
  JobSpec spec;

  Work done = 0.0;
  bool alive = true;      // false once the tuner kills it
  bool finished = false;  // reached target accuracy
  Time finish_time = -1.0;

  /// GPUs currently leased to this job (its gang).
  std::vector<GpuId> gpus;
  /// Progress stalls until this time after any allocation change
  /// (checkpoint + container churn, Sec. 8.3.2).
  Time resume_at = 0.0;
  /// Maximum parallelism granted by the tuner (G_ideal for this job).
  int parallelism_cap = 0;
  /// Bumped on every allocation change; stale finish events carry old values.
  std::uint64_t alloc_version = 0;
  /// Total GPU-minutes consumed (Tiresias' "attained service").
  Work attained_service = 0.0;

  bool Running() const { return alive && !finished && !gpus.empty(); }
  Work RemainingWork() const { return std::max(0.0, spec.total_work - done); }
  double DoneIterations() const { return done / spec.WorkPerIteration(); }
  /// Progress rate |G| * S given the topology; 0 when not running.
  double Rate(const Topology& topo) const;
  /// Additional whole gangs this job can still use.
  int UnmetGangs() const;
};

struct AppState {
  AppId id = 0;
  AppSpec spec;
  std::unique_ptr<IAppScheduler> tuner;
  std::vector<JobState> jobs;

  bool arrived = false;
  bool finished = false;
  Time finish_time = -1.0;
  /// T_ID: running time alone on the cluster with ideal placement.
  Time ideal_time = 1.0;
  Work attained_service = 0.0;
  /// Mean placement score of this app's (non-empty) job allocations.
  Summary placement_scores;
  /// Cached fairness estimate from the last ARBITER probe (diagnostics).
  double last_rho = kUnboundedRho;

  Time arrival() const { return spec.arrival; }
  /// Finish-time fairness realized at completion: (finish - arrival) / T_ID.
  double FinalRho() const;
  /// Jobs still training (alive, not finished).
  std::vector<int> ActiveJobs() const;
  int GpusHeld() const;
  /// Speed-weighted GPU holdings (sum of generation speeds over every held
  /// GPU) — the app's share in effective GPUs. Equals GpusHeld() on
  /// speed-1.0 clusters.
  double EffectiveGpusHeld(const Topology& topo) const;
  /// Whole-gang GPU demand still unmet across active jobs.
  int UnmetDemand() const;
  /// Capped GPU demand: sum over alive jobs of min(parallelism_cap,
  /// MaxParallelism) — this app's contribution to the contention yardstick.
  int CapDemand() const;

  /// JobView vector for the tuner.
  std::vector<JobView> Views() const;
};

/// Deterministically ordered list of app pointers (by AppId).
using AppList = std::vector<AppState*>;

}  // namespace themis
