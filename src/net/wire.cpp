#include "net/wire.h"

#include <cmath>
#include <utility>

#include "common/json.h"
#include "placement/model_profile.h"
#include "workload/trace_io.h"

namespace themis::net {

namespace {

// --------------------------------------------------------------------------
// Decode helpers: every lookup names the frame type and field on failure,
// so the resulting ERROR frame tells the AGENT exactly what was wrong.
// --------------------------------------------------------------------------

[[noreturn]] void Fail(const std::string& ctx, const std::string& what) {
  throw WireError("wire: " + ctx + ": " + what);
}

const JsonValue& Get(const JsonValue& obj, const char* key,
                     const std::string& ctx) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) Fail(ctx, std::string("missing field \"") + key + "\"");
  return *v;
}

double Num(const JsonValue& obj, const char* key, const std::string& ctx) {
  const JsonValue& v = Get(obj, key, ctx);
  if (!v.is_number())
    Fail(ctx, std::string("field \"") + key + "\" must be a number");
  return v.AsNumber();
}

std::int64_t Int(const JsonValue& obj, const char* key,
                 const std::string& ctx) {
  const double d = Num(obj, key, ctx);
  if (d != std::floor(d) || std::abs(d) > 9.0e15)
    Fail(ctx, std::string("field \"") + key + "\" must be an integer");
  return static_cast<std::int64_t>(d);
}

const std::string& Str(const JsonValue& obj, const char* key,
                       const std::string& ctx) {
  const JsonValue& v = Get(obj, key, ctx);
  if (!v.is_string())
    Fail(ctx, std::string("field \"") + key + "\" must be a string");
  return v.AsString();
}

bool Boolean(const JsonValue& obj, const char* key, const std::string& ctx) {
  const JsonValue& v = Get(obj, key, ctx);
  if (!v.is_bool())
    Fail(ctx, std::string("field \"") + key + "\" must be a bool");
  return v.AsBool();
}

const std::vector<JsonValue>& Arr(const JsonValue& obj, const char* key,
                                  const std::string& ctx) {
  const JsonValue& v = Get(obj, key, ctx);
  if (!v.is_array())
    Fail(ctx, std::string("field \"") + key + "\" must be an array");
  return v.items();
}

template <typename T>
std::vector<T> IntVector(const JsonValue& obj, const char* key,
                         const std::string& ctx) {
  std::vector<T> out;
  for (const JsonValue& v : Arr(obj, key, ctx)) {
    if (!v.is_number())
      Fail(ctx, std::string("field \"") + key + "\" must hold numbers");
    out.push_back(static_cast<T>(v.AsNumber()));
  }
  return out;
}

std::vector<double> DoubleVector(const JsonValue& obj, const char* key,
                                 const std::string& ctx) {
  std::vector<double> out;
  for (const JsonValue& v : Arr(obj, key, ctx)) {
    if (!v.is_number())
      Fail(ctx, std::string("field \"") + key + "\" must hold numbers");
    out.push_back(v.AsNumber());
  }
  return out;
}

// --------------------------------------------------------------------------
// AppSpec / JobSpec codec (field set mirrors the trace CSV archive columns,
// trace_io.cpp WriteAppRows).
// --------------------------------------------------------------------------

JsonValue JobToJson(const JobSpec& job) {
  JsonValue j = JsonValue::MakeObject();
  j.Set("num_tasks", JsonValue::MakeNumber(job.num_tasks));
  j.Set("gpus_per_task", JsonValue::MakeNumber(job.gpus_per_task));
  j.Set("total_work", JsonValue::MakeNumber(job.total_work));
  j.Set("total_iterations", JsonValue::MakeNumber(job.total_iterations));
  j.Set("loss_scale", JsonValue::MakeNumber(job.loss.scale()));
  j.Set("loss_decay", JsonValue::MakeNumber(job.loss.decay()));
  j.Set("loss_floor", JsonValue::MakeNumber(job.loss.floor()));
  j.Set("model", JsonValue::MakeString(job.model.name));
  j.Set("max_span", JsonValue::MakeString(ToString(job.max_span)));
  return j;
}

JobSpec JobFromJson(const JsonValue& j, const std::string& ctx) {
  JobSpec job;
  job.num_tasks = static_cast<int>(Int(j, "num_tasks", ctx));
  job.gpus_per_task = static_cast<int>(Int(j, "gpus_per_task", ctx));
  job.total_work = Num(j, "total_work", ctx);
  job.total_iterations = Num(j, "total_iterations", ctx);
  if (job.num_tasks <= 0 || job.gpus_per_task <= 0)
    Fail(ctx, "num_tasks and gpus_per_task must be positive");
  if (!(job.total_work > 0.0) || !(job.total_iterations > 0.0))
    Fail(ctx, "total_work and total_iterations must be positive");
  try {
    job.loss = LossCurve(Num(j, "loss_scale", ctx), Num(j, "loss_decay", ctx),
                         Num(j, "loss_floor", ctx));
    job.model = ModelByName(Str(j, "model", ctx));
    job.max_span = LocalityLevelFromString(Str(j, "max_span", ctx));
  } catch (const WireError&) {
    throw;
  } catch (const std::exception& e) {
    Fail(ctx, e.what());
  }
  return job;
}

JsonValue AppToJson(const AppSpec& app) {
  JsonValue a = JsonValue::MakeObject();
  a.Set("name", JsonValue::MakeString(app.name));
  a.Set("arrival", JsonValue::MakeNumber(app.arrival));
  a.Set("tuner", JsonValue::MakeString(ToString(app.tuner)));
  a.Set("target_loss", JsonValue::MakeNumber(app.target_loss));
  JsonValue jobs = JsonValue::MakeArray();
  for (const JobSpec& job : app.jobs) jobs.Append(JobToJson(job));
  a.Set("jobs", std::move(jobs));
  return a;
}

AppSpec AppFromJson(const JsonValue& a, const std::string& ctx) {
  AppSpec app;
  app.name = Str(a, "name", ctx);
  app.arrival = Num(a, "arrival", ctx);
  try {
    app.tuner = TunerKindFromString(Str(a, "tuner", ctx));
  } catch (const WireError&) {
    throw;
  } catch (const std::exception& e) {
    Fail(ctx, e.what());
  }
  app.target_loss = Num(a, "target_loss", ctx);
  const auto& jobs = Arr(a, "jobs", ctx);
  if (jobs.empty()) Fail(ctx, "app must declare at least one job");
  for (const JsonValue& j : jobs) app.jobs.push_back(JobFromJson(j, ctx));
  return app;
}

template <typename T>
JsonValue NumberArray(const std::vector<T>& xs) {
  JsonValue arr = JsonValue::MakeArray();
  for (const T& x : xs)
    arr.Append(JsonValue::MakeNumber(static_cast<double>(x)));
  return arr;
}

}  // namespace

const char* ToString(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kWelcome: return "welcome";
    case MsgType::kOffer: return "offer";
    case MsgType::kBid: return "bid";
    case MsgType::kGrant: return "grant";
    case MsgType::kAck: return "ack";
    case MsgType::kError: return "error";
    case MsgType::kClose: return "close";
  }
  return "?";
}

std::string EncodeHello(const std::string& agent_name,
                        const std::vector<AppSpec>& apps) {
  JsonValue m = JsonValue::MakeObject();
  m.Set("type", JsonValue::MakeString("hello"));
  m.Set("agent", JsonValue::MakeString(agent_name));
  JsonValue arr = JsonValue::MakeArray();
  for (const AppSpec& app : apps) arr.Append(AppToJson(app));
  m.Set("apps", std::move(arr));
  return JsonWriter::Write(m);
}

std::string EncodeWelcome(std::int64_t agent_id,
                          const std::vector<AppId>& app_ids) {
  JsonValue m = JsonValue::MakeObject();
  m.Set("type", JsonValue::MakeString("welcome"));
  m.Set("protocol", JsonValue::MakeNumber(kProtocolVersion));
  m.Set("agent_id", JsonValue::MakeNumber(static_cast<double>(agent_id)));
  m.Set("app_ids", NumberArray(app_ids));
  return JsonWriter::Write(m);
}

std::string EncodeOffer(const ResourceOffer& offer) {
  JsonValue m = JsonValue::MakeObject();
  m.Set("type", JsonValue::MakeString("offer"));
  m.Set("round", JsonValue::MakeNumber(static_cast<double>(offer.round_id)));
  m.Set("time", JsonValue::MakeNumber(offer.time));
  m.Set("lease", JsonValue::MakeNumber(offer.lease_duration));
  m.Set("gpus", NumberArray(offer.gpus));
  m.Set("free_per_machine", NumberArray(offer.free_per_machine));
  m.Set("machine_speeds", NumberArray(offer.machine_speeds));
  return JsonWriter::Write(m);
}

std::string EncodeBid(std::uint64_t round_id,
                      const std::vector<BidDemand>& demands) {
  JsonValue m = JsonValue::MakeObject();
  m.Set("type", JsonValue::MakeString("bid"));
  m.Set("round", JsonValue::MakeNumber(static_cast<double>(round_id)));
  JsonValue arr = JsonValue::MakeArray();
  for (const BidDemand& d : demands) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("app", JsonValue::MakeNumber(static_cast<double>(d.app)));
    e.Set("unmet_gpus", JsonValue::MakeNumber(d.unmet_gpus));
    arr.Append(std::move(e));
  }
  m.Set("demands", std::move(arr));
  return JsonWriter::Write(m);
}

std::string EncodeGrant(const GrantSet& grants,
                        const std::vector<AppId>& finished_apps) {
  JsonValue m = JsonValue::MakeObject();
  m.Set("type", JsonValue::MakeString("grant"));
  m.Set("round", JsonValue::MakeNumber(static_cast<double>(grants.round_id)));
  m.Set("lease_expiry", JsonValue::MakeNumber(grants.lease_expiry));
  JsonValue arr = JsonValue::MakeArray();
  for (const Grant& g : grants.grants) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("app", JsonValue::MakeNumber(static_cast<double>(g.app)));
    e.Set("job", JsonValue::MakeNumber(static_cast<double>(g.job)));
    e.Set("gpus", NumberArray(g.gpus));
    arr.Append(std::move(e));
  }
  m.Set("grants", std::move(arr));
  JsonValue diag = JsonValue::MakeObject();
  diag.Set("offered", JsonValue::MakeNumber(grants.diagnostics.offered_gpus));
  diag.Set("granted", JsonValue::MakeNumber(grants.diagnostics.granted_gpus));
  diag.Set("leftover",
           JsonValue::MakeNumber(grants.diagnostics.leftover_gpus));
  diag.Set("auction_ran",
           JsonValue::MakeBool(grants.diagnostics.auction_ran));
  diag.Set("participants",
           JsonValue::MakeNumber(grants.diagnostics.auction_participants));
  m.Set("diagnostics", std::move(diag));
  m.Set("finished_apps", NumberArray(finished_apps));
  return JsonWriter::Write(m);
}

std::string EncodeAck(std::uint64_t round_id) {
  JsonValue m = JsonValue::MakeObject();
  m.Set("type", JsonValue::MakeString("ack"));
  m.Set("round", JsonValue::MakeNumber(static_cast<double>(round_id)));
  return JsonWriter::Write(m);
}

std::string EncodeError(const std::string& code, const std::string& detail) {
  JsonValue m = JsonValue::MakeObject();
  m.Set("type", JsonValue::MakeString("error"));
  m.Set("code", JsonValue::MakeString(code));
  m.Set("detail", JsonValue::MakeString(detail));
  return JsonWriter::Write(m);
}

std::string EncodeClose(const std::string& reason) {
  JsonValue m = JsonValue::MakeObject();
  m.Set("type", JsonValue::MakeString("close"));
  m.Set("reason", JsonValue::MakeString(reason));
  return JsonWriter::Write(m);
}

WireMessage ParseWireMessage(const std::string& line) {
  JsonValue doc;
  try {
    doc = JsonValue::Parse(line);
  } catch (const std::exception& e) {
    throw WireError(std::string("wire: frame is not valid JSON: ") + e.what());
  }
  if (!doc.is_object()) throw WireError("wire: frame must be a JSON object");
  const JsonValue* type = doc.Find("type");
  if (type == nullptr || !type->is_string())
    throw WireError("wire: frame missing string field \"type\"");
  const std::string& t = type->AsString();

  WireMessage msg;
  if (t == "hello") {
    msg.type = MsgType::kHello;
    msg.agent_name = Str(doc, "agent", "hello");
    for (const JsonValue& a : Arr(doc, "apps", "hello"))
      msg.apps.push_back(AppFromJson(a, "hello.apps"));
  } else if (t == "welcome") {
    msg.type = MsgType::kWelcome;
    msg.protocol = static_cast<int>(Int(doc, "protocol", "welcome"));
    msg.agent_id = Int(doc, "agent_id", "welcome");
    msg.app_ids = IntVector<AppId>(doc, "app_ids", "welcome");
  } else if (t == "offer") {
    msg.type = MsgType::kOffer;
    msg.offer.round_id = static_cast<std::uint64_t>(Int(doc, "round", "offer"));
    msg.offer.time = Num(doc, "time", "offer");
    msg.offer.lease_duration = Num(doc, "lease", "offer");
    msg.offer.gpus = IntVector<GpuId>(doc, "gpus", "offer");
    msg.offer.free_per_machine = IntVector<int>(doc, "free_per_machine",
                                                "offer");
    msg.offer.machine_speeds = DoubleVector(doc, "machine_speeds", "offer");
  } else if (t == "bid") {
    msg.type = MsgType::kBid;
    msg.round_id = static_cast<std::uint64_t>(Int(doc, "round", "bid"));
    for (const JsonValue& d : Arr(doc, "demands", "bid")) {
      BidDemand demand;
      demand.app = static_cast<AppId>(Int(d, "app", "bid.demands"));
      demand.unmet_gpus =
          static_cast<int>(Int(d, "unmet_gpus", "bid.demands"));
      msg.demands.push_back(demand);
    }
  } else if (t == "grant") {
    msg.type = MsgType::kGrant;
    msg.round_id = static_cast<std::uint64_t>(Int(doc, "round", "grant"));
    msg.grants.round_id = msg.round_id;
    msg.grants.lease_expiry = Num(doc, "lease_expiry", "grant");
    for (const JsonValue& g : Arr(doc, "grants", "grant")) {
      Grant grant;
      grant.app = static_cast<AppId>(Int(g, "app", "grant.grants"));
      grant.job = static_cast<JobId>(Int(g, "job", "grant.grants"));
      grant.gpus = IntVector<GpuId>(g, "gpus", "grant.grants");
      msg.grants.grants.push_back(std::move(grant));
    }
    const JsonValue& diag = Get(doc, "diagnostics", "grant");
    msg.grants.diagnostics.offered_gpus =
        static_cast<int>(Int(diag, "offered", "grant.diagnostics"));
    msg.grants.diagnostics.granted_gpus =
        static_cast<int>(Int(diag, "granted", "grant.diagnostics"));
    msg.grants.diagnostics.leftover_gpus =
        static_cast<int>(Int(diag, "leftover", "grant.diagnostics"));
    msg.grants.diagnostics.auction_ran =
        Boolean(diag, "auction_ran", "grant.diagnostics");
    msg.grants.diagnostics.auction_participants =
        static_cast<int>(Int(diag, "participants", "grant.diagnostics"));
    msg.finished_apps = IntVector<AppId>(doc, "finished_apps", "grant");
  } else if (t == "ack") {
    msg.type = MsgType::kAck;
    msg.round_id = static_cast<std::uint64_t>(Int(doc, "round", "ack"));
  } else if (t == "error") {
    msg.type = MsgType::kError;
    msg.code = Str(doc, "code", "error");
    msg.detail = Str(doc, "detail", "error");
  } else if (t == "close") {
    msg.type = MsgType::kClose;
    msg.reason = Str(doc, "reason", "close");
  } else {
    throw WireError("wire: unknown message type \"" + t + "\"");
  }
  return msg;
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(std::uint64_t& h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
}

std::uint64_t DoubleBits(double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof d);
  __builtin_memcpy(&bits, &d, sizeof bits);
  return bits;
}

}  // namespace

void GrantDigest::Add(std::uint64_t round_id, double lease_expiry,
                      const Grant& g) {
  std::uint64_t h = kFnvOffset;
  FnvMix(h, round_id);
  FnvMix(h, DoubleBits(lease_expiry));
  FnvMix(h, static_cast<std::uint64_t>(g.app));
  FnvMix(h, static_cast<std::uint64_t>(g.job));
  for (GpuId gpu : g.gpus) FnvMix(h, static_cast<std::uint64_t>(gpu));
  hash ^= h;
  ++grants;
  gpus += static_cast<long long>(g.gpus.size());
}

void GrantDigest::Merge(const GrantDigest& other) {
  hash ^= other.hash;
  grants += other.grants;
  gpus += other.gpus;
}

}  // namespace themis::net
