// Cluster topology description: racks contain machines, machines contain
// slots (an NVLink island of GPUs), slots contain GPUs. This hierarchy gives
// the four locality levels the paper's placement score uses (Sec. 8.1):
// slot (NVLink), machine (PCIe), rack, and cross-rack.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace themis {

/// Relative placement of a set of GPUs, ordered best to worst. Matches the
/// paper's 4-level placement scoring scheme.
enum class LocalityLevel : int {
  kSlot = 0,       // all GPUs share an NVLink slot
  kMachine = 1,    // all GPUs in one machine, across slots (PCIe)
  kRack = 2,       // all GPUs in one rack, across machines
  kCrossRack = 3,  // GPUs span racks
};

const char* ToString(LocalityLevel level);

struct MachineSpec {
  int num_gpus = 4;
  /// GPUs per NVLink slot; num_gpus must be a multiple of this.
  int gpus_per_slot = 2;
};

struct RackSpec {
  std::vector<MachineSpec> machines;
};

struct ClusterSpec {
  std::vector<RackSpec> racks;

  int TotalGpus() const;
  int TotalMachines() const;

  /// The heterogeneous 256-GPU simulation cluster from Sec. 8.1: a mixture
  /// of 4-GPU, 2-GPU and 1-GPU machines spread across multiple racks.
  static ClusterSpec Simulation256();

  /// The 50-GPU Azure testbed from Sec. 8.1: 20 instances with 1/2/4 GPUs
  /// (NC- and NV-series).
  static ClusterSpec Testbed50();

  /// Uniform cluster helper used by tests and microbenchmarks.
  static ClusterSpec Uniform(int racks, int machines_per_rack, int gpus_per_machine,
                             int gpus_per_slot);
};

/// Fully resolved coordinates of a single GPU.
struct GpuCoord {
  GpuId gpu = 0;          // global GPU index
  MachineId machine = 0;  // global machine index
  RackId rack = 0;
  int slot = 0;             // slot index within the machine
  int index_in_slot = 0;    // GPU index within its slot
};

/// Immutable index over a ClusterSpec: resolves GPU/machine coordinates and
/// answers locality queries. Built once per simulation.
class Topology {
 public:
  explicit Topology(ClusterSpec spec);

  const ClusterSpec& spec() const { return spec_; }
  int num_gpus() const { return static_cast<int>(gpus_.size()); }
  int num_machines() const { return static_cast<int>(machine_racks_.size()); }
  int num_racks() const { return static_cast<int>(spec_.racks.size()); }

  const GpuCoord& gpu(GpuId id) const { return gpus_.at(id); }
  RackId rack_of_machine(MachineId m) const { return machine_racks_.at(m); }
  int gpus_on_machine(MachineId m) const { return machine_gpu_counts_.at(m); }
  /// Global GPU ids hosted by a machine (contiguous by construction).
  const std::vector<GpuId>& machine_gpus(MachineId m) const {
    return machine_gpu_ids_.at(m);
  }

  /// Tightest locality level spanned by a set of GPUs. A singleton (or empty)
  /// set is kSlot: it cannot span any boundary.
  LocalityLevel SpanLevel(const std::vector<GpuId>& gpus) const;

  std::string Describe() const;

 private:
  ClusterSpec spec_;
  std::vector<GpuCoord> gpus_;
  std::vector<RackId> machine_racks_;
  std::vector<int> machine_gpu_counts_;
  std::vector<std::vector<GpuId>> machine_gpu_ids_;
};

}  // namespace themis
