// The Partial Allocation (PA) mechanism — Pseudocode 2 of the paper, after
// Cole, Gkatzelis & Goel, "Mechanism design for fair division" (EC'13).
//
// Stage 1 (proportional fairness): choose one row per bidding app maximizing
// the product of valuations Prod_i V_i subject to the per-machine capacity of
// the offer. The paper solves this with Gurobi; we use a deterministic
// branch-and-bound over the (small) bid tables seeded by a greedy incumbent,
// falling back to greedy + pairwise local search when the search space
// exceeds a node budget (DESIGN.md substitution #3).
//
// Stage 2 (hidden payments / truth-telling): each app i keeps only a fraction
//     c_i = Prod_{j!=i} V_j(R_pf) / Prod_{j!=i} V_j(R_pf^{-i})
// of its proportionally fair bundle, where R_pf^{-i} is the optimum of the
// market without app i. Removing a bidder can only help the others, so
// c_i <= 1; the withheld (1 - c_i) share is the hidden payment that makes
// truthful reporting of V a dominant strategy for homogeneous valuations.
//
// Stage 3 (leftovers): hidden payments may leave GPUs unallocated — at most a
// 1/e fraction in the worst case — which the ARBITER later hands out work-
// conservingly to apps outside the auction (that step needs cluster state and
// lives with the policy, not here).
#pragma once

#include <cstdint>
#include <vector>

#include "auction/bid.h"

namespace themis {

struct PaConfig {
  /// Node budget for the exact branch-and-bound; beyond it the incumbent
  /// (greedy + local search) answer is returned.
  std::int64_t max_nodes = 200000;
  /// Local-search improvement passes over the greedy solution.
  int local_search_passes = 4;
  /// Ablation switch: when false, stage 2 is skipped (c_i = 1 for every
  /// winner) — the mechanism degenerates to plain proportional fairness,
  /// losing its truth-telling incentive. Exposed for the ablation bench.
  bool hidden_payments = true;
};

struct PaWinner {
  AppId app = kNoApp;
  /// Index of the winning row in the app's bid table (0 == zero row).
  int row = 0;
  /// Hidden-payment retention fraction c_i in (0, 1].
  double c = 1.0;
  /// Final granted GPUs per machine: floor(c * row), elementwise.
  std::vector<int> granted;
};

struct PaResult {
  /// One entry per bidding app, in input order.
  std::vector<PaWinner> winners;
  /// Offer minus all grants: the leftover pool for stage 3.
  std::vector<int> leftover;
  /// log of Prod_i V_i at the proportionally fair optimum (diagnostics).
  double log_welfare = 0.0;
  /// True if every per-app subproblem was solved exactly.
  bool exact = true;
};

/// Run the PA mechanism. `bids` must each validate against `offered`
/// (ValidateBid); violations throw std::invalid_argument. The pointer form
/// is the primary entry point — tables stay wherever the caller already
/// holds them (e.g. inside AgentBid) and are never copied; every pointer
/// must be non-null and outlive the call. The value form is a convenience
/// wrapper over it.
PaResult PartialAllocation(const std::vector<const BidTable*>& bids,
                           const std::vector<int>& offered,
                           const PaConfig& config = {});
PaResult PartialAllocation(const std::vector<BidTable>& bids,
                           const std::vector<int>& offered,
                           const PaConfig& config = {});

/// Exposed for testing: stage-1 proportional-fair row selection only.
/// Returns the chosen row index per app and the achieved log-welfare.
struct PfSolution {
  std::vector<int> rows;
  double log_welfare = 0.0;
  bool exact = true;
};
PfSolution SolveProportionalFair(const std::vector<const BidTable*>& bids,
                                 const std::vector<int>& offered,
                                 const PaConfig& config = {});
PfSolution SolveProportionalFair(const std::vector<BidTable>& bids,
                                 const std::vector<int>& offered,
                                 const PaConfig& config = {});

}  // namespace themis
