#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace themis {

TraceGenerator::TraceGenerator(TraceConfig config)
    : config_(config), rng_(config.seed) {}

std::vector<AppSpec> TraceGenerator::Generate() {
  std::vector<AppSpec> apps;
  apps.reserve(config_.num_apps);
  AppSpec app;
  while (GenerateNext(app)) apps.push_back(std::move(app));
  return apps;
}

bool TraceGenerator::GenerateNext(AppSpec& out) {
  if (next_index_ >= config_.num_apps) return false;
  // Bursty mode overrides only the arrival instant (burst index * gap); the
  // exponential draw below is still consumed so the parent RNG stream — and
  // therefore every per-app Split() stream — is identical to the Poisson
  // trace with the same seed: same apps, different arrival times.
  const Time arrival =
      config_.burst_size > 0
          ? static_cast<Time>(next_index_ / config_.burst_size) *
                config_.burst_gap_minutes
          : next_arrival_;
  out = GenerateApp(arrival, next_index_);
  next_arrival_ += rng_.Exponential(config_.mean_interarrival /
                                    config_.contention_factor);
  ++next_index_;
  return true;
}

AppSpec TraceGenerator::GenerateApp(Time arrival, int index) {
  // Each app gets its own RNG stream so that changing one app's draws does
  // not perturb the rest of the trace.
  Rng app_rng = rng_.Split();

  AppSpec app;
  app.name = "app-" + std::to_string(index);
  app.arrival = arrival;
  app.target_loss = config_.target_loss;

  const bool sensitive = app_rng.NextDouble() < config_.frac_network_intensive;
  // Pick a concrete architecture within the family; all jobs in one app share
  // the model structure (they differ only in hyper-parameters, Sec. 5.2).
  const ModelProfile& model = [&]() -> const ModelProfile& {
    if (sensitive) {
      const char* names[] = {"VGG16", "VGG19", "AlexNet"};
      return ModelByName(names[app_rng.UniformInt(0, 2)]);
    }
    const char* names[] = {"ResNet50", "Inceptionv3"};
    return ModelByName(names[app_rng.UniformInt(0, 1)]);
  }();

  const int n_jobs = std::clamp(
      static_cast<int>(std::lround(app_rng.LogNormalMedian(
          config_.jobs_per_app_median, config_.jobs_per_app_sigma))),
      config_.jobs_per_app_min, config_.jobs_per_app_max);
  app.tuner = (n_jobs == 1) ? TunerKind::kNone : TunerKind::kHyperBand;

  app.jobs.reserve(n_jobs);
  for (int j = 0; j < n_jobs; ++j) app.jobs.push_back(GenerateJob(model, app_rng));
  return app;
}

JobSpec TraceGenerator::GenerateJob(const ModelProfile& model, Rng& app_rng) {
  JobSpec job;
  job.model = model;
  job.num_tasks = config_.tasks_per_job;
  job.gpus_per_task =
      (app_rng.NextDouble() < config_.frac_four_gpu_tasks) ? 4 : 2;

  const bool is_long = app_rng.NextDouble() < config_.frac_long;
  const double median =
      is_long ? config_.long_duration_median : config_.short_duration_median;
  const double duration =
      std::max(1.0, app_rng.LogNormalMedian(median, config_.duration_sigma)) *
      config_.duration_scale;

  // `duration` is the job's ideal running time at maximum parallelism with
  // perfect placement, so serial work = duration * max parallelism.
  job.total_work = duration * job.MaxParallelism();
  job.total_iterations = std::max(50.0, duration * config_.iters_per_minute);

  // Construct a loss curve that reaches the target exactly at
  // total_iterations: scale = target * (iters + 1)^decay, floor = 0.
  const double decay = app_rng.Uniform(config_.min_decay, config_.max_decay);
  const double scale =
      config_.target_loss * std::pow(job.total_iterations + 1.0, decay);
  job.loss = LossCurve(scale, decay, 0.0);
  return job;
}

StreamedTraceStats WriteGeneratedTrace(const TraceConfig& config,
                                       StreamingTraceWriter& out,
                                       long long max_jobs) {
  TraceGenerator gen(config);
  StreamedTraceStats stats;
  AppSpec app;
  while ((max_jobs <= 0 || stats.jobs < max_jobs) && gen.GenerateNext(app)) {
    out.Append(app);
    ++stats.apps;
    stats.jobs += static_cast<long long>(app.jobs.size());
    stats.last_arrival = app.arrival;
  }
  return stats;
}

}  // namespace themis
