// bench_event_core — event-driven vs pass-stepped main loop at 4096 GPUs.
//
// The perf claim behind the discrete-event core: on a bursty, heavily
// oversubscribed trace (thousands of apps queued behind the cluster, only a
// few hundred holding GPUs at a time) the event engine's walk sets — holder
// apps for progress, dirty tuners, reallocated jobs for projections — stay
// proportional to what actually changed, while the pass-stepped reference
// re-walks every active app each pass. Both engines run the identical gated
// event stream (same passes, same rounds, same floats), so wall-clock ratio
// is a pure per-pass-cost comparison; the bench verifies bit-equality of
// the headline metrics before reporting the speedup.
//
// The workload runs under Tiresias by default, deliberately: the point is
// to measure the simulator core, so the per-round policy work must be
// cheap (a priority sort). Themis' branch-and-bound auction dominates
// wall-clock at this scale (~95% of every pass, see bench_overheads) and
// would mask the loop comparison entirely; engine equivalence across all
// five policies is covered by event_core_test, not this bench.
//
// Env knobs: $THEMIS_BENCH_EVENT_JOBS caps the trace size (default 20000
// jobs), $THEMIS_BENCH_EVENT_EPSILON sets the batched run's window
// (default 3 min), $THEMIS_BENCH_EVENT_POLICY picks the policy. Reports
// wall seconds per engine, the speedup ratios and the event-core counters
// into BENCH_event_core.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_common.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace {

using namespace themis;

/// Stops the stream once `max_jobs` jobs have been injected (same shape as
/// bench_trace_scale's reader, local copy to keep the benches standalone).
class JobCappedReader : public TraceReader {
 public:
  JobCappedReader(std::unique_ptr<TraceReader> inner, long long max_jobs,
                  long long* jobs_out)
      : inner_(std::move(inner)), max_jobs_(max_jobs), jobs_out_(jobs_out) {}

  bool Next(AppSpec& out) override {
    if (max_jobs_ > 0 && *jobs_out_ >= max_jobs_) return false;
    if (!inner_->Next(out)) return false;
    *jobs_out_ += static_cast<long long>(out.jobs.size());
    return true;
  }

 private:
  std::unique_ptr<TraceReader> inner_;
  long long max_jobs_;
  long long* jobs_out_;
};

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::atof(v) : fallback;
}

struct EngineRun {
  ExperimentResult result;
  double wall_sec = 0.0;
  long long jobs = 0;
};

EngineRun RunOnce(const ExperimentConfig& base, const TraceConfig& trace,
                  long long max_jobs, SimEngine engine, Time epsilon) {
  ExperimentConfig config = base;
  config.sim.engine = engine;
  config.sim.auction_epsilon_minutes = epsilon;
  EngineRun run;
  auto reader = std::make_unique<JobCappedReader>(
      std::make_unique<GeneratorTraceReader>(trace), max_jobs, &run.jobs);
  const auto t0 = std::chrono::steady_clock::now();
  run.result = RunStreamingExperiment(config, std::move(reader));
  run.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return run;
}

bool SameHeadline(const ExperimentResult& a, const ExperimentResult& b) {
  return a.max_fairness == b.max_fairness && a.jains_index == b.jains_index &&
         a.avg_completion_time == b.avg_completion_time &&
         a.gpu_time == b.gpu_time && a.unfinished_apps == b.unfinished_apps &&
         a.scheduling_passes == b.scheduling_passes &&
         a.events_processed == b.events_processed &&
         a.rounds_executed == b.rounds_executed &&
         a.finished_apps == b.finished_apps && a.rhos == b.rhos;
}

}  // namespace

int main() {
  const long long max_jobs =
      static_cast<long long>(EnvDouble("THEMIS_BENCH_EVENT_JOBS", 20000));
  const Time epsilon = EnvDouble("THEMIS_BENCH_EVENT_EPSILON", 3.0);

  const char* policy_name = std::getenv("THEMIS_BENCH_EVENT_POLICY");
  ExperimentConfig config;
  // 8 racks x 64 machines x 8 GPUs = 4096 GPUs.
  config.cluster = ClusterSpec::Uniform(8, 64, 8, 4);
  config.policy = PolicyKindFromString(
      (policy_name && *policy_name) ? policy_name : "tiresias");
  config.sim.seed = 42;
  config.sim.metrics.bounded_memory = true;

  // Bursty oversubscription: whole waves of many-job apps land at once
  // (trace_gen --bursty 600:4000), so hundreds of apps are active while
  // the 4096 GPUs can hold only a fraction of them — the regime where the
  // active-set walk is almost all waste.
  TraceConfig trace;
  trace.seed = 42;
  trace.num_apps = 1 << 30;  // the job cap ends the run
  trace.burst_size = 5000;
  trace.burst_gap_minutes = 4000.0;
  // Small apps (few exploration jobs each) so the 20k-job budget yields
  // thousands of simultaneously-active apps — far more than the ~1.3k
  // gangs the cluster can hold, which is what makes the full active-set
  // walk mostly waste.
  trace.jobs_per_app_median = 3.0;
  trace.jobs_per_app_max = 8;

  const EngineRun pass =
      RunOnce(config, trace, max_jobs, SimEngine::kPassStepped, 0.0);
  const EngineRun event =
      RunOnce(config, trace, max_jobs, SimEngine::kEventDriven, 0.0);
  const EngineRun batched =
      RunOnce(config, trace, max_jobs, SimEngine::kEventDriven, epsilon);

  if (!SameHeadline(pass.result, event.result)) {
    std::fprintf(stderr,
                 "bench: event engine diverged from pass-stepped reference\n");
    return 1;
  }

  const double speedup =
      event.wall_sec > 0.0 ? pass.wall_sec / event.wall_sec : 0.0;
  const double speedup_batched =
      batched.wall_sec > 0.0 ? pass.wall_sec / batched.wall_sec : 0.0;

  std::printf("event core: 4096 GPUs, bursty stream (%lld jobs, %zu apps)\n",
              event.jobs, event.result.total_apps);
  std::printf("%-22s %12.2f\n", "pass-stepped wall s", pass.wall_sec);
  std::printf("%-22s %12.2f\n", "event-driven wall s", event.wall_sec);
  std::printf("%-22s %12.2f\n", "event eps-batched s", batched.wall_sec);
  std::printf("%-22s %12.2f\n", "speedup (exact)", speedup);
  std::printf("%-22s %12.2f\n", "speedup (eps batch)", speedup_batched);
  std::printf("%-22s %12d\n", "passes", event.result.scheduling_passes);
  std::printf("%-22s %12d\n", "passes (eps batch)",
              batched.result.scheduling_passes);
  std::printf("%-22s %12lld\n", "events", event.result.events_processed);
  std::printf("%-22s %12lld\n", "rounds", event.result.rounds_executed);
  std::printf("%-22s %12lld\n", "time advances",
              event.result.sim_time_advances);
  std::printf("%-22s %12d\n", "unfinished", event.result.unfinished_apps);

  themis::bench::BenchReport report("event_core");
  report.Config("gpus", 4096.0);
  report.Config("jobs", static_cast<double>(max_jobs));
  report.Config("burst_size", static_cast<double>(trace.burst_size));
  report.Config("burst_gap_minutes", trace.burst_gap_minutes);
  report.Config("epsilon_minutes", epsilon);
  report.Metric("jobs", static_cast<double>(event.jobs));
  report.Metric("apps", static_cast<double>(event.result.total_apps));
  report.Metric("wall_sec_pass", pass.wall_sec);
  report.Metric("wall_sec_event", event.wall_sec);
  report.Metric("wall_sec_event_batched", batched.wall_sec);
  report.Metric("speedup", speedup);
  report.Metric("speedup_batched", speedup_batched);
  report.Metric("passes", event.result.scheduling_passes);
  report.Metric("passes_batched", batched.result.scheduling_passes);
  report.Metric("events_processed", event.result.events_processed);
  report.Metric("rounds_executed", event.result.rounds_executed);
  report.Metric("sim_time_advances", event.result.sim_time_advances);
  report.Metric("unfinished", event.result.unfinished_apps);
  report.Metric("peak_live_apps",
                static_cast<double>(event.result.peak_live_apps));
  report.Write();

  return event.result.unfinished_apps == 0 ? 0 : 1;
}
