// Tests for the themis_arbiterd daemon (src/server/):
//
//   - Loopback equivalence: a daemon on 127.0.0.1 serving scripted AGENT
//     fleets produces a grant stream bit-identical to the in-process
//     ArbiterCore reference, for all five policies.
//   - Slow AGENTs: a session that never bids cannot stall rounds past the
//     bid deadline, and consecutive misses evict it.
//   - Hardening: garbage lines, oversized lines, unknown types, BIDs
//     before HELLO, stale and duplicate BIDs, and mid-round disconnects
//     draw pointed ERROR frames or eviction — never a crash. (CI runs this
//     binary under ASan/UBSan.)
//   - Graceful shutdown: RequestStop drains the in-flight round, CLOSEs
//     every session, and Run() returns 0.
//   - Admission control: sessions beyond max_sessions are refused with a
//     "server-full" ERROR.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <poll.h>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "server/arbiter_core.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/trace_gen.h"

namespace themis {
namespace {

/// Server on its own thread; stops and joins on destruction.
struct DaemonHarness {
  server::ArbiterServer srv;
  std::thread thread;
  int rc = -1;

  explicit DaemonHarness(server::ServerConfig config) : srv(std::move(config)) {}

  ~DaemonHarness() {
    srv.RequestStop();
    Join();
  }

  bool Start() {
    std::string err;
    if (!srv.Start(&err)) {
      ADD_FAILURE() << "server start: " << err;
      return false;
    }
    thread = std::thread([this] { rc = srv.Run(); });
    return true;
  }

  int Join() {
    if (thread.joinable()) thread.join();
    return rc;
  }
};

std::vector<AppSpec> SampleApps(int n, std::uint64_t seed = 7) {
  TraceConfig trace;
  trace.num_apps = n;
  trace.seed = seed;
  return TraceGenerator(trace).Generate();
}

std::vector<server::AgentScript> Partition(const std::vector<AppSpec>& apps,
                                           int num_agents) {
  std::vector<server::AgentScript> scripts(num_agents);
  for (std::size_t a = 0; a < apps.size(); ++a)
    scripts[a * static_cast<std::size_t>(num_agents) / apps.size()]
        .apps.push_back(apps[a]);
  for (int i = 0; i < num_agents; ++i)
    scripts[i].name = "agent-" + std::to_string(i);
  return scripts;
}

/// Raw blocking-socket client for protocol-hardening tests: speaks bytes,
/// not the ArbiterClient conveniences, so it can misbehave on purpose.
struct RawClient {
  net::UniqueFd fd;
  net::LineReader reader;

  bool Connect(int port) {
    std::string err;
    fd.reset(net::TcpConnect("127.0.0.1", port, &err));
    if (!fd.valid()) ADD_FAILURE() << "connect: " << err;
    return fd.valid();
  }

  bool SendLine(const std::string& frame) {
    std::string line = frame;
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
      const long w =
          net::SendSome(fd.get(), line.data() + off, line.size() - off);
      if (w < 0) return false;
      off += static_cast<std::size_t>(w);
    }
    return true;
  }

  /// Next frame within `timeout_ms`; fails the test on timeout/EOF unless
  /// `expect_eof`, in which case EOF returns false without failing.
  bool ReadMessage(net::WireMessage* msg, int timeout_ms = 10000,
                   bool expect_eof = false) {
    std::string line;
    for (;;) {
      if (reader.NextLine(line)) {
        if (line.empty()) continue;
        try {
          *msg = net::ParseWireMessage(line);
        } catch (const net::WireError& e) {
          ADD_FAILURE() << "bad server frame: " << e.what();
          return false;
        }
        return true;
      }
      pollfd pfd{fd.get(), POLLIN, 0};
      const int n = poll(&pfd, 1, timeout_ms);
      if (n <= 0) {
        if (!expect_eof) ADD_FAILURE() << "timed out waiting for a frame";
        return false;
      }
      char buf[16384];
      const long r = net::RecvSome(fd.get(), buf, sizeof buf);
      if (r < 0) {
        if (!expect_eof) ADD_FAILURE() << "connection closed";
        return false;
      }
      if (r > 0 && !reader.Feed(buf, static_cast<std::size_t>(r))) {
        ADD_FAILURE() << "oversized frame from server";
        return false;
      }
    }
  }

  /// Read until a frame of `type` arrives (skipping others).
  bool ReadUntil(net::MsgType type, net::WireMessage* msg,
                 int timeout_ms = 10000) {
    while (ReadMessage(msg, timeout_ms)) {
      if (msg->type == type) return true;
    }
    return false;
  }
};

server::ServerConfig SmallConfig() {
  server::ServerConfig config;
  config.arbiter.cluster = ClusterSpec::Uniform(2, 4, 4, 2);  // 32 GPUs
  return config;
}

// ---------------------------------------------------------------------------
// Loopback equivalence: daemon-served grant stream == in-process reference,
// for every policy.
// ---------------------------------------------------------------------------

class LoopbackEquivalence : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(LoopbackEquivalence, DaemonMatchesInProcessCore) {
  const int kAgents = 4;
  const std::uint64_t kRounds = 30;
  server::ServerConfig config = SmallConfig();
  config.arbiter.policy = GetParam();
  config.min_agents = kAgents;
  config.max_rounds = kRounds;

  const std::vector<AppSpec> apps = SampleApps(12);
  const std::vector<server::AgentScript> scripts = Partition(apps, kAgents);

  DaemonHarness daemon(config);
  ASSERT_TRUE(daemon.Start());
  const server::FleetResult fleet =
      server::RunScriptedAgents("127.0.0.1", daemon.srv.port(), scripts);
  ASSERT_TRUE(fleet.ok) << fleet.error;
  EXPECT_EQ(daemon.Join(), 0);
  EXPECT_GT(fleet.grants_received, 0u);

  server::ArbiterCore reference(config.arbiter);
  for (const server::AgentScript& s : scripts)
    for (const AppSpec& spec : s.apps) reference.RegisterApp(spec);
  while (reference.rounds_run() < fleet.last_round_seen)
    reference.RunOneRound();

  EXPECT_TRUE(reference.digest() == fleet.digest)
      << ToString(GetParam()) << ": daemon " << fleet.digest.hash << "/"
      << fleet.digest.grants << " vs in-process " << reference.digest().hash
      << "/" << reference.digest().grants;
  // The daemon side must agree with its own core too (grants are routed,
  // not recomputed).
  EXPECT_TRUE(daemon.srv.core().digest() == fleet.digest);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, LoopbackEquivalence,
                         ::testing::Values(PolicyKind::kThemis,
                                           PolicyKind::kGandiva,
                                           PolicyKind::kTiresias,
                                           PolicyKind::kSlaq,
                                           PolicyKind::kDrf),
                         [](const auto& info) {
                           return std::string(ToString(info.param));
                         });

// ---------------------------------------------------------------------------
// Slow AGENTs and deadlines.
// ---------------------------------------------------------------------------

TEST(Daemon, SlowAgentCannotStallRoundsAndIsEvicted) {
  const int kAgents = 4;
  server::ServerConfig config = SmallConfig();
  config.min_agents = kAgents;
  config.max_rounds = 10;
  config.bid_timeout_ms = 150;
  config.max_missed_deadlines = 2;

  const std::vector<server::AgentScript> scripts =
      Partition(SampleApps(8), kAgents);
  DaemonHarness daemon(config);
  ASSERT_TRUE(daemon.Start());
  // Every 2nd AGENT (0 and 2) registers but never bids.
  const server::FleetResult fleet = server::RunScriptedAgents(
      "127.0.0.1", daemon.srv.port(), scripts, /*mute_every=*/2);
  ASSERT_TRUE(fleet.ok) << fleet.error;
  EXPECT_EQ(daemon.Join(), 0);

  const server::ServerStats& st = daemon.srv.stats();
  EXPECT_EQ(st.rounds, 10u);
  EXPECT_GT(st.bid_deadline_misses, 0u);
  EXPECT_GE(st.sessions_evicted, 2u);  // both mutes, after 2 misses each
  // The deadline bounds every round: generous slack for loaded CI hosts,
  // but nowhere near a stall (a stalled round would block forever). 10
  // rounds fit the reservoir, so the sample is the complete population.
  ASSERT_EQ(st.round_latency_ms.count(), st.rounds);
  for (double ms : st.round_latency_ms.items())
    EXPECT_LT(ms, config.bid_timeout_ms + 2000.0);
  // At least one round actually waited out the deadline.
  EXPECT_GE(st.round_latency_summary.max(), config.bid_timeout_ms * 0.9);
  EXPECT_LT(st.round_latency_summary.max(), config.bid_timeout_ms + 2000.0);
}

// ---------------------------------------------------------------------------
// Protocol hardening against misbehaving peers.
// ---------------------------------------------------------------------------

TEST(Daemon, GarbageLineDrawsBadFrameAndEviction) {
  DaemonHarness daemon(SmallConfig());
  ASSERT_TRUE(daemon.Start());
  RawClient c;
  ASSERT_TRUE(c.Connect(daemon.srv.port()));
  ASSERT_TRUE(c.SendLine("this is not json"));
  net::WireMessage msg;
  ASSERT_TRUE(c.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kError);
  EXPECT_EQ(msg.code, "bad-frame");
  // The session is evicted: CLOSE or EOF follows.
  while (c.ReadMessage(&msg, 2000, /*expect_eof=*/true)) {
    if (msg.type == net::MsgType::kClose) break;
  }
}

TEST(Daemon, UnknownTypeDrawsBadFrame) {
  DaemonHarness daemon(SmallConfig());
  ASSERT_TRUE(daemon.Start());
  RawClient c;
  ASSERT_TRUE(c.Connect(daemon.srv.port()));
  ASSERT_TRUE(c.SendLine("{\"type\":\"teapot\"}"));
  net::WireMessage msg;
  ASSERT_TRUE(c.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kError);
  EXPECT_EQ(msg.code, "bad-frame");
}

TEST(Daemon, OversizedLineDrawsFrameTooLong) {
  server::ServerConfig config = SmallConfig();
  config.max_line_bytes = 512;
  DaemonHarness daemon(config);
  ASSERT_TRUE(daemon.Start());
  RawClient c;
  ASSERT_TRUE(c.Connect(daemon.srv.port()));
  ASSERT_TRUE(c.SendLine(std::string(1024, 'x')));
  net::WireMessage msg;
  ASSERT_TRUE(c.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kError);
  EXPECT_EQ(msg.code, "frame-too-long");
}

TEST(Daemon, BidBeforeHelloIsAProtocolError) {
  DaemonHarness daemon(SmallConfig());
  ASSERT_TRUE(daemon.Start());
  RawClient c;
  ASSERT_TRUE(c.Connect(daemon.srv.port()));
  ASSERT_TRUE(c.SendLine(net::EncodeBid(1, {})));
  net::WireMessage msg;
  ASSERT_TRUE(c.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kError);
  EXPECT_EQ(msg.code, "protocol");
}

TEST(Daemon, StaleAndDuplicateBidsAreToleratedWithoutEviction) {
  server::ServerConfig config = SmallConfig();
  config.min_agents = 2;
  config.bid_timeout_ms = 10000;  // never hit; rounds close on bids
  DaemonHarness daemon(config);
  ASSERT_TRUE(daemon.Start());

  // `holdout` withholds its BID, pinning the round open: with a lone
  // bidder the round would complete the instant its first BID landed, and
  // whether a back-to-back second BID reads as duplicate or stale would
  // race the server's read batching.
  RawClient c, holdout;
  ASSERT_TRUE(c.Connect(daemon.srv.port()));
  ASSERT_TRUE(c.SendLine(net::EncodeHello("raw", SampleApps(1, 7))));
  net::WireMessage msg;
  ASSERT_TRUE(c.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kWelcome);
  const AppId app = msg.app_ids.at(0);

  ASSERT_TRUE(holdout.Connect(daemon.srv.port()));
  ASSERT_TRUE(holdout.SendLine(net::EncodeHello("holdout", SampleApps(1, 8))));
  ASSERT_TRUE(holdout.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kWelcome);
  const AppId holdout_app = msg.app_ids.at(0);

  ASSERT_TRUE(c.ReadUntil(net::MsgType::kOffer, &msg));
  const std::uint64_t round = msg.offer.round_id;
  ASSERT_TRUE(holdout.ReadUntil(net::MsgType::kOffer, &msg));

  // A BID for a round that is not the open one: stale, no eviction.
  ASSERT_TRUE(c.SendLine(net::EncodeBid(round + 999, {{app, 4}})));
  ASSERT_TRUE(c.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kError);
  EXPECT_EQ(msg.code, "stale-bid");

  // The real BID lands; answering the still-open round a second time is a
  // duplicate — pointed ERROR, no eviction.
  ASSERT_TRUE(c.SendLine(net::EncodeBid(round, {{app, 4}})));
  ASSERT_TRUE(c.SendLine(net::EncodeBid(round, {{app, 4}})));
  ASSERT_TRUE(c.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kError);
  EXPECT_EQ(msg.code, "duplicate-bid");

  // The holdout's BID closes the round: the GRANT reaches `c`, and the
  // next OFFER proves the session is still served after both errors.
  ASSERT_TRUE(holdout.SendLine(net::EncodeBid(round, {{holdout_app, 4}})));
  ASSERT_TRUE(c.ReadUntil(net::MsgType::kGrant, &msg));
  EXPECT_EQ(msg.grants.round_id, round);
  ASSERT_TRUE(c.ReadUntil(net::MsgType::kOffer, &msg));  // still served
}

TEST(Daemon, MidRoundDisconnectEvictsWithoutStallingOthers) {
  server::ServerConfig config = SmallConfig();
  config.min_agents = 2;
  config.bid_timeout_ms = 300;
  DaemonHarness daemon(config);
  ASSERT_TRUE(daemon.Start());

  RawClient a, b;
  ASSERT_TRUE(a.Connect(daemon.srv.port()));
  ASSERT_TRUE(a.SendLine(net::EncodeHello("a", SampleApps(1, 7))));
  net::WireMessage msg;
  ASSERT_TRUE(a.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kWelcome);
  const AppId app_a = msg.app_ids.at(0);

  ASSERT_TRUE(b.Connect(daemon.srv.port()));
  ASSERT_TRUE(b.SendLine(net::EncodeHello("b", SampleApps(1, 8))));
  ASSERT_TRUE(b.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kWelcome);

  // Both get the OFFER; b vanishes mid-round without a word.
  ASSERT_TRUE(a.ReadUntil(net::MsgType::kOffer, &msg));
  const std::uint64_t round = msg.offer.round_id;
  ASSERT_TRUE(b.ReadUntil(net::MsgType::kOffer, &msg));
  b.fd.reset();

  ASSERT_TRUE(a.SendLine(net::EncodeBid(round, {{app_a, 4}})));
  // a keeps being served across the boundary that evicts b's app.
  ASSERT_TRUE(a.ReadUntil(net::MsgType::kGrant, &msg));
  ASSERT_TRUE(a.ReadUntil(net::MsgType::kOffer, &msg));
  EXPECT_GT(msg.offer.round_id, round);
}

TEST(Daemon, SilentPreHelloSessionIsEvictedAtHandshakeDeadline) {
  server::ServerConfig config = SmallConfig();
  config.hello_timeout_ms = 200;
  DaemonHarness daemon(config);
  ASSERT_TRUE(daemon.Start());
  RawClient c;
  ASSERT_TRUE(c.Connect(daemon.srv.port()));
  // Send nothing: the handshake deadline must evict us with a pointed
  // ERROR and a CLOSE, not hold the slot forever.
  net::WireMessage msg;
  ASSERT_TRUE(c.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kError);
  EXPECT_EQ(msg.code, "hello-timeout");
  bool saw_close = false;
  while (c.ReadMessage(&msg, 2000, /*expect_eof=*/true)) {
    if (msg.type == net::MsgType::kClose) {
      saw_close = true;
      break;
    }
  }
  EXPECT_TRUE(saw_close);
}

TEST(Daemon, HandshakeTimeoutFreesSessionSlotsForRealAgents) {
  server::ServerConfig config = SmallConfig();
  config.max_sessions = 1;
  config.hello_timeout_ms = 150;
  DaemonHarness daemon(config);
  ASSERT_TRUE(daemon.Start());

  // An idle connection takes the only slot and never speaks.
  RawClient idle;
  ASSERT_TRUE(idle.Connect(daemon.srv.port()));
  net::WireMessage msg;
  ASSERT_TRUE(idle.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kError);
  EXPECT_EQ(msg.code, "hello-timeout");
  // Wait for the server-side close so the slot is certainly reaped.
  while (idle.ReadMessage(&msg, 5000, /*expect_eof=*/true)) {
  }

  // A real AGENT can now take the freed slot and register.
  RawClient real;
  ASSERT_TRUE(real.Connect(daemon.srv.port()));
  ASSERT_TRUE(real.SendLine(net::EncodeHello("real", SampleApps(1))));
  ASSERT_TRUE(real.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kWelcome);
}

TEST(Daemon, AdmissionControlRefusesBeyondMaxSessions) {
  server::ServerConfig config = SmallConfig();
  config.max_sessions = 1;
  DaemonHarness daemon(config);
  ASSERT_TRUE(daemon.Start());

  RawClient first, second;
  ASSERT_TRUE(first.Connect(daemon.srv.port()));
  ASSERT_TRUE(first.SendLine(net::EncodeHello("one", SampleApps(1))));
  net::WireMessage msg;
  ASSERT_TRUE(first.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kWelcome);

  ASSERT_TRUE(second.Connect(daemon.srv.port()));
  ASSERT_TRUE(second.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kError);
  EXPECT_EQ(msg.code, "server-full");
  // The refused socket is closed server-side.
  EXPECT_FALSE(second.ReadMessage(&msg, 2000, /*expect_eof=*/true));
}

// ---------------------------------------------------------------------------
// Graceful shutdown.
// ---------------------------------------------------------------------------

TEST(Daemon, RequestStopDrainsSendsCloseAndExitsZero) {
  server::ServerConfig config = SmallConfig();
  config.bid_timeout_ms = 100;  // idle client: rounds settle at the deadline
  DaemonHarness daemon(config);
  ASSERT_TRUE(daemon.Start());

  RawClient c;
  ASSERT_TRUE(c.Connect(daemon.srv.port()));
  ASSERT_TRUE(c.SendLine(net::EncodeHello("stopper", SampleApps(1))));
  net::WireMessage msg;
  ASSERT_TRUE(c.ReadMessage(&msg));
  ASSERT_EQ(msg.type, net::MsgType::kWelcome);

  daemon.srv.RequestStop();
  bool saw_close = false;
  while (c.ReadMessage(&msg, 10000, /*expect_eof=*/true)) {
    if (msg.type == net::MsgType::kClose) {
      EXPECT_EQ(msg.reason, "shutdown");
      saw_close = true;
      break;
    }
  }
  EXPECT_TRUE(saw_close);
  EXPECT_EQ(daemon.Join(), 0);
}

// ---------------------------------------------------------------------------
// The in-process core itself.
// ---------------------------------------------------------------------------

TEST(ArbiterCore, RunsAreDeterministic) {
  server::ArbiterConfig config;
  config.cluster = ClusterSpec::Uniform(2, 4, 4, 2);
  const std::vector<AppSpec> apps = SampleApps(6);

  net::GrantDigest digests[2];
  for (int run = 0; run < 2; ++run) {
    server::ArbiterCore core(config);
    for (const AppSpec& spec : apps) core.RegisterApp(spec);
    for (int i = 0; i < 25; ++i) core.RunOneRound();
    digests[run] = core.digest();
  }
  EXPECT_TRUE(digests[0] == digests[1]);
  EXPECT_GT(digests[0].grants, 0);
}

TEST(ArbiterCore, RejectsMutationMidRound) {
  server::ArbiterConfig config;
  config.cluster = ClusterSpec::Uniform(1, 2, 4, 2);
  server::ArbiterCore core(config);
  const std::vector<AppSpec> apps = SampleApps(2);
  const AppId first = core.RegisterApp(apps[0]);
  const server::RoundStart start = core.BeginRound();
  ASSERT_TRUE(start.have_offer);
  EXPECT_THROW(core.RegisterApp(apps[1]), std::logic_error);
  EXPECT_THROW(core.RemoveApp(first), std::logic_error);
  EXPECT_THROW(core.BeginRound(), std::logic_error);
  core.FinishRound(start.offer);  // settles; mutations legal again
  core.RegisterApp(apps[1]);
}

}  // namespace
}  // namespace themis
