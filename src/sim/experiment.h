// Experiment harness shared by the benchmark binaries, the examples and the
// integration tests: builds a cluster + trace + policy, runs the simulator,
// and returns the metric summaries the paper's figures report.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/themis_policy.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace themis {

enum class PolicyKind { kThemis, kGandiva, kTiresias, kSlaq, kDrf };

const char* ToString(PolicyKind kind);
/// Case-insensitive inverse of ToString ("themis", "drf", ...). Throws
/// std::runtime_error on unknown names; shared by the CLI and scenario JSON.
PolicyKind PolicyKindFromString(const std::string& name);
std::unique_ptr<ISchedulerPolicy> MakePolicy(PolicyKind kind,
                                             ThemisConfig themis_config = {});

struct ExperimentConfig {
  ClusterSpec cluster = ClusterSpec::Simulation256();
  TraceConfig trace;
  SimConfig sim;
  PolicyKind policy = PolicyKind::kThemis;
  ThemisConfig themis;
};

struct ExperimentResult {
  std::string policy_name;
  double max_fairness = 0.0;
  double median_fairness = 0.0;
  double min_fairness = 0.0;
  double jains_index = 0.0;
  double avg_completion_time = 0.0;
  Work gpu_time = 0.0;
  double peak_contention = 0.0;
  int unfinished_apps = 0;
  int machine_failures = 0;
  int scheduling_passes = 0;
  /// Event-core efficiency counters (see SimResult); summed across shards
  /// by the federation layer. Not part of SweepCsv, whose columns are
  /// pinned.
  long long events_processed = 0;
  long long rounds_executed = 0;
  long long sim_time_advances = 0;
  /// AppIds of the finished apps, aligned index-for-index with the per-app
  /// vectors below (unfinished apps have no record); ascending. The
  /// federation layer uses these to stitch shard results back into global
  /// app order.
  std::vector<AppId> finished_apps;
  std::vector<double> rhos;
  std::vector<double> completion_times;
  std::vector<double> placement_scores;
  std::vector<AllocationSample> timeline;
  /// Apps seen end to end / peak simultaneously-resident AppStates (see
  /// SimResult). Not part of SweepCsv, whose columns are pinned.
  std::size_t total_apps = 0;
  std::size_t peak_live_apps = 0;
};

/// Generate the trace from `config.trace`, run one simulation, summarize.
ExperimentResult RunExperiment(const ExperimentConfig& config);

/// Run with a pre-built app list (used by the Fig. 8 hand-picked scenario
/// and the federation shards). `round_observer`, when set, sees every
/// (offer, grants) round of the run.
ExperimentResult RunExperimentWithApps(
    const ExperimentConfig& config, std::vector<AppSpec> apps,
    Simulator::RoundObserver round_observer = {});

/// Run with a streamed workload: apps are injected as the reader advances
/// and retired as they finish (`retire_finished_apps` is forced on), so
/// memory tracks concurrent apps — the million-job replay path. Combine
/// with `config.sim.metrics.bounded_memory` for constant-memory metrics.
ExperimentResult RunStreamingExperiment(const ExperimentConfig& config,
                                        std::unique_ptr<TraceReader> trace);

/// The testbed-scale configuration of Sec. 8.3: 50-GPU cluster, durations
/// scaled down 5x, same inter-arrival distribution.
ExperimentConfig TestbedScaleConfig(PolicyKind policy, std::uint64_t seed = 42,
                                    int num_apps = 60);

/// The simulator-scale configuration of Sec. 8.1/8.2: 256-GPU heterogeneous
/// cluster, mean inter-arrival 20 min.
ExperimentConfig SimScaleConfig(PolicyKind policy, std::uint64_t seed = 42,
                                int num_apps = 80);

// ---------------------------------------------------------------------------
// Scenario sweeps: one named experiment per ScenarioSpec, many of them run
// in parallel on a thread pool. Each simulation is self-contained (own RNGs,
// own metrics), so parallel execution is bit-identical to serial execution.
// ---------------------------------------------------------------------------

/// One experiment in a sweep: topology + trace + policy + knobs, optionally
/// replaying an archived CSV trace instead of generating one. JSON loading
/// lives in sim/scenario.h.
struct ScenarioSpec {
  std::string name;
  ExperimentConfig config;
  /// When non-empty, load apps from this WriteTraceCsv archive instead of
  /// generating from config.trace.
  std::string trace_csv;
  /// When non-empty, *stream* this archive through RunStreamingExperiment
  /// (arrival-sorted input required; finished apps retired eagerly).
  /// Mutually exclusive with trace_csv.
  std::string trace_file;
};

/// Outcome of one scenario. A scenario that throws (bad trace file, invalid
/// SimConfig) reports `ok == false` with the message instead of tearing down
/// the whole sweep.
struct ScenarioRun {
  std::string name;
  ExperimentResult result;
  bool ok = false;
  std::string error;

  /// The result, or std::runtime_error("<name>: <error>") when the scenario
  /// failed — for callers that treat any failure in the sweep as fatal.
  const ExperimentResult& ResultOrThrow() const;
};

/// Deterministic per-scenario seed: splitmix64 of the base seed and the
/// scenario's position, so grids get decorrelated-but-reproducible streams
/// regardless of sweep size or thread count.
std::uint64_t DeriveScenarioSeed(std::uint64_t base_seed, std::size_t index);

/// Expand a policy x seed grid over a base config. Scenario (p, s) is named
/// "<policy>/seed<seed>" and runs the base config with trace.seed and
/// sim.seed both set to `s`.
std::vector<ScenarioSpec> PolicySeedGrid(const ExperimentConfig& base,
                                         const std::vector<PolicyKind>& policies,
                                         const std::vector<std::uint64_t>& seeds);

/// Run `fn(0..n-1)` across up to `num_threads` executors (0 = hardware
/// concurrency) on the shared process pool (common/parallel.h), each
/// claiming the next unstarted index — no threads are spawned per call.
/// Shared by SweepRunner (scenario grids) and ShardedArbiter
/// (parallel shard rounds); callers write results into per-index slots, so
/// the outcome is independent of scheduling order.
void RunParallel(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int num_threads = 0);

/// Thread-pooled scenario runner. Results come back in input order; a
/// num_threads of 0 uses the hardware concurrency.
class SweepRunner {
 public:
  explicit SweepRunner(int num_threads = 0) : num_threads_(num_threads) {}

  std::vector<ScenarioRun> Run(const std::vector<ScenarioSpec>& scenarios) const;

 private:
  int num_threads_;
};

/// Write one CSV row per ScenarioRun (header + name, policy, metric
/// summary, ok/error) so scenario grids feed plotting directly. Fields
/// containing commas/quotes/newlines are quoted. Throws std::runtime_error
/// when the file cannot be written.
void WriteSweepCsv(const std::string& path,
                   const std::vector<ScenarioRun>& runs);

/// The CSV text WriteSweepCsv emits (exposed for tests and embedders).
std::string SweepCsv(const std::vector<ScenarioRun>& runs);

}  // namespace themis
