// Federated scheduling at the 512-machine / 4096-GPU topology: throughput
// and fairness of the ShardedArbiter vs shard count.
//
// One fixed trace is routed across 1 / 2 / 4 / 8 ARBITER shards
// (core/federation.h). Each shard runs its own offer -> bid -> grant rounds
// over its machine partition, shards simulate in parallel on the sweep
// thread pool, and the merged result is audited for the cross-shard
// invariants (no GPU granted by two shards, no out-of-range grant). The
// interesting trade: more shards mean smaller per-round auctions (the PA
// solve and bid tables shrink with the shard's machine count) and parallel
// rounds — against coarser global fairness, since rho is only equalized
// within a shard.
//
//   THEMIS_BENCH_MACHINES  topology size (default 512 machines x 8 GPUs)
//   THEMIS_BENCH_APPS      trace size   (default 192 apps)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/federation.h"

namespace {

using namespace themis;

int EnvInt(const char* name, int fallback) {
  if (const char* v = std::getenv(name); v && *v) {
    const int parsed = std::atoi(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

}  // namespace

int main() {
  const int machines = EnvInt("THEMIS_BENCH_MACHINES", 512);
  const int num_apps = EnvInt("THEMIS_BENCH_APPS", 192);
  const ClusterSpec topology = bench::ChurnSweepTopology(machines, 8);

  ExperimentConfig config;
  config.cluster = topology;
  config.policy = PolicyKind::kThemis;
  config.trace.seed = 42;
  config.trace.num_apps = num_apps;
  config.trace.contention_factor = 2.0;
  config.sim.seed = 42;
  config.sim.lease_minutes = 20.0;

  std::vector<AppSpec> apps = TraceGenerator(config.trace).Generate();

  std::printf("Federated Themis at %d machines / %d GPUs, %zu apps\n\n",
              topology.TotalMachines(), topology.TotalGpus(), apps.size());
  std::printf("%-8s %10s %10s %12s %10s %8s %8s %8s\n", "shards", "wall_ms",
              "rounds", "rounds/sec", "max_rho", "jain", "unfin", "dblgrant");

  bench::BenchReport report("federation_shards", 42);
  report.Config("machines", topology.TotalMachines());
  report.Config("gpus", topology.TotalGpus());
  report.Config("apps", static_cast<double>(apps.size()));
  report.Config("policy", "themis");

  bool ok = true;
  for (const int shards : {1, 2, 4, 8}) {
    if (shards > topology.TotalMachines()) break;
    ShardedArbiter arbiter(topology, shards);
    const auto start = std::chrono::steady_clock::now();
    const FederationResult fed = arbiter.Run(config, apps);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    const double rounds_per_sec =
        wall_ms > 0.0 ? 1000.0 * static_cast<double>(fed.total_rounds) /
                            wall_ms
                      : 0.0;

    std::printf("%-8d %10.0f %10lld %12.1f %10.2f %8.3f %8d %8d\n", shards,
                wall_ms, fed.total_rounds, rounds_per_sec,
                fed.merged.max_fairness, fed.merged.jains_index,
                fed.merged.unfinished_apps, fed.cross_shard_double_grants);

    std::string tag = "@";
    tag += std::to_string(shards);
    tag += "shards";
    report.Metric("wall_ms" + tag, wall_ms);
    report.Metric("passes_per_sec" + tag, rounds_per_sec);
    report.Metric("max_rho" + tag, fed.merged.max_fairness);
    report.Metric("jain" + tag, fed.merged.jains_index);
    report.Metric("unfinished" + tag, fed.merged.unfinished_apps);
    report.Metric("cross_shard_double_grants" + tag,
                  fed.cross_shard_double_grants);
    if (fed.cross_shard_double_grants != 0 || fed.out_of_range_grants != 0) {
      std::fprintf(stderr, "bench: cross-shard grant invariant violated\n");
      ok = false;
    }
    if (fed.merged.unfinished_apps != 0) {
      std::fprintf(stderr, "bench: %d apps unfinished at %d shards\n",
                   fed.merged.unfinished_apps, shards);
      ok = false;
    }
  }

  if (!report.Write()) ok = false;
  return ok ? 0 : 1;
}
