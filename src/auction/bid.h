// Bid representation for THEMIS auctions (Sec. 5.1 "Inputs: Resource offer,
// and bids").
//
// The ARBITER offers a resource vector R-> whose dimensions are the free GPU
// counts per machine. Each participating app answers with one bid: a
// valuation table with a row per candidate allocation. A row holds the
// requested GPUs per machine and the app's estimated new finish-time fairness
// metric rho if granted that subset (assuming all GPUs, existing plus new,
// are kept until the app completes).
//
// The mechanism needs a "higher is better" valuation that is homogeneous of
// degree one; we use V = 1 / rho (see DESIGN.md): scaling an allocation k-fold
// on the same machines divides rho by k and therefore multiplies V by k.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace themis {

struct BidRow {
  /// Requested free GPUs per machine; same dimensionality as the offer.
  std::vector<int> gpus_per_machine;
  /// Estimated finish-time fairness metric with this allocation added.
  double rho = kUnboundedRho;

  int TotalGpus() const;
  bool IsZero() const;
  /// Mechanism valuation V = 1/rho (> 0 because rho is finite and positive).
  double Value() const;
};

struct BidTable {
  AppId app = kNoApp;
  /// Row 0 must be the zero allocation carrying the app's *current* rho; the
  /// mechanism uses it when the app wins nothing.
  std::vector<BidRow> rows;

  const BidRow& ZeroRow() const { return rows.front(); }
};

/// Validation used at the ARBITER boundary: rows fit the offer, include a
/// zero row first, and valuations weakly improve with more resources.
/// Returns an empty string when valid, else a description of the violation.
std::string ValidateBid(const BidTable& bid, const std::vector<int>& offered);

}  // namespace themis
