// Tests for core/round.h: the offer/bid/grant round protocol.
//
//   - FreePool: ordered O(1)-removal view semantics.
//   - Staging: RunRound never touches the cluster; ApplyGrants is the single
//     lease-application path and rejects double application.
//   - Equivalence: for all five policies at fixed seeds, driving rounds
//     through the legacy ISchedulerPolicy::Schedule adapter (which applies
//     grants inside the round) reproduces the simulator's native
//     RunRound + ApplyGrants path bit-identically — the guarantee that the
//     protocol redesign preserved every scheduling decision.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/drf.h"
#include "baselines/gandiva.h"
#include "baselines/slaq.h"
#include "baselines/tiresias.h"
#include "core/themis_policy.h"
#include "sim/experiment.h"

namespace themis {
namespace {

TEST(FreePool, IteratesAscendingAndTracksPerMachine) {
  Topology topo(ClusterSpec::Uniform(1, 2, 4, 2));  // 2 machines x 4 GPUs
  FreePool pool({0, 2, 3, 5, 7}, topo);
  EXPECT_EQ(pool.size(), 5);
  EXPECT_EQ(pool.ToVector(), (std::vector<GpuId>{0, 2, 3, 5, 7}));
  EXPECT_EQ(pool.per_machine(), (std::vector<int>{3, 2}));
  EXPECT_TRUE(pool.Contains(3));
  EXPECT_FALSE(pool.Contains(1));
  EXPECT_FALSE(pool.Contains(kNoGpu));
}

TEST(FreePool, RemoveRelinksNeighborsAndCounts) {
  Topology topo(ClusterSpec::Uniform(1, 2, 4, 2));
  FreePool pool({0, 2, 3, 5, 7}, topo);
  pool.Remove(3);
  EXPECT_EQ(pool.ToVector(), (std::vector<GpuId>{0, 2, 5, 7}));
  pool.Remove(0);  // head
  EXPECT_EQ(pool.First(), 2u);
  pool.Remove(7);  // tail
  EXPECT_EQ(pool.ToVector(), (std::vector<GpuId>{2, 5}));
  EXPECT_EQ(pool.per_machine(), (std::vector<int>{1, 1}));
  EXPECT_THROW(pool.Remove(3), std::logic_error);
  pool.Remove(2);
  pool.Remove(5);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.First(), kNoGpu);
  EXPECT_EQ(pool.FirstN(4), std::vector<GpuId>{});
}

TEST(FreePool, FirstNTakesThePrefix) {
  Topology topo(ClusterSpec::Uniform(1, 1, 8, 2));
  FreePool pool({1, 2, 4, 6}, topo);
  EXPECT_EQ(pool.FirstN(3), (std::vector<GpuId>{1, 2, 4}));
  EXPECT_EQ(pool.FirstN(9), (std::vector<GpuId>{1, 2, 4, 6}));
}

// ---------------------------------------------------------------------------
// Staging semantics.
// ---------------------------------------------------------------------------

JobSpec RoundJobSpec(double work, int num_tasks, int gpus_per_task) {
  JobSpec spec;
  spec.total_work = work;
  spec.total_iterations = 1000.0;
  spec.num_tasks = num_tasks;
  spec.gpus_per_task = gpus_per_task;
  spec.model = ModelByName("ResNet50");
  spec.loss = LossCurve(0.1 * std::pow(1001.0, 0.6), 0.6, 0.0);
  return spec;
}

std::unique_ptr<AppState> RoundApp(AppId id, std::vector<JobSpec> jobs) {
  auto app = std::make_unique<AppState>();
  app->id = id;
  app->spec.arrival = 0.0;
  app->spec.target_loss = 0.1;
  app->spec.jobs = jobs;
  app->arrived = true;
  JobId next = 0;
  for (const JobSpec& js : jobs) {
    JobState job;
    job.id = next++;
    job.spec = js;
    job.parallelism_cap = js.MaxParallelism();
    app->jobs.push_back(std::move(job));
  }
  app->ideal_time = std::max(1e-9, app->spec.IdealRunningTime());
  return app;
}

TEST(RoundProtocol, RunRoundStagesWithoutTouchingTheCluster) {
  Cluster cluster(ClusterSpec::Uniform(2, 2, 4, 2));
  auto app = RoundApp(0, {RoundJobSpec(40.0, 2, 4)});
  AppList list{app.get()};
  WorkEstimator est({});
  Rng rng(1);

  const ResourceOffer offer = MakeOffer(7, 5.0, 20.0, cluster);
  EXPECT_EQ(offer.TotalGpus(), 16);
  EXPECT_EQ(offer.free_per_machine, cluster.FreeGpusPerMachine());

  SchedulerContext ctx(offer, &cluster, &est, &list, &rng);
  ThemisPolicy policy;
  const GrantSet grants = policy.RunRound(offer, ctx);

  // The round carries the offer's identity and lease terms.
  EXPECT_EQ(grants.round_id, 7u);
  EXPECT_DOUBLE_EQ(grants.lease_expiry, 25.0);
  // The job recorded its gang (the AGENT side)...
  EXPECT_EQ(app->GpusHeld(), 8);
  EXPECT_EQ(grants.TotalGpus(), 8);
  // ...but no lease exists until ApplyGrants (the ARBITER side).
  EXPECT_EQ(cluster.num_allocated(), 0);

  EXPECT_EQ(ApplyGrants(grants, cluster), 8);
  EXPECT_EQ(cluster.num_allocated(), 8);
  for (const Grant& g : grants.grants)
    for (GpuId gpu : g.gpus) {
      ASSERT_FALSE(cluster.IsFree(gpu));
      EXPECT_EQ(cluster.lease(gpu)->app, g.app);
      EXPECT_EQ(cluster.lease(gpu)->job, g.job);
      EXPECT_DOUBLE_EQ(cluster.lease(gpu)->expiry, 25.0);
    }

  // Double application would double-grant; the cluster rejects it.
  EXPECT_THROW(ApplyGrants(grants, cluster), std::exception);
}

TEST(RoundProtocol, ContextRejectsGrantsOutsideTheOffer) {
  Cluster cluster(ClusterSpec::Uniform(1, 1, 4, 2));
  cluster.Allocate(0, 9, 0, 100.0);  // GPU 0 is not in the offer
  auto app = RoundApp(0, {RoundJobSpec(40.0, 1, 1)});
  AppList list{app.get()};
  WorkEstimator est({});
  Rng rng(1);
  SchedulerContext ctx(0.0, &cluster, &est, 20.0, &list, &rng);
  EXPECT_THROW(ctx.Grant(*app, app->jobs[0], {0}), std::logic_error);
  // Granting the same pooled GPU twice is equally impossible.
  ctx.Grant(*app, app->jobs[0], {1});
  EXPECT_THROW(ctx.Grant(*app, app->jobs[0], {1}), std::logic_error);
}

TEST(RoundProtocol, PoolViewsShrinkAsGrantsAreStaged) {
  Cluster cluster(ClusterSpec::Uniform(1, 2, 4, 2));
  auto app = RoundApp(0, {RoundJobSpec(40.0, 2, 2)});
  AppList list{app.get()};
  WorkEstimator est({});
  Rng rng(1);
  SchedulerContext ctx(0.0, &cluster, &est, 20.0, &list, &rng);
  EXPECT_EQ(ctx.free_pool().size(), 8);
  ctx.Grant(*app, app->jobs[0], {0, 1, 4});
  EXPECT_EQ(ctx.free_pool().size(), 5);
  EXPECT_EQ(ctx.free_per_machine(), (std::vector<int>{2, 3}));
  EXPECT_FALSE(ctx.free_pool().Contains(4));
  // The cluster still shows everything free: nothing was applied.
  EXPECT_EQ(cluster.num_free(), 8);

  const GrantSet grants = ctx.TakeGrants();
  EXPECT_EQ(grants.diagnostics.offered_gpus, 8);
  EXPECT_EQ(grants.diagnostics.granted_gpus, 3);
  EXPECT_EQ(grants.diagnostics.leftover_gpus, 5);
}

// ---------------------------------------------------------------------------
// Equivalence: adapter path == native round path, all five policies.
// ---------------------------------------------------------------------------

/// Routes every simulator round through the legacy Schedule() adapter of the
/// wrapped policy — grants are applied inside the round, exactly like the
/// pre-round-protocol Schedule() API did — and hands the simulator an empty
/// GrantSet so its own ApplyGrants is a no-op.
class ScheduleAdapterShim final : public IRoundScheduler {
 public:
  explicit ScheduleAdapterShim(std::unique_ptr<ISchedulerPolicy> inner)
      : inner_(std::move(inner)) {}

  GrantSet RunRound(const ResourceOffer& offer, SchedulerContext& ctx) override {
    inner_->Schedule(offer.gpus, ctx);
    return {};
  }
  const char* name() const override { return inner_->name(); }

 private:
  std::unique_ptr<ISchedulerPolicy> inner_;
};

struct RunFingerprint {
  std::vector<double> finish_times;
  std::vector<double> rhos;
  std::vector<int> final_holdings;
  int passes = 0;
  Time end_time = 0.0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint Fingerprint(const ExperimentConfig& config,
                           std::unique_ptr<IRoundScheduler> scheduler) {
  TraceGenerator gen(config.trace);
  Simulator sim(config.cluster, gen.Generate(), std::move(scheduler),
                config.sim);
  const SimResult run = sim.Run();
  RunFingerprint fp;
  fp.passes = run.scheduling_passes;
  fp.end_time = run.end_time;
  for (const auto& app : sim.apps()) {
    fp.finish_times.push_back(app->finish_time);
    fp.rhos.push_back(app->FinalRho());
    fp.final_holdings.push_back(app->GpusHeld());
  }
  return fp;
}

TEST(RoundProtocolEquivalence, AllPoliciesMatchTheLegacySchedulePath) {
  for (PolicyKind kind : {PolicyKind::kThemis, PolicyKind::kGandiva,
                          PolicyKind::kTiresias, PolicyKind::kSlaq,
                          PolicyKind::kDrf}) {
    for (std::uint64_t seed : {42ULL, 7ULL}) {
      ExperimentConfig config = SimScaleConfig(kind, seed, 40);
      config.trace.contention_factor = 2.0;
      const RunFingerprint native =
          Fingerprint(config, MakePolicy(kind, config.themis));
      const RunFingerprint adapter = Fingerprint(
          config, std::make_unique<ScheduleAdapterShim>(
                      MakePolicy(kind, config.themis)));
      EXPECT_EQ(native, adapter)
          << ToString(kind) << " seed " << seed
          << ": the adapter path diverged from the native round path";
    }
  }
}

TEST(RoundProtocolEquivalence, TestbedScaleMatchesToo) {
  for (PolicyKind kind : {PolicyKind::kThemis, PolicyKind::kTiresias}) {
    ExperimentConfig config = TestbedScaleConfig(kind, 23, 30);
    const RunFingerprint native =
        Fingerprint(config, MakePolicy(kind, config.themis));
    const RunFingerprint adapter = Fingerprint(
        config, std::make_unique<ScheduleAdapterShim>(
                    MakePolicy(kind, config.themis)));
    EXPECT_EQ(native, adapter) << ToString(kind);
  }
}

TEST(RoundProtocol, SimulatorRecordsAuctionDiagnostics) {
  // The per-round diagnostics feed MetricsCollector::RecordAuction — the
  // per-run home of what used to be stateful ThemisPolicy counters.
  ExperimentConfig config = SimScaleConfig(PolicyKind::kThemis, 42, 10);
  TraceGenerator gen(config.trace);
  Simulator sim(config.cluster, gen.Generate(),
                MakePolicy(config.policy, config.themis), config.sim);
  const SimResult run = sim.Run();
  EXPECT_GT(run.metrics.auctions_run(), 0);
  EXPECT_GE(run.metrics.MeanLeftoverFraction(), 0.0);
  EXPECT_LE(run.metrics.MeanLeftoverFraction(), 1.0);
}

TEST(RoundProtocol, RoundObserverSeesEveryAppliedGrant) {
  ExperimentConfig config = SimScaleConfig(PolicyKind::kDrf, 42, 8);
  TraceGenerator gen(config.trace);
  Simulator sim(config.cluster, gen.Generate(),
                MakePolicy(config.policy, config.themis), config.sim);
  long long observed_rounds = 0;
  long long observed_gpus = 0;
  std::uint64_t last_round = 0;
  sim.set_round_observer(
      [&](const ResourceOffer& offer, const GrantSet& grants) {
        ++observed_rounds;
        observed_gpus += grants.TotalGpus();
        EXPECT_GE(offer.round_id, last_round);
        last_round = offer.round_id;
        EXPECT_EQ(grants.diagnostics.offered_gpus, offer.TotalGpus());
        EXPECT_EQ(grants.diagnostics.offered_gpus,
                  grants.diagnostics.granted_gpus +
                      grants.diagnostics.leftover_gpus);
      });
  const SimResult run = sim.Run();
  EXPECT_GT(observed_rounds, 0);
  EXPECT_LE(observed_rounds, run.scheduling_passes);
  EXPECT_GT(observed_gpus, 0);
}

}  // namespace
}  // namespace themis
