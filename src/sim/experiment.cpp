#include "sim/experiment.h"

#include <algorithm>

#include "baselines/drf.h"
#include "baselines/gandiva.h"
#include "baselines/slaq.h"
#include "baselines/tiresias.h"

namespace themis {

const char* ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kThemis: return "Themis";
    case PolicyKind::kGandiva: return "Gandiva";
    case PolicyKind::kTiresias: return "Tiresias";
    case PolicyKind::kSlaq: return "SLAQ";
    case PolicyKind::kDrf: return "DRF";
  }
  return "?";
}

std::unique_ptr<ISchedulerPolicy> MakePolicy(PolicyKind kind,
                                             ThemisConfig themis_config) {
  switch (kind) {
    case PolicyKind::kThemis:
      return std::make_unique<ThemisPolicy>(themis_config);
    case PolicyKind::kGandiva:
      return std::make_unique<GandivaPolicy>();
    case PolicyKind::kTiresias:
      return std::make_unique<TiresiasPolicy>();
    case PolicyKind::kSlaq:
      return std::make_unique<SlaqPolicy>();
    case PolicyKind::kDrf:
      return std::make_unique<DrfPolicy>();
  }
  return std::make_unique<ThemisPolicy>(themis_config);
}

ExperimentResult RunExperimentWithApps(const ExperimentConfig& config,
                                       std::vector<AppSpec> apps) {
  Simulator sim(config.cluster, std::move(apps),
                MakePolicy(config.policy, config.themis), config.sim);
  SimResult run = sim.Run();
  const double contention = run.peak_contention;

  ExperimentResult result;
  result.policy_name = ToString(config.policy);
  result.max_fairness = run.metrics.MaxFairness();
  result.median_fairness = run.metrics.MedianFairness();
  result.min_fairness = run.metrics.MinFairness();
  result.jains_index = run.metrics.JainsFairnessIndex();
  result.avg_completion_time = run.metrics.AverageCompletionTime();
  result.gpu_time = run.metrics.TotalGpuTime();
  result.peak_contention = contention;
  result.unfinished_apps = static_cast<int>(run.unfinished.size());
  result.machine_failures = run.machine_failures;
  // Metric records accumulate in finish order; expose the per-app vectors in
  // AppId (== submission) order so callers can label them.
  std::vector<AppRecord> records = run.metrics.apps();
  std::sort(records.begin(), records.end(),
            [](const AppRecord& a, const AppRecord& b) { return a.app < b.app; });
  for (const AppRecord& rec : records) {
    result.rhos.push_back(rec.Rho());
    result.completion_times.push_back(rec.CompletionTime());
    result.placement_scores.push_back(rec.mean_placement_score);
  }
  result.timeline = run.metrics.timeline();
  return result;
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  TraceGenerator gen(config.trace);
  return RunExperimentWithApps(config, gen.Generate());
}

ExperimentConfig TestbedScaleConfig(PolicyKind policy, std::uint64_t seed,
                                    int num_apps) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Testbed50();
  config.policy = policy;
  config.trace.seed = seed;
  config.trace.num_apps = num_apps;
  // Sec. 8.3 footnote: durations scaled down by 5, inter-arrival kept.
  config.trace.duration_scale = 1.0 / 5.0;
  // Cap exploration width so one app cannot exceed the small cluster.
  config.trace.jobs_per_app_median = 8.0;
  config.trace.jobs_per_app_max = 24;
  config.sim.seed = seed;
  config.sim.lease_minutes = 10.0;
  return config;
}

ExperimentConfig SimScaleConfig(PolicyKind policy, std::uint64_t seed,
                                int num_apps) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Simulation256();
  config.policy = policy;
  config.trace.seed = seed;
  config.trace.num_apps = num_apps;
  config.sim.seed = seed;
  config.sim.lease_minutes = 20.0;
  return config;
}

}  // namespace themis
