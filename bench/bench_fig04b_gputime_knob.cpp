// Figure 4b: "Variation of GPU Time with f" — cluster efficiency vs the
// fairness knob on the 256-GPU simulated cluster.
//
// Paper shape: higher f -> fewer apps see each offer -> fewer packing
// choices -> more GPU time (less efficient use).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  BenchReport report("fig04b_gputime_knob");
  report.Config("cluster", "sim256");
  report.Config("contention_factor", 4.0);
  report.Config("trace_seeds", 5.0);

  std::printf("=== Figure 4b: GPU time (mins) vs fairness knob f ===\n");
  std::printf("(mean of 5 trace seeds, 256-GPU simulated cluster)\n");
  std::printf("%6s %14s\n", "f", "gpu_time");
  for (double f : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    double gpu = 0.0;
    const int kSeeds = 5;
    for (std::uint64_t seed = 42; seed < 42 + kSeeds; ++seed) {
      ExperimentConfig cfg = ContendedSimConfig(PolicyKind::kThemis, seed);
      cfg.themis.fairness_knob = f;
      gpu += RunExperiment(cfg).gpu_time / kSeeds;
    }
    std::printf("%6.1f %14.0f\n", f, gpu);
    char key[48];
    std::snprintf(key, sizeof key, "gpu_time_min@f=%.1f", f);
    report.Metric(key, gpu);
  }
  std::printf("\npaper reference: GPU time grows with f (fairness costs"
              " packing efficiency)\n");
  return report.Write() ? 0 : 1;
}
