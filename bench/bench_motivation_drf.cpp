// Motivation experiment (Sec. 2.2): why instantaneous resource fairness is
// insufficient for ML apps.
//
// Runs DRF (instantaneous max-min GPU share, placement-unaware) against
// THEMIS on workloads that stress the two failure modes Sec. 2.2 names:
//   1. long gang-scheduled tasks -> arriving apps wait on leases, and DRF's
//      instant-share view cannot see who is behind on *finish time*
//   2. placement sensitivity -> equal GPU counts are not equal performance.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  BenchReport report("motivation_drf");
  report.Config("cluster", "sim256");
  report.Config("contention_factor", 4.0);
  report.Config("trace_seeds", 3.0);

  std::printf("=== Motivation (Sec. 2): DRF vs Themis ===\n");
  std::printf("%-22s %-8s %9s %7s %9s %12s\n", "workload", "scheme", "max_rho",
              "jain", "avg_ACT", "gpu_time");
  struct Workload {
    const char* name;
    const char* key;
    double frac_sensitive;
  };
  for (const Workload& w :
       {Workload{"60:40 mixed (trace)", "mixed", 0.4},
        Workload{"all net-intensive", "net_intensive", 1.0}}) {
    for (PolicyKind kind : {PolicyKind::kDrf, PolicyKind::kThemis}) {
      double mx = 0, jain = 0, act = 0, gpu = 0;
      for (std::uint64_t seed : {42ull, 43ull, 44ull}) {
        ExperimentConfig cfg = ContendedSimConfig(kind, seed, 100);
        cfg.trace.frac_network_intensive = w.frac_sensitive;
        const ExperimentResult r = RunExperiment(cfg);
        mx += r.max_fairness / 3;
        jain += r.jains_index / 3;
        act += r.avg_completion_time / 3;
        gpu += r.gpu_time / 3;
      }
      std::printf("%-22s %-8s %9.2f %7.3f %9.1f %12.0f\n", w.name,
                  ToString(kind), mx, jain, act, gpu);
      const std::string tag = std::string(ToString(kind)) + "@" + w.key;
      report.Metric("max_rho." + tag, mx);
      report.Metric("jains_index." + tag, jain);
      report.Metric("avg_act_min." + tag, act);
      report.Metric("gpu_time_min." + tag, gpu);
    }
  }
  std::printf("\npaper reference (qualitative): instantaneous resource\n"
              "fairness violates sharing incentive for placement-sensitive,\n"
              "long-task ML apps; finish-time fairness does not\n");
  return report.Write() ? 0 : 1;
}
