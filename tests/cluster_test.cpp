// Tests for cluster/: topology indexing, locality levels, lease state.
#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace themis {
namespace {

TEST(ClusterSpec, Simulation256HasExactly256Gpus) {
  const ClusterSpec spec = ClusterSpec::Simulation256();
  EXPECT_EQ(spec.TotalGpus(), 256);
  EXPECT_EQ(static_cast<int>(spec.racks.size()), 4);
}

TEST(ClusterSpec, Simulation256IsHeterogeneous) {
  const ClusterSpec spec = ClusterSpec::Simulation256();
  bool has1 = false, has2 = false, has4 = false;
  for (const auto& rack : spec.racks)
    for (const auto& m : rack.machines) {
      has1 |= m.num_gpus == 1;
      has2 |= m.num_gpus == 2;
      has4 |= m.num_gpus == 4;
    }
  EXPECT_TRUE(has1 && has2 && has4);
}

TEST(ClusterSpec, Testbed50HasExactly50Gpus) {
  const ClusterSpec spec = ClusterSpec::Testbed50();
  EXPECT_EQ(spec.TotalGpus(), 50);
  EXPECT_EQ(static_cast<int>(spec.racks.size()), 2);
}

TEST(ClusterSpec, UniformCounts) {
  const ClusterSpec spec = ClusterSpec::Uniform(3, 4, 8, 4);
  EXPECT_EQ(spec.TotalGpus(), 96);
  EXPECT_EQ(spec.TotalMachines(), 12);
}

TEST(Topology, GpuCoordinatesAreConsistent) {
  const Topology topo(ClusterSpec::Uniform(2, 3, 4, 2));
  EXPECT_EQ(topo.num_gpus(), 24);
  EXPECT_EQ(topo.num_machines(), 6);
  EXPECT_EQ(topo.num_racks(), 2);
  for (GpuId g = 0; g < 24; ++g) {
    const GpuCoord& c = topo.gpu(g);
    EXPECT_EQ(c.gpu, g);
    EXPECT_EQ(c.machine, g / 4);
    EXPECT_EQ(c.rack, g / 12);
    EXPECT_EQ(c.slot, (g % 4) / 2);
    EXPECT_EQ(c.index_in_slot, static_cast<int>(g % 2));
  }
}

TEST(Topology, MachineGpusAreContiguous) {
  const Topology topo(ClusterSpec::Uniform(1, 2, 4, 2));
  EXPECT_EQ(topo.machine_gpus(0), (std::vector<GpuId>{0, 1, 2, 3}));
  EXPECT_EQ(topo.machine_gpus(1), (std::vector<GpuId>{4, 5, 6, 7}));
}

TEST(Topology, RejectsInvalidSpecs) {
  ClusterSpec bad;
  bad.racks.push_back(RackSpec{{MachineSpec{3, 2}}});  // 3 not multiple of 2
  EXPECT_THROW(Topology{bad}, std::invalid_argument);
  ClusterSpec zero;
  zero.racks.push_back(RackSpec{{MachineSpec{0, 1}}});
  EXPECT_THROW(Topology{zero}, std::invalid_argument);
}

TEST(Topology, SpanLevels) {
  // 1 rack of 2 machines, each 4 GPUs in 2-GPU slots; plus a second rack.
  const Topology topo(ClusterSpec::Uniform(2, 2, 4, 2));
  EXPECT_EQ(topo.SpanLevel({}), LocalityLevel::kSlot);
  EXPECT_EQ(topo.SpanLevel({0}), LocalityLevel::kSlot);
  EXPECT_EQ(topo.SpanLevel({0, 1}), LocalityLevel::kSlot);       // same slot
  EXPECT_EQ(topo.SpanLevel({0, 2}), LocalityLevel::kMachine);    // slots 0+1
  EXPECT_EQ(topo.SpanLevel({0, 4}), LocalityLevel::kRack);       // machines 0+1
  EXPECT_EQ(topo.SpanLevel({0, 8}), LocalityLevel::kCrossRack);  // racks 0+1
  EXPECT_EQ(topo.SpanLevel({0, 1, 2, 3}), LocalityLevel::kMachine);
}

TEST(Topology, ToStringNames) {
  EXPECT_STREQ(ToString(LocalityLevel::kSlot), "slot");
  EXPECT_STREQ(ToString(LocalityLevel::kCrossRack), "cross-rack");
}

class ClusterLeaseTest : public ::testing::Test {
 protected:
  Cluster cluster_{ClusterSpec::Uniform(1, 2, 4, 2)};
};

TEST_F(ClusterLeaseTest, StartsAllFree) {
  EXPECT_EQ(cluster_.num_free(), 8);
  EXPECT_EQ(cluster_.num_allocated(), 0);
  EXPECT_EQ(cluster_.FreeGpus().size(), 8u);
}

TEST_F(ClusterLeaseTest, AllocateAndRelease) {
  cluster_.Allocate(3, /*app=*/1, /*job=*/0, /*expiry=*/20.0);
  EXPECT_FALSE(cluster_.IsFree(3));
  EXPECT_EQ(cluster_.num_allocated(), 1);
  ASSERT_TRUE(cluster_.lease(3).has_value());
  EXPECT_EQ(cluster_.lease(3)->app, 1u);
  EXPECT_EQ(cluster_.lease(3)->expiry, 20.0);
  cluster_.Release(3);
  EXPECT_TRUE(cluster_.IsFree(3));
  EXPECT_EQ(cluster_.num_allocated(), 0);
}

TEST_F(ClusterLeaseTest, DoubleAllocationThrows) {
  cluster_.Allocate(0, 1, 0, 10.0);
  EXPECT_THROW(cluster_.Allocate(0, 2, 0, 10.0), std::logic_error);
}

TEST_F(ClusterLeaseTest, DoubleReleaseThrows) {
  EXPECT_THROW(cluster_.Release(0), std::logic_error);
}

TEST_F(ClusterLeaseTest, OutOfRangeThrows) {
  EXPECT_THROW(cluster_.Allocate(100, 1, 0, 1.0), std::out_of_range);
  EXPECT_THROW(cluster_.Release(100), std::out_of_range);
}

TEST_F(ClusterLeaseTest, FreeGpusPerMachine) {
  cluster_.Allocate(0, 1, 0, 10.0);
  cluster_.Allocate(5, 1, 0, 10.0);
  const std::vector<int> free = cluster_.FreeGpusPerMachine();
  ASSERT_EQ(free.size(), 2u);
  EXPECT_EQ(free[0], 3);
  EXPECT_EQ(free[1], 3);
}

TEST_F(ClusterLeaseTest, FreeGpusOnMachine) {
  cluster_.Allocate(4, 1, 0, 10.0);
  EXPECT_EQ(cluster_.FreeGpusOnMachine(1), (std::vector<GpuId>{5, 6, 7}));
}

TEST_F(ClusterLeaseTest, GpusHeldByAppAndJob) {
  cluster_.Allocate(0, 7, 0, 10.0);
  cluster_.Allocate(1, 7, 1, 10.0);
  cluster_.Allocate(2, 8, 0, 10.0);
  EXPECT_EQ(cluster_.GpusHeldBy(7), (std::vector<GpuId>{0, 1}));
  EXPECT_EQ(cluster_.GpusHeldBy(7, 1), (std::vector<GpuId>{1}));
  EXPECT_EQ(cluster_.GpusHeldBy(9).size(), 0u);
}

TEST_F(ClusterLeaseTest, ReleaseAllForApp) {
  cluster_.Allocate(0, 7, 0, 10.0);
  cluster_.Allocate(1, 7, 1, 10.0);
  cluster_.Allocate(2, 8, 0, 10.0);
  cluster_.ReleaseAll(7);
  EXPECT_TRUE(cluster_.IsFree(0));
  EXPECT_TRUE(cluster_.IsFree(1));
  EXPECT_FALSE(cluster_.IsFree(2));
}

TEST_F(ClusterLeaseTest, ExpiredGpus) {
  cluster_.Allocate(0, 1, 0, 10.0);
  cluster_.Allocate(1, 1, 0, 30.0);
  EXPECT_EQ(cluster_.ExpiredGpus(5.0).size(), 0u);
  EXPECT_EQ(cluster_.ExpiredGpus(10.0), (std::vector<GpuId>{0}));
  EXPECT_EQ(cluster_.ExpiredGpus(30.0), (std::vector<GpuId>{0, 1}));
  // ExpiredGpus does not release.
  EXPECT_FALSE(cluster_.IsFree(0));
}

TEST_F(ClusterLeaseTest, RenewExtendsLease) {
  cluster_.Allocate(0, 1, 0, 10.0);
  cluster_.Renew(0, 25.0);
  EXPECT_EQ(cluster_.lease(0)->expiry, 25.0);
  EXPECT_EQ(cluster_.ExpiredGpus(10.0).size(), 0u);
}

TEST_F(ClusterLeaseTest, RenewFreeGpuThrows) {
  EXPECT_THROW(cluster_.Renew(0, 5.0), std::logic_error);
}


TEST_F(ClusterLeaseTest, MachineDownHidesFreeGpus) {
  cluster_.SetMachineDown(0, true);
  EXPECT_TRUE(cluster_.IsMachineDown(0));
  EXPECT_EQ(cluster_.num_machines_down(), 1);
  EXPECT_EQ(cluster_.FreeGpus(), (std::vector<GpuId>{4, 5, 6, 7}));
  EXPECT_EQ(cluster_.FreeGpusPerMachine()[0], 0);
  EXPECT_TRUE(cluster_.FreeGpusOnMachine(0).empty());
  EXPECT_THROW(cluster_.Allocate(0, 1, 0, 10.0), std::logic_error);
}

TEST_F(ClusterLeaseTest, MachineRepairRestoresService) {
  cluster_.SetMachineDown(0, true);
  cluster_.SetMachineDown(0, false);
  EXPECT_FALSE(cluster_.IsMachineDown(0));
  EXPECT_EQ(cluster_.FreeGpus().size(), 8u);
  EXPECT_NO_THROW(cluster_.Allocate(0, 1, 0, 10.0));
}

TEST_F(ClusterLeaseTest, DownMachineKeepsExistingLeasesVisible) {
  // Marking a machine down does not implicitly release leases; the
  // simulator revokes them explicitly (failure handling owns that policy).
  cluster_.Allocate(0, 1, 0, 10.0);
  cluster_.SetMachineDown(0, true);
  EXPECT_FALSE(cluster_.IsFree(0));
  EXPECT_EQ(cluster_.GpusHeldBy(1), (std::vector<GpuId>{0}));
}

}  // namespace
}  // namespace themis
