#!/usr/bin/env bash
# Run every paper-figure bench and collect the machine-readable results.
#
# Usage: scripts/run_benches.sh [build_dir] [out_dir]
#
#   build_dir  CMake build tree (default: build). Configured + built if the
#              bench binaries are missing.
#   out_dir    Where BENCH_<name>.json files land (default: bench_results).
#
# Stdout tables from each bench go to <out_dir>/<bench>.log; the JSON
# sidecars are what the perf-trajectory tooling consumes.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root/bench_results}"

if [ ! -x "$build_dir/bench_fig01_task_durations" ]; then
  echo "== configuring + building benches in $build_dir"
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" -j "$(nproc)"
fi

mkdir -p "$out_dir"
export BENCH_OUT_DIR="$out_dir"

status=0
for bench in "$build_dir"/bench_*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "== $name"
  case "$name" in
    bench_overheads)
      # google-benchmark binary: use its native JSON reporter.
      if ! "$bench" --benchmark_out="$out_dir/BENCH_overheads.json" \
                    --benchmark_out_format=json \
                    >"$out_dir/$name.log" 2>&1; then
        echo "   FAILED (see $out_dir/$name.log)"
        status=1
      fi
      ;;
    *)
      if ! "$bench" >"$out_dir/$name.log" 2>&1; then
        echo "   FAILED (see $out_dir/$name.log)"
        status=1
      fi
      ;;
  esac
done

echo
echo "== results in $out_dir:"
ls -1 "$out_dir"/BENCH_*.json 2>/dev/null || echo "   (no JSON emitted)"
exit "$status"
