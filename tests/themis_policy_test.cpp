// Tests for core/themis_policy.h: the ARBITER's offer filtering (fairness
// knob), auction-driven grants, and work-conserving leftover allocation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/themis_policy.h"

namespace themis {
namespace {

JobSpec MakeJobSpec(double work, int num_tasks, int gpus_per_task,
                    const char* model = "ResNet50") {
  JobSpec spec;
  spec.total_work = work;
  spec.total_iterations = 1000.0;
  spec.num_tasks = num_tasks;
  spec.gpus_per_task = gpus_per_task;
  spec.model = ModelByName(model);
  spec.loss = LossCurve(0.1 * std::pow(1001.0, 0.6), 0.6, 0.0);
  return spec;
}

std::unique_ptr<AppState> MakeApp(AppId id, Time arrival,
                                  std::vector<JobSpec> jobs) {
  auto app = std::make_unique<AppState>();
  app->id = id;
  app->spec.arrival = arrival;
  app->spec.target_loss = 0.1;
  app->spec.jobs = jobs;
  app->arrived = true;
  JobId next = 0;
  for (const JobSpec& js : jobs) {
    JobState job;
    job.id = next++;
    job.spec = js;
    job.parallelism_cap = js.MaxParallelism();
    app->jobs.push_back(std::move(job));
  }
  app->ideal_time = std::max(1e-9, app->spec.IdealRunningTime());
  return app;
}

class ThemisPolicyTest : public ::testing::Test {
 protected:
  ThemisPolicyTest()
      : cluster_(ClusterSpec::Uniform(2, 2, 4, 2)), est_({}), rng_(1) {}

  GrantSet Schedule(ThemisPolicy& policy, Time now = 0.0) {
    AppList list;
    for (auto& app : apps_) list.push_back(app.get());
    SchedulerContext ctx(now, &cluster_, &est_, /*lease=*/20.0, &list, &rng_);
    return policy.Schedule(cluster_.FreeGpus(), ctx);
  }

  Cluster cluster_;
  WorkEstimator est_;
  Rng rng_;
  std::vector<std::unique_ptr<AppState>> apps_;
};

TEST_F(ThemisPolicyTest, SingleAppGetsItsFullDemand) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 4)}));
  ThemisPolicy policy;
  Schedule(policy);
  EXPECT_EQ(apps_[0]->GpusHeld(), 8);
  EXPECT_EQ(cluster_.num_allocated(), 8);
}

TEST_F(ThemisPolicyTest, GrantsAreLeasedToTheRightJob) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 4)}));
  ThemisPolicy policy;
  Schedule(policy);
  const auto held = cluster_.GpusHeldBy(0, 0);
  EXPECT_EQ(held.size(), 4u);
  for (GpuId g : held) EXPECT_EQ(cluster_.lease(g)->expiry, 20.0);
  EXPECT_EQ(apps_[0]->jobs[0].gpus.size(), 4u);
}

TEST_F(ThemisPolicyTest, WorstRhoAppWinsUnderContention) {
  // App 0 already holds a gang (bounded rho); app 1 holds nothing
  // (unbounded rho). With f = 0.8 and two hungry apps only app 1 is offered
  // the pool, and must win the remaining GPUs it can use.
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 2, 2)}));
  apps_.push_back(MakeApp(1, 0.0, {MakeJobSpec(40.0, 2, 2)}));
  cluster_.Allocate(0, 0, 0, 20.0);
  cluster_.Allocate(1, 0, 0, 20.0);
  apps_[0]->jobs[0].gpus = {0, 1};

  ThemisConfig cfg;
  cfg.fairness_knob = 0.8;
  ThemisPolicy policy(cfg);
  Schedule(policy);
  EXPECT_EQ(apps_[1]->GpusHeld(), 4);  // full demand of the starved app
}

TEST_F(ThemisPolicyTest, WorkConservationFillsLeftoverDemand) {
  // Three 4-GPU-hungry apps on 16 GPUs: everything that fits a gang must be
  // allocated after the pass, regardless of f.
  for (AppId i = 0; i < 3; ++i)
    apps_.push_back(MakeApp(i, 0.0, {MakeJobSpec(40.0, 2, 4)}));
  ThemisConfig cfg;
  cfg.fairness_knob = 0.9;
  ThemisPolicy policy(cfg);
  Schedule(policy);
  int held = 0;
  for (auto& app : apps_) held += app->GpusHeld();
  EXPECT_EQ(held, 16);
  EXPECT_EQ(cluster_.num_free(), 0);
}

TEST_F(ThemisPolicyTest, LeftoverGoesToNonParticipantsFirst) {
  // f = 0.5 over two hungry apps -> only the worse one participates. The
  // other (non-participant) should still receive leftovers rather than the
  // pool going unused once the winner's demand is met.
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 4)}));  // demand 4
  apps_.push_back(MakeApp(1, 0.0, {MakeJobSpec(40.0, 1, 4)}));  // demand 4
  ThemisConfig cfg;
  cfg.fairness_knob = 0.5;
  ThemisPolicy policy(cfg);
  Schedule(policy);
  EXPECT_EQ(apps_[0]->GpusHeld() + apps_[1]->GpusHeld(), 8);
  EXPECT_GT(apps_[0]->GpusHeld(), 0);
  EXPECT_GT(apps_[1]->GpusHeld(), 0);
}

TEST_F(ThemisPolicyTest, FairnessKnobControlsParticipantCount) {
  // 4 hungry apps; f = 0.75 -> ceil(0.25 * 4) = 1 participant; the probe
  // still updates everyone's cached rho.
  for (AppId i = 0; i < 4; ++i)
    apps_.push_back(MakeApp(i, 0.0, {MakeJobSpec(40.0, 1, 2)}));
  ThemisConfig cfg;
  cfg.fairness_knob = 0.75;
  ThemisPolicy policy(cfg);
  Schedule(policy);
  for (auto& app : apps_) EXPECT_GT(app->last_rho, 0.0);
  // All demand fits (4 apps x 2 GPUs = 8 <= 16): work conservation feeds
  // non-participants too.
  for (auto& app : apps_) EXPECT_EQ(app->GpusHeld(), 2);
}

TEST_F(ThemisPolicyTest, NoDemandNoGrants) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 2)}));
  apps_[0]->jobs[0].gpus = {0, 1};
  cluster_.Allocate(0, 0, 0, 20.0);
  cluster_.Allocate(1, 0, 0, 20.0);
  ThemisPolicy policy;
  Schedule(policy);
  EXPECT_EQ(apps_[0]->GpusHeld(), 2);
  EXPECT_EQ(cluster_.num_allocated(), 2);
}

TEST_F(ThemisPolicyTest, PlacementSensitiveAppGetsColocatedGang) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 4, "VGG16")}));
  ThemisPolicy policy;
  Schedule(policy);
  const auto& gpus = apps_[0]->jobs[0].gpus;
  ASSERT_EQ(gpus.size(), 4u);
  EXPECT_LE(static_cast<int>(cluster_.topology().SpanLevel(gpus)),
            static_cast<int>(LocalityLevel::kMachine));
}

TEST_F(ThemisPolicyTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [&]() {
    Cluster cluster(ClusterSpec::Uniform(2, 2, 4, 2));
    std::vector<std::unique_ptr<AppState>> apps;
    for (AppId i = 0; i < 3; ++i)
      apps.push_back(MakeApp(i, 0.0, {MakeJobSpec(40.0, 2, 2)}));
    WorkEstimator est({});
    Rng rng(7);
    AppList list;
    for (auto& a : apps) list.push_back(a.get());
    SchedulerContext ctx(0.0, &cluster, &est, 20.0, &list, &rng);
    ThemisPolicy policy;
    policy.Schedule(cluster.FreeGpus(), ctx);
    std::vector<std::vector<GpuId>> out;
    for (auto& a : apps) out.push_back(cluster.GpusHeldBy(a->id));
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(ThemisPolicyTest, RoundDiagnosticsReportTheAuction) {
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 2)}));
  ThemisPolicy policy;
  const GrantSet grants = Schedule(policy);
  EXPECT_TRUE(grants.diagnostics.auction_ran);
  EXPECT_EQ(grants.diagnostics.auction_participants, 1);
  EXPECT_EQ(grants.diagnostics.offered_gpus, 16);
  EXPECT_EQ(grants.diagnostics.granted_gpus, 2);
  EXPECT_EQ(grants.diagnostics.leftover_gpus, 14);
  EXPECT_EQ(grants.TotalGpus(), 2);
}

TEST_F(ThemisPolicyTest, DiagnosticsResetEveryRound) {
  // The old stateful counters accumulated across simulator runs when a
  // policy instance was reused; per-round GrantSet diagnostics must not.
  apps_.push_back(MakeApp(0, 0.0, {MakeJobSpec(40.0, 1, 2)}));
  ThemisPolicy policy;
  const GrantSet first = Schedule(policy);
  EXPECT_EQ(first.diagnostics.granted_gpus, 2);
  // Demand met: the next round offers the remaining 14 GPUs, grants none.
  const GrantSet second = Schedule(policy);
  EXPECT_EQ(second.diagnostics.offered_gpus, 14);
  EXPECT_EQ(second.diagnostics.granted_gpus, 0);
  EXPECT_FALSE(second.diagnostics.auction_ran);
  EXPECT_TRUE(second.grants.empty());
}

}  // namespace
}  // namespace themis
