// Maintained rho index for the ARBITER's filter step (Fig. 3, steps 1-2).
//
// The literal filter probes every active app for rho and stable_sorts the
// full candidate vector each round — O(n log n) in the live population even
// when a single lease expired. This index makes the filter O(k log n) in the
// apps actually touched since the last round by exploiting one invariant of
// the rho arithmetic (core/agent.cpp):
//
//   An app holding no GPUs on any job has rho EXACTLY kUnboundedRho — the
//   probe skips every gangless job before consulting the estimator, the
//   running minimum stays infinite, and RhoFromSharedTime short-circuits
//   non-finite shared time to the kUnboundedRho constant with no arithmetic
//   on ideal_time and zero estimator (hence zero RNG) calls.
//
// That value is *time-invariant*: pure time advance cannot change it. It
// changes only when the app gains a gang — a grant — and the remaining
// tie-break terms of the sort comparator (ideal_time, id) are immutable per
// app. So the index keeps the gangless hungry apps ("unbounded candidates")
// in a std::set ordered by the comparator's tie-break chain, updated only on
// the events that can reclassify an app: grant/release/kill (any gang
// mutation), tuner cap change (demand mutation), arrival, and finish. Apps
// holding at least one GPU ("holders") have genuinely time-dependent rho —
// progress, stalls, and estimator noise move it every round — so they are
// kept as a small ascending-id set, bounded by cluster capacity rather than
// population, and re-probed each round with the exact arithmetic and
// estimator-call order of the full scan. Merging the freshly sorted holders
// with the pre-ordered unbounded class under the full comparator (a strict
// total order thanks to the id tie-break) reproduces the literal
// stable_sort's output bit-for-bit, and the merge stops after the top
// 1-f fraction instead of materializing the whole order.
//
// Membership is re-derived from AppState alone (Update is idempotent), so
// every simulator hook simply calls Update(app) after mutating it. The
// simulator owns one RhoIndex and threads it to policies through
// SchedulerContext::rho_index(); contexts built without one (legacy tests,
// external embedders) leave the pointer null and ThemisPolicy falls back to
// the literal scan. ThemisConfig::incremental_filter = false forces the
// literal scan even when an index is present (the bisect escape hatch).
#pragma once

#include <cstddef>
#include <set>
#include <vector>

#include "sim/state.h"

namespace themis {

class RhoIndex {
 public:
  /// Orders the unbounded candidates by the sort comparator's tie-break
  /// chain — every member's rho is the same kUnboundedRho constant, so the
  /// chain below IS the full comparator restricted to this class.
  struct UnboundedLess {
    bool short_app_tiebreak = true;
    bool operator()(const AppState* a, const AppState* b) const {
      if (short_app_tiebreak && a->ideal_time != b->ideal_time)
        return a->ideal_time < b->ideal_time;
      return a->id < b->id;
    }
  };
  using UnboundedSet = std::set<AppState*, UnboundedLess>;

  /// Re-derive `app`'s class from its current state and move it between the
  /// holder / unbounded-candidate / absent sets as needed. Idempotent; call
  /// after any mutation that can change gang holdings, demand, or liveness
  /// (grant, release, kill, tuner step, arrival, finish). Classifying an
  /// active app as gangless also pins app->last_rho to kUnboundedRho — the
  /// value the probe would compute — so the merge comparator reads fresh
  /// floats without re-probing the class.
  void Update(AppState* app);

  /// Switch the tie-break chain (ThemisConfig::short_app_tiebreak). Reorders
  /// the unbounded set when the mode actually changes; a no-op otherwise.
  /// Policies call this once per round before reading the sets.
  void SetTiebreak(bool short_app_tiebreak);

  /// Active apps holding at least one leased GPU, ascending AppId — the
  /// re-probe set, bounded by cluster capacity. Probing these in order
  /// reproduces the full scan's estimator-call sequence exactly: gangless
  /// apps contribute no estimator calls, so the full scan's sequence is
  /// precisely "holders, ascending id".
  const std::vector<AppState*>& holders() const { return holders_; }

  /// Gangless apps with unmet demand, in comparator order (worst-off first
  /// after the bounded class at equal rho — all members tie at
  /// kUnboundedRho, so tie-break order is total order here).
  const UnboundedSet& unbounded_candidates() const { return unbounded_; }

  std::size_t num_unbounded() const { return unbounded_.size(); }
  bool short_app_tiebreak() const { return short_app_tiebreak_; }

 private:
  // AppState::rho_index_class values.
  static constexpr std::uint8_t kAbsent = 0;
  static constexpr std::uint8_t kHolder = 1;
  static constexpr std::uint8_t kUnbounded = 2;

  std::vector<AppState*> holders_;  // ascending id
  UnboundedSet unbounded_{UnboundedLess{true}};
  bool short_app_tiebreak_ = true;
};

}  // namespace themis
