// Loss-curve fitting (Sec. 7: "Loss values are used ... to find a best-fit
// sub-linear or super-linear curve and thus estimate the amount of work left
// per-job to reach target accuracy").
//
// We fit loss(i) = scale * (i + 1)^(-decay) by least squares in log-log
// space, which is exactly linear regression of log(loss - floor) on
// log(i + 1). The fitter powers the non-clairvoyant estimation mode and the
// HyperDrive good/promising/poor classifier.
#pragma once

#include <optional>
#include <vector>

#include "workload/loss_curve.h"

namespace themis {

struct LossSample {
  double iteration;
  double loss;
};

struct PowerLawFit {
  LossCurve curve;
  /// Coefficient of determination of the log-space regression, in [0, 1].
  double r_squared = 0.0;
};

/// Fit a power-law loss curve to observed samples, assuming a known floor
/// (default 0). Requires >= 2 samples with distinct iterations and losses
/// strictly above the floor; returns nullopt otherwise.
std::optional<PowerLawFit> FitPowerLaw(const std::vector<LossSample>& samples,
                                       double floor = 0.0);

/// Convenience: predicted iterations until `target_loss` given samples, or
/// nullopt if the fit fails or the target is unreachable.
std::optional<double> PredictIterationsToTarget(
    const std::vector<LossSample>& samples, double target_loss,
    double floor = 0.0);

}  // namespace themis
