// Tests for metrics/: the Sec. 8.1 metric definitions.
#include <gtest/gtest.h>

#include "metrics/collector.h"

namespace themis {
namespace {

AppRecord Record(AppId app, Time arrival, Time finish, Time ideal,
                 double score = 1.0) {
  AppRecord r;
  r.app = app;
  r.arrival = arrival;
  r.finish = finish;
  r.ideal_time = ideal;
  r.mean_placement_score = score;
  return r;
}

TEST(Metrics, RhoAndCompletionTime) {
  const AppRecord r = Record(0, 10.0, 40.0, 10.0);
  EXPECT_DOUBLE_EQ(r.Rho(), 3.0);
  EXPECT_DOUBLE_EQ(r.CompletionTime(), 30.0);
}

TEST(Metrics, FairnessAggregates) {
  MetricsCollector c;
  c.RecordAppFinish(Record(0, 0.0, 10.0, 10.0));  // rho 1
  c.RecordAppFinish(Record(1, 0.0, 30.0, 10.0));  // rho 3
  c.RecordAppFinish(Record(2, 0.0, 20.0, 10.0));  // rho 2
  EXPECT_DOUBLE_EQ(c.MaxFairness(), 3.0);
  EXPECT_DOUBLE_EQ(c.MinFairness(), 1.0);
  EXPECT_DOUBLE_EQ(c.MedianFairness(), 2.0);
  EXPECT_DOUBLE_EQ(c.AverageCompletionTime(), 20.0);
  EXPECT_NEAR(c.JainsFairnessIndex(), 36.0 / (3.0 * 14.0), 1e-12);
}

TEST(Metrics, EmptyCollectorIsNeutral) {
  MetricsCollector c;
  EXPECT_DOUBLE_EQ(c.MaxFairness(), 0.0);
  EXPECT_DOUBLE_EQ(c.MinFairness(), 0.0);
  EXPECT_DOUBLE_EQ(c.MedianFairness(), 0.0);
  EXPECT_DOUBLE_EQ(c.AverageCompletionTime(), 0.0);
  EXPECT_DOUBLE_EQ(c.JainsFairnessIndex(), 1.0);
  EXPECT_DOUBLE_EQ(c.TotalGpuTime(), 0.0);
}

TEST(Metrics, GpuTimeAccumulates) {
  MetricsCollector c;
  c.RecordGpuTime(10.0);
  c.RecordGpuTime(5.5);
  EXPECT_DOUBLE_EQ(c.TotalGpuTime(), 15.5);
}

TEST(Metrics, PlacementScoresExtracted) {
  MetricsCollector c;
  c.RecordAppFinish(Record(0, 0.0, 10.0, 10.0, 0.8));
  c.RecordAppFinish(Record(1, 0.0, 10.0, 10.0, 0.4));
  const auto scores = c.PlacementScores();
  EXPECT_EQ(scores, (std::vector<double>{0.8, 0.4}));
}

TEST(Metrics, TimelineOrderPreserved) {
  MetricsCollector c;
  c.RecordAllocation(1.0, 7, 4);
  c.RecordAllocation(2.0, 7, 8);
  ASSERT_EQ(c.timeline().size(), 2u);
  EXPECT_EQ(c.timeline()[0].gpus, 4);
  EXPECT_EQ(c.timeline()[1].gpus, 8);
}

TEST(Metrics, AuctionLeftoverFraction) {
  MetricsCollector c;
  c.RecordAuction(3, 10, 8, 2);
  c.RecordAuction(2, 10, 6, 4);
  EXPECT_EQ(c.auctions_run(), 2);
  EXPECT_NEAR(c.MeanLeftoverFraction(), 0.3, 1e-12);
}

TEST(Metrics, SummaryStringMentionsKeyFields) {
  MetricsCollector c;
  c.RecordAppFinish(Record(0, 0.0, 10.0, 10.0));
  const std::string s = c.SummaryString();
  EXPECT_NE(s.find("max_rho"), std::string::npos);
  EXPECT_NE(s.find("jain"), std::string::npos);
}

// --------------------------------------------------------------------------
// Bounded-memory mode: running aggregates vs the exact vector-based mode.
// --------------------------------------------------------------------------

TEST(Metrics, BoundedModeAggregatesMatchExact) {
  MetricsCollector exact;
  MetricsConfig bounded_cfg;
  bounded_cfg.bounded_memory = true;
  bounded_cfg.reservoir_capacity = 32;  // far fewer than the stream
  MetricsCollector bounded(bounded_cfg);

  // A deterministic but irregular stream of 500 finishes.
  for (AppId a = 0; a < 500; ++a) {
    const Time arrival = 2.0 * a;
    const Time ideal = 5.0 + (a * 7) % 40;
    const Time finish = arrival + ideal * (1.0 + 0.01 * ((a * 13) % 300));
    const AppRecord r = Record(a, arrival, finish, ideal);
    exact.RecordAppFinish(r);
    bounded.RecordAppFinish(r);
  }

  // Max/min/avg/Jain come from running aggregates fed in the same order:
  // equal bit for bit, not approximately.
  EXPECT_EQ(bounded.MaxFairness(), exact.MaxFairness());
  EXPECT_EQ(bounded.MinFairness(), exact.MinFairness());
  EXPECT_EQ(bounded.JainsFairnessIndex(), exact.JainsFairnessIndex());
  EXPECT_EQ(bounded.AverageCompletionTime(), exact.AverageCompletionTime());
  // The median is the one P2-estimated summary: within 1%.
  EXPECT_NEAR(bounded.MedianFairness(), exact.MedianFairness(),
              0.01 * exact.MedianFairness());
  // Memory stayed bounded while the count kept the true total.
  EXPECT_EQ(bounded.apps().size(), 32u);
  EXPECT_EQ(bounded.finished_apps(), 500u);
  EXPECT_EQ(exact.finished_apps(), 500u);
}

TEST(Metrics, BoundedModeKeepsEverythingBelowReservoirCapacity) {
  MetricsConfig cfg;
  cfg.bounded_memory = true;
  cfg.reservoir_capacity = 64;
  MetricsCollector c(cfg);
  for (AppId a = 0; a < 10; ++a)
    c.RecordAppFinish(Record(a, 0.0, 10.0 + a, 10.0));
  // Small runs lose nothing: the sample is the full record set, in order.
  ASSERT_EQ(c.apps().size(), 10u);
  for (AppId a = 0; a < 10; ++a) EXPECT_EQ(c.apps()[a].app, a);
  EXPECT_EQ(c.Rhos().size(), 10u);
}

TEST(Metrics, TimelineDecimatesDeterministically) {
  MetricsConfig cfg;
  cfg.timeline_capacity = 8;
  MetricsCollector c(cfg);
  for (int i = 0; i < 100; ++i)
    c.RecordAllocation(static_cast<Time>(i), 0, i);
  EXPECT_EQ(c.allocation_samples_seen(), 100u);
  EXPECT_LE(c.timeline().size(), 8u);
  // Survivors are exactly the samples at indices divisible by the stride.
  const std::size_t stride = c.timeline_stride();
  EXPECT_GT(stride, 1u);
  for (const AllocationSample& s : c.timeline())
    EXPECT_EQ(s.gpus % static_cast<int>(stride), 0);
  // Retained samples stay in time order.
  for (std::size_t i = 1; i < c.timeline().size(); ++i)
    EXPECT_LT(c.timeline()[i - 1].time, c.timeline()[i].time);
}

TEST(Metrics, DefaultTimelineCapacityKeepsEverySample) {
  MetricsCollector c;
  for (int i = 0; i < 5000; ++i)
    c.RecordAllocation(static_cast<Time>(i), 0, 1);
  EXPECT_EQ(c.timeline().size(), 5000u);
  EXPECT_EQ(c.timeline_stride(), 1u);
}

}  // namespace
}  // namespace themis
