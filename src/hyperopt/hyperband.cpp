#include "hyperopt/hyperband.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace themis {

HyperBand::HyperBand(HyperBandConfig config) : config_(config) {}

void HyperBand::Init(const AppSpec& app) {
  rung_ = 0;
  if (config_.base_iterations > 0.0) {
    base_ = config_.base_iterations;
    return;
  }
  double min_iters = std::numeric_limits<double>::infinity();
  for (const JobSpec& j : app.jobs) min_iters = std::min(min_iters, j.total_iterations);
  base_ = std::max(1.0, min_iters / 16.0);
}

double HyperBand::RungBudget(int rung) const {
  return base_ * std::pow(config_.eta, rung);
}

const TunerDecision& HyperBand::Step(const std::vector<JobView>& jobs,
                                     Time /*now*/) {
  decision_.kill.clear();
  decision_.parallelism_cap.assign(jobs.size(), 0);

  // Equal priority: every alive job may use its full parallelism (Sec. 5.2:
  // "user-configured equal priority i.e. equal G_ideal").
  alive_.clear();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].alive && !jobs[i].finished) {
      decision_.parallelism_cap[i] = jobs[i].spec->MaxParallelism();
      alive_.push_back(static_cast<int>(i));
    }
  }

  // Advance through any rungs whose budget every alive job has met.
  while (alive_.size() > 1) {
    const double budget = RungBudget(rung_);
    bool all_reached = true;
    for (int i : alive_)
      if (jobs[i].done_iterations < budget) {
        all_reached = false;
        break;
      }
    if (!all_reached) break;

    // Rank by loss at the rung budget; kill the worse half (rounded down so
    // at least one job always survives).
    std::vector<int> ranked = alive_;
    std::stable_sort(ranked.begin(), ranked.end(), [&](int a, int b) {
      return jobs[a].spec->loss.LossAt(budget) < jobs[b].spec->loss.LossAt(budget);
    });
    const std::size_t keep = (ranked.size() + 1) / 2;
    for (std::size_t k = keep; k < ranked.size(); ++k) {
      decision_.kill.push_back(ranked[k]);
      decision_.parallelism_cap[ranked[k]] = 0;
    }
    alive_.assign(ranked.begin(), ranked.begin() + static_cast<long>(keep));
    ++rung_;
  }
  return decision_;
}

}  // namespace themis
