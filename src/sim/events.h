// Event queue for the discrete-event simulator. Events at equal times are
// ordered by insertion sequence, making runs fully deterministic.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.h"

namespace themis {

enum class EventType {
  kAppArrival,
  kLeaseTick,       // some lease expires at this time; reclaim + reschedule
  kJobFinish,       // a job is projected to reach its target at this time
  kMachineFail,     // a machine's failure domain trips (Sec. 6)
  kMachineRepair,   // a failed machine returns to service
  kMetricsTick,     // periodic allocation-timeline sample; never runs a round
};

struct Event {
  Time time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break at equal times
  EventType type = EventType::kLeaseTick;
  AppId app = kNoApp;
  JobId job = kNoJob;
  /// For kJobFinish: the job's alloc_version when scheduled; stale events
  /// (version mismatch) are ignored.
  std::uint64_t version = 0;
  /// For kMachineFail / kMachineRepair.
  MachineId machine = 0;
};

class EventQueue {
 public:
  void Push(Event e);
  bool Empty() const { return heap_.empty(); }
  const Event& Top() const { return heap_.top(); }
  Event Pop();
  std::size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace themis
