// Tests for sim/: event queue ordering, progress accounting, leases,
// restart overheads, gang flooring, and end-to-end single-app timing.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/events.h"
#include "sim/experiment.h"
#include "sim/simulator.h"

namespace themis {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  q.Push({5.0, 0, EventType::kLeaseTick, 0, kNoJob, 0});
  q.Push({1.0, 0, EventType::kAppArrival, 1, kNoJob, 0});
  q.Push({5.0, 0, EventType::kJobFinish, 2, 0, 0});
  EXPECT_EQ(q.Pop().type, EventType::kAppArrival);
  EXPECT_EQ(q.Pop().type, EventType::kLeaseTick);  // earlier insertion first
  EXPECT_EQ(q.Pop().type, EventType::kJobFinish);
  EXPECT_TRUE(q.Empty());
}

AppSpec SingleJobApp(Time arrival, double work, int num_tasks,
                     int gpus_per_task, const char* model = "ResNet50") {
  AppSpec app;
  app.arrival = arrival;
  app.tuner = TunerKind::kNone;
  app.target_loss = 0.1;
  JobSpec job;
  job.total_work = work;
  job.total_iterations = 1000.0;
  job.num_tasks = num_tasks;
  job.gpus_per_task = gpus_per_task;
  job.model = ModelByName(model);
  job.loss = LossCurve(0.1 * std::pow(1001.0, 0.6), 0.6, 0.0);
  app.jobs = {job};
  return app;
}

SimConfig FastConfig() {
  SimConfig cfg;
  cfg.lease_minutes = 20.0;
  cfg.restart_overhead_minutes = 0.75;
  return cfg;
}

TEST(Simulator, SingleJobFinishesAtPredictedTime) {
  // 1 machine, 4 GPUs in one slot (S = 1). Work 40, 4 GPUs -> 10 minutes of
  // compute + 0.75 startup overhead.
  Simulator sim(ClusterSpec::Uniform(1, 1, 4, 4),
                {SingleJobApp(0.0, 40.0, 1, 4)},
                std::make_unique<ThemisPolicy>(), FastConfig());
  const SimResult r = sim.Run();
  EXPECT_TRUE(r.unfinished.empty());
  ASSERT_EQ(r.metrics.apps().size(), 1u);
  EXPECT_NEAR(r.metrics.apps()[0].finish, 10.75, 1e-6);
  // rho = 10.75 / (40/4) = 1.075.
  EXPECT_NEAR(r.metrics.apps()[0].Rho(), 1.075, 1e-6);
}

TEST(Simulator, ArrivalOffsetShiftsFinishNotCompletionTime) {
  Simulator sim(ClusterSpec::Uniform(1, 1, 4, 4),
                {SingleJobApp(100.0, 40.0, 1, 4)},
                std::make_unique<ThemisPolicy>(), FastConfig());
  const SimResult r = sim.Run();
  ASSERT_EQ(r.metrics.apps().size(), 1u);
  EXPECT_NEAR(r.metrics.apps()[0].finish, 110.75, 1e-6);
  EXPECT_NEAR(r.metrics.apps()[0].CompletionTime(), 10.75, 1e-6);
}

TEST(Simulator, LeaseRenewalAvoidsRestartOverhead) {
  // Work 100 on 4 GPUs = 25 min of compute: spans a 20-minute lease. The
  // lone app wins its own GPUs back at the lease tick, so only the initial
  // 0.75 overhead applies: finish at 25.75.
  Simulator sim(ClusterSpec::Uniform(1, 1, 4, 4),
                {SingleJobApp(0.0, 100.0, 1, 4)},
                std::make_unique<ThemisPolicy>(), FastConfig());
  const SimResult r = sim.Run();
  ASSERT_EQ(r.metrics.apps().size(), 1u);
  EXPECT_NEAR(r.metrics.apps()[0].finish, 25.75, 1e-6);
}

TEST(Simulator, GpuTimeCountsHeldGpuMinutes) {
  Simulator sim(ClusterSpec::Uniform(1, 1, 4, 4),
                {SingleJobApp(0.0, 40.0, 1, 4)},
                std::make_unique<ThemisPolicy>(), FastConfig());
  const SimResult r = sim.Run();
  // 4 GPUs held from t=0 to t=10.75 (including the restart stall).
  EXPECT_NEAR(r.metrics.TotalGpuTime(), 4.0 * 10.75, 1e-6);
  EXPECT_NEAR(r.metrics.apps()[0].attained_service, 4.0 * 10.75, 1e-6);
}

TEST(Simulator, PlacementSlowdownStretchesRuntime) {
  // Two 2-GPU machines in different racks; VGG16 with a 4-GPU job must span
  // racks: rate = 4 * 0.35 = 1.4; finish ~ 0.75 + 40/1.4.
  ClusterSpec spec;
  spec.racks.push_back(RackSpec{{MachineSpec{2, 2}}});
  spec.racks.push_back(RackSpec{{MachineSpec{2, 2}}});
  Simulator sim(spec, {SingleJobApp(0.0, 40.0, 1, 4, "VGG16")},
                std::make_unique<ThemisPolicy>(), FastConfig());
  const SimResult r = sim.Run();
  ASSERT_TRUE(r.unfinished.empty());
  const double s = ModelByName("VGG16").sensitivity.cross_rack;
  EXPECT_NEAR(r.metrics.apps()[0].finish, 0.75 + 40.0 / (4.0 * s), 1e-6);
}

TEST(Simulator, StrayGpusBeyondGangsDoNotSpeedUp) {
  // 6 GPUs on one machine; job has 4-GPU tasks and max parallelism 8, so it
  // can hold 6 but only 4 are usable.
  ClusterSpec spec;
  spec.racks.push_back(RackSpec{{MachineSpec{6, 2}}});
  Simulator sim(spec, {SingleJobApp(0.0, 40.0, 2, 4)},
                std::make_unique<ThemisPolicy>(), FastConfig());
  const SimResult r = sim.Run();
  ASSERT_TRUE(r.unfinished.empty());
  // ResNet machine-span S = 0.99 over 4 usable GPUs.
  const double s = ModelByName("ResNet50").sensitivity.machine;
  EXPECT_NEAR(r.metrics.apps()[0].finish, 0.75 + 40.0 / (4.0 * s), 1e-2);
}

TEST(Simulator, TwoAppsShareViaLeases) {
  // 4 GPUs, two identical 4-GPU apps arriving together: one waits a lease.
  std::vector<AppSpec> apps{SingleJobApp(0.0, 40.0, 1, 4),
                            SingleJobApp(0.0, 40.0, 1, 4)};
  Simulator sim(ClusterSpec::Uniform(1, 1, 4, 4), apps,
                std::make_unique<ThemisPolicy>(), FastConfig());
  const SimResult r = sim.Run();
  EXPECT_TRUE(r.unfinished.empty());
  ASSERT_EQ(r.metrics.apps().size(), 2u);
  std::vector<double> finishes{r.metrics.apps()[0].finish,
                               r.metrics.apps()[1].finish};
  std::sort(finishes.begin(), finishes.end());
  EXPECT_NEAR(finishes[0], 10.75, 1e-6);
  // Second app starts when the first finishes (job-finish pass), not at the
  // lease tick: 10.75 + 10.75.
  EXPECT_NEAR(finishes[1], 21.5, 1e-6);
}

TEST(Simulator, HyperBandAppTerminatesPoorJobs) {
  AppSpec app;
  app.arrival = 0.0;
  app.tuner = TunerKind::kHyperBand;
  app.target_loss = 0.1;
  for (int j = 0; j < 4; ++j) {
    JobSpec job;
    job.num_tasks = 1;
    job.gpus_per_task = 2;
    const double decay = 1.0 - 0.15 * j;
    job.total_iterations = 200.0 + 100.0 * j;
    job.total_work = 20.0 + 10.0 * j;
    job.loss = LossCurve(0.1 * std::pow(job.total_iterations + 1.0, decay),
                         decay, 0.0);
    app.jobs.push_back(job);
  }
  Simulator sim(ClusterSpec::Uniform(1, 2, 4, 2), {app},
                std::make_unique<ThemisPolicy>(), FastConfig());
  const SimResult r = sim.Run();
  EXPECT_TRUE(r.unfinished.empty());
  ASSERT_EQ(r.metrics.apps().size(), 1u);
  // The app finished once its best job reached target.
  EXPECT_GT(r.metrics.apps()[0].finish, 0.0);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = []() {
    auto cfg = SimScaleConfig(PolicyKind::kThemis, 99, 30);
    return RunExperiment(cfg);
  };
  const ExperimentResult a = run();
  const ExperimentResult b = run();
  EXPECT_EQ(a.rhos, b.rhos);
  EXPECT_EQ(a.completion_times, b.completion_times);
  EXPECT_DOUBLE_EQ(a.gpu_time, b.gpu_time);
}

TEST(Simulator, PeakContentionReflectsOverlap) {
  // Two apps demanding 4 GPUs each on a 4-GPU cluster, overlapping in time:
  // peak contention = 8 / 4 = 2.
  std::vector<AppSpec> apps{SingleJobApp(0.0, 40.0, 1, 4),
                            SingleJobApp(1.0, 40.0, 1, 4)};
  Simulator sim(ClusterSpec::Uniform(1, 1, 4, 4), apps,
                std::make_unique<ThemisPolicy>(), FastConfig());
  const SimResult r = sim.Run();
  EXPECT_NEAR(r.peak_contention, 2.0, 1e-9);
}

TEST(Simulator, AllPoliciesFinishEverything) {
  for (PolicyKind kind : {PolicyKind::kThemis, PolicyKind::kGandiva,
                          PolicyKind::kTiresias, PolicyKind::kSlaq}) {
    auto cfg = SimScaleConfig(kind, 5, 25);
    const ExperimentResult r = RunExperiment(cfg);
    EXPECT_EQ(r.unfinished_apps, 0) << ToString(kind);
    EXPECT_EQ(r.rhos.size(), 25u) << ToString(kind);
  }
}

TEST(Simulator, TimelineRecordsAllocations) {
  auto cfg = SimScaleConfig(PolicyKind::kThemis, 3, 10);
  const ExperimentResult r = RunExperiment(cfg);
  EXPECT_FALSE(r.timeline.empty());
  for (const AllocationSample& s : r.timeline) {
    EXPECT_GE(s.gpus, 0);
    EXPECT_GE(s.time, 0.0);
  }
}

TEST(Simulator, RhosAreBoundedByContentionBallpark) {
  auto cfg = SimScaleConfig(PolicyKind::kThemis, 21, 40);
  const ExperimentResult r = RunExperiment(cfg);
  ASSERT_EQ(r.unfinished_apps, 0);
  for (double rho : r.rhos) {
    EXPECT_GT(rho, 0.9);  // can't beat ideal by more than rounding
    EXPECT_LT(rho, kUnboundedRho);
  }
}


TEST(Simulator, FailureInjectionCompletesAndCounts) {
  auto cfg = SimScaleConfig(PolicyKind::kThemis, 8, 25);
  cfg.sim.machine_mtbf_minutes = 2000.0;
  cfg.sim.machine_repair_minutes = 30.0;
  const ExperimentResult r = RunExperiment(cfg);
  EXPECT_EQ(r.unfinished_apps, 0);
  EXPECT_GT(r.machine_failures, 0);
}

TEST(Simulator, FailureInjectionIsDeterministic) {
  auto run = []() {
    auto cfg = SimScaleConfig(PolicyKind::kThemis, 9, 20);
    cfg.sim.machine_mtbf_minutes = 3000.0;
    return RunExperiment(cfg);
  };
  const ExperimentResult a = run();
  const ExperimentResult b = run();
  EXPECT_EQ(a.machine_failures, b.machine_failures);
  EXPECT_EQ(a.rhos, b.rhos);
}

TEST(Simulator, FailedMachineRevokesLeasesAndJobRecovers) {
  // Deterministic single-failure scenario: one 4-GPU machine plus one 4-GPU
  // backup machine. The job starts on machine 0; when it fails the job must
  // migrate to machine 1 and still finish.
  AppSpec app = SingleJobApp(0.0, 400.0, 1, 4);
  SimConfig cfg = FastConfig();
  cfg.machine_mtbf_minutes = 500.0;  // a failure will land mid-run
  cfg.machine_repair_minutes = 10000.0;  // no recovery within the run
  Simulator sim(ClusterSpec::Uniform(1, 2, 4, 4), {app},
                std::make_unique<ThemisPolicy>(), cfg);
  const SimResult r = sim.Run();
  EXPECT_TRUE(r.unfinished.empty());
  // Baseline (no failure) would be 0.75 + 100; any failure adds delay but
  // never deadlock.
  EXPECT_GE(r.metrics.apps()[0].finish, 100.75 - 1e-9);
}

TEST(Simulator, PlacementConstraintForcesMachineLocalProgress) {
  // Two 2-GPU machines; the job wants 4 GPUs but tolerates only machine
  // span. Spanning allocations give zero progress, so the scheduler's
  // gang-by-gang growth must still let it finish on whatever single-machine
  // pair it can use.
  AppSpec app;
  app.arrival = 0.0;
  app.tuner = TunerKind::kNone;
  app.target_loss = 0.1;
  JobSpec job;
  job.total_work = 20.0;
  job.total_iterations = 100.0;
  job.num_tasks = 2;
  job.gpus_per_task = 2;
  job.max_span = LocalityLevel::kMachine;
  job.model = ModelByName("ResNet50");
  job.loss = LossCurve(0.1 * std::pow(101.0, 0.6), 0.6, 0.0);
  app.jobs = {job};
  ClusterSpec spec;
  spec.racks.push_back(RackSpec{{MachineSpec{2, 2}, MachineSpec{2, 2}}});
  Simulator sim(spec, {app}, std::make_unique<ThemisPolicy>(), FastConfig());
  const SimResult r = sim.Run();
  EXPECT_TRUE(r.unfinished.empty());
}

TEST(Simulator, EffectiveJobRateZeroBeyondConstraint) {
  const Topology topo(ClusterSpec::Uniform(2, 2, 4, 2));
  JobSpec job;
  job.model = ModelByName("ResNet50");
  job.max_span = LocalityLevel::kMachine;
  EXPECT_GT(EffectiveJobRate(job, {0, 1, 2, 3}, topo), 0.0);
  EXPECT_DOUBLE_EQ(EffectiveJobRate(job, {0, 4}, topo), 0.0);   // rack span
  EXPECT_DOUBLE_EQ(EffectiveJobRate(job, {0, 8}, topo), 0.0);   // cross rack
  job.max_span = LocalityLevel::kCrossRack;
  EXPECT_GT(EffectiveJobRate(job, {0, 8}, topo), 0.0);
}

TEST(SimConfigValidation, RejectsNonPositiveLease) {
  SimConfig cfg;
  cfg.lease_minutes = 0.0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  cfg.lease_minutes = -5.0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
}

TEST(SimConfigValidation, RejectsNegativeRestartOverhead) {
  SimConfig cfg;
  cfg.restart_overhead_minutes = -0.1;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  cfg.restart_overhead_minutes = 0.0;  // zero overhead is legitimate
  EXPECT_NO_THROW(cfg.Validate());
}

TEST(SimConfigValidation, RejectsBadFailureKnobs) {
  SimConfig cfg;
  cfg.machine_mtbf_minutes = -1.0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  cfg.machine_mtbf_minutes = 1000.0;
  cfg.machine_repair_minutes = 0.0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  // Repair time only matters when injection is on.
  cfg.machine_mtbf_minutes = 0.0;
  EXPECT_NO_THROW(cfg.Validate());
}

TEST(SimConfigValidation, RejectsNonPositiveMaxTime) {
  SimConfig cfg;
  cfg.max_time = 0.0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
}

TEST(SimConfigValidation, SimulatorConstructorValidates) {
  SimConfig cfg;
  cfg.lease_minutes = -1.0;
  EXPECT_THROW(Simulator(ClusterSpec::Uniform(1, 1, 4, 4),
                         {SingleJobApp(0.0, 40.0, 1, 4)},
                         std::make_unique<ThemisPolicy>(), cfg),
               std::invalid_argument);
}

TEST(Simulator, DrfPolicyCompletesWorkload) {
  const ExperimentResult r = RunExperiment(SimScaleConfig(PolicyKind::kDrf, 5, 25));
  EXPECT_EQ(r.unfinished_apps, 0);
  EXPECT_EQ(r.rhos.size(), 25u);
}

}  // namespace
}  // namespace themis
