// Ablation bench (DESIGN.md design-choice index): isolates the contribution
// of THEMIS's individual mechanisms by disabling them one at a time on the
// same contended workload:
//   - hidden payments off  -> plain proportional fairness, no truthfulness
//     incentive and no leftover pool from payments
//   - short-app tie-break off -> equal-rho ties fall back to submission
//     order (Sec. 8.3.1 argues short-app preference drives ACT wins)
//   - fairness knob f = 0  -> every hungry app sees every offer
// Reported: max/median fairness, Jain's index, average ACT, GPU time.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  struct Variant {
    const char* name;
    const char* key;
    ThemisConfig config;
  };
  ThemisConfig base;
  ThemisConfig no_payments = base;
  no_payments.pa.hidden_payments = false;
  ThemisConfig no_tiebreak = base;
  no_tiebreak.short_app_tiebreak = false;
  ThemisConfig f_zero = base;
  f_zero.fairness_knob = 0.0;
  const Variant variants[] = {
      {"Themis (full)", "full", base},
      {"no hidden payments", "no_payments", no_payments},
      {"no short-app tie-break", "no_tiebreak", no_tiebreak},
      {"fairness knob f=0", "f_zero", f_zero},
  };

  BenchReport report("ablation_design");
  report.Config("cluster", "sim256");
  report.Config("contention_factor", 4.0);
  report.Config("trace_seeds", 3.0);

  std::printf("=== Ablation: Themis design choices (mean of 3 seeds) ===\n");
  std::printf("%-24s %9s %9s %7s %9s %12s\n", "variant", "max_rho", "med_rho",
              "jain", "avg_ACT", "gpu_time");
  for (const Variant& v : variants) {
    double mx = 0, med = 0, jain = 0, act = 0, gpu = 0;
    for (std::uint64_t seed : {42ull, 43ull, 44ull}) {
      ExperimentConfig cfg = ContendedSimConfig(PolicyKind::kThemis, seed, 100);
      cfg.themis = v.config;
      const ExperimentResult r = RunExperiment(cfg);
      mx += r.max_fairness / 3;
      med += r.median_fairness / 3;
      jain += r.jains_index / 3;
      act += r.avg_completion_time / 3;
      gpu += r.gpu_time / 3;
    }
    std::printf("%-24s %9.2f %9.2f %7.3f %9.1f %12.0f\n", v.name, mx, med,
                jain, act, gpu);
    const std::string tag = v.key;
    report.Metric("max_rho." + tag, mx);
    report.Metric("median_rho." + tag, med);
    report.Metric("jains_index." + tag, jain);
    report.Metric("avg_act_min." + tag, act);
    report.Metric("gpu_time_min." + tag, gpu);
  }
  return report.Write() ? 0 : 1;
}
