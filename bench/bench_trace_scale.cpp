// bench_trace_scale — streamed million-job replay at 4096 GPUs.
//
// The scale claim behind the streaming pipeline: a trace far larger than
// memory replays end to end with RSS tracking peak *concurrency*, not trace
// length. Apps are injected as the stream advances, retired as they finish,
// and the metric side runs in bounded mode (reservoir + streaming
// quantiles), so the only O(trace) artifact anywhere is the CSV on disk.
//
// Workload source, in order of preference:
//   - $THEMIS_BENCH_TRACE_FILE: stream that CSV (generate one with
//     `trace_gen --stream-out FILE --jobs N --seed 42`);
//   - otherwise: stream straight from the generator (same distribution,
//     no file needed).
// $THEMIS_BENCH_TRACE_JOBS caps the replay size (default 100000 jobs —
// the local tier; CI's smoke tier sets it lower and asserts peak RSS).
//
// Reports jobs/sec, wall seconds, peak RSS (getrusage), peak live apps,
// scheduling passes. Exits nonzero if any app failed to finish.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_common.h"
#include "workload/trace_gen.h"
#include "workload/trace_io.h"

namespace {

using namespace themis;

/// Stops the stream once `max_jobs` jobs have been injected, counting jobs
/// into a caller-owned slot (the reader itself is consumed by the sim).
class JobCappedReader : public TraceReader {
 public:
  JobCappedReader(std::unique_ptr<TraceReader> inner, long long max_jobs,
                  long long* jobs_out)
      : inner_(std::move(inner)), max_jobs_(max_jobs), jobs_out_(jobs_out) {}

  bool Next(AppSpec& out) override {
    if (max_jobs_ > 0 && *jobs_out_ >= max_jobs_) return false;
    if (!inner_->Next(out)) return false;
    *jobs_out_ += static_cast<long long>(out.jobs.size());
    return true;
  }

 private:
  std::unique_ptr<TraceReader> inner_;
  long long max_jobs_;
  long long* jobs_out_;
};

double PeakRssMb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

long long EnvLL(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::atoll(v) : fallback;
}

}  // namespace

int main() {
  const long long max_jobs = EnvLL("THEMIS_BENCH_TRACE_JOBS", 100000);
  const char* trace_file = std::getenv("THEMIS_BENCH_TRACE_FILE");

  ExperimentConfig config;
  // 8 racks x 64 machines x 8 GPUs = 4096 GPUs.
  config.cluster = ClusterSpec::Uniform(8, 64, 8, 4);
  config.sim.seed = 42;
  config.sim.metrics.bounded_memory = true;

  // Generator fallback: arrivals every ~2 min keep a 4096-GPU cluster busy
  // without drowning it; trace_gen's fixture should use the same knobs so
  // the two sources exercise the same regime.
  TraceConfig trace;
  trace.seed = 42;
  trace.num_apps = 1 << 30;  // the job cap, not the app count, ends the run
  trace.mean_interarrival = 2.0;

  long long jobs = 0;
  std::unique_ptr<TraceReader> source;
  if (trace_file && *trace_file)
    source = std::make_unique<StreamingCsvTraceReader>(trace_file);
  else
    source = std::make_unique<GeneratorTraceReader>(trace);
  auto reader =
      std::make_unique<JobCappedReader>(std::move(source), max_jobs, &jobs);

  const double rss_before_mb = PeakRssMb();
  const auto t0 = std::chrono::steady_clock::now();
  ExperimentResult r;
  try {
    r = RunStreamingExperiment(config, std::move(reader));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench: %s\n", e.what());
    return 1;
  }
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double peak_rss_mb = PeakRssMb();
  const double jobs_per_sec =
      wall_sec > 0.0 ? static_cast<double>(jobs) / wall_sec : 0.0;

  std::printf("trace scale replay: 4096 GPUs, streamed %s\n",
              (trace_file && *trace_file) ? trace_file : "(generator)");
  std::printf("%-18s %12lld\n", "jobs", jobs);
  std::printf("%-18s %12zu\n", "apps", r.total_apps);
  std::printf("%-18s %12zu\n", "peak live apps", r.peak_live_apps);
  std::printf("%-18s %12d\n", "unfinished", r.unfinished_apps);
  std::printf("%-18s %12d\n", "passes", r.scheduling_passes);
  std::printf("%-18s %12.2f\n", "wall sec", wall_sec);
  std::printf("%-18s %12.0f\n", "jobs/sec", jobs_per_sec);
  std::printf("%-18s %12.1f\n", "peak RSS MB", peak_rss_mb);
  std::printf("%-18s %12.3f\n", "Jain's index", r.jains_index);
  std::printf("%-18s %12.1f\n", "avg ACT min", r.avg_completion_time);

  themis::bench::BenchReport report("trace_scale");
  report.Config("gpus", 4096.0);
  report.Config("jobs", static_cast<double>(max_jobs));
  report.Config("source",
                (trace_file && *trace_file) ? "file" : "generator");
  report.Metric("jobs", static_cast<double>(jobs));
  report.Metric("apps", static_cast<double>(r.total_apps));
  report.Metric("peak_live_apps", static_cast<double>(r.peak_live_apps));
  report.Metric("unfinished", r.unfinished_apps);
  report.Metric("passes", r.scheduling_passes);
  report.Metric("wall_sec", wall_sec);
  report.Metric("jobs_per_sec", jobs_per_sec);
  report.Metric("peak_rss_mb", peak_rss_mb);
  report.Metric("rss_before_mb", rss_before_mb);
  report.Metric("jain", r.jains_index);
  report.Metric("avg_act_min", r.avg_completion_time);
  report.Write();

  return r.unfinished_apps == 0 ? 0 : 1;
}
