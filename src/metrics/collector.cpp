#include "metrics/collector.h"

#include <algorithm>
#include <sstream>

namespace themis {

void MetricsCollector::RecordAppFinish(const AppRecord& record) {
  apps_.push_back(record);
}

void MetricsCollector::RecordAllocation(Time time, AppId app, int gpus) {
  timeline_.push_back({time, app, gpus});
}

void MetricsCollector::RecordAuction(int /*participants*/, int offered_gpus,
                                     int /*granted_gpus*/, int leftover_gpus) {
  ++auctions_;
  if (offered_gpus > 0) {
    leftover_fraction_sum_ +=
        static_cast<double>(leftover_gpus) / static_cast<double>(offered_gpus);
    ++leftover_samples_;
  }
}

std::vector<double> MetricsCollector::Rhos() const {
  std::vector<double> out;
  out.reserve(apps_.size());
  for (const AppRecord& a : apps_) out.push_back(a.Rho());
  return out;
}

std::vector<double> MetricsCollector::CompletionTimes() const {
  std::vector<double> out;
  out.reserve(apps_.size());
  for (const AppRecord& a : apps_) out.push_back(a.CompletionTime());
  return out;
}

std::vector<double> MetricsCollector::PlacementScores() const {
  std::vector<double> out;
  out.reserve(apps_.size());
  for (const AppRecord& a : apps_) out.push_back(a.mean_placement_score);
  return out;
}

double MetricsCollector::MaxFairness() const {
  double worst = 0.0;
  for (const AppRecord& a : apps_) worst = std::max(worst, a.Rho());
  return worst;
}

double MetricsCollector::MinFairness() const {
  if (apps_.empty()) return 0.0;
  double best = apps_.front().Rho();
  for (const AppRecord& a : apps_) best = std::min(best, a.Rho());
  return best;
}

double MetricsCollector::MedianFairness() const {
  if (apps_.empty()) return 0.0;
  return Percentile(Rhos(), 50.0);
}

double MetricsCollector::JainsFairnessIndex() const {
  const auto rhos = Rhos();
  return JainsIndex(rhos);
}

double MetricsCollector::AverageCompletionTime() const {
  if (apps_.empty()) return 0.0;
  double sum = 0.0;
  for (const AppRecord& a : apps_) sum += a.CompletionTime();
  return sum / static_cast<double>(apps_.size());
}

double MetricsCollector::MeanLeftoverFraction() const {
  if (leftover_samples_ == 0) return 0.0;
  return leftover_fraction_sum_ / static_cast<double>(leftover_samples_);
}

std::string MetricsCollector::SummaryString() const {
  std::ostringstream os;
  os << "apps=" << apps_.size() << " max_rho=" << MaxFairness()
     << " median_rho=" << MedianFairness() << " jain=" << JainsFairnessIndex()
     << " avg_act=" << AverageCompletionTime() << " gpu_time=" << TotalGpuTime();
  return os.str();
}

}  // namespace themis
