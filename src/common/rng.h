// Deterministic random number generation.
//
// Every stochastic component in the repository (trace generation, tie
// breaking in leftover allocation, bid-valuation error injection) draws from
// an explicitly seeded Rng so that simulations are bit-reproducible across
// runs and platforms. We implement xoshiro256** seeded via splitmix64 rather
// than relying on std::default_random_engine, whose sequence is
// implementation-defined.
#pragma once

#include <cstdint>
#include <vector>

namespace themis {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Normally distributed value (Box-Muller, deterministic).
  double Normal(double mean, double stddev);

  /// Log-normally distributed value parameterized by the *median* and the
  /// log-space sigma. Median parameterization matches how the paper reports
  /// its trace statistics (median task durations of 59 / 123 minutes).
  double LogNormalMedian(double median, double sigma);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextU64() % i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Split off an independent child stream; used to give each app its own
  /// stream so that adding apps does not perturb earlier apps' draws.
  Rng Split();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace themis
