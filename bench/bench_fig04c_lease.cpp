// Figure 4c: "Variation of Fairness with Lease Time" — max finish-time
// fairness for lease durations {5, 10, 20, 30, 40} minutes at f = 0.8.
//
// Paper shape: shorter leases improve fairness (finer-grained reallocation,
// shorter waits for arrivals) at the cost of more auctions/checkpointing.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace themis;
  using namespace themis::bench;

  BenchReport report("fig04c_lease");
  report.Config("cluster", "sim256");
  report.Config("contention_factor", 4.0);
  report.Config("trace_seeds", 5.0);

  std::printf("=== Figure 4c: max finish-time fairness vs lease time ===\n");
  std::printf("(mean of 5 trace seeds, 256-GPU simulated cluster)\n");
  std::printf("%12s %10s\n", "lease(min)", "max_rho");

  // One parallel sweep over the lease x seed grid (results in input order).
  const double leases[] = {5.0, 10.0, 20.0, 30.0, 40.0};
  const int kSeeds = 5;
  std::vector<ScenarioSpec> specs;
  for (double lease : leases) {
    for (std::uint64_t seed = 42; seed < 42 + kSeeds; ++seed) {
      char name[48];
      std::snprintf(name, sizeof name, "lease%.0f/seed%llu", lease,
                    static_cast<unsigned long long>(seed));
      ScenarioSpec spec;
      spec.name = name;
      spec.config = ContendedSimConfig(PolicyKind::kThemis, seed);
      spec.config.sim.lease_minutes = lease;
      specs.push_back(std::move(spec));
    }
  }
  const std::vector<ScenarioRun> runs = SweepRunner().Run(specs);

  for (std::size_t li = 0; li < std::size(leases); ++li) {
    const double lease = leases[li];
    double mx = 0.0;
    for (int s = 0; s < kSeeds; ++s)
      mx += RequireOk(runs[li * kSeeds + s]).max_fairness / kSeeds;
    std::printf("%12.0f %10.2f\n", lease, mx);
    char key[48];
    std::snprintf(key, sizeof key, "max_rho@lease=%.0fmin", lease);
    report.Metric(key, mx);
  }
  std::printf("\npaper reference: smaller lease times give better (lower)"
              " max fairness; 20 min balances overhead\n");
  return report.Write() ? 0 : 1;
}
