// The ARBITER <-> AGENT round protocol (Fig. 3 / Pseudocode 1), reified as
// the public scheduling API.
//
// One scheduling pass is one *round*: the ARBITER publishes a ResourceOffer
// (the free pool plus its per-machine shape and the lease terms), a round
// scheduler answers with a GrantSet (per-(app, job) GPU bundles plus
// diagnostics), and the simulator — never the policy — turns the grants into
// binding leases through the single ApplyGrants path. Offers and grant sets
// are plain data: they carry ids and GPU lists, not Cluster pointers, so a
// federation layer can route them between sharded ARBITERs (core/federation)
// and a batching layer can coalesce several lease ticks into one bigger
// offer without new interfaces.
//
// Policies consume the offer through a FreePool — an O(1)-membership,
// O(1)-removal, ordered view of the offered GPUs — so the greedy baselines
// no longer erase from free vectors with O(n) std::remove.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/topology.h"
#include "common/types.h"

namespace themis {

class Cluster;
class SchedulerContext;

/// Step 1-2 of the round: the ARBITER's published free pool. `gpus` is the
/// complete current free pool in ascending id order and `free_per_machine`
/// is the matching auction resource vector R-> (index = MachineId), so a
/// policy never recounts the pool. `machine_speeds` prices the vector:
/// machine m offers free_per_machine[m] GPUs of relative generation speed
/// machine_speeds[m], so bidders can value faster machines without topology
/// access — offers stay plain routable data across federation shards.
struct ResourceOffer {
  /// Monotonic per-ARBITER round number (the simulator uses its pass count).
  std::uint64_t round_id = 0;
  /// Simulated time the round runs at.
  Time time = 0.0;
  /// Lease duration for every grant of this round.
  Time lease_duration = 0.0;
  std::vector<GpuId> gpus;
  std::vector<int> free_per_machine;
  /// Relative generation speed per machine, aligned with free_per_machine.
  std::vector<double> machine_speeds;

  int TotalGpus() const { return static_cast<int>(gpus.size()); }
  /// Offered capacity in effective (speed-weighted) GPUs.
  double TotalEffectiveGpus() const;
};

/// Snapshot the cluster's free pool into an offer.
ResourceOffer MakeOffer(std::uint64_t round_id, Time now, Time lease_duration,
                        const Cluster& cluster);

/// One bundle of a round's outcome: `gpus` leased to (app, job).
struct Grant {
  AppId app = kNoApp;
  JobId job = kNoJob;
  std::vector<GpuId> gpus;
};

/// Per-round diagnostics, reset by construction every round (they used to be
/// stateful counters on ThemisPolicy and leaked across simulator runs when a
/// policy instance was reused).
struct RoundDiagnostics {
  /// GPUs in the round's offer.
  int offered_gpus = 0;
  /// GPUs handed out by the round's grants.
  int granted_gpus = 0;
  /// Offered GPUs still free after the round (stage-3 residue).
  int leftover_gpus = 0;
  /// True when a Partial Allocation auction ran (Themis rounds with at
  /// least one hungry app); the greedy baselines never set it.
  bool auction_ran = false;
  /// Apps offered the pool in the auction (the worst-off 1-f fraction).
  int auction_participants = 0;
};

/// The policy's answer to an offer. Plain data, applied by ApplyGrants.
struct GrantSet {
  /// Copied from the offer that produced this set.
  std::uint64_t round_id = 0;
  /// Lease expiry every grant binds to: offer.time + offer.lease_duration.
  Time lease_expiry = 0.0;
  std::vector<Grant> grants;
  RoundDiagnostics diagnostics;

  int TotalGpus() const;
};

/// The single lease-application path: create the binding lease for every
/// granted GPU. The job-side gang (JobState::gpus) was already recorded when
/// the grant was staged through SchedulerContext::Grant — the AGENT side of
/// the protocol; this is the ARBITER side. Cluster::Allocate throws if a GPU
/// is already taken, so double-applying a set (or applying two sets that
/// grant the same GPU) fails loudly. Returns the number of GPUs leased.
int ApplyGrants(const GrantSet& grants, Cluster& cluster);

/// Ordered mutable view of an offer's free pool. Membership and removal are
/// O(1) (intrusive doubly-linked list over GPU ids + a bitmap); ascending
/// iteration is O(pool size); per-machine counts are maintained on removal.
class FreePool {
 public:
  FreePool() = default;
  FreePool(const std::vector<GpuId>& gpus, const Topology& topo);

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool Contains(GpuId g) const {
    return g < in_.size() && in_[g] != 0;
  }

  /// Remove a GPU from the pool (it was granted). O(1); `g` must be present.
  void Remove(GpuId g);

  /// Free count per machine for the GPUs still in the pool.
  const std::vector<int>& per_machine() const { return per_machine_; }

  /// Sum of generation speeds over the pooled GPUs (effective capacity),
  /// maintained on removal. Equals size() on speed-1.0 clusters.
  double speed_total() const { return speed_total_; }

  /// First pooled GPU (ascending), or kNoGpu when empty.
  GpuId First() const { return next_[sentinel_]; }
  /// Pooled GPU after `g` (ascending), or kNoGpu when `g` is the last.
  GpuId Next(GpuId g) const {
    const GpuId n = next_[g];
    return n == sentinel_ ? kNoGpu : n;
  }

  /// The pool as an ascending vector (for placement helpers that want a
  /// random-access view). O(pool size).
  std::vector<GpuId> ToVector() const;

  /// The first min(n, size()) pooled GPUs, ascending.
  std::vector<GpuId> FirstN(int n) const;

  /// The min(n, size()) fastest pooled GPUs: machines by descending
  /// generation speed (ties ascending machine id), ascending GPU id within
  /// a machine. On a uniform-speed topology this is exactly FirstN — the
  /// deterministic speed-aware pick the greedy baselines take their gangs
  /// from.
  std::vector<GpuId> FirstNFastest(int n) const;

 private:
  GpuId sentinel_ = 0;           // == num_gpus; list head/tail anchor
  std::vector<GpuId> next_;      // size num_gpus + 1; next_[sentinel_] = head
  std::vector<GpuId> prev_;
  std::vector<unsigned char> in_;
  std::vector<int> per_machine_;
  const Topology* topo_ = nullptr;
  int size_ = 0;
  double speed_total_ = 0.0;
};

/// A round scheduler — the bottom level of the two-level architecture
/// (Sec. 2.3) in protocol form. Given an offer it stages grants through the
/// context (which keeps the pool, the per-machine counts, and the job gangs
/// consistent as grants accumulate) and returns the finished GrantSet. It
/// must not mutate the cluster: lease creation is the caller's job, through
/// ApplyGrants.
class IRoundScheduler {
 public:
  virtual ~IRoundScheduler() = default;

  /// Run one offer -> bid -> grant round. Precondition: `offer` matches the
  /// context's pool (the context was built from this offer, or from the
  /// same cluster state the offer snapshots).
  virtual GrantSet RunRound(const ResourceOffer& offer,
                            SchedulerContext& ctx) = 0;

  virtual const char* name() const = 0;
};

}  // namespace themis
