#include "estimator/work_estimator.h"

#include <algorithm>
#include <cmath>

namespace themis {

WorkEstimator::WorkEstimator(EstimatorConfig config)
    : config_(config), rng_(config.seed) {}

double WorkEstimator::Perturb(double value) {
  if (config_.mode != EstimationMode::kNoisy || config_.theta <= 0.0)
    return value;
  const double err = rng_.Uniform(-config_.theta, config_.theta);
  return std::max(0.0, value * (1.0 + err));
}

Work WorkEstimator::RemainingWork(const JobSpec& job, double done_iterations,
                                  double target_loss) {
  double iters_left = 0.0;
  switch (config_.mode) {
    case EstimationMode::kClairvoyant:
    case EstimationMode::kNoisy: {
      iters_left = std::max(0.0, job.total_iterations - done_iterations);
      break;
    }
    case EstimationMode::kCurveFit: {
      // Sample the job's analytic loss curve at a handful of observed
      // iterations, exactly as the profiler would read TF logs, then fit.
      std::vector<LossSample> samples;
      const double upto = std::max(2.0, done_iterations);
      for (int k = 0; k < 8; ++k) {
        const double it = upto * static_cast<double>(k + 1) / 8.0;
        samples.push_back({it, job.loss.LossAt(it)});
      }
      auto pred = PredictIterationsToTarget(samples, target_loss);
      const double total = pred.value_or(job.total_iterations);
      iters_left = std::max(0.0, total - done_iterations);
      break;
    }
  }
  return Perturb(iters_left * job.WorkPerIteration());
}

Work WorkEstimator::TotalWork(const JobSpec& job, double target_loss) {
  if (config_.mode == EstimationMode::kCurveFit) {
    std::vector<LossSample> samples;
    for (int k = 1; k <= 8; ++k) {
      const double it = job.total_iterations * static_cast<double>(k) / 16.0;
      samples.push_back({it, job.loss.LossAt(it)});
    }
    auto pred = PredictIterationsToTarget(samples, target_loss);
    return pred.value_or(job.total_iterations) * job.WorkPerIteration();
  }
  return Perturb(job.total_work);
}

}  // namespace themis
