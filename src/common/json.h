// Minimal JSON reader + writer shared by scenario files (src/sim/scenario.*)
// and the ARBITER wire protocol (src/net/wire.*).
//
// The reader supports the full JSON value grammar (objects, arrays, strings
// with escapes, numbers, booleans, null) with line-numbered parse errors.
// The writer (JsonWriter) emits compact single-line documents with correct
// string escaping and shortest round-trip number formatting, so
// Parse(JsonWriter::Write(v)) reproduces v bit-for-bit — the property the
// newline-delimited wire codec depends on for grant-stream equivalence.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace themis {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse one JSON document. Throws std::runtime_error with a line number
  /// on malformed input, trailing garbage, or containers nested more than
  /// 64 deep (the recursion bound that keeps untrusted wire frames from
  /// overflowing the stack).
  static JsonValue Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& items() const;
  /// Object members in document order (duplicate keys keep both; Find
  /// returns the first).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Member lookup on an object; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;

  /// Builder constructors, so embedders can assemble documents for
  /// JsonWriter instead of hand-formatting JSON strings.
  static JsonValue MakeNull();
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double n);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  /// Append an element to an array. Throws on non-arrays.
  void Append(JsonValue v);
  /// Append a member to an object (no duplicate-key check, matching the
  /// parser's duplicate behavior: Find returns the first). Throws on
  /// non-objects.
  void Set(std::string key, JsonValue v);

  /// Deep structural equality (numbers compare by ==, so two NaNs differ
  /// and -0.0 == 0.0 — the writer never emits NaN anyway). Backs the
  /// Parse(Write(v)) == v round-trip property tests.
  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

  /// Convenience lookups with defaults, for knob-style scenario fields.
  double NumberOr(const std::string& key, double fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
  std::string StringOr(const std::string& key, const std::string& fallback) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Compact single-line JSON serializer.
///
/// Guarantees:
///   - strings are escaped per RFC 8259 (quote, backslash, and control
///     characters below 0x20; other bytes pass through, so UTF-8 text
///     round-trips byte-identically),
///   - numbers use the shortest representation that parses back to the
///     same double (std::to_chars), so Parse(Write(v)) == v bit-for-bit,
///   - non-finite numbers throw std::invalid_argument (JSON cannot
///     represent them; silently emitting "null" would corrupt frames),
///   - output contains no newlines, so one document is one wire frame.
class JsonWriter {
 public:
  static std::string Write(const JsonValue& v);
  static void Write(const JsonValue& v, std::string& out);

  /// The quoted, escaped form of `s` (includes the surrounding quotes).
  static void WriteString(const std::string& s, std::string& out);
  /// Shortest round-trip decimal form of `d`. Integral values within the
  /// exactly-representable range print without fraction or exponent
  /// ("42", not "4.2e1"). Throws std::invalid_argument on NaN/Inf.
  static std::string FormatNumber(double d);
};

}  // namespace themis
