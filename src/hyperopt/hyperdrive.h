// HyperDrive app scheduler (Rasley et al. [21]; Sec. 5.2).
//
// "HyperDrive ... continually monitors the jobs' loss convergence properties
// to classify jobs as good, promising, and poor. HyperDrive then gives
// varying execution priorities to different jobs by controlling the maximum
// parallelism for each constituent job, with higher priorities for good jobs
// and terminating a job as soon as it is classified as poor."
//
// Classification uses the curve-fitting estimator: each job's projected
// iterations-to-target is compared against the best job's projection.
#pragma once

#include "estimator/curve_fit.h"
#include "hyperopt/app_scheduler.h"

namespace themis {

struct HyperDriveConfig {
  /// Projected-work ratio (vs. the current best job) above which a job is
  /// classified poor and killed.
  double poor_ratio = 4.0;
  /// Ratio above which a job is merely promising (reduced parallelism).
  double good_ratio = 1.5;
  /// Parallelism fraction granted to promising jobs (good jobs get 1.0).
  double promising_parallelism = 0.5;
  /// Minimum observed iterations before any classification happens.
  double warmup_iterations = 20.0;
};

class HyperDrive final : public IAppScheduler {
 public:
  explicit HyperDrive(HyperDriveConfig config = {});

  void Init(const AppSpec& app) override;
  const TunerDecision& Step(const std::vector<JobView>& jobs,
                            Time now) override;
  const char* name() const override { return "HyperDrive"; }

 private:
  /// Projected total iterations to the app's target loss for one job, via
  /// power-law fit of the loss observed so far.
  double ProjectTotalIterations(const JobView& job) const;

  HyperDriveConfig config_;
  double target_loss_ = 0.1;
  /// Reused across Steps (see IAppScheduler::Step).
  TunerDecision decision_;
  std::vector<int> alive_;
  std::vector<double> projection_;
};

}  // namespace themis
