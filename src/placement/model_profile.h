// Per-model performance profiles.
//
// The paper's Fig. 2 shows that different model architectures react very
// differently to GPU spread: VGG16/VGG19 (large fully-connected parameter
// tensors, ~500 MB of gradients per iteration) lose roughly half their
// throughput when 4 GPUs span two servers, while ResNet50 is essentially
// placement-insensitive. We encode that as a SensitivityProfile: the
// multiplicative slowdown S in (0, 1] applied at each locality level
// (Sec. 5.2 step 3: "three values for S, one each reflecting the case where
// GPUs span different slots in a machine; span multiple machines in a rack;
// and span racks").
#pragma once

#include <string>
#include <vector>

namespace themis {

struct SensitivityProfile {
  double slot = 1.0;        // all GPUs on one NVLink island: ideal
  double machine = 1.0;     // spans slots within a machine (PCIe)
  double rack = 1.0;        // spans machines within a rack
  double cross_rack = 1.0;  // spans racks

  /// True iff every level is in (0, 1] and levels are non-increasing.
  bool IsValid() const;
};

struct ModelProfile {
  std::string name;
  /// Images/sec on a single GPU with ideal placement; seeds Fig. 2.
  double serial_throughput = 100.0;
  /// Model parameter size in MB; drives how network-intensive the model is.
  double param_mb = 100.0;
  SensitivityProfile sensitivity;
  /// Paper terminology: "network-intensive" == placement-sensitive.
  bool network_intensive = false;
};

/// The five architectures in Fig. 2, with sensitivity profiles calibrated so
/// that the 4-GPUs-on-1-server vs 2x2-servers throughput ratios match the
/// figure's shape (VGG16 ~2x, VGG19 ~1.8x, AlexNet ~1.6x, Inception-v3 ~1.2x,
/// ResNet50 ~1.0x).
const std::vector<ModelProfile>& CanonicalModels();

/// Lookup by name; throws std::out_of_range on unknown model.
const ModelProfile& ModelByName(const std::string& name);

/// The placement-sensitive family used by the workload mix (VGG-like).
const ModelProfile& SensitiveModel();
/// The placement-insensitive family (ResNet-like).
const ModelProfile& InsensitiveModel();

}  // namespace themis
