#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace themis {

namespace {

[[noreturn]] void TypeFail(const char* want, JsonValue::Type got) {
  static const char* names[] = {"null", "bool", "number",
                                "string", "array", "object"};
  throw std::runtime_error(std::string("json: expected ") + want + ", got " +
                           names[static_cast<int>(got)]);
}

}  // namespace

class JsonParser {
 public:
  /// Containers deeper than this fail the parse. The daemon feeds untrusted
  /// network frames here: without a bound, a line of nested '[' well under
  /// the frame cap drives one recursion level per byte and overflows the
  /// stack. 64 is far beyond any scenario file or wire frame (which nest
  /// 3-4 deep) while keeping worst-case stack use trivial.
  static constexpr int kMaxDepth = 64;

  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue v = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("json line " + std::to_string(line_) + ": " +
                             what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue ParseValue() {
    const char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = ParseString();
        return v;
      }
      case 't':
        if (Consume("true")) {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = true;
          return v;
        }
        Fail("invalid literal");
      case 'f':
        if (Consume("false")) {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = false;
          return v;
        }
        Fail("invalid literal");
      case 'n':
        if (Consume("null")) return JsonValue{};
        Fail("invalid literal");
      default: return ParseNumber();
    }
  }

  void EnterContainer() {
    if (++depth_ > kMaxDepth)
      Fail("nesting deeper than " + std::to_string(kMaxDepth) + " levels");
  }

  JsonValue ParseObject() {
    EnterContainer();
    Expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    if (Peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      if (Peek() != '"') Fail("expected object key string");
      std::string key = ParseString();
      Expect(':');
      v.members_.emplace_back(std::move(key), ParseValue());
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        --depth_;
        return v;
      }
      Fail("expected ',' or '}' in object");
    }
  }

  JsonValue ParseArray() {
    EnterContainer();
    Expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    if (Peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      v.items_.push_back(ParseValue());
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        --depth_;
        return v;
      }
      Fail("expected ',' or ']' in array");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') Fail("raw newline in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += h - '0';
            else if (h >= 'a' && h <= 'f') code += 10 + h - 'a';
            else if (h >= 'A' && h <= 'F') code += 10 + h - 'A';
            else Fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // by scenario files; reject them loudly instead of mis-encoding).
          if (code >= 0xD800 && code <= 0xDFFF)
            Fail("surrogate pairs unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: Fail("invalid escape");
      }
    }
  }

  JsonValue ParseNumber() {
    // Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // Lenient scanning (leading '+', bare '.') would let files parse here
    // that every standard JSON tool rejects — against the fail-loudly goal.
    const std::size_t start = pos_;
    auto digit = [&] {
      return pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]));
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit()) Fail("invalid value");
    if (text_[pos_] == '0') ++pos_;  // no leading zeros on multi-digit ints
    else while (digit()) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit()) Fail("digits required after decimal point");
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digit()) Fail("digits required in exponent");
      while (digit()) ++pos_;
    }
    // std::from_chars, not strtod: strtod honors the process locale, so a
    // ',' decimal separator would silently parse "1.5" as 1.0 and break the
    // parse(write(v)) == v property the wire digests rely on. from_chars is
    // locale-independent and the exact inverse of the to_chars writer.
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v.number_);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_)
      Fail("number outside double range");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  int depth_ = 0;  // open containers; bounded by kMaxDepth
};

JsonValue JsonValue::Parse(const std::string& text) {
  return JsonParser(text).ParseDocument();
}

bool JsonValue::AsBool() const {
  if (type_ != Type::kBool) TypeFail("bool", type_);
  return bool_;
}

double JsonValue::AsNumber() const {
  if (type_ != Type::kNumber) TypeFail("number", type_);
  return number_;
}

const std::string& JsonValue::AsString() const {
  if (type_ != Type::kString) TypeFail("string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) TypeFail("array", type_);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) TypeFail("object", type_);
  return members_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsNumber() : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsBool() : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsString() : fallback;
}

JsonValue JsonValue::MakeNull() { return JsonValue{}; }

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

void JsonValue::Append(JsonValue v) {
  if (type_ != Type::kArray) TypeFail("array", type_);
  items_.push_back(std::move(v));
}

void JsonValue::Set(std::string key, JsonValue v) {
  if (type_ != Type::kObject) TypeFail("object", type_);
  members_.emplace_back(std::move(key), std::move(v));
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return items_ == other.items_;
    case Type::kObject: return members_ == other.members_;
  }
  return false;
}

std::string JsonWriter::FormatNumber(double d) {
  if (!std::isfinite(d))
    throw std::invalid_argument(
        "json: cannot serialize non-finite number (NaN or Inf)");
  // Integral doubles within the exact-integer range print as plain
  // integers: stable, human-readable, and round-trip exact (the parser's
  // strtod maps the decimal integer back to the same double).
  // Negative zero must skip the integral fast path: casting through
  // long long would print "0" and lose the sign bit on the round trip.
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::abs(d) < 9.007199254740992e15 && !(d == 0.0 && std::signbit(d))) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    return buf;
  }
  // Shortest representation that round-trips (std::to_chars guarantee).
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  return std::string(buf, res.ptr);
}

void JsonWriter::WriteString(const std::string& s, std::string& out) {
  out += '"';
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

void JsonWriter::Write(const JsonValue& v, std::string& out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += v.AsBool() ? "true" : "false";
      break;
    case JsonValue::Type::kNumber:
      out += FormatNumber(v.AsNumber());
      break;
    case JsonValue::Type::kString:
      WriteString(v.AsString(), out);
      break;
    case JsonValue::Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out += ',';
        first = false;
        Write(item, out);
      }
      out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out += ',';
        first = false;
        WriteString(key, out);
        out += ':';
        Write(member, out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonWriter::Write(const JsonValue& v) {
  std::string out;
  Write(v, out);
  return out;
}

}  // namespace themis
