#include "cluster/cluster.h"

#include <stdexcept>

namespace themis {

Cluster::Cluster(ClusterSpec spec)
    : topo_(std::move(spec)),
      leases_(topo_.num_gpus()),
      machine_down_(topo_.num_machines(), false) {}

std::vector<GpuId> Cluster::FreeGpus() const {
  std::vector<GpuId> out;
  out.reserve(leases_.size());
  for (GpuId g = 0; g < leases_.size(); ++g)
    if (!leases_[g] && !machine_down_[topo_.gpu(g).machine]) out.push_back(g);
  return out;
}

std::vector<int> Cluster::FreeGpusPerMachine() const {
  std::vector<int> out(topo_.num_machines(), 0);
  for (GpuId g = 0; g < leases_.size(); ++g)
    if (!leases_[g] && !machine_down_[topo_.gpu(g).machine])
      ++out[topo_.gpu(g).machine];
  return out;
}

std::vector<GpuId> Cluster::FreeGpusOnMachine(MachineId m) const {
  std::vector<GpuId> out;
  if (machine_down_[m]) return out;
  for (GpuId g : topo_.machine_gpus(m))
    if (!leases_[g]) out.push_back(g);
  return out;
}

std::vector<GpuId> Cluster::GpusHeldBy(AppId app) const {
  std::vector<GpuId> out;
  for (GpuId g = 0; g < leases_.size(); ++g)
    if (leases_[g] && leases_[g]->app == app) out.push_back(g);
  return out;
}

std::vector<GpuId> Cluster::GpusHeldBy(AppId app, JobId job) const {
  std::vector<GpuId> out;
  for (GpuId g = 0; g < leases_.size(); ++g)
    if (leases_[g] && leases_[g]->app == app && leases_[g]->job == job)
      out.push_back(g);
  return out;
}

void Cluster::Allocate(GpuId gpu, AppId app, JobId job, Time expiry) {
  if (gpu >= leases_.size()) throw std::out_of_range("Allocate: bad GPU id");
  if (leases_[gpu])
    throw std::logic_error("Allocate: GPU already leased (double allocation)");
  if (machine_down_[topo_.gpu(gpu).machine])
    throw std::logic_error("Allocate: machine is down");
  leases_[gpu] = Lease{app, job, expiry};
  ++num_allocated_;
}

void Cluster::Release(GpuId gpu) {
  if (gpu >= leases_.size()) throw std::out_of_range("Release: bad GPU id");
  if (!leases_[gpu]) throw std::logic_error("Release: GPU already free");
  leases_[gpu].reset();
  --num_allocated_;
}

void Cluster::ReleaseAll(AppId app) {
  for (GpuId g = 0; g < leases_.size(); ++g)
    if (leases_[g] && leases_[g]->app == app) {
      leases_[g].reset();
      --num_allocated_;
    }
}

std::vector<GpuId> Cluster::ExpiredGpus(Time now) const {
  std::vector<GpuId> out;
  for (GpuId g = 0; g < leases_.size(); ++g)
    if (leases_[g] && leases_[g]->expiry <= now) out.push_back(g);
  return out;
}

void Cluster::Renew(GpuId gpu, Time new_expiry) {
  if (gpu >= leases_.size() || !leases_[gpu])
    throw std::logic_error("Renew: GPU not leased");
  leases_[gpu]->expiry = new_expiry;
}

void Cluster::SetMachineDown(MachineId machine, bool down) {
  if (machine >= machine_down_.size())
    throw std::out_of_range("SetMachineDown: bad machine id");
  machine_down_[machine] = down;
}

int Cluster::num_machines_down() const {
  int n = 0;
  for (bool d : machine_down_)
    if (d) ++n;
  return n;
}

}  // namespace themis
