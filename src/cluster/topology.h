// Cluster topology description: racks contain machines, machines contain
// slots (an NVLink island of GPUs), slots contain GPUs. This hierarchy gives
// the four locality levels the paper's placement score uses (Sec. 8.1):
// slot (NVLink), machine (PCIe), rack, and cross-rack.
//
// Machines additionally carry a GPU *generation* — a named relative speed
// (K80 = 1.0 is the baseline; a V100 does 3x the work of a K80 per minute).
// The paper's evaluation clusters are heterogeneous NC/NV-series Azure
// instances; modelling the generation as a first-class resource dimension
// lets policies price faster machines into the finish-time-fairness bid.
// All GPUs of one machine share its generation.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace themis {

/// Relative placement of a set of GPUs, ordered best to worst. Matches the
/// paper's 4-level placement scoring scheme.
enum class LocalityLevel : int {
  kSlot = 0,       // all GPUs share an NVLink slot
  kMachine = 1,    // all GPUs in one machine, across slots (PCIe)
  kRack = 2,       // all GPUs in one rack, across machines
  kCrossRack = 3,  // GPUs span racks
};

const char* ToString(LocalityLevel level);

/// A GPU generation: a name plus its relative speed. Speed is the work
/// multiplier against the K80 baseline — a job's progress rate on a gang is
/// G * S * min(speed over the gang's GPUs); synchronous SGD runs at the pace
/// of the slowest worker, so one straggler GPU drags the whole gang.
struct GpuGeneration {
  std::string name = "K80";
  double speed = 1.0;
};

/// The built-in generation table (K80 1.0, M60 1.3, P100 2.0, V100 3.0,
/// A100 6.0). Scenario files and `themis_cli --generations` resolve names
/// against it.
const std::vector<GpuGeneration>& KnownGpuGenerations();

/// Look up a known generation by (case-sensitive) name. Throws
/// std::invalid_argument naming the offender and listing the known
/// generations — scenario loading forwards this as its pointed error.
const GpuGeneration& GpuGenerationByName(const std::string& name);

struct MachineSpec {
  MachineSpec() = default;
  MachineSpec(int num_gpus, int gpus_per_slot, GpuGeneration generation = {})
      : num_gpus(num_gpus),
        gpus_per_slot(gpus_per_slot),
        generation(std::move(generation)) {}

  int num_gpus = 4;
  /// GPUs per NVLink slot; num_gpus must be a multiple of this.
  int gpus_per_slot = 2;
  /// Generation shared by every GPU on the machine. Defaults to the K80
  /// baseline (speed 1.0), so generation-unaware specs are unchanged.
  GpuGeneration generation;
};

struct RackSpec {
  std::vector<MachineSpec> machines;
};

/// One entry of a generation mix: `fraction` of the cluster's machines get
/// `generation`.
struct GenerationShare {
  GpuGeneration generation;
  double fraction = 1.0;
};

/// Parse a "K80:0.25,V100:0.5,A100:0.25" machine-fraction mix (the
/// `themis_cli --generations` syntax). Names resolve via
/// GpuGenerationByName; fractions must be positive and sum to 1 (within
/// 1e-6). Throws std::invalid_argument on any violation.
std::vector<GenerationShare> ParseGenerationMix(const std::string& spec);

struct ClusterSpec;

/// Assign generations to `spec`'s machines in rack-major order by cumulative
/// fraction: the first round(f1 * M) machines get the first generation, and
/// so on, with the final share absorbing rounding. Deterministic.
void ApplyGenerationMix(ClusterSpec& spec,
                        const std::vector<GenerationShare>& mix);

struct ClusterSpec {
  std::vector<RackSpec> racks;

  int TotalGpus() const;
  int TotalMachines() const;
  /// Sum over machines of num_gpus * generation.speed — the cluster's
  /// capacity in effective (K80-equivalent) GPUs. Equals TotalGpus() when
  /// every machine runs the speed-1.0 baseline.
  double TotalEffectiveGpus() const;

  /// The heterogeneous 256-GPU simulation cluster from Sec. 8.1: a mixture
  /// of 4-GPU, 2-GPU and 1-GPU machines spread across multiple racks.
  static ClusterSpec Simulation256();

  /// Simulation256 with a 25/50/25 K80 / V100 / A100 generation mix by
  /// rack (rack 0 K80, racks 1-2 V100, rack 3 A100).
  static ClusterSpec Simulation256Mixed();

  /// The 50-GPU Azure testbed from Sec. 8.1: 20 instances with 1/2/4 GPUs
  /// (NC- and NV-series).
  static ClusterSpec Testbed50();

  /// Testbed50 with the paper's actual instance generations: the 4-GPU
  /// NC-series boxes carry K80s, the 2-/1-GPU NV-series boxes carry M60s.
  static ClusterSpec Testbed50Mixed();

  /// Uniform cluster helper used by tests and microbenchmarks.
  static ClusterSpec Uniform(int racks, int machines_per_rack, int gpus_per_machine,
                             int gpus_per_slot);
};

/// Fully resolved coordinates of a single GPU.
struct GpuCoord {
  GpuId gpu = 0;          // global GPU index
  MachineId machine = 0;  // global machine index
  RackId rack = 0;
  int slot = 0;             // slot index within the machine
  int index_in_slot = 0;    // GPU index within its slot
};

/// Immutable index over a ClusterSpec: resolves GPU/machine coordinates and
/// answers locality queries. Built once per simulation.
class Topology {
 public:
  explicit Topology(ClusterSpec spec);

  const ClusterSpec& spec() const { return spec_; }
  int num_gpus() const { return static_cast<int>(gpus_.size()); }
  int num_machines() const { return static_cast<int>(machine_racks_.size()); }
  int num_racks() const { return static_cast<int>(spec_.racks.size()); }

  const GpuCoord& gpu(GpuId id) const { return gpus_.at(id); }
  RackId rack_of_machine(MachineId m) const { return machine_racks_.at(m); }
  int gpus_on_machine(MachineId m) const { return machine_gpu_counts_.at(m); }
  /// Global GPU ids hosted by a machine (contiguous by construction).
  const std::vector<GpuId>& machine_gpus(MachineId m) const {
    return machine_gpu_ids_.at(m);
  }

  // --- Generation / speed resolution ------------------------------------
  const GpuGeneration& machine_generation(MachineId m) const {
    return machine_generations_.at(m);
  }
  double machine_speed(MachineId m) const { return machine_speeds_[m]; }
  /// Relative speed per machine, index = MachineId — the speed vector an
  /// offer carries alongside its per-machine free counts.
  const std::vector<double>& machine_speeds() const { return machine_speeds_; }
  double gpu_speed(GpuId g) const { return machine_speeds_[gpus_[g].machine]; }
  /// True when every machine runs the same speed (ascending-id order is then
  /// already fastest-first; speed-aware queries take the unweighted path).
  bool uniform_speed() const { return uniform_speed_; }
  double max_speed() const { return max_speed_; }
  /// Machine ids ordered fastest generation first, ties ascending id — the
  /// scan order of every fastest-first pool view. With uniform speeds this
  /// is plain ascending machine order.
  const std::vector<MachineId>& machines_by_speed() const {
    return machines_by_speed_;
  }
  /// Sum of gpu_speed over a set (effective GPU count of an allocation).
  double SpeedSum(const std::vector<GpuId>& gpus) const;
  /// Slowest generation in a set; gangs run at this speed (synchronous SGD
  /// paces on the straggler). Empty set yields 1.0 (vacuous, like Slowdown).
  double MinSpeed(const std::vector<GpuId>& gpus) const;

  /// Tightest locality level spanned by a set of GPUs. A singleton (or empty)
  /// set is kSlot: it cannot span any boundary.
  LocalityLevel SpanLevel(const std::vector<GpuId>& gpus) const;

  std::string Describe() const;

 private:
  ClusterSpec spec_;
  std::vector<GpuCoord> gpus_;
  std::vector<RackId> machine_racks_;
  std::vector<int> machine_gpu_counts_;
  std::vector<std::vector<GpuId>> machine_gpu_ids_;
  std::vector<GpuGeneration> machine_generations_;
  std::vector<double> machine_speeds_;
  std::vector<MachineId> machines_by_speed_;
  bool uniform_speed_ = true;
  double max_speed_ = 1.0;
};

}  // namespace themis
