#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace themis::net {

namespace {

void FormatError(std::string* err, const char* what) {
  if (err != nullptr)
    *err = std::string(what) + ": " + std::strerror(errno);
}

bool SetNoDelay(int fd) {
  int one = 1;
  return setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one) == 0;
}

bool ParseAddr(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof *addr);
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty() || host == "0.0.0.0") {
    addr->sin_addr.s_addr = INADDR_ANY;
    return true;
  }
  return inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags != -1 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) != -1;
}

int TcpListen(const std::string& host, int port, int backlog,
              std::string* err) {
  sockaddr_in addr;
  if (!ParseAddr(host, port, &addr)) {
    if (err != nullptr) *err = "invalid listen address: " + host;
    return kBadFd;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd == kBadFd) {
    FormatError(err, "socket");
    return kBadFd;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    FormatError(err, "bind");
    close(fd);
    return kBadFd;
  }
  if (listen(fd, backlog) != 0) {
    FormatError(err, "listen");
    close(fd);
    return kBadFd;
  }
  if (!SetNonBlocking(fd)) {
    FormatError(err, "fcntl(O_NONBLOCK)");
    close(fd);
    return kBadFd;
  }
  return fd;
}

int ListenPort(int listen_fd) {
  sockaddr_in addr;
  socklen_t len = sizeof addr;
  if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return -1;
  return ntohs(addr.sin_port);
}

int TcpAccept(int listen_fd) {
  const int fd = accept(listen_fd, nullptr, nullptr);
  if (fd == kBadFd) return kBadFd;
  if (!SetNonBlocking(fd)) {
    close(fd);
    return kBadFd;
  }
  SetNoDelay(fd);
  return fd;
}

int TcpConnect(const std::string& host, int port, std::string* err) {
  sockaddr_in addr;
  if (!ParseAddr(host.empty() ? "127.0.0.1" : host, port, &addr)) {
    if (err != nullptr) *err = "invalid connect address: " + host;
    return kBadFd;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd == kBadFd) {
    FormatError(err, "socket");
    return kBadFd;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    FormatError(err, "connect");
    close(fd);
    return kBadFd;
  }
  SetNoDelay(fd);
  return fd;
}

long SendSome(int fd, const char* data, std::size_t n) {
  const ssize_t w = send(fd, data, n, MSG_NOSIGNAL);
  if (w >= 0) return static_cast<long>(w);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
  return -1;
}

long RecvSome(int fd, char* buf, std::size_t n) {
  const ssize_t r = recv(fd, buf, n, 0);
  if (r > 0) return static_cast<long>(r);
  if (r == 0) return -1;  // orderly EOF: treat as gone
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
  return -1;
}

void CloseFd(int fd) {
  if (fd != kBadFd) close(fd);
}

long RaiseFdLimit(long need) {
  rlimit lim;
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return -1;
  if (static_cast<long>(lim.rlim_cur) >= need)
    return static_cast<long>(lim.rlim_cur);
  rlim_t want = static_cast<rlim_t>(need);
  if (lim.rlim_max != RLIM_INFINITY && want > lim.rlim_max)
    want = lim.rlim_max;
  lim.rlim_cur = want;
  if (setrlimit(RLIMIT_NOFILE, &lim) != 0) return -1;
  return static_cast<long>(want);
}

}  // namespace themis::net
