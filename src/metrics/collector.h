// Evaluation metrics (Sec. 8.1 "Metrics"):
//   - Max Fairness: worst finish-time fairness rho across apps (lower = fairer)
//   - Jain's Fairness: variance of rho across apps (closer to 1 = better)
//   - Placement Score: 4-level locality score of job allocations
//   - GPU Time: total GPU-minutes consumed; lower = more efficient cluster use
//   - App Completion Time (ACT): finish - arrival per app
// The simulator feeds the collector; benches and tests read the summaries.
//
// Two memory modes:
//   - exact (default): every AppRecord is kept; summaries are computed from
//     the full vector exactly as they always were.
//   - bounded: per-app records go into a fixed-capacity reservoir sample and
//     summaries come from O(1) running aggregates (max/min/mean/Jain are
//     *exact* — same additions in the same order as the vector form — and
//     the median is a P² streaming estimate). Memory no longer grows with
//     the number of finished apps, which is what lets a million-job trace
//     replay in constant metric memory.
// In both modes the Fig. 8-style allocation timeline is capped at
// `timeline_capacity` samples by deterministic stride decimation (keep every
// 2^k-th sample); the default cap is large enough that existing benches never
// reach it, so their output is unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace themis {

struct AppRecord {
  AppId app = kNoApp;
  Time arrival = 0.0;
  Time finish = -1.0;
  Time ideal_time = 1.0;
  double mean_placement_score = 1.0;
  Work attained_service = 0.0;

  double Rho() const { return (finish - arrival) / ideal_time; }
  Time CompletionTime() const { return finish - arrival; }
};

/// Timeline sample for Fig. 8-style allocation traces.
struct AllocationSample {
  Time time = 0.0;
  AppId app = kNoApp;
  int gpus = 0;
};

struct MetricsConfig {
  /// Keep only constant-memory aggregates + a reservoir sample of apps.
  bool bounded_memory = false;
  /// Reservoir size for per-app distributions in bounded mode.
  std::size_t reservoir_capacity = 4096;
  /// Max retained allocation-timeline samples (both modes); 0 = unbounded.
  std::size_t timeline_capacity = std::size_t{1} << 20;
  /// Seed for the reservoir's eviction RNG.
  std::uint64_t seed = 0x5EEDULL;
};

class MetricsCollector {
 public:
  MetricsCollector() : MetricsCollector(MetricsConfig{}) {}
  explicit MetricsCollector(const MetricsConfig& config);

  void RecordAppFinish(const AppRecord& record);
  void RecordGpuTime(Work gpu_minutes) { gpu_time_ += gpu_minutes; }
  void RecordAllocation(Time time, AppId app, int gpus);
  void RecordAuction(int participants, int offered_gpus, int granted_gpus,
                     int leftover_gpus);

  /// All finished apps in exact mode; the reservoir sample in bounded mode.
  const std::vector<AppRecord>& apps() const;
  /// Number of apps recorded (exceeds apps().size() once a bounded-mode
  /// reservoir overflows).
  std::size_t finished_apps() const { return finished_apps_; }

  const std::vector<AllocationSample>& timeline() const { return timeline_; }
  /// Current decimation stride: sample i was retained iff i % stride == 0.
  std::size_t timeline_stride() const { return timeline_stride_; }
  /// Allocation samples offered to RecordAllocation (pre-decimation).
  std::size_t allocation_samples_seen() const { return allocation_seen_; }

  double MaxFairness() const;
  double MedianFairness() const;
  double MinFairness() const;
  double JainsFairnessIndex() const;
  double AverageCompletionTime() const;
  std::vector<double> CompletionTimes() const;
  std::vector<double> Rhos() const;
  std::vector<double> PlacementScores() const;
  Work TotalGpuTime() const { return gpu_time_; }

  int auctions_run() const { return auctions_; }
  double MeanLeftoverFraction() const;

  const MetricsConfig& config() const { return config_; }

  std::string SummaryString() const;

 private:
  MetricsConfig config_;

  std::vector<AppRecord> apps_;       // exact mode only
  Reservoir<AppRecord> sample_;       // bounded mode only
  std::size_t finished_apps_ = 0;

  // Running aggregates, updated in both modes (O(1) each).
  Summary rho_range_;
  MomentAccumulator rho_moments_;
  P2Quantile rho_median_{0.5};
  Summary act_;

  std::vector<AllocationSample> timeline_;
  std::size_t timeline_stride_ = 1;
  std::size_t allocation_seen_ = 0;

  Work gpu_time_ = 0.0;
  int auctions_ = 0;
  double leftover_fraction_sum_ = 0.0;
  int leftover_samples_ = 0;
};

}  // namespace themis
