// Property-style sweeps (TEST_P) over seeds and policies: simulator
// invariants that must hold for every run — conservation of work, lease
// exclusivity (enforced by Cluster's throwing invariants), bounded rho,
// deterministic replay — plus PA mechanism properties on random instances.
#include <gtest/gtest.h>

#include <cmath>

#include "auction/partial_allocation.h"
#include "common/rng.h"
#include "sim/experiment.h"

namespace themis {
namespace {

struct SweepParam {
  PolicyKind policy;
  std::uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(ToString(info.param.policy)) + "_seed" +
         std::to_string(info.param.seed);
}

class SimInvariantTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SimInvariantTest, EveryAppFinishesExactlyOnceWithSaneMetrics) {
  const auto param = GetParam();
  auto cfg = SimScaleConfig(param.policy, param.seed, 35);
  cfg.trace.contention_factor = 2.0;
  const ExperimentResult r = RunExperiment(cfg);

  // Completion: all 35 apps finish, none twice.
  EXPECT_EQ(r.unfinished_apps, 0);
  EXPECT_EQ(r.rhos.size(), 35u);

  for (std::size_t i = 0; i < r.rhos.size(); ++i) {
    // rho >= ~1: nobody finishes faster than running alone, ideally placed.
    EXPECT_GT(r.rhos[i], 0.95) << "app " << i;
    EXPECT_TRUE(std::isfinite(r.rhos[i]));
    EXPECT_GT(r.completion_times[i], 0.0);
  }
  for (double s : r.placement_scores) {
    EXPECT_GE(s, 0.4 - 1e-9);
    EXPECT_LE(s, 1.0 + 1e-9);
  }
  // GPU time can never undercut the total useful work performed (S <= 1
  // means every serial GPU-minute costs at least one allocated GPU-minute).
  EXPECT_GT(r.gpu_time, 0.0);
  EXPECT_GE(r.jains_index, 0.0);
  EXPECT_LE(r.jains_index, 1.0 + 1e-9);
}

TEST_P(SimInvariantTest, ReplayIsBitIdentical) {
  const auto param = GetParam();
  auto cfg = SimScaleConfig(param.policy, param.seed, 20);
  const ExperimentResult a = RunExperiment(cfg);
  const ExperimentResult b = RunExperiment(cfg);
  EXPECT_EQ(a.rhos, b.rhos);
  EXPECT_EQ(a.completion_times, b.completion_times);
  EXPECT_DOUBLE_EQ(a.gpu_time, b.gpu_time);
  EXPECT_DOUBLE_EQ(a.max_fairness, b.max_fairness);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, SimInvariantTest,
    ::testing::Values(SweepParam{PolicyKind::kThemis, 1},
                      SweepParam{PolicyKind::kThemis, 2},
                      SweepParam{PolicyKind::kThemis, 3},
                      SweepParam{PolicyKind::kGandiva, 1},
                      SweepParam{PolicyKind::kGandiva, 2},
                      SweepParam{PolicyKind::kTiresias, 1},
                      SweepParam{PolicyKind::kTiresias, 2},
                      SweepParam{PolicyKind::kSlaq, 1},
                      SweepParam{PolicyKind::kSlaq, 2}),
    ParamName);

class PaRandomInstanceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PaRandomInstanceTest, MechanismInvariantsHold) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int machines = rng.UniformInt(1, 6);
    std::vector<int> offered(machines);
    int total_offered = 0;
    for (int& o : offered) {
      o = rng.UniformInt(0, 4);
      total_offered += o;
    }
    const int n_apps = rng.UniformInt(1, 6);
    std::vector<BidTable> bids;
    for (int i = 0; i < n_apps; ++i) {
      BidTable t;
      t.app = static_cast<AppId>(i);
      const double rho0 = rng.Uniform(2.0, 100.0);
      BidRow zero;
      zero.gpus_per_machine.assign(machines, 0);
      zero.rho = rho0;
      t.rows.push_back(zero);
      const int rows = rng.UniformInt(0, 4);
      for (int r = 0; r < rows; ++r) {
        BidRow row;
        row.gpus_per_machine.resize(machines);
        int total = 0;
        for (int m = 0; m < machines; ++m) {
          row.gpus_per_machine[m] = rng.UniformInt(0, offered[m]);
          total += row.gpus_per_machine[m];
        }
        if (total == 0) continue;
        row.rho = rho0 / (1.0 + rng.Uniform(0.1, 2.0) * total);
        t.rows.push_back(row);
      }
      bids.push_back(std::move(t));
    }

    const PaResult result = PartialAllocation(bids, offered);
    ASSERT_EQ(result.winners.size(), bids.size());

    std::vector<int> used(machines, 0);
    for (std::size_t i = 0; i < result.winners.size(); ++i) {
      const PaWinner& w = result.winners[i];
      // Hidden payments: retention in [0, 1].
      EXPECT_GE(w.c, 0.0);
      EXPECT_LE(w.c, 1.0);
      // Grant <= c * chosen row, elementwise (floor).
      const BidRow& row = bids[i].rows[w.row];
      for (int m = 0; m < machines; ++m) {
        EXPECT_GE(w.granted[m], 0);
        EXPECT_LE(w.granted[m], row.gpus_per_machine[m]);
        used[m] += w.granted[m];
      }
    }
    // Feasibility + leftover accounting.
    for (int m = 0; m < machines; ++m) {
      EXPECT_LE(used[m], offered[m]);
      EXPECT_EQ(result.leftover[m], offered[m] - used[m]);
    }
  }
}

TEST_P(PaRandomInstanceTest, RemovingABidderNeverHurtsTheOthers) {
  // The c_i <= 1 property follows from R_pf^{-i} being at least as good for
  // the others; verify that welfare-without-i >= others' welfare-with-i.
  Rng rng(GetParam() * 31 + 5);
  const int machines = 3;
  const std::vector<int> offered{3, 3, 3};
  std::vector<BidTable> bids;
  const int n_apps = 4;
  for (int i = 0; i < n_apps; ++i) {
    BidTable t;
    t.app = static_cast<AppId>(i);
    const double rho0 = rng.Uniform(2.0, 50.0);
    BidRow zero;
    zero.gpus_per_machine.assign(machines, 0);
    zero.rho = rho0;
    t.rows.push_back(zero);
    for (int r = 0; r < 3; ++r) {
      BidRow row;
      row.gpus_per_machine.assign(machines, 0);
      row.gpus_per_machine[rng.UniformInt(0, machines - 1)] =
          rng.UniformInt(1, 3);
      row.rho = rho0 / (1.0 + row.TotalGpus());
      t.rows.push_back(row);
    }
    bids.push_back(std::move(t));
  }

  PaConfig cfg;
  cfg.max_nodes = 1'000'000;
  const PfSolution full = SolveProportionalFair(bids, offered, cfg);
  for (int drop = 0; drop < n_apps; ++drop) {
    std::vector<BidTable> others;
    double others_log_in_full = 0.0;
    for (int i = 0; i < n_apps; ++i) {
      if (i == drop) continue;
      others.push_back(bids[i]);
      others_log_in_full += std::log(bids[i].rows[full.rows[i]].Value());
    }
    const PfSolution without = SolveProportionalFair(others, offered, cfg);
    EXPECT_GE(without.log_welfare, others_log_in_full - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaRandomInstanceTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

class LeaseSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(LeaseSweepTest, SimCompletesAcrossLeaseDurations) {
  auto cfg = SimScaleConfig(PolicyKind::kThemis, 77, 30);
  cfg.sim.lease_minutes = GetParam();
  const ExperimentResult r = RunExperiment(cfg);
  EXPECT_EQ(r.unfinished_apps, 0);
  EXPECT_GT(r.max_fairness, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Fig4cLeases, LeaseSweepTest,
                         ::testing::Values(5.0, 10.0, 20.0, 30.0, 40.0));

class KnobSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(KnobSweepTest, SimCompletesAcrossFairnessKnobs) {
  auto cfg = SimScaleConfig(PolicyKind::kThemis, 78, 30);
  cfg.themis.fairness_knob = GetParam();
  const ExperimentResult r = RunExperiment(cfg);
  EXPECT_EQ(r.unfinished_apps, 0);
}

INSTANTIATE_TEST_SUITE_P(Fig4aKnobs, KnobSweepTest,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8, 1.0));


// Cluster-shape sweep: the scheduler must behave on degenerate topologies
// (single-GPU machines, one big machine, odd slot sizes), not just the
// paper's two clusters.
struct ShapeParam {
  int racks;
  int machines;
  int gpus;
  int slot;
};

class ClusterShapeTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ClusterShapeTest, ThemisCompletesOnAnyTopology) {
  const ShapeParam p = GetParam();
  ExperimentConfig cfg;
  cfg.cluster = ClusterSpec::Uniform(p.racks, p.machines, p.gpus, p.slot);
  cfg.policy = PolicyKind::kThemis;
  cfg.trace.seed = 321;
  cfg.trace.num_apps = 10;
  cfg.trace.jobs_per_app_median = 3.0;
  cfg.trace.jobs_per_app_max = 6;
  // Keep gangs feasible on tiny clusters: 2-GPU tasks only.
  cfg.trace.frac_four_gpu_tasks =
      (p.racks * p.machines * p.gpus >= 8) ? 0.7 : 0.0;
  cfg.sim.lease_minutes = 10.0;
  const ExperimentResult r = RunExperiment(cfg);
  EXPECT_EQ(r.unfinished_apps, 0)
      << p.racks << "x" << p.machines << "x" << p.gpus;
  for (double rho : r.rhos) EXPECT_GT(rho, 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterShapeTest,
    ::testing::Values(ShapeParam{1, 1, 8, 2},    // one big machine
                      ShapeParam{1, 8, 2, 2},    // all 2-GPU machines
                      ShapeParam{2, 4, 4, 4},    // whole-machine slots
                      ShapeParam{4, 2, 4, 1},    // 1-GPU slots (no NVLink)
                      ShapeParam{1, 16, 2, 1},   // wide flat cluster
                      ShapeParam{3, 3, 3, 3}));  // odd sizes

TEST(ShapeEdgeCases, TinyClusterWithBigGangsStarvesGracefully) {
  // A job demanding a 4-GPU gang on a 2-GPU cluster can never run; the
  // simulator must hit max_time and report it (not hang or crash).
  AppSpec app;
  app.arrival = 0.0;
  app.tuner = TunerKind::kNone;
  app.target_loss = 0.1;
  JobSpec job;
  job.total_work = 10.0;
  job.total_iterations = 100.0;
  job.num_tasks = 1;
  job.gpus_per_task = 4;
  job.model = ModelByName("ResNet50");
  job.loss = LossCurve(0.1 * std::pow(101.0, 0.6), 0.6, 0.0);
  app.jobs = {job};
  ExperimentConfig cfg;
  cfg.cluster = ClusterSpec::Uniform(1, 1, 2, 2);
  cfg.policy = PolicyKind::kThemis;
  cfg.sim.max_time = 100.0;  // bounded: the run must return promptly
  const ExperimentResult r = RunExperimentWithApps(cfg, {app});
  EXPECT_EQ(r.unfinished_apps, 1);
}

}  // namespace
}  // namespace themis
