#include "common/rng.h"

#include <cmath>

namespace themis {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 uniform mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int Rng::UniformInt(int lo, int hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(NextU64() % span);
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormalMedian(double median, double sigma) {
  return median * std::exp(sigma * Normal(0.0, 1.0));
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace themis
