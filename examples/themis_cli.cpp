// themis_cli — command-line driver for arbitrary experiments.
//
//   themis_cli [--policy themis|gandiva|tiresias|slaq|drf]
//              [--cluster sim256|testbed50|RxMxG (e.g. 2x4x4)]
//              [--generations SPEC (e.g. K80:0.25,V100:0.5,A100:0.25)]
//              [--apps N] [--seed S] [--contention C] [--lease MIN]
//              [--knob F] [--theta T] [--mtbf MIN] [--sensitive FRAC]
//              [--no-incremental-filter] [--round-threads N]
//              [--trace-out FILE] [--trace-in FILE] [--cdf]
//              [--stream-trace FILE] [--bounded-metrics]
//              [--shards N] [--threads N]
//              [--sweep SCENARIOS.json] [--csv FILE]
//              [--connect HOST:PORT]
//
// Generates (or loads) a trace, runs one simulation, prints the Sec. 8.1
// metric summary, and optionally archives the trace as CSV for later
// replay (`--trace-out` then `--trace-in` reproduces results exactly).
// With --stream-trace, the CSV is *streamed*: apps are injected as the
// reader advances and retired as they finish, so arbitrarily long
// (million-job) traces replay in memory bounded by peak concurrency —
// add --bounded-metrics to also cap the metric-side memory (reservoir
// samples + streaming quantiles instead of per-app vectors).
// With --shards N, the cluster's machines are partitioned across N federated
// ARBITER shards (core/federation.h): apps are routed by the least-loaded
// placement hint, the shards simulate in parallel (--threads), the merged
// summary is printed alongside per-shard rows, and the cross-shard
// grant-stream invariants are checked. --shards 1 reproduces the unsharded
// run exactly.
// With --sweep, runs every scenario in the JSON file on the thread-pooled
// SweepRunner instead (see examples/scenarios.json for the format);
// --csv FILE additionally writes the per-scenario metric rows for plotting.
// --generations assigns GPU generations to the cluster's machines by
// fraction, in rack-major machine order (e.g. K80:0.25,V100:0.5,A100:0.25:
// the first quarter of machines are K80s, ...). It is a cluster transform,
// not a cluster choice, so it composes with --cluster, with --shards (the
// partition inherits the mixed machines), and with --sweep (every
// scenario's cluster is re-priced).
// With --connect HOST:PORT, the cli becomes an AGENT instead of a
// simulator: it registers the generated (or --trace-in loaded) apps with a
// running themis_arbiterd and answers OFFER frames with BIDs until the
// daemon CLOSEs the session (server/client.h).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/stats.h"
#include "core/federation.h"
#include "server/client.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "workload/trace_io.h"

namespace {

using namespace themis;

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--policy themis|gandiva|tiresias|slaq|drf]\n"
               "          [--cluster sim256|testbed50|RxMxG] [--apps N]\n"
               "          [--generations NAME:FRAC,... (e.g. "
               "K80:0.25,V100:0.5,A100:0.25)]\n"
               "          [--seed S] [--contention C] [--lease MIN]\n"
               "          [--knob F] [--theta T] [--mtbf MIN]\n"
               "          [--no-incremental-filter] [--round-threads N]\n"
               "          [--sensitive FRAC] [--trace-out FILE]\n"
               "          [--trace-in FILE] [--cdf]\n"
               "          [--stream-trace FILE] [--bounded-metrics]\n"
               "          [--engine event|pass] [--epsilon MIN]\n"
               "          [--shards N] [--threads N]\n"
               "          [--sweep SCENARIOS.json] [--csv FILE]\n"
               "          [--connect HOST:PORT]\n",
               argv0);
  std::exit(2);
}

bool ParseHostPort(const std::string& s, std::string* host, int* port) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos) return false;
  *host = s.substr(0, colon);
  *port = std::atoi(s.c_str() + colon + 1);
  return *port > 0;
}

/// AGENT mode: one blocking ArbiterClient serving `apps` until CLOSE.
int RunAgent(const std::string& host, int port, std::vector<AppSpec> apps) {
  server::ArbiterClient client;
  std::string err;
  if (!client.Connect(host, port, &err)) {
    std::fprintf(stderr, "connect %s:%d: %s\n", host.c_str(), port,
                 err.c_str());
    return 1;
  }
  if (!client.Hello("themis_cli", apps, &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  std::vector<AppId> live = client.app_ids();
  std::vector<int> declared;
  for (const AppSpec& spec : apps) declared.push_back(spec.MaxJobParallelism());
  std::printf("registered %zu apps as agent %lld\n", live.size(),
              static_cast<long long>(client.agent_id()));

  net::GrantDigest digest;
  std::uint64_t rounds = 0;
  for (;;) {
    net::WireMessage msg;
    if (!client.NextMessage(&msg, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    switch (msg.type) {
      case net::MsgType::kOffer: {
        ++rounds;
        std::vector<net::BidDemand> demands;
        for (std::size_t j = 0; j < live.size(); ++j)
          demands.push_back({live[j], j < declared.size() ? declared[j] : 0});
        if (!client.Send(net::EncodeBid(msg.offer.round_id, demands), &err)) {
          std::fprintf(stderr, "%s\n", err.c_str());
          return 1;
        }
        break;
      }
      case net::MsgType::kGrant: {
        for (const Grant& g : msg.grants.grants)
          digest.Add(msg.grants.round_id, msg.grants.lease_expiry, g);
        for (AppId id : msg.finished_apps) {
          std::printf("round %llu: app %d finished\n",
                      static_cast<unsigned long long>(msg.grants.round_id),
                      id);
          const auto it = std::find(live.begin(), live.end(), id);
          if (it != live.end()) {
            const std::size_t idx = static_cast<std::size_t>(it - live.begin());
            live.erase(it);
            if (idx < declared.size()) declared.erase(declared.begin() + idx);
          }
        }
        if (!client.Send(net::EncodeAck(msg.grants.round_id), &err)) {
          std::fprintf(stderr, "%s\n", err.c_str());
          return 1;
        }
        break;
      }
      case net::MsgType::kError:
        std::fprintf(stderr, "server error: %s: %s\n", msg.code.c_str(),
                     msg.detail.c_str());
        break;
      case net::MsgType::kClose:
        std::printf("closed by server: %s\n", msg.reason.c_str());
        std::printf("rounds served    : %llu\n",
                    static_cast<unsigned long long>(rounds));
        std::printf("grant digest     : %016llx (%lld grants, %lld gpus)\n",
                    static_cast<unsigned long long>(digest.hash),
                    digest.grants, digest.gpus);
        return 0;
      default:
        std::fprintf(stderr, "unexpected %s frame from server\n",
                     net::ToString(msg.type));
        return 1;
    }
  }
}

PolicyKind ParsePolicy(const std::string& name) {
  try {
    return PolicyKindFromString(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

int RunSweep(const std::string& path, int threads, const std::string& csv,
             const std::vector<GenerationShare>& generations) {
  std::vector<ScenarioSpec> scenarios;
  try {
    scenarios = LoadScenariosFile(path);
    // --generations re-prices every scenario's cluster (shape untouched).
    if (!generations.empty())
      for (ScenarioSpec& s : scenarios)
        ApplyGenerationMix(s.config.cluster, generations);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("%-22s %-10s %10s %8s %12s %8s\n", "scenario", "policy",
              "max_rho", "jain", "avg_ACT", "unfin");
  int failures = 0;
  const std::vector<ScenarioRun> runs = SweepRunner(threads).Run(scenarios);
  for (const ScenarioRun& run : runs) {
    if (!run.ok) {
      std::printf("%-22s FAILED: %s\n", run.name.c_str(), run.error.c_str());
      ++failures;
      continue;
    }
    std::printf("%-22s %-10s %10.2f %8.3f %12.1f %8d\n", run.name.c_str(),
                run.result.policy_name.c_str(), run.result.max_fairness,
                run.result.jains_index, run.result.avg_completion_time,
                run.result.unfinished_apps);
  }
  if (!csv.empty()) {
    try {
      WriteSweepCsv(csv, runs);
      std::printf("wrote %zu scenario rows to %s\n", runs.size(), csv.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  return failures == 0 ? 0 : 1;
}

int RunSharded(const ExperimentConfig& config, std::vector<AppSpec> apps,
               int shards, int threads, bool print_cdf) {
  FederationResult fed;
  try {
    ShardedArbiter arbiter(config.cluster, shards);
    fed = arbiter.Run(config, apps, threads);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const ExperimentResult& m = fed.merged;
  std::printf("federation       : %d shard(s), policy %s\n", fed.num_shards,
              m.policy_name.c_str());
  std::printf("%-8s %8s %8s %10s %8s %12s %8s\n", "shard", "apps", "rounds",
              "max_rho", "jain", "avg_ACT", "unfin");
  for (int s = 0; s < fed.num_shards; ++s) {
    const ExperimentResult& r = fed.per_shard[s];
    std::printf("%-8d %8d %8d %10.2f %8.3f %12.1f %8d\n", s,
                fed.apps_per_shard[s], r.scheduling_passes, r.max_fairness,
                r.jains_index, r.avg_completion_time, r.unfinished_apps);
  }
  std::printf("%-8s %8zu %8lld %10.2f %8.3f %12.1f %8d\n", "merged",
              apps.size(), fed.total_rounds, m.max_fairness, m.jains_index,
              m.avg_completion_time, m.unfinished_apps);
  std::printf("granted GPUs     : %lld (double-granted across shards: %d,"
              " out of range: %d)\n",
              fed.total_granted_gpus, fed.cross_shard_double_grants,
              fed.out_of_range_grants);
  if (print_cdf)
    std::printf("\nrho CDF:\n%s", FormatCdf(Cdf(m.rhos), 15).c_str());
  const bool ok = m.unfinished_apps == 0 &&
                  fed.cross_shard_double_grants == 0 &&
                  fed.out_of_range_grants == 0;
  return ok ? 0 : 1;
}

ClusterSpec ParseCluster(const std::string& name) {
  if (name == "sim256") return ClusterSpec::Simulation256();
  if (name == "testbed50") return ClusterSpec::Testbed50();
  int racks = 0, machines = 0, gpus = 0;
  if (std::sscanf(name.c_str(), "%dx%dx%d", &racks, &machines, &gpus) == 3 &&
      racks > 0 && machines > 0 && gpus > 0) {
    const int slot = (gpus % 2 == 0) ? 2 : 1;
    return ClusterSpec::Uniform(racks, machines, gpus, slot);
  }
  std::fprintf(stderr, "unknown cluster: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Simulation256();
  config.trace.num_apps = 60;
  std::string trace_in, trace_out, stream_trace, sweep_file, csv_file;
  std::string connect_host;
  int connect_port = 0;
  std::vector<GenerationShare> generations;
  int sweep_threads = 0;
  int shards = 0;
  bool print_cdf = false;
  // Sweep mode takes every setting from the scenario file; reject
  // single-run flags alongside --sweep instead of silently dropping them.
  // --generations is exempt: it transforms whatever cluster each scenario
  // chose rather than replacing a scenario setting.
  const char* single_run_flag = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (arg != "--sweep" && arg != "--threads" && arg != "--csv" &&
        arg != "--generations" && arg != "--help" && arg != "-h")
      single_run_flag = argv[i];
    if (arg == "--policy") config.policy = ParsePolicy(next());
    else if (arg == "--cluster") config.cluster = ParseCluster(next());
    else if (arg == "--generations") {
      try {
        generations = ParseGenerationMix(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--generations: %s\n", e.what());
        return 2;
      }
    }
    else if (arg == "--apps") config.trace.num_apps = std::atoi(next().c_str());
    else if (arg == "--seed") {
      config.trace.seed = std::strtoull(next().c_str(), nullptr, 10);
      config.sim.seed = config.trace.seed;
    } else if (arg == "--contention")
      config.trace.contention_factor = std::atof(next().c_str());
    else if (arg == "--lease") config.sim.lease_minutes = std::atof(next().c_str());
    else if (arg == "--knob")
      config.themis.fairness_knob = std::atof(next().c_str());
    else if (arg == "--no-incremental-filter")
      // Bisect escape hatch: force the literal probe-everything filter
      // instead of the maintained rho index (bit-identical by contract).
      config.themis.incremental_filter = false;
    else if (arg == "--round-threads")
      // Fan the round's probe + bid-prep phases over N pool threads
      // (bit-identical to serial; see common/parallel.h).
      config.sim.round_threads = std::atoi(next().c_str());
    else if (arg == "--theta") {
      config.sim.estimator.theta = std::atof(next().c_str());
      if (config.sim.estimator.theta > 0.0)
        config.sim.estimator.mode = EstimationMode::kNoisy;
    } else if (arg == "--mtbf")
      config.sim.machine_mtbf_minutes = std::atof(next().c_str());
    else if (arg == "--sensitive")
      config.trace.frac_network_intensive = std::atof(next().c_str());
    else if (arg == "--trace-in") trace_in = next();
    else if (arg == "--trace-out") trace_out = next();
    else if (arg == "--stream-trace") stream_trace = next();
    else if (arg == "--bounded-metrics") config.sim.metrics.bounded_memory = true;
    else if (arg == "--engine") {
      const std::string name = next();
      if (name == "event") config.sim.engine = SimEngine::kEventDriven;
      else if (name == "pass") config.sim.engine = SimEngine::kPassStepped;
      else {
        std::fprintf(stderr, "--engine must be event or pass (got %s)\n",
                     name.c_str());
        return 2;
      }
    }
    else if (arg == "--epsilon")
      config.sim.auction_epsilon_minutes = std::atof(next().c_str());
    else if (arg == "--connect") {
      if (!ParseHostPort(next(), &connect_host, &connect_port)) {
        std::fprintf(stderr, "--connect expects HOST:PORT\n");
        return 2;
      }
    }
    else if (arg == "--cdf") print_cdf = true;
    else if (arg == "--sweep") sweep_file = next();
    else if (arg == "--csv") csv_file = next();
    else if (arg == "--shards") shards = std::atoi(next().c_str());
    else if (arg == "--threads") sweep_threads = std::atoi(next().c_str());
    else if (arg == "--help" || arg == "-h") Usage(argv[0]);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
    }
  }

  if (!sweep_file.empty()) {
    if (single_run_flag != nullptr) {
      std::fprintf(stderr,
                   "--sweep runs scenarios from the file and cannot be "
                   "combined with %s\n",
                   single_run_flag);
      return 2;
    }
    return RunSweep(sweep_file, sweep_threads, csv_file, generations);
  }
  if (!generations.empty()) {
    try {
      ApplyGenerationMix(config.cluster, generations);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--generations: %s\n", e.what());
      return 2;
    }
  }
  if (!csv_file.empty()) {
    std::fprintf(stderr, "--csv only applies to --sweep runs\n");
    return 2;
  }
  if (sweep_threads != 0 && shards == 0) {
    std::fprintf(stderr,
                 "--threads only applies to --sweep or --shards runs\n");
    return 2;
  }

  if (!stream_trace.empty()) {
    // Streamed replay fixes the workload and owns the app lifecycle, so the
    // preload/archive/shard paths cannot compose with it.
    if (!trace_in.empty() || !trace_out.empty() || shards != 0) {
      std::fprintf(stderr,
                   "--stream-trace cannot be combined with --trace-in, "
                   "--trace-out, or --shards\n");
      return 2;
    }
    ExperimentResult r;
    try {
      r = RunStreamingExperiment(
          config, std::make_unique<StreamingCsvTraceReader>(stream_trace));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    std::printf("policy           : %s\n", r.policy_name.c_str());
    std::printf("apps replayed    : %zu (%d unfinished, peak %zu live)\n",
                r.total_apps, r.unfinished_apps, r.peak_live_apps);
    std::printf("peak contention  : %.2f\n", r.peak_contention);
    std::printf("max fairness     : %.2f\n", r.max_fairness);
    std::printf("median fairness  : %.2f\n", r.median_fairness);
    std::printf("Jain's index     : %.3f\n", r.jains_index);
    std::printf("avg ACT          : %.1f min\n", r.avg_completion_time);
    std::printf("GPU time         : %.0f GPU-min\n", r.gpu_time);
    std::printf("event core       : %lld events, %lld rounds in %d passes, "
                "%lld time advances\n",
                r.events_processed, r.rounds_executed, r.scheduling_passes,
                r.sim_time_advances);
    if (r.machine_failures > 0)
      std::printf("machine failures : %d\n", r.machine_failures);
    if (print_cdf)
      std::printf("\nrho CDF (sampled):\n%s",
                  FormatCdf(Cdf(r.rhos), 15).c_str());
    return r.unfinished_apps == 0 ? 0 : 1;
  }

  std::vector<AppSpec> apps;
  if (!trace_in.empty()) {
    apps = ReadTraceCsvFile(trace_in);
    std::printf("loaded %zu apps from %s\n", apps.size(), trace_in.c_str());
  } else {
    TraceGenerator gen(config.trace);
    apps = gen.Generate();
  }
  if (!trace_out.empty()) {
    WriteTraceCsvFile(trace_out, apps);
    std::printf("wrote %zu apps to %s\n", apps.size(), trace_out.c_str());
  }

  if (!connect_host.empty()) {
    if (shards != 0) {
      std::fprintf(stderr, "--connect cannot be combined with --shards\n");
      return 2;
    }
    return RunAgent(connect_host, connect_port, std::move(apps));
  }

  if (shards != 0)
    return RunSharded(config, std::move(apps), shards, sweep_threads,
                      print_cdf);

  ExperimentResult r;
  try {
    r = RunExperimentWithApps(config, apps);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("policy           : %s\n", r.policy_name.c_str());
  std::printf("apps finished    : %zu (%d unfinished)\n", r.rhos.size(),
              r.unfinished_apps);
  std::printf("peak contention  : %.2f\n", r.peak_contention);
  std::printf("max fairness     : %.2f\n", r.max_fairness);
  std::printf("median fairness  : %.2f\n", r.median_fairness);
  std::printf("Jain's index     : %.3f\n", r.jains_index);
  std::printf("avg ACT          : %.1f min\n", r.avg_completion_time);
  std::printf("GPU time         : %.0f GPU-min\n", r.gpu_time);
  std::printf("event core       : %lld events, %lld rounds in %d passes, "
              "%lld time advances\n",
              r.events_processed, r.rounds_executed, r.scheduling_passes,
              r.sim_time_advances);
  if (r.machine_failures > 0)
    std::printf("machine failures : %d\n", r.machine_failures);
  if (print_cdf) {
    std::printf("\nrho CDF:\n%s", FormatCdf(Cdf(r.rhos), 15).c_str());
    std::printf("\nACT CDF (min):\n%s",
                FormatCdf(Cdf(r.completion_times), 15).c_str());
  }
  return r.unfinished_apps == 0 ? 0 : 1;
}
