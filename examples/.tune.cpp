#include <cstdio>
#include "sim/experiment.h"
using namespace themis;
int main() {
  for (double sigma : {0.5, 0.35}) {
    for (double minlen : {59.0, 80.0}) {
      for (auto kind : {PolicyKind::kThemis, PolicyKind::kGandiva, PolicyKind::kSlaq, PolicyKind::kTiresias}) {
        double mx = 0, peak = 0, act = 0, jain = 0;
        for (std::uint64_t s : {42ull, 43ull, 44ull}) {
          auto cfg = TestbedScaleConfig(kind, s, 100);
          cfg.trace.contention_factor = 4.0;
          cfg.sim.lease_minutes = 5.0;
          cfg.trace.duration_sigma = sigma;
          cfg.trace.short_duration_median = minlen;
          auto r = RunExperiment(cfg);
          mx += r.max_fairness/3; peak += r.peak_contention/3; act += r.avg_completion_time/3; jain += r.jains_index/3;
        }
        std::printf("sigma=%.2f med=%3.0f %-9s max=%7.2f peak=%5.2f jain=%.3f act=%6.1f\n",
                    sigma, minlen, ToString(kind), mx, peak, jain, act);
      }
    }
  }
}
