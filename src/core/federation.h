// Sharded multi-cluster federation (ROADMAP "Sharded multi-cluster").
//
// A ShardedArbiter partitions a cluster's machines across N shards — one
// ARBITER (round scheduler + Cluster) each — routes arriving apps to shards
// through a pluggable placement hint, simulates the shards in parallel on
// the sweep thread pool, and merges the results back into global app order.
// The round protocol (core/round.h) is what makes this a layering rather
// than a rewrite: each shard runs ordinary offer -> bid -> grant rounds
// against its own pool, and the federation only ever sees plain
// ResourceOffer / GrantSet messages through the simulator's round observer,
// which it audits for the cross-shard invariants (every granted GPU belongs
// to the granting shard's range; no GPU is ever granted by two shards).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/round.h"
#include "sim/experiment.h"

namespace themis {

/// One shard of a partitioned cluster: a contiguous machine range of the
/// global topology, with the id offsets that map shard-local machine/GPU
/// ids back to global ones (global gpu = first_gpu + local gpu; machine
/// ids likewise — the global topology numbers both contiguously in
/// rack-major order, and partitions are contiguous in that order).
struct FederationShard {
  int index = 0;
  ClusterSpec spec;
  MachineId first_machine = 0;
  int num_machines = 0;
  GpuId first_gpu = 0;
  int num_gpus = 0;
};

/// Split `global`'s machines into `num_shards` contiguous ranges (rack
/// substructure preserved; a rack spanning a shard boundary is split).
/// Ranges differ by at most one machine. Throws std::invalid_argument when
/// num_shards < 1 or exceeds the machine count.
std::vector<FederationShard> PartitionCluster(const ClusterSpec& global,
                                              int num_shards);

/// What a placement hint sees about each shard when routing one app.
struct ShardLoadView {
  int capacity_gpus = 0;
  /// Speed-weighted capacity (sum of generation speed over the shard's
  /// GPUs): the aggregate shard speed hints route by. Equals capacity_gpus
  /// on speed-1.0 clusters.
  double capacity_effective_gpus = 0.0;
  /// Sum of max-parallelism GPU demand of apps routed so far.
  long long routed_demand = 0;
  int routed_apps = 0;
};

/// Routes an arriving app: returns the target shard index. Called in app
/// submission order with the loads of everything routed before, so hints
/// are deterministic online policies.
using PlacementHint =
    std::function<int(const AppSpec&, const std::vector<ShardLoadView>&)>;

/// Default hint: the feasible shard (capacity fits the app's largest task
/// gang) with the lowest routed_demand / effective-capacity ratio — a shard
/// of faster machines absorbs proportionally more demand; ties go to the
/// lower index. Falls back to the largest shard when none is feasible. On
/// speed-1.0 clusters effective capacity equals the GPU count and routing
/// is unchanged.
PlacementHint LeastLoadedPlacement();

/// Round-robin by routed app count (min routed_apps, ties to lower index).
PlacementHint RoundRobinPlacement();

/// Outcome of routing a trace: per-shard app lists plus, for shard s and
/// shard-local app l, the original submission index global_index[s][l] —
/// also the shard-local AppId the shard's simulator will assign, since apps
/// are handed over in routed order.
struct FederationRouting {
  std::vector<std::vector<AppSpec>> shard_apps;
  std::vector<std::vector<std::size_t>> global_index;
};

struct FederationResult {
  int num_shards = 1;
  /// Shard results stitched back into global app order, with the summary
  /// metrics recomputed over the merged per-app vectors (identical formulas
  /// to MetricsCollector, so a 1-shard federation reproduces the unsharded
  /// result bit-for-bit). peak_contention is the max over shards;
  /// gpu_time / failures / passes are sums.
  ExperimentResult merged;
  std::vector<ExperimentResult> per_shard;
  std::vector<int> apps_per_shard;
  /// Scheduling passes summed over shards.
  long long total_rounds = 0;
  /// GPUs granted across all shards' rounds (lease renewals included).
  long long total_granted_gpus = 0;
  /// Total GPUs each app was granted over the run, indexed by original
  /// submission order — shard merge must preserve per-app holdings.
  std::vector<long long> granted_per_app;
  /// Invariant violations; both must be 0. Audited from the observed
  /// GrantSet streams, not assumed from the partition.
  int cross_shard_double_grants = 0;
  int out_of_range_grants = 0;
};

class ShardedArbiter {
 public:
  /// Throws like PartitionCluster on an invalid shard count.
  ShardedArbiter(const ClusterSpec& global, int num_shards,
                 PlacementHint hint = LeastLoadedPlacement());

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const std::vector<FederationShard>& shards() const { return shards_; }
  int total_gpus() const { return total_gpus_; }

  /// Route `apps` (in submission order) to shards with the placement hint.
  FederationRouting Route(const std::vector<AppSpec>& apps) const;

  /// Run the federated experiment: each shard simulates its own cluster and
  /// routed apps with its own policy instance (config.policy / themis
  /// knobs), in parallel on the sweep thread pool, auditing every round's
  /// GrantSet. config.cluster is ignored — the partition decides topology.
  /// Shard 0 keeps config.sim.seed so a 1-shard federation matches the
  /// unsharded simulator exactly; later shards get position-derived seeds.
  FederationResult Run(const ExperimentConfig& config,
                       const std::vector<AppSpec>& apps,
                       int num_threads = 0) const;

 private:
  std::vector<FederationShard> shards_;
  PlacementHint hint_;
  int total_gpus_ = 0;
};

}  // namespace themis
