// Tests for the wire layer under the ARBITER daemon:
//
//   - JsonWriter (common/json.h): Parse(Write(v)) == v property tests —
//     shortest round-trip number formatting (including random bit
//     patterns), RFC 8259 string escaping, single-line output, non-finite
//     rejection.
//   - LineReader / WriteBuffer (net/frame.h): incremental '\n' framing,
//     CRLF tolerance, oversize poisoning, bounded write queues.
//   - Wire codec (net/wire.h): encode/parse round trips for all eight
//     frame types (re-encoding a parsed frame reproduces the original
//     bytes), and a malformed-input table where every bad line draws a
//     pointed WireError instead of a crash.
//   - GrantDigest: order insensitivity, Merge, and distinct grants not
//     cancelling.
#include <gtest/gtest.h>

#include <algorithm>
#include <clocale>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "common/json.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "workload/trace_gen.h"

namespace themis {
namespace {

std::uint64_t Bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

double RoundTrip(double d) {
  return JsonValue::Parse(JsonWriter::FormatNumber(d)).AsNumber();
}

TEST(JsonWriter, IntegralDoublesPrintAsIntegers) {
  EXPECT_EQ(JsonWriter::FormatNumber(0.0), "0");
  EXPECT_EQ(JsonWriter::FormatNumber(42.0), "42");
  EXPECT_EQ(JsonWriter::FormatNumber(-7.0), "-7");
  // Largest exactly-representable integer still prints without exponent.
  const double big = 9007199254740991.0;  // 2^53 - 1
  EXPECT_EQ(JsonWriter::FormatNumber(big), "9007199254740991");
  EXPECT_EQ(Bits(RoundTrip(big)), Bits(big));
}

TEST(JsonWriter, NumbersRoundTripBitForBit) {
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          1e-9,
                          6.02214076e23,
                          5e-324,  // smallest denormal
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::min(),
                          -0.0,
                          3.141592653589793,
                          2.5,
                          1e300};
  for (double d : cases)
    EXPECT_EQ(Bits(RoundTrip(d)), Bits(d)) << JsonWriter::FormatNumber(d);
}

TEST(JsonWriter, RandomBitPatternsRoundTrip) {
  std::mt19937_64 rng(20260808);
  int tested = 0;
  while (tested < 2000) {
    double d = 0.0;
    const std::uint64_t u = rng();
    std::memcpy(&d, &u, sizeof d);
    if (!std::isfinite(d)) continue;
    ++tested;
    EXPECT_EQ(Bits(RoundTrip(d)), Bits(d)) << u;
  }
}

TEST(JsonWriter, NonFiniteThrows) {
  EXPECT_THROW(JsonWriter::FormatNumber(std::nan("")), std::invalid_argument);
  EXPECT_THROW(JsonWriter::FormatNumber(
                   std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(JsonWriter::Write(JsonValue::MakeNumber(
                   -std::numeric_limits<double>::infinity())),
               std::invalid_argument);
}

TEST(JsonWriter, StringsRoundTripAndStayOnOneLine) {
  const std::string cases[] = {"",
                               "plain",
                               "with \"quotes\"",
                               "back\\slash",
                               "line\nbreak\ttab\rcr",
                               std::string("nul\0byte", 8),
                               "\x01\x1f",
                               "h\xc3\xa9llo \xe2\x98\x83"};  // UTF-8
  for (const std::string& s : cases) {
    const std::string doc = JsonWriter::Write(JsonValue::MakeString(s));
    EXPECT_EQ(doc.find('\n'), std::string::npos) << doc;
    EXPECT_EQ(JsonValue::Parse(doc).AsString(), s) << doc;
  }
}

TEST(JsonWriter, DocumentsRoundTripStructurally) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("name", JsonValue::MakeString("round \"7\""));
  obj.Set("pi", JsonValue::MakeNumber(3.141592653589793));
  obj.Set("n", JsonValue::MakeNumber(-12.0));
  obj.Set("flag", JsonValue::MakeBool(true));
  obj.Set("nothing", JsonValue::MakeNull());
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue::MakeNumber(0.1));
  arr.Append(JsonValue::MakeBool(false));
  JsonValue inner = JsonValue::MakeObject();
  inner.Set("k", JsonValue::MakeString("v"));
  arr.Append(std::move(inner));
  obj.Set("items", std::move(arr));

  const std::string doc = JsonWriter::Write(obj);
  const JsonValue back = JsonValue::Parse(doc);
  EXPECT_EQ(back, obj);
  // Write is deterministic: a reparsed document reproduces the same bytes.
  EXPECT_EQ(JsonWriter::Write(back), doc);
}

TEST(JsonParser, DeepNestingIsRejectedNotStackOverflow) {
  // A frame of brackets well under the 1 MiB line cap would recurse once
  // per byte without the depth bound — a remote stack-overflow crash.
  EXPECT_THROW(JsonValue::Parse(std::string(200000, '[')),
               std::runtime_error);
  const int kTooDeep = 80;
  EXPECT_THROW(JsonValue::Parse(std::string(kTooDeep, '[') +
                                std::string(kTooDeep, ']')),
               std::runtime_error);
  std::string objects;
  for (int i = 0; i < kTooDeep; ++i) objects += "{\"k\":";
  objects += "null";
  objects.append(static_cast<std::size_t>(kTooDeep), '}');
  EXPECT_THROW(JsonValue::Parse(objects), std::runtime_error);

  // Sane nesting is untouched (wire frames nest 3-4 deep; the bound is 64).
  const int kFine = 32;
  const JsonValue v = JsonValue::Parse(std::string(kFine, '[') + "7" +
                                       std::string(kFine, ']'));
  EXPECT_TRUE(v.is_array());

  // Through the wire codec the same input must surface as a WireError (the
  // daemon answers with a pointed ERROR frame and evicts — never crashes).
  EXPECT_THROW(net::ParseWireMessage("{\"type\":\"bid\",\"round\":1,"
                                     "\"demands\":" +
                                     std::string(5000, '[')),
               net::WireError);
}

TEST(JsonParser, NumberParsingIsLocaleIndependent) {
  // strtod would honor a ',' decimal separator and read "1.5" as 1.0;
  // from_chars must not. Skip when the locale is not installed.
  const std::string saved = std::setlocale(LC_NUMERIC, nullptr);
  if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") == nullptr)
    GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  const double got = JsonValue::Parse("1.5").AsNumber();
  const std::string formatted = JsonWriter::FormatNumber(0.1);
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_EQ(got, 1.5);
  EXPECT_EQ(formatted, "0.1");
}

TEST(LineReader, SplitsLinesAcrossFeeds) {
  net::LineReader reader;
  std::string line;
  EXPECT_TRUE(reader.Feed("ab", 2));
  EXPECT_FALSE(reader.NextLine(line));
  EXPECT_TRUE(reader.Feed("c\nde\nf", 6));
  ASSERT_TRUE(reader.NextLine(line));
  EXPECT_EQ(line, "abc");
  ASSERT_TRUE(reader.NextLine(line));
  EXPECT_EQ(line, "de");
  EXPECT_FALSE(reader.NextLine(line));  // "f" incomplete
  EXPECT_EQ(reader.buffered(), 1u);
}

TEST(LineReader, StripsCarriageReturnAndYieldsEmptyLines) {
  net::LineReader reader;
  std::string line;
  const std::string in = "x\r\n\ny\n";
  EXPECT_TRUE(reader.Feed(in.data(), in.size()));
  ASSERT_TRUE(reader.NextLine(line));
  EXPECT_EQ(line, "x");
  ASSERT_TRUE(reader.NextLine(line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(reader.NextLine(line));
  EXPECT_EQ(line, "y");
}

TEST(LineReader, OversizedLinePoisonsTheReader) {
  net::LineReader reader(/*max_line=*/8);
  const std::string big(9, 'a');
  EXPECT_FALSE(reader.Feed(big.data(), big.size()));
  EXPECT_TRUE(reader.overflowed());
  // Even a later newline cannot un-poison it.
  EXPECT_FALSE(reader.Feed("\n", 1));
  std::string line;
  EXPECT_FALSE(reader.NextLine(line));
}

TEST(LineReader, LineAtExactlyMaxLinePasses) {
  net::LineReader reader(/*max_line=*/8);
  const std::string in = std::string(8, 'b') + "\n";
  EXPECT_TRUE(reader.Feed(in.data(), in.size()));
  std::string line;
  ASSERT_TRUE(reader.NextLine(line));
  EXPECT_EQ(line, std::string(8, 'b'));
}

TEST(WriteBuffer, CapsQueuedBytes) {
  net::WriteBuffer buf(/*max_bytes=*/16);
  EXPECT_TRUE(buf.QueueFrame("0123456789"));  // 11 with terminator
  EXPECT_FALSE(buf.QueueFrame("0123456789"));  // would exceed 16
  EXPECT_TRUE(buf.QueueFrame("abc"));          // 11 + 4 = 15 fits
  EXPECT_EQ(buf.pending(), 15u);
}

TEST(WriteBuffer, FlushDeliversFramesOverASocketPair) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::WriteBuffer buf;
  EXPECT_TRUE(buf.QueueFrame("hello"));
  EXPECT_TRUE(buf.QueueFrame("world"));
  EXPECT_TRUE(buf.Flush(fds[0]));
  EXPECT_TRUE(buf.empty());
  char got[64] = {};
  const ssize_t n = read(fds[1], got, sizeof got);
  EXPECT_EQ(std::string(got, static_cast<std::size_t>(n)), "hello\nworld\n");
  close(fds[0]);
  close(fds[1]);
}

TEST(WriteBuffer, CompactsSentPrefixUnderSustainedPartialFlushes) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(net::SetNonBlocking(fds[0]));
  ASSERT_TRUE(net::SetNonBlocking(fds[1]));
  // Tiny kernel buffer so every Flush is partial once the pipe fills: the
  // slow-but-reading peer keeps pending() > 0 forever, and without
  // compaction the sent prefix would accrete every byte ever queued.
  const int kSndBuf = 4096;
  ASSERT_EQ(setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &kSndBuf,
                       sizeof kSndBuf),
            0);

  net::WriteBuffer buf(1u << 20);
  std::string expected;
  std::string received;
  std::size_t peak_held = 0;
  char tmp[4096];
  const int kIterations = 500;
  const std::size_t kFrameLen = 1000;
  for (int i = 0; i < kIterations; ++i) {
    const std::string frame(kFrameLen, static_cast<char>('a' + i % 26));
    ASSERT_TRUE(buf.QueueFrame(frame));
    expected += frame;
    expected += '\n';
    ASSERT_TRUE(buf.Flush(fds[0]));
    // The peer drains at most one read per queued frame, so the socket
    // stays full and flushes stay partial while data still moves.
    const long r = read(fds[1], tmp, sizeof tmp);
    if (r > 0) received.append(tmp, static_cast<std::size_t>(r));
    peak_held = std::max(peak_held, buf.buffer_size());
  }
  // ~500 KB moved through the buffer; memory must track pending(), not
  // lifetime traffic. 2x pending cap + one frame of slack, far below the
  // unbounded-growth failure mode.
  EXPECT_LT(peak_held, 64u * 1024);

  // Compaction must not corrupt the stream: drain fully and compare bytes.
  while (!buf.empty()) {
    ASSERT_TRUE(buf.Flush(fds[0]));
    const long r = read(fds[1], tmp, sizeof tmp);
    if (r > 0) received.append(tmp, static_cast<std::size_t>(r));
  }
  for (long r = read(fds[1], tmp, sizeof tmp); r > 0;
       r = read(fds[1], tmp, sizeof tmp))
    received.append(tmp, static_cast<std::size_t>(r));
  EXPECT_EQ(received, expected);
  close(fds[0]);
  close(fds[1]);
}

// ---------------------------------------------------------------------------
// Wire codec round trips. The strongest property: re-encoding a parsed
// frame reproduces the original bytes, so nothing is lost or reformatted.
// ---------------------------------------------------------------------------

std::vector<AppSpec> SampleApps(int n) {
  TraceConfig trace;
  trace.num_apps = n;
  trace.seed = 7;
  return TraceGenerator(trace).Generate();
}

TEST(WireCodec, HelloRoundTripsGeneratedApps) {
  const std::vector<AppSpec> apps = SampleApps(4);
  const std::string frame = net::EncodeHello("agent-a", apps);
  const net::WireMessage msg = net::ParseWireMessage(frame);
  ASSERT_EQ(msg.type, net::MsgType::kHello);
  EXPECT_EQ(msg.agent_name, "agent-a");
  ASSERT_EQ(msg.apps.size(), apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    EXPECT_EQ(msg.apps[i].name, apps[i].name);
    EXPECT_EQ(msg.apps[i].jobs.size(), apps[i].jobs.size());
    EXPECT_EQ(msg.apps[i].target_loss, apps[i].target_loss);
  }
  EXPECT_EQ(net::EncodeHello(msg.agent_name, msg.apps), frame);
}

TEST(WireCodec, WelcomeRoundTrips) {
  const std::string frame = net::EncodeWelcome(7, {0, 1, 5});
  const net::WireMessage msg = net::ParseWireMessage(frame);
  ASSERT_EQ(msg.type, net::MsgType::kWelcome);
  EXPECT_EQ(msg.protocol, net::kProtocolVersion);
  EXPECT_EQ(msg.agent_id, 7);
  EXPECT_EQ(msg.app_ids, (std::vector<AppId>{0, 1, 5}));
  EXPECT_EQ(net::EncodeWelcome(msg.agent_id, msg.app_ids), frame);
}

TEST(WireCodec, OfferRoundTripsDoublesExactly) {
  ResourceOffer offer;
  offer.round_id = 12;
  offer.time = 62.500000000000014;  // not representable in short decimal
  offer.lease_duration = 20.0;
  offer.gpus = {0, 3, 5, 17};
  offer.free_per_machine = {2, 0, 2};
  offer.machine_speeds = {1.0, 0.5, 1.0 / 3.0};
  const std::string frame = net::EncodeOffer(offer);
  const net::WireMessage msg = net::ParseWireMessage(frame);
  ASSERT_EQ(msg.type, net::MsgType::kOffer);
  EXPECT_EQ(msg.offer.round_id, 12u);
  EXPECT_EQ(Bits(msg.offer.time), Bits(offer.time));
  EXPECT_EQ(msg.offer.gpus, offer.gpus);
  EXPECT_EQ(msg.offer.free_per_machine, offer.free_per_machine);
  ASSERT_EQ(msg.offer.machine_speeds.size(), offer.machine_speeds.size());
  for (std::size_t i = 0; i < offer.machine_speeds.size(); ++i)
    EXPECT_EQ(Bits(msg.offer.machine_speeds[i]),
              Bits(offer.machine_speeds[i]));
  EXPECT_EQ(net::EncodeOffer(msg.offer), frame);
}

TEST(WireCodec, BidAckErrorCloseRoundTrip) {
  const std::string bid = net::EncodeBid(9, {{2, 8}, {5, 0}});
  net::WireMessage msg = net::ParseWireMessage(bid);
  ASSERT_EQ(msg.type, net::MsgType::kBid);
  EXPECT_EQ(msg.round_id, 9u);
  ASSERT_EQ(msg.demands.size(), 2u);
  EXPECT_EQ(msg.demands[0].app, 2);
  EXPECT_EQ(msg.demands[0].unmet_gpus, 8);
  EXPECT_EQ(net::EncodeBid(msg.round_id, msg.demands), bid);

  msg = net::ParseWireMessage(net::EncodeAck(3));
  ASSERT_EQ(msg.type, net::MsgType::kAck);
  EXPECT_EQ(msg.round_id, 3u);

  msg = net::ParseWireMessage(net::EncodeError("stale-bid", "round 2 != 3"));
  ASSERT_EQ(msg.type, net::MsgType::kError);
  EXPECT_EQ(msg.code, "stale-bid");
  EXPECT_EQ(msg.detail, "round 2 != 3");

  msg = net::ParseWireMessage(net::EncodeClose("apps finished"));
  ASSERT_EQ(msg.type, net::MsgType::kClose);
  EXPECT_EQ(msg.reason, "apps finished");
}

TEST(WireCodec, GrantRoundTripsWithDiagnostics) {
  GrantSet grants;
  grants.round_id = 4;
  grants.lease_expiry = 40.0;
  grants.grants.push_back({1, 0, {0, 1, 2, 3}});
  grants.grants.push_back({2, 1, {7}});
  grants.diagnostics.offered_gpus = 5;
  grants.diagnostics.granted_gpus = 5;
  grants.diagnostics.leftover_gpus = 0;
  grants.diagnostics.auction_ran = true;
  grants.diagnostics.auction_participants = 2;
  const std::string frame = net::EncodeGrant(grants, {2});
  const net::WireMessage msg = net::ParseWireMessage(frame);
  ASSERT_EQ(msg.type, net::MsgType::kGrant);
  EXPECT_EQ(msg.grants.round_id, 4u);
  EXPECT_EQ(msg.grants.lease_expiry, 40.0);
  ASSERT_EQ(msg.grants.grants.size(), 2u);
  EXPECT_EQ(msg.grants.grants[0].app, 1);
  EXPECT_EQ(msg.grants.grants[0].gpus, (std::vector<GpuId>{0, 1, 2, 3}));
  EXPECT_TRUE(msg.grants.diagnostics.auction_ran);
  EXPECT_EQ(msg.grants.diagnostics.auction_participants, 2);
  EXPECT_EQ(msg.finished_apps, (std::vector<AppId>{2}));
  EXPECT_EQ(net::EncodeGrant(msg.grants, msg.finished_apps), frame);
}

TEST(WireCodec, MalformedFramesDrawPointedErrors) {
  struct Case {
    const char* line;
    const char* expect;  // substring of the WireError message
  };
  const Case cases[] = {
      {"not json at all", "wire"},
      {"[1,2,3]", "object"},
      {"{}", "type"},
      {"{\"type\":\"teapot\"}", "teapot"},
      {"{\"type\":42}", "type"},
      {"{\"type\":\"hello\"}", "agent"},
      {"{\"type\":\"hello\",\"agent\":\"a\",\"apps\":7}", "apps"},
      {"{\"type\":\"hello\",\"agent\":\"a\",\"apps\":[{}]}", "name"},
      {"{\"type\":\"bid\",\"round\":1}", "demands"},
      {"{\"type\":\"bid\",\"round\":1,\"demands\":[{\"gpus\":2}]}", "app"},
      {"{\"type\":\"bid\",\"round\":0.5,\"demands\":[]}", "round"},
      {"{\"type\":\"bid\",\"round\":1e17,\"demands\":[]}", "round"},
      {"{\"type\":\"offer\",\"round\":1}", "time"},
      {"{\"type\":\"close\"}", "reason"},
      {"{\"type\":\"error\",\"code\":\"x\"}", "detail"},
  };
  for (const Case& c : cases) {
    try {
      net::ParseWireMessage(c.line);
      FAIL() << "expected WireError for: " << c.line;
    } catch (const net::WireError& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect), std::string::npos)
          << c.line << " -> " << e.what();
    }
  }
}

TEST(WireCodec, TruncatedHelloIsRejectedNotCrashed) {
  const std::string frame = net::EncodeHello("a", SampleApps(1));
  for (std::size_t cut : {frame.size() / 4, frame.size() / 2,
                          frame.size() - 1}) {
    EXPECT_THROW(net::ParseWireMessage(frame.substr(0, cut)), net::WireError)
        << cut;
  }
}

TEST(GrantDigest, OrderInsensitiveAndMergeable) {
  const Grant a{1, 0, {0, 1}};
  const Grant b{2, 1, {5}};
  const Grant c{3, 0, {2, 3, 4}};

  net::GrantDigest fwd, rev;
  fwd.Add(1, 20.0, a);
  fwd.Add(1, 20.0, b);
  fwd.Add(2, 25.0, c);
  rev.Add(2, 25.0, c);
  rev.Add(1, 20.0, b);
  rev.Add(1, 20.0, a);
  EXPECT_TRUE(fwd == rev);
  EXPECT_EQ(fwd.grants, 3);
  EXPECT_EQ(fwd.gpus, 6);

  net::GrantDigest left, right;
  left.Add(1, 20.0, a);
  right.Add(1, 20.0, b);
  right.Add(2, 25.0, c);
  left.Merge(right);
  EXPECT_TRUE(left == fwd);

  // Distinct grants do not cancel to the empty digest.
  net::GrantDigest two;
  two.Add(1, 20.0, a);
  two.Add(1, 20.0, b);
  EXPECT_NE(two.hash, 0u);
  // The same grant twice cancels in the XOR but the counters catch it.
  net::GrantDigest dup;
  dup.Add(1, 20.0, a);
  dup.Add(1, 20.0, a);
  EXPECT_EQ(dup.hash, 0u);
  EXPECT_FALSE(dup == net::GrantDigest{});
}

}  // namespace
}  // namespace themis
