// Gandiva baseline (Xiao et al., OSDI'18), emulated as in Sec. 8:
// "We model Gandiva by having all apps report the placement score for the
// resources offered, and running the same greedy placement algorithm at the
// end of each lease to maximize the placement scores for all apps."
//
// The policy is fairness-oblivious: it repeatedly grants one task-gang to
// whichever (app, job) pair realizes the highest placement score on the
// remaining free pool, breaking ties toward earlier arrivals. Lease-driven
// reallocation at every pass stands in for Gandiva's migration. GPU
// time-slicing is deliberately not modeled (the paper argues both systems
// would benefit equally).
#pragma once

#include "sim/policy.h"

namespace themis {

class GandivaPolicy final : public ISchedulerPolicy {
 public:
  GrantSet RunRound(const ResourceOffer& offer,
                    SchedulerContext& ctx) override;
  const char* name() const override { return "Gandiva"; }
};

}  // namespace themis
