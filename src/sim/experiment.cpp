#include "sim/experiment.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "common/parallel.h"
#include "baselines/drf.h"
#include "baselines/gandiva.h"
#include "baselines/slaq.h"
#include "baselines/tiresias.h"
#include "workload/trace_io.h"

namespace themis {

const char* ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kThemis: return "Themis";
    case PolicyKind::kGandiva: return "Gandiva";
    case PolicyKind::kTiresias: return "Tiresias";
    case PolicyKind::kSlaq: return "SLAQ";
    case PolicyKind::kDrf: return "DRF";
  }
  return "?";
}

PolicyKind PolicyKindFromString(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  if (lower == "themis") return PolicyKind::kThemis;
  if (lower == "gandiva") return PolicyKind::kGandiva;
  if (lower == "tiresias") return PolicyKind::kTiresias;
  if (lower == "slaq") return PolicyKind::kSlaq;
  if (lower == "drf") return PolicyKind::kDrf;
  throw std::runtime_error("unknown policy: " + name);
}

std::unique_ptr<ISchedulerPolicy> MakePolicy(PolicyKind kind,
                                             ThemisConfig themis_config) {
  switch (kind) {
    case PolicyKind::kThemis:
      return std::make_unique<ThemisPolicy>(themis_config);
    case PolicyKind::kGandiva:
      return std::make_unique<GandivaPolicy>();
    case PolicyKind::kTiresias:
      return std::make_unique<TiresiasPolicy>();
    case PolicyKind::kSlaq:
      return std::make_unique<SlaqPolicy>();
    case PolicyKind::kDrf:
      return std::make_unique<DrfPolicy>();
  }
  return std::make_unique<ThemisPolicy>(themis_config);
}

namespace {

/// Shared metric-summary step for every run form (preloaded or streamed).
ExperimentResult Summarize(const ExperimentConfig& config, SimResult run) {
  const double contention = run.peak_contention;

  ExperimentResult result;
  result.policy_name = ToString(config.policy);
  result.max_fairness = run.metrics.MaxFairness();
  result.median_fairness = run.metrics.MedianFairness();
  result.min_fairness = run.metrics.MinFairness();
  result.jains_index = run.metrics.JainsFairnessIndex();
  result.avg_completion_time = run.metrics.AverageCompletionTime();
  result.gpu_time = run.metrics.TotalGpuTime();
  result.peak_contention = contention;
  result.unfinished_apps = static_cast<int>(run.unfinished.size());
  result.machine_failures = run.machine_failures;
  result.scheduling_passes = run.scheduling_passes;
  result.events_processed = run.events_processed;
  result.rounds_executed = run.rounds_executed;
  result.sim_time_advances = run.sim_time_advances;
  // Metric records accumulate in finish order; expose the per-app vectors in
  // AppId (== submission) order so callers can label them.
  std::vector<AppRecord> records = run.metrics.apps();
  std::sort(records.begin(), records.end(),
            [](const AppRecord& a, const AppRecord& b) { return a.app < b.app; });
  for (const AppRecord& rec : records) {
    result.finished_apps.push_back(rec.app);
    result.rhos.push_back(rec.Rho());
    result.completion_times.push_back(rec.CompletionTime());
    result.placement_scores.push_back(rec.mean_placement_score);
  }
  result.timeline = run.metrics.timeline();
  result.total_apps = run.total_apps;
  result.peak_live_apps = run.peak_live_apps;
  return result;
}

/// SimConfig::round_threads is the engine-level knob (what the CLI and
/// scenario JSON set); ThemisConfig::auction_threads is what the policy
/// reads. A non-zero engine knob wins so one setting configures the run.
ThemisConfig FoldRoundThreads(const ExperimentConfig& config) {
  ThemisConfig themis = config.themis;
  if (config.sim.round_threads != 0)
    themis.auction_threads = config.sim.round_threads;
  return themis;
}

}  // namespace

ExperimentResult RunExperimentWithApps(const ExperimentConfig& config,
                                       std::vector<AppSpec> apps,
                                       Simulator::RoundObserver round_observer) {
  Simulator sim(config.cluster, std::move(apps),
                MakePolicy(config.policy, FoldRoundThreads(config)),
                config.sim);
  if (round_observer) sim.set_round_observer(std::move(round_observer));
  return Summarize(config, sim.Run());
}

ExperimentResult RunStreamingExperiment(const ExperimentConfig& config,
                                        std::unique_ptr<TraceReader> trace) {
  SimConfig sim_config = config.sim;
  sim_config.retire_finished_apps = true;
  Simulator sim(config.cluster, std::move(trace),
                MakePolicy(config.policy, FoldRoundThreads(config)),
                sim_config);
  return Summarize(config, sim.Run());
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  TraceGenerator gen(config.trace);
  return RunExperimentWithApps(config, gen.Generate());
}

ExperimentConfig TestbedScaleConfig(PolicyKind policy, std::uint64_t seed,
                                    int num_apps) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Testbed50();
  config.policy = policy;
  config.trace.seed = seed;
  config.trace.num_apps = num_apps;
  // Sec. 8.3 footnote: durations scaled down by 5, inter-arrival kept.
  config.trace.duration_scale = 1.0 / 5.0;
  // Cap exploration width so one app cannot exceed the small cluster.
  config.trace.jobs_per_app_median = 8.0;
  config.trace.jobs_per_app_max = 24;
  config.sim.seed = seed;
  config.sim.lease_minutes = 10.0;
  return config;
}

const ExperimentResult& ScenarioRun::ResultOrThrow() const {
  if (!ok) throw std::runtime_error(name + ": " + error);
  return result;
}

std::uint64_t DeriveScenarioSeed(std::uint64_t base_seed, std::size_t index) {
  // splitmix64: decorrelates adjacent indices while staying reproducible.
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::vector<ScenarioSpec> PolicySeedGrid(
    const ExperimentConfig& base, const std::vector<PolicyKind>& policies,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<ScenarioSpec> out;
  out.reserve(policies.size() * seeds.size());
  for (PolicyKind policy : policies) {
    for (std::uint64_t seed : seeds) {
      ScenarioSpec spec;
      spec.name = std::string(ToString(policy)) + "/seed" + std::to_string(seed);
      spec.config = base;
      spec.config.policy = policy;
      spec.config.trace.seed = seed;
      spec.config.sim.seed = seed;
      out.push_back(std::move(spec));
    }
  }
  return out;
}

void RunParallel(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int num_threads) {
  if (n == 0) return;

  // Runs on the shared process pool (common/parallel.h) instead of spawning
  // a thread per call. Grain 1 keeps the historical behaviour: each executor
  // claims the next unstarted index, and callers write into per-index slots,
  // so results are independent of scheduling order.
  int threads = num_threads > 0
                    ? num_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  threads = std::max(1, std::min<int>(threads, static_cast<int>(n)));
  ParallelFor(n, threads, fn, /*grain=*/1);
}

std::vector<ScenarioRun> SweepRunner::Run(
    const std::vector<ScenarioSpec>& scenarios) const {
  std::vector<ScenarioRun> out(scenarios.size());
  RunParallel(
      scenarios.size(),
      [&](std::size_t i) {
        const ScenarioSpec& spec = scenarios[i];
        ScenarioRun& run = out[i];
        run.name = spec.name;
        try {
          if (!spec.trace_file.empty() && !spec.trace_csv.empty())
            throw std::runtime_error(
                "scenario sets both trace_csv and trace_file");
          if (!spec.trace_file.empty()) {
            run.result = RunStreamingExperiment(
                spec.config,
                std::make_unique<StreamingCsvTraceReader>(spec.trace_file));
          } else if (!spec.trace_csv.empty()) {
            run.result = RunExperimentWithApps(spec.config,
                                               ReadTraceCsvFile(spec.trace_csv));
          } else {
            run.result = RunExperiment(spec.config);
          }
          run.ok = true;
        } catch (const std::exception& e) {
          run.error = e.what();
        }
      },
      num_threads_);
  return out;
}

namespace {

/// RFC-4180-style field quoting: wrap when the value contains a comma,
/// quote, or newline; double embedded quotes.
std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\n\r") == std::string::npos) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

std::string CsvNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string SweepCsv(const std::vector<ScenarioRun>& runs) {
  std::string out =
      "name,policy,ok,max_rho,median_rho,min_rho,jain,avg_act_min,"
      "gpu_time_min,peak_contention,unfinished,machine_failures,"
      "scheduling_passes,error\n";
  for (const ScenarioRun& run : runs) {
    const ExperimentResult& r = run.result;
    out += CsvField(run.name) + ',' + CsvField(r.policy_name) + ',' +
           (run.ok ? "1" : "0") + ',' + CsvNumber(r.max_fairness) + ',' +
           CsvNumber(r.median_fairness) + ',' + CsvNumber(r.min_fairness) +
           ',' + CsvNumber(r.jains_index) + ',' +
           CsvNumber(r.avg_completion_time) + ',' + CsvNumber(r.gpu_time) +
           ',' + CsvNumber(r.peak_contention) + ',' +
           std::to_string(r.unfinished_apps) + ',' +
           std::to_string(r.machine_failures) + ',' +
           std::to_string(r.scheduling_passes) + ',' + CsvField(run.error) +
           '\n';
  }
  return out;
}

void WriteSweepCsv(const std::string& path,
                   const std::vector<ScenarioRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("WriteSweepCsv: cannot open " + path);
  const std::string csv = SweepCsv(runs);
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  if (std::fclose(f) != 0 || !ok)
    throw std::runtime_error("WriteSweepCsv: write to " + path + " failed");
}

ExperimentConfig SimScaleConfig(PolicyKind policy, std::uint64_t seed,
                                int num_apps) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Simulation256();
  config.policy = policy;
  config.trace.seed = seed;
  config.trace.num_apps = num_apps;
  config.sim.seed = seed;
  config.sim.lease_minutes = 20.0;
  return config;
}

}  // namespace themis
