// Runtime state of apps and jobs inside the event-driven simulator.
//
// JobState tracks progress in serial GPU-minutes: a job holding GPU set G
// with placement slowdown S progresses at rate |G| * S. AppState owns its
// jobs, its hyper-parameter tuner, and the bookkeeping every scheduling
// policy reads (attained service for Tiresias, loss curves for SLAQ, rho
// inputs for THEMIS).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "common/types.h"
#include "hyperopt/app_scheduler.h"
#include "placement/placement_model.h"
#include "workload/job_spec.h"

namespace themis {

struct JobState {
  JobId id = 0;
  JobSpec spec;

  Work done = 0.0;
  bool alive = true;      // false once the tuner kills it
  bool finished = false;  // reached target accuracy
  Time finish_time = -1.0;

  /// GPUs currently leased to this job (its gang).
  std::vector<GpuId> gpus;
  /// Progress stalls until this time after any allocation change
  /// (checkpoint + container churn, Sec. 8.3.2).
  Time resume_at = 0.0;
  /// Maximum parallelism granted by the tuner (G_ideal for this job).
  int parallelism_cap = 0;
  /// Bumped on every allocation change; stale finish events carry old values.
  std::uint64_t alloc_version = 0;
  /// The alloc_version a finish projection was last made for. A projection
  /// is made at most once per allocation epoch: the finish time is analytic
  /// in the granted rate, so recomputing it every pass would only produce
  /// ulp-shifted duplicates of the same instant. ~0 = never projected.
  std::uint64_t finish_projected_version = ~0ull;
  /// Total GPU-minutes consumed (Tiresias' "attained service").
  Work attained_service = 0.0;

  /// Per-epoch cache of the gang-derived constants (progress rate, gang
  /// speed sum). Within one allocation epoch the gang is fixed, so both
  /// are fixed too: the event engine computes them once per epoch and
  /// reuses them at every time advance, while the pass-stepped reference
  /// re-derives them on each call exactly as the seed loop did. The cache
  /// holds the same pure functions of (gang, topology), so reuse is
  /// bitwise-neutral. Valid only between scheduling passes: a pass may
  /// mutate the gang before bumping alloc_version, so mid-pass readers
  /// must use Rate()/SpeedSum directly.
  std::uint64_t rate_cache_version = ~0ull;
  double cached_rate = 0.0;
  double cached_speed_sum = 0.0;

  bool Running() const { return alive && !finished && !gpus.empty(); }
  Work RemainingWork() const { return std::max(0.0, spec.total_work - done); }
  double DoneIterations() const { return done / spec.WorkPerIteration(); }
  /// Progress rate |G| * S given the topology; 0 when not running.
  double Rate(const Topology& topo) const;
  /// Rate()/SpeedSum through the per-epoch cache (see above).
  double CachedRate(const Topology& topo) {
    if (rate_cache_version != alloc_version) RefreshRateCache(topo);
    return cached_rate;
  }
  double CachedSpeedSum(const Topology& topo) {
    if (rate_cache_version != alloc_version) RefreshRateCache(topo);
    return cached_speed_sum;
  }
  void RefreshRateCache(const Topology& topo);
  /// Additional whole gangs this job can still use.
  int UnmetGangs() const;
};

struct AppState {
  AppId id = 0;
  AppSpec spec;
  std::unique_ptr<IAppScheduler> tuner;
  std::vector<JobState> jobs;

  bool arrived = false;
  bool finished = false;
  Time finish_time = -1.0;
  /// T_ID: running time alone on the cluster with ideal placement.
  Time ideal_time = 1.0;
  Work attained_service = 0.0;
  /// Mean placement score of this app's (non-empty) job allocations.
  Summary placement_scores;
  /// Cached fairness estimate from the last ARBITER probe (diagnostics).
  double last_rho = kUnboundedRho;
  /// Scratch for the simulator's event-driven core: set when this app's
  /// tuner views may have changed since its last Step (arrival or progress).
  bool tuner_dirty = false;
  /// CapDemand() as of the last tuner step — the simulator's maintained
  /// contention sum is adjusted by deltas against this.
  long long cached_cap_demand = 0;
  /// Last held-GPU count recorded to the allocation timeline (-1 = never):
  /// the simulator samples the timeline on change, not on every pass.
  int last_recorded_held = -1;
  /// RhoIndex bookkeeping (core/rho_index.h): which class the maintained
  /// filter index currently files this app under (0 = absent, 1 = holder,
  /// 2 = unbounded candidate). Owned by the index; nothing else reads it.
  std::uint8_t rho_index_class = 0;

  Time arrival() const { return spec.arrival; }
  /// Finish-time fairness realized at completion: (finish - arrival) / T_ID.
  double FinalRho() const;
  /// Jobs still training (alive, not finished).
  std::vector<int> ActiveJobs() const;
  int GpusHeld() const;
  /// Speed-weighted GPU holdings (sum of generation speeds over every held
  /// GPU) — the app's share in effective GPUs. Equals GpusHeld() on
  /// speed-1.0 clusters.
  double EffectiveGpusHeld(const Topology& topo) const;
  /// Whole-gang GPU demand still unmet across active jobs.
  int UnmetDemand() const;
  /// Capped GPU demand: sum over alive jobs of min(parallelism_cap,
  /// MaxParallelism) — this app's contribution to the contention yardstick.
  int CapDemand() const;

  /// JobView vector for the tuner.
  std::vector<JobView> Views() const;
  /// Same, filling `out` in place — the simulator's tuner walk reuses one
  /// scratch vector across apps instead of allocating per Step.
  void Views(std::vector<JobView>& out) const;
};

/// Deterministically ordered list of app pointers (by AppId).
using AppList = std::vector<AppState*>;

}  // namespace themis
