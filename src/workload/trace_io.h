// Trace serialization: save generated workloads to CSV and load them back,
// so experiments can be archived, inspected, edited by hand, and replayed
// bit-identically — the workflow a real trace (like the paper's enterprise
// one) would follow.
//
// Format: one row per job, header included.
//   app_index,app_name,arrival,tuner,target_loss,
//   num_tasks,gpus_per_task,total_work,total_iterations,
//   loss_scale,loss_decay,loss_floor,model,max_span
//
// Two ways to consume a trace:
//   - slurped: ReadTraceCsv / ReadTraceCsvFile materialize the whole
//     std::vector<AppSpec> (fine for tens of thousands of jobs);
//   - streamed: StreamingCsvTraceReader yields one AppSpec at a time from
//     disk, so a million-job trace replays without ever living in memory.
//     The streaming path requires arrival-sorted input (the simulator
//     injects arrivals as the stream advances) and fails with a pointed,
//     line-numbered error otherwise; the slurped path stays permissive.
// StreamingTraceWriter is the mirror image for producers: append apps one
// at a time and nothing but the current row is ever buffered. WriteTraceCsv
// is implemented on top of it, so both paths emit byte-identical CSV.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "workload/job_spec.h"

namespace themis {

/// Pull-based source of apps in arrival order. `Next` fills `out` and
/// returns true, or returns false once the trace is exhausted (and then
/// keeps returning false).
class TraceReader {
 public:
  virtual ~TraceReader() = default;
  virtual bool Next(AppSpec& out) = 0;
};

/// TraceReader over an in-memory app vector (e.g. TraceGenerator output).
class VectorTraceReader : public TraceReader {
 public:
  explicit VectorTraceReader(std::vector<AppSpec> apps)
      : apps_(std::move(apps)) {}

  bool Next(AppSpec& out) override;

 private:
  std::vector<AppSpec> apps_;
  std::size_t next_ = 0;
};

/// Incremental CSV parser: holds one app under construction plus one line of
/// lookahead, never the whole trace. Validates the header eagerly (in the
/// constructor) and each row as it is read; errors carry the 1-based line
/// number. With `require_sorted` (the default, and always true for the
/// path constructor used by the simulator), out-of-order arrivals are a
/// hard error naming both offending values.
class StreamingCsvTraceReader : public TraceReader {
 public:
  /// Opens and owns the file; requires arrival-sorted input.
  explicit StreamingCsvTraceReader(const std::string& path);
  /// Reads from a caller-owned stream (kept alive by the caller).
  explicit StreamingCsvTraceReader(std::istream& in, bool require_sorted = true);
  ~StreamingCsvTraceReader() override;  // out-of-line: ifstream is incomplete here

  bool Next(AppSpec& out) override;

  std::size_t apps_read() const { return apps_read_; }
  std::size_t lines_read() const { return line_no_; }

 private:
  void ReadHeader();

  std::unique_ptr<std::ifstream> owned_;
  std::istream* in_;
  bool require_sorted_;
  std::string source_;  // for error messages ("path" or "<stream>")

  std::size_t line_no_ = 0;
  long long current_index_ = -1;
  double last_arrival_ = 0.0;
  bool done_ = false;
  bool have_current_ = false;
  AppSpec current_;
  std::size_t apps_read_ = 0;
};

/// Append-only CSV emitter: writes the header up front and one row per job
/// as apps are appended, so trace_gen can emit million-job traces in
/// constant memory. Close() (or destruction, for the owning path form)
/// flushes and verifies the stream.
class StreamingTraceWriter {
 public:
  /// Creates/truncates and owns the file.
  explicit StreamingTraceWriter(const std::string& path);
  /// Writes to a caller-owned stream.
  explicit StreamingTraceWriter(std::ostream& out);
  ~StreamingTraceWriter();

  StreamingTraceWriter(const StreamingTraceWriter&) = delete;
  StreamingTraceWriter& operator=(const StreamingTraceWriter&) = delete;

  void Append(const AppSpec& app);
  /// Flush and (for the owning form) close; throws on write failure.
  /// Idempotent; Append after Close is an error.
  void Close();

  std::size_t apps_written() const { return apps_written_; }
  std::size_t jobs_written() const { return jobs_written_; }

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::string source_;
  std::size_t apps_written_ = 0;
  std::size_t jobs_written_ = 0;
  bool closed_ = false;
};

/// Serialize apps to CSV. Apps keep their order; jobs keep theirs.
void WriteTraceCsv(std::ostream& out, const std::vector<AppSpec>& apps);
void WriteTraceCsvFile(const std::string& path, const std::vector<AppSpec>& apps);

/// Parse a trace written by WriteTraceCsv. Throws std::runtime_error with a
/// line number on malformed input. Does not require sorted arrivals.
std::vector<AppSpec> ReadTraceCsv(std::istream& in);
std::vector<AppSpec> ReadTraceCsvFile(const std::string& path);

/// Round-trip helpers used by tests.
const char* ToString(TunerKind kind);
TunerKind TunerKindFromString(const std::string& name);
LocalityLevel LocalityLevelFromString(const std::string& name);

}  // namespace themis
