#include "auction/partial_allocation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace themis {
namespace {

/// Borrow the caller's tables as pointers so the solver never copies a
/// BidTable — the hidden-payments loop below re-solves the market once per
/// bidder, and copying the tables there made that loop O(n^2) in table
/// deep-copies.
std::vector<const BidTable*> AsPointers(const std::vector<BidTable>& bids) {
  std::vector<const BidTable*> ptrs;
  ptrs.reserve(bids.size());
  for (const BidTable& b : bids) ptrs.push_back(&b);
  return ptrs;
}

void Validate(const std::vector<const BidTable*>& bids,
              const std::vector<int>& offered, const char* who) {
  for (const BidTable* b : bids) {
    if (b == nullptr)
      throw std::invalid_argument(std::string(who) + ": null bid table");
    const std::string err = ValidateBid(*b, offered);
    if (!err.empty()) throw std::invalid_argument(std::string(who) + ": " + err);
  }
}

/// Precomputed log-valuations; rows sorted by descending value per app so the
/// branch-and-bound explores promising rows first.
struct Problem {
  const std::vector<const BidTable*>* bids = nullptr;
  std::vector<int> offered;
  /// log V for bids[i]->rows[r].
  std::vector<std::vector<double>> log_value;
  /// Row visit order per app (descending log value).
  std::vector<std::vector<int>> row_order;
  /// Best (max) log value per app, for optimistic pruning bounds.
  std::vector<double> best_log;
};

Problem BuildProblem(const std::vector<const BidTable*>& bids,
                     const std::vector<int>& offered) {
  Problem p;
  p.bids = &bids;
  p.offered = offered;
  p.log_value.resize(bids.size());
  p.row_order.resize(bids.size());
  p.best_log.resize(bids.size());
  for (std::size_t i = 0; i < bids.size(); ++i) {
    const auto& rows = bids[i]->rows;
    p.log_value[i].resize(rows.size());
    p.row_order[i].resize(rows.size());
    double best = -1e18;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      p.log_value[i][r] = std::log(rows[r].Value());
      p.row_order[i][r] = static_cast<int>(r);
      best = std::max(best, p.log_value[i][r]);
    }
    std::stable_sort(p.row_order[i].begin(), p.row_order[i].end(),
                     [&](int a, int b) { return p.log_value[i][a] > p.log_value[i][b]; });
    p.best_log[i] = best;
  }
  return p;
}

bool Fits(const BidRow& row, const std::vector<int>& remaining) {
  for (std::size_t m = 0; m < remaining.size(); ++m)
    if (row.gpus_per_machine[m] > remaining[m]) return false;
  return true;
}

void Consume(const BidRow& row, std::vector<int>& remaining, int sign) {
  for (std::size_t m = 0; m < remaining.size(); ++m)
    remaining[m] -= sign * row.gpus_per_machine[m];
}

double TotalLog(const Problem& p, const std::vector<int>& rows) {
  double total = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) total += p.log_value[i][rows[i]];
  return total;
}

/// Greedy incumbent: apps ordered by how much they stand to gain (best row
/// vs. zero row), each taking its best feasible row. Deterministic.
std::vector<int> GreedySolve(const Problem& p) {
  const auto& bids = *p.bids;
  std::vector<std::size_t> order(bids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double gain_a = p.best_log[a] - p.log_value[a][0];
    const double gain_b = p.best_log[b] - p.log_value[b][0];
    return gain_a > gain_b;
  });

  std::vector<int> rows(bids.size(), 0);
  std::vector<int> remaining = p.offered;
  for (std::size_t i : order) {
    for (int r : p.row_order[i]) {
      if (Fits(bids[i]->rows[r], remaining)) {
        rows[i] = r;
        Consume(bids[i]->rows[r], remaining, +1);
        break;
      }
    }
  }
  return rows;
}

/// One improvement pass: for each app, try every alternative row holding the
/// others fixed; accept the best strictly improving switch. Repeats up to
/// `passes` times or until a fixed point.
void LocalSearch(const Problem& p, std::vector<int>& rows, int passes) {
  const auto& bids = *p.bids;
  std::vector<int> remaining = p.offered;
  for (std::size_t i = 0; i < rows.size(); ++i)
    Consume(bids[i]->rows[rows[i]], remaining, +1);

  for (int pass = 0; pass < passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      // Free app i's current row, then look for the best feasible row.
      Consume(bids[i]->rows[rows[i]], remaining, -1);
      int best_row = rows[i];
      double best_log = p.log_value[i][rows[i]];
      for (int r : p.row_order[i]) {
        if (p.log_value[i][r] <= best_log) break;  // sorted: no better rows left
        if (Fits(bids[i]->rows[r], remaining)) {
          best_row = r;
          best_log = p.log_value[i][r];
          break;
        }
      }
      if (best_row != rows[i]) {
        rows[i] = best_row;
        improved = true;
      }
      Consume(bids[i]->rows[rows[i]], remaining, +1);
    }
    if (!improved) break;
  }
}

struct BnbState {
  std::vector<int> best_rows;
  double best_log = -1e18;
  std::int64_t nodes = 0;
  bool exhausted = true;
};

void Bnb(const Problem& p, std::size_t i, std::vector<int>& rows,
         std::vector<int>& remaining, double log_so_far, double* suffix_best,
         std::int64_t max_nodes, BnbState& state) {
  if (state.nodes >= max_nodes) {
    state.exhausted = false;
    return;
  }
  ++state.nodes;
  const auto& bids = *p.bids;
  if (i == bids.size()) {
    if (log_so_far > state.best_log) {
      state.best_log = log_so_far;
      state.best_rows = rows;
    }
    return;
  }
  // Optimistic bound: remaining apps all take their best row (capacity-free).
  if (log_so_far + suffix_best[i] <= state.best_log) return;

  for (int r : p.row_order[i]) {
    if (!Fits(bids[i]->rows[r], remaining)) continue;
    rows[i] = r;
    Consume(bids[i]->rows[r], remaining, +1);
    Bnb(p, i + 1, rows, remaining, log_so_far + p.log_value[i][r], suffix_best,
        max_nodes, state);
    Consume(bids[i]->rows[r], remaining, -1);
  }
  rows[i] = 0;
}

PfSolution Solve(const Problem& p, const PaConfig& config) {
  const auto& bids = *p.bids;
  PfSolution sol;
  if (bids.empty()) return sol;

  std::vector<int> rows = GreedySolve(p);
  LocalSearch(p, rows, config.local_search_passes);

  // suffix_best[i] = sum of best logs over apps i..end.
  std::vector<double> suffix(bids.size() + 1, 0.0);
  for (std::size_t i = bids.size(); i-- > 0;)
    suffix[i] = suffix[i + 1] + p.best_log[i];

  BnbState state;
  state.best_rows = rows;
  state.best_log = TotalLog(p, rows);
  std::vector<int> work_rows(bids.size(), 0);
  std::vector<int> remaining = p.offered;
  Bnb(p, 0, work_rows, remaining, 0.0, suffix.data(), config.max_nodes, state);

  sol.rows = state.best_rows;
  sol.log_welfare = state.best_log;
  sol.exact = state.exhausted;
  return sol;
}

}  // namespace

PfSolution SolveProportionalFair(const std::vector<const BidTable*>& bids,
                                 const std::vector<int>& offered,
                                 const PaConfig& config) {
  Validate(bids, offered, "SolveProportionalFair");
  const Problem p = BuildProblem(bids, offered);
  return Solve(p, config);
}

PfSolution SolveProportionalFair(const std::vector<BidTable>& bids,
                                 const std::vector<int>& offered,
                                 const PaConfig& config) {
  return SolveProportionalFair(AsPointers(bids), offered, config);
}

PaResult PartialAllocation(const std::vector<const BidTable*>& bids,
                           const std::vector<int>& offered,
                           const PaConfig& config) {
  Validate(bids, offered, "PartialAllocation");

  PaResult result;
  result.leftover = offered;
  if (bids.empty()) return result;

  const Problem p = BuildProblem(bids, offered);
  const PfSolution pf = Solve(p, config);
  result.log_welfare = pf.log_welfare;
  result.exact = pf.exact;

  // Hidden payments: compare the others' welfare with and without each app.
  result.winners.resize(bids.size());
  std::vector<const BidTable*> others;
  others.reserve(bids.size() - 1);
  for (std::size_t i = 0; i < bids.size(); ++i) {
    PaWinner& w = result.winners[i];
    w.app = bids[i]->app;
    w.row = pf.rows[i];
    w.granted.assign(offered.size(), 0);

    const BidRow& row = bids[i]->rows[w.row];
    if (row.IsZero()) {
      w.c = 1.0;  // nothing granted, nothing withheld
      continue;
    }
    if (!config.hidden_payments) {
      w.c = 1.0;
      w.granted = row.gpus_per_machine;
      for (std::size_t m = 0; m < offered.size(); ++m)
        result.leftover[m] -= w.granted[m];
      continue;
    }

    // Market without app i — borrowed pointers, no table copies.
    others.clear();
    for (std::size_t j = 0; j < bids.size(); ++j)
      if (j != i) others.push_back(bids[j]);
    const PfSolution without = SolveProportionalFair(others, offered, config);
    if (!without.exact) result.exact = false;

    // Others' log-welfare inside the full optimum.
    double with_log = pf.log_welfare - p.log_value[i][w.row];
    // c_i = exp(with - without) <= 1 (removing i frees resources). Clamp to
    // guard against approximate subproblem solutions.
    w.c = std::clamp(std::exp(with_log - without.log_welfare), 0.0, 1.0);

    for (std::size_t m = 0; m < offered.size(); ++m) {
      const int granted = static_cast<int>(
          std::floor(w.c * static_cast<double>(row.gpus_per_machine[m]) + 1e-9));
      w.granted[m] = granted;
      result.leftover[m] -= granted;
    }
  }
  return result;
}

PaResult PartialAllocation(const std::vector<BidTable>& bids,
                           const std::vector<int>& offered,
                           const PaConfig& config) {
  return PartialAllocation(AsPointers(bids), offered, config);
}

}  // namespace themis
