// Small statistics toolkit used by metrics collection and the benchmark
// harness: percentiles, CDF extraction, Jain's fairness index, and a
// streaming summary accumulator.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace themis {

/// Jain's fairness index: (sum x)^2 / (n * sum x^2). Returns 1.0 for an
/// empty or perfectly uniform sample; always in (0, 1].
double JainsIndex(std::span<const double> values);

/// Linear-interpolation percentile; p in [0, 100]. Requires non-empty input.
double Percentile(std::vector<double> values, double p);

/// A (value, cumulative-fraction) staircase suitable for printing the CDF
/// figures the paper reports (Figs. 1, 6, 7).
struct CdfPoint {
  double value;
  double fraction;
};
std::vector<CdfPoint> Cdf(std::vector<double> values);

/// Render a CDF as fixed-width rows, optionally downsampled to at most
/// `max_rows` evenly spaced points so bench output stays readable.
std::string FormatCdf(const std::vector<CdfPoint>& cdf, std::size_t max_rows = 20);

/// Streaming min/max/mean/count accumulator.
class Summary {
 public:
  void Add(double v);
  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace themis
